// Host wall-clock benchmarks. Unlike the BenchmarkTable* harness,
// which reports *simulated* quantities (cycles at 80 ns, Klips), these
// measure what the Go interpreter itself costs on the host: ns per
// simulated run and allocations per run. They are the measurement
// side of the predecoded-code-cache work: the fetch-execute loop must
// run allocation-free in steady state, so every BenchmarkHost* warms
// the machine (one run fills the predecode tables, the logical caches
// and the page tables) before the timed iterations.
//
// `make bench` runs these and records the numbers in BENCH_<n>.json
// (see scripts/hostbench.sh); scripts/benchcmp.sh diffs two such
// files.
package repro

import (
	"context"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/engine"
	"repro/internal/machine"
)

// benchConfig is the machine configuration the host benchmarks run
// with. KCM_FUSE=off disables the superinstruction fusion tier for
// A/B control runs (scripts/hostbench.sh records both columns);
// simulated counters are identical either way, so the pins and the
// Klips metrics do not move.
func benchConfig() machine.Config {
	cfg := machine.Config{}
	if os.Getenv("KCM_FUSE") == "off" {
		cfg.Fusion = machine.Off
	}
	return cfg
}

// hostRun compiles the program once, boots one machine, warms it with
// a full run, then times repeated warm executions. This isolates the
// interpreter loop: compilation, linking and machine construction are
// outside the timer, exactly as the paper's warm-run protocol keeps
// cache fills out of its timings.
func hostRun(b *testing.B, p bench.Program) {
	b.Helper()
	im, err := bench.Compile(p, true)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(im, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		b.Fatal(err)
	}
	var stats machine.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ResetStats()
		if _, err := m.Run(entry); err != nil {
			b.Fatal(err)
		}
		stats = m.Stats()
	}
	b.StopTimer()
	b.ReportMetric(stats.Klips(), "simulated-Klips")
	b.ReportMetric(float64(stats.Instrs)*float64(b.N)/float64(b.Elapsed().Nanoseconds())*1e3, "host-Mips")
	b.ReportMetric(float64(m.FusedRuns()), "fused-handlers")
}

// BenchmarkHostNrev times the nrev inner loop (nrev1*, the paper's
// peak-Klips workload): the hot path is concat steps, so this is the
// benchmark the 0 allocs/op gate in scripts/verify.sh watches.
func BenchmarkHostNrev(b *testing.B) {
	p, _ := bench.ByName("nrev1")
	hostRun(b, p)
}

// BenchmarkHostQsort times qs4* (arithmetic + cut heavy).
func BenchmarkHostQsort(b *testing.B) {
	p, _ := bench.ByName("qs4")
	hostRun(b, p)
}

// BenchmarkHostQueens times queens* (deep backtracking).
func BenchmarkHostQueens(b *testing.B) {
	p, _ := bench.ByName("queens")
	hostRun(b, p)
}

// BenchmarkHostZebra times the real-size search program.
func BenchmarkHostZebra(b *testing.B) {
	hostRun(b, bench.Program{Name: "zebra", Source: zebraSrc, PureQuery: "zebra(_Owner)."})
}

// BenchmarkHostPoolNrev times warm nrev throughput through an
// engine.Pool under concurrent load: RunParallel issues queries from
// GOMAXPROCS goroutines against one pool of warm machines sharing the
// compiled image. Run with -cpu 1,4,8 to measure scaling; each
// simulated machine is independent, so throughput should track
// available cores (scripts/hostbench.sh records this in
// BENCH_<n>.json together with the host's CPU count).
func BenchmarkHostPoolNrev(b *testing.B) {
	p, _ := bench.ByName("nrev1")
	im, err := bench.Compile(p, true)
	if err != nil {
		b.Fatal(err)
	}
	pool := engine.New(engine.WithConfig(benchConfig())) // GOMAXPROCS machines
	if err := pool.Warm(context.Background(), im); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sol, err := pool.Query(ctx, im)
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Success {
				b.Fatal("nrev failed")
			}
		}
	})
}

// BenchmarkHostWarmBoot times the pool's per-machine warm protocol as
// it ran before snapshot stamping: a full reset plus one complete
// warm run on an already-constructed machine. This is the per-sibling
// cost that Warm used to pay pool-wide.
func BenchmarkHostWarmBoot(b *testing.B) {
	p, _ := bench.ByName("nrev1")
	im, err := bench.Compile(p, true)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(im, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run(entry); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostWarmRestore times the same warm state arriving by
// snapshot stamp instead: one machine runs the warm protocol once and
// is captured; every iteration restores that snapshot onto a sibling
// — the engine.Pool Warm path for every machine after the first. The
// ratio to BenchmarkHostWarmBoot is the warm-boot speedup recorded in
// BENCH_10.json.
func BenchmarkHostWarmRestore(b *testing.B) {
	p, _ := bench.ByName("nrev1")
	im, err := bench.Compile(p, true)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := machine.New(im, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := proto.Run(entry); err != nil {
		b.Fatal(err)
	}
	snap, err := proto.Capture()
	if err != nil {
		b.Fatal(err)
	}
	sibling, err := machine.New(im, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sibling.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostBoot times the cold path: machine construction, image
// load and a first (cache-cold, predecode-cold) run. Allocations here
// are expected — this tracks the cost of standing a machine up, the
// per-request cost of a serving deployment that boots a machine per
// query instead of pooling.
func BenchmarkHostBoot(b *testing.B) {
	p, _ := bench.ByName("nrev1")
	im, err := bench.Compile(p, true)
	if err != nil {
		b.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(im, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(entry); err != nil {
			b.Fatal(err)
		}
	}
}
