// The zebra puzzle (Einstein's riddle) on the KCM: a "real-size"
// pure-unification search of the kind the paper's section 5 schedules
// for further evaluation. Five houses, fifteen constraints, one
// solution — and a heavy workout for shallow backtracking, indexing
// and the trail.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
)

const program = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

next_to(A, B, L) :- right_of(A, B, L).
next_to(A, B, L) :- right_of(B, A, L).

right_of(R, L, [L, R | _]).
right_of(R, L, [_ | T]) :- right_of(R, L, T).

first(X, [X | _]).
middle(X, [_, _, X, _, _]).

% house(Color, Nation, Drink, Smoke, Pet)
zebra(Owner, Houses) :-
    Houses = [_, _, _, _, _],
    member(house(red, english, _, _, _), Houses),
    right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
    first(house(_, norwegian, _, _, _), Houses),
    middle(house(_, _, milk, _, _), Houses),
    member(house(_, spanish, _, _, dog), Houses),
    member(house(green, _, coffee, _, _), Houses),
    member(house(_, ukrainian, tea, _, _), Houses),
    member(house(_, _, _, oldgold, snails), Houses),
    member(house(yellow, _, _, kools, _), Houses),
    next_to(house(_, _, _, chesterfield, _), house(_, _, _, _, fox), Houses),
    next_to(house(_, _, _, kools, _), house(_, _, _, _, horse), Houses),
    member(house(_, _, orangejuice, luckystrike, _), Houses),
    member(house(_, japanese, _, parliament, _), Houses),
    next_to(house(blue, _, _, _, _), house(_, norwegian, _, _, _), Houses),
    member(house(_, _, water, _, _), Houses),
    member(house(_, Owner, _, _, zebra), Houses).
`

func main() {
	prog, err := core.Load(program)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := prog.Query("zebra(Owner, Houses).", core.WithConfig(machine.Config{Profile: true}))
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Success {
		log.Fatal("no solution — the puzzle is broken")
	}
	owner, _ := sol.Binding("Owner")
	houses, _ := sol.Binding("Houses")
	fmt.Println("the zebra belongs to:", owner)
	fmt.Println("street:", houses)

	s := sol.Result.Stats
	fmt.Printf("\n%d inferences in %.3f ms (%.0f Klips), %d cycles\n",
		s.Inferences, s.Millis(), s.Klips(), s.Cycles)
	fmt.Printf("shallow fails %d, deep fails %d, choice points %d, trail pushes %d\n",
		s.ShallowFails, s.DeepFails, s.ChoicePoints, s.TrailPushes)
	fmt.Println("\nper-predicate cycle profile:")
	fmt.Print(machine.RenderProfile(sol.Result.Profile, s.Cycles))
}
