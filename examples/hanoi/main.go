// Towers of Hanoi on the KCM, with the machine's own write/1 output,
// reproducing the hanoi benchmark protocol of Table 2 (every move is
// reported through the 5-cycle escape mechanism).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
)

const program = `
hanoi(N) :- han(N, left, middle, right).
han(0, _, _, _).
han(N, A, B, C) :-
    N1 is N - 1,
    han(N1, A, C, B),
    mv(A, B),
    han(N1, C, B, A).
mv(A, B) :- write(A), write(' -> '), write(B), nl.
`

func main() {
	prog, err := core.Load(program)
	if err != nil {
		log.Fatal(err)
	}

	// Small instance: show the moves themselves.
	fmt.Println("hanoi(3):")
	sol, err := prog.Query("hanoi(3).", core.WithWriter(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Success {
		log.Fatal("hanoi(3) failed")
	}

	// Larger instances: scaling of cycles and inferences (2^N - 1
	// moves, each costing a fixed inference budget).
	fmt.Println("\n size      moves  inferences        ms    Klips")
	for n := 4; n <= 12; n += 2 {
		var sink strings.Builder
		sol, err := prog.Query(fmt.Sprintf("hanoi(%d).", n), core.WithWriter(&sink))
		if err != nil {
			log.Fatal(err)
		}
		s := sol.Result.Stats
		moves := strings.Count(sink.String(), "\n")
		fmt.Printf("%5d %10d %11d %9.3f %8.0f\n", n, moves, s.Inferences, s.Millis(), s.Klips())
	}
}
