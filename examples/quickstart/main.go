// Quickstart: load a Prolog program, run queries on the simulated
// Knowledge Crunching Machine, and read back bindings and machine
// statistics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const program = `
% Classic list predicates.
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.
`

func main() {
	prog, err := core.Load(program)
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic query with an output binding.
	sol, err := prog.Query("append([a,b,c], [d,e], Xs).")
	if err != nil {
		log.Fatal(err)
	}
	xs, _ := sol.Binding("Xs")
	fmt.Println("append([a,b,c], [d,e], Xs)  =>  Xs =", xs)

	// A nondeterministic query: enumerate every solution with the
	// Solutions iterator (redo-driven backtracking on one machine).
	it, err := prog.Solutions("member(X, [1,2,3]).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("member(X, [1,2,3])          => ")
	for it.Next() {
		fmt.Printf(" %s;", it.Solution())
	}
	if it.Err() != nil {
		log.Fatal(it.Err())
	}
	fmt.Println(" no more solutions")

	// A failing query.
	sol, err = prog.Query("member(z, [a,b,c]).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("member(z, [a,b,c])          =>  success =", sol.Success)

	// Machine-level metrics: the simulator counts cycles at the KCM's
	// 80 ns clock and logical inferences by the paper's definition.
	sol, err = prog.Query("length([a,b,c,d,e,f,g,h], N).")
	if err != nil {
		log.Fatal(err)
	}
	n, _ := sol.Binding("N")
	s := sol.Result.Stats
	fmt.Printf("length(8 elements) => N = %v  (%d inferences, %d cycles, %.3f ms, %.0f Klips)\n",
		n, s.Inferences, s.Cycles, s.Millis(), s.Klips())
}
