// Database queries on the KCM: Warren's country-density query, the
// workload behind the paper's "query" benchmark. The example shows
// both directions of first-argument indexing: exhaustive generation
// through try/retry chains when the key is unbound, and direct
// switch_on_constant dispatch when it is bound — the case the paper
// credits for KCM's largest win over QUINTUS.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
)

// density/2 itself comes with the benchmark's fact base.
const rules = `
pair(C1, C2) :-
    density(C1, D1), density(C2, D2),
    D1 > D2, T1 is 20 * D1, T2 is 21 * D2, T1 < T2.

report :- pair(C1, C2), write(C1), tab(1), write(C2), nl, fail.
report.
`

func main() {
	// Reuse the benchmark's 25-country fact base.
	q, ok := bench.ByName("query")
	if !ok {
		log.Fatal("query benchmark missing")
	}
	prog, err := core.Load(q.Source)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Consult(rules); err != nil {
		log.Fatal(err)
	}

	// Bound key: switch_on_constant dispatches straight to the fact.
	sol, err := prog.Query("density(japan, D).")
	if err != nil {
		log.Fatal(err)
	}
	d, _ := sol.Binding("D")
	fmt.Printf("density(japan) = %v (people per sq. mile, x0.1)\n", d)
	fmt.Printf("  bound-key lookup: %d inferences, %d cycles\n\n",
		sol.Result.Stats.Inferences, sol.Result.Stats.Cycles)

	// Unbound keys: the full backtracking search over all pairs.
	fmt.Println("countries with nearly equal population density:")
	sol, err = prog.Query("report.", core.WithWriter(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}
	s := sol.Result.Stats
	fmt.Printf("\nexhaustive search: %d inferences in %.3f ms (%.0f Klips)\n",
		s.Inferences, s.Millis(), s.Klips())
	fmt.Printf("deep fails %d, shallow fails %d, choice points %d\n",
		s.DeepFails, s.ShallowFails, s.ChoicePoints)
}
