// N-queens on the KCM: a backtracking-heavy workload that exercises
// the delayed choice-point machinery. The example solves growing
// board sizes and shows how much of the choice-point traffic shallow
// backtracking removes compared to the standard WAM policy.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
)

const program = `
queens(N, Qs) :- range(1, N, Ns), solve(Ns, [], Qs).

solve([], Qs, Qs).
solve(Unplaced, Safe, Qs) :-
    sel(Unplaced, Q, Rest),
    \+ attack(Q, Safe),
    solve(Rest, [Q | Safe], Qs).

attack(X, Xs) :- att(X, 1, Xs).
att(X, N, [Y | _]) :- X is Y + N.
att(X, N, [Y | _]) :- X is Y - N.
att(X, N, [_ | Ys]) :- N1 is N + 1, att(X, N1, Ys).

sel([X | Xs], X, Xs).
sel([Y | Ys], X, [Y | Zs]) :- sel(Ys, X, Zs).

range(N, N, [N]) :- !.
range(M, N, [M | Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
`

func main() {
	prog, err := core.Load(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("board  solution                   inferences      ms   Klips   CPs(shallow)  CPs(eager)")
	for n := 4; n <= 8; n++ {
		q := fmt.Sprintf("queens(%d, Qs).", n)
		sol, err := prog.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if !sol.Success {
			fmt.Printf("%5d  no solution\n", n)
			continue
		}
		qs, _ := sol.Binding("Qs")
		s := sol.Result.Stats

		// Same search with eager (standard WAM) choice points.
		eag, err := prog.Query(q, core.WithConfig(machine.Config{Shallow: machine.Off}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-25v %11d %7.3f %7.0f %13d %11d\n",
			n, qs, s.Inferences, s.Millis(), s.Klips(),
			s.ChoicePoints, eag.Result.Stats.ChoicePoints)
	}
}
