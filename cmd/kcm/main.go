// Command kcm compiles a Prolog program and runs a query on the KCM
// simulator, reporting the paper's metrics (ms at 80 ns/cycle, Klips)
// and the machine counters.
//
// Usage:
//
//	kcm [flags] program.pl...
//
// Example:
//
//	kcm -q 'nrev([1,2,3], R), write(R), nl.' nrev.pl
//	kcm -q 'member(X, [1,2,3]).' -n 0 lists.pl     # all solutions
//	kcm -q 'main.' -timeout 2s -budget 1000000 prog.pl
//	kcm -q 'main.' -profile queens.pl              # cycles by predicate
//	kcm -q 'main.' -tracejson t.jsonl -folded f.txt queens.pl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/term"
	"repro/internal/trace"
)

func main() {
	var (
		query     = flag.String("q", "main.", "query goal to run")
		stats     = flag.Bool("stats", false, "print machine counters")
		cache     = flag.Bool("cache", false, "print cache statistics")
		traceText = flag.Bool("trace", false, "trace every instruction (macrocode monitor)")
		shallow   = flag.Bool("shallow", true, "enable shallow backtracking (delayed choice points)")
		warm      = flag.Bool("warm", false, "time a second run with warm caches (paper protocol)")
		prof      = flag.Bool("profile", false, "per-predicate cycle profile (flat + cumulative tables)")
		tracejson = flag.String("tracejson", "", "stream structured trace events to this JSONL file")
		folded    = flag.String("folded", "", "write folded stacks (flamegraph collapsed format) to this file")
		timeout   = flag.Duration("timeout", 0, "abort the query after this wall-clock duration (0 = none)")
		budget    = flag.Uint64("budget", 0, "abort after this many simulated instructions (0 = default bound)")
		nsols     = flag.Int("n", 1, "enumerate up to k solutions (0 = all)")
		heap      = flag.Uint64("heap", 0, "global stack (heap) size in words (0 = default)")
		gc        = flag.Bool("gc", true, "collect the heap on overflow instead of failing the query")
		gcmark    = flag.Uint64("gcwatermark", 0, "free words a collection must leave to retry (0 = heap/16)")
		gcthresh  = flag.Uint64("gcthreshold", 0, "also collect at call boundaries once the heap tops this many words (0 = overflow-only)")
		fuse      = flag.Bool("fuse", true, "install fused superinstruction handlers (host-side speed only; simulated counters are identical, -fuse=false is the A/B control)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kcm [flags] program.pl...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var src strings.Builder
	for _, f := range flag.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		src.Write(b)
		src.WriteByte('\n')
	}
	prog, err := core.Load(src.String())
	if err != nil {
		fatal(err)
	}
	cfg := machine.Config{Out: os.Stdout}
	if !*shallow {
		cfg.Shallow = machine.Off
	}
	if *heap > 0 {
		cfg.GlobalBase, cfg.GlobalSize = machine.DefGlobalBase, uint32(*heap)
	}
	if !*gc {
		cfg.GCOnOverflow = machine.Off
	}
	cfg.HeapWatermarkWords = uint32(*gcmark)
	cfg.GCThresholdWords = uint32(*gcthresh)
	if !*fuse {
		cfg.Fusion = machine.Off
	}
	if *traceText {
		cfg.Trace = os.Stderr
	}
	opts := []core.QueryOption{core.WithConfig(cfg), core.WithMaxSolutions(*nsols)}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, core.WithContext(ctx))
	}
	if *budget > 0 {
		opts = append(opts, core.WithBudget(*budget))
	}

	// The JSONL sink is opened once and streams every run (with -warm,
	// both the cold and the warm run; each run's events restart at
	// sequence 1 on its own machine).
	var jsonl *trace.JSONL
	if *tracejson != "" {
		f, err := os.Create(*tracejson)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonl = trace.NewJSONL(f)
		defer func() {
			if err := jsonl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "kcm: trace:", err)
			}
		}()
	}
	profiling := *prof || *folded != ""

	// run executes one enumeration with its own profiler, so with
	// -warm the reported profile covers only the displayed (warm) run
	// while the JSONL stream keeps everything.
	run := func() ([]*core.Solution, *core.Solution, *trace.Profiler, error) {
		ro := opts
		var pr *trace.Profiler
		if profiling {
			pr = trace.NewProfiler()
			ro = append(ro[:len(ro):len(ro)], core.WithProfile(pr))
		}
		if jsonl != nil {
			ro = append(ro[:len(ro):len(ro)], core.WithTrace(jsonl))
		}
		sols, final, err := enumerate(prog, *query, *budget, ro)
		return sols, final, pr, err
	}

	sols, final, pr, err := run()
	if err != nil {
		fatal(err)
	}
	if *warm && len(sols) > 0 {
		// Second run for the timing (the paper's best-of-several
		// protocol).
		if sols2, final2, pr2, err := run(); err == nil && len(sols2) > 0 {
			sols, final, pr = sols2, final2, pr2
		}
	}

	if *folded != "" && pr != nil {
		f, err := os.Create(*folded)
		if err != nil {
			fatal(err)
		}
		werr := pr.WriteFolded(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
	}
	if !*prof {
		pr = nil
	}

	if len(sols) == 0 {
		fmt.Println("no")
		printStats(final, *stats, *cache, pr)
		os.Exit(1)
	}
	fmt.Println("yes")
	for i, sol := range sols {
		if len(sols) > 1 {
			fmt.Printf("solution %d:\n", i+1)
		}
		var names []string
		for v := range sol.Vars {
			names = append(names, string(v))
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s = %v\n", n, sol.Vars[term.Var(n)])
		}
	}
	printStats(sols[len(sols)-1], *stats, *cache, pr)
}

// enumerate collects up to the option-bounded number of solutions;
// final is the outcome carrying the machine counters (the last
// solution, or the failed result when there is none).
func enumerate(prog *core.Program, query string, budget uint64, opts []core.QueryOption) ([]*core.Solution, *core.Solution, error) {
	it, err := prog.Solutions(query, opts...)
	if err != nil {
		return nil, nil, err
	}
	var sols []*core.Solution
	for it.Next() {
		sols = append(sols, it.Solution())
	}
	if it.Err() != nil {
		return nil, nil, it.Err()
	}
	if it.Suspended() {
		return nil, nil, fmt.Errorf("query suspended: budget of %d instructions exhausted", budget)
	}
	final := it.Solution()
	if len(sols) > 0 {
		final = sols[len(sols)-1]
	}
	return sols, final, nil
}

// printStats reports the timing line and the optional counter blocks
// for the run that produced sol (counters are cumulative across an
// enumeration).
func printStats(sol *core.Solution, stats, cache bool, pr *trace.Profiler) {
	if sol == nil {
		return
	}
	s := sol.Result.Stats
	fmt.Printf("\n%.3f ms, %d inferences, %.0f Klips (%d cycles at %.0f ns)\n",
		s.Millis(), s.Inferences, s.Klips(), s.Cycles, s.NsPerCycle)
	if stats {
		fmt.Printf("instructions      %12d\n", s.Instrs)
		fmt.Printf("deref steps       %12d\n", s.DerefSteps)
		fmt.Printf("unify nodes       %12d\n", s.UnifyNodes)
		fmt.Printf("trail checks      %12d\n", s.TrailChecks)
		fmt.Printf("trail pushes      %12d\n", s.TrailPushes)
		fmt.Printf("shallow tries     %12d\n", s.ShallowTries)
		fmt.Printf("shallow fails     %12d\n", s.ShallowFails)
		fmt.Printf("deep fails        %12d\n", s.DeepFails)
		fmt.Printf("choice points     %12d\n", s.ChoicePoints)
		fmt.Printf("neck updates      %12d\n", s.NeckUpdates)
		fmt.Printf("determinate necks %12d\n", s.NeckDet)
		fmt.Printf("environments      %12d\n", s.EnvAllocs)
	}
	if f := sol.Result.Fusion; stats && f.Runs > 0 {
		fmt.Printf("fusion: %d handlers (%d get-runs, %d put+calls, %d det) covering %d instrs; %d dispatches, %d fused steps\n",
			f.Runs, f.GetRuns, f.PutCalls, f.DetCalls, f.Covered, f.Dispatches, f.FusedSteps)
	}
	if g := sol.Result.GC; g.Collections > 0 {
		fmt.Printf("gc: %d collections, %d words freed, %d live, %d trail entries dropped, %d cycles\n",
			g.Collections, g.FreedWords, g.LiveWords, g.TrailDrops, g.Cycles)
	}
	if pr != nil {
		fmt.Println()
		trace.RenderProfile(os.Stdout, pr.Rows(), pr.Total())
	}
	if cache {
		d, c := sol.Result.DCache, sol.Result.CCache
		fmt.Printf("data cache: %d reads, %d writes, %.2f%% hits, %d writebacks\n",
			d.Reads, d.Writes, d.HitRatio()*100, d.WriteBacks)
		fmt.Printf("code cache: %d reads, %.2f%% hits\n", c.Reads, c.HitRatio()*100)
		m := sol.Result.Mem
		fmt.Printf("memory: %d reads, %d writes, %d page-mode hits\n", m.Reads, m.Writes, m.PageHits)
		fmt.Printf("mmu: %d translations, %d demand pages\n",
			sol.Result.DataMMU.Translations, sol.Result.DataMMU.PageFaults)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcm:", err)
	os.Exit(1)
}
