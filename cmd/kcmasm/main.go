// Command kcmasm compiles a Prolog program and prints the linked KCM
// code image as a disassembly listing, together with the static size
// statistics of the three encodings compared in Table 1.
//
// Usage:
//
//	kcmasm [-sizes] program.pl...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/plm"
	"repro/internal/spur"
)

func main() {
	sizes := flag.Bool("sizes", false, "print per-predicate static sizes (KCM/PLM/SPUR)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kcmasm [-sizes] program.pl...")
		os.Exit(2)
	}
	var src strings.Builder
	for _, f := range flag.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		src.Write(b)
		src.WriteByte('\n')
	}
	prog, err := core.Load(src.String())
	if err != nil {
		fatal(err)
	}
	c := compiler.New(prog.Syms())
	mod, err := c.CompileProgram(prog.Clauses())
	if err != nil {
		fatal(err)
	}
	im, err := asm.Link(mod)
	if err != nil {
		fatal(err)
	}
	fmt.Print(asm.Disasm(im))
	if *sizes {
		fmt.Printf("\n%-24s %8s %8s %8s %8s %8s %8s\n",
			"predicate", "KCM.in", "KCM.wd", "PLM.in", "PLM.by", "SPUR.in", "SPUR.by")
		for _, pi := range mod.Order {
			st := im.Stats[pi]
			ps := plm.PredSize(mod.Preds[pi].Code)
			ss := spur.PredSize(mod.Preds[pi].Code)
			fmt.Printf("%-24v %8d %8d %8d %8d %8d %8d\n",
				pi, st.Instrs, st.Words, ps.Instrs, ps.Bytes, ss.Instrs, ss.Bytes)
		}
		fmt.Printf("\ntotal: %d instructions, %d words (%d bytes)\n",
			im.TotalInstrs(), im.TotalWords(), im.TotalWords()*8)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcmasm:", err)
	os.Exit(1)
}
