// Command kcmbench regenerates the tables and experiments of the
// paper's evaluation section (section 4) plus the in-text cache study
// and the hardware-unit ablations.
//
// Usage:
//
//	kcmbench            # everything
//	kcmbench -table 2   # one table: 1, 2, 3, 4, cache, shallow, deref, trail
//
// Profiling the simulator itself (the host, not the simulated
// machine — simulated numbers come from the tables):
//
//	kcmbench -cpuprofile cpu.pprof          # pprof CPU profile of the run
//	kcmbench -memprofile mem.pprof          # heap profile at exit
//	kcmbench -hostprofile nrev1             # per-opcode host ns for one program
//
// Profiling the simulated machine (where the paper's cycles go,
// predicate by predicate, next to the whole-run tables):
//
//	kcmbench -predprofile queens            # one program's warm-run profile
//	kcmbench -predprofile all               # the whole suite
//	kcmbench -predprofile nrev1 -heap 256   # ... in a tiny heap (GC shows up as <gc>)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/trace"
)

// predProfile runs one benchmark program under the warm-run protocol
// with the per-predicate cycle profiler attached and prints where the
// simulated cycles go. The profiler self-clears on the counter reset
// between the runs, so the tables cover exactly the timed (warm) run
// and their total equals the reported cycle count.
func predProfile(name string, heapWords uint32) error {
	p, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown program %q", name)
	}
	pr := trace.NewProfiler()
	cfg := machine.Config{Hook: pr}
	if heapWords > 0 {
		cfg.GlobalBase, cfg.GlobalSize = machine.DefGlobalBase, heapWords
	}
	r, err := bench.RunKCMWarm(p, false, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Predicate cycle profile of %s (warm run: %d cycles, %.3f ms)\n",
		name, r.Stats.Cycles, r.Millis())
	if g := r.Result.GC; g.Collections > 0 {
		fmt.Printf("gc: %d collections, %d words freed, %d cycles\n",
			g.Collections, g.FreedWords, g.Cycles)
	}
	trace.RenderProfile(os.Stdout, pr.Rows(), pr.Total())
	fmt.Println()
	return nil
}

func predProfileAll(heapWords uint32) error {
	for _, p := range bench.Suite {
		if err := predProfile(p.Name, heapWords); err != nil {
			return err
		}
	}
	return nil
}

// hostProfile runs one benchmark program twice (cold, then warm — the
// steady state the predecode work targets) with the per-opcode
// host-time monitor on, and prints where the interpreter's wall-clock
// time goes.
func hostProfile(name string, heapWords uint32) error {
	p, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown program %q", name)
	}
	im, err := bench.Compile(p, true)
	if err != nil {
		return err
	}
	cfg := machine.Config{HostProfile: true}
	if heapWords > 0 {
		cfg.GlobalBase, cfg.GlobalSize = machine.DefGlobalBase, heapWords
	}
	m, err := machine.New(im, cfg)
	if err != nil {
		return err
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return fmt.Errorf("%s: no query entry", name)
	}
	for i := 0; i < 2; i++ {
		m.ResetStats()
		if _, err := m.Run(entry); err != nil {
			return err
		}
	}
	fmt.Printf("Host-time profile of %s (2 runs, warm second)\n", name)
	fmt.Println(machine.RenderHostProfile(m.HostProfile()))
	return nil
}

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, cache, shallow, deref, trail, all")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile of the simulator to `file`")
	hostprofile := flag.String("hostprofile", "", "print the per-opcode host-time profile of one benchmark `program` and exit")
	predprofile := flag.String("predprofile", "", "print the per-predicate simulated-cycle profile of one benchmark `program` (or \"all\") and exit")
	heap := flag.Uint64("heap", 0, "global stack (heap) size in `words` for -predprofile/-hostprofile runs (0 = default)")
	fuse := flag.Bool("fuse", true, "install fused superinstruction handlers (host-side speed only; every simulated table is byte-identical with -fuse=false)")
	flag.Parse()

	if !*fuse {
		bench.Fusion = machine.Off
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "kcmbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail("memprofile", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("memprofile", err)
			}
		}()
	}

	if *hostprofile != "" {
		if err := hostProfile(*hostprofile, uint32(*heap)); err != nil {
			fail("hostprofile", err)
		}
		return
	}
	if *predprofile != "" {
		var err error
		if *predprofile == "all" {
			err = predProfileAll(uint32(*heap))
		} else {
			err = predProfile(*predprofile, uint32(*heap))
		}
		if err != nil {
			fail("predprofile", err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "kcmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: static code size comparison (paper avgs: KCM/PLM instr 1.10, bytes 2.96; SPUR/KCM instr 13.61, bytes 6.43)")
		fmt.Println(bench.RenderTable1(rows))
		return nil
	})
	run("2", func() error {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Println("Table 2: comparison with PLM (paper avg ratio 3.05)")
		fmt.Println(bench.RenderTimeTable(rows, "PLM"))
		return nil
	})
	run("3", func() error {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table 3: comparison with QUINTUS/SUN3-280 (paper avg ratio 7.85)")
		fmt.Println(bench.RenderTimeTable(rows, "QUINTUS"))
		return nil
	})
	run("4", func() error {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Println("Table 4: peak performance of dedicated Prolog machines (paper KCM: 833 - 760)")
		fmt.Println(bench.RenderTable4(rows))
		return nil
	})
	run("cache", func() error {
		rows, err := bench.CacheStudy()
		if err != nil {
			return err
		}
		fmt.Println("Cache-collision study (section 3.2.4)")
		fmt.Println(bench.RenderCacheStudy(rows))
		return nil
	})
	run("shallow", func() error {
		rows, err := bench.AblationShallow()
		if err != nil {
			return err
		}
		fmt.Println("Ablation: shallow backtracking vs eager choice points")
		fmt.Println(bench.RenderShallow(rows))
		return nil
	})
	run("deref", func() error {
		rows, err := bench.AblationUnit("deref")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: dereference hardware (1 cycle/link vs software loop)")
		fmt.Println(bench.RenderUnit(rows, "deref"))
		return nil
	})
	run("trail", func() error {
		rows, err := bench.AblationUnit("trail")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: parallel trail check vs explicit comparisons")
		fmt.Println(bench.RenderUnit(rows, "trail"))
		return nil
	})
}
