// Command kcmbench regenerates the tables and experiments of the
// paper's evaluation section (section 4) plus the in-text cache study
// and the hardware-unit ablations.
//
// Usage:
//
//	kcmbench            # everything
//	kcmbench -table 2   # one table: 1, 2, 3, 4, cache, shallow, deref, trail
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, cache, shallow, deref, trail, all")
	flag.Parse()

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "kcmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: static code size comparison (paper avgs: KCM/PLM instr 1.10, bytes 2.96; SPUR/KCM instr 13.61, bytes 6.43)")
		fmt.Println(bench.RenderTable1(rows))
		return nil
	})
	run("2", func() error {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Println("Table 2: comparison with PLM (paper avg ratio 3.05)")
		fmt.Println(bench.RenderTimeTable(rows, "PLM"))
		return nil
	})
	run("3", func() error {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table 3: comparison with QUINTUS/SUN3-280 (paper avg ratio 7.85)")
		fmt.Println(bench.RenderTimeTable(rows, "QUINTUS"))
		return nil
	})
	run("4", func() error {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Println("Table 4: peak performance of dedicated Prolog machines (paper KCM: 833 - 760)")
		fmt.Println(bench.RenderTable4(rows))
		return nil
	})
	run("cache", func() error {
		rows, err := bench.CacheStudy()
		if err != nil {
			return err
		}
		fmt.Println("Cache-collision study (section 3.2.4)")
		fmt.Println(bench.RenderCacheStudy(rows))
		return nil
	})
	run("shallow", func() error {
		rows, err := bench.AblationShallow()
		if err != nil {
			return err
		}
		fmt.Println("Ablation: shallow backtracking vs eager choice points")
		fmt.Println(bench.RenderShallow(rows))
		return nil
	})
	run("deref", func() error {
		rows, err := bench.AblationUnit("deref")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: dereference hardware (1 cycle/link vs software loop)")
		fmt.Println(bench.RenderUnit(rows, "deref"))
		return nil
	})
	run("trail", func() error {
		rows, err := bench.AblationUnit("trail")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: parallel trail check vs explicit comparisons")
		fmt.Println(bench.RenderUnit(rows, "trail"))
		return nil
	})
}
