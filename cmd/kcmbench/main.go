// Command kcmbench regenerates the tables and experiments of the
// paper's evaluation section (section 4) plus the in-text cache study
// and the hardware-unit ablations.
//
// Usage:
//
//	kcmbench            # everything
//	kcmbench -table 2   # one table: 1, 2, 3, 4, cache, shallow, deref, trail
//
// Profiling the simulator itself (the host, not the simulated
// machine — simulated numbers come from the tables):
//
//	kcmbench -cpuprofile cpu.pprof          # pprof CPU profile of the run
//	kcmbench -memprofile mem.pprof          # heap profile at exit
//	kcmbench -hostprofile nrev1             # per-opcode host ns for one program
//
// Profiling the simulated machine (where the paper's cycles go,
// predicate by predicate, next to the whole-run tables):
//
//	kcmbench -predprofile queens            # one program's warm-run profile
//	kcmbench -predprofile all               # the whole suite
//	kcmbench -predprofile nrev1 -heap 256   # ... in a tiny heap (GC shows up as <gc>)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/compiler"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// predProfile runs one benchmark program under the warm-run protocol
// with the per-predicate cycle profiler attached and prints where the
// simulated cycles go. The profiler self-clears on the counter reset
// between the runs, so the tables cover exactly the timed (warm) run
// and their total equals the reported cycle count.
func predProfile(name string, heapWords uint32) error {
	p, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown program %q", name)
	}
	pr := trace.NewProfiler()
	cfg := machine.Config{Hook: pr}
	if heapWords > 0 {
		cfg.GlobalBase, cfg.GlobalSize = machine.DefGlobalBase, heapWords
	}
	r, err := bench.RunKCMWarm(p, false, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Predicate cycle profile of %s (warm run: %d cycles, %.3f ms)\n",
		name, r.Stats.Cycles, r.Millis())
	if g := r.Result.GC; g.Collections > 0 {
		fmt.Printf("gc: %d collections, %d words freed, %d cycles\n",
			g.Collections, g.FreedWords, g.Cycles)
	}
	trace.RenderProfile(os.Stdout, pr.Rows(), pr.Total())
	fmt.Println()
	return nil
}

func predProfileAll(heapWords uint32) error {
	for _, p := range bench.Suite {
		if err := predProfile(p.Name, heapWords); err != nil {
			return err
		}
	}
	return nil
}

// hostProfile runs one benchmark program twice (cold, then warm — the
// steady state the predecode work targets) with the per-opcode
// host-time monitor on, and prints where the interpreter's wall-clock
// time goes.
func hostProfile(name string, heapWords uint32) error {
	p, ok := bench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown program %q", name)
	}
	im, err := bench.Compile(p, true)
	if err != nil {
		return err
	}
	cfg := machine.Config{HostProfile: true}
	if heapWords > 0 {
		cfg.GlobalBase, cfg.GlobalSize = machine.DefGlobalBase, heapWords
	}
	m, err := machine.New(im, cfg)
	if err != nil {
		return err
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return fmt.Errorf("%s: no query entry", name)
	}
	for i := 0; i < 2; i++ {
		m.ResetStats()
		if _, err := m.Run(entry); err != nil {
			return err
		}
	}
	fmt.Printf("Host-time profile of %s (2 runs, warm second)\n", name)
	fmt.Println(machine.RenderHostProfile(m.HostProfile()))
	return nil
}

// serveBench is the kcmd load-generator benchmark (the BENCH_8
// artifact): an in-process daemon on an ephemeral loopback port,
// hammered by N concurrent clients with a mix of single-shot queries,
// session-driven enumerations and NDJSON streams, reporting a
// latency histogram per op and the daemon's own /v1/stats snapshot.
func serveBench(clients, queries int, rate float64, poolSize int) error {
	const listsSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`
	queens, ok := bench.ByName("queens")
	if !ok {
		return fmt.Errorf("queens program missing from the suite")
	}
	srv, err := server.New(server.Config{
		Programs: map[string]string{
			"lists":  listsSrc,
			"queens": queens.Source,
		},
		PoolOptions: []engine.PoolOption{
			engine.WithPoolSize(poolSize),
			engine.WithConfig(machine.Config{Fusion: bench.Fusion}),
		},
		IdleTimeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	c := client.New("http://" + l.Addr().String())
	mix := []client.LoadOp{
		{Name: "nrev30-single", Kind: client.OpQuery, MinSolutions: 1,
			Req: wire.QueryRequest{Program: "lists",
				Goal: "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], R)."}},
		{Name: "queens6-enum", Kind: client.OpEnumerate, MinSolutions: 4,
			Req: wire.QueryRequest{Program: "queens", Goal: "queens(6, Qs).", Budget: 200_000}},
		{Name: "member-stream", Kind: client.OpStream, MinSolutions: 10,
			Req: wire.QueryRequest{Program: "lists", Goal: "member(X, [1,2,3,4,5,6,7,8,9,10])."}},
		{Name: "queens7-single", Kind: client.OpQuery, MinSolutions: 1,
			Req: wire.QueryRequest{Program: "queens", Goal: "queens(7, Qs)."}},
	}
	rep, err := client.RunLoad(ctx, c, client.LoadConfig{
		Clients:          clients,
		QueriesPerClient: queries,
		RatePerClient:    rate,
		Mix:              mix,
	})
	if err != nil {
		return err
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve exit: %w", err)
	}
	out := struct {
		BenchID  string             `json:"bench_id"`
		Protocol string             `json:"protocol"`
		HostCPUs int                `json:"host_cpus"`
		Load     *client.LoadReport `json:"load"`
		Server   wire.StatsReply    `json:"server"`
	}{
		BenchID: "8",
		Protocol: "kcmd on an ephemeral loopback port; N concurrent clients round-robin a " +
			"single-shot/enumerate/stream mix through internal/client (see kcmbench -serve)",
		HostCPUs: runtime.NumCPU(),
		Load:     rep,
		Server:   stats,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func main() {
	table := flag.String("table", "all", "table to regenerate: 1, 2, 3, 4, cache, shallow, deref, trail, all")
	serve := flag.Bool("serve", false, "run the kcmd load-generator benchmark and print its JSON report")
	clients := flag.Int("clients", 8, "concurrent clients for -serve")
	queries := flag.Int("queries", 40, "ops per client for -serve")
	rate := flag.Float64("rate", 0, "target ops/s per client for -serve (0 = open throttle)")
	servePool := flag.Int("servepool", 0, "machines per image for -serve (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile of the simulator to `file`")
	hostprofile := flag.String("hostprofile", "", "print the per-opcode host-time profile of one benchmark `program` and exit")
	predprofile := flag.String("predprofile", "", "print the per-predicate simulated-cycle profile of one benchmark `program` (or \"all\") and exit")
	heap := flag.Uint64("heap", 0, "global stack (heap) size in `words` for -predprofile/-hostprofile runs (0 = default)")
	fuse := flag.Bool("fuse", true, "install fused superinstruction handlers (host-side speed only; every simulated table is byte-identical with -fuse=false)")
	flag.Parse()

	if !*fuse {
		bench.Fusion = machine.Off
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "kcmbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	if *serve {
		if err := serveBench(*clients, *queries, *rate, *servePool); err != nil {
			fail("serve", err)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail("memprofile", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("memprofile", err)
			}
		}()
	}

	if *hostprofile != "" {
		if err := hostProfile(*hostprofile, uint32(*heap)); err != nil {
			fail("hostprofile", err)
		}
		return
	}
	if *predprofile != "" {
		var err error
		if *predprofile == "all" {
			err = predProfileAll(uint32(*heap))
		} else {
			err = predProfile(*predprofile, uint32(*heap))
		}
		if err != nil {
			fail("predprofile", err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "kcmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table 1: static code size comparison (paper avgs: KCM/PLM instr 1.10, bytes 2.96; SPUR/KCM instr 13.61, bytes 6.43)")
		fmt.Println(bench.RenderTable1(rows))
		return nil
	})
	run("2", func() error {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Println("Table 2: comparison with PLM (paper avg ratio 3.05)")
		fmt.Println(bench.RenderTimeTable(rows, "PLM"))
		return nil
	})
	run("3", func() error {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table 3: comparison with QUINTUS/SUN3-280 (paper avg ratio 7.85)")
		fmt.Println(bench.RenderTimeTable(rows, "QUINTUS"))
		return nil
	})
	run("4", func() error {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Println("Table 4: peak performance of dedicated Prolog machines (paper KCM: 833 - 760)")
		fmt.Println(bench.RenderTable4(rows))
		return nil
	})
	run("cache", func() error {
		rows, err := bench.CacheStudy()
		if err != nil {
			return err
		}
		fmt.Println("Cache-collision study (section 3.2.4)")
		fmt.Println(bench.RenderCacheStudy(rows))
		return nil
	})
	run("shallow", func() error {
		rows, err := bench.AblationShallow()
		if err != nil {
			return err
		}
		fmt.Println("Ablation: shallow backtracking vs eager choice points")
		fmt.Println(bench.RenderShallow(rows))
		return nil
	})
	run("deref", func() error {
		rows, err := bench.AblationUnit("deref")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: dereference hardware (1 cycle/link vs software loop)")
		fmt.Println(bench.RenderUnit(rows, "deref"))
		return nil
	})
	run("trail", func() error {
		rows, err := bench.AblationUnit("trail")
		if err != nil {
			return err
		}
		fmt.Println("Ablation: parallel trail check vs explicit comparisons")
		fmt.Println(bench.RenderUnit(rows, "trail"))
		return nil
	})
}
