// Command kcmd is the KCM query daemon: a network front-end over the
// warm-machine pool. It loads Prolog programs at startup, compiles
// each distinct goal once, and serves solutions over HTTP/JSON — one
// endpoint per verb (query, next-solution, cancel, stats) plus an
// NDJSON streaming mode for multi-solution enumeration. Per-request
// deadlines and step budgets map onto the machine's resumable
// sessions; budget-suspended queries are parked in a session table
// with idle eviction; SIGTERM drains gracefully, finishing in-flight
// and parked queries before exit. With -state DIR, parked sessions
// are instead serialized to DIR on drain (and on /v1/suspend) and
// survive the restart: the next kcmd process resumes them via
// /v1/resume, byte-identical down to the simulated cycle counters.
//
// Usage:
//
//	kcmd [flags] program.pl...
//
// Examples:
//
//	kcmd -addr 127.0.0.1:7071 lists.pl
//	kcmd -demo                              # serve the built-in list library
//	kcmd -smoke                             # self-test: ephemeral port, scripted
//	                                        # query + stream + cancel, clean drain
//
//	curl -s localhost:7071/v1/query -d '{"goal":"nrev([1,2,3],R)."}'
//	curl -s localhost:7071/v1/query -d '{"goal":"member(X,[a,b,c]).","stream":true}'
//	curl -s localhost:7071/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/wire"
)

// demoSrc is the built-in list library served by -demo and -smoke.
const demoSrc = `
:- dynamic(color/1).
color(white).
likes(X) :- color(X).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7071", "listen address (use :0 for an ephemeral port)")
		poolSize = flag.Int("pool", 0, "machines per image (0 = GOMAXPROCS)")
		warm     = flag.Bool("warm", false, "warm each image's machines on first use (paper protocol)")
		fuse     = flag.Bool("fuse", true, "install fused superinstruction handlers")
		prof     = flag.Bool("profile", false, "pool-wide per-predicate cycle profiling")
		budget   = flag.Uint64("budget", 0, "default step budget per execution slice (0 = 50M)")
		timeout  = flag.Duration("timeout", 0, "default wall-clock bound per request slice (0 = 30s)")
		idle     = flag.Duration("idle", 60*time.Second, "evict sessions idle this long")
		drainT   = flag.Duration("drain-timeout", 15*time.Second, "bound on the graceful drain")
		sessions = flag.Int("sessions", 0, "session-table cap (0 = 4x pool size)")
		state    = flag.String("state", "", "state directory for session suspend/resume across restarts")
		demo     = flag.Bool("demo", false, "serve the built-in list library (app/nrev/member)")
		smoke    = flag.Bool("smoke", false, "self-test against an ephemeral port and exit")
	)
	flag.Parse()

	programs := map[string]string{}
	if *demo || *smoke {
		programs["lists"] = demoSrc
	}
	for _, f := range flag.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		programs[name] = string(b)
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kcmd [flags] program.pl...  (or -demo)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := server.Config{
		Programs: programs,
		PoolOptions: []engine.PoolOption{
			engine.WithPoolSize(*poolSize),
			engine.WithWarm(*warm),
			engine.WithFusion(*fuse),
			engine.WithProfiling(*prof),
		},
		DefaultBudget:  *budget,
		DefaultTimeout: *timeout,
		IdleTimeout:    *idle,
		MaxSessions:    *sessions,
		StateDir:       *state,
	}

	if *smoke {
		if err := runSmoke(cfg, *drainT); err != nil {
			fatal(fmt.Errorf("smoke: %w", err))
		}
		fmt.Println("kcmd: smoke ok")
		return
	}

	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kcmd: serving %d program(s) on %s\n", len(programs), l.Addr())

	// SIGTERM/SIGINT: stop accepting, finish in-flight requests,
	// complete parked sessions, then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Println("kcmd: draining")
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		done <- srv.Drain(ctx)
	}()

	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Println("kcmd: drained, bye")
}

// runSmoke is the verify-gate self-test: a real daemon on an
// ephemeral loopback port, exercised through the real client — a
// single-shot query, a session-driven enumeration, a budget-suspended
// query that is cancelled, an NDJSON stream — then a drain with a
// suspended session still parked, asserting every machine returns to
// the pool.
func runSmoke(cfg server.Config, drainT time.Duration) error {
	if cfg.StateDir == "" {
		dir, err := os.MkdirTemp("", "kcmd-state-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.StateDir = dir
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := client.New("http://" + l.Addr().String())

	// 1. Single-shot query.
	rep, err := c.Query(ctx, wire.QueryRequest{Goal: "nrev([1,2,3,4,5], R)."})
	if err != nil {
		return err
	}
	if rep.Status != wire.StatusYes || rep.Bindings["R"] != "[5,4,3,2,1]" {
		return fmt.Errorf("query: %+v", rep)
	}

	// 2. Session-driven enumeration: 3 solutions then exhaustion.
	rep, err = c.Query(ctx, wire.QueryRequest{Goal: "member(X, [a,b,c]).", Enumerate: true})
	if err != nil {
		return err
	}
	for _, want := range []string{"a", "b", "c"} {
		if rep.Status != wire.StatusYes || rep.Bindings["X"] != want {
			return fmt.Errorf("enumerate: got %+v, want X=%s", rep, want)
		}
		if rep, err = c.Next(ctx, rep.Session, 0); err != nil {
			return err
		}
	}
	if rep.Status != wire.StatusNo || rep.Solutions != 3 {
		return fmt.Errorf("enumerate end: %+v", rep)
	}

	// 3. Budget suspension + cancel.
	rep, err = c.Query(ctx, wire.QueryRequest{
		Goal:   "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20], R).",
		Budget: 100,
	})
	if err != nil {
		return err
	}
	if rep.Status != wire.StatusSuspended || rep.Session == "" {
		return fmt.Errorf("suspend: %+v", rep)
	}
	if rep, err = c.Cancel(ctx, rep.Session); err != nil || rep.Status != wire.StatusCancelled {
		return fmt.Errorf("cancel: %+v, %w", rep, err)
	}

	// 4. Streaming enumeration.
	var streamed int
	fin, err := c.Stream(ctx, wire.QueryRequest{Goal: "member(X, [1,2,3,4,5])."},
		func(wire.Reply) bool { streamed++; return true })
	if err != nil {
		return err
	}
	if fin.Status != wire.StatusDone || streamed != 5 || fin.Solutions != 5 {
		return fmt.Errorf("stream: %d solutions, final %+v", streamed, fin)
	}

	// 5. Dynamic database: assert into a tenant, query it, retract,
	// and check the shared static program never saw the delta.
	rep, err = c.Assert(ctx, wire.AssertRequest{Tenant: "smoke", Clause: "color(red)"})
	if err != nil || rep.Status != wire.StatusYes || rep.Version == 0 {
		return fmt.Errorf("assert: %+v, %w", rep, err)
	}
	var liked []string
	if _, err = c.Stream(ctx, wire.QueryRequest{Goal: "likes(X).", Tenant: "smoke"},
		func(line wire.Reply) bool { liked = append(liked, line.Bindings["X"]); return true }); err != nil {
		return err
	}
	if len(liked) != 2 || liked[0] != "white" || liked[1] != "red" {
		return fmt.Errorf("tenant query after assert: %v", liked)
	}
	if rep, err = c.Retract(ctx, wire.RetractRequest{Tenant: "smoke", Clause: "color(red)"}); err != nil || rep.Status != wire.StatusYes {
		return fmt.Errorf("retract: %+v, %w", rep, err)
	}
	if rep, err = c.Query(ctx, wire.QueryRequest{Goal: "likes(X).", Tenant: "smoke", Enumerate: false}); err != nil ||
		rep.Status != wire.StatusYes || rep.Bindings["X"] != "white" {
		return fmt.Errorf("tenant query after retract: %+v, %w", rep, err)
	}
	if rep, err = c.Query(ctx, wire.QueryRequest{Goal: "likes(X)."}); err != nil ||
		rep.Status != wire.StatusYes || rep.Bindings["X"] != "white" {
		return fmt.Errorf("static program after tenant mutations: %+v, %w", rep, err)
	}

	// 6. Stats reflect the traffic.
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if st.Totals.Queries == 0 || st.Totals.Solutions < 9 || st.Sessions.Created < 2 {
		return fmt.Errorf("stats: %+v", st)
	}
	if st.Tenants != 1 {
		return fmt.Errorf("stats tenants: %+v", st)
	}

	// 7. Session migration within the daemon: park an enumeration to
	// disk mid-flight, resume its handle, and finish it.
	const migGoal = "nrev([1,2,3,4,5,6,7,8,9,10], R), member(X, [1,2,3])."
	rep, err = c.Query(ctx, wire.QueryRequest{Goal: migGoal, Enumerate: true})
	if err != nil || rep.Status != wire.StatusYes {
		return fmt.Errorf("migration query: %+v, %w", rep, err)
	}
	park, err := c.Suspend(ctx, rep.Session)
	if err != nil || park.Status != wire.StatusParked || park.Handle == "" {
		return fmt.Errorf("suspend to disk: %+v, %w", park, err)
	}
	rep, err = c.Resume(ctx, wire.ResumeRequest{Handle: park.Handle})
	if err != nil || rep.Status != wire.StatusSuspended {
		return fmt.Errorf("resume from disk: %+v, %w", rep, err)
	}
	sols := park.Solutions
	for rep, err = c.Next(ctx, rep.Session, 0); err == nil && rep.Status == wire.StatusYes; rep, err = c.Next(ctx, rep.Session, 0) {
		sols++
	}
	if err != nil || rep.Status != wire.StatusNo || sols != 3 {
		return fmt.Errorf("post-resume enumeration: %d solutions, %+v, %w", sols, rep, err)
	}

	// 8. Drain with a suspended session parked: with a state directory
	// it is serialized to disk and every machine returns to the pool.
	rep, err = c.Query(ctx, wire.QueryRequest{Goal: migGoal, Budget: 100})
	if err != nil {
		return err
	}
	if rep.Status != wire.StatusSuspended {
		return fmt.Errorf("pre-drain suspend: %+v", rep)
	}
	handle := rep.Session
	dctx, dcancel := context.WithTimeout(context.Background(), drainT)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve exit: %w", err)
	}
	if ps := srv.Pool().Stats(); ps.InUse != 0 {
		return fmt.Errorf("machines leaked across drain: %+v", ps)
	}
	if _, err := os.Stat(filepath.Join(cfg.StateDir, handle+".snap")); err != nil {
		return fmt.Errorf("drain did not park the session: %w", err)
	}

	// 9. Restart: a second daemon process-equivalent over the same
	// state directory resumes the drained session and finishes it.
	srv2, err := server.New(cfg)
	if err != nil {
		return err
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr2 := make(chan error, 1)
	go func() { serveErr2 <- srv2.Serve(l2) }()
	c2 := client.New("http://" + l2.Addr().String())
	rep, err = c2.Resume(ctx, wire.ResumeRequest{Handle: handle})
	if err != nil || rep.Status != wire.StatusSuspended {
		return fmt.Errorf("resume after restart: %+v, %w", rep, err)
	}
	sols = rep.Solutions
	for rep, err = c2.Next(ctx, rep.Session, 0); err == nil; rep, err = c2.Next(ctx, rep.Session, 0) {
		if rep.Status == wire.StatusYes {
			sols++
		} else if rep.Status != wire.StatusSuspended {
			break
		}
	}
	if err != nil || rep.Status != wire.StatusNo || sols != 3 {
		return fmt.Errorf("post-restart enumeration: %d solutions, %+v, %w", sols, rep, err)
	}
	dctx2, dcancel2 := context.WithTimeout(context.Background(), drainT)
	defer dcancel2()
	if err := srv2.Drain(dctx2); err != nil {
		return fmt.Errorf("drain 2: %w", err)
	}
	if err := <-serveErr2; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve 2 exit: %w", err)
	}
	if ps := srv2.Pool().Stats(); ps.InUse != 0 {
		return fmt.Errorf("machines leaked across second drain: %+v", ps)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcmd:", err)
	os.Exit(1)
}
