package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a map of relative path -> source under a temp
// dir and lints it.
func lintSources(t *testing.T, files map[string]string) []finding {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := lintTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func hasFinding(fs []finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			return true
		}
	}
	return false
}

const traceStub = `package trace

type Kind uint8

const (
	KInstr Kind = iota
	KCall
	KHalt
)
`

func TestSentinelCompare(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"a/a.go": `package a

import "errors"

var ErrBad = errors.New("bad")

func f(err error) (bool, bool, bool, bool) {
	x := err == ErrBad        // flagged
	y := ErrBad != err        // flagged
	z := errors.Is(err, ErrBad)
	w := err == nil           // not a sentinel
	return x, y, z, w
}
`,
	})
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(fs), fs)
	}
	if !hasFinding(fs, "errors.Is") {
		t.Errorf("missing errors.Is hint: %v", fs)
	}
}

func TestStepsAllocs(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"machine/m.go": `package machine

type Machine struct{ xs []int }

type ev struct{ k int }

func (m *Machine) steps(limit uint64) uint64 {
	m.xs = append(m.xs, 1)   // flagged
	p := &ev{k: 1}           // flagged
	_ = ev{k: 2}             // by-value struct literal: fine
	_ = p
	go func() {}()           // go + function literal: flagged twice
	return limit
}

func (m *Machine) runFused(n int) {
	m.xs = make([]int, n) // flagged: fused handler bodies are hot-loop code
}

func (m *Machine) other() {
	_ = make([]int, 4) // allocation outside steps: fine
}
`,
	})
	for _, want := range []string{"append call", "address of composite literal", "go statement", "function literal", "make call in runFused"} {
		if !hasFinding(fs, want) {
			t.Errorf("missing %q finding: %v", want, fs)
		}
	}
	if len(fs) != 5 {
		t.Fatalf("got %d findings, want 5: %v", len(fs), fs)
	}
}

func TestKindSwitchExhaustive(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"trace/trace.go": traceStub,
		"use/use.go": `package use

import "x/trace"

func f(k trace.Kind, s string) {
	switch k { // flagged: no default, KHalt missing
	case trace.KInstr, trace.KCall:
	}
	switch k { // default present: fine
	case trace.KInstr:
	default:
	}
	switch k { // full enumeration: fine
	case trace.KInstr, trace.KCall, trace.KHalt:
	}
	switch s { // not a Kind switch
	case "KInstr":
	}
}
`,
		"wam/wam.go": `package wam

type cellKind int

const (
	KRef cellKind = iota
	KList
)

func g(k cellKind) {
	switch k { // bare K idents outside package trace: not a Kind switch
	case KRef:
	}
}
`,
	})
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if !hasFinding(fs, "misses KHalt") {
		t.Errorf("finding should name the missing constant: %v", fs)
	}
}

func TestBareKindInTracePackage(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"trace/trace.go": traceStub,
		"trace/sink.go": `package trace

func h(k Kind) {
	switch k { // flagged: bare kind names count inside package trace
	case KInstr:
	}
}
`,
	})
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
}

func TestMachineAcrossWrite(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"srv/srv.go": `package srv

import "net/http"

type pool struct{}
type sess struct{}

func (p *pool) Begin() *sess  { return nil }
func (s *sess) Close()        {}

// Flagged: the machine is still leased when w is written.
func badHandler(w http.ResponseWriter, r *http.Request, p *pool) {
	s := p.Begin()
	w.WriteHeader(200) // flagged
	s.Close()
}

// Flagged: a deferred Close holds the machine to function end.
func badDeferHandler(w http.ResponseWriter, r *http.Request, p *pool) {
	s := p.Begin()
	defer s.Close()
	w.WriteHeader(200) // flagged
}

// Fine: released before the network write.
func goodHandler(w http.ResponseWriter, r *http.Request, p *pool) {
	s := p.Begin()
	s.Close()
	w.WriteHeader(200)
}

// Fine: writer used before the lease, machine never crosses a write.
func goodOrder(w http.ResponseWriter, r *http.Request, p *pool) {
	w.Header().Set("a", "b")
	s := p.Begin()
	s.Close()
}

// Fine: no writer in scope.
func runOnly(p *pool) {
	s := p.Begin()
	defer s.Close()
}
`,
	})
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(fs), fs)
	}
	if !hasFinding(fs, "held across this use of w") {
		t.Errorf("finding should name the writer: %v", fs)
	}
}

func TestTestdataSkipped(t *testing.T) {
	fs := lintSources(t, map[string]string{
		"a/testdata/bad.go": `package bad

this is not Go at all
`,
		"a/a.go": `package a
`,
	})
	if len(fs) != 0 {
		t.Fatalf("got findings from testdata: %v", fs)
	}
}
