package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// finding is one lint hit.
type finding struct {
	pos token.Position
	msg string
}

// parsedFile pairs a parsed file with its package name.
type parsedFile struct {
	file *ast.File
	pkg  string
}

// lintTree parses every .go file under root (skipping testdata and
// dot-directories) and runs all checks. Parsing the whole tree first
// lets the trace.Kind constant set be collected before any switch is
// judged.
func lintTree(root string) ([]finding, error) {
	fset := token.NewFileSet()
	var files []parsedFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, parsedFile{file: f, pkg: f.Name.Name})
		return nil
	})
	if err != nil {
		return nil, err
	}

	kinds := collectKindConsts(files)
	var out []finding
	for _, pf := range files {
		out = append(out, checkSentinelCompare(fset, pf)...)
		out = append(out, checkStepsAllocs(fset, pf)...)
		out = append(out, checkKindSwitches(fset, pf, kinds)...)
		out = append(out, checkMachineAcrossWrite(fset, pf)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// collectKindConsts gathers the constant names declared with type Kind
// in package trace. In a const block only the first spec of an iota
// run carries the type, so the declared type is carried forward across
// specs until another type annotation replaces it.
func collectKindConsts(files []parsedFile) map[string]bool {
	kinds := map[string]bool{}
	for _, pf := range files {
		if pf.pkg != "trace" {
			continue
		}
		for _, decl := range pf.file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			isKind := false
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				if vs.Type != nil {
					id, ok := vs.Type.(*ast.Ident)
					isKind = ok && id.Name == "Kind"
				}
				if !isKind {
					continue
				}
				for _, n := range vs.Names {
					if n.Name != "_" {
						kinds[n.Name] = true
					}
				}
			}
		}
	}
	return kinds
}

var sentinelName = regexp.MustCompile(`^Err[A-Z]`)

// isSentinel reports whether the expression names a sentinel error:
// an identifier or selector of the ErrXxx form.
func isSentinel(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return sentinelName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return sentinelName.MatchString(x.Sel.Name)
	}
	return false
}

// checkSentinelCompare flags == and != against sentinel errors.
func checkSentinelCompare(fset *token.FileSet, pf parsedFile) []finding {
	var out []finding
	ast.Inspect(pf.file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isSentinel(be.X) || isSentinel(be.Y) {
			out = append(out, finding{
				pos: fset.Position(be.OpPos),
				msg: fmt.Sprintf("sentinel error compared with %v; use errors.Is", be.Op),
			})
		}
		return true
	})
	return out
}

// allocFuncs are the machine's fetch-execute loops — the per-step
// dispatch twins and the fused-handler replay twins (fuse.go) — which
// must stay allocation-free: an allocation there shows up in every
// cycle of every warm benchmark.
var allocFuncs = map[string]bool{
	"steps": true, "stepsTraced": true,
	"runFused": true, "runFusedTraced": true,
}

// recvIsMachine reports whether the function's receiver is Machine or
// *Machine.
func recvIsMachine(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Machine"
}

// checkStepsAllocs flags allocating constructs inside the
// fetch-execute loops.
func checkStepsAllocs(fset *token.FileSet, pf parsedFile) []finding {
	if pf.pkg != "machine" {
		return nil
	}
	var out []finding
	for _, decl := range pf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !allocFuncs[fd.Name.Name] || !recvIsMachine(fd) {
			continue
		}
		flag := func(n ast.Node, what string) {
			out = append(out, finding{
				pos: fset.Position(n.Pos()),
				msg: fmt.Sprintf("%s in %s, which must not allocate", what, fd.Name.Name),
			})
		}
		// A struct literal used by value lives on the stack; the
		// heap-allocating forms are &T{...} and slice/map literals.
		taken := map[*ast.CompositeLit]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "append", "make", "new":
						flag(n, id.Name+" call")
					}
				}
			case *ast.UnaryExpr:
				if cl, ok := x.X.(*ast.CompositeLit); x.Op == token.AND && ok {
					taken[cl] = true
					flag(n, "address of composite literal")
				}
			case *ast.CompositeLit:
				switch x.Type.(type) {
				case *ast.ArrayType, *ast.MapType:
					if !taken[x] {
						flag(n, "slice or map literal")
					}
				}
			case *ast.FuncLit:
				flag(n, "function literal")
				return false
			case *ast.GoStmt:
				flag(n, "go statement")
			case *ast.DeferStmt:
				flag(n, "defer statement")
			}
			return true
		})
	}
	return out
}

// leaseCalls are the method names that hand a pooled machine to the
// caller; closeCalls are the names that give it back.
var (
	leaseCalls = map[string]bool{"Begin": true, "Acquire": true}
	closeCalls = map[string]bool{"Close": true, "Release": true}
)

// responseWriterParams collects the names of a function's
// http.ResponseWriter parameters.
func responseWriterParams(ft *ast.FuncType) map[string]bool {
	writers := map[string]bool{}
	if ft.Params == nil {
		return writers
	}
	for _, field := range ft.Params.List {
		se, ok := field.Type.(*ast.SelectorExpr)
		if !ok || se.Sel.Name != "ResponseWriter" {
			continue
		}
		if id, ok := se.X.(*ast.Ident); !ok || id.Name != "http" {
			continue
		}
		for _, n := range field.Names {
			if n.Name != "_" {
				writers[n.Name] = true
			}
		}
	}
	return writers
}

// checkMachineAcrossWrite enforces the kcmd handler discipline: a
// function that holds both a network connection (an
// http.ResponseWriter parameter) and a pooled machine (a .Begin or
// .Acquire call) must release the machine — a non-deferred .Close or
// .Release — before the writer is touched or passed anywhere. A
// deferred Close holds the machine to function end, so any writer use
// after the lease counts. A slow client must never hold a machine
// hostage; handlers delegate to writer-free run functions instead.
func checkMachineAcrossWrite(fset *token.FileSet, pf parsedFile) []finding {
	var out []finding
	for _, decl := range pf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		writers := responseWriterParams(fd.Type)
		if len(writers) == 0 {
			continue
		}

		// Deferred statements do not release (or lease) anything
		// before function end; note their extents to skip them.
		var deferred [][2]token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred = append(deferred, [2]token.Pos{ds.Pos(), ds.End()})
			}
			return true
		})
		inDefer := func(p token.Pos) bool {
			for _, d := range deferred {
				if d[0] <= p && p < d[1] {
					return true
				}
			}
			return false
		}

		// First live lease, first live release after it, and every
		// writer mention in between (in source order).
		lease, release := token.NoPos, token.NoPos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ce, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := ce.Fun.(*ast.SelectorExpr)
			if !ok || inDefer(ce.Pos()) {
				return true
			}
			switch {
			case leaseCalls[se.Sel.Name] && !lease.IsValid():
				lease = ce.Pos()
			case closeCalls[se.Sel.Name] && lease.IsValid() && !release.IsValid() && ce.Pos() > lease:
				release = ce.Pos()
			}
			return true
		})
		if !lease.IsValid() {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !writers[id.Name] {
				return true
			}
			if id.Pos() > lease && (!release.IsValid() || id.Pos() < release) {
				out = append(out, finding{
					pos: fset.Position(id.Pos()),
					msg: fmt.Sprintf("pooled machine leased at line %d is held across this use of %s; "+
						"release or park it before touching the network (see the kcmd handler discipline)",
						fset.Position(lease).Line, id.Name),
				})
			}
			return true
		})
	}
	return out
}

// kindLabel extracts the trace.Kind constant named by a case label, if
// any. A selector trace.KX counts everywhere; a bare KX counts only
// inside package trace, where the constants are unqualified — other
// packages' K-prefixed names (e.g. the WAM cell kinds) never collide.
func kindLabel(e ast.Expr, pkg string, kinds map[string]bool) (string, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && id.Name == "trace" && kinds[x.Sel.Name] {
			return x.Sel.Name, true
		}
	case *ast.Ident:
		if pkg == "trace" && kinds[x.Name] {
			return x.Name, true
		}
	}
	return "", false
}

// checkKindSwitches flags switches over trace.Kind that neither carry
// a default clause nor enumerate every Kind constant.
func checkKindSwitches(fset *token.FileSet, pf parsedFile, kinds map[string]bool) []finding {
	if len(kinds) == 0 {
		return nil
	}
	var out []finding
	ast.Inspect(pf.file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		covered := map[string]bool{}
		hasDefault, isKindSwitch := false, false
		for _, cl := range sw.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				if name, ok := kindLabel(e, pf.pkg, kinds); ok {
					isKindSwitch = true
					covered[name] = true
				}
			}
		}
		if !isKindSwitch || hasDefault || len(covered) == len(kinds) {
			return true
		}
		var missing []string
		for k := range kinds {
			if !covered[k] {
				missing = append(missing, k)
			}
		}
		sort.Strings(missing)
		out = append(out, finding{
			pos: fset.Position(sw.Switch),
			msg: fmt.Sprintf("switch over trace.Kind has no default and misses %s",
				strings.Join(missing, ", ")),
		})
		return true
	})
	return out
}
