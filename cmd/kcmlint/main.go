// Command kcmlint enforces repository-local invariants that go vet
// does not know about. It is built on the standard library's go/parser
// and go/ast alone (no type checker), so every check is syntactic and
// deliberately conservative:
//
//   - sentinel errors (package-level `ErrXxx` variables) must be
//     matched with errors.Is, never compared with == or !=: wrapped
//     errors make identity comparison silently wrong;
//   - the machine's fetch-execute loops, steps and stepsTraced, must
//     not allocate: no append/make/new calls, composite literals,
//     closures, or go/defer statements inside their bodies — an
//     allocation there shows up in every cycle of every benchmark;
//   - every switch over trace.Kind must either carry a default clause
//     or enumerate all Kind constants: the event vocabulary grows, and
//     a sink that silently drops unknown kinds corrupts analyses
//     downstream;
//   - a function holding both an http.ResponseWriter parameter and a
//     pooled machine (a .Begin/.Acquire call) must release the machine
//     with a non-deferred .Close/.Release before touching the writer:
//     a slow client must never hold a machine hostage, so handlers
//     delegate to writer-free run functions (the kcmd discipline).
//
// Usage:
//
//	kcmlint [dir]...
//
// With no arguments it lints the tree rooted at the current
// directory. Findings are printed one per line as file:line:col:
// message; the exit status is 1 when anything was found.
package main

import (
	"fmt"
	"os"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var all []finding
	for _, root := range roots {
		fs, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcmlint: %v\n", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	for _, f := range all {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}
