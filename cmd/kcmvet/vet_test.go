package main

import (
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// TestExamplesClean extracts every embedded Prolog program from the
// example commands and requires the analyzer to come back empty.
func TestExamplesClean(t *testing.T) {
	files, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example programs found")
	}
	for _, f := range files {
		progs, err := extractPrograms(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(progs) == 0 {
			t.Errorf("%s: no embedded Prolog programs extracted", f)
		}
		for _, p := range progs {
			rep, err := vetSource(p.Source, "", true)
			if err != nil {
				t.Errorf("%s#%s: %v", f, p.Name, err)
				continue
			}
			for _, d := range rep.Diags {
				t.Errorf("%s#%s: %v", f, p.Name, d)
			}
		}
	}
}

// TestBenchSuiteClean vets every benchmark program together with its
// Table 2 query, pre-link and as a linked image.
func TestBenchSuiteClean(t *testing.T) {
	for _, p := range bench.Suite {
		rep, err := vetSource(p.Source, p.Query, false)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if rep.Preds == 0 {
			t.Errorf("%s: no predicates compiled", p.Name)
		}
		for _, d := range rep.Diags {
			t.Errorf("%s: %v", p.Name, d)
		}
	}
}
