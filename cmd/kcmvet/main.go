// Command kcmvet statically vets KCM code: it compiles Prolog
// sources, runs the internal/analysis verifier over every predicate's
// instruction stream (control-flow graph, register init-before-use,
// permanent-variable lifetimes, choice-point chain discipline, label
// validity, unreachable code), links the module, and re-checks the
// encoded image the way the loader would. On top of the verifier it
// runs the whole-image analyzer and can report its artifacts: the
// predicate call graph, inferred entry modes and determinism classes,
// dead code, and the full facts table.
//
// Usage:
//
//	kcmvet [-disasm] [-bench] [-v] [-strict]
//	       [-callgraph] [-modes] [-deadcode] [-facts] [-json]
//	       [file.pl|file.go]...
//
// A .pl argument is vetted as one program. A .go argument is scanned
// for top-level backquoted string constants that parse as Prolog
// (the convention the examples use), and each is vetted separately.
// -bench additionally vets every program of the internal benchmark
// suite together with its Table 2 query. -strict also fails (exit 1)
// on compiler warnings such as unreachable predicates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/kcmisa"
	"repro/internal/reader"
	"repro/internal/term"
)

func main() {
	disasm := flag.Bool("disasm", false, "print the disassembly of each vetted image")
	benchAll := flag.Bool("bench", false, "also vet the internal benchmark suite")
	verbose := flag.Bool("v", false, "report clean programs too")
	strict := flag.Bool("strict", false, "treat compiler warnings as failures")
	callgraph := flag.Bool("callgraph", false, "print the predicate call graph (Graphviz dot)")
	modes := flag.Bool("modes", false, "print inferred entry modes and determinism classes")
	deadcode := flag.Bool("deadcode", false, "print dead predicates, necks and switch arms")
	facts := flag.Bool("facts", false, "print the full whole-image facts table")
	jsonOut := flag.Bool("json", false, "print the facts artifact as JSON")
	flag.Parse()
	if flag.NArg() == 0 && !*benchAll {
		fmt.Fprintln(os.Stderr, "usage: kcmvet [-disasm] [-bench] [-v] [-strict] [-callgraph] [-modes] [-deadcode] [-facts] [-json] [file.pl|file.go]...")
		os.Exit(2)
	}
	wantFacts := *callgraph || *modes || *deadcode || *facts || *jsonOut

	bad := false
	run := func(name, src, query string, partial bool) {
		rep, err := vetSource(src, query, partial)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "kcmvet: %s: %v\n", name, err)
			bad = true
		case len(rep.Diags) > 0:
			bad = true
			for _, d := range rep.Diags {
				fmt.Printf("%s: %v\n", name, d)
			}
		case *verbose:
			fmt.Printf("%s: ok (%d predicates, %d instructions)\n",
				name, rep.Preds, rep.Instrs)
		}
		if rep != nil {
			for _, w := range rep.Warnings {
				fmt.Printf("%s: warning: %s\n", name, w)
				if *strict {
					bad = true
				}
			}
		}
		if *disasm && rep != nil && rep.Image != nil {
			fmt.Print(asm.Disasm(rep.Image))
		}
		if wantFacts && rep != nil && rep.Facts != nil {
			printFacts(name, rep.Facts, *callgraph, *modes, *deadcode, *facts, *jsonOut)
		}
	}

	for _, arg := range flag.Args() {
		switch {
		case strings.HasSuffix(arg, ".go"):
			progs, err := extractPrograms(arg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kcmvet: %s: %v\n", arg, err)
				bad = true
				continue
			}
			if len(progs) == 0 {
				fmt.Fprintf(os.Stderr, "kcmvet: %s: no Prolog program constants found\n", arg)
				bad = true
				continue
			}
			for _, p := range progs {
				// Embedded fragments may call predicates consulted at
				// run time, so they are linked against a stub table.
				run(fmt.Sprintf("%s#%s", arg, p.Name), p.Source, "", true)
			}
		default:
			b, err := os.ReadFile(arg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kcmvet: %v\n", err)
				bad = true
				continue
			}
			run(arg, string(b), "", false)
		}
	}
	if *benchAll {
		for _, p := range bench.Suite {
			run("bench:"+p.Name, p.Source, p.Query, false)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// printFacts renders the requested whole-image artifacts for one
// vetted program.
func printFacts(name string, f *analysis.ImageFacts, callgraph, modes, deadcode, facts, jsonOut bool) {
	if jsonOut {
		if err := f.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "kcmvet: %s: %v\n", name, err)
		}
		return
	}
	if facts {
		fmt.Printf("== %s\n%s", name, f.Flat())
		return
	}
	if callgraph {
		fmt.Print(f.CallGraphDot())
	}
	if modes {
		for _, pf := range f.Preds {
			ms := make([]string, len(pf.Mode))
			for i, m := range pf.Mode {
				ms[i] = m.String()
			}
			fmt.Printf("%s: %s det=%v mode=(%s)\n", name, pf.Name, pf.Det, strings.Join(ms, ","))
		}
	}
	if deadcode {
		for _, pn := range f.DeadPreds() {
			fmt.Printf("%s: dead predicate %s\n", name, pn)
		}
		for _, pf := range f.Preds {
			for _, a := range pf.DeadNecks {
				fmt.Printf("%s: %s: dead choice point at %d (neck never materialises)\n",
					name, pf.Name, a)
			}
			for _, da := range pf.DeadArms {
				fmt.Printf("%s: %s: dead switch arm %s at %d\n",
					name, pf.Name, da.Arm, da.Addr)
			}
		}
	}
}

// Report is the outcome of vetting one program.
type Report struct {
	Diags    []analysis.Diag
	Warnings []string
	Preds    int
	Instrs   int
	Image    *asm.Image
	Facts    *analysis.ImageFacts
}

// vetSource compiles a Prolog program (with an optional query goal),
// analyzes every predicate's pre-link code, links the module, and
// vets the encoded image. Compilation itself runs with the compiler's
// own verification pass off so that every finding is collected here
// instead of aborting at the first bad predicate. With partial set,
// calls to predicates the program does not define resolve to a stub
// entry instead of failing the link (a fragment consulted into a
// larger program at run time).
func vetSource(src, query string, partial bool) (*Report, error) {
	prog, err := core.Load(src)
	if err != nil {
		return nil, err
	}
	prev := compiler.SetVerify(false)
	defer compiler.SetVerify(prev)
	c := compiler.New(prog.Syms())
	mod, err := c.CompileProgram(prog.Clauses())
	if err != nil {
		return nil, err
	}
	if query != "" {
		goal, err := reader.ParseTerm(query)
		if err != nil {
			return nil, err
		}
		if err := c.CompileQuery(mod, goal); err != nil {
			return nil, err
		}
	}
	rep := &Report{Preds: len(mod.Order), Warnings: mod.Warnings}
	for _, pi := range mod.Order {
		p := mod.Preds[pi]
		rep.Instrs += len(p.Code)
		rep.Diags = append(rep.Diags, analysis.AnalyzePred(pi, p.Code)...)
	}
	var im *asm.Image
	base := uint32(0)
	if partial {
		// Resolve calls to undefined predicates through a stub table
		// pointing below the link base (the bootstrap address), which
		// the encoded-level vet accepts as external code.
		stubs := map[term.Indicator]uint32{}
		for _, pi := range mod.Order {
			for _, in := range mod.Preds[pi].Code {
				if in.Op != kcmisa.Call && in.Op != kcmisa.Execute {
					continue
				}
				if _, ok := mod.Preds[in.Proc]; !ok {
					stubs[in.Proc] = 0
				}
			}
		}
		base = asm.Base
		im, err = asm.LinkAt(mod, base, stubs)
	} else {
		im, err = asm.Link(mod)
	}
	if err != nil {
		return rep, err
	}
	rep.Image = im
	rep.Diags = append(rep.Diags, analysis.VetEncoded(im.Code, base, im.Entries)...)
	if len(rep.Diags) == 0 {
		rep.Facts = analysis.AnalyzeImage(im.Code, base, im.Entries, nil)
	}
	return rep, nil
}
