package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"

	"repro/internal/reader"
)

// EmbeddedProgram is a Prolog program found inside a Go source file.
type EmbeddedProgram struct {
	Name   string // name of the declaring constant or variable
	Source string
}

// extractPrograms scans a Go source file for top-level constant or
// variable declarations whose value is a single backquoted string
// literal that parses as at least one Prolog clause — the convention
// the example programs use to embed their Prolog source.
func extractPrograms(path string) ([]EmbeddedProgram, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var out []EmbeddedProgram
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
					continue
				}
				src := strings.Trim(lit.Value, "`")
				clauses, err := reader.ParseAll(src)
				if err != nil || len(clauses) == 0 {
					continue
				}
				out = append(out, EmbeddedProgram{Name: vs.Names[i].Name, Source: src})
			}
		}
	}
	return out, nil
}
