// Package mmu implements KCM's memory management: the RAM-resident
// page table (no TLB needed — a plain 32K x 16 RAM holds one entry
// per virtual page, affordable because the machine is single-task)
// and the zone-check unit that verifies virtual addresses against
// per-zone bounds and allowed data types before they reach the cache.
package mmu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/word"
)

// Page geometry: bits 27..14 of an address select the virtual page,
// bits 13..0 the offset, i.e. 16K-word pages and 16K virtual pages
// per address space.
const (
	PageBits  = 14
	PageWords = 1 << PageBits
	NumPages  = 1 << PageBits // 28-bit space / 14-bit offset
	// addrMask keeps the 28 implemented address bits.
	addrMask = 1<<28 - 1
)

// TrapKind classifies a memory-management fault so the machine can
// map it onto its exported error taxonomy without parsing messages.
type TrapKind int

const (
	TrapOther             TrapKind = iota
	TrapUnimplementedBits          // address uses bits above the 28 implemented
	TrapUnmappedZone               // zone descriptor not installed
	TrapBadType                    // data type not allowed as address into the zone
	TrapBounds                     // address outside the zone limits (stack overflow)
	TrapWriteProtect               // write to a protected zone
	TrapPageRange                  // virtual page out of range
	TrapOutOfMemory                // no physical frame left
)

// Trap is a memory-management fault: an access outside the
// implemented address range, a zone violation, or a type not allowed
// as an address into the zone.
type Trap struct {
	Addr word.Word
	Kind TrapKind
	Why  string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("mmu trap: %v: %s", t.Addr, t.Why)
}

// trap routes a fault past the observer before returning it.
func (u *MMU) trap(t *Trap) error {
	if u.OnTrap != nil {
		u.OnTrap(t)
	}
	return t
}

// Zone describes one virtual-memory zone: the address window it
// spans, the set of data types allowed to point into it, and write
// protection. Limits may be changed dynamically (the run-time system
// moves them when stacks are resized).
type Zone struct {
	Start, End   uint32 // word addresses, [Start, End)
	AllowedTypes uint16 // bitmask over word.Type
	WriteProtect bool
}

// Allows reports whether a data type may address this zone.
func (z Zone) Allows(t word.Type) bool { return z.AllowedTypes&(1<<t) != 0 }

// TypeMask builds an allowed-type bitmask.
func TypeMask(ts ...word.Type) uint16 {
	var m uint16
	for _, t := range ts {
		m |= 1 << t
	}
	return m
}

// FrameAlloc hands out physical page frames. The code-space and
// data-space MMUs share one allocator so a demand-paged frame is never
// given to both.
type FrameAlloc struct {
	next uint32
	max  uint32
}

// NewFrameAlloc creates an allocator over a memory of the given size.
func NewFrameAlloc(m *mem.Memory) *FrameAlloc {
	return &FrameAlloc{max: m.Size() / PageWords}
}

// Alloc returns the next free frame.
func (a *FrameAlloc) Alloc() (uint32, bool) {
	if a.next >= a.max {
		return 0, false
	}
	f := a.next
	a.next++
	return f, true
}

// Allocated returns how many frames have been handed out.
func (a *FrameAlloc) Allocated() uint32 { return a.next }

// Next returns the next frame the allocator would hand out.
func (a *FrameAlloc) Next() uint32 { return a.next }

// Max returns the number of frames the allocator manages.
func (a *FrameAlloc) Max() uint32 { return a.max }

// SetNext forces the allocation frontier (snapshot restore: the
// restored page tables reference frames below the frontier recorded
// when the snapshot was taken).
func (a *FrameAlloc) SetNext(n uint32) { a.next = n }

// MMU is the address-translation and protection unit for one address
// space (KCM has two: code and data, each with its own page table
// half, sharing the physical frame pool).
type MMU struct {
	mem    *mem.Memory
	table  [NumPages]int32 // -1 = unmapped, else physical frame
	frames *FrameAlloc
	zones  [16]Zone
	stats  Stats

	// OnTrap, when non-nil, observes every trap after the statistics
	// are counted; OnPageFault observes every demand-allocated page.
	// Observation only: neither may touch the MMU.
	OnTrap      func(*Trap)
	OnPageFault func(va uint32)
}

// Stats counts translation activity.
type Stats struct {
	Translations uint64
	PageFaults   uint64 // demand-allocated pages (served by the host)
	ZoneChecks   uint64
	ZoneTraps    uint64
}

// unmappedTable is an all-unmapped page table, the copy source for
// wholesale table resets (New, ImportTable).
var unmappedTable = func() (t [NumPages]int32) {
	for i := range t {
		t[i] = -1
	}
	return
}()

// New creates an MMU backed by physical memory, drawing frames from
// the shared allocator (nil creates a private one).
func New(m *mem.Memory, frames *FrameAlloc) *MMU {
	if frames == nil {
		frames = NewFrameAlloc(m)
	}
	u := &MMU{mem: m, frames: frames}
	copy(u.table[:], unmappedTable[:])
	return u
}

// SetZone installs the descriptor for zone z.
func (u *MMU) SetZone(z word.Zone, d Zone) { u.zones[z] = d }

// ZoneOf returns the descriptor for zone z.
func (u *MMU) ZoneOf(z word.Zone) Zone { return u.zones[z] }

// Check performs the zone check on a data word used as an address:
// the unimplemented top address bits must be zero, the type must be
// allowed in the zone, and the value must lie inside the zone's
// limits. isWrite additionally enforces write protection. This check
// happens at the logical level, before the cache, exactly because the
// MMU is not involved when writing to a logical cache (section 3.2.3).
func (u *MMU) Check(addr word.Word, isWrite bool) error {
	u.stats.ZoneChecks++
	a := addr.Value()
	if a&^uint32(addrMask) != 0 {
		u.stats.ZoneTraps++
		return u.trap(&Trap{addr, TrapUnimplementedBits, "address uses unimplemented bits"})
	}
	z := u.zones[addr.Zone()]
	if z.End == z.Start {
		u.stats.ZoneTraps++
		return u.trap(&Trap{addr, TrapUnmappedZone, "unmapped zone"})
	}
	if !z.Allows(addr.Type()) {
		u.stats.ZoneTraps++
		return u.trap(&Trap{addr, TrapBadType, fmt.Sprintf("type %v not allowed as address into zone %v", addr.Type(), addr.Zone())})
	}
	if a < z.Start || a >= z.End {
		u.stats.ZoneTraps++
		return u.trap(&Trap{addr, TrapBounds, fmt.Sprintf("address outside zone %v limits [%#x,%#x)", addr.Zone(), z.Start, z.End)})
	}
	if isWrite && z.WriteProtect {
		u.stats.ZoneTraps++
		return u.trap(&Trap{addr, TrapWriteProtect, "zone is write-protected"})
	}
	return nil
}

// CheckFast is the inlinable hit path of Check: the same zone check,
// in the same spirit the hardware runs it — a handful of comparators
// in parallel with the cache access. On success it counts the check
// and returns true; on any violation it counts nothing and returns
// false, and the caller takes the full Check for the classified,
// counted trap. Splitting it this way keeps the per-access cost of a
// legal reference to a few inlined compares while the statistics
// stay exactly those of Check alone.
func (u *MMU) CheckFast(addr word.Word, isWrite bool) bool {
	a := addr.Value()
	z := &u.zones[addr.Zone()]
	if a&^uint32(addrMask) == 0 &&
		z.Start <= a && a < z.End &&
		z.AllowedTypes&(1<<addr.Type()) != 0 &&
		!(isWrite && z.WriteProtect) {
		u.stats.ZoneChecks++
		return true
	}
	return false
}

// Translate maps a virtual word address to a physical one, demand-
// allocating a frame on first touch (the paging traffic itself is
// served by the host and not part of the benchmark timing).
func (u *MMU) Translate(va uint32) (uint32, error) {
	u.stats.Translations++
	vp := va >> PageBits
	if vp >= NumPages {
		return 0, u.trap(&Trap{word.DataPtr(word.ZNone, va), TrapPageRange, "virtual page out of range"})
	}
	f := u.table[vp]
	if f < 0 {
		nf, ok := u.frames.Alloc()
		if !ok {
			return 0, u.trap(&Trap{word.DataPtr(word.ZNone, va), TrapOutOfMemory, "out of physical memory"})
		}
		u.table[vp] = int32(nf)
		f = int32(nf)
		u.stats.PageFaults++
		if u.OnPageFault != nil {
			u.OnPageFault(va)
		}
	}
	return uint32(f)<<PageBits | va&(PageWords-1), nil
}

// Read translates and reads one word, returning the memory cost.
func (u *MMU) Read(va uint32) (word.Word, int, error) {
	pa, err := u.Translate(va)
	if err != nil {
		return 0, 0, err
	}
	w, c := u.mem.Read(pa)
	return w, c, nil
}

// Write translates and writes one word, returning the memory cost.
func (u *MMU) Write(va uint32, w word.Word) (int, error) {
	pa, err := u.Translate(va)
	if err != nil {
		return 0, err
	}
	return u.mem.Write(pa, w), nil
}

// Stats returns a copy of the counters.
func (u *MMU) Stats() Stats { return u.stats }

// Peek translates without statistics and without demand allocation;
// ok=false for an unmapped page.
func (u *MMU) Peek(va uint32) (uint32, bool) {
	vp := va >> PageBits
	if vp >= NumPages || u.table[vp] < 0 {
		return 0, false
	}
	return uint32(u.table[vp])<<PageBits | va&(PageWords-1), true
}

// MappedPages returns how many pages are currently mapped.
func (u *MMU) MappedPages() int {
	n := 0
	for _, f := range u.table {
		if f >= 0 {
			n++
		}
	}
	return n
}

// ResetStats clears the counters (the page table stays).
func (u *MMU) ResetStats() { u.stats = Stats{} }

// Unmap removes the mapping of the page containing va and returns its
// physical frame, for handing the page to another address space (the
// batch-compilation path of section 3.2.1).
func (u *MMU) Unmap(va uint32) (frame uint32, ok bool) {
	vp := va >> PageBits
	if vp >= NumPages || u.table[vp] < 0 {
		return 0, false
	}
	f := uint32(u.table[vp])
	u.table[vp] = -1
	return f, true
}

// Map installs an explicit virtual-to-physical mapping, the receiving
// half of a page handover.
func (u *MMU) Map(va, frame uint32) {
	vp := va >> PageBits
	if vp < NumPages {
		u.table[vp] = int32(frame)
	}
}

// Frames returns the frame allocator this MMU draws from (shared with
// the other address space's MMU).
func (u *MMU) Frames() *FrameAlloc { return u.frames }

// PageEntry is one mapped page-table entry, for serialization.
type PageEntry struct {
	VPage uint32
	Frame uint32
}

// ExportTable returns the mapped entries of the page table in
// ascending virtual-page order.
func (u *MMU) ExportTable() []PageEntry {
	var es []PageEntry
	for vp, f := range u.table {
		if f >= 0 {
			es = append(es, PageEntry{VPage: uint32(vp), Frame: uint32(f)})
		}
	}
	return es
}

// ImportTable replaces the page table wholesale with the given
// entries; every page not listed becomes unmapped. Entries with an
// out-of-range virtual page are ignored (the snapshot decoder bounds-
// checks before calling, so this is belt and braces).
func (u *MMU) ImportTable(es []PageEntry) {
	// memmove from a blank table: a per-entry -1 loop is the hottest
	// single cost of a snapshot restore.
	copy(u.table[:], unmappedTable[:])
	for _, e := range es {
		if e.VPage < NumPages {
			u.table[e.VPage] = int32(e.Frame)
		}
	}
}

// SetStats replaces the counters wholesale (snapshot restore).
func (u *MMU) SetStats(s Stats) { u.stats = s }
