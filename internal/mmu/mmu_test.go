package mmu

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/word"
)

func newMMU(t *testing.T) *MMU {
	t.Helper()
	return New(mem.New(8*PageWords), nil)
}

func TestDemandPaging(t *testing.T) {
	u := newMMU(t)
	pa1, err := u.Translate(0)
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := u.Translate(PageWords) // next virtual page
	if err != nil {
		t.Fatal(err)
	}
	if pa1>>PageBits == pa2>>PageBits {
		t.Fatal("two virtual pages share a frame")
	}
	// Same page translates consistently.
	pa3, _ := u.Translate(5)
	if pa3 != pa1+5 {
		t.Fatalf("offset broken: %#x vs %#x", pa3, pa1+5)
	}
	if u.Stats().PageFaults != 2 {
		t.Fatalf("page faults %d", u.Stats().PageFaults)
	}
	if u.MappedPages() != 2 {
		t.Fatalf("mapped %d", u.MappedPages())
	}
}

func TestOutOfPhysicalMemory(t *testing.T) {
	u := New(mem.New(2*PageWords), nil)
	if _, err := u.Translate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(PageWords); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(2 * PageWords); err == nil {
		t.Fatal("third page should exhaust memory")
	}
}

func TestReadWriteThrough(t *testing.T) {
	u := newMMU(t)
	if _, err := u.Write(123, word.FromInt(9)); err != nil {
		t.Fatal(err)
	}
	w, _, err := u.Read(123)
	if err != nil || w.Int() != 9 {
		t.Fatalf("read %v %v", w, err)
	}
}

func TestPeek(t *testing.T) {
	u := newMMU(t)
	if _, ok := u.Peek(0); ok {
		t.Fatal("peek must not demand-allocate")
	}
	u.Translate(0)
	if _, ok := u.Peek(0); !ok {
		t.Fatal("peek misses mapped page")
	}
}

func TestZoneCheck(t *testing.T) {
	u := newMMU(t)
	u.SetZone(word.ZGlobal, Zone{
		Start: 0x1000, End: 0x2000,
		AllowedTypes: TypeMask(word.TRef, word.TList),
	})
	u.SetZone(word.ZStatic, Zone{
		Start: 0x3000, End: 0x4000,
		AllowedTypes: TypeMask(word.TDataPtr),
		WriteProtect: true,
	})

	ok := []word.Word{
		word.Ref(word.ZGlobal, 0x1000),
		word.ListPtr(0x1FFF),
	}
	for _, a := range ok {
		if err := u.Check(a, false); err != nil {
			t.Errorf("Check(%v) = %v, want nil", a, err)
		}
	}

	cases := []struct {
		a     word.Word
		write bool
		want  string
	}{
		// A float used as an address: the example from the paper.
		{word.Make(word.TFloat, word.ZGlobal, 0x1100), false, "not allowed"},
		// Out of the zone's limits.
		{word.Ref(word.ZGlobal, 0x2000), false, "outside zone"},
		{word.Ref(word.ZGlobal, 0x0FFF), false, "outside zone"},
		// Unmapped zone.
		{word.Ref(word.ZTrail, 0x1000), false, "unmapped zone"},
		// Unimplemented address bits (top 4 bits of the value).
		{word.Ref(word.ZGlobal, 0xF0001000), false, "unimplemented"},
		// Write protection.
		{word.DataPtr(word.ZStatic, 0x3000), true, "write-protected"},
	}
	for _, c := range cases {
		err := u.Check(c.a, c.write)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%v, write=%v) = %v, want %q", c.a, c.write, err, c.want)
		}
	}
	if u.Stats().ZoneTraps != uint64(len(cases)) {
		t.Errorf("trap count %d, want %d", u.Stats().ZoneTraps, len(cases))
	}
	// Reads within the write-protected zone are fine.
	if err := u.Check(word.DataPtr(word.ZStatic, 0x3000), false); err != nil {
		t.Errorf("read of protected zone: %v", err)
	}
}

func TestZoneLimitsChangeDynamically(t *testing.T) {
	u := newMMU(t)
	u.SetZone(word.ZLocal, Zone{Start: 0, End: 0x100, AllowedTypes: TypeMask(word.TRef)})
	a := word.Ref(word.ZLocal, 0x180)
	if err := u.Check(a, false); err == nil {
		t.Fatal("address beyond limit must trap")
	}
	// Grow the zone (the run-time system does this on stack expansion).
	u.SetZone(word.ZLocal, Zone{Start: 0, End: 0x200, AllowedTypes: TypeMask(word.TRef)})
	if err := u.Check(a, false); err != nil {
		t.Fatalf("after growing the zone: %v", err)
	}
}
