// Package gc implements heap garbage collection for the KCM global
// stack: a pointer-reversal (link-migration) mark phase that uses the
// data word's two GC bits, a sliding compaction that preserves cell
// order, and trail compression that drops entries whose cells were
// collected.
//
// The paper's word format reserves bits 57..56 for exactly this
// (figure 2), and the zone-check unit is designed to trigger a
// collection when a stack crosses a soft limit (section 3.2.3); on
// the real machine the collector runs as privileged macrocode over
// the same tagged words modelled here.
//
// Sliding (rather than copying) collection matters for a WAM heap:
// cell order is age order, so the H watermarks saved in choice points
// and the HB register stay meaningful after forwarding — a cell is
// "older than the choice point" before collection iff it still is
// after.
//
// The mark phase is in-place Schorr-Waite: descending into a block
// overwrites one cell with a link word that remembers the parent
// slot, the tag of the pointer the block was entered through, and the
// distance to the block's lowest scannable cell; finishing a cell
// restores its contents (marked) and migrates the link down the
// block. Host memory use is O(1) per root regardless of term depth.
//
// Preconditions, guaranteed by the machine:
//
//   - every heap cell in [HeapBase, H) has both GC bits clear on
//     entry (the machine only ever writes words with clear GC bits,
//     and collection itself clears them while sliding);
//   - HeapBase > 0, so parent-slot address 0 can serve as the root
//     sentinel in link words;
//   - heap addresses fit in 28 bits (the architectural limit), so a
//     link word can pack the parent slot and an 8-bit remaining-cell
//     count into its value and zone fields.
package gc

import "repro/internal/word"

// Store is the memory the collector operates on. Reads and writes are
// untimed and cache-coherent (the machine charges collection cost in
// bulk); a Read of an unmapped address returns an invalid word.
type Store interface {
	Read(z word.Zone, a uint32) word.Word
	Write(z word.Zone, a uint32, w word.Word)
}

// Layout carries the machine's frame geometry: word offsets inside
// environment and choice-point frames. The collector walks frames but
// never defines them.
type Layout struct {
	EnvLink   uint32 // offset of the continuation-environment pointer
	EnvSize   uint32 // offset of the permanent-variable count
	EnvHeader uint32 // words before the first permanent variable
	CPPrev    uint32 // offset of the previous-choice-point pointer
	CPE       uint32 // offset of the saved environment
	CPH       uint32 // offset of the saved heap top
	CPTR      uint32 // offset of the saved trail top
	CPArity   uint32 // offset of the saved-register count
	CPHeader  uint32 // words before the first saved register
}

// Roots is the machine state a collection reads and rewrites. Regs is
// updated in place; the pointer fields are both inputs and outputs.
type Roots struct {
	Regs []word.Word

	E uint32 // current environment (0 = none)
	B uint32 // top choice point (0 = none)

	H        *uint32 // heap top; lowered by compaction
	HB       *uint32 // heap backtrack point
	ShadowH  *uint32 // shallow-mode H snapshot
	S        *uint32 // structure pointer (may be mid-heap during a retry)
	TR       *uint32 // trail top; lowered by compression
	ShadowTR *uint32 // shallow-mode TR snapshot

	HeapBase  uint32
	TrailBase uint32
}

// Stats reports one collection's outcome in words.
type Stats struct {
	Live         uint32 // heap words that survived
	Freed        uint32 // heap words reclaimed
	TrailKept    uint32 // trail entries that survived
	TrailDropped uint32 // trail entries dropped (their cells died)
}

// Collect runs one full collection: mark from the root set, compress
// the trail, relocate every root and frame pointer, slide the live
// heap cells down. On return all GC bits in the live heap are clear.
func Collect(st Store, r *Roots, lay Layout) Stats {
	base, top := r.HeapBase, *r.H
	if top <= base {
		return Stats{}
	}
	c := &collector{st: st, lay: lay, base: base, top: top}

	// ---- mark ----
	//
	// The root set is the register file, the current environment
	// chain, and each choice point's saved registers and environment
	// chain. The trail is deliberately NOT a root: an entry whose cell
	// is unreachable from every choice point's restorable state resets
	// a cell no future execution can observe, and compaction is about
	// to reuse that cell's address — such entries are dropped below,
	// which is required for correctness, not just for space.
	for _, w := range r.Regs {
		c.markFrom(w)
	}
	c.forEachFrame(r,
		func(e uint32) {
			size := st.Read(word.ZLocal, e+lay.EnvSize).Value()
			for i := uint32(0); i < size; i++ {
				c.markFrom(st.Read(word.ZLocal, e+lay.EnvHeader+i))
			}
		},
		func(b uint32) {
			arity := st.Read(word.ZChoice, b+lay.CPArity).Value()
			for i := uint32(0); i < arity; i++ {
				c.markFrom(st.Read(word.ZChoice, b+lay.CPHeader+i))
			}
		})

	// ---- forwarding table ----
	//
	// Sliding: the new address of heap word i is base plus the number
	// of live words below it. The table is inclusive of the heap top
	// itself because the machine legitimately holds pointers AT H (a
	// put_list/get_list publishes list pointers before pushing the
	// cells) and S may equal H after reading a block's last argument.
	used := top - base
	forward := make([]uint32, used+1)
	live := uint32(0)
	for i := uint32(0); i < used; i++ {
		forward[i] = base + live
		if c.heap(base + i).Marked() {
			live++
		}
	}
	forward[used] = base + live

	fwdAddr := func(a uint32) uint32 {
		if a < base || a > top {
			return a
		}
		return forward[a-base]
	}
	fwdWord := func(w word.Word) word.Word {
		switch w.Type() {
		case word.TRef, word.TDataPtr:
			if w.Zone() == word.ZGlobal {
				return w.WithValue(fwdAddr(w.Value()))
			}
		case word.TList, word.TStruct:
			return w.WithValue(fwdAddr(w.Value()))
		}
		return w
	}

	// ---- trail compression ----
	//
	// Entries for collected heap cells are dropped; survivors are
	// relocated and compacted in place. Every saved TR (choice-point
	// snapshots and the shallow shadow) is then lowered by the number
	// of drops below it, so backtracking unwinds exactly the entries
	// that still exist.
	oldTR := *r.TR
	stats := Stats{}
	dropsBelow := make([]uint32, oldTR-r.TrailBase+1)
	out := r.TrailBase
	for t := r.TrailBase; t < oldTR; t++ {
		dropsBelow[t-r.TrailBase] = t - out
		w := st.Read(word.ZTrail, t)
		if w.Zone() == word.ZGlobal {
			if a := w.Addr(); a >= base && a < top && !c.heap(a).Marked() {
				continue // the trailed cell died; its reset is unobservable
			}
		}
		st.Write(word.ZTrail, out, fwdWord(w))
		out++
	}
	dropsBelow[oldTR-r.TrailBase] = oldTR - out
	stats.TrailKept = out - r.TrailBase
	stats.TrailDropped = oldTR - out
	*r.TR = out
	adjTR := func(t uint32) uint32 {
		if t < r.TrailBase || t > oldTR {
			return t
		}
		return t - dropsBelow[t-r.TrailBase]
	}
	*r.ShadowTR = adjTR(*r.ShadowTR)

	// ---- relocate roots and frames ----
	for i, w := range r.Regs {
		r.Regs[i] = fwdWord(w)
	}
	c.forEachFrame(r,
		func(e uint32) {
			size := st.Read(word.ZLocal, e+lay.EnvSize).Value()
			for i := uint32(0); i < size; i++ {
				a := e + lay.EnvHeader + i
				st.Write(word.ZLocal, a, fwdWord(st.Read(word.ZLocal, a)))
			}
		},
		func(b uint32) {
			arity := st.Read(word.ZChoice, b+lay.CPArity).Value()
			for i := uint32(0); i < arity; i++ {
				a := b + lay.CPHeader + i
				st.Write(word.ZChoice, a, fwdWord(st.Read(word.ZChoice, a)))
			}
			hw := st.Read(word.ZChoice, b+lay.CPH)
			st.Write(word.ZChoice, b+lay.CPH, hw.WithValue(fwdAddr(hw.Value())))
			tw := st.Read(word.ZChoice, b+lay.CPTR)
			st.Write(word.ZChoice, b+lay.CPTR, tw.WithValue(adjTR(tw.Value())))
		})
	*r.HB = fwdAddr(*r.HB)
	*r.ShadowH = fwdAddr(*r.ShadowH)
	*r.S = fwdAddr(*r.S)

	// ---- slide ----
	//
	// Live cells move down in address order (forward[i] <= base+i, so
	// in-place is safe), contents relocated and GC bits cleared,
	// restoring the all-clear invariant for the next collection.
	for i := uint32(0); i < used; i++ {
		w := c.heap(base + i)
		if !w.Marked() {
			continue
		}
		c.setHeap(forward[i], fwdWord(w).WithGC(0))
	}
	*r.H = forward[used]
	stats.Live = live
	stats.Freed = used - live
	return stats
}

// collector is the state shared by the mark phase helpers.
type collector struct {
	st        Store
	lay       Layout
	base, top uint32
	frameSeen map[uint32]bool
}

func (c *collector) heap(a uint32) word.Word       { return c.st.Read(word.ZGlobal, a) }
func (c *collector) setHeap(a uint32, w word.Word) { c.st.Write(word.ZGlobal, a, w) }

// forEachFrame visits every environment frame (deduplicated — frames
// are shared between the current chain and the chains hanging off
// choice points, and the relocation pass must rewrite each exactly
// once) and every choice-point frame.
func (c *collector) forEachFrame(r *Roots, env func(e uint32), cp func(b uint32)) {
	c.frameSeen = make(map[uint32]bool)
	walkEnv := func(e uint32) {
		for e != 0 && !c.frameSeen[e] {
			c.frameSeen[e] = true
			env(e)
			e = c.st.Read(word.ZLocal, e+c.lay.EnvLink).Value()
		}
	}
	walkEnv(r.E)
	for b := r.B; b != 0; b = c.st.Read(word.ZChoice, b+c.lay.CPPrev).Value() {
		cp(b)
		walkEnv(c.st.Read(word.ZChoice, b+c.lay.CPE).Value())
	}
}

// Link words. While the mark phase is descending through a block, one
// of its cells holds a link instead of its contents: the type field
// carries the tag of the pointer the block was entered through (never
// TFunc — only TRef, TList, TStruct and TDataPtr enter blocks), the
// low 28 value bits carry the parent slot address (0 = root), and the
// remaining-cell count (pos - blockLow, at most 254 for a max-arity
// structure) is split between the zone field (low 4 bits) and value
// bits 31..28. Links carry GCMark|GCLink.
const linkParentMask = 0x0FFFFFFF

func makeLink(tag word.Type, parent, rem uint32) word.Word {
	v := (parent & linkParentMask) | (rem>>4)<<28
	return word.Make(tag, word.Zone(rem&0xF), v).WithGC(word.GCMark | word.GCLink)
}

func linkParts(w word.Word) (tag word.Type, parent, rem uint32) {
	return w.Type(), w.Value() & linkParentMask, uint32(w.Zone()) | (w.Value()>>28)<<4
}

// block describes the heap cells a pointer word denotes: start is the
// first cell, low the first *scannable* cell (a structure's functor
// is marked on entry but never descended into), end one past the
// last. A block extending past the heap top is clamped, not skipped:
// the overflow-retry path depends on the written prefix of a
// half-built structure surviving in order at the top of the live
// region.
type block struct {
	start, low, end uint32
}

// blockOf classifies w. ok is false for non-pointers, pointers
// outside [base, top), and structure pointers whose first cell is not
// a functor word (stale junk — including a cell that currently holds
// a reversal link: links never carry the TFunc tag, and a cell can
// only hold a link while its true contents are a pointer being
// descended through, which likewise proves the struct pointer stale).
func (c *collector) blockOf(w word.Word) (block, bool) {
	a := w.Value()
	switch w.Type() {
	case word.TRef, word.TDataPtr:
		if w.Zone() != word.ZGlobal || a < c.base || a >= c.top {
			return block{}, false
		}
		return block{start: a, low: a, end: a + 1}, true
	case word.TList:
		if a < c.base || a >= c.top {
			return block{}, false
		}
		end := a + 2
		if end > c.top {
			end = c.top
		}
		return block{start: a, low: a, end: end}, true
	case word.TStruct:
		if a < c.base || a >= c.top {
			return block{}, false
		}
		f := c.heap(a)
		if f.Type() != word.TFunc {
			return block{}, false
		}
		end := a + 1 + uint32(f.FunctorArity())
		if end > c.top {
			end = c.top
		}
		return block{start: a, low: a + 1, end: end}, true
	}
	return block{}, false
}

// highestUnmarked returns the highest unmarked cell in [low, end).
func (c *collector) highestUnmarked(low, end uint32) (uint32, bool) {
	for a := end; a > low; a-- {
		if !c.heap(a - 1).Marked() {
			return a - 1, true
		}
	}
	return 0, false
}

// markFrom marks everything reachable from root, transitively, using
// link-migration pointer reversal. A cell is marked exactly when its
// contents have been examined (or, for a structure's functor, on
// block entry — functors are not pointers), so skipping marked cells
// never loses reachable data; cyclic terms terminate because every
// descent marks a previously unmarked cell.
func (c *collector) markFrom(root word.Word) {
	const rootParent = 0 // HeapBase > 0, so no real slot is 0
	cur := root
	pos := uint32(rootParent)
	for {
		// Try to descend through cur into its block.
		if blk, ok := c.blockOf(cur); ok {
			if cur.Type() == word.TStruct {
				if f := c.heap(blk.start); !f.Marked() {
					c.setHeap(blk.start, f.WithGC(word.GCMark))
				}
			}
			if hp, found := c.highestUnmarked(blk.low, blk.end); found {
				orig := c.heap(hp)
				c.setHeap(hp, makeLink(cur.Type(), pos, hp-blk.low))
				cur, pos = orig, hp
				continue
			}
		}
		// cur is finished. At the root, the whole traversal is done;
		// otherwise restore the parent slot and migrate the link to
		// the next unmarked cell of its block, or exit the block.
		if pos == rootParent {
			return
		}
		tag, parent, rem := linkParts(c.heap(pos))
		blockLow := pos - rem
		c.setHeap(pos, cur.WithGC(word.GCMark))
		if np, found := c.highestUnmarked(blockLow, pos); found {
			orig := c.heap(np)
			c.setHeap(np, makeLink(tag, parent, np-blockLow))
			cur, pos = orig, np
			continue
		}
		// Block fully marked: rebuild the pointer it was entered
		// through (its type, zone and address determine it completely)
		// and resume in the parent. The rebuilt pointer finds no
		// unmarked cell, so the loop falls through to finishing the
		// parent's slot.
		blockStart := blockLow
		if tag == word.TStruct {
			blockStart = blockLow - 1
		}
		cur, pos = word.Make(tag, word.ZGlobal, blockStart), parent
	}
}
