package gc

import (
	"testing"

	"repro/internal/word"
)

// fakeStore is a map-backed Store for white-box collector tests.
type fakeStore struct {
	mem map[[2]uint32]word.Word
}

func newFake() *fakeStore { return &fakeStore{mem: make(map[[2]uint32]word.Word)} }

func (s *fakeStore) Read(z word.Zone, a uint32) word.Word {
	return s.mem[[2]uint32{uint32(z), a}]
}
func (s *fakeStore) Write(z word.Zone, a uint32, w word.Word) {
	s.mem[[2]uint32{uint32(z), a}] = w
}

const heapBase = 0x100
const trailBase = 0x800

// layout mirrors the machine's frame geometry (envHeader=3, 9-word
// choice points) without importing it.
var lay = Layout{
	EnvLink: 0, EnvSize: 2, EnvHeader: 3,
	CPPrev: 0, CPE: 2, CPH: 4, CPTR: 5, CPArity: 8, CPHeader: 9,
}

// harness builds Roots over a fake store with the given heap size.
type harness struct {
	st                *fakeStore
	h, hb, shadowH, s uint32
	tr, shadowTR      uint32
	regs              []word.Word
	e, b              uint32
}

func newHarness(nregs int) *harness {
	return &harness{
		st: newFake(), h: heapBase, hb: heapBase, shadowH: heapBase,
		tr: trailBase, shadowTR: trailBase,
		regs: make([]word.Word, nregs),
	}
}

func (h *harness) push(w word.Word) uint32 {
	a := h.h
	h.st.Write(word.ZGlobal, a, w)
	h.h++
	return a
}

func (h *harness) roots() *Roots {
	return &Roots{
		Regs: h.regs, E: h.e, B: h.b,
		H: &h.h, HB: &h.hb, ShadowH: &h.shadowH, S: &h.s,
		TR: &h.tr, ShadowTR: &h.shadowTR,
		HeapBase: heapBase, TrailBase: trailBase,
	}
}

func (h *harness) collect(t *testing.T) Stats {
	t.Helper()
	st := Collect(h.st, h.roots(), lay)
	// Post-invariant: every live cell has clear GC bits.
	for a := uint32(heapBase); a < h.h; a++ {
		if g := h.st.Read(word.ZGlobal, a).GC(); g != 0 {
			t.Fatalf("cell %#x left with GC bits %02b", a, g)
		}
	}
	return st
}

func ref(a uint32) word.Word  { return word.Make(word.TRef, word.ZGlobal, a) }
func list(a uint32) word.Word { return word.Make(word.TList, word.ZGlobal, a) }
func strp(a uint32) word.Word { return word.Make(word.TStruct, word.ZGlobal, a) }
func atom(v uint32) word.Word { return word.Make(word.TAtom, word.ZNone, v) }
func fn(arity uint32) word.Word {
	return word.Make(word.TFunc, word.ZNone, 7<<8|arity)
}

// TestCollectList: garbage below and between the cells of a live list
// is reclaimed, the list slides down intact, and the register is
// forwarded.
func TestCollectList(t *testing.T) {
	h := newHarness(2)
	h.push(atom(99))       // garbage
	car := h.push(atom(1)) // [1|[]] cons
	h.push(word.Nil())
	h.push(atom(98)) // garbage
	h.regs[0] = list(car)

	st := h.collect(t)
	if st.Live != 2 || st.Freed != 2 {
		t.Fatalf("live=%d freed=%d, want 2/2", st.Live, st.Freed)
	}
	if h.h != heapBase+2 {
		t.Fatalf("H = %#x, want %#x", h.h, heapBase+2)
	}
	if h.regs[0] != list(heapBase) {
		t.Fatalf("reg not forwarded: %v", h.regs[0])
	}
	if got := h.st.Read(word.ZGlobal, heapBase); got != atom(1) {
		t.Fatalf("car = %v", got)
	}
	if got := h.st.Read(word.ZGlobal, heapBase+1); got != word.Nil() {
		t.Fatalf("cdr = %v", got)
	}
}

// TestCollectStruct: a structure keeps its functor and args; the args
// can reference other live blocks that also move.
func TestCollectStruct(t *testing.T) {
	h := newHarness(1)
	h.push(atom(0)) // garbage
	inner := h.push(atom(5))
	h.push(word.Nil())
	h.push(atom(0)) // garbage
	f := h.push(fn(2))
	h.push(list(inner))
	h.push(word.FromInt(42))
	h.regs[0] = strp(f)

	h.collect(t)
	// Layout after sliding: cons at base, struct at base+2.
	if h.regs[0] != strp(heapBase+2) {
		t.Fatalf("struct reg = %v", h.regs[0])
	}
	if got := h.st.Read(word.ZGlobal, heapBase+3); got != list(heapBase) {
		t.Fatalf("arg1 = %v, want list->%#x", got, heapBase)
	}
	if got := h.st.Read(word.ZGlobal, heapBase+4); got != word.FromInt(42) {
		t.Fatalf("arg2 = %v", got)
	}
}

// TestCollectSharedSubstructure: two roots reaching the same cell must
// agree after forwarding (each slot rewritten exactly once).
func TestCollectSharedSubstructure(t *testing.T) {
	h := newHarness(3)
	h.push(atom(0)) // garbage
	shared := h.push(atom(7))
	h.push(word.Nil())
	a := h.push(list(shared))
	h.push(word.Nil())
	h.regs[0] = list(a)
	h.regs[1] = list(shared)
	h.regs[2] = ref(shared)

	h.collect(t)
	want := heapBase // shared cons slid down one slot
	if h.regs[1] != list(uint32(want)) {
		t.Fatalf("reg1 = %v", h.regs[1])
	}
	if h.regs[2] != ref(uint32(want)) {
		t.Fatalf("reg2 = %v", h.regs[2])
	}
	outer := h.regs[0].Value()
	if got := h.st.Read(word.ZGlobal, outer); got != list(uint32(want)) {
		t.Fatalf("outer car = %v", got)
	}
}

// TestCollectCycle: a cyclic term (X = [a|X]) must terminate and
// survive with the cycle intact.
func TestCollectCycle(t *testing.T) {
	h := newHarness(1)
	h.push(atom(0)) // garbage
	car := h.push(atom(1))
	h.push(list(car)) // cdr points back at the cons itself
	h.regs[0] = list(car)

	st := h.collect(t)
	if st.Live != 2 {
		t.Fatalf("live = %d, want 2", st.Live)
	}
	at := h.regs[0].Value()
	if got := h.st.Read(word.ZGlobal, at+1); got != list(at) {
		t.Fatalf("cycle broken: cdr = %v, want list->%#x", got, at)
	}
}

// TestCollectSelfRef: an unbound variable (self-reference) moves and
// still references itself.
func TestCollectSelfRef(t *testing.T) {
	h := newHarness(1)
	h.push(atom(0)) // garbage
	v := h.push(word.Word(0))
	h.st.Write(word.ZGlobal, v, ref(v))
	h.regs[0] = ref(v)

	h.collect(t)
	at := h.regs[0].Value()
	if at != heapBase {
		t.Fatalf("var at %#x, want %#x", at, heapBase)
	}
	if got := h.st.Read(word.ZGlobal, at); got != ref(at) {
		t.Fatalf("self-ref broken: %v", got)
	}
}

// TestCollectStalePrefixOverlap: a stale register marking a prefix of
// a live structure's block must not stop the structure's remaining
// cells from being traced (the seed collector's known overlap case).
func TestCollectStalePrefixOverlap(t *testing.T) {
	h := newHarness(2)
	inner := h.push(atom(3))
	h.push(word.Nil())
	f := h.push(fn(2))
	arg1 := h.push(atom(1))
	h.push(list(inner))
	// Stale register: a ref to the first arg cell, examined before
	// the struct pointer.
	h.regs[0] = ref(arg1)
	h.regs[1] = strp(f)

	st := h.collect(t)
	if st.Live != 5 {
		t.Fatalf("live = %d, want 5 (everything)", st.Live)
	}
	sp := h.regs[1].Value()
	if got := h.st.Read(word.ZGlobal, sp+2); got != list(heapBase) {
		t.Fatalf("second arg lost: %v", got)
	}
}

// TestCollectPartialTopBlock: a pointer to a half-built block at the
// heap top (mid-instruction overflow state) keeps the written prefix,
// clamped at H, in order at the top of the live region.
func TestCollectPartialTopBlock(t *testing.T) {
	h := newHarness(2)
	h.push(atom(0)) // garbage
	f := h.push(fn(3))
	h.push(atom(1)) // only arg written so far; args 2..3 not pushed yet
	h.regs[0] = strp(f)
	// And a list pointer AT the heap top: published before any cell
	// was pushed (put_list semantics).
	h.regs[1] = list(h.h)

	st := h.collect(t)
	if st.Live != 2 {
		t.Fatalf("live = %d, want 2 (functor + first arg)", st.Live)
	}
	sp := h.regs[0].Value()
	if sp != heapBase {
		t.Fatalf("struct at %#x", sp)
	}
	if got := h.st.Read(word.ZGlobal, sp); got != fn(3) {
		t.Fatalf("functor = %v", got)
	}
	if got := h.st.Read(word.ZGlobal, sp+1); got != atom(1) {
		t.Fatalf("arg1 = %v", got)
	}
	// The pointer at the old top forwards to the new top, so a
	// retried instruction keeps building contiguously.
	if h.regs[1] != list(h.h) {
		t.Fatalf("top pointer = %v, want list->%#x", h.regs[1], h.h)
	}
}

// TestCollectStaleStructPointer: a struct pointer whose target is not
// a functor word is stale junk and must be ignored, not traced.
func TestCollectStaleStructPointer(t *testing.T) {
	h := newHarness(2)
	c := h.push(atom(1))
	h.push(word.Nil())
	h.regs[0] = strp(c) // stale: points at an atom, not a functor
	h.regs[1] = list(c)

	st := h.collect(t)
	if st.Live != 2 {
		t.Fatalf("live = %d, want 2", st.Live)
	}
}

// TestTrailCompression: entries whose cells died are dropped, saved
// TR snapshots are adjusted by the drops below them, and surviving
// entries are relocated.
func TestTrailCompression(t *testing.T) {
	h := newHarness(1)
	dead := h.push(atom(1)) // dies
	h.push(word.Nil())
	live := h.push(atom(2))
	h.push(word.Nil())
	h.regs[0] = list(live)

	const localSlot = 0x500
	h.st.Write(word.ZTrail, trailBase+0, ref(dead))
	h.st.Write(word.ZTrail, trailBase+1, word.Make(word.TRef, word.ZLocal, localSlot))
	h.st.Write(word.ZTrail, trailBase+2, ref(live))
	h.tr = trailBase + 3
	h.shadowTR = trailBase + 2 // above one future drop

	// A choice point whose saved TR sits above the dropped entry.
	const b = 0x600
	h.st.Write(word.ZChoice, b+lay.CPPrev, word.Word(0))
	h.st.Write(word.ZChoice, b+lay.CPE, word.Word(0))
	h.st.Write(word.ZChoice, b+lay.CPH, word.Make(word.TDataPtr, word.ZGlobal, live))
	h.st.Write(word.ZChoice, b+lay.CPTR, word.Make(word.TTrailPtr, word.ZTrail, trailBase+2))
	h.st.Write(word.ZChoice, b+lay.CPArity, word.Make(word.TImm, word.ZNone, 0))
	h.b = b

	st := h.collect(t)
	if st.TrailDropped != 1 || st.TrailKept != 2 {
		t.Fatalf("dropped=%d kept=%d, want 1/2", st.TrailDropped, st.TrailKept)
	}
	if h.tr != trailBase+2 {
		t.Fatalf("TR = %#x", h.tr)
	}
	// Local entry untouched in content, slid down to slot 0.
	if got := h.st.Read(word.ZTrail, trailBase); got.Zone() != word.ZLocal || got.Value() != localSlot {
		t.Fatalf("local entry = %v", got)
	}
	// Live global entry relocated to the cons's new address.
	newLive := h.regs[0].Value()
	if got := h.st.Read(word.ZTrail, trailBase+1); got != ref(newLive) {
		t.Fatalf("live entry = %v, want ref->%#x", got, newLive)
	}
	if h.shadowTR != trailBase+1 {
		t.Fatalf("shadowTR = %#x, want %#x", h.shadowTR, trailBase+1)
	}
	cptr := h.st.Read(word.ZChoice, b+lay.CPTR)
	if cptr.Value() != trailBase+1 {
		t.Fatalf("cpTR = %#x, want %#x", cptr.Value(), trailBase+1)
	}
	cph := h.st.Read(word.ZChoice, b+lay.CPH)
	if cph.Value() != newLive {
		t.Fatalf("cpH = %#x, want %#x", cph.Value(), newLive)
	}
}

// TestCollectEnvChainShared: an environment frame reachable both from
// E and from a choice point is rewritten exactly once (double
// forwarding would relocate its pointers twice).
func TestCollectEnvChainShared(t *testing.T) {
	h := newHarness(0)
	h.push(atom(0)) // garbage so live cells move
	cell := h.push(atom(4))
	h.push(word.Nil())

	const e = 0x400
	h.st.Write(word.ZLocal, e+lay.EnvLink, word.Word(0))
	h.st.Write(word.ZLocal, e+lay.EnvSize, word.Make(word.TImm, word.ZNone, 1))
	h.st.Write(word.ZLocal, e+lay.EnvHeader, list(cell))
	h.e = e

	const b = 0x600
	h.st.Write(word.ZChoice, b+lay.CPPrev, word.Word(0))
	h.st.Write(word.ZChoice, b+lay.CPE, word.Make(word.TEnvPtr, word.ZLocal, e))
	h.st.Write(word.ZChoice, b+lay.CPH, word.Make(word.TDataPtr, word.ZGlobal, heapBase))
	h.st.Write(word.ZChoice, b+lay.CPTR, word.Make(word.TTrailPtr, word.ZTrail, trailBase))
	h.st.Write(word.ZChoice, b+lay.CPArity, word.Make(word.TImm, word.ZNone, 0))
	h.b = b

	h.collect(t)
	slot := h.st.Read(word.ZLocal, e+lay.EnvHeader)
	if slot != list(heapBase) {
		t.Fatalf("env slot = %v, want list->%#x (moved once, not twice)", slot, heapBase)
	}
}

// TestCollectDeepListNoHostStack: pointer reversal must not recurse on
// the host; a 50k-deep list would overflow a per-cell Go stack.
func TestCollectDeepListNoHostStack(t *testing.T) {
	h := newHarness(1)
	const n = 50_000
	h.push(atom(0)) // garbage
	// Build [n, n-1, ..., 1] back to front.
	tail := word.Nil()
	for i := 1; i <= n; i++ {
		car := h.push(word.FromInt(int32(i)))
		h.push(tail)
		tail = list(car)
	}
	h.regs[0] = tail

	st := h.collect(t)
	if st.Live != 2*n {
		t.Fatalf("live = %d, want %d", st.Live, 2*n)
	}
	// Walk the list back and check it is intact.
	w := h.regs[0]
	for i := n; i >= 1; i-- {
		if w.Type() != word.TList {
			t.Fatalf("element %d: spine broke with %v", i, w)
		}
		car := h.st.Read(word.ZGlobal, w.Value())
		if car != word.FromInt(int32(i)) {
			t.Fatalf("element %d = %v", i, car)
		}
		w = h.st.Read(word.ZGlobal, w.Value()+1)
	}
	if w != word.Nil() {
		t.Fatalf("tail = %v", w)
	}
}

// TestCollectEmptyHeap: collecting an empty heap is a no-op.
func TestCollectEmptyHeap(t *testing.T) {
	h := newHarness(1)
	st := h.collect(t)
	if st != (Stats{}) {
		t.Fatalf("stats = %+v", st)
	}
}
