package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/wire"
)

// The tenant verbs end to end: assert/retract over HTTP mutate one
// tenant's copy-on-write database, queries naming the tenant see the
// delta, other tenants and the static program do not.

const dynSrc = `
:- dynamic(color/1).
color(white).
likes(X) :- color(X).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

func TestAssertQueryRetractOverHTTP(t *testing.T) {
	_, c := startServer(t, Config{
		Programs:    map[string]string{"colors": dynSrc},
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	enumerate := func(tenant string) []string {
		var got []string
		rep, err := c.Stream(ctx, wire.QueryRequest{
			Goal: "likes(X).", Tenant: tenant,
		}, func(line wire.Reply) bool {
			got = append(got, line.Bindings["X"])
			return true
		})
		if err != nil || rep.Status != wire.StatusDone {
			t.Fatalf("stream for %q: rep=%+v err=%v", tenant, rep, err)
		}
		return got
	}

	// The seed clause is visible to a fresh tenant.
	if got := enumerate("alice"); strings.Join(got, ",") != "white" {
		t.Fatalf("fresh tenant sees %v, want [white]", got)
	}

	// Assert into alice only.
	rep, err := c.Assert(ctx, wire.AssertRequest{Tenant: "alice", Clause: "color(red)"})
	if err != nil || rep.Status != wire.StatusYes {
		t.Fatalf("assert: rep=%+v err=%v", rep, err)
	}
	if rep.Version == 0 {
		t.Fatalf("assert reply carries no version: %+v", rep)
	}
	if got := enumerate("alice"); strings.Join(got, ",") != "white,red" {
		t.Fatalf("alice sees %v, want [white red]", got)
	}
	if got := enumerate("bob"); strings.Join(got, ",") != "white" {
		t.Fatalf("bob sees %v, want [white]", got)
	}

	// asserta puts the clause in front.
	if rep, err := c.Assert(ctx, wire.AssertRequest{Tenant: "alice", Clause: "color(black)", Front: true}); err != nil || rep.Status != wire.StatusYes {
		t.Fatalf("asserta: rep=%+v err=%v", rep, err)
	}
	if got := enumerate("alice"); strings.Join(got, ",") != "black,white,red" {
		t.Fatalf("alice sees %v after asserta", got)
	}

	// Retract: yes when removed, no when absent.
	if rep, err := c.Retract(ctx, wire.RetractRequest{Tenant: "alice", Clause: "color(white)"}); err != nil || rep.Status != wire.StatusYes {
		t.Fatalf("retract: rep=%+v err=%v", rep, err)
	}
	if rep, err := c.Retract(ctx, wire.RetractRequest{Tenant: "alice", Clause: "color(chartreuse)"}); err != nil || rep.Status != wire.StatusNo {
		t.Fatalf("retract absent: rep=%+v err=%v", rep, err)
	}
	if got := enumerate("alice"); strings.Join(got, ",") != "black,red" {
		t.Fatalf("alice sees %v after retract", got)
	}

	// The static program (no tenant) never sees any delta.
	rep, err = c.Query(ctx, wire.QueryRequest{Goal: "likes(X)."})
	if err != nil || rep.Status != wire.StatusYes || rep.Bindings["X"] != "white" {
		t.Fatalf("static program: rep=%+v err=%v", rep, err)
	}

	// A tenant session can suspend on its budget and resume with next,
	// exactly like a static one.
	rep, err = c.Query(ctx, wire.QueryRequest{
		Goal: "app(L, R, [a,b,c,d,e,f,g,h]), likes(X).", Tenant: "alice",
		Budget: 60, Enumerate: true,
	})
	if err != nil {
		t.Fatalf("tenant enumerate: %v", err)
	}
	sols := 0
	for i := 0; i < 10_000 && rep.Status == wire.StatusYes || rep.Status == wire.StatusSuspended; i++ {
		if rep.Status == wire.StatusYes {
			sols++
		}
		if rep.Session == "" {
			break
		}
		if rep, err = c.Next(ctx, rep.Session, 0); err != nil {
			t.Fatalf("next: %v", err)
		}
	}
	if want := 9 * 2; sols != want { // nine splits x two colors
		t.Fatalf("tenant enumeration delivered %d solutions, want %d", sols, want)
	}

	// Stats reports the tenant databases.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 2 {
		t.Fatalf("stats tenants=%d, want 2 (alice, bob)", st.Tenants)
	}
}

func TestAssertRejections(t *testing.T) {
	srv, err := New(Config{Programs: map[string]string{"colors": dynSrc}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	cases := []struct {
		name string
		req  wire.AssertRequest
		code string // substring of the expected error
	}{
		{"no tenant", wire.AssertRequest{Clause: "color(red)"}, "needs a tenant"},
		{"static pred", wire.AssertRequest{Tenant: "t", Clause: "app([], [], [])"}, "not dynamic"},
		{"empty clause", wire.AssertRequest{Tenant: "t", Clause: "  "}, "empty clause"},
		{"unparsable", wire.AssertRequest{Tenant: "t", Clause: "color("}, "clause:"},
		{"directive", wire.AssertRequest{Tenant: "t", Clause: ":- dynamic(q/1)"}, "malformed clause"},
		{"bad goal body", wire.AssertRequest{Tenant: "t", Clause: "color(X) :- no_such(X)"}, "malformed clause"},
	}
	for _, tc := range cases {
		rep, err := c.Assert(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: transport: %v", tc.name, err)
		}
		if rep.Status != wire.StatusError || !strings.Contains(rep.Error, tc.code) {
			t.Fatalf("%s: rep=%+v, want error containing %q", tc.name, rep, tc.code)
		}
	}

	// After every rejection the tenant still answers queries.
	rep, err := c.Query(ctx, wire.QueryRequest{Goal: "likes(X).", Tenant: "t"})
	if err != nil || rep.Status != wire.StatusYes || rep.Bindings["X"] != "white" {
		t.Fatalf("control query: rep=%+v err=%v", rep, err)
	}
}

// TestTenantHTTPRace drives concurrent assert/query/retract across
// tenants through real HTTP; the suite's -race run makes this a data
// race probe over server, engine, dyndb and machine layers at once.
func TestTenantHTTPRace(t *testing.T) {
	srv, c := startServer(t, Config{
		Programs:    map[string]string{"colors": dynSrc},
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(3)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const tenants = 5
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", id)
			for r := 0; r < rounds; r++ {
				cl := fmt.Sprintf("color(%s_%d)", tenant, r)
				if rep, err := c.Assert(ctx, wire.AssertRequest{Tenant: tenant, Clause: cl}); err != nil || rep.Status != wire.StatusYes {
					errs <- fmt.Errorf("%s assert: rep=%+v err=%v", tenant, rep, err)
					return
				}
				var seen []string
				rep, err := c.Stream(ctx, wire.QueryRequest{Goal: "likes(X).", Tenant: tenant},
					func(line wire.Reply) bool {
						seen = append(seen, line.Bindings["X"])
						return true
					})
				if err != nil || rep.Status != wire.StatusDone {
					errs <- fmt.Errorf("%s stream: rep=%+v err=%v", tenant, rep, err)
					return
				}
				if len(seen) != r+2 { // the white seed + r+1 asserts
					errs <- fmt.Errorf("%s round %d: saw %v", tenant, r, seen)
					return
				}
				for _, s := range seen[1:] {
					if !strings.HasPrefix(s, tenant+"_") {
						errs <- fmt.Errorf("%s saw foreign clause %q", tenant, s)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := srv.Pool().Stats(); st.InUse != 0 {
		t.Fatalf("InUse=%d after drain, want 0", st.InUse)
	}
}
