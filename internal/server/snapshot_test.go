package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// The cross-process acceptance test for session migration: a session
// parked to disk by one daemon instance and resumed by another (same
// programs, fresh pool, fresh machines) must continue byte-identically
// — same solutions, same simulated counters — against a session that
// was never suspended.

// postRaw sends one JSON request and returns the decoded reply with
// the HTTP status code (the client helper hides the code; the typed
// 409/410 assertions need it).
func postRaw(t *testing.T, base, path string, body any) (wire.Reply, int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep wire.Reply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("%s: decode (http %d): %v", path, resp.StatusCode, err)
	}
	return rep, resp.StatusCode
}

// runReference enumerates goal to exhaustion on a throwaway daemon
// and returns the per-solution replies plus the terminal reply.
func runReference(t *testing.T, goal string) ([]wire.Reply, wire.Reply) {
	t.Helper()
	_, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(1)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := c.Query(ctx, wire.QueryRequest{Goal: goal, Enumerate: true})
	if err != nil {
		t.Fatal(err)
	}
	var sols []wire.Reply
	for rep.Status == wire.StatusYes {
		sols = append(sols, rep)
		if rep, err = c.Next(ctx, rep.Session, 0); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Status != wire.StatusNo {
		t.Fatalf("reference terminal: %+v", rep)
	}
	return sols, rep
}

// sameSolution compares the observable payload of two solution
// replies: bindings, solution ordinal, and every simulated counter.
func sameSolution(a, b wire.Reply) bool {
	if a.Solutions != b.Solutions || len(a.Bindings) != len(b.Bindings) {
		return false
	}
	for k, v := range a.Bindings {
		if b.Bindings[k] != v {
			return false
		}
	}
	if (a.Stats == nil) != (b.Stats == nil) {
		return false
	}
	return a.Stats == nil || *a.Stats == *b.Stats
}

// TestSuspendResumeAcrossRestart parks a mid-enumeration session to
// disk, drains the daemon, starts a NEW daemon over the same state
// directory, resumes the handle there, and checks the continuation is
// byte-identical to the never-suspended reference.
func TestSuspendResumeAcrossRestart(t *testing.T) {
	refSols, refEnd := runReference(t, longGoal)
	if len(refSols) != 3 {
		t.Fatalf("reference: %d solutions, want 3", len(refSols))
	}

	cfg := Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(1)},
		StateDir:    t.TempDir(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Daemon instance one: deliver the first solution, park to disk.
	srvA, cA := startServer(t, cfg)
	rep, err := cA.Query(ctx, wire.QueryRequest{Goal: longGoal, Enumerate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSolution(rep, refSols[0]) {
		t.Fatalf("first solution diverged before suspend:\n got %+v\nwant %+v", rep, refSols[0])
	}
	park, err := cA.Suspend(ctx, rep.Session)
	if err != nil {
		t.Fatal(err)
	}
	if park.Status != wire.StatusParked || park.Handle == "" || park.Solutions != 1 {
		t.Fatalf("suspend: %+v", park)
	}
	if ps := srvA.pool.Stats(); ps.InUse != 0 {
		t.Fatalf("suspend left a machine leased: %+v", ps)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srvA.Drain(dctx); err != nil {
		t.Fatalf("drain A: %v", err)
	}

	// Daemon instance two: same programs and state dir, fresh pool.
	_, cB := startServer(t, cfg)
	res, err := cB.Resume(ctx, wire.ResumeRequest{Handle: park.Handle})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusSuspended || res.Session == "" || res.Solutions != 1 {
		t.Fatalf("resume: %+v", res)
	}
	// The snapshot is one-shot: consumed by the successful resume.
	if _, err := os.Stat(filepath.Join(cfg.StateDir, park.Handle+".snap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot file not consumed: %v", err)
	}
	rep, err = cB.Next(ctx, res.Session, 0)
	for i := 1; i < len(refSols); i++ {
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(rep, refSols[i]) {
			t.Fatalf("solution %d after restart diverged:\n got %+v\nwant %+v", i, rep, refSols[i])
		}
		rep, err = cB.Next(ctx, rep.Session, 0)
	}
	if err != nil || rep.Status != wire.StatusNo || !sameSolution(rep, refEnd) {
		t.Fatalf("terminal after restart:\n got %+v %v\nwant %+v", rep, err, refEnd)
	}
}

// TestDrainParksSessionsToDisk: with a state directory, a drain does
// not run parked sessions to completion — it serializes each under
// its session id, and the next daemon resumes them byte-identically.
func TestDrainParksSessionsToDisk(t *testing.T) {
	refSols, refEnd := runReference(t, longGoal)
	cfg := Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(1)},
		StateDir:    t.TempDir(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	srvA, cA := startServer(t, cfg)
	// A budget-suspended session: zero solutions out, search mid-flight.
	rep, err := cA.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
	if err != nil || rep.Status != wire.StatusSuspended {
		t.Fatalf("park: %+v %v", rep, err)
	}
	id := rep.Session
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srvA.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cfg.StateDir, id+".snap")); err != nil {
		t.Fatalf("drain did not park the session: %v", err)
	}
	if ps := srvA.pool.Stats(); ps.InUse != 0 {
		t.Fatalf("machines leaked across parking drain: %+v", ps)
	}

	_, cB := startServer(t, cfg)
	res, err := cB.Resume(ctx, wire.ResumeRequest{Handle: id})
	if err != nil || res.Status != wire.StatusSuspended {
		t.Fatalf("resume: %+v %v", res, err)
	}
	var got []wire.Reply
	rep, err = cB.Next(ctx, res.Session, 0)
	for err == nil && (rep.Status == wire.StatusYes || rep.Status == wire.StatusSuspended) {
		if rep.Status == wire.StatusYes {
			got = append(got, rep)
		}
		rep, err = cB.Next(ctx, rep.Session, 0)
	}
	if err != nil || rep.Status != wire.StatusNo {
		t.Fatalf("post-restart enumeration end: %+v %v", rep, err)
	}
	if len(got) != len(refSols) {
		t.Fatalf("post-restart solutions: %d, want %d", len(got), len(refSols))
	}
	for i := range got {
		if !sameSolution(got[i], refSols[i]) {
			t.Fatalf("solution %d diverged:\n got %+v\nwant %+v", i, got[i], refSols[i])
		}
	}
	if !sameSolution(rep, refEnd) {
		t.Fatalf("terminal counters diverged:\n got %+v\nwant %+v", rep, refEnd)
	}
}

// TestTenantSuspendResumeHTTP: tenant sessions park and resume within
// a daemon's lifetime, and a tenant mutation between park and resume
// is a 409 (the snapshot references a rebuilt delta).
func TestTenantSuspendResumeHTTP(t *testing.T) {
	_, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(1)},
		StateDir:    t.TempDir(),
	})
	base := c.Base()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, cl := range []string{"color(red)", "color(green)"} {
		if rep, err := c.Assert(ctx, wire.AssertRequest{Tenant: "t1", Clause: cl}); err != nil || rep.Status != wire.StatusYes {
			t.Fatalf("assert %s: %+v %v", cl, rep, err)
		}
	}
	q := wire.QueryRequest{Goal: "color(X).", Tenant: "t1", Enumerate: true}
	rep, err := c.Query(ctx, q)
	if err != nil || rep.Status != wire.StatusYes || rep.Bindings["X"] != "red" {
		t.Fatalf("tenant query: %+v %v", rep, err)
	}
	park, err := c.Suspend(ctx, rep.Session)
	if err != nil || park.Status != wire.StatusParked {
		t.Fatalf("tenant suspend: %+v %v", park, err)
	}
	res, err := c.Resume(ctx, wire.ResumeRequest{Handle: park.Handle})
	if err != nil || res.Status != wire.StatusSuspended {
		t.Fatalf("tenant resume: %+v %v", res, err)
	}
	if rep, err = c.Next(ctx, res.Session, 0); err != nil ||
		rep.Status != wire.StatusYes || rep.Bindings["X"] != "green" {
		t.Fatalf("tenant continuation: %+v %v", rep, err)
	}
	if _, err := c.Cancel(ctx, rep.Session); err != nil {
		t.Fatal(err)
	}

	// Park again, mutate the tenant, resume: stale delta, 409.
	rep, err = c.Query(ctx, q)
	if err != nil || rep.Status != wire.StatusYes {
		t.Fatalf("tenant query 2: %+v %v", rep, err)
	}
	park, err = c.Suspend(ctx, rep.Session)
	if err != nil || park.Status != wire.StatusParked {
		t.Fatalf("tenant suspend 2: %+v %v", park, err)
	}
	if rep, err = c.Assert(ctx, wire.AssertRequest{Tenant: "t1", Clause: "color(blue)"}); err != nil || rep.Status != wire.StatusYes {
		t.Fatalf("mutating assert: %+v %v", rep, err)
	}
	staleRep, code := postRaw(t, base, "/v1/resume", wire.ResumeRequest{Handle: park.Handle})
	if code != http.StatusConflict || staleRep.Status != wire.StatusError {
		t.Fatalf("stale resume: http %d %+v, want 409", code, staleRep)
	}
}

// TestDoneReasonsTyped is the satellite eviction-race fix's interface
// contract: a next on a session the client cancelled is 409; on one
// the server evicted or suspended to disk, 410 (the latter carrying
// the resume handle).
func TestDoneReasonsTyped(t *testing.T) {
	srv, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
		IdleTimeout: 300 * time.Millisecond,
		StateDir:    t.TempDir(),
	})
	base := c.Base()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	park := func() string {
		rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
		if err != nil || rep.Status != wire.StatusSuspended {
			t.Fatalf("park: %+v %v", rep, err)
		}
		return rep.Session
	}

	// Cancelled: the client's own doing — 409, don't retry.
	id := park()
	if _, err := c.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	if rep, code := postRaw(t, base, "/v1/next", wire.NextRequest{Session: id}); code != http.StatusConflict {
		t.Fatalf("next after cancel: http %d %+v, want 409", code, rep)
	}
	if rep, code := postRaw(t, base, "/v1/cancel", wire.CancelRequest{Session: id}); code != http.StatusConflict {
		t.Fatalf("cancel after cancel: http %d %+v, want 409", code, rep)
	}

	// Suspended to disk: 410 with the resume handle.
	id = park()
	if rep, err := c.Suspend(ctx, id); err != nil || rep.Status != wire.StatusParked {
		t.Fatalf("suspend: %+v %v", rep, err)
	}
	if rep, code := postRaw(t, base, "/v1/next", wire.NextRequest{Session: id}); code != http.StatusGone || rep.Handle != id {
		t.Fatalf("next after suspend: http %d %+v, want 410 with handle", code, rep)
	}

	// Evicted: the janitor's doing — 410.
	id = park()
	deadline := time.Now().Add(10 * time.Second)
	for srv.sessions.active() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if rep, code := postRaw(t, base, "/v1/next", wire.NextRequest{Session: id}); code != http.StatusGone {
		t.Fatalf("next after evict: http %d %+v, want 410", code, rep)
	}

	// A session id the daemon never minted stays a plain 404.
	if rep, code := postRaw(t, base, "/v1/next", wire.NextRequest{Session: "0123456789abcdef"}); code != http.StatusNotFound {
		t.Fatalf("next on unknown: http %d %+v, want 404", code, rep)
	}
}

// TestEvictSuspendCancelRace hammers one session id from concurrent
// next, cancel and suspend requests while the janitor evicts on a
// short fuse: whatever interleaving wins, every response must be one
// of the typed outcomes — never a 5xx, never a transport error. Run
// under -race this is the regression test for the touch-then-evict
// atomicity and the done-reason protocol.
func TestEvictSuspendCancelRace(t *testing.T) {
	srv, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
		IdleTimeout: 100 * time.Millisecond,
		StateDir:    t.TempDir(),
	})
	base := c.Base()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusNotFound:            true,
		http.StatusConflict:            true,
		http.StatusGone:                true,
		http.StatusUnprocessableEntity: true, // suspend lost to a terminal Next
	}
	for round := 0; round < 10; round++ {
		rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
		if err != nil || rep.Status != wire.StatusSuspended {
			t.Fatalf("round %d park: %+v %v", round, rep, err)
		}
		id := rep.Session
		var wg sync.WaitGroup
		errs := make(chan error, 6)
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				time.Sleep(time.Duration(i*20) * time.Millisecond)
				var code int
				var rep wire.Reply
				switch i % 3 {
				case 0:
					rep, code = postRaw(t, base, "/v1/next", wire.NextRequest{Session: id})
				case 1:
					rep, code = postRaw(t, base, "/v1/cancel", wire.CancelRequest{Session: id})
				default:
					rep, code = postRaw(t, base, "/v1/suspend", wire.SuspendRequest{Session: id})
				}
				if !allowed[code] {
					errs <- fmt.Errorf("round %d op %d: http %d %+v", round, i, code, rep)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
	// However the races resolved, no machine may be stranded.
	deadline := time.Now().Add(10 * time.Second)
	for srv.sessions.active() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if ps := srv.pool.Stats(); ps.InUse != 0 {
		t.Fatalf("machines stranded after races: %+v", ps)
	}
}

// TestSuspendWithoutStateDir: the endpoints are 501 when the daemon
// has no state directory.
func TestSuspendWithoutStateDir(t *testing.T) {
	_, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(1)},
	})
	base := c.Base()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
	if err != nil || rep.Status != wire.StatusSuspended {
		t.Fatalf("park: %+v %v", rep, err)
	}
	if rep2, code := postRaw(t, base, "/v1/suspend", wire.SuspendRequest{Session: rep.Session}); code != http.StatusNotImplemented {
		t.Fatalf("suspend without state dir: http %d %+v, want 501", code, rep2)
	}
	if rep2, code := postRaw(t, base, "/v1/resume", wire.ResumeRequest{Handle: "0123456789abcdef"}); code != http.StatusNotImplemented {
		t.Fatalf("resume without state dir: http %d %+v, want 501", code, rep2)
	}
	if _, err := c.Cancel(ctx, rep.Session); err != nil {
		t.Fatal(err)
	}
}
