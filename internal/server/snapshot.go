package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/wire"
)

// Session park-to-disk: the wire face of the snapshot subsystem. A
// parked session's machine state is already position-independent (the
// blob carries live ranges, cache residency and every counter, keyed
// to the code image by content hash), so the server only has to
// record, next to the blob, how to rebuild the code environment: the
// program name, the goal text, and the tenant if any. A resuming
// daemon — this process or its successor after a restart — recompiles
// the same program and goal, and the blob's image hash proves the
// reconstruction produced the very bytes the session was running
// before any state lands on a machine.

// envelope is the on-disk form of one suspended session: the code
// environment identity plus the machine snapshot blob (base64 in the
// JSON encoding).
type envelope struct {
	Program string `json:"program"`
	Tenant  string `json:"tenant,omitempty"`
	Goal    string `json:"goal"`
	Blob    []byte `json:"blob"`
}

// stateFile maps a handle onto its snapshot path, refusing anything
// but the 16-hex-digit session ids the server mints so a handle can
// never traverse outside StateDir.
func (s *Server) stateFile(handle string) (string, error) {
	if len(handle) != 16 {
		return "", fmt.Errorf("bad handle %q", handle)
	}
	for _, c := range handle {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("bad handle %q", handle)
		}
	}
	return filepath.Join(s.cfg.StateDir, handle+".snap"), nil
}

// writeEnvelope persists one suspended session under its handle.
func (s *Server) writeEnvelope(handle string, env envelope) error {
	path, err := s.stateFile(handle)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o700); err != nil {
		return err
	}
	buf, err := json.Marshal(env)
	if err != nil {
		return err
	}
	// Write-then-rename so a crash mid-write never leaves a torn
	// envelope under a resumable name.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readEnvelope loads a handle's envelope; ok is false when no such
// snapshot exists.
func (s *Server) readEnvelope(handle string) (envelope, bool, error) {
	var env envelope
	path, err := s.stateFile(handle)
	if err != nil {
		return env, false, err
	}
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return env, false, nil
	}
	if err != nil {
		return env, false, err
	}
	if err := json.Unmarshal(buf, &env); err != nil {
		return env, false, fmt.Errorf("corrupt snapshot %q: %w", handle, err)
	}
	return env, true, nil
}

// handleSuspend serializes a parked session to the state directory.
// The session leaves the table — its machine goes back to the pool —
// and the reply's handle (the session id) names the snapshot for
// /v1/resume.
func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	var req wire.SuspendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	if s.cfg.StateDir == "" {
		writeJSON(w, http.StatusNotImplemented,
			errorReply(fmt.Errorf("daemon has no state directory (start kcmd with -state)")))
		return
	}
	e, ok := s.sessions.get(req.Session)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorReply(fmt.Errorf("unknown session %q", req.Session)))
		return
	}
	e.ops.Lock()
	defer e.ops.Unlock()
	if e.done {
		rep, code := doneReply(e, req.Session)
		writeJSON(w, code, rep)
		return
	}
	blob, err := e.sess.Suspend()
	if err != nil {
		// Suspend refused: the enumeration already ended. The session
		// stays in the table for a final next/cancel.
		writeJSON(w, http.StatusUnprocessableEntity, errorReply(err))
		return
	}
	// The machine is released; the entry must leave the table whether
	// or not the disk write succeeds.
	e.done = true
	e.reason = reasonParked
	delivered := e.sess.Delivered()
	s.sessions.retire(e)
	s.account(e.sess, false)
	if err := s.writeEnvelope(e.id, envelope{
		Program: e.program, Tenant: e.tenant, Goal: e.goal, Blob: blob,
	}); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorReply(err))
		return
	}
	s.sessions.mu.Lock()
	s.sessions.parked++
	s.sessions.mu.Unlock()
	writeJSON(w, http.StatusOK, wire.Reply{
		Status:    wire.StatusParked,
		Handle:    e.id,
		Solutions: delivered,
	})
}

// handleResume rebuilds a suspended session from its on-disk handle
// and parks it in the table, ready for /v1/next — the continuation is
// byte-identical to a session that was never suspended. One-shot: the
// snapshot file is consumed by a successful resume.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	var req wire.ResumeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorReply(errTableClosed))
		return
	}
	if s.cfg.StateDir == "" {
		writeJSON(w, http.StatusNotImplemented,
			errorReply(fmt.Errorf("daemon has no state directory (start kcmd with -state)")))
		return
	}
	env, ok, err := s.readEnvelope(req.Handle)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(err))
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorReply(fmt.Errorf("unknown handle %q", req.Handle)))
		return
	}
	runCtx, cancel := s.runCtx(r.Context(), req.TimeoutMS)
	defer cancel()
	budget := engine.WithBudget(s.clampBudget(req.Budget))
	var sess *engine.Session
	if env.Tenant == "" {
		im, err := s.image(env.Program, env.Goal)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorReply(err))
			return
		}
		sess, err = s.pool.Resume(runCtx, im, env.Blob, budget)
		if err != nil {
			writeJSON(w, resumeStatus(err), errorReply(err))
			return
		}
	} else {
		db, err := s.tenantDB(env.Program, env.Tenant)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorReply(err))
			return
		}
		goal, err := parseGoal(env.Goal)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, errorReply(err))
			return
		}
		sess, err = s.pool.ResumeDyn(runCtx, db, goal, env.Blob, budget)
		if err != nil {
			writeJSON(w, resumeStatus(err), errorReply(err))
			return
		}
	}
	e, err := s.sessions.add(env.Program, env.Tenant, env.Goal, sess)
	if err != nil {
		sess.Close()
		s.account(sess, false)
		writeJSON(w, http.StatusServiceUnavailable,
			errorReply(fmt.Errorf("resumed but cannot park: %w", err)))
		return
	}
	if path, err := s.stateFile(req.Handle); err == nil {
		os.Remove(path)
	}
	writeJSON(w, http.StatusOK, wire.Reply{
		Status:    wire.StatusSuspended,
		Session:   e.id,
		Solutions: sess.Delivered(),
	})
}

// resumeStatus maps an engine resume failure onto an HTTP code: a
// stale tenant delta is a conflict the client can observe (the
// database moved on), admission-control timeouts are 503, and
// everything else — corrupt blob, image or config mismatch — is
// unprocessable.
func resumeStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrStaleDelta):
		return http.StatusConflict
	case errors.Is(err, machine.ErrCancelled), errors.Is(err, machine.ErrDeadline):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// parkAll serializes every live table session to the state directory
// under its session id, so clients resume across the daemon restart
// with the session id as the handle. Sessions that refuse to suspend
// (enumeration already ended) are left for drainAll to close.
func (s *Server) parkAll() {
	for _, e := range s.sessions.snapshot() {
		e.ops.Lock()
		if e.done {
			e.ops.Unlock()
			continue
		}
		blob, err := e.sess.Suspend()
		if err != nil {
			e.ops.Unlock()
			continue
		}
		e.done = true
		e.reason = reasonParked
		err = s.writeEnvelope(e.id, envelope{
			Program: e.program, Tenant: e.tenant, Goal: e.goal, Blob: blob,
		})
		e.ops.Unlock()
		s.sessions.retire(e)
		s.account(e.sess, false)
		if err == nil {
			s.sessions.mu.Lock()
			s.sessions.parked++
			s.sessions.mu.Unlock()
		}
	}
}
