// Package server is the kcmd network front-end: an HTTP/JSON daemon
// over the warm-machine pool. The KCM of the paper is a co-processor
// that serves logic queries to a host; this package is the modern
// analogue — compile-once images served to many network clients, with
// per-request deadlines and step budgets mapped onto the machine's
// resumable RunFor sessions, backpressure from budget-suspended
// sessions parked in a server-side table, and a graceful drain that
// finishes in-flight queries on SIGTERM.
//
// The handler discipline matters: a pooled machine must never be held
// across a network write (a slow client would hold a machine hostage;
// kcmlint enforces this). Handlers therefore delegate to writer-free
// run functions that lease a session, render solutions into wire
// values, and release or park the machine before the handler touches
// the ResponseWriter; the streaming path decouples through a channel
// between the enumerator goroutine (owns the machine) and the handler
// goroutine (owns the connection).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/wire"
)

// Config describes a daemon: its programs and its limits.
type Config struct {
	// Programs maps a program name to its Prolog source text.
	Programs map[string]string
	// PoolOptions configure the machine pool (engine.WithPoolSize,
	// engine.WithWarm, engine.WithFusion, engine.WithProfiling, ...).
	PoolOptions []engine.PoolOption
	// DefaultBudget is the per-slice step budget when a request
	// carries none (default 50M instructions).
	DefaultBudget uint64
	// MaxBudget clamps client-supplied budgets (default 1G).
	MaxBudget uint64
	// DefaultTimeout bounds a request's execution wall-clock time
	// when the request carries none (default 30s).
	DefaultTimeout time.Duration
	// IdleTimeout is how long a parked session may sit untouched
	// before the janitor evicts it (default 60s).
	IdleTimeout time.Duration
	// MaxSessions caps the session table (default 4x pool size).
	MaxSessions int
	// StateDir, when set, enables session suspend/resume across
	// daemon restarts: /v1/suspend serializes a parked session's
	// machine state to a blob file here, /v1/resume rebuilds it, and
	// Drain parks every live session the same way instead of running
	// it to completion.
	StateDir string
}

// Server serves the wire protocol over an engine.Pool.
type Server struct {
	cfg   Config
	pool  *engine.Pool
	progs map[string]*core.Program

	imgMu  sync.Mutex
	images map[imageKey]*asm.Image

	dynMu    sync.Mutex
	dynProgs map[string]*dynProg // per-program tenant databases

	sessions *table
	draining atomic.Bool

	totMu  sync.Mutex
	totals wire.Totals

	httpSrv  *http.Server
	listener net.Listener
	janitor  chan struct{} // closed to stop the eviction loop
	wg       sync.WaitGroup
}

// imageKey identifies one compile-once image: a goal text against a
// named program.
type imageKey struct {
	program string
	goal    string
}

// New builds a server from cfg, parsing every program source.
func New(cfg Config) (*Server, error) {
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("server: no programs to serve")
	}
	if cfg.DefaultBudget == 0 {
		cfg.DefaultBudget = 50_000_000
	}
	if cfg.MaxBudget == 0 {
		cfg.MaxBudget = 1_000_000_000
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	pool := engine.New(cfg.PoolOptions...)
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 4 * pool.Size()
	}
	progs := make(map[string]*core.Program, len(cfg.Programs))
	for name, src := range cfg.Programs {
		p, err := core.Load(src)
		if err != nil {
			return nil, fmt.Errorf("server: program %q: %w", name, err)
		}
		progs[name] = p
	}
	return &Server{
		cfg:      cfg,
		pool:     pool,
		progs:    progs,
		images:   make(map[imageKey]*asm.Image),
		dynProgs: make(map[string]*dynProg),
		sessions: newTable(cfg.MaxSessions),
		janitor:  make(chan struct{}),
	}, nil
}

// Pool exposes the machine pool (stats, profiling aggregate).
func (s *Server) Pool() *engine.Pool { return s.pool }

// Handler returns the daemon's route table; it is also what Serve
// installs, so tests can drive the server through httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/next", s.handleNext)
	mux.HandleFunc("POST /v1/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/suspend", s.handleSuspend)
	mux.HandleFunc("POST /v1/resume", s.handleResume)
	mux.HandleFunc("POST /v1/assert", s.handleAssert)
	mux.HandleFunc("POST /v1/retract", s.handleRetract)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// Serve starts the eviction janitor and serves HTTP on l until Drain
// (or a listener error). It returns http.ErrServerClosed after a
// clean drain, mirroring net/http.
func (s *Server) Serve(l net.Listener) error {
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.wg.Add(1)
	go s.evictLoop()
	return s.httpSrv.Serve(l)
}

// Addr is the bound listener address (valid after Serve's listener is
// passed in; useful with ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// evictLoop reaps idle sessions until the janitor channel closes.
func (s *Server) evictLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-tick.C:
			for _, e := range s.sessions.evictIdle(s.cfg.IdleTimeout) {
				s.account(e.sess, false)
			}
		}
	}
}

// Drain shuts the daemon down gracefully: stop accepting new queries,
// wait for in-flight requests, then deal with every parked session so
// no accepted query is abandoned — serialized to the state directory
// when one is configured (the client resumes after restart with the
// session id as the handle), run to completion otherwise. Bounded by
// ctx; safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if s.cfg.StateDir != "" {
		s.parkAll()
	}
	for _, e := range s.sessions.drainAll(ctx) {
		s.account(e.sess, false)
	}
	close(s.janitor)
	s.wg.Wait()
	return err
}

// resolveProgram maps a request's program name (possibly empty, when
// the daemon serves exactly one program) to its loaded Program.
func (s *Server) resolveProgram(program string) (string, *core.Program, error) {
	if program == "" {
		if len(s.progs) == 1 {
			for name := range s.progs {
				program = name
			}
		} else {
			return "", nil, fmt.Errorf("several programs loaded; name one")
		}
	}
	prog, ok := s.progs[program]
	if !ok {
		return "", nil, fmt.Errorf("unknown program %q", program)
	}
	return program, prog, nil
}

// image returns the compile-once image for (program, goal), compiling
// it on first use. Compilation is serialized: the compiler mutates
// the program's symbol table.
func (s *Server) image(program, goal string) (*asm.Image, error) {
	program, prog, err := s.resolveProgram(program)
	if err != nil {
		return nil, err
	}
	key := imageKey{program: program, goal: goal}
	s.imgMu.Lock()
	defer s.imgMu.Unlock()
	if im, ok := s.images[key]; ok {
		return im, nil
	}
	im, err := prog.CompileQuery(goal)
	if err != nil {
		return nil, err
	}
	s.images[key] = im
	return im, nil
}

// clampBudget applies the request -> default -> max budget policy.
func (s *Server) clampBudget(req uint64) uint64 {
	b := req
	if b == 0 {
		b = s.cfg.DefaultBudget
	}
	if b > s.cfg.MaxBudget {
		b = s.cfg.MaxBudget
	}
	return b
}

// runCtx derives the execution context for one request slice.
func (s *Server) runCtx(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(ctx, d)
}

// account folds a finished session's counters into the daemon totals.
// delivered marks outcomes already counted per solution; the rest of
// the counters are cumulative per session, added exactly once when
// the session leaves the server.
func (s *Server) account(sess *engine.Session, errored bool) {
	res := sess.Result()
	s.totMu.Lock()
	defer s.totMu.Unlock()
	s.totals.Queries++
	s.totals.Solutions += uint64(sess.Delivered())
	if errored {
		s.totals.Errors++
	} else if sess.Delivered() == 0 {
		s.totals.Failures++
	}
	s.totals.Cycles += res.Stats.Cycles
	s.totals.Inferences += res.Stats.Inferences
	s.totals.GCCollections += res.GC.Collections
	s.totals.GCCycles += res.GC.Cycles
	s.totals.FusionDispatch += res.Fusion.Dispatches
	s.totals.FusedSteps += res.Fusion.FusedSteps
}

// counters renders a session-cumulative machine.Result on the wire.
func counters(res machine.Result) *wire.Counters {
	return &wire.Counters{
		Cycles:        res.Stats.Cycles,
		Instructions:  res.Stats.Instrs,
		Inferences:    res.Stats.Inferences,
		Millis:        res.Stats.Millis(),
		GCCollections: res.GC.Collections,
		GCCycles:      res.GC.Cycles,
		FusedSteps:    res.Fusion.FusedSteps,
	}
}

// bindings renders a solution's named variables.
func bindings(sol *core.Solution) map[string]string {
	if sol == nil || len(sol.Vars) == 0 {
		return nil
	}
	out := make(map[string]string, len(sol.Vars))
	for name, t := range sol.Bindings() {
		out[name] = t.String()
	}
	return out
}

// errorReply builds the terminal error body.
func errorReply(err error) wire.Reply {
	return wire.Reply{Status: wire.StatusError, Error: err.Error()}
}

// --- the four verbs ---

// handleQuery starts a query. It never touches a machine itself: the
// writer-free runQuery/streamQuery own the session, and this function
// only serializes their wire values onto the connection.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorReply(errTableClosed))
		return
	}
	if req.Stream {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		s.streamToWriter(ctx, cancel, w, req)
		return
	}
	rep, code := s.runQuery(r.Context(), req)
	writeJSON(w, code, rep)
}

// runQuery leases a session, runs the first slice, and either
// completes (releasing the machine) or parks the session for
// next/cancel. No network writes happen here.
func (s *Server) runQuery(ctx context.Context, req wire.QueryRequest) (wire.Reply, int) {
	runCtx, cancel := s.runCtx(ctx, req.TimeoutMS)
	defer cancel()
	sess, err := s.begin(runCtx, req)
	if err != nil {
		if errors.Is(err, machine.ErrCancelled) || errors.Is(err, machine.ErrDeadline) {
			// Admission control: every machine is leased and none
			// freed up before the deadline.
			return errorReply(err), http.StatusServiceUnavailable
		}
		s.totMu.Lock()
		s.totals.Queries++
		s.totals.Errors++
		s.totMu.Unlock()
		return errorReply(err), http.StatusBadRequest
	}
	ok := sess.Next(runCtx)
	return s.settle(sess, req, ok)
}

// settle turns a Next outcome into a wire reply, closing or parking
// the session. The request identifies the code environment (program,
// tenant, goal) recorded on the parked entry so /v1/suspend can
// serialize the session for a later daemon process.
func (s *Server) settle(sess *engine.Session, req wire.QueryRequest, ok bool) (wire.Reply, int) {
	keep := req.Enumerate
	switch {
	case ok:
		sol := sess.Solution()
		rep := wire.Reply{
			Status:    wire.StatusYes,
			Bindings:  bindings(sol),
			Solutions: sess.Delivered(),
			Stats:     counters(sol.Result),
		}
		if keep {
			e, err := s.sessions.add(req.Program, req.Tenant, req.Goal, sess)
			if err != nil {
				sess.Close()
				s.account(sess, false)
				rep.Error = err.Error() // delivered, but not resumable
				return rep, http.StatusOK
			}
			rep.Session = e.id
			return rep, http.StatusOK
		}
		sess.Close()
		s.account(sess, false)
		return rep, http.StatusOK
	case sess.Suspended() || resumableErr(sess):
		// Budget or request deadline ran out mid-search: park the
		// session; the client resumes with next or gives up with
		// cancel. This is the backpressure path.
		e, err := s.sessions.add(req.Program, req.Tenant, req.Goal, sess)
		if err != nil {
			sess.Close()
			s.account(sess, true)
			return errorReply(fmt.Errorf("suspended and cannot park: %w", err)),
				http.StatusServiceUnavailable
		}
		return wire.Reply{
			Status:    wire.StatusSuspended,
			Session:   e.id,
			Solutions: sess.Delivered(),
		}, http.StatusOK
	case sess.Err() != nil:
		err := sess.Err()
		sess.Close()
		s.account(sess, true)
		return errorReply(err), http.StatusUnprocessableEntity
	default:
		// Search exhausted: no (more) solutions.
		rep := wire.Reply{
			Status:    wire.StatusNo,
			Solutions: sess.Delivered(),
			Stats:     counters(sess.Result()),
		}
		sess.Close()
		s.account(sess, false)
		return rep, http.StatusOK
	}
}

// resumableErr reports a context-shaped session error (deadline or
// cancellation with the machine intact).
func resumableErr(sess *engine.Session) bool {
	err := sess.Err()
	return err != nil &&
		(errors.Is(err, machine.ErrDeadline) || errors.Is(err, machine.ErrCancelled))
}

// handleNext resumes a parked session by one slice.
func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	var req wire.NextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	rep, code := s.runNext(r.Context(), req)
	writeJSON(w, code, rep)
}

// runNext is the writer-free body of next-solution.
func (s *Server) runNext(ctx context.Context, req wire.NextRequest) (wire.Reply, int) {
	e, ok := s.sessions.get(req.Session)
	if !ok {
		if r, known := s.sessions.reasonFor(req.Session); known {
			return reasonReply(r, req.Session)
		}
		return errorReply(fmt.Errorf("unknown session %q", req.Session)), http.StatusNotFound
	}
	e.ops.Lock()
	defer e.ops.Unlock()
	if e.done {
		// Lost the race with cancel, eviction, suspend or drain; the
		// reason tells the client whether its own action closed the
		// session (409) or the server took it away (410).
		return doneReply(e, req.Session)
	}
	e.touch()
	if req.Budget > 0 {
		e.sess.SetBudget(s.clampBudget(req.Budget))
	}
	runCtx, cancel := s.runCtx(ctx, req.TimeoutMS)
	defer cancel()
	ok = e.sess.Next(runCtx)
	if ok || e.sess.Suspended() || resumableErr(e.sess) {
		e.touch()
		rep := wire.Reply{Session: e.id, Solutions: e.sess.Delivered()}
		if ok {
			sol := e.sess.Solution()
			rep.Status = wire.StatusYes
			rep.Bindings = bindings(sol)
			rep.Stats = counters(sol.Result)
		} else {
			rep.Status = wire.StatusSuspended
		}
		return rep, http.StatusOK
	}
	// Terminal: exhausted or faulted — unpark and release the machine.
	e.done = true
	s.sessions.retire(e)
	if err := e.sess.Err(); err != nil {
		e.sess.Close()
		s.account(e.sess, true)
		return errorReply(err), http.StatusUnprocessableEntity
	}
	rep := wire.Reply{
		Status:    wire.StatusNo,
		Solutions: e.sess.Delivered(),
		Stats:     counters(e.sess.Result()),
	}
	e.sess.Close()
	s.account(e.sess, false)
	return rep, http.StatusOK
}

// doneReply maps a closed entry's reason onto the typed HTTP reply
// for a request that lost the close race. Callers hold e.ops.
func doneReply(e *entry, id string) (wire.Reply, int) {
	return reasonReply(e.reason, id)
}

// reasonReply renders the typed reply for a session that left the
// table: 409 for the client's own cancel, 410 when the server took it
// away (evicted, drained, or parked to disk — the latter with the
// resume handle).
func reasonReply(reason doneReason, id string) (wire.Reply, int) {
	switch reason {
	case reasonCancelled:
		return errorReply(fmt.Errorf("session %q cancelled", id)), http.StatusConflict
	case reasonEvicted:
		return errorReply(fmt.Errorf("session %q evicted after idle timeout", id)), http.StatusGone
	case reasonDrained:
		return errorReply(fmt.Errorf("session %q completed by shutdown drain", id)), http.StatusGone
	case reasonParked:
		rep := errorReply(fmt.Errorf("session %q suspended to disk; resume with its handle", id))
		rep.Handle = id
		return rep, http.StatusGone
	default:
		return errorReply(fmt.Errorf("session %q closed", id)), http.StatusNotFound
	}
}

// handleCancel discards a parked session.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req wire.CancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	e, ok := s.sessions.get(req.Session)
	if !ok {
		if r, known := s.sessions.reasonFor(req.Session); known {
			rep, code := reasonReply(r, req.Session)
			writeJSON(w, code, rep)
			return
		}
		writeJSON(w, http.StatusNotFound,
			errorReply(fmt.Errorf("unknown session %q", req.Session)))
		return
	}
	e.ops.Lock()
	already := e.done
	if !e.done {
		e.done = true
		e.reason = reasonCancelled
		e.sess.Close()
	}
	e.ops.Unlock()
	s.sessions.retire(e)
	if !already {
		s.account(e.sess, false)
	}
	writeJSON(w, http.StatusOK, wire.Reply{
		Status:    wire.StatusCancelled,
		Session:   e.id,
		Solutions: e.sess.Delivered(),
	})
}

// handleStats is the /metrics-style snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	s.sessions.mu.Lock()
	ss := wire.SessionStats{
		Active:  len(s.sessions.entries),
		Created: s.sessions.created,
		Evicted: s.sessions.evicted,
		Drained: s.sessions.drained,
		Parked:  s.sessions.parked,
	}
	s.sessions.mu.Unlock()
	s.totMu.Lock()
	tot := s.totals
	s.totMu.Unlock()
	if agg := s.pool.Profile(); agg != nil {
		tot.ProfiledPredCnt = len(agg.Rows())
	}
	names := make([]string, 0, len(s.progs))
	for name := range s.progs {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, wire.StatsReply{
		Programs: names,
		Pool: wire.PoolStats{
			Size: ps.Size, Images: ps.Images, Built: ps.Built,
			Idle: ps.Idle, InUse: ps.InUse,
		},
		Sessions: ss,
		Totals:   tot,
		Tenants:  s.tenantCount(),
		Draining: s.draining.Load(),
	})
}

// --- streaming ---

// streamToWriter runs the enumeration in a separate goroutine and
// copies its wire values onto the connection as NDJSON, flushing per
// line. The enumerator owns the machine; this function owns the
// network. A write failure cancels ctx so the enumerator stops and
// the session is released.
func (s *Server) streamToWriter(ctx context.Context, cancel context.CancelFunc, w http.ResponseWriter, req wire.QueryRequest) {
	lines := make(chan wire.Reply, 16)
	go s.streamQuery(ctx, req, lines)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for rep := range lines {
		if err := enc.Encode(rep); err != nil {
			cancel() // client went away; unblock the enumerator
			for range lines {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamQuery enumerates every solution (up to req.Limit) into the
// lines channel and closes it. It holds the session for the whole
// request but never sees the connection.
func (s *Server) streamQuery(ctx context.Context, req wire.QueryRequest, lines chan<- wire.Reply) {
	defer close(lines)
	runCtx, cancel := s.runCtx(ctx, req.TimeoutMS)
	defer cancel()
	sess, err := s.begin(runCtx, req)
	if err != nil {
		if !errors.Is(err, machine.ErrCancelled) && !errors.Is(err, machine.ErrDeadline) {
			s.totMu.Lock()
			s.totals.Queries++
			s.totals.Errors++
			s.totMu.Unlock()
		}
		s.send(ctx, lines, errorReply(err))
		return
	}
	defer func() {
		errored := sess.Err() != nil && !resumableErr(sess)
		sess.Close()
		s.account(sess, errored)
	}()
	for {
		if sess.Next(runCtx) {
			sol := sess.Solution()
			ok := s.send(ctx, lines, wire.Reply{
				Status:    wire.StatusYes,
				Bindings:  bindings(sol),
				Solutions: sess.Delivered(),
			})
			if !ok {
				return
			}
			if req.Limit > 0 && sess.Delivered() >= req.Limit {
				break
			}
			continue
		}
		if sess.Suspended() {
			// Budget slices keep the loop interruptible; streaming
			// rides straight into the next slice.
			continue
		}
		if err := sess.Err(); err != nil {
			s.send(ctx, lines, errorReply(err))
			return
		}
		break // exhausted
	}
	s.send(ctx, lines, wire.Reply{
		Status:    wire.StatusDone,
		Solutions: sess.Delivered(),
		Stats:     counters(sess.Result()),
	})
}

// send delivers one line unless the writer has gone away.
func (s *Server) send(ctx context.Context, lines chan<- wire.Reply, rep wire.Reply) bool {
	select {
	case lines <- rep:
		return true
	case <-ctx.Done():
		return false
	}
}

// writeJSON writes one JSON body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The client went away mid-body; nothing to do.
		_ = err
	}
}
