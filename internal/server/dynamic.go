package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dyndb"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/wire"
)

// Multi-tenant dynamic databases. Each program lazily compiles one
// shared base image (static predicates compiled, dynamic predicates
// as stubs) and one seed database holding the source's initial
// dynamic clauses; every tenant name clones the seed into a private
// copy-on-write delta. Thousands of tenants therefore share one boot
// image and one machine complement — only the clauses a tenant
// asserts are its own.

// dynProg is one program's dynamic serving state.
type dynProg struct {
	seed    *dyndb.DB
	tenants map[string]*dyndb.DB
}

// dynFor returns (building on first use) the program's dynamic state.
// Building compiles the base image, which mutates the program's
// symbol table — serialized with the static image compiles via imgMu.
func (s *Server) dynFor(program string) (*dynProg, error) {
	program, prog, err := s.resolveProgram(program)
	if err != nil {
		return nil, err
	}
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	if dp, ok := s.dynProgs[program]; ok {
		return dp, nil
	}
	s.imgMu.Lock()
	im, ds, err := prog.BaseImage()
	s.imgMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("program %q: %w", program, err)
	}
	seed, err := dyndb.New(im, ds.Order)
	if err != nil {
		return nil, fmt.Errorf("program %q: %w", program, err)
	}
	for _, pi := range ds.Order {
		if cls := ds.Clauses[pi]; len(cls) > 0 {
			if _, err := seed.Reload(pi, cls); err != nil {
				return nil, fmt.Errorf("program %q: seeding %v: %w", program, pi, err)
			}
		}
	}
	dp := &dynProg{seed: seed, tenants: map[string]*dyndb.DB{}}
	s.dynProgs[program] = dp
	return dp, nil
}

// tenantDB returns the tenant's database, cloning the program seed on
// first sight of the tenant name.
func (s *Server) tenantDB(program, tenant string) (*dyndb.DB, error) {
	dp, err := s.dynFor(program)
	if err != nil {
		return nil, err
	}
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	db, ok := dp.tenants[tenant]
	if !ok {
		db = dp.seed.Clone()
		dp.tenants[tenant] = db
	}
	return db, nil
}

// tenantCount is the live database count across programs, for stats.
func (s *Server) tenantCount() int {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	n := 0
	for _, dp := range s.dynProgs {
		n += len(dp.tenants)
	}
	return n
}

// begin leases a session for one query request: the compile-once
// image pool for static requests, the tenant's dynamic database for
// requests naming a tenant.
func (s *Server) begin(ctx context.Context, req wire.QueryRequest) (*engine.Session, error) {
	budget := engine.WithBudget(s.clampBudget(req.Budget))
	if req.Tenant == "" {
		im, err := s.image(req.Program, req.Goal)
		if err != nil {
			return nil, err
		}
		return s.pool.Begin(ctx, im, budget)
	}
	db, err := s.tenantDB(req.Program, req.Tenant)
	if err != nil {
		return nil, err
	}
	goal, err := parseGoal(req.Goal)
	if err != nil {
		return nil, err
	}
	return s.pool.BeginDyn(ctx, db, goal, budget)
}

// parseGoal reads one goal term, tolerating a missing terminator.
func parseGoal(text string) (term.Term, error) {
	if !strings.HasSuffix(strings.TrimSpace(text), ".") {
		text += " ."
	}
	goal, err := reader.ParseTerm(text)
	if err != nil {
		return nil, fmt.Errorf("goal: %w", err)
	}
	return goal, nil
}

// parseClause reads one clause term for assert/retract.
func parseClause(text string) (term.Term, error) {
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("empty clause")
	}
	if !strings.HasSuffix(strings.TrimSpace(text), ".") {
		text += " ."
	}
	cl, err := reader.ParseTerm(text)
	if err != nil {
		return nil, fmt.Errorf("clause: %w", err)
	}
	return cl, nil
}

// mutationStatus maps a clause-store rejection onto an HTTP code:
// client mistakes (static target, malformed clause, bad code) are
// unprocessable, everything else is internal.
func mutationStatus(err error) int {
	var ce *machine.CodeError
	if errors.Is(err, dyndb.ErrStaticPred) || errors.Is(err, dyndb.ErrBadClause) || errors.As(err, &ce) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// handleAssert adds a clause to a tenant database. The machines are
// untouched here: pooled machines pick the new version up on their
// next lease.
func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req wire.AssertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorReply(errTableClosed))
		return
	}
	if req.Tenant == "" {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("assert needs a tenant")))
		return
	}
	cl, err := parseClause(req.Clause)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(err))
		return
	}
	db, err := s.tenantDB(req.Program, req.Tenant)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(err))
		return
	}
	var version uint64
	if req.Front {
		version, err = db.Asserta(cl)
	} else {
		version, err = db.Assertz(cl)
	}
	if err != nil {
		writeJSON(w, mutationStatus(err), errorReply(err))
		return
	}
	writeJSON(w, http.StatusOK, wire.Reply{Status: wire.StatusYes, Version: version})
}

// handleRetract removes the first variant-equal clause from a tenant
// database; Status "no" reports that nothing matched.
func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	var req wire.RetractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("bad request: %w", err)))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorReply(errTableClosed))
		return
	}
	if req.Tenant == "" {
		writeJSON(w, http.StatusBadRequest, errorReply(fmt.Errorf("retract needs a tenant")))
		return
	}
	cl, err := parseClause(req.Clause)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(err))
		return
	}
	db, err := s.tenantDB(req.Program, req.Tenant)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply(err))
		return
	}
	ok, version, err := db.Retract(cl)
	if err != nil {
		writeJSON(w, mutationStatus(err), errorReply(err))
		return
	}
	status := wire.StatusNo
	if ok {
		status = wire.StatusYes
	}
	writeJSON(w, http.StatusOK, wire.Reply{Status: status, Version: version})
}
