package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/wire"
)

// The session-table lifecycle under contention: concurrent clients
// driving next-solution while others cancel, the idle janitor firing
// mid-enumeration, and a drain that completes suspended sessions.
// All of it runs through real TCP and the real client, under -race.

const testSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`

// longGoal suspends under a 100-step budget and has three solutions.
const longGoal = "nrev([1,2,3,4,5,6,7,8,9,10], R), member(X, [1,2,3])."

// startServer runs a daemon on an ephemeral loopback port and returns
// it with a client. The caller must drain (or the cleanup does).
func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.Programs == nil {
		cfg.Programs = map[string]string{"lists": testSrc}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		if !srv.draining.Load() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("serve exit: %v", err)
		}
	})
	return srv, client.New("http://" + l.Addr().String())
}

// TestConcurrentNextAndCancel races enumeration against cancellation:
// half the clients drive sessions with next-solution to exhaustion
// while the other half park budget-suspended queries and cancel them,
// all against a pool smaller than the client count so the blocking
// acquire is exercised too.
func TestConcurrentNextAndCancel(t *testing.T) {
	srv, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const clients = 8
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				// Enumerator: session-driven, to exhaustion.
				rep, err := c.Query(ctx, wire.QueryRequest{
					Goal: "member(X, [a,b,c,d,e]).", Enumerate: true})
				sols := 0
				for {
					if err != nil {
						errs <- err
						return
					}
					switch rep.Status {
					case wire.StatusYes:
						sols++
					case wire.StatusSuspended:
					case wire.StatusNo:
						if sols != 5 {
							errs <- fmt.Errorf("enumerator %d: %d solutions", i, sols)
						}
						return
					default:
						errs <- fmt.Errorf("enumerator %d: %+v", i, rep)
						return
					}
					rep, err = c.Next(ctx, rep.Session, 0)
				}
			}
			// Canceller: suspend under a tiny budget, then discard.
			rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
			if err != nil {
				errs <- err
				return
			}
			if rep.Status != wire.StatusSuspended || rep.Session == "" {
				errs <- fmt.Errorf("canceller %d: %+v", i, rep)
				return
			}
			if rep, err = c.Cancel(ctx, rep.Session); err != nil || rep.Status != wire.StatusCancelled {
				errs <- fmt.Errorf("canceller %d: cancel %+v %v", i, rep, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.sessions.active(); n != 0 {
		t.Errorf("%d sessions still parked", n)
	}
}

// TestNextCancelSameSession races next and cancel on one session id:
// whatever interleaving wins, exactly one outcome class is legal per
// request and no machine is touched after its release.
func TestNextCancelSameSession(t *testing.T) {
	_, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for round := 0; round < 8; round++ {
		rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
		if err != nil || rep.Status != wire.StatusSuspended {
			t.Fatalf("round %d: %+v %v", round, rep, err)
		}
		id := rep.Session
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%2 == 0 {
					// error status (unknown/closed session) is fine; a
					// transport error is not.
					if _, err := c.Next(ctx, id, 0); err != nil {
						t.Errorf("next: %v", err)
					}
					return
				}
				if _, err := c.Cancel(ctx, id); err != nil {
					t.Errorf("cancel: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
}

// TestIdleEviction parks two sessions; one is abandoned and must be
// reaped by the janitor, the other is kept alive by next-solution
// touches through several eviction ticks and must survive to finish
// its enumeration.
func TestIdleEviction(t *testing.T) {
	srv, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
		IdleTimeout: 100 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The victim: parked and abandoned.
	victim, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
	if err != nil || victim.Status != wire.StatusSuspended {
		t.Fatalf("victim: %+v %v", victim, err)
	}

	// The survivor: an enumeration driven slower than the eviction
	// tick but faster than the idle timeout.
	rep, err := c.Query(ctx, wire.QueryRequest{
		Goal: "member(X, [a,b,c,d,e,f]).", Enumerate: true})
	if err != nil {
		t.Fatal(err)
	}
	sols := 0
	for rep.Status == wire.StatusYes {
		sols++
		time.Sleep(60 * time.Millisecond) // > tick (25ms), < idle timeout
		if rep, err = c.Next(ctx, rep.Session, 0); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Status != wire.StatusNo || sols != 6 {
		t.Fatalf("survivor: %d solutions, final %+v", sols, rep)
	}

	// By now the victim has idled well past the timeout.
	deadline := time.Now().Add(5 * time.Second)
	for srv.sessions.active() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.sessions.active(); n != 0 {
		t.Fatalf("%d sessions still parked after idle timeout", n)
	}
	if rep, err = c.Next(ctx, victim.Session, 0); err != nil || rep.Status != wire.StatusError {
		t.Fatalf("next on evicted session: %+v %v", rep, err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions.Evicted == 0 {
		t.Fatalf("stats: %+v", st.Sessions)
	}
}

// TestDrainCompletesSuspended parks suspended sessions, then drains:
// every parked search must be run to exhaustion, counted as drained,
// and every machine returned to the pool.
func TestDrainCompletesSuspended(t *testing.T) {
	srv, c := startServer(t, Config{
		PoolOptions: []engine.PoolOption{engine.WithPoolSize(2)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for i := 0; i < 2; i++ {
		rep, err := c.Query(ctx, wire.QueryRequest{Goal: longGoal, Budget: 100})
		if err != nil || rep.Status != wire.StatusSuspended {
			t.Fatalf("park %d: %+v %v", i, rep, err)
		}
	}
	if n := srv.sessions.active(); n != 2 {
		t.Fatalf("parked %d sessions, want 2", n)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.sessions.mu.Lock()
	drained := srv.sessions.drained
	srv.sessions.mu.Unlock()
	if drained != 2 {
		t.Errorf("drained %d sessions, want 2", drained)
	}
	if ps := srv.pool.Stats(); ps.InUse != 0 {
		t.Errorf("machines leaked across drain: %+v", ps)
	}
	// New queries are refused while (and after) draining.
	rep, err := c.Query(ctx, wire.QueryRequest{Goal: "member(X, [1])."})
	if err == nil && rep.Status == wire.StatusYes {
		t.Errorf("query accepted after drain: %+v", rep)
	}
}
