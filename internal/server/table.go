package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// The session table is where the daemon parks budget-suspended and
// mid-enumeration queries between requests. Each entry owns one
// engine.Session — and with it one pooled machine — so the table's
// size bounds how many machines the network side can hold away from
// the pool: that, plus the pool's blocking acquire, is the server's
// backpressure. Idle entries are reaped by a janitor so an abandoned
// client cannot strand a machine forever, and Drain completes every
// parked enumeration before shutdown.

// errTableClosed rejects parking attempts once a drain has begun.
var errTableClosed = errors.New("server: draining, not accepting new sessions")

// errTableFull rejects parking attempts beyond the configured cap.
var errTableFull = errors.New("server: session table full")

// Why a session left the table. A handler that loses the race against
// the janitor, a cancel, a drain or a suspend finds done set and maps
// the reason onto a typed HTTP status, so the client can tell "you
// cancelled this" (409, don't retry) from "the server took it away"
// (410, re-issue the query or resume the parked handle).
type doneReason int

const (
	reasonNone      doneReason = iota
	reasonCancelled            // client cancel
	reasonEvicted              // idle janitor
	reasonDrained              // shutdown drain ran it to completion
	reasonParked               // serialized to the state directory
)

// entry is one parked session. ops serializes the session (Next,
// Close) across request handlers, the janitor and the drain; done
// marks the session closed so a lock loser does not touch a released
// machine, and reason (guarded by ops) says why.
type entry struct {
	id       string
	program  string
	tenant   string
	goal     string
	ops      sync.Mutex
	sess     *engine.Session
	done     bool
	reason   doneReason
	lastUsed atomic.Int64 // unix nanos of the last request touch
}

// touch timestamps the entry against idle eviction.
func (e *entry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// table is the id -> entry map plus its lifecycle counters. The map
// lock is never held while an entry's ops lock is taken.
type table struct {
	mu      sync.Mutex
	entries map[string]*entry
	// tombs remembers why recently-retired sessions left the table,
	// so a request racing (or trailing) an evict, cancel, drain or
	// suspend gets the typed 409/410 answer instead of a bare 404.
	tombs  map[string]doneReason
	closed bool
	max    int

	created uint64
	evicted uint64
	drained uint64
	parked  uint64
}

func newTable(max int) *table {
	return &table{
		entries: make(map[string]*entry),
		tombs:   make(map[string]doneReason),
		max:     max,
	}
}

// add parks a session and returns its new entry. program and tenant
// identify the code environment so the session can be serialized to
// disk and rebuilt by a later daemon process.
func (t *table) add(program, tenant, goal string, sess *engine.Session) (*entry, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	e := &entry{id: id, program: program, tenant: tenant, goal: goal, sess: sess}
	e.touch()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errTableClosed
	}
	if t.max > 0 && len(t.entries) >= t.max {
		return nil, errTableFull
	}
	t.entries[id] = e
	t.created++
	return e, nil
}

// get looks an entry up and timestamps it in the same critical
// section (touch-then-evict atomicity: a request that found the entry
// has already refreshed it before the janitor's cutoff re-check under
// e.ops can run, so an actively-used session is never evicted between
// lookup and lock). The caller takes e.ops and must re-check e.done —
// a strictly concurrent evict or cancel may still win the lock, and
// e.reason then says which, for the typed 409/410 reply.
func (t *table) get(id string) (*entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if ok {
		e.touch()
	}
	return e, ok
}

// retire drops the entry from the map (the caller has closed or
// suspended the session and set e.reason under e.ops), leaving a
// typed tombstone when there is a reason worth reporting. Tombstones
// are capped; a full set is dropped wholesale — after 4096 retires a
// stale client degrades from a typed 409/410 to a plain 404, which is
// still correct, just less helpful.
func (t *table) retire(e *entry) {
	t.mu.Lock()
	delete(t.entries, e.id)
	if e.reason != reasonNone {
		if len(t.tombs) >= 4096 {
			clear(t.tombs)
		}
		t.tombs[e.id] = e.reason
	}
	t.mu.Unlock()
}

// reasonFor reports why a session id no longer resolves, if known.
func (t *table) reasonFor(id string) (doneReason, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.tombs[id]
	return r, ok
}

// active is the number of parked sessions.
func (t *table) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// snapshot returns the current entries, for eviction and drain scans.
func (t *table) snapshot() []*entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}

// evictIdle closes every session idle for longer than maxIdle and
// returns the closed entries (the server accounts their counters).
// An entry busy in a request simply waits its turn: the ops lock is
// taken, and lastUsed is re-checked after it is held, so a session a
// client just touched survives.
func (t *table) evictIdle(maxIdle time.Duration) []*entry {
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	var closed []*entry
	for _, e := range t.snapshot() {
		if e.lastUsed.Load() > cutoff {
			continue
		}
		e.ops.Lock()
		if !e.done && e.lastUsed.Load() <= cutoff {
			e.done = true
			e.reason = reasonEvicted
			e.sess.Close()
			t.retire(e)
			closed = append(closed, e)
		}
		e.ops.Unlock()
	}
	t.mu.Lock()
	t.evicted += uint64(len(closed))
	t.mu.Unlock()
	return closed
}

// drainAll stops accepting new sessions, then completes every parked
// enumeration: each suspended session is resumed and run until its
// search exhausts (or ctx expires), so no query the server accepted
// is left half-done. It returns the closed entries.
func (t *table) drainAll(ctx context.Context) []*entry {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()

	var closed []*entry
	for _, e := range t.snapshot() {
		e.ops.Lock()
		if e.done {
			e.ops.Unlock()
			continue
		}
		finished := true
		for e.sess.Next(ctx) || e.sess.Suspended() {
			if ctx.Err() != nil {
				finished = false
				break
			}
		}
		if e.sess.Err() != nil {
			finished = false
		}
		e.done = true
		e.reason = reasonDrained
		e.sess.Close()
		e.ops.Unlock()
		t.retire(e)
		closed = append(closed, e)
		if finished {
			t.mu.Lock()
			t.drained++
			t.mu.Unlock()
		}
	}
	return closed
}

// newSessionID mints an unguessable 16-hex-digit session id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
