package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// The session table is where the daemon parks budget-suspended and
// mid-enumeration queries between requests. Each entry owns one
// engine.Session — and with it one pooled machine — so the table's
// size bounds how many machines the network side can hold away from
// the pool: that, plus the pool's blocking acquire, is the server's
// backpressure. Idle entries are reaped by a janitor so an abandoned
// client cannot strand a machine forever, and Drain completes every
// parked enumeration before shutdown.

// errTableClosed rejects parking attempts once a drain has begun.
var errTableClosed = errors.New("server: draining, not accepting new sessions")

// errTableFull rejects parking attempts beyond the configured cap.
var errTableFull = errors.New("server: session table full")

// entry is one parked session. ops serializes the session (Next,
// Close) across request handlers, the janitor and the drain; done
// marks the session closed so a lock loser does not touch a released
// machine.
type entry struct {
	id       string
	goal     string
	ops      sync.Mutex
	sess     *engine.Session
	done     bool
	lastUsed atomic.Int64 // unix nanos of the last request touch
}

// touch timestamps the entry against idle eviction.
func (e *entry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// table is the id -> entry map plus its lifecycle counters. The map
// lock is never held while an entry's ops lock is taken.
type table struct {
	mu      sync.Mutex
	entries map[string]*entry
	closed  bool
	max     int

	created uint64
	evicted uint64
	drained uint64
}

func newTable(max int) *table {
	return &table{entries: make(map[string]*entry), max: max}
}

// add parks a session and returns its new entry.
func (t *table) add(goal string, sess *engine.Session) (*entry, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	e := &entry{id: id, goal: goal, sess: sess}
	e.touch()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errTableClosed
	}
	if t.max > 0 && len(t.entries) >= t.max {
		return nil, errTableFull
	}
	t.entries[id] = e
	t.created++
	return e, nil
}

// get looks an entry up without locking it; the caller takes e.ops
// and must re-check e.done afterwards.
func (t *table) get(id string) (*entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	return e, ok
}

// remove drops the id from the map (the caller closes the session).
func (t *table) remove(id string) {
	t.mu.Lock()
	delete(t.entries, id)
	t.mu.Unlock()
}

// active is the number of parked sessions.
func (t *table) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// snapshot returns the current entries, for eviction and drain scans.
func (t *table) snapshot() []*entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}

// evictIdle closes every session idle for longer than maxIdle and
// returns the closed entries (the server accounts their counters).
// An entry busy in a request simply waits its turn: the ops lock is
// taken, and lastUsed is re-checked after it is held, so a session a
// client just touched survives.
func (t *table) evictIdle(maxIdle time.Duration) []*entry {
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	var closed []*entry
	for _, e := range t.snapshot() {
		if e.lastUsed.Load() > cutoff {
			continue
		}
		e.ops.Lock()
		if !e.done && e.lastUsed.Load() <= cutoff {
			e.done = true
			e.sess.Close()
			t.remove(e.id)
			closed = append(closed, e)
		}
		e.ops.Unlock()
	}
	t.mu.Lock()
	t.evicted += uint64(len(closed))
	t.mu.Unlock()
	return closed
}

// drainAll stops accepting new sessions, then completes every parked
// enumeration: each suspended session is resumed and run until its
// search exhausts (or ctx expires), so no query the server accepted
// is left half-done. It returns the closed entries.
func (t *table) drainAll(ctx context.Context) []*entry {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()

	var closed []*entry
	for _, e := range t.snapshot() {
		e.ops.Lock()
		if e.done {
			e.ops.Unlock()
			continue
		}
		finished := true
		for e.sess.Next(ctx) || e.sess.Suspended() {
			if ctx.Err() != nil {
				finished = false
				break
			}
		}
		if e.sess.Err() != nil {
			finished = false
		}
		e.done = true
		e.sess.Close()
		e.ops.Unlock()
		t.remove(e.id)
		closed = append(closed, e)
		if finished {
			t.mu.Lock()
			t.drained++
			t.mu.Unlock()
		}
	}
	return closed
}

// newSessionID mints an unguessable 16-hex-digit session id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
