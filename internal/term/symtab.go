package term

import (
	"fmt"
	"sort"
	"sync"
)

// SymTab interns atoms to dense 24-bit indices, as required by the
// KCM functor word (atom index in the upper 24 value bits). One table
// is shared by the compiler, the loader and the machine so that atom
// words compare by value.
type SymTab struct {
	mu    sync.RWMutex
	byIdx []Atom
	byStr map[Atom]uint32
}

// NewSymTab creates a symbol table pre-loaded with the system atoms
// the run-time and the instruction encoding depend on. Index 0 is
// always "[]" so a zero atom word is the empty list name.
func NewSymTab() *SymTab {
	st := &SymTab{byStr: make(map[Atom]uint32, 64)}
	for _, a := range []Atom{"[]", ".", "true", "fail", "!", ",", ";", "->",
		"=", "is", "<", ">", "=<", ">=", "=:=", "=\\=", "+", "-", "*", "/",
		"//", "mod", "call", "write", "nl", "var", "nonvar", "atom",
		"atomic", "integer", "==", "\\==", "\\+", "end_of_file"} {
		st.Intern(a)
	}
	return st
}

// Intern returns the index for a, creating it if needed.
func (st *SymTab) Intern(a Atom) uint32 {
	st.mu.RLock()
	idx, ok := st.byStr[a]
	st.mu.RUnlock()
	if ok {
		return idx
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if idx, ok := st.byStr[a]; ok {
		return idx
	}
	idx = uint32(len(st.byIdx))
	if idx >= 1<<24 {
		panic("symtab: atom table overflow (24-bit index space)")
	}
	st.byIdx = append(st.byIdx, a)
	st.byStr[a] = idx
	return idx
}

// Lookup returns the index of a without interning.
func (st *SymTab) Lookup(a Atom) (uint32, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	idx, ok := st.byStr[a]
	return idx, ok
}

// Name returns the atom with the given index.
func (st *SymTab) Name(idx uint32) Atom {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(idx) >= len(st.byIdx) {
		return Atom(fmt.Sprintf("<atom#%d>", idx))
	}
	return st.byIdx[idx]
}

// Len returns the number of interned atoms.
func (st *SymTab) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.byIdx)
}

// Atoms returns the interned atoms sorted by name (for diagnostics).
func (st *SymTab) Atoms() []Atom {
	st.mu.RLock()
	out := make([]Atom, len(st.byIdx))
	copy(out, st.byIdx)
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
