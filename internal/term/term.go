// Package term defines the source-level representation of Prolog
// terms produced by the reader and consumed by the compiler, together
// with the interned symbol table shared by every subsystem.
//
// These terms are a compiler-side notion: at run time the machine
// works exclusively on tagged 64-bit words (package word).
package term

import (
	"fmt"
	"strings"
)

// Term is a Prolog term: Atom, Int, Float, Var or *Compound.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Atom is an atomic constant such as foo, [], '+'.
type Atom string

// Int is an integer constant. KCM integers are 32-bit; the reader
// rejects literals outside that range.
type Int int32

// Float is a floating-point constant. KCM floats are 32-bit IEEE;
// the value is kept as float64 in the AST and narrowed on loading.
type Float float64

// Var is a named logic variable. Variables with the same name inside
// one clause denote the same variable; "_" is always fresh.
type Var string

// Compound is a compound term Functor(Args...). Lists are compound
// terms with functor "." and arity 2, terminated by the atom "[]".
type Compound struct {
	Functor Atom
	Args    []Term
}

func (Atom) isTerm()      {}
func (Int) isTerm()       {}
func (Float) isTerm()     {}
func (Var) isTerm()       {}
func (*Compound) isTerm() {}

// NilAtom is the empty-list atom.
const NilAtom Atom = "[]"

// DotAtom is the list-cell functor.
const DotAtom Atom = "."

// New builds a compound term (or returns the bare atom for arity 0).
func New(f Atom, args ...Term) Term {
	if len(args) == 0 {
		return f
	}
	return &Compound{Functor: f, Args: args}
}

// Cons builds a list cell [Head|Tail].
func Cons(head, tail Term) Term {
	return &Compound{Functor: DotAtom, Args: []Term{head, tail}}
}

// List builds a proper list from elements.
func List(elems ...Term) Term {
	var t Term = NilAtom
	for i := len(elems) - 1; i >= 0; i-- {
		t = Cons(elems[i], t)
	}
	return t
}

// ListTail builds a partial list ending in tail.
func ListTail(tail Term, elems ...Term) Term {
	t := tail
	for i := len(elems) - 1; i >= 0; i-- {
		t = Cons(elems[i], t)
	}
	return t
}

// IsCons reports whether t is a list cell and returns its head and tail.
func IsCons(t Term) (head, tail Term, ok bool) {
	c, isC := t.(*Compound)
	if !isC || c.Functor != DotAtom || len(c.Args) != 2 {
		return nil, nil, false
	}
	return c.Args[0], c.Args[1], true
}

// Indicator identifies a predicate or functor: name/arity.
type Indicator struct {
	Name  Atom
	Arity int
}

func (pi Indicator) String() string { return fmt.Sprintf("%s/%d", string(pi.Name), pi.Arity) }

// Ind is shorthand for building an Indicator.
func Ind(name Atom, arity int) Indicator { return Indicator{Name: name, Arity: arity} }

func (a Atom) String() string {
	if needsQuote(string(a)) {
		return "'" + strings.ReplaceAll(string(a), "'", "\\'") + "'"
	}
	return string(a)
}

// Display renders a term the way write/1 does: operators infix, lists
// bracketed, atoms never quoted. String (used by writeq-style output
// and diagnostics) quotes atoms that need it.
func Display(t Term) string {
	switch x := t.(type) {
	case Atom:
		return string(x)
	case *Compound:
		return x.display()
	default:
		return t.String()
	}
}

func (i Int) String() string   { return fmt.Sprintf("%d", int32(i)) }
func (f Float) String() string { return fmt.Sprintf("%g", float64(f)) }
func (v Var) String() string   { return string(v) }

// printOp describes an operator for output purposes, mirroring the
// reader's table so write/1 round-trips with read.
type printOp struct {
	prec        int
	rightAssoc  bool // xfy
	leftAssoc   bool // yfx
	needsSpaces bool // alphabetic operators
}

var printOps = map[Atom]printOp{
	":-": {prec: 1200}, "-->": {prec: 1200},
	";":  {prec: 1100, rightAssoc: true},
	"->": {prec: 1050, rightAssoc: true},
	",":  {prec: 1000, rightAssoc: true},
	"=":  {prec: 700}, "\\=": {prec: 700}, "==": {prec: 700}, "\\==": {prec: 700},
	"is": {prec: 700, needsSpaces: true},
	"<":  {prec: 700}, ">": {prec: 700}, "=<": {prec: 700}, ">=": {prec: 700},
	"=:=": {prec: 700}, "=\\=": {prec: 700}, "=..": {prec: 700},
	"@<": {prec: 700}, "@>": {prec: 700}, "@=<": {prec: 700}, "@>=": {prec: 700},
	"+": {prec: 500, leftAssoc: true}, "-": {prec: 500, leftAssoc: true},
	"/\\": {prec: 500, leftAssoc: true}, "\\/": {prec: 500, leftAssoc: true},
	"xor": {prec: 500, leftAssoc: true, needsSpaces: true},
	"*":   {prec: 400, leftAssoc: true}, "/": {prec: 400, leftAssoc: true},
	"//":  {prec: 400, leftAssoc: true},
	"mod": {prec: 400, leftAssoc: true, needsSpaces: true},
	"rem": {prec: 400, leftAssoc: true, needsSpaces: true},
	"<<":  {prec: 400, leftAssoc: true}, ">>": {prec: 400, leftAssoc: true},
	"**": {prec: 200}, "^": {prec: 200, rightAssoc: true},
}

// termPrec returns the principal operator precedence of a term for
// parenthesisation (0 for non-operator terms).
func termPrec(t Term) int {
	c, ok := t.(*Compound)
	if !ok || len(c.Args) != 2 {
		if c != nil && len(c.Args) == 1 && (c.Functor == "-" || c.Functor == "\\+") {
			return 200
		}
		return 0
	}
	if op, ok := printOps[c.Functor]; ok {
		return op.prec
	}
	return 0
}

func writeArgWith(b *strings.Builder, t Term, maxPrec int, show func(Term) string) {
	if termPrec(t) > maxPrec {
		b.WriteByte('(')
		b.WriteString(show(t))
		b.WriteByte(')')
		return
	}
	b.WriteString(show(t))
}

// String renders with atom quoting (writeq style).
func (c *Compound) String() string {
	return c.render(func(t Term) string { return t.String() }, true)
}

// display renders without atom quoting (write style).
func (c *Compound) display() string { return c.render(Display, false) }

func (c *Compound) render(show func(Term) string, quoted bool) string {
	// Binary operators print infix.
	if op, ok := printOps[c.Functor]; ok && len(c.Args) == 2 {
		var b strings.Builder
		lmax, rmax := op.prec-1, op.prec-1
		if op.leftAssoc {
			lmax = op.prec
		}
		if op.rightAssoc {
			rmax = op.prec
		}
		writeArgWith(&b, c.Args[0], lmax, show)
		if op.needsSpaces {
			b.WriteByte(' ')
			b.WriteString(string(c.Functor))
			b.WriteByte(' ')
		} else {
			b.WriteString(string(c.Functor))
		}
		writeArgWith(&b, c.Args[1], rmax, show)
		return b.String()
	}
	// Unary minus and negation print prefix.
	if len(c.Args) == 1 && (c.Functor == "-" || c.Functor == "\\+") {
		var b strings.Builder
		b.WriteString(string(c.Functor))
		if c.Functor == "\\+" {
			b.WriteByte(' ')
		}
		writeArgWith(&b, c.Args[0], 200, show)
		return b.String()
	}
	// Lists print in bracket notation.
	if c.Functor == DotAtom && len(c.Args) == 2 {
		var b strings.Builder
		b.WriteByte('[')
		b.WriteString(show(c.Args[0]))
		t := c.Args[1]
		for {
			if h2, t2, ok := IsCons(t); ok {
				b.WriteByte(',')
				b.WriteString(show(h2))
				t = t2
				continue
			}
			break
		}
		if t != Term(NilAtom) {
			if a, ok := t.(Atom); !ok || a != NilAtom {
				b.WriteByte('|')
				b.WriteString(show(t))
			}
		}
		b.WriteByte(']')
		return b.String()
	}
	var b strings.Builder
	if quoted {
		b.WriteString(c.Functor.String())
	} else {
		b.WriteString(string(c.Functor))
	}
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(show(a))
	}
	b.WriteByte(')')
	return b.String()
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	switch s {
	case "[]", "{}", "!", ";", ",", ".", "|":
		return false
	}
	c := s[0]
	if c >= 'a' && c <= 'z' {
		for i := 1; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				return true
			}
		}
		return false
	}
	// Symbolic atoms made purely of symbol chars need no quotes.
	if strings.IndexFunc(s, func(r rune) bool { return !strings.ContainsRune(`+-*/\^<>=~:.?@#&$`, r) }) == -1 {
		return false
	}
	return true
}

// Indicator returns the functor/arity pair of a callable term, or
// ok=false for non-callable terms (integers, variables...).
func TermIndicator(t Term) (Indicator, bool) {
	switch x := t.(type) {
	case Atom:
		return Indicator{Name: x, Arity: 0}, true
	case *Compound:
		return Indicator{Name: x.Functor, Arity: len(x.Args)}, true
	}
	return Indicator{}, false
}

// Rename returns a copy of t with every variable prefixed, used when
// tests need fresh variants of a clause.
func Rename(t Term, prefix string) Term {
	switch x := t.(type) {
	case Var:
		return Var(prefix + string(x))
	case *Compound:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = Rename(a, prefix)
		}
		return &Compound{Functor: x.Functor, Args: args}
	default:
		return t
	}
}

// Vars appends the distinct variables of t, in first-occurrence
// order, to dst and returns it.
func Vars(t Term, dst []Var) []Var {
	switch x := t.(type) {
	case Var:
		for _, v := range dst {
			if v == x {
				return dst
			}
		}
		return append(dst, x)
	case *Compound:
		for _, a := range x.Args {
			dst = Vars(a, dst)
		}
	}
	return dst
}

// Variant reports whether a and b are equal up to a consistent
// one-to-one renaming of variables — the standard-order notion
// retract/1 uses to match a stored clause without binding anything.
func Variant(a, b Term) bool {
	ab := map[Var]Var{}
	ba := map[Var]Var{}
	var walk func(a, b Term) bool
	walk = func(a, b Term) bool {
		switch x := a.(type) {
		case Var:
			y, ok := b.(Var)
			if !ok {
				return false
			}
			fwd, seenX := ab[x]
			bwd, seenY := ba[y]
			if seenX != seenY {
				return false
			}
			if seenX {
				return fwd == y && bwd == x
			}
			ab[x] = y
			ba[y] = x
			return true
		case *Compound:
			y, ok := b.(*Compound)
			if !ok || x.Functor != y.Functor || len(x.Args) != len(y.Args) {
				return false
			}
			for i := range x.Args {
				if !walk(x.Args[i], y.Args[i]) {
					return false
				}
			}
			return true
		default:
			return Equal(a, b)
		}
	}
	return walk(a, b)
}

// Equal reports structural equality of two terms (variables compare
// by name).
func Equal(a, b Term) bool {
	switch x := a.(type) {
	case Atom:
		y, ok := b.(Atom)
		return ok && x == y
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Float:
		y, ok := b.(Float)
		return ok && x == y
	case Var:
		y, ok := b.(Var)
		return ok && x == y
	case *Compound:
		y, ok := b.(*Compound)
		if !ok || x.Functor != y.Functor || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
