package term

// Builder constructs terms from slab-allocated storage: cells and
// argument slots are carved out of chunked backing arrays, so building
// an n-element list costs ~2n/builderSlab allocations instead of 2n.
// Every cell is written exactly once and never reclaimed — the builder
// only ever moves forward through its slabs — so terms built earlier
// remain valid for as long as their holders keep them, even while the
// same builder keeps producing new ones. That makes a long-lived
// per-machine Builder safe for solution readback: each query's
// bindings alias slab memory, never share cells.
//
// The zero Builder is ready to use.
type Builder struct {
	cells []Compound
	args  []Term
}

const builderSlab = 256

func (b *Builder) cell() *Compound {
	if len(b.cells) == 0 {
		b.cells = make([]Compound, builderSlab)
	}
	c := &b.cells[0]
	b.cells = b.cells[1:]
	return c
}

func (b *Builder) slots(n int) []Term {
	if len(b.args) < n {
		size := builderSlab
		if n > size {
			size = n
		}
		b.args = make([]Term, size)
	}
	s := b.args[:n:n]
	b.args = b.args[n:]
	return s
}

// Cons builds a list cell [Head|Tail] from slab storage.
func (b *Builder) Cons(head, tail Term) Term {
	c := b.cell()
	s := b.slots(2)
	s[0], s[1] = head, tail
	c.Functor = DotAtom
	c.Args = s
	return c
}

// Compound builds an arity-n compound whose Args the caller fills in;
// arity 0 is returned as the bare atom, mirroring New.
func (b *Builder) Compound(f Atom, arity int) (Term, []Term) {
	if arity == 0 {
		return f, nil
	}
	c := b.cell()
	c.Functor = f
	c.Args = b.slots(arity)
	return c, c.Args
}
