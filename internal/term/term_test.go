package term

import (
	"testing"
)

func TestListBuilders(t *testing.T) {
	l := List(Int(1), Int(2))
	h, tl, ok := IsCons(l)
	if !ok || !Equal(h, Int(1)) {
		t.Fatalf("bad head of %v", l)
	}
	h2, tl2, ok := IsCons(tl)
	if !ok || !Equal(h2, Int(2)) || !Equal(tl2, NilAtom) {
		t.Fatalf("bad tail of %v", l)
	}
	if _, _, ok := IsCons(NilAtom); ok {
		t.Fatal("[] is not a cons")
	}
	pt := ListTail(Var("T"), Atom("a"))
	_, tl3, _ := IsCons(pt)
	if !Equal(tl3, Var("T")) {
		t.Fatalf("partial list tail = %v", tl3)
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	tm := New("f", Var("X"), New("g", Var("Y"), Var("X")), Var("Z"))
	vs := Vars(tm, nil)
	want := []Var{"X", "Y", "Z"}
	if len(vs) != len(want) {
		t.Fatalf("got %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("got %v, want %v", vs, want)
		}
	}
}

func TestRename(t *testing.T) {
	tm := New("f", Var("X"), Int(1))
	r := Rename(tm, "p_")
	if !Equal(r, New("f", Var("p_X"), Int(1))) {
		t.Fatalf("got %v", r)
	}
	// Original untouched.
	if !Equal(tm, New("f", Var("X"), Int(1))) {
		t.Fatal("rename mutated input")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(List(Int(1)), List(Int(1))) {
		t.Error("equal lists differ")
	}
	if Equal(List(Int(1)), List(Int(2))) {
		t.Error("different lists equal")
	}
	if Equal(Atom("a"), Var("a")) {
		t.Error("atom equals var")
	}
	if Equal(Int(1), Float(1)) {
		t.Error("int equals float")
	}
}

func TestPrinting(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{List(Int(1), Int(2), Int(3)), "[1,2,3]"},
		{ListTail(Var("T"), Atom("a")), "[a|T]"},
		{New("+", Int(1), New("*", Int(2), Int(3))), "1+2*3"},
		{New("*", New("+", Int(1), Int(2)), Int(3)), "(1+2)*3"},
		{New("-", New("-", Int(1), Int(2)), Int(3)), "1-2-3"},
		{New("-", Int(1), New("-", Int(2), Int(3))), "1-(2-3)"},
		{New("is", Var("X"), New("mod", Var("Y"), Int(2))), "X is Y mod 2"},
		{New(":-", Atom("a"), New(",", Atom("b"), Atom("c"))), "a:-b,c"},
		{New("-", Var("X")), "-X"},
		{New("\\+", Atom("p")), "\\+ p"},
		{New("f", Atom("a"), Var("B")), "f(a,B)"},
		{Atom("hello world"), "'hello world'"},
		{Atom("[]"), "[]"},
		{Float(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestDisplayUnquoted(t *testing.T) {
	tm := New("f", Atom("hello world"), List(Atom("it's")))
	if got := Display(tm); got != "f(hello world,[it's])" {
		t.Errorf("Display = %q", got)
	}
	if got := Display(Atom("a b")); got != "a b" {
		t.Errorf("Display atom = %q", got)
	}
}

func TestTermIndicator(t *testing.T) {
	if pi, ok := TermIndicator(Atom("foo")); !ok || pi != Ind("foo", 0) {
		t.Error("atom indicator")
	}
	if pi, ok := TermIndicator(New("f", Int(1))); !ok || pi != Ind("f", 1) {
		t.Error("compound indicator")
	}
	if _, ok := TermIndicator(Int(3)); ok {
		t.Error("int should not be callable")
	}
	if _, ok := TermIndicator(Var("X")); ok {
		t.Error("var should not be callable")
	}
}

func TestSymTab(t *testing.T) {
	st := NewSymTab()
	if idx, _ := st.Lookup("[]"); idx != 0 {
		t.Fatalf("[] must be atom 0, got %d", idx)
	}
	a := st.Intern("zebra")
	b := st.Intern("zebra")
	if a != b {
		t.Fatal("interning not idempotent")
	}
	if st.Name(a) != "zebra" {
		t.Fatalf("Name(%d) = %v", a, st.Name(a))
	}
	if _, ok := st.Lookup("nonexistent"); ok {
		t.Fatal("lookup invented an atom")
	}
	n := st.Len()
	st.Intern("zebra")
	if st.Len() != n {
		t.Fatal("re-interning grew the table")
	}
}

func TestSymTabConcurrent(t *testing.T) {
	st := NewSymTab()
	done := make(chan uint32, 64)
	for i := 0; i < 64; i++ {
		go func() { done <- st.Intern("shared") }()
	}
	first := <-done
	for i := 1; i < 64; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent interning produced distinct indices")
		}
	}
}
