package trace_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "regenerate the golden trace files in testdata/")

// goldenEvents is how much of the execution prefix the golden files
// pin: enough to cover boot, the first call chains, choice-point
// creation and the first backtracks of both programs.
const goldenEvents = 200

// goldenPrograms are the benchmark programs whose trace prefix is
// pinned: the deterministic list workhorse and a backtracking search.
var goldenPrograms = []string{"nrev1", "queens"}

// TestGoldenTrace pins the first 200 trace events (kind, opcode,
// address, predicate) of a cold run of each program. Cycle totals
// alone cannot see a changed execution path whose cost happens to
// cancel out; this test can. Regenerate with
//
//	go test ./internal/trace/ -run TestGoldenTrace -update
//
// after any *intentional* change to compilation or execution order,
// and review the diff of testdata/ like code.
func TestGoldenTrace(t *testing.T) {
	for _, prog := range goldenPrograms {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			got := traceLines(t, prog)
			path := filepath.Join("testdata", prog+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			wantB, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			want := string(wantB)
			if got == want {
				return
			}
			gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
			for i := 0; i < len(gl) || i < len(wl); i++ {
				var g, w string
				if i < len(gl) {
					g = gl[i]
				}
				if i < len(wl) {
					w = wl[i]
				}
				if g != w {
					t.Fatalf("execution path diverged from %s at event %d:\n got  %s\n want %s\n(rerun with -update if the change is intentional)",
						path, i+1, g, w)
				}
			}
		})
	}
}

func traceLines(t *testing.T, prog string) string {
	t.Helper()
	p, ok := bench.ByName(prog)
	if !ok {
		t.Fatalf("unknown benchmark program %q", prog)
	}
	im, err := bench.Compile(p, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(goldenEvents)
	m, err := machine.New(im, machine.Config{Hook: rec})
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		t.Fatalf("%s: no query entry", prog)
	}
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, ln := range rec.Lines() {
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenTraceDeterministic guards the golden files' foundation:
// two identical runs produce identical event streams (no map-order or
// host-state leakage into the trace).
func TestGoldenTraceDeterministic(t *testing.T) {
	a := traceLines(t, "queens")
	b := traceLines(t, "queens")
	if a != b {
		t.Fatal("two identical runs produced different traces")
	}
}

// TestGoldenSeqContiguous asserts the recorded prefix carries the
// machine's event sequence numbers 1..N with no gap — i.e. no event
// kind is emitted outside the recorder's view.
func TestGoldenSeqContiguous(t *testing.T) {
	p, _ := bench.ByName("nrev1")
	im, err := bench.Compile(p, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(goldenEvents)
	m, err := machine.New(im, machine.Config{Hook: rec})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	for i, ev := range rec.Events() {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if n := len(rec.Events()); n != goldenEvents {
		t.Fatalf("recorded %d events, want %d", n, goldenEvents)
	}
}

var _ = fmt.Sprintf // keep fmt available for debugging edits
