package trace

import (
	"strings"
	"testing"
)

func tbl() *PredTable {
	return NewPredTable([]Pred{
		{Start: 100, Name: "app/3"},
		{Start: 10, Name: "nrev/2"},
		{Start: 200, Name: "main/0"},
	})
}

func TestPredTableLocate(t *testing.T) {
	pt := tbl()
	cases := []struct {
		addr uint32
		want string
	}{
		{0, SystemName}, {9, SystemName},
		{10, "nrev/2"}, {99, "nrev/2"},
		{100, "app/3"}, {199, "app/3"},
		{200, "main/0"}, {1 << 20, "main/0"},
	}
	for _, c := range cases {
		if got := pt.Name(pt.Locate(c.addr)); got != c.want {
			t.Errorf("Locate(%d) = %q, want %q", c.addr, got, c.want)
		}
	}
	var nilTbl *PredTable
	if got := nilTbl.Name(nilTbl.Locate(42)); got != SystemName {
		t.Errorf("nil table Locate = %q, want %q", got, SystemName)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	if r.Seen() != 5 {
		t.Fatalf("Seen = %d, want 5", r.Seen())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("Events = %+v, want seqs 3,4,5", evs)
	}
	r.Reset()
	if r.Seen() != 0 || len(r.Events()) != 0 {
		t.Fatalf("Reset did not clear ring")
	}
}

func TestRecorderKeepsPrefix(t *testing.T) {
	rec := NewRecorder(2)
	for i := 1; i <= 5; i++ {
		rec.Emit(Event{Seq: uint64(i)})
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("Events = %+v, want seqs 1,2", evs)
	}
}

func TestTee(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	h := Tee(nil, a, nil, b)
	h.Emit(Event{Seq: 1})
	if a.Seen() != 1 || b.Seen() != 1 {
		t.Fatalf("tee did not fan out: %d %d", a.Seen(), b.Seen())
	}
	if got := Tee(nil, a); got != Hook(a) {
		t.Fatalf("single-hook Tee should unwrap")
	}
	if got := Tee(nil, nil); got != nil {
		t.Fatalf("empty Tee should be nil")
	}
	p := NewProfiler()
	th := Tee(a, p)
	if binder, ok := th.(PredBinder); !ok {
		t.Fatalf("tee should propagate BindPreds")
	} else {
		binder.BindPreds(tbl())
		if p.preds == nil {
			t.Fatalf("BindPreds did not reach profiler")
		}
	}
}

func TestJSONLShape(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.BindPreds(tbl())
	j.Emit(Event{Seq: 1, Kind: KInstr, P: 12, Cycles: 3})
	j.Emit(Event{Seq: 2, Kind: KTrail, P: 12, Addr: 77, Arg: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"instr"`) ||
		!strings.Contains(lines[0], `"pred":"nrev/2"`) ||
		!strings.Contains(lines[0], `"cycles":3`) {
		t.Errorf("bad instr line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"trail"`) ||
		!strings.Contains(lines[1], `"addr":77`) ||
		!strings.Contains(lines[1], `"arg":2`) {
		t.Errorf("bad trail line: %s", lines[1])
	}
}

// feed drives a profiler with a synthetic event stream.
func feed(p *Profiler, evs ...Event) {
	for _, ev := range evs {
		p.Emit(ev)
	}
}

func TestProfilerFlatAndConservation(t *testing.T) {
	p := NewProfiler()
	p.BindPreds(tbl())
	feed(p,
		Event{Kind: KBoot, P: 200, Cycles: 4},
		Event{Kind: KInstr, P: 200, Cycles: 2},
		Event{Kind: KCall, P: 10, Addr: 10},
		Event{Kind: KInstr, P: 10, Cycles: 5},
		Event{Kind: KCall, P: 100, Addr: 100},
		Event{Kind: KInstr, P: 100, Cycles: 7},
		Event{Kind: KProceed, P: 11},
		Event{Kind: KInstr, P: 11, Cycles: 1},
		Event{Kind: KRedo, Cycles: 3},
	)
	if got, want := p.Total(), uint64(4+2+5+7+1+3); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	rows := map[string]Row{}
	for _, r := range p.Rows() {
		rows[r.Name] = r
	}
	if r := rows["main/0"]; r.Self != 2 {
		t.Errorf("main/0 self = %d, want 2", r.Self)
	}
	if r := rows["nrev/2"]; r.Self != 6 || r.Calls != 1 {
		t.Errorf("nrev/2 = %+v, want self 6 calls 1", r)
	}
	if r := rows["app/3"]; r.Self != 7 || r.Calls != 1 {
		t.Errorf("app/3 = %+v, want self 7 calls 1", r)
	}
	if r := rows[BootName]; r.Self != 4 {
		t.Errorf("%s self = %d, want 4", BootName, r.Self)
	}
	if r := rows[RedoName]; r.Self != 3 {
		t.Errorf("%s self = %d, want 3", RedoName, r.Self)
	}
	// nrev/2 is on the stack while app/3 runs: cum = 5(self)+7(app)+1(self) = 13.
	if r := rows["nrev/2"]; r.Cum != 13 {
		t.Errorf("nrev/2 cum = %d, want 13", r.Cum)
	}
	// Special buckets never appear in folded stacks.
	for k := range p.FoldedMap() {
		if strings.Contains(k, "<boot>") || strings.Contains(k, "<redo>") {
			t.Errorf("special bucket leaked into folded key %q", k)
		}
	}
}

func TestProfilerBacktrackTruncatesStack(t *testing.T) {
	p := NewProfiler()
	p.BindPreds(tbl())
	feed(p,
		Event{Kind: KInstr, P: 200, Cycles: 1}, // main/0, stack repaired to [main/0]
		Event{Kind: KCPCreate, Addr: 500, Arg: 2},
		Event{Kind: KCall, P: 10, Addr: 10},   // push nrev/2
		Event{Kind: KCall, P: 100, Addr: 100}, // push app/3
		Event{Kind: KCPRestore, Addr: 500, Arg: 201},
		Event{Kind: KInstr, P: 201, Cycles: 1}, // back in main/0
	)
	key := p.stackKey()
	if key != "main/0" {
		t.Fatalf("stack after restore = %q, want main/0", key)
	}
	// The restored choice point stays live for a second retry.
	feed(p,
		Event{Kind: KCall, P: 10, Addr: 10},
		Event{Kind: KCPRestore, Addr: 500, Arg: 201},
		Event{Kind: KInstr, P: 201, Cycles: 1},
	)
	if key := p.stackKey(); key != "main/0" {
		t.Fatalf("stack after second restore = %q, want main/0", key)
	}
	// Cut drops records above the new top; restore of a dropped frame
	// is then a no-op.
	feed(p,
		Event{Kind: KCPCreate, Addr: 600, Arg: 0},
		Event{Kind: KCut, P: 201, Addr: 500},
		Event{Kind: KCPRestore, Addr: 600, Arg: 202},
	)
	if key := p.stackKey(); key != "main/0" {
		t.Fatalf("stack after cut+stale restore = %q, want main/0", key)
	}
}

func TestProfilerRecursionCumCountedOnce(t *testing.T) {
	p := NewProfiler()
	p.BindPreds(tbl())
	feed(p,
		Event{Kind: KInstr, P: 10, Cycles: 1}, // nrev/2
		Event{Kind: KCall, P: 10, Addr: 10},   // recursive call
		Event{Kind: KInstr, P: 10, Cycles: 1},
		Event{Kind: KCall, P: 10, Addr: 10},
		Event{Kind: KInstr, P: 10, Cycles: 1},
	)
	for _, r := range p.Rows() {
		if r.Name == "nrev/2" {
			if r.Cum != 3 {
				t.Fatalf("recursive cum = %d, want 3 (counted once per stack)", r.Cum)
			}
			return
		}
	}
	t.Fatal("nrev/2 row missing")
}

func TestProfilerResetOnKReset(t *testing.T) {
	p := NewProfiler()
	p.BindPreds(tbl())
	feed(p,
		Event{Kind: KInstr, P: 10, Cycles: 5},
		Event{Kind: KReset},
	)
	if p.Total() != 0 || len(p.FoldedMap()) != 0 {
		t.Fatalf("KReset did not clear profiler: total=%d", p.Total())
	}
}

func TestAggMerges(t *testing.T) {
	mk := func(cycles uint64) *Profiler {
		p := NewProfiler()
		p.BindPreds(tbl())
		feed(p, Event{Kind: KInstr, P: 10, Cycles: cycles})
		return p
	}
	a := NewAgg()
	a.Add(mk(5))
	a.Add(mk(7))
	if a.Total() != 12 {
		t.Fatalf("Agg total = %d, want 12", a.Total())
	}
	rows := a.Rows()
	if len(rows) != 1 || rows[0].Name != "nrev/2" || rows[0].Self != 12 {
		t.Fatalf("Agg rows = %+v", rows)
	}
	var sb strings.Builder
	if err := a.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "nrev/2 12\n" {
		t.Fatalf("folded = %q", got)
	}
}

func TestRenderProfile(t *testing.T) {
	var sb strings.Builder
	RenderProfile(&sb, []Row{
		{Name: "nrev/2", Self: 6, Cum: 13, Calls: 1},
		{Name: "app/3", Self: 7, Cum: 7, Calls: 1},
	}, 13)
	out := sb.String()
	if !strings.Contains(out, "flat cycles by predicate") ||
		!strings.Contains(out, "cumulative cycles by predicate") ||
		!strings.Contains(out, "app/3") {
		t.Fatalf("render output:\n%s", out)
	}
	// Flat table is sorted by self: app/3 (7) before nrev/2 (6).
	if strings.Index(out, "app/3") > strings.Index(out, "nrev/2") {
		t.Fatalf("flat table not sorted by self:\n%s", out)
	}
}
