package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Ring is a fixed-capacity in-memory sink keeping the most recent
// events — the flight recorder for "what led up to this fault".
type Ring struct {
	buf  []Event
	next int
	n    uint64 // total events seen
}

// NewRing creates a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit records one event, overwriting the oldest when full.
func (r *Ring) Emit(ev Event) {
	r.n++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// Seen returns how many events were emitted in total (including
// overwritten ones).
func (r *Ring) Seen() uint64 { return r.n }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset discards the retained events and the seen count.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.n = 0
}

// Recorder keeps the first N events and ignores the rest — the shape
// golden-trace tests want ("the execution path must start exactly
// like this").
type Recorder struct {
	buf   []Event
	limit int
	preds *PredTable
}

// NewRecorder creates a recorder keeping the first limit events.
func NewRecorder(limit int) *Recorder {
	if limit < 1 {
		limit = 1
	}
	return &Recorder{limit: limit}
}

// Emit records the event while capacity remains.
func (r *Recorder) Emit(ev Event) {
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, ev)
	}
}

// BindPreds receives the machine's predicate table (see PredBinder).
func (r *Recorder) BindPreds(t *PredTable) { r.preds = t }

// Events returns the recorded prefix.
func (r *Recorder) Events() []Event { return r.buf }

// Lines renders the recorded prefix with FormatEvent, one line per
// event.
func (r *Recorder) Lines() []string {
	out := make([]string, len(r.buf))
	for i, ev := range r.buf {
		out[i] = FormatEvent(ev, r.preds)
	}
	return out
}

// FormatEvent renders one event in the stable single-line form used
// by golden traces: kind, opcode (instruction events), the owning
// instruction address, the kind-specific address/argument, and the
// owning predicate resolved through the table.
func FormatEvent(ev Event, preds *PredTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", ev.Kind)
	switch ev.Kind {
	case KInstr, KCall, KExecute, KProceed:
		fmt.Fprintf(&b, " op=%-16v", ev.Op)
	default:
		fmt.Fprintf(&b, " %-20s", "")
	}
	fmt.Fprintf(&b, " p=%-6d", ev.P)
	switch ev.Kind {
	case KInstr:
		// Cycles are deliberately omitted: golden traces pin the
		// execution path (opcode, address, predicate); cycle drift is
		// the conservation/pin tests' job.
	case KTrail:
		fmt.Fprintf(&b, " addr=%-8d zone=%d", ev.Addr, ev.Arg)
	case KMMUTrap:
		fmt.Fprintf(&b, " kind=%d", ev.Arg)
	case KHalt:
		fmt.Fprintf(&b, " failed=%d", ev.Arg)
	default:
		fmt.Fprintf(&b, " addr=%-8d", ev.Addr)
	}
	fmt.Fprintf(&b, " pred=%s", preds.Name(preds.Locate(ev.P)))
	return b.String()
}

// JSONL streams every event as one JSON object per line. The encoder
// is hand-rolled: field order is stable, nothing reflects, and only
// populated fields appear, so traces diff cleanly.
type JSONL struct {
	w     *bufio.Writer
	preds *PredTable
	err   error
}

// NewJSONL creates a streaming sink over w. Call Close (or Flush) to
// drain the buffer.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 64*1024)}
}

// BindPreds receives the machine's predicate table (see PredBinder);
// bound, every event line carries its owning predicate.
func (j *JSONL) BindPreds(t *PredTable) { j.preds = t }

// Emit writes one event line. Write errors are sticky and surfaced
// by Close.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	w := j.w
	fmt.Fprintf(w, `{"seq":%d,"kind":%q`, ev.Seq, ev.Kind.String())
	switch ev.Kind {
	case KInstr, KCall, KExecute, KProceed:
		fmt.Fprintf(w, `,"op":%q`, ev.Op.String())
	default:
		// Other kinds carry no opcode.
	}
	fmt.Fprintf(w, `,"p":%d`, ev.P)
	if ev.Addr != 0 {
		fmt.Fprintf(w, `,"addr":%d`, ev.Addr)
	}
	if ev.Arg != 0 {
		fmt.Fprintf(w, `,"arg":%d`, ev.Arg)
	}
	if ev.Cycles != 0 {
		fmt.Fprintf(w, `,"cycles":%d`, ev.Cycles)
	}
	if j.preds != nil {
		fmt.Fprintf(w, `,"pred":%q`, j.preds.Name(j.preds.Locate(ev.P)))
	}
	if _, err := w.WriteString("}\n"); err != nil {
		j.err = err
	}
}

// Flush drains the buffer.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Close flushes and returns the first error the sink hit.
func (j *JSONL) Close() error { return j.Flush() }
