package trace

import "sort"

// Pred is one predicate's code range start and display name
// ("name/arity").
type Pred struct {
	Start uint32
	Name  string
}

// PredTable resolves code addresses to predicates: a sorted list of
// entry points, where a predicate owns every address from its entry
// up to the next one. Addresses below the first entry (the bootstrap
// halt_fail word at 0) resolve to the system bucket.
type PredTable struct {
	preds []Pred // sorted by Start
}

// NewPredTable builds a table from the given entries (copied, then
// sorted by start address; ties broken by name for determinism).
func NewPredTable(preds []Pred) *PredTable {
	ps := append([]Pred(nil), preds...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Name < ps[j].Name
	})
	return &PredTable{preds: ps}
}

// SystemName labels addresses owned by no predicate (the bootstrap
// word) in profiles and rendered traces.
const SystemName = "<system>"

// Len returns the number of predicates.
func (t *PredTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.preds)
}

// Locate returns the index of the predicate owning addr, or -1 when
// no predicate does.
func (t *PredTable) Locate(addr uint32) int {
	if t == nil {
		return -1
	}
	i := sort.Search(len(t.preds), func(i int) bool { return t.preds[i].Start > addr })
	return i - 1
}

// Name returns the display name for a Locate result; -1 (and a nil
// table) yield SystemName.
func (t *PredTable) Name(i int) string {
	if t == nil || i < 0 || i >= len(t.preds) {
		return SystemName
	}
	return t.preds[i].Name
}

// PredBinder is implemented by hooks that resolve addresses to
// predicates; the machine binds its image's table at construction.
type PredBinder interface {
	BindPreds(*PredTable)
}
