package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Special bucket names used when cycles cannot be attributed to a
// user predicate.
const (
	BootName  = "<boot>"  // session bootstrap (bottom choice-point save)
	RedoName  = "<redo>"  // host-forced backtracks (Machine.Redo)
	FaultName = "<fault>" // cycles charged before a fetch fault stopped a step
	GCName    = "<gc>"    // heap collection (KGCEnd cycles)
)

// Profiler attributes simulated microcycles to predicates. Flat
// attribution is exact: every KInstr event's cycles go to the
// predicate owning the instruction's address, and the
// boot/redo/fault/gc events cover the remaining machine cycles, so
// Total() equals the
// machine's cycle counter — internal/bench's conservation test pins
// this for the whole benchmark suite.
//
// Cumulative attribution follows a shadow call stack reconstructed
// from the call/execute/proceed chain, reconciled against
// choice-point events so backtracking unwinds it correctly. The stack
// feeds a pprof-style folded-stack map for flamegraphs.
//
// A Profiler is bound to one machine and is not safe for concurrent
// use; aggregate across machines with Agg.
type Profiler struct {
	preds *PredTable

	self  []uint64 // per predicate index
	calls []uint64 // KCall+KExecute entries per predicate index
	sysSelf, sysCalls,
	boot, redo, fault, gc uint64

	// Shadow call stack of predicate indices (-1 = system), plus the
	// choice-point depth records that let deep fails truncate it.
	stack   []int32
	cpDepth []cpEntry

	folded   map[string]uint64
	key      string // cached ";"-joined stack key
	keyValid bool
}

type cpEntry struct {
	addr  uint32 // choice-point frame address
	depth int32  // len(stack) when the frame was created
}

// NewProfiler creates an empty profiler. The machine binds the
// predicate table when the hook is installed (see PredBinder).
func NewProfiler() *Profiler {
	return &Profiler{folded: make(map[string]uint64)}
}

// BindPreds installs the predicate table; counters are sized to it.
func (p *Profiler) BindPreds(t *PredTable) {
	p.preds = t
	if n := t.Len(); len(p.self) < n {
		p.self = make([]uint64, n)
		p.calls = make([]uint64, n)
	}
}

// Reset clears all accumulated attribution and the shadow stack.
func (p *Profiler) Reset() {
	for i := range p.self {
		p.self[i] = 0
		p.calls[i] = 0
	}
	p.sysSelf, p.sysCalls, p.boot, p.redo, p.fault, p.gc = 0, 0, 0, 0, 0, 0
	p.stack = p.stack[:0]
	p.cpDepth = p.cpDepth[:0]
	p.folded = make(map[string]uint64)
	p.keyValid = false
}

// Emit consumes one trace event (see Hook).
func (p *Profiler) Emit(ev Event) {
	switch ev.Kind {
	case KInstr:
		idx := int32(p.preds.Locate(ev.P))
		// Self attribution is positional and exact.
		if idx >= 0 {
			p.self[idx] += ev.Cycles
		} else {
			p.sysSelf += ev.Cycles
		}
		// Repair the shadow stack if an unmodeled control transfer
		// left a stale frame on top: the running predicate must be the
		// top of stack.
		if n := len(p.stack); n == 0 {
			p.push(idx)
		} else if p.stack[n-1] != idx {
			p.stack[n-1] = idx
			p.keyValid = false
		}
		if ev.Cycles != 0 {
			p.folded[p.stackKey()] += ev.Cycles
		}
	case KCall:
		idx := int32(p.preds.Locate(ev.Addr))
		p.countCall(idx)
		p.push(idx)
	case KExecute:
		idx := int32(p.preds.Locate(ev.Addr))
		p.countCall(idx)
		if n := len(p.stack); n > 0 {
			p.stack[n-1] = idx
			p.keyValid = false
		} else {
			p.push(idx)
		}
	case KProceed:
		if n := len(p.stack); n > 1 {
			p.stack = p.stack[:n-1]
			p.keyValid = false
		}
	case KCPCreate:
		// Frame addresses below the new top are gone (popped or cut
		// without our having seen every pop); drop their records.
		p.dropCP(ev.Addr, true)
		p.cpDepth = append(p.cpDepth, cpEntry{addr: ev.Addr, depth: int32(len(p.stack))})
	case KCPRestore:
		for i := len(p.cpDepth) - 1; i >= 0; i-- {
			if p.cpDepth[i].addr == ev.Addr {
				// Keep the entry: the choice point stays live for the
				// next retry.
				p.cpDepth = p.cpDepth[:i+1]
				if d := p.cpDepth[i].depth; int(d) <= len(p.stack) {
					p.stack = p.stack[:d]
					p.keyValid = false
				}
				break
			}
		}
	case KCPPop:
		p.dropCP(ev.Addr, true)
	case KCut:
		p.dropCP(ev.Addr, false)
	case KBoot:
		p.boot += ev.Cycles
		// A fresh session: the stack restarts, and choice points
		// created during bootstrap (before this event) belong to the
		// empty stack.
		p.stack = p.stack[:0]
		p.keyValid = false
		for i := range p.cpDepth {
			p.cpDepth[i].depth = 0
		}
	case KRedo:
		p.redo += ev.Cycles
	case KFault:
		p.fault += ev.Cycles
	case KGCEnd:
		p.gc += ev.Cycles
	case KReset:
		p.Reset()
	default:
		// Memory-system and session events carry no attributable
		// cycles of their own (their cost rides on the owning KInstr).
	}
}

func (p *Profiler) countCall(idx int32) {
	if idx >= 0 {
		p.calls[idx]++
	} else {
		p.sysCalls++
	}
}

func (p *Profiler) push(idx int32) {
	p.stack = append(p.stack, idx)
	p.keyValid = false
}

// dropCP discards choice-point records at or above addr (orEqual) or
// strictly above it (cut keeps the new top).
func (p *Profiler) dropCP(addr uint32, orEqual bool) {
	i := len(p.cpDepth)
	for i > 0 {
		a := p.cpDepth[i-1].addr
		if a > addr || (orEqual && a == addr) {
			i--
			continue
		}
		break
	}
	p.cpDepth = p.cpDepth[:i]
}

// stackKey returns the cached ";"-joined folded-stack key, root
// first, rebuilding it only after the stack changed.
func (p *Profiler) stackKey() string {
	if p.keyValid {
		return p.key
	}
	var b strings.Builder
	for i, idx := range p.stack {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(p.preds.Name(int(idx)))
	}
	p.key = b.String()
	p.keyValid = true
	return p.key
}

// Total returns all attributed cycles. On a consistent machine this
// equals Stats.Cycles exactly.
func (p *Profiler) Total() uint64 {
	t := p.boot + p.redo + p.fault + p.gc + p.sysSelf
	for _, c := range p.self {
		t += c
	}
	return t
}

// Row is one predicate's attribution in a profile report.
type Row struct {
	Name  string
	Self  uint64 // cycles in the predicate's own instructions
	Cum   uint64 // cycles with the predicate anywhere on the stack
	Calls uint64 // call/execute entries
}

// Rows returns one row per predicate (plus the special buckets) with
// nonzero attribution, unsorted. Cumulative cycles are derived from
// the folded-stack map, counting each stack's cycles once per
// distinct predicate on it.
func (p *Profiler) Rows() []Row {
	cum := make(map[string]uint64, len(p.self))
	seen := make(map[string]bool, 8)
	for key, cycles := range p.folded {
		for k := range seen {
			delete(seen, k)
		}
		for _, name := range strings.Split(key, ";") {
			// A recursive predicate appears on the stack many times but
			// its cumulative share of these cycles is counted once.
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			cum[name] += cycles
		}
	}
	rows := make([]Row, 0, len(p.self)+4)
	for i, c := range p.self {
		name := p.preds.Name(i)
		if c == 0 && p.calls[i] == 0 && cum[name] == 0 {
			continue
		}
		rows = append(rows, Row{Name: name, Self: c, Cum: cum[name], Calls: p.calls[i]})
	}
	if p.sysSelf != 0 || p.sysCalls != 0 || cum[SystemName] != 0 {
		rows = append(rows, Row{Name: SystemName, Self: p.sysSelf, Cum: cum[SystemName], Calls: p.sysCalls})
	}
	if p.boot != 0 {
		rows = append(rows, Row{Name: BootName, Self: p.boot, Cum: p.boot})
	}
	if p.redo != 0 {
		rows = append(rows, Row{Name: RedoName, Self: p.redo, Cum: p.redo})
	}
	if p.fault != 0 {
		rows = append(rows, Row{Name: FaultName, Self: p.fault, Cum: p.fault})
	}
	if p.gc != 0 {
		rows = append(rows, Row{Name: GCName, Self: p.gc, Cum: p.gc})
	}
	return rows
}

// FoldedMap returns the folded-stack cycle map (key: ";"-joined
// predicate names root-first). The map is live; callers must not
// mutate it.
func (p *Profiler) FoldedMap() map[string]uint64 { return p.folded }

// WriteFolded writes the folded stacks in the collapsed format
// flamegraph tools consume: "root;...;leaf <cycles>", sorted by key.
func (p *Profiler) WriteFolded(w io.Writer) error {
	return writeFolded(w, p.folded)
}

func writeFolded(w io.Writer, folded map[string]uint64) error {
	keys := make([]string, 0, len(folded))
	for k := range folded {
		if k != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, folded[k]); err != nil {
			return err
		}
	}
	return nil
}

// RenderProfile writes the flat table (sorted by self cycles) and the
// cumulative table (sorted by cumulative cycles) for the given rows.
func RenderProfile(w io.Writer, rows []Row, total uint64) {
	if total == 0 {
		total = 1
	}
	flat := append([]Row(nil), rows...)
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].Self != flat[j].Self {
			return flat[i].Self > flat[j].Self
		}
		return flat[i].Name < flat[j].Name
	})
	fmt.Fprintf(w, "flat cycles by predicate:\n")
	fmt.Fprintf(w, "  %12s %6s %10s  %s\n", "self", "self%", "calls", "predicate")
	for _, r := range flat {
		fmt.Fprintf(w, "  %12d %5.1f%% %10d  %s\n",
			r.Self, 100*float64(r.Self)/float64(total), r.Calls, r.Name)
	}
	cum := append([]Row(nil), rows...)
	sort.Slice(cum, func(i, j int) bool {
		if cum[i].Cum != cum[j].Cum {
			return cum[i].Cum > cum[j].Cum
		}
		return cum[i].Name < cum[j].Name
	})
	fmt.Fprintf(w, "cumulative cycles by predicate:\n")
	fmt.Fprintf(w, "  %12s %6s  %s\n", "cum", "cum%", "predicate")
	for _, r := range cum {
		fmt.Fprintf(w, "  %12d %5.1f%%  %s\n",
			r.Cum, 100*float64(r.Cum)/float64(total), r.Name)
	}
}

// Agg aggregates profiles from many machines (the engine pool). Safe
// for concurrent use.
type Agg struct {
	mu     sync.Mutex
	rows   map[string]*Row
	folded map[string]uint64
	total  uint64
}

// NewAgg creates an empty aggregate.
func NewAgg() *Agg {
	return &Agg{rows: make(map[string]*Row), folded: make(map[string]uint64)}
}

// Add merges one machine's profile into the aggregate.
func (a *Agg) Add(p *Profiler) {
	rows := p.Rows()
	folded := p.folded
	total := p.Total()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range rows {
		ar := a.rows[r.Name]
		if ar == nil {
			ar = &Row{Name: r.Name}
			a.rows[r.Name] = ar
		}
		ar.Self += r.Self
		ar.Cum += r.Cum
		ar.Calls += r.Calls
	}
	for k, c := range folded {
		a.folded[k] += c
	}
	a.total += total
}

// Total returns all cycles merged so far.
func (a *Agg) Total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Rows returns the merged rows, unsorted.
func (a *Agg) Rows() []Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]Row, 0, len(a.rows))
	for _, r := range a.rows {
		rows = append(rows, *r)
	}
	return rows
}

// WriteFolded writes the merged folded stacks (see
// Profiler.WriteFolded).
func (a *Agg) WriteFolded(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return writeFolded(w, a.folded)
}
