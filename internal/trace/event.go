// Package trace is the observability layer of the KCM simulator: a
// structured event stream emitted by the machine's step loop and
// memory system, and the consumers built on it — ring buffers,
// first-N recorders, streaming JSONL sinks, and the per-predicate
// cycle profiler.
//
// The design constraint, inherited from the paper's hardware
// monitors, is that observation must not perturb the measurement:
// with no hook installed the machine pays nothing (the hot loop is
// untouched), and with a hook installed every simulated counter —
// cycles, cache statistics, MMU statistics — is byte-identical to an
// untraced run. Events carry cycle *attribution*, never cycle
// *costs*; internal/bench's conservation test enforces both
// properties over the whole benchmark suite.
package trace

import "repro/internal/kcmisa"

// Kind classifies a trace event.
type Kind uint8

const (
	// KInstr is one executed instruction: P is its code address, Op
	// its opcode, Cycles the simulated microcycles the instruction
	// consumed including its code fetch, data traffic and cache
	// misses — but not garbage collection it triggered, which is
	// carried by KGCEnd. Summing KInstr, KBoot, KRedo, KFault and
	// KGCEnd cycles reproduces the machine's total cycle counter
	// exactly.
	KInstr Kind = iota + 1
	// KCall marks a call boundary: Addr is the callee's entry point.
	// Emitted after the call instruction's own KInstr event, and also
	// by the call/1 meta-call escape.
	KCall
	// KExecute marks a last-call (tail-call) boundary: Addr is the
	// callee's entry point; the callee replaces the caller.
	KExecute
	// KProceed marks a return: Addr is the continuation address.
	KProceed
	// KCPCreate is a materialised choice point: Addr is its frame
	// address on the choice-point stack, Arg the saved arity.
	KCPCreate
	// KCPRestore is a deep fail: Addr is the restored choice point's
	// frame address, Arg the resumption code address.
	KCPRestore
	// KCPPop is a discarded top choice point (trust): Addr is the
	// popped frame's address.
	KCPPop
	// KCut is a cut: Addr is the new top choice point (B after the
	// cut).
	KCut
	// KFailShallow is a shallow fail: Addr is the resumption address
	// (the next clause of the predicate being tried).
	KFailShallow
	// KTrail is a trail push: Addr is the trailed cell's address, Arg
	// its zone.
	KTrail
	// KDCacheMiss is a data-cache miss: Addr is the word address, Arg
	// bit 0 is 1 for a write miss, bits 1.. the zone.
	KDCacheMiss
	// KCCacheMiss is a code-cache read miss: Addr is the code address.
	KCCacheMiss
	// KMMUTrap is a memory-management trap: Arg is the mmu.TrapKind.
	KMMUTrap
	// KMMUPage is a demand-allocated page: Addr is the virtual
	// address whose page was mapped.
	KMMUPage
	// KBoot marks a session boot (Begin or Run): P is the entry
	// address, Addr the bottom choice point, Cycles the bootstrap
	// cost (the bottom choice-point save).
	KBoot
	// KRedo is a host-forced backtrack (Machine.Redo): P is the
	// resumption address, Cycles the cost of the forced failure.
	KRedo
	// KFault is a machine fault detected during instruction fetch;
	// Cycles is the cost charged before the fault stopped the step.
	KFault
	// KSuspend marks a RunFor slice ending on its step budget with
	// the session intact; P is the next instruction.
	KSuspend
	// KResume marks a RunFor slice starting; P is the next
	// instruction. The first slice after Begin also emits it.
	KResume
	// KReset marks ResetStats: every simulated counter was cleared,
	// so stateful consumers (the profiler) clear with it.
	KReset
	// KHalt marks halt or halt_fail; Arg is 1 for halt_fail.
	KHalt
	// KGCStart marks the beginning of a heap collection: P is the
	// owning instruction's address, Addr the heap top (H) before
	// collection.
	KGCStart
	// KGCEnd marks the end of a heap collection: Addr is the
	// compacted heap top, Arg the number of words freed, Cycles the
	// modelled collection cost (attributed to the <gc>
	// pseudo-predicate, not the interrupted instruction).
	KGCEnd
)

var kindNames = [...]string{
	KInstr: "instr", KCall: "call", KExecute: "execute", KProceed: "proceed",
	KCPCreate: "cp_create", KCPRestore: "cp_restore", KCPPop: "cp_pop",
	KCut: "cut", KFailShallow: "fail_shallow", KTrail: "trail",
	KDCacheMiss: "dcache_miss", KCCacheMiss: "ccache_miss",
	KMMUTrap: "mmu_trap", KMMUPage: "mmu_page",
	KBoot: "boot", KRedo: "redo", KFault: "fault",
	KSuspend: "suspend", KResume: "resume", KReset: "reset", KHalt: "halt",
	KGCStart: "gc_start", KGCEnd: "gc_end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "invalid"
}

// Event is one structured trace record. Events are passed by value so
// emission never allocates; sinks that retain events copy them.
type Event struct {
	Seq    uint64 // monotonic per machine, 1-based
	Cycles uint64 // cycles attributed to this event (see Kind docs)
	Arg    uint64 // kind-specific payload
	P      uint32 // code address of the owning instruction
	Addr   uint32 // kind-specific address
	Kind   Kind
	Op     kcmisa.Op // opcode for KInstr and derived control events
}

// Hook consumes the event stream. Implementations are bound to one
// machine and need not be safe for concurrent use; the engine pool
// gives every machine its own hook (Config.HookFactory).
type Hook interface {
	Emit(Event)
}

// tee fans one event stream out to several hooks.
type tee []Hook

func (t tee) Emit(ev Event) {
	for _, h := range t {
		h.Emit(ev)
	}
}

// BindPreds propagates the predicate table to every sub-hook that
// wants one.
func (t tee) BindPreds(tbl *PredTable) {
	for _, h := range t {
		if b, ok := h.(PredBinder); ok {
			b.BindPreds(tbl)
		}
	}
}

// Tee combines hooks into one; a single hook is returned unwrapped
// and nil hooks are dropped.
func Tee(hooks ...Hook) Hook {
	var hs tee
	for _, h := range hooks {
		if h != nil {
			hs = append(hs, h)
		}
	}
	switch len(hs) {
	case 0:
		return nil
	case 1:
		return hs[0]
	}
	return hs
}
