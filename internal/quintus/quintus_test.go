package quintus

import (
	"testing"

	"repro/internal/machine"
)

func TestConfigModelsSoftwareWAM(t *testing.T) {
	cfg := Config()
	if cfg.CycleNs != 40 {
		t.Errorf("SUN3/280 clock %v ns, want 40 (25 MHz)", cfg.CycleNs)
	}
	for name, p := range map[string]*bool{
		"Shallow": cfg.Shallow, "HWDeref": cfg.HWDeref, "HWTrail": cfg.HWTrail,
	} {
		if p == nil || *p {
			t.Errorf("%s must be off: a software WAM has no KCM hardware", name)
		}
	}
	k := machine.Defaults
	q := cfg.Costs
	// Every operation pays interpreter dispatch: nothing is cheaper
	// than on the microcoded KCM.
	checks := map[string][2]int{
		"Move":     {q.Move, k.Move},
		"Call":     {q.Call, k.Call},
		"Proceed":  {q.Proceed, k.Proceed},
		"Allocate": {q.Allocate, k.Allocate},
		"GetConst": {q.GetConst, k.GetConst},
		"FailDeep": {q.FailDeep, k.FailDeep},
		"MulOp":    {q.MulOp, k.MulOp},
		"DivOp":    {q.DivOp, k.DivOp},
	}
	for name, pair := range checks {
		if pair[0] <= pair[1] {
			t.Errorf("%s: QUINTUS %d not above KCM %d", name, pair[0], pair[1])
		}
	}
	// Software deref: multiple instructions per link.
	if q.DerefStepSW < 6 {
		t.Errorf("software deref %d cycles/link too cheap", q.DerefStepSW)
	}
}
