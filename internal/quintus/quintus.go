// Package quintus models QUINTUS Prolog 2.0 on a SUN3/280 (M68020 at
// 25 MHz), the commercial-system baseline of Table 3. QUINTUS is
// proprietary and the SUN3 long gone; the substitute is a software-
// emulated-WAM cost model over the same instruction stream: every
// operation pays the byte-code fetch/decode/dispatch overhead of a
// threaded interpreter on a CISC, dereferencing and trail checks are
// explicit instruction sequences rather than hardware, and choice
// points live in cached main memory. The structural gaps the paper
// attributes the 8x speedup to are exactly these.
package quintus

import "repro/internal/machine"

// CycleNs is the SUN3/280 clock (25 MHz M68020).
const CycleNs = 40

// Costs is the per-WAM-operation cost table in M68020 cycles.
// A threaded-code dispatch on the 68020 costs ~12-16 cycles before
// any useful work; memory-touching operations add ~6-10 cycles per
// access (the SUN3 had no data cache to speak of for this access
// pattern); multiply/divide are the 68020's own 28/90-cycle
// instructions plus tag handling.
var Costs = machine.Costs{
	Move:           12,
	GetConst:       26,
	GetListRead:    22,
	GetListWrite:   28,
	GetStructRead:  34,
	GetStructWrite: 46,
	UnifyRead:      14,
	UnifyWrite:     14,
	PutVar:         24,
	PutUnsafe:      30,
	Call:           44,
	Execute:        26,
	Proceed:        36,
	Allocate:       70,
	Deallocate:     50,
	TryShallow:     0, // unused: standard WAM choice points
	TrustOp:        30,
	NeckDet:        0,
	NeckCP:         90,
	CPWord:         24,
	SwitchTerm:     18,
	SwitchTable:    70,
	Cut:            20,
	FailShallow:    0, // unused
	FailDeep:       220,
	TrailPush:      16,
	TrailCheckSW:   8,
	DerefStep:      0,
	DerefStepSW:    10,
	ArithOp:        24,
	MulOp:          250,
	DivOp:          600,
	Compare:        20,
	CompareTaken:   10,
	TestOp:         16,
	IdentNode:      14,
	UnifyNode:      30,
	BuiltinEsc:     40,
	Halt:           1,
}

// Config returns the machine configuration modelling QUINTUS on the
// SUN3/280: eager choice points, software dereference and trail
// checks, QUINTUS costs at the 68020 clock.
func Config() machine.Config {
	return machine.Config{
		Shallow: machine.Off,
		HWDeref: machine.Off,
		HWTrail: machine.Off,
		Costs:   &Costs,
		CycleNs: CycleNs,
	}
}
