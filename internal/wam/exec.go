package wam

import (
	"fmt"
	"math"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// Result is the outcome of a query run.
type Result struct {
	Success    bool
	Inferences uint64
	Bindings   map[term.Var]term.Term
}

// RunQuery executes the module's $query/0 entry point.
func (m *Machine) RunQuery(queryVars map[term.Var]int) (Result, error) {
	entry, ok := m.entries[compiler.QueryPI]
	if !ok {
		return Result{}, fmt.Errorf("wam: no query entry")
	}
	m.p = entry
	m.halted = false
	m.failed = false
	m.b = nil
	m.b0 = nil
	m.e = nil
	m.trail = m.trail[:0]
	var steps uint64
	for !m.halted && m.err == nil {
		if steps >= m.maxSteps {
			m.err = fmt.Errorf("wam: step limit exceeded")
			break
		}
		steps++
		in := m.code[m.p]
		m.p++
		m.exec(in)
	}
	res := Result{Success: m.halted && !m.failed, Inferences: m.Inferences}
	if res.Success && queryVars != nil && m.e != nil {
		res.Bindings = map[term.Var]term.Term{}
		for v, y := range queryVars {
			res.Bindings[v] = m.readTerm(m.e.ys[y], 1_000_000)
		}
	}
	return res, m.err
}

func (m *Machine) bindCell(c, v *Cell) {
	c.Ref = v
	m.trail = append(m.trail, c)
}

func (m *Machine) unwind(to int) {
	for len(m.trail) > to {
		c := m.trail[len(m.trail)-1]
		m.trail = m.trail[:len(m.trail)-1]
		c.Ref = nil
	}
}

func (m *Machine) fail() {
	if m.b == nil {
		m.halted = true
		m.failed = true
		return
	}
	b := m.b
	copy(m.regs[1:1+len(b.args)], b.args)
	m.e = b.e
	m.cp = b.cp
	m.b0 = b.b0
	m.unwind(b.trail)
	m.p = b.next
}

func (m *Machine) pushCP(arity, next int) {
	args := make([]*Cell, arity)
	copy(args, m.regs[1:1+arity])
	m.b = &choice{
		prev: m.b, next: next, e: m.e, cp: m.cp,
		args: args, trail: len(m.trail), b0: m.b0,
	}
}

func (m *Machine) constCell(k word.Word) *Cell {
	switch k.Type() {
	case word.TInt:
		return mkInt(k.Int())
	case word.TFloat:
		return mkFloat(math.Float32frombits(k.Value()))
	case word.TNil:
		return mkNil()
	case word.TAtom:
		return mkAtom(m.syms.Name(k.Value()))
	}
	m.err = fmt.Errorf("wam: bad constant %v", k)
	return mkNil()
}

// matchConst reports whether a dereferenced cell equals a constant
// operand.
func (m *Machine) matchConst(c *Cell, k word.Word) bool {
	switch k.Type() {
	case word.TInt:
		return c.Kind == KInt && c.Int == k.Int()
	case word.TFloat:
		return c.Kind == KFloat && math.Float32bits(c.F) == k.Value()
	case word.TNil:
		return c.Kind == KNil
	case word.TAtom:
		return c.Kind == KAtom && c.Atom == m.syms.Name(k.Value())
	}
	return false
}

func (m *Machine) getConst(r kcmisa.Reg, k word.Word) {
	c := deref(m.regs[r])
	if c.Kind == KRef {
		m.bindCell(c, m.constCell(k))
		return
	}
	if !m.matchConst(c, k) {
		m.fail()
	}
}

// nextSub returns the next subterm slot in read mode.
func (m *Machine) nextSub() *Cell {
	c := m.s[m.si]
	m.si++
	return c
}

func (m *Machine) exec(in kcmisa.Instr) {
	if in.Mark {
		m.Inferences++
	}
	switch in.Op {
	case kcmisa.Noop:
	case kcmisa.Call:
		m.Inferences++
		m.Calls++
		m.cp = m.p
		m.b0 = m.b
		m.p = in.L
	case kcmisa.Execute:
		m.Inferences++
		m.Calls++
		m.b0 = m.b
		m.p = in.L
	case kcmisa.Proceed:
		m.p = m.cp
	case kcmisa.Jump:
		m.p = in.L
	case kcmisa.Fail:
		m.fail()
	case kcmisa.Halt:
		m.halted = true
	case kcmisa.HaltFail:
		m.halted = true
		m.failed = true

	case kcmisa.Allocate:
		m.e = &env{prev: m.e, cp: m.cp, ys: make([]*Cell, in.N)}
	case kcmisa.Deallocate:
		m.cp = m.e.cp
		m.e = m.e.prev

	case kcmisa.TryMeElse:
		m.pushCP(in.N, in.L)
	case kcmisa.RetryMeElse:
		m.b.next = in.L
	case kcmisa.TrustMe:
		m.b = m.b.prev
	case kcmisa.Try:
		m.pushCP(in.N, m.p)
		m.p = in.L
	case kcmisa.Retry:
		m.b.next = m.p
		m.p = in.L
	case kcmisa.Trust:
		m.b = m.b.prev
		m.p = in.L
	case kcmisa.Neck:
		// Choice points are eager in this reference interpreter.
	case kcmisa.Cut:
		m.b = m.b0
	case kcmisa.SaveB0:
		m.e.ys[in.N] = &Cell{Kind: KChoice, Ch: m.b0}
	case kcmisa.CutY:
		c := m.e.ys[in.N]
		if c == nil || c.Kind != KChoice {
			m.err = fmt.Errorf("wam: cut_y on non-choice cell")
			return
		}
		m.b = c.Ch

	case kcmisa.SwitchOnTerm:
		c := deref(m.regs[1])
		var l int
		switch c.Kind {
		case KRef:
			l = in.SwT.Var
		case KList:
			l = in.SwT.List
		case KStruct:
			l = in.SwT.Struct
		default:
			l = in.SwT.Const
		}
		m.branch(l)
	case kcmisa.SwitchOnConst:
		c := deref(m.regs[1])
		for _, e := range in.Sw {
			if m.matchConst(c, e.Key) {
				m.branch(e.L)
				return
			}
		}
		m.branch(in.L)
	case kcmisa.SwitchOnStruct:
		c := deref(m.regs[1])
		if c.Kind != KStruct {
			m.fail()
			return
		}
		for _, e := range in.Sw {
			if c.Atom == m.syms.Name(e.Key.FunctorAtom()) && len(c.Args) == e.Key.FunctorArity() {
				m.branch(e.L)
				return
			}
		}
		m.branch(in.L)

	case kcmisa.GetVarX:
		m.regs[in.R1] = m.regs[in.R2]
	case kcmisa.GetValX:
		if !m.unify(m.regs[in.R1], m.regs[in.R2]) {
			m.fail()
		}
	case kcmisa.GetConst:
		m.getConst(in.R2, in.K)
	case kcmisa.GetNil:
		m.getConst(in.R2, word.Nil())
	case kcmisa.GetList:
		c := deref(m.regs[in.R2])
		switch c.Kind {
		case KList:
			m.s = c.Args
			m.si = 0
			m.mode = false
		case KRef:
			nc := mkList(mkVar(), mkVar())
			m.bindCell(c, nc)
			m.wargs = nc.Args
			m.si = 0
			m.mode = true
		default:
			m.fail()
		}
	case kcmisa.GetStruct:
		c := deref(m.regs[in.R2])
		name := m.syms.Name(in.K.FunctorAtom())
		arity := in.K.FunctorArity()
		switch c.Kind {
		case KStruct:
			if c.Atom != name || len(c.Args) != arity {
				m.fail()
				return
			}
			m.s = c.Args
			m.si = 0
			m.mode = false
		case KRef:
			args := make([]*Cell, arity)
			for i := range args {
				args[i] = mkVar()
			}
			m.bindCell(c, &Cell{Kind: KStruct, Atom: name, Args: args})
			m.wargs = args
			m.si = 0
			m.mode = true
		default:
			m.fail()
		}

	case kcmisa.UnifyVarX:
		if m.mode {
			m.regs[in.R1] = m.wargs[m.si]
			m.si++
		} else {
			m.regs[in.R1] = m.nextSub()
		}
	case kcmisa.UnifyVarY:
		if m.mode {
			m.e.ys[in.N] = m.wargs[m.si]
			m.si++
		} else {
			m.e.ys[in.N] = m.nextSub()
		}
	case kcmisa.UnifyValX, kcmisa.UnifyLocX:
		m.unifySub(m.regs[in.R1])
	case kcmisa.UnifyValY, kcmisa.UnifyLocY:
		m.unifySub(m.e.ys[in.N])
	case kcmisa.UnifyConst:
		m.unifySub(m.constCell(in.K))
	case kcmisa.UnifyNil:
		m.unifySub(mkNil())
	case kcmisa.UnifyList:
		if m.mode {
			nc := mkList(mkVar(), mkVar())
			m.wargs[m.si] = nc
			m.wargs = nc.Args
			m.si = 0
		} else {
			c := deref(m.s[m.si])
			m.si++
			switch c.Kind {
			case KList:
				m.s = c.Args
				m.si = 0
			case KRef:
				nc := mkList(mkVar(), mkVar())
				m.bindCell(c, nc)
				m.wargs = nc.Args
				m.si = 0
				m.mode = true
			default:
				m.fail()
			}
		}
	case kcmisa.UnifyVoid:
		m.si += in.N

	case kcmisa.PutVarX:
		v := mkVar()
		m.regs[in.R1] = v
		m.regs[in.R2] = v
	case kcmisa.PutVarY:
		v := mkVar()
		m.e.ys[in.N] = v
		m.regs[in.R2] = v
	case kcmisa.PutValX:
		m.regs[in.R2] = m.regs[in.R1]
	case kcmisa.PutValY, kcmisa.PutUnsafeY:
		m.regs[in.R2] = m.e.ys[in.N]
	case kcmisa.PutConst:
		m.regs[in.R2] = m.constCell(in.K)
	case kcmisa.PutNil:
		m.regs[in.R2] = mkNil()
	case kcmisa.PutList:
		nc := mkList(mkVar(), mkVar())
		m.regs[in.R2] = nc
		m.wargs = nc.Args
		m.si = 0
		m.mode = true
	case kcmisa.PutStruct:
		arity := in.K.FunctorArity()
		args := make([]*Cell, arity)
		for i := range args {
			args[i] = mkVar()
		}
		m.regs[in.R2] = &Cell{Kind: KStruct, Atom: m.syms.Name(in.K.FunctorAtom()), Args: args}
		m.wargs = args
		m.si = 0
		m.mode = true
	case kcmisa.MoveXY:
		m.e.ys[in.N] = m.regs[in.R1]
	case kcmisa.MoveYX:
		m.regs[in.R1] = m.e.ys[in.N]

	case kcmisa.LoadConst:
		m.regs[in.R1] = m.constCell(in.K)
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod,
		kcmisa.Rem, kcmisa.Band, kcmisa.Bor, kcmisa.Bxor, kcmisa.Shl,
		kcmisa.Shr, kcmisa.MinOp, kcmisa.MaxOp:
		m.arith(in)
	case kcmisa.Abs:
		a, ok := m.numArg(m.regs[in.R1])
		if !ok {
			return
		}
		if a.isFloat {
			f := a.f
			if f < 0 {
				f = -f
			}
			m.regs[in.R3] = mkFloat(f)
		} else {
			v := a.i
			if v < 0 {
				v = -v
			}
			m.regs[in.R3] = mkInt(v)
		}
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe, kcmisa.CmpEq, kcmisa.CmpNe:
		m.compare(in)
	case kcmisa.TestVar, kcmisa.TestNonvar, kcmisa.TestAtom, kcmisa.TestInteger, kcmisa.TestAtomic:
		m.typeTest(in)
	case kcmisa.IdentEq:
		if !identical(m.regs[in.R1], m.regs[in.R2]) {
			m.fail()
		}
	case kcmisa.IdentNe:
		if identical(m.regs[in.R1], m.regs[in.R2]) {
			m.fail()
		}
	case kcmisa.UnifyRegs:
		if !m.unify(m.regs[in.R1], m.regs[in.R2]) {
			m.fail()
		}
	case kcmisa.Builtin:
		m.Inferences++
		m.builtin(in.N)
	default:
		m.err = fmt.Errorf("wam: illegal opcode %v", in.Op)
	}
}

func (m *Machine) branch(l int) {
	if l == kcmisa.FailLabel {
		m.fail()
		return
	}
	m.p = l
}

// unifySub unifies a value with the next subterm slot. In write mode
// the fresh slot variable is simply bound.
func (m *Machine) unifySub(v *Cell) {
	var slot *Cell
	if m.mode {
		slot = m.wargs[m.si]
	} else {
		slot = m.s[m.si]
	}
	m.si++
	if !m.unify(slot, v) {
		m.fail()
	}
}

func (m *Machine) unify(a, b *Cell) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if a.Kind == KRef {
		m.bindCell(a, b)
		return true
	}
	if b.Kind == KRef {
		m.bindCell(b, a)
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KAtom:
		return a.Atom == b.Atom
	case KInt:
		return a.Int == b.Int
	case KFloat:
		return a.F == b.F
	case KNil:
		return true
	case KList:
		return m.unify(a.Args[0], b.Args[0]) && m.unify(a.Args[1], b.Args[1])
	case KStruct:
		if a.Atom != b.Atom || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !m.unify(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func identical(a, b *Cell) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KRef:
		return false
	case KAtom:
		return a.Atom == b.Atom
	case KInt:
		return a.Int == b.Int
	case KFloat:
		return a.F == b.F
	case KNil:
		return true
	case KList, KStruct:
		if a.Atom != b.Atom || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !identical(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
