package wam

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

// num is the evaluated value of an arithmetic operand.
type num struct {
	isFloat bool
	i       int32
	f       float32
}

func (m *Machine) numArg(c *Cell) (num, bool) {
	c = deref(c)
	switch c.Kind {
	case KInt:
		return num{i: c.Int}, true
	case KFloat:
		return num{isFloat: true, f: c.F}, true
	default:
		m.err = fmt.Errorf("wam: arithmetic on %v", m.readTerm(c, 8))
		return num{}, false
	}
}

func (m *Machine) arith(in kcmisa.Instr) {
	a, ok := m.numArg(m.regs[in.R1])
	if !ok {
		return
	}
	b, ok := m.numArg(m.regs[in.R2])
	if !ok {
		return
	}
	if a.isFloat || b.isFloat {
		af, bf := a.f, b.f
		if !a.isFloat {
			af = float32(a.i)
		}
		if !b.isFloat {
			bf = float32(b.i)
		}
		var r float32
		switch in.Op {
		case kcmisa.Add:
			r = af + bf
		case kcmisa.Sub:
			r = af - bf
		case kcmisa.Mul:
			r = af * bf
		case kcmisa.Div:
			if bf == 0 {
				m.err = fmt.Errorf("wam: float division by zero")
				return
			}
			r = af / bf
		case kcmisa.MinOp:
			r = af
			if bf < r {
				r = bf
			}
		case kcmisa.MaxOp:
			r = af
			if bf > r {
				r = bf
			}
		default:
			m.err = fmt.Errorf("wam: %v on floats", in.Op)
			return
		}
		m.regs[in.R3] = mkFloat(r)
		return
	}
	var r int32
	switch in.Op {
	case kcmisa.Add:
		r = a.i + b.i
	case kcmisa.Sub:
		r = a.i - b.i
	case kcmisa.Mul:
		r = a.i * b.i
	case kcmisa.Div:
		if b.i == 0 {
			m.err = fmt.Errorf("wam: division by zero")
			return
		}
		r = a.i / b.i
	case kcmisa.Mod:
		if b.i == 0 {
			m.err = fmt.Errorf("wam: mod by zero")
			return
		}
		r = a.i % b.i
		if r != 0 && (r < 0) != (b.i < 0) {
			r += b.i
		}
	case kcmisa.Rem:
		if b.i == 0 {
			m.err = fmt.Errorf("wam: rem by zero")
			return
		}
		r = a.i % b.i
	case kcmisa.Band:
		r = a.i & b.i
	case kcmisa.Bor:
		r = a.i | b.i
	case kcmisa.Bxor:
		r = a.i ^ b.i
	case kcmisa.Shl:
		r = a.i << (uint32(b.i) & 31)
	case kcmisa.Shr:
		r = a.i >> (uint32(b.i) & 31)
	case kcmisa.MinOp:
		r = a.i
		if b.i < r {
			r = b.i
		}
	case kcmisa.MaxOp:
		r = a.i
		if b.i > r {
			r = b.i
		}
	}
	m.regs[in.R3] = mkInt(r)
}

func (m *Machine) compare(in kcmisa.Instr) {
	a, ok := m.numArg(m.regs[in.R1])
	if !ok {
		return
	}
	b, ok := m.numArg(m.regs[in.R2])
	if !ok {
		return
	}
	var cmp int
	if a.isFloat || b.isFloat {
		af, bf := a.f, b.f
		if !a.isFloat {
			af = float32(a.i)
		}
		if !b.isFloat {
			bf = float32(b.i)
		}
		switch {
		case af < bf:
			cmp = -1
		case af > bf:
			cmp = 1
		}
	} else {
		switch {
		case a.i < b.i:
			cmp = -1
		case a.i > b.i:
			cmp = 1
		}
	}
	var hold bool
	switch in.Op {
	case kcmisa.CmpLt:
		hold = cmp < 0
	case kcmisa.CmpLe:
		hold = cmp <= 0
	case kcmisa.CmpGt:
		hold = cmp > 0
	case kcmisa.CmpGe:
		hold = cmp >= 0
	case kcmisa.CmpEq:
		hold = cmp == 0
	case kcmisa.CmpNe:
		hold = cmp != 0
	}
	if !hold {
		m.fail()
	}
}

func (m *Machine) typeTest(in kcmisa.Instr) {
	c := deref(m.regs[in.R1])
	var hold bool
	switch in.Op {
	case kcmisa.TestVar:
		hold = c.Kind == KRef
	case kcmisa.TestNonvar:
		hold = c.Kind != KRef
	case kcmisa.TestAtom:
		hold = c.Kind == KAtom || c.Kind == KNil
	case kcmisa.TestInteger:
		hold = c.Kind == KInt
	case kcmisa.TestAtomic:
		hold = c.Kind == KAtom || c.Kind == KNil || c.Kind == KInt || c.Kind == KFloat
	}
	if !hold {
		m.fail()
	}
}

func (m *Machine) builtin(id int) {
	switch id {
	case kcmisa.BIWrite:
		fmt.Fprint(m.out, term.Display(m.readTerm(m.regs[1], 1_000_000)))
	case kcmisa.BINl:
		fmt.Fprintln(m.out)
	case kcmisa.BITab:
		c := deref(m.regs[1])
		if c.Kind == KInt {
			for i := int32(0); i < c.Int; i++ {
				fmt.Fprint(m.out, " ")
			}
		}
	case kcmisa.BIWriteln:
		fmt.Fprintln(m.out, term.Display(m.readTerm(m.regs[1], 1_000_000)))
	case kcmisa.BIHalt:
		m.halted = true
	case kcmisa.BIFunctor:
		m.biFunctor()
	case kcmisa.BIArg:
		m.biArg()
	case kcmisa.BIUniv:
		m.biUniv()
	case kcmisa.BICall:
		m.biCall()
	default:
		m.err = fmt.Errorf("wam: unknown builtin %d", id)
	}
}

func (m *Machine) biFunctor() {
	t := deref(m.regs[1])
	if t.Kind != KRef {
		var name, arity *Cell
		switch t.Kind {
		case KList:
			name = mkAtom(term.DotAtom)
			arity = mkInt(2)
		case KStruct:
			name = mkAtom(t.Atom)
			arity = mkInt(int32(len(t.Args)))
		default:
			name = t
			arity = mkInt(0)
		}
		if !m.unify(m.regs[2], name) || !m.unify(m.regs[3], arity) {
			m.fail()
		}
		return
	}
	name := deref(m.regs[2])
	ar := deref(m.regs[3])
	if ar.Kind != KInt {
		m.err = fmt.Errorf("wam: functor/3 arity not integer")
		return
	}
	if ar.Int == 0 {
		if !m.unify(t, name) {
			m.fail()
		}
		return
	}
	if name.Kind != KAtom {
		m.err = fmt.Errorf("wam: functor/3 name not atom")
		return
	}
	args := make([]*Cell, ar.Int)
	for i := range args {
		args[i] = mkVar()
	}
	if !m.unify(t, &Cell{Kind: KStruct, Atom: name.Atom, Args: args}) {
		m.fail()
	}
}

func (m *Machine) biArg() {
	n := deref(m.regs[1])
	t := deref(m.regs[2])
	if n.Kind != KInt {
		m.err = fmt.Errorf("wam: arg/3 index not integer")
		return
	}
	var args []*Cell
	switch t.Kind {
	case KList, KStruct:
		args = t.Args
	default:
		m.fail()
		return
	}
	if n.Int < 1 || int(n.Int) > len(args) {
		m.fail()
		return
	}
	if !m.unify(m.regs[3], args[n.Int-1]) {
		m.fail()
	}
}

func (m *Machine) biUniv() {
	t := deref(m.regs[1])
	if t.Kind != KRef {
		var elems []*Cell
		switch t.Kind {
		case KList:
			elems = append([]*Cell{mkAtom(term.DotAtom)}, t.Args...)
		case KStruct:
			elems = append([]*Cell{mkAtom(t.Atom)}, t.Args...)
		default:
			elems = []*Cell{t}
		}
		lst := mkNil()
		for i := len(elems) - 1; i >= 0; i-- {
			lst = mkList(elems[i], lst)
		}
		if !m.unify(m.regs[2], lst) {
			m.fail()
		}
		return
	}
	var elems []*Cell
	l := deref(m.regs[2])
	for l.Kind == KList {
		elems = append(elems, deref(l.Args[0]))
		l = deref(l.Args[1])
	}
	if l.Kind != KNil || len(elems) == 0 {
		m.err = fmt.Errorf("wam: =../2 bad list")
		return
	}
	name, args := elems[0], elems[1:]
	var result *Cell
	switch {
	case len(args) == 0:
		result = name
	case name.Kind == KAtom:
		result = &Cell{Kind: KStruct, Atom: name.Atom, Args: args}
	default:
		m.err = fmt.Errorf("wam: =../2 name not atom")
		return
	}
	if !m.unify(t, result) {
		m.fail()
	}
}

// readTerm converts a cell back to a source-level term.
func (m *Machine) readTerm(c *Cell, depth int) term.Term {
	if depth <= 0 {
		return term.Atom("...")
	}
	c = deref(c)
	switch c.Kind {
	case KRef:
		return term.Var(fmt.Sprintf("_G%p", c))
	case KAtom:
		return c.Atom
	case KInt:
		return term.Int(c.Int)
	case KFloat:
		return term.Float(c.F)
	case KNil:
		return term.NilAtom
	case KList:
		return term.Cons(m.readTerm(c.Args[0], depth-1), m.readTerm(c.Args[1], depth-1))
	case KStruct:
		args := make([]term.Term, len(c.Args))
		for i, a := range c.Args {
			args[i] = m.readTerm(a, depth-1)
		}
		return term.New(c.Atom, args...)
	}
	return term.Atom("<bad cell>")
}

// biCall implements call/1 on the reference interpreter.
func (m *Machine) biCall() {
	g := deref(m.regs[1])
	var pi term.Indicator
	switch g.Kind {
	case KAtom:
		pi = term.Ind(g.Atom, 0)
	case KStruct:
		pi = term.Ind(g.Atom, len(g.Args))
		copy(m.regs[1:1+len(g.Args)], g.Args)
	default:
		m.err = fmt.Errorf("wam: call/1 on %v", m.readTerm(g, 8))
		return
	}
	entry, ok := m.entries[pi]
	if !ok {
		m.err = fmt.Errorf("wam: call/1: undefined %v", pi)
		return
	}
	m.cp = m.p
	m.b0 = m.b
	m.p = entry
}
