// Package wam is a reference interpreter for the compiler's
// instruction set: a standard (eager choice-point) WAM built on
// Go-native cells and garbage collection instead of the KCM's tagged
// stacks, caches and shadow registers. It is deliberately a second,
// structurally different implementation of the same semantics; the
// differential tests assert that the KCM machine and this interpreter
// agree on every answer and on the inference count of every
// benchmark.
package wam

import (
	"fmt"
	"io"
	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/term"
)

// Cell is one Prolog value node.
type Cell struct {
	Kind Kind
	Ref  *Cell   // bound value (Kind == KRef, Ref != nil)
	Int  int32   // KInt
	F    float32 // KFloat
	Atom term.Atom
	Args []*Cell // KStruct (Atom/Arity = functor), KList (2 args)
	Ch   *choice // KChoice: saved cut barrier
}

// Kind discriminates cell contents.
type Kind uint8

// Cell kinds.
const (
	KRef Kind = iota // unbound when Ref == nil
	KAtom
	KInt
	KFloat
	KNil
	KList
	KStruct
	KChoice // saved cut barrier in an environment slot
)

func mkInt(v int32) *Cell      { return &Cell{Kind: KInt, Int: v} }
func mkAtom(a term.Atom) *Cell { return &Cell{Kind: KAtom, Atom: a} }
func mkVar() *Cell             { return &Cell{Kind: KRef} }
func mkNil() *Cell             { return &Cell{Kind: KNil} }
func mkFloat(f float32) *Cell  { return &Cell{Kind: KFloat, F: f} }
func mkList(h, t *Cell) *Cell  { return &Cell{Kind: KList, Args: []*Cell{h, t}} }

func deref(c *Cell) *Cell {
	for c.Kind == KRef && c.Ref != nil {
		c = c.Ref
	}
	return c
}

// env is an environment frame.
type env struct {
	prev *env
	cp   int
	ys   []*Cell
}

// choice is a choice point.
type choice struct {
	prev  *choice
	next  int // code index of the alternative
	e     *env
	cp    int
	args  []*Cell
	trail int
	b0    *choice
}

// Machine is the interpreter state.
type Machine struct {
	code    []kcmisa.Instr
	entries map[term.Indicator]int
	syms    *term.SymTab

	regs  [kcmisa.NumRegs]*Cell
	p     int
	cp    int
	e     *env
	b     *choice
	b0    *choice
	trail []*Cell
	s     []*Cell // current structure arguments (read mode)
	si    int     // next subterm index
	mode  bool    // write mode
	wargs []*Cell // write-mode target argument slice

	halted bool
	failed bool
	err    error

	out        io.Writer
	maxSteps   uint64
	Inferences uint64
	Calls      uint64
}

// Link flattens a compiled module into interpreter code with labels
// resolved to instruction indices.
func Link(m *compiler.Module) ([]kcmisa.Instr, map[term.Indicator]int, error) {
	var code []kcmisa.Instr
	entries := map[term.Indicator]int{}
	// halt_fail bootstrap at index 0.
	code = append(code, kcmisa.Instr{Op: kcmisa.HaltFail})
	bases := map[term.Indicator]int{}
	for _, pi := range m.Order {
		bases[pi] = len(code)
		entries[pi] = len(code)
		code = append(code, m.Preds[pi].Code...)
	}
	// Resolve labels.
	for _, pi := range m.Order {
		base := bases[pi]
		n := len(m.Preds[pi].Code)
		fix := func(l int) (int, error) {
			if l == kcmisa.FailLabel {
				return kcmisa.FailLabel, nil
			}
			if l < 0 || l >= n {
				return 0, fmt.Errorf("wam: %v: label %d out of range", pi, l)
			}
			return base + l, nil
		}
		for i := base; i < base+n; i++ {
			in := &code[i]
			switch in.Op {
			case kcmisa.Call, kcmisa.Execute:
				t, ok := entries[in.Proc]
				if !ok {
					return nil, nil, fmt.Errorf("wam: undefined predicate %v", in.Proc)
				}
				in.L = t
			case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try, kcmisa.Retry,
				kcmisa.Trust, kcmisa.Jump:
				l, err := fix(in.L)
				if err != nil {
					return nil, nil, err
				}
				in.L = l
			case kcmisa.SwitchOnTerm:
				t := *in.SwT
				var err error
				if t.Var, err = fix(t.Var); err != nil {
					return nil, nil, err
				}
				if t.Const, err = fix(t.Const); err != nil {
					return nil, nil, err
				}
				if t.List, err = fix(t.List); err != nil {
					return nil, nil, err
				}
				if t.Struct, err = fix(t.Struct); err != nil {
					return nil, nil, err
				}
				in.SwT = &t
			case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
				l, err := fix(in.L)
				if err != nil {
					return nil, nil, err
				}
				in.L = l
				sw := make([]kcmisa.SwEntry, len(in.Sw))
				for k, e := range in.Sw {
					l, err := fix(e.L)
					if err != nil {
						return nil, nil, err
					}
					sw[k] = kcmisa.SwEntry{Key: e.Key, L: l}
				}
				in.Sw = sw
			}
		}
	}
	return code, entries, nil
}

// New builds an interpreter for a compiled module.
func New(m *compiler.Module, out io.Writer) (*Machine, error) {
	code, entries, err := Link(m)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	return &Machine{
		code:     code,
		entries:  entries,
		syms:     m.Syms,
		out:      out,
		maxSteps: 2_000_000_000,
	}, nil
}

// SetMaxSteps bounds execution.
func (m *Machine) SetMaxSteps(n uint64) { m.maxSteps = n }
