package wam

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/term"
)

func build(t *testing.T, src, query string) (*Machine, map[term.Var]int) {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	c := compiler.New(nil)
	mod, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	goal, err := reader.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(mod, goal); err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, mod.QueryVars
}

func TestRunQueryBindings(t *testing.T) {
	m, qv := build(t, "p(1, one).\np(2, two).\n", "p(2, W).")
	res, err := m.RunQuery(qv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("query failed")
	}
	if res.Bindings[term.Var("W")].String() != "two" {
		t.Fatalf("W = %v", res.Bindings[term.Var("W")])
	}
}

func TestDerefChains(t *testing.T) {
	a := mkVar()
	b := mkVar()
	c := mkInt(7)
	a.Ref = b
	b.Ref = c
	if got := deref(a); got != c {
		t.Fatalf("deref got %v", got)
	}
	if deref(c) != c {
		t.Fatal("deref of value must be identity")
	}
	u := mkVar()
	if deref(u) != u {
		t.Fatal("deref of unbound must be itself")
	}
}

func TestUnifyAndTrail(t *testing.T) {
	m := &Machine{}
	x, y := mkVar(), mkVar()
	if !m.unify(x, mkInt(3)) {
		t.Fatal("var-int unify failed")
	}
	if !m.unify(y, x) {
		t.Fatal("var-var unify failed")
	}
	if deref(y).Int != 3 {
		t.Fatal("binding did not propagate")
	}
	if len(m.trail) != 2 {
		t.Fatalf("trail has %d entries", len(m.trail))
	}
	m.unwind(0)
	if deref(x).Kind != KRef || deref(y).Kind != KRef {
		t.Fatal("unwind did not unbind")
	}
	if m.unify(mkList(mkInt(1), mkNil()), mkList(mkInt(2), mkNil())) {
		t.Fatal("distinct lists unified")
	}
	if !m.unify(
		&Cell{Kind: KStruct, Atom: "f", Args: []*Cell{mkVar()}},
		&Cell{Kind: KStruct, Atom: "f", Args: []*Cell{mkAtom("a")}}) {
		t.Fatal("struct unify failed")
	}
	if m.unify(
		&Cell{Kind: KStruct, Atom: "f", Args: []*Cell{mkVar()}},
		&Cell{Kind: KStruct, Atom: "g", Args: []*Cell{mkVar()}}) {
		t.Fatal("different functors unified")
	}
}

func TestIdentical(t *testing.T) {
	x := mkVar()
	if !identical(x, x) {
		t.Fatal("a var is identical to itself")
	}
	if identical(mkVar(), mkVar()) {
		t.Fatal("distinct vars are not identical")
	}
	l1 := mkList(mkInt(1), mkNil())
	l2 := mkList(mkInt(1), mkNil())
	if !identical(l1, l2) {
		t.Fatal("equal ground lists are identical")
	}
}

func TestStepLimit(t *testing.T) {
	m, qv := build(t, "spin :- spin.\n", "spin.")
	m.SetMaxSteps(500)
	if _, err := m.RunQuery(qv); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestLinkUndefined(t *testing.T) {
	clauses, _ := reader.ParseAll("p :- nothere.\n")
	mod, err := compiler.New(nil).CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mod, nil); err == nil {
		t.Fatal("undefined predicate must fail to link")
	}
}

func TestWriteOutput(t *testing.T) {
	clauses, _ := reader.ParseAll("ok.\n")
	c := compiler.New(nil)
	mod, _ := c.CompileProgram(clauses)
	goal, _ := reader.ParseTerm("write(f(1, [a, B])), nl.")
	if err := c.CompileQuery(mod, goal); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	m, err := New(mod, &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunQuery(nil)
	if err != nil || !res.Success {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "f(1,[a,_G") {
		t.Fatalf("output %q", out.String())
	}
}
