package wam_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/wam"
)

// runBoth executes the same query on the KCM machine simulator and on
// the reference WAM interpreter and returns both outcomes.
func runBoth(t *testing.T, src, query string) (kcmOK bool, kcmB map[term.Var]term.Term, kcmInf uint64,
	wamOK bool, wamB map[term.Var]term.Term, wamInf uint64) {
	t.Helper()
	// KCM side.
	prog := core.MustLoad(src)
	sol, err := prog.Query(query)
	if err != nil {
		t.Fatalf("kcm %q: %v", query, err)
	}
	kcmOK, kcmB, kcmInf = sol.Success, sol.Vars, sol.Result.Stats.Inferences

	// Reference side: compile independently (fresh symbol table).
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	goal, err := reader.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	c := compiler.New(nil)
	mod, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(mod, goal); err != nil {
		t.Fatal(err)
	}
	m, err := wam.New(mod, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunQuery(mod.QueryVars)
	if err != nil {
		t.Fatalf("wam %q: %v", query, err)
	}
	return kcmOK, kcmB, kcmInf, res.Success, res.Bindings, res.Inferences
}

func bindingsString(b map[term.Var]term.Term) string {
	var parts []string
	for v, t := range b {
		s := t.String()
		if strings.Contains(s, "_G") {
			continue // fresh-variable names differ between engines
		}
		parts = append(parts, string(v)+"="+s)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// queries exercised on both engines over a shared program base.
var diffProgram = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
fact(0, 1).
fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
sum([], 0).
sum([H|T], S) :- sum(T, S1), S is S1 + H.
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
perm([], []).
perm(L, [X|P]) :- select(X, L, R), perm(R, P).
`

var diffQueries = []string{
	"app([1,2,3], [4], X).",
	"app(X, Y, [1,2,3]), X = [1,2|_].",
	"nrev([1,2,3,4,5,6,7], R).",
	"member(3, [1,2,3]).",
	"member(x, [1,2,3]).",
	"len([a,b,c,d], N).",
	"max(3, 9, M).",
	"max(9, 3, M).",
	"fact(8, F).",
	"sum([1,2,3,4,5], S).",
	"perm([1,2,3], P), P = [3|_].",
	"perm([1,2,3], [2,1,3]).",
	"select(X, [a,b,c], R), R = [a,c].",
	"X is 3 * 4 + 2, X > 10.",
	"X = f(Y), Y = g(1), X == f(g(1)).",
	"\\+ member(9, [1,2,3]).",
	"( member(2, [1,2]) -> R = yes ; R = no ).",
	"( member(9, [1,2]) -> R = yes ; R = no ).",
}

// TestDifferentialQueries cross-checks the two engines on a query
// battery: success, named bindings and the inference count must all
// agree (the engines share the compiler, so counts are comparable).
func TestDifferentialQueries(t *testing.T) {
	for _, q := range diffQueries {
		kOK, kB, kInf, wOK, wB, wInf := runBoth(t, diffProgram, q)
		if kOK != wOK {
			t.Errorf("%q: kcm success=%v, wam success=%v", q, kOK, wOK)
			continue
		}
		if kOK {
			if ks, ws := bindingsString(kB), bindingsString(wB); ks != ws {
				t.Errorf("%q: bindings differ:\n  kcm: %s\n  wam: %s", q, ks, ws)
			}
		}
		if kInf != wInf {
			t.Errorf("%q: inference counts differ: kcm=%d wam=%d", q, kInf, wInf)
		}
	}
}

// TestDifferentialSuite cross-checks the full PLM suite: both engines
// must succeed with identical inference counts and identical output.
func TestDifferentialSuite(t *testing.T) {
	for _, p := range bench.Suite {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			// KCM.
			r, err := bench.RunKCM(p, false, machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			// Reference.
			clauses, err := reader.ParseAll(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			goal, err := reader.ParseTerm(p.Query)
			if err != nil {
				t.Fatal(err)
			}
			c := compiler.New(nil)
			mod, err := c.CompileProgram(clauses)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.CompileQuery(mod, goal); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			m, err := wam.New(mod, &out)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.RunQuery(nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.Success != res.Success {
				t.Fatalf("success mismatch: kcm=%v wam=%v", r.Success, res.Success)
			}
			if r.Stats.Inferences != res.Inferences {
				t.Errorf("inference mismatch: kcm=%d wam=%d", r.Stats.Inferences, res.Inferences)
			}
			if !strings.Contains(r.Output, "_G") && r.Output != out.String() {
				t.Errorf("output mismatch:\n kcm: %q\n wam: %q", r.Output, out.String())
			}
		})
	}
}
