// Package asm links compiled predicates into a KCM code image: a
// contiguous block of 64-bit code words in the separate code address
// space, with every label and call target resolved to an absolute
// word address (all branches in KCM have absolute targets).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// Base is the code-space address of the first linked instruction.
// Address 0 holds the halt_fail bootstrap word the machine's bottom
// choice point points at.
const Base = 1

// PredStats records the static size of one linked predicate, the
// quantities compared in Table 1 of the paper.
type PredStats struct {
	Instrs int // instruction count
	Words  int // 64-bit code words (switch tables included)
}

// Image is a linked, loadable code image.
type Image struct {
	Code    []word.Word
	Entries map[term.Indicator]uint32
	Stats   map[term.Indicator]PredStats
	Order   []term.Indicator
	Syms    *term.SymTab
	// QueryVars is carried over from the module for result read-back.
	QueryVars map[term.Var]int
}

// Entry returns the code address of a predicate.
func (im *Image) Entry(pi term.Indicator) (uint32, bool) {
	a, ok := im.Entries[pi]
	return a, ok
}

// TotalInstrs sums instruction counts over the given predicates (all
// when none given).
func (im *Image) TotalInstrs(pis ...term.Indicator) int {
	if len(pis) == 0 {
		pis = im.Order
	}
	n := 0
	for _, pi := range pis {
		n += im.Stats[pi].Instrs
	}
	return n
}

// TotalWords sums code words the same way.
func (im *Image) TotalWords(pis ...term.Indicator) int {
	if len(pis) == 0 {
		pis = im.Order
	}
	n := 0
	for _, pi := range pis {
		n += im.Stats[pi].Words
	}
	return n
}

// Link lays out every predicate of the module, resolves symbolic call
// targets and intra-predicate labels, and encodes the instructions.
// The image starts with the halt_fail bootstrap word at address 0.
func Link(m *compiler.Module) (*Image, error) {
	return link(m, Base, nil, true)
}

// LinkAt links a module for incremental loading at a given code-space
// address: calls to predicates not defined in the module resolve
// through the supplied external entry table (typically the entries of
// an already loaded image). The returned image's Code contains only
// the new words; Entries are absolute.
func LinkAt(m *compiler.Module, base uint32, external map[term.Indicator]uint32) (*Image, error) {
	return link(m, base, external, false)
}

func link(m *compiler.Module, base uint32, external map[term.Indicator]uint32, bootstrap bool) (*Image, error) {
	im := &Image{
		Entries:   map[term.Indicator]uint32{},
		Stats:     map[term.Indicator]PredStats{},
		Order:     append([]term.Indicator(nil), m.Order...),
		Syms:      m.Syms,
		QueryVars: m.QueryVars,
	}
	if bootstrap {
		// Bootstrap word: halt_fail at address 0.
		bw, err := kcmisa.Encode(kcmisa.Instr{Op: kcmisa.HaltFail})
		if err != nil {
			return nil, err
		}
		im.Code = append(im.Code, bw...)
	}

	// Pass 1: compute per-predicate instruction offsets and entries.
	type layout struct {
		pred *compiler.Pred
		base uint32
		offs []int // word offset of each instruction, relative to base
	}
	layouts := make([]layout, 0, len(m.Order))
	addr := base
	for _, pi := range m.Order {
		p := m.Preds[pi]
		lo := layout{pred: p, base: addr, offs: make([]int, len(p.Code)+1)}
		o := 0
		for i, in := range p.Code {
			lo.offs[i] = o
			o += in.Words()
		}
		lo.offs[len(p.Code)] = o
		layouts = append(layouts, lo)
		im.Entries[pi] = addr
		im.Stats[pi] = PredStats{Instrs: len(p.Code), Words: o}
		addr += uint32(o)
	}

	resolve := func(lo layout, l int) (int, error) {
		if l == kcmisa.FailLabel {
			return kcmisa.FailLabel, nil
		}
		if l < 0 || l >= len(lo.pred.Code) {
			return 0, fmt.Errorf("asm: %v: label %d out of range", lo.pred.PI, l)
		}
		return int(lo.base) + lo.offs[l], nil
	}

	// Pass 2: resolve and encode.
	var missing []string
	for _, lo := range layouts {
		for _, in := range lo.pred.Code {
			r := in // copy
			switch in.Op {
			case kcmisa.Call, kcmisa.Execute:
				e, ok := im.Entries[in.Proc]
				if !ok {
					e, ok = external[in.Proc]
				}
				if !ok {
					missing = append(missing, fmt.Sprintf("%v (from %v)", in.Proc, lo.pred.PI))
					e = 0
				}
				r.L = int(e)
			case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try, kcmisa.Retry,
				kcmisa.Trust, kcmisa.Jump:
				l, err := resolve(lo, in.L)
				if err != nil {
					return nil, err
				}
				r.L = l
			case kcmisa.SwitchOnTerm:
				t := *in.SwT
				for _, p := range []*int{&t.Var, &t.Const, &t.List, &t.Struct} {
					l, err := resolve(lo, *p)
					if err != nil {
						return nil, err
					}
					*p = l
				}
				r.SwT = &t
			case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
				l, err := resolve(lo, in.L)
				if err != nil {
					return nil, err
				}
				r.L = l
				tbl := make([]kcmisa.SwEntry, len(in.Sw))
				for i, e := range in.Sw {
					l, err := resolve(lo, e.L)
					if err != nil {
						return nil, err
					}
					tbl[i] = kcmisa.SwEntry{Key: e.Key, L: l}
				}
				r.Sw = tbl
			}
			ws, err := kcmisa.Encode(r)
			if err != nil {
				return nil, err
			}
			im.Code = append(im.Code, ws...)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("asm: undefined predicates: %s", strings.Join(missing, ", "))
	}
	if base+uint32(len(im.Code))-boot(bootstrap) != addr {
		return nil, fmt.Errorf("asm: layout mismatch: emitted %d words, expected %d", len(im.Code), addr-base)
	}
	return im, nil
}

// Disasm renders the image as a listing, useful for debugging and for
// the kcmasm tool.
func Disasm(im *Image) string {
	var b strings.Builder
	fetch := func(a uint32) word.Word { return im.Code[a] }
	entryAt := map[uint32]term.Indicator{}
	for pi, a := range im.Entries {
		entryAt[a] = pi
	}
	for a := uint32(0); a < uint32(len(im.Code)); {
		if pi, ok := entryAt[a]; ok {
			fmt.Fprintf(&b, "\n%v:\n", pi)
		}
		in, n := kcmisa.Decode(fetch, a)
		fmt.Fprintf(&b, "%6d  %v\n", a, in)
		a += uint32(n)
	}
	return b.String()
}

// boot returns the bootstrap word count of an image layout.
func boot(with bool) uint32 {
	if with {
		return Base
	}
	return 0
}
