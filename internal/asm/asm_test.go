package asm

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/word"
)

func linkSrc(t *testing.T, src string) (*Image, *compiler.Module) {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	c := compiler.New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	im, err := Link(m)
	if err != nil {
		t.Fatal(err)
	}
	return im, m
}

const src = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
main :- app([1], [2], _).
`

func fetchImage(im *Image) kcmisa.Fetcher {
	return func(a uint32) word.Word { return im.Code[a] }
}

func TestLinkLayout(t *testing.T) {
	im, m := linkSrc(t, src)
	// Bootstrap halt_fail at address 0; first predicate at Base.
	in, _ := kcmisa.Decode(fetchImage(im), 0)
	if in.Op != kcmisa.HaltFail {
		t.Fatalf("address 0 holds %v", in)
	}
	if e, _ := im.Entry(term.Ind("app", 3)); e != Base {
		t.Fatalf("first entry at %d", e)
	}
	// Sizes must agree with the module code.
	for _, pi := range m.Order {
		st := im.Stats[pi]
		if st.Instrs != len(m.Preds[pi].Code) {
			t.Errorf("%v: instr count %d vs code %d", pi, st.Instrs, len(m.Preds[pi].Code))
		}
		w := 0
		for _, in := range m.Preds[pi].Code {
			w += in.Words()
		}
		if st.Words != w {
			t.Errorf("%v: word count %d vs %d", pi, st.Words, w)
		}
	}
	if im.TotalInstrs() <= 0 || im.TotalWords() < im.TotalInstrs() {
		t.Fatal("totals inconsistent")
	}
}

func TestCallTargetsResolved(t *testing.T) {
	im, _ := linkSrc(t, src)
	appEntry, _ := im.Entry(term.Ind("app", 3))
	// Walk the whole image: every call/execute must target a linked
	// entry; every branch must stay inside the image or be FailLabel.
	entries := map[int]bool{}
	for _, a := range im.Entries {
		entries[int(a)] = true
	}
	for a := uint32(1); a < uint32(len(im.Code)); {
		in, n := kcmisa.Decode(fetchImage(im), a)
		switch in.Op {
		case kcmisa.Call, kcmisa.Execute:
			if !entries[in.L] {
				t.Fatalf("@%d: %v targets %d, not an entry", a, in, in.L)
			}
		case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try, kcmisa.Retry, kcmisa.Trust:
			if in.L != kcmisa.FailLabel && (in.L < 1 || in.L >= len(im.Code)) {
				t.Fatalf("@%d: %v branch out of image", a, in)
			}
		}
		a += uint32(n)
	}
	// The recursive execute in app/3 must point back at app's entry.
	found := false
	for a := appEntry; a < uint32(len(im.Code)); {
		in, n := kcmisa.Decode(fetchImage(im), a)
		if in.Op == kcmisa.Execute && in.L == int(appEntry) {
			found = true
		}
		a += uint32(n)
	}
	if !found {
		t.Fatal("no self-recursive execute found in app/3")
	}
}

func TestUndefinedPredicate(t *testing.T) {
	clauses, _ := reader.ParseAll("p :- missing(1).\n")
	c := compiler.New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(m); err == nil || !strings.Contains(err.Error(), "missing/1") {
		t.Fatalf("want undefined-predicate error, got %v", err)
	}
}

func TestDisasm(t *testing.T) {
	im, _ := linkSrc(t, src)
	d := Disasm(im)
	for _, want := range []string{"app/3:", "main/0:", "switch_on_term", "execute", "halt_fail"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestEncodedImageDecodesEverywhere(t *testing.T) {
	// Decoding the image instruction by instruction must cover it
	// exactly (no overlap, no gap).
	im, _ := linkSrc(t, src)
	a := uint32(0)
	for a < uint32(len(im.Code)) {
		_, n := kcmisa.Decode(fetchImage(im), a)
		if n <= 0 {
			t.Fatalf("decode at %d made no progress", a)
		}
		a += uint32(n)
	}
	if a != uint32(len(im.Code)) {
		t.Fatalf("decode overran image: %d vs %d", a, len(im.Code))
	}
}
