package word

import "testing"

// TestWithGCBitIsolation exhaustively checks that WithGC rewrites only
// bits 57..56: for every type, every zone and all four GC values the
// type, zone and value fields must come back untouched, and the GC
// field must read back exactly what was written. The collector relies
// on this — it stamps mark and link bits onto live heap cells in
// place and must not corrupt them.
func TestWithGCBitIsolation(t *testing.T) {
	values := []uint32{0, 1, 0x0010000, 0x0FFFFFFF, 0xFFFFFFFF}
	for ti := 0; ti < 16; ti++ {
		for zi := 0; zi < 8; zi++ {
			for _, v := range values {
				w := Make(Type(ti), Zone(zi), v)
				for gc := uint8(0); gc < 4; gc++ {
					g := w.WithGC(gc)
					if g.Type() != Type(ti) {
						t.Fatalf("WithGC(%d) on %v/%v/%#x changed type to %v",
							gc, Type(ti), Zone(zi), v, g.Type())
					}
					if g.Zone() != Zone(zi) {
						t.Fatalf("WithGC(%d) on %v/%v/%#x changed zone to %v",
							gc, Type(ti), Zone(zi), v, g.Zone())
					}
					if g.Value() != v {
						t.Fatalf("WithGC(%d) on %v/%v/%#x changed value to %#x",
							gc, Type(ti), Zone(zi), v, g.Value())
					}
					if g.GC() != gc {
						t.Fatalf("WithGC(%d) on %v/%v/%#x reads back GC %d",
							gc, Type(ti), Zone(zi), v, g.GC())
					}
					if got := g.Marked(); got != (gc&GCMark != 0) {
						t.Fatalf("Marked() = %v with GC bits %02b", got, gc)
					}
					if back := g.WithGC(0); back != w {
						t.Fatalf("WithGC(%d) then WithGC(0) on %v/%v/%#x: %#x != %#x",
							gc, Type(ti), Zone(zi), v, uint64(back), uint64(w))
					}
				}
			}
		}
	}
}

// TestWithGCOverwrites checks that WithGC replaces rather than ORs:
// going from bits 11 to 01 must clear the link bit.
func TestWithGCOverwrites(t *testing.T) {
	w := Make(TList, ZGlobal, 0x123456).WithGC(GCMark | GCLink)
	if w.GC() != GCMark|GCLink {
		t.Fatalf("setup: GC = %02b", w.GC())
	}
	w = w.WithGC(GCMark)
	if w.GC() != GCMark {
		t.Fatalf("WithGC(GCMark) left GC = %02b", w.GC())
	}
	// Out-of-range input is masked to the field width.
	w = w.WithGC(0xFF)
	if w.GC() != 3 {
		t.Fatalf("WithGC(0xFF) left GC = %02b", w.GC())
	}
}
