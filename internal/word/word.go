// Package word defines the KCM 64-bit tagged data word.
//
// A KCM word holds a 32-bit value part (bits 31..0) and a 32-bit tag
// part (bits 63..32). Inside the tag, bits 51..48 encode one of 16
// data types, bits 55..52 encode the virtual-memory zone the value
// points into (when the word is used as an address), and bits 57..56
// are reserved for the garbage collector. The remaining tag bits are
// unused by the current architecture, exactly as in the paper
// (figures 2 and 7).
package word

import "fmt"

// Word is one 64-bit KCM entity: either a data word (tag + value) or
// an encoded instruction. All addresses in KCM are word addresses.
type Word uint64

// Field positions inside a data word.
const (
	typeShift = 48
	typeMask  = 0xF
	zoneShift = 52
	zoneMask  = 0xF
	gcShift   = 56
	gcMask    = 0x3
	valueMask = 0xFFFFFFFF
)

// Type is the 4-bit data type stored in bits 51..48 of the tag part.
type Type uint8

// The 16 KCM data types. The paper names integer, floating point,
// variable (reference), list, data pointer and code pointer
// explicitly; the rest complete the set used by the SEPIA-derived
// run-time system.
const (
	TRef      Type = iota // unbound variable / reference chain link
	TAtom                 // atomic constant (interned symbol)
	TInt                  // 32-bit signed integer
	TFloat                // 32-bit IEEE float
	TNil                  // empty list []
	TList                 // pointer to a cons cell (two words) on the global stack
	TStruct               // pointer to a functor word followed by the arguments
	TFunc                 // functor word: atom index + arity packed in the value
	TDataPtr              // untyped data pointer (stack maintenance, saved registers)
	TCodePtr              // pointer into code space (continuations, alternatives)
	TTrailPtr             // saved trail pointer inside choice points
	TEnvPtr               // saved environment pointer inside frames
	TChpPtr               // saved choice-point pointer
	TImm                  // raw immediate used by the microcode (counts, flags)
	TSusp                 // suspension (coroutining hook; unused by the benchmarks)
	TInvalid              // trap value: dereferencing or addressing it faults
)

var typeNames = [16]string{
	"ref", "atom", "int", "float", "nil", "list", "struct", "func",
	"dptr", "cptr", "trptr", "eptr", "bptr", "imm", "susp", "invalid",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Pointer reports whether a word of this type carries a data-space
// address in its value part.
func (t Type) Pointer() bool {
	switch t {
	case TRef, TList, TStruct, TDataPtr, TTrailPtr, TEnvPtr, TChpPtr:
		return true
	}
	return false
}

// Zone is the 4-bit virtual-memory zone stored in bits 55..52.
// Stacks, heaps and other data areas are mapped to zones; the
// zone-check unit verifies that an address of zone z actually points
// between the configured minimum and maximum address of z.
type Zone uint8

// The zones used by the KCM run-time system. ZNone marks non-address
// data (integers, atoms...).
const (
	ZNone   Zone = iota
	ZGlobal      // global stack: lists, structures, heap variables
	ZLocal       // local stack: environments
	ZChoice      // choice-point stack (split-stack model)
	ZTrail       // trail stack
	ZStatic      // static data area (compiled literals, tables)
	ZCode        // code space (separate address space)
	ZFree        // unmapped
)

var zoneNames = [8]string{"none", "global", "local", "choice", "trail", "static", "code", "free"}

func (z Zone) String() string {
	if int(z) < len(zoneNames) {
		return zoneNames[z]
	}
	return fmt.Sprintf("zone(%d)", uint8(z))
}

// Make builds a data word from a type, a zone and a 32-bit value.
func Make(t Type, z Zone, v uint32) Word {
	return Word(uint64(v) | uint64(t&typeMask)<<typeShift | uint64(z&zoneMask)<<zoneShift)
}

// Type extracts the 4-bit data type (bits 51..48).
func (w Word) Type() Type { return Type(w >> typeShift & typeMask) }

// Zone extracts the 4-bit zone field (bits 55..52).
func (w Word) Zone() Zone { return Zone(w >> zoneShift & zoneMask) }

// Value extracts the 32-bit value part (bits 31..0).
func (w Word) Value() uint32 { return uint32(w & valueMask) }

// The two GC bits (bits 57..56) as used by the heap collector
// (internal/gc): GCMark flags a live cell during the mark phase, and
// GCLink additionally flags a cell that temporarily holds a
// pointer-reversal link instead of its own contents. Outside a
// collection every cell has both bits clear.
const (
	GCMark uint8 = 1 << 0
	GCLink uint8 = 1 << 1
)

// GC extracts the two garbage-collection bits (bits 57..56).
func (w Word) GC() uint8 { return uint8(w >> gcShift & gcMask) }

// Marked reports whether the GCMark bit is set.
func (w Word) Marked() bool { return w.GC()&GCMark != 0 }

// WithGC returns the word with its GC bits replaced. The TVM
// (tag-value multiplexer) performs this in hardware.
func (w Word) WithGC(bits uint8) Word {
	return w&^(gcMask<<gcShift) | Word(bits&gcMask)<<gcShift
}

// WithValue returns the word with its value part replaced.
func (w Word) WithValue(v uint32) Word {
	return w&^valueMask | Word(v)
}

// Swapped exchanges the tag and value halves of the word, one of the
// TVM's 64-bit operations.
func (w Word) Swapped() Word { return w<<32 | w>>32 }

// Int interprets the value part as a signed 32-bit integer.
func (w Word) Int() int32 { return int32(w.Value()) }

// Addr interprets the value part as a word address. Only the 28 least
// significant bits are used by the current implementation of the
// architecture; the upper 4 bits must be zero (checked by the
// zone-check unit, not here).
func (w Word) Addr() uint32 { return w.Value() }

// IsRef reports whether the word is a reference (possibly unbound).
func (w Word) IsRef() bool { return w.Type() == TRef }

// Convenience constructors for the run-time system.

// FromInt builds an integer data word.
func FromInt(v int32) Word { return Make(TInt, ZNone, uint32(v)) }

// FromFloat builds a 32-bit IEEE float data word. The bits are the
// raw IEEE-754 single encoding, as handled by the KCM FPU.
func FromFloat(bits uint32) Word { return Make(TFloat, ZNone, bits) }

// FromAtom builds an atomic-constant word from an interned atom index.
func FromAtom(idx uint32) Word { return Make(TAtom, ZNone, idx) }

// Nil is the empty-list constant.
func Nil() Word { return Make(TNil, ZNone, 0) }

// Ref builds a reference into zone z at address a. An unbound
// variable is a reference pointing to itself.
func Ref(z Zone, a uint32) Word { return Make(TRef, z, a) }

// ListPtr builds a list pointer to a cons cell at address a on the
// global stack.
func ListPtr(a uint32) Word { return Make(TList, ZGlobal, a) }

// StructPtr builds a structure pointer to the functor word at a.
func StructPtr(a uint32) Word { return Make(TStruct, ZGlobal, a) }

// Functor packs an atom index and an arity into a functor word. The
// arity occupies the low 8 bits of the value, the atom index the
// remaining 24, so up to 16M distinct symbols and arity 255.
func Functor(atom uint32, arity int) Word {
	return Make(TFunc, ZNone, atom<<8|uint32(arity)&0xFF)
}

// FunctorAtom extracts the atom index of a functor word.
func (w Word) FunctorAtom() uint32 { return w.Value() >> 8 }

// FunctorArity extracts the arity of a functor word.
func (w Word) FunctorArity() int { return int(w.Value() & 0xFF) }

// CodePtr builds a code-space pointer (continuation, alternative...).
func CodePtr(a uint32) Word { return Make(TCodePtr, ZCode, a) }

// DataPtr builds an untyped data pointer into zone z.
func DataPtr(z Zone, a uint32) Word { return Make(TDataPtr, z, a) }

// Invalid returns the trap word written into freshly popped or
// protected cells when the machine runs with debug scrubbing on.
func Invalid() Word { return Make(TInvalid, ZNone, 0xDEAD) }

func (w Word) String() string {
	t := w.Type()
	switch t {
	case TInt:
		return fmt.Sprintf("int(%d)", w.Int())
	case TAtom:
		return fmt.Sprintf("atom(#%d)", w.Value())
	case TNil:
		return "[]"
	case TFunc:
		return fmt.Sprintf("func(#%d/%d)", w.FunctorAtom(), w.FunctorArity())
	case TFloat:
		return fmt.Sprintf("float(0x%08x)", w.Value())
	default:
		if t.Pointer() {
			return fmt.Sprintf("%s(%s:%#x)", t, w.Zone(), w.Value())
		}
		return fmt.Sprintf("%s(%#x)", t, w.Value())
	}
}
