package word

import (
	"testing"
	"testing/quick"
)

func TestFieldRoundtrip(t *testing.T) {
	f := func(tp uint8, zn uint8, v uint32) bool {
		ty := Type(tp & 0xF)
		z := Zone(zn & 0xF)
		w := Make(ty, z, v)
		return w.Type() == ty && w.Zone() == z && w.Value() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundtrip(t *testing.T) {
	f := func(v int32) bool {
		w := FromInt(v)
		return w.Type() == TInt && w.Int() == v && w.Zone() == ZNone
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFunctorPacking(t *testing.T) {
	f := func(atom uint32, arity uint8) bool {
		a := atom & 0xFFFFFF
		w := Functor(a, int(arity))
		return w.Type() == TFunc && w.FunctorAtom() == a && w.FunctorArity() == int(arity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCBits(t *testing.T) {
	w := FromInt(-1) // all value bits set
	for bits := uint8(0); bits < 4; bits++ {
		g := w.WithGC(bits)
		if g.GC() != bits {
			t.Errorf("WithGC(%d).GC() = %d", bits, g.GC())
		}
		if g.Value() != w.Value() || g.Type() != w.Type() {
			t.Errorf("WithGC disturbed value or type")
		}
	}
}

func TestSwappedInvolution(t *testing.T) {
	f := func(v uint64) bool {
		w := Word(v)
		return w.Swapped().Swapped() == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithValue(t *testing.T) {
	w := Make(TList, ZGlobal, 0x1234)
	w2 := w.WithValue(0x9999)
	if w2.Value() != 0x9999 || w2.Type() != TList || w2.Zone() != ZGlobal {
		t.Fatalf("WithValue broke fields: %v", w2)
	}
}

func TestPointerClassification(t *testing.T) {
	ptr := []Type{TRef, TList, TStruct, TDataPtr, TTrailPtr, TEnvPtr, TChpPtr}
	nonPtr := []Type{TAtom, TInt, TFloat, TNil, TFunc, TImm, TSusp, TInvalid, TCodePtr}
	for _, ty := range ptr {
		if !ty.Pointer() {
			t.Errorf("%v should be a pointer type", ty)
		}
	}
	for _, ty := range nonPtr {
		if ty.Pointer() && ty != TCodePtr {
			t.Errorf("%v should not be a data pointer type", ty)
		}
	}
}

func TestSelfReferenceIsUnbound(t *testing.T) {
	r := Ref(ZGlobal, 0x42)
	if !r.IsRef() || r.Addr() != 0x42 || r.Zone() != ZGlobal {
		t.Fatalf("bad ref %v", r)
	}
}

func TestStringForms(t *testing.T) {
	cases := map[Word]string{
		FromInt(42):           "int(42)",
		FromInt(-1):           "int(-1)",
		Nil():                 "[]",
		Functor(3, 2):         "func(#3/2)",
		Ref(ZLocal, 0x10):     "ref(local:0x10)",
		ListPtr(0x20):         "list(global:0x20)",
		DataPtr(ZTrail, 0x30): "dptr(trail:0x30)",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%#x: got %q, want %q", uint64(w), got, want)
		}
	}
}

func TestZoneAndTypeNames(t *testing.T) {
	if ZGlobal.String() != "global" || ZLocal.String() != "local" {
		t.Error("zone names wrong")
	}
	if TRef.String() != "ref" || TStruct.String() != "struct" {
		t.Error("type names wrong")
	}
}
