package compiler

import (
	"fmt"
	"sort"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

// Unreachable-predicate warnings. The compiler sees the module before
// linking, when call targets are still symbolic, so the call graph is
// exact over source predicates: an edge per Call/Execute Proc. Every
// predicate no in-module clause calls is a root — it is presumed part
// of the module's interface (a consulted program may be called from
// anywhere) — so only predicates orphaned inside call cycles warn.
// Self-recursion does not count as being called: a library predicate
// like append/3 is its own only caller and is still interface.
// A module using the call/1 escape gets no warnings at all: the
// meta-call can reach any predicate whose functor exists at runtime.

// warnUnreachable populates m.Warnings with one line per predicate
// that no root can reach.
func warnUnreachable(m *Module) {
	calls := map[term.Indicator][]term.Indicator{}
	meta := false
	for pi, p := range m.Preds {
		for _, in := range p.Code {
			switch in.Op {
			case kcmisa.Call, kcmisa.Execute:
				if in.Proc.Name != "" {
					calls[pi] = append(calls[pi], in.Proc)
				}
			case kcmisa.Builtin:
				if in.N == kcmisa.BICall {
					meta = true
				}
			}
		}
	}
	if meta {
		return
	}
	var roots []term.Indicator
	called := map[term.Indicator]bool{}
	for from, outs := range calls {
		for _, t := range outs {
			if t != from {
				called[t] = true
			}
		}
	}
	for pi := range m.Preds {
		if !called[pi] {
			roots = append(roots, pi)
		}
	}
	reach := map[term.Indicator]bool{}
	var visit func(pi term.Indicator)
	visit = func(pi term.Indicator) {
		if reach[pi] {
			return
		}
		reach[pi] = true
		for _, t := range calls[pi] {
			visit(t)
		}
	}
	for _, pi := range roots {
		visit(pi)
	}
	var dead []string
	for pi := range m.Preds {
		if !reach[pi] {
			dead = append(dead, pi.String())
		}
	}
	sort.Strings(dead)
	for _, name := range dead {
		m.Warnings = append(m.Warnings,
			fmt.Sprintf("predicate %s is unreachable from any entry point", name))
	}
}
