package compiler

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

// Dynamic-database entry points. The clause store (internal/dyndb)
// recompiles a predicate's whole clause chain on every mutation, so
// first-argument indexing — the switch_on_term dispatch compilePred
// generates — is regenerated incrementally, and a goal is compiled
// once into a position-independent module linked above whatever delta
// a machine currently carries.

// SetAuxBase seeds the auxiliary-predicate counter, so control
// constructs in separately compiled blocks sharing one code space get
// non-colliding $aux<N> names. AuxBase reads the counter back after a
// compile, to be carried into the next one.
func (c *Compiler) SetAuxBase(n int) { c.auxN = n }

// AuxBase returns the current auxiliary-predicate counter.
func (c *Compiler) AuxBase() int { return c.auxN }

// StubPred is the compiled form of a dynamic predicate with no
// clauses: a single fail instruction, so calling it backtracks like
// any exhausted predicate.
func StubPred(pi term.Indicator) *Pred {
	return &Pred{PI: pi, Code: []kcmisa.Instr{{Op: kcmisa.Fail}}}
}

// CompileClauses compiles one predicate's full clause chain into a
// standalone module: the predicate itself (with its switch_on_term
// dispatch regenerated for the new chain) plus any control
// auxiliaries its bodies need. Every clause must define pi; an empty
// chain compiles to the fail stub.
func (c *Compiler) CompileClauses(pi term.Indicator, clauses []term.Term) (*Module, error) {
	for _, t := range clauses {
		head, _ := splitClause(t)
		if head == nil {
			return nil, fmt.Errorf("compiler: %v is a directive, not a clause", t)
		}
		hpi, ok := term.TermIndicator(head)
		if !ok {
			return nil, fmt.Errorf("compiler: clause head %v is not callable", head)
		}
		if hpi != pi {
			return nil, fmt.Errorf("compiler: clause for %v in the chain of %v", hpi, pi)
		}
	}
	if len(clauses) == 0 {
		return &Module{
			Preds: map[term.Indicator]*Pred{pi: StubPred(pi)},
			Order: []term.Indicator{pi},
			Syms:  c.syms,
		}, nil
	}
	return c.CompileProgram(clauses)
}

// CompileGoal compiles ?- goal into a standalone module holding only
// the $query/0 entry and its control auxiliaries. Calls into program
// predicates stay symbolic; the caller links the module against an
// entry table (asm.LinkAt).
func (c *Compiler) CompileGoal(goal term.Term) (*Module, error) {
	m := &Module{Preds: map[term.Indicator]*Pred{}, Syms: c.syms}
	if err := c.CompileQuery(m, goal); err != nil {
		return nil, err
	}
	return m, nil
}
