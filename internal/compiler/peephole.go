package compiler

import (
	"repro/internal/analysis"
	"repro/internal/kcmisa"
)

// peepholeLastAlt optimises the code of a clause that can never be
// retried (the textually last alternative, or a single clause): its
// argument registers are dead after head unification, so a head
// variable that is only moved into an argument register later can be
// unified straight into it. This is the standard WAM allocation for
// e.g. append/3, where the recursive call's arguments come directly
// out of unify_variable; the non-last alternatives cannot do it
// because a shallow retry needs A1..An intact.
//
// Pattern: UnifyVarX/GetVarX Xs ... PutValX Xs, At  ==>  def At,
// provided nothing between defines or uses At, nothing else uses Xs,
// and no control transfer or call intervenes.
//
// The def/use facts come from the analysis package's last-alternative
// effect model (analysis.LastAltEffects), the same model the
// post-compile verifier and the differential check use, so the
// rewriter and its checker cannot drift apart.
func peepholeLastAlt(code []kcmisa.Instr) []kcmisa.Instr {

again:
	for i := range code {
		in := code[i]
		if in.Op != kcmisa.PutValX {
			continue
		}
		src, dst := in.R1, in.R2
		def := -1
		for j := i - 1; j >= 0; j-- {
			d := code[j]
			e := analysis.LastAltEffects(d)
			if e.Barrier {
				break
			}
			if e.Defs.Has(src) {
				if d.Op == kcmisa.UnifyVarX || d.Op == kcmisa.GetVarX || d.Op == kcmisa.PutVarX {
					def = j
				}
				break
			}
			if e.Uses.Has(src) || e.Uses.Has(dst) || e.Defs.Has(dst) {
				break
			}
		}
		if def < 0 {
			continue
		}
		// src must be dead after the move. A call boundary kills every
		// register, so the scan can stop there.
		for j := i + 1; j < len(code); j++ {
			e := analysis.LastAltEffects(code[j])
			if e.Uses.Has(src) {
				def = -1
				break
			}
			if e.KillsAll || e.Defs.Has(src) {
				break
			}
		}
		if def < 0 {
			continue
		}
		if code[def].Op == kcmisa.PutVarX && code[def].R2 == src {
			code[def].R2 = dst
		}
		code[def].R1 = dst
		code = append(code[:i], code[i+1:]...)
		goto again
	}
	return code
}
