package compiler

import "repro/internal/kcmisa"

// peepholeLastAlt optimises the code of a clause that can never be
// retried (the textually last alternative, or a single clause): its
// argument registers are dead after head unification, so a head
// variable that is only moved into an argument register later can be
// unified straight into it. This is the standard WAM allocation for
// e.g. append/3, where the recursive call's arguments come directly
// out of unify_variable; the non-last alternatives cannot do it
// because a shallow retry needs A1..An intact.
//
// Pattern: UnifyVarX/GetVarX Xs ... PutValX Xs, At  ==>  def At,
// provided nothing between defines or uses At, nothing else uses Xs,
// and no control transfer or call intervenes.
func peepholeLastAlt(code []kcmisa.Instr) []kcmisa.Instr {

again:
	for i := range code {
		in := code[i]
		if in.Op != kcmisa.PutValX {
			continue
		}
		src, dst := in.R1, in.R2
		def := -1
		for j := i - 1; j >= 0; j-- {
			d := code[j]
			if barrier(d) {
				break
			}
			if regDefs(d, src) {
				if d.Op == kcmisa.UnifyVarX || d.Op == kcmisa.GetVarX || d.Op == kcmisa.PutVarX {
					def = j
				}
				break
			}
			if regUses(d, src) || regUses(d, dst) || regDefs(d, dst) {
				break
			}
		}
		if def < 0 {
			continue
		}
		// src must be dead after the move.
		for j := i + 1; j < len(code); j++ {
			if regUses(code[j], src) {
				def = -1
				break
			}
			if regDefs(code[j], src) {
				break
			}
		}
		if def < 0 {
			continue
		}
		if code[def].Op == kcmisa.PutVarX && code[def].R2 == src {
			code[def].R2 = dst
		}
		code[def].R1 = dst
		code = append(code[:i], code[i+1:]...)
		goto again
	}
	return code
}

// barrier reports whether an instruction invalidates register
// tracking (calls, escapes, control transfers, alternatives).
func barrier(in kcmisa.Instr) bool {
	switch in.Op {
	case kcmisa.Call, kcmisa.Execute, kcmisa.Builtin, kcmisa.Proceed,
		kcmisa.Jump, kcmisa.Fail, kcmisa.SwitchOnTerm, kcmisa.SwitchOnConst,
		kcmisa.SwitchOnStruct, kcmisa.Try, kcmisa.Retry, kcmisa.Trust,
		kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.TrustMe,
		kcmisa.Halt, kcmisa.HaltFail:
		return true
	}
	return false
}

// regDefs reports whether the instruction writes register r.
// Neck is treated as defining nothing: in a last alternative it never
// materialises a choice point (the shallow flag is always clear).
func regDefs(in kcmisa.Instr, r kcmisa.Reg) bool {
	switch in.Op {
	case kcmisa.GetVarX, kcmisa.UnifyVarX, kcmisa.MoveYX, kcmisa.LoadConst:
		return in.R1 == r
	case kcmisa.UnifyLocX:
		return in.R1 == r // may be rewritten by globalisation
	case kcmisa.PutVarX:
		return in.R1 == r || in.R2 == r
	case kcmisa.PutValX, kcmisa.PutValY, kcmisa.PutUnsafeY, kcmisa.PutConst,
		kcmisa.PutNil, kcmisa.PutList, kcmisa.PutStruct:
		return in.R2 == r
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod:
		return in.R3 == r
	}
	return false
}

// regUses reports whether the instruction reads register r.
func regUses(in kcmisa.Instr, r kcmisa.Reg) bool {
	switch in.Op {
	case kcmisa.GetVarX:
		return in.R2 == r
	case kcmisa.PutValX:
		return in.R1 == r
	case kcmisa.GetValX:
		return in.R1 == r || in.R2 == r
	case kcmisa.GetConst, kcmisa.GetNil, kcmisa.GetList, kcmisa.GetStruct:
		return in.R2 == r
	case kcmisa.UnifyValX, kcmisa.UnifyLocX, kcmisa.MoveXY, kcmisa.TestVar,
		kcmisa.TestNonvar, kcmisa.TestAtom, kcmisa.TestInteger, kcmisa.TestAtomic:
		return in.R1 == r
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod,
		kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe,
		kcmisa.CmpEq, kcmisa.CmpNe, kcmisa.IdentEq, kcmisa.IdentNe,
		kcmisa.UnifyRegs:
		return in.R1 == r || in.R2 == r
	}
	return false
}
