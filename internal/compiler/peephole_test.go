package compiler

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/kcmisa"
	"repro/internal/term"
)

// TestPeepholeLastAlt drives the rewriter over hand-built edge cases
// and uses the analyzer as oracle: every output must preserve the
// clause's upward-exposed register set under the last-alternative
// effect model, and the structural expectation (rewritten or not)
// must hold.
func TestPeepholeLastAlt(t *testing.T) {
	i := func(op kcmisa.Op, fields ...func(*kcmisa.Instr)) kcmisa.Instr {
		in := kcmisa.Instr{Op: op, L: kcmisa.FailLabel}
		for _, f := range fields {
			f(&in)
		}
		return in
	}
	r1 := func(r kcmisa.Reg) func(*kcmisa.Instr) { return func(in *kcmisa.Instr) { in.R1 = r } }
	r2 := func(r kcmisa.Reg) func(*kcmisa.Instr) { return func(in *kcmisa.Instr) { in.R2 = r } }
	n := func(v int) func(*kcmisa.Instr) { return func(in *kcmisa.Instr) { in.N = v } }

	cases := []struct {
		name    string
		code    []kcmisa.Instr
		rewrite bool // expect the PutValX to be eliminated
	}{
		{
			name: "basic unify-into-arg",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: true,
		},
		{
			name: "across neck",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.Neck, n(1)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: true,
		},
		{
			name: "call barrier between def and move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.Call, n(1)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: false,
		},
		{
			name: "builtin barrier between def and move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.Builtin, n(kcmisa.BINl)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: false,
		},
		{
			name: "dst redefined between def and move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.PutNil, r2(1)), // A1 written in between
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: false,
		},
		{
			name: "dst used between def and move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(2)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.GetNil, r2(1)), // A1 read in between
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(2)),
			},
			rewrite: false,
		},
		{
			name: "src live after move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.MoveXY, r1(5), n(0)), // X5 still read afterwards
				i(kcmisa.Execute, n(1)),
			},
			rewrite: false,
		},
		{
			name: "src read by arithmetic after move",
			code: []kcmisa.Instr{
				i(kcmisa.GetList, r2(1)),
				i(kcmisa.UnifyVarX, r1(5)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Add, r1(5), r2(6), func(in *kcmisa.Instr) { in.R3 = 7 }),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: false,
		},
		{
			name: "putvar pair rewrite",
			code: []kcmisa.Instr{
				i(kcmisa.PutVarX, r1(5), r2(5)),
				i(kcmisa.PutValX, r1(5), r2(1)),
				i(kcmisa.Execute, n(1)),
			},
			rewrite: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := append([]kcmisa.Instr(nil), tc.code...)
			out := peepholeLastAlt(append([]kcmisa.Instr(nil), tc.code...))

			hasMove := false
			for _, in := range out {
				if in.Op == kcmisa.PutValX {
					hasMove = true
				}
			}
			if tc.rewrite && hasMove {
				t.Errorf("expected rewrite, move survived: %v", out)
			}
			if !tc.rewrite && !hasMove {
				t.Errorf("unexpected rewrite: %v", out)
			}
			if tc.rewrite && len(out) != len(orig)-1 {
				t.Errorf("rewrite should drop exactly the move: %d -> %d instrs",
					len(orig), len(out))
			}

			// Oracle: the rewrite must preserve the upward-exposed
			// register set in the last-alternative model.
			got := analysis.UpwardExposedLastAlt(out)
			want := analysis.UpwardExposedLastAlt(orig)
			if got != want {
				t.Errorf("upward-exposed changed: %v -> %v", want, got)
			}
		})
	}
}

// TestPeepholeVerifiedDifferential exercises the wrapper the compiler
// uses under Verify.
func TestPeepholeVerifiedDifferential(t *testing.T) {
	code := []kcmisa.Instr{
		{Op: kcmisa.GetList, R2: 1},
		{Op: kcmisa.UnifyVarX, R1: 5},
		{Op: kcmisa.Neck, N: 1},
		{Op: kcmisa.PutValX, R1: 5, R2: 1},
		{Op: kcmisa.Execute, N: 1, L: kcmisa.FailLabel},
	}
	pi := term.Ind("p", 1)
	out, err := peepholeVerified(pi, append([]kcmisa.Instr(nil), code...))
	if err != nil {
		t.Fatalf("differential rejected a sound rewrite: %v", err)
	}
	if len(out) != len(code)-1 {
		t.Fatalf("expected one instruction eliminated, got %v", out)
	}
}
