package compiler

import (
	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// argClass classifies a clause's first head argument for indexing.
type argClass int

const (
	acVar argClass = iota
	acConst
	acList
	acStruct
)

func (c *Compiler) classifyFirstArg(head term.Term) (argClass, word.Word) {
	cmp, ok := head.(*term.Compound)
	if !ok || len(cmp.Args) == 0 {
		return acVar, 0
	}
	switch x := cmp.Args[0].(type) {
	case term.Var:
		return acVar, 0
	case term.Atom, term.Int, term.Float:
		k, _ := c.constWord(x)
		return acConst, k
	case *term.Compound:
		if x.Functor == term.DotAtom && len(x.Args) == 2 {
			return acList, 0
		}
		return acStruct, c.functorWord(x.Functor, len(x.Args))
	}
	return acVar, 0
}

// compilePred compiles all clauses of one predicate, laying out the
// try/retry/trust chain and, when every clause has a non-variable
// first argument, a switch_on_term header with constant and structure
// switch tables, as dispatched by the MWAC on the real machine.
func (c *Compiler) compilePred(pi term.Indicator, clauses []clause, qvars map[term.Var]int) (*Pred, error) {
	n := len(clauses)
	multi := n > 1
	codes := make([][]kcmisa.Instr, n)
	for i, cl := range clauses {
		code, err := c.compileClause(pi, cl, multi, qvars)
		if err != nil {
			return nil, err
		}
		if i == n-1 {
			// The last alternative can never be shallowly retried, so
			// its argument registers are dead after head unification.
			code, err = peepholeVerified(pi, code)
			if err != nil {
				return nil, err
			}
		}
		codes[i] = code
	}
	if !multi {
		return verified(&Pred{PI: pi, Code: codes[0], Clauses: 1})
	}

	classes := make([]argClass, n)
	keys := make([]word.Word, n)
	allVar := true
	for i, cl := range clauses {
		classes[i], keys[i] = c.classifyFirstArg(cl.head)
		if classes[i] != acVar {
			allVar = false
		}
	}
	// Indexing pays off whenever some clause discriminates on its
	// first argument; variable-headed clauses are merged into every
	// bucket (they match anything) and form the switch defaults.
	indexed := pi.Arity >= 1 && !allVar

	var out []kcmisa.Instr
	if indexed {
		out = append(out, kcmisa.Instr{Op: kcmisa.SwitchOnTerm, SwT: &kcmisa.TermSwitch{}})
	}

	// Chain + clause bodies.
	chainIdx := make([]int, n)
	clauseIdx := make([]int, n)
	for i := range clauses {
		chainIdx[i] = len(out)
		switch {
		case i == 0:
			out = append(out, kcmisa.Instr{Op: kcmisa.TryMeElse, N: pi.Arity})
		case i < n-1:
			out = append(out, kcmisa.Instr{Op: kcmisa.RetryMeElse, N: pi.Arity})
		default:
			out = append(out, kcmisa.Instr{Op: kcmisa.TrustMe, N: pi.Arity})
		}
		clauseIdx[i] = len(out)
		out = append(out, codes[i]...)
	}
	for i := 0; i < n-1; i++ {
		out[chainIdx[i]].L = chainIdx[i+1]
	}

	if indexed {
		// bucket builds a target label for an ordered candidate set:
		// a direct entry for one clause, an out-of-line try block for
		// several.
		bucket := func(members []int) int {
			if len(members) == 0 {
				return kcmisa.FailLabel
			}
			if len(members) == 1 {
				return clauseIdx[members[0]]
			}
			start := len(out)
			for k, ci := range members {
				op := kcmisa.Retry
				if k == 0 {
					op = kcmisa.Try
				} else if k == len(members)-1 {
					op = kcmisa.Trust
				}
				out = append(out, kcmisa.Instr{Op: op, L: clauseIdx[ci], N: pi.Arity})
			}
			return start
		}
		// group collects, per distinct key of a class, the ordered
		// candidate set: clauses with that key merged with the
		// variable-headed clauses (which match anything). varOnly is
		// the default candidate set for a key missing from the table.
		group := func(class argClass) (order []word.Word, members map[word.Word][]int, any bool) {
			members = map[word.Word][]int{}
			for i := range clauses {
				switch classes[i] {
				case class:
					any = true
					if _, seen := members[keys[i]]; !seen {
						order = append(order, keys[i])
					}
				case acVar:
				default:
					continue
				}
				if classes[i] == acVar {
					// append to every existing key and remember for
					// keys discovered later via pending list below
					continue
				}
				members[keys[i]] = append(members[keys[i]], i)
			}
			// Merge variable clauses into each bucket in clause order.
			for _, k := range order {
				merged := make([]int, 0, len(members[k])+2)
				mi := 0
				for i := range clauses {
					if classes[i] == acVar {
						merged = append(merged, i)
					} else if mi < len(members[k]) && members[k][mi] == i {
						merged = append(merged, i)
						mi++
					}
				}
				members[k] = merged
			}
			return
		}
		var varOnly []int
		for i := range clauses {
			if classes[i] == acVar {
				varOnly = append(varOnly, i)
			}
		}
		defBucket := -2
		defaultBucket := func() int {
			if defBucket == -2 {
				defBucket = bucket(varOnly)
			}
			return defBucket
		}

		swFor := func(class argClass, op kcmisa.Op) int {
			order, members, any := group(class)
			if !any {
				return defaultBucket()
			}
			if len(order) == 1 && len(varOnly) == 0 {
				return bucket(members[order[0]])
			}
			sw := kcmisa.Instr{Op: op, L: kcmisa.FailLabel}
			for _, k := range order {
				sw.Sw = append(sw.Sw, kcmisa.SwEntry{Key: k, L: bucket(members[k])})
			}
			sw.L = defaultBucket() // missed key: variable clauses only
			l := len(out)
			out = append(out, sw)
			return l
		}

		constL := swFor(acConst, kcmisa.SwitchOnConst)
		listL := kcmisa.FailLabel
		{
			var listMembers []int
			for i := range clauses {
				if classes[i] == acList || classes[i] == acVar {
					listMembers = append(listMembers, i)
				}
			}
			hasList := false
			for i := range clauses {
				if classes[i] == acList {
					hasList = true
				}
			}
			if hasList {
				listL = bucket(listMembers)
			} else {
				listL = defaultBucket()
			}
		}
		structL := swFor(acStruct, kcmisa.SwitchOnStruct)
		out[0].SwT = &kcmisa.TermSwitch{
			Var:    chainIdx[0],
			Const:  constL,
			List:   listL,
			Struct: structL,
		}
	}
	return verified(&Pred{PI: pi, Code: out, Clauses: n})
}

// verified gates a finished predicate through the analyzer when the
// Verify pass is on.
func verified(p *Pred) (*Pred, error) {
	if Verify {
		if err := verifyPred(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}
