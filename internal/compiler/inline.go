package compiler

import (
	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// readReg returns a register holding the current value of a variable,
// emitting a move from its environment slot if necessary.
func (cc *clauseComp) readReg(v term.Var) (kcmisa.Reg, error) {
	vi := cc.info(v)
	if vi.x >= 0 {
		return kcmisa.Reg(vi.x), nil
	}
	if vi.perm && vi.init && cc.allocated {
		r, err := cc.allocTemp()
		if err != nil {
			return 0, err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.MoveYX, R1: r, N: vi.y})
		vi.x = int(r)
		vi.owned = true
		vi.fresh = false // may be (a reference to) a local cell
		return r, nil
	}
	// Genuinely uninitialised: materialise a fresh heap variable so
	// tests like var(X) on a first occurrence behave correctly.
	r, err := cc.allocTemp()
	if err != nil {
		return 0, err
	}
	cc.emit(kcmisa.Instr{Op: kcmisa.PutVarX, R1: r, R2: r})
	vi.x = int(r)
	vi.init = true
	vi.fresh = true
	vi.owned = true
	if vi.perm {
		if cc.allocated {
			cc.emit(kcmisa.Instr{Op: kcmisa.MoveXY, R1: r, N: vi.y})
		} else {
			cc.pending = append(cc.pending, pendMove{x: int(r), y: vi.y})
		}
	}
	return r, nil
}

// materialize returns a register holding an arbitrary term, building
// structures in write mode if needed. owned reports whether the
// register is a scratch temp the caller may free.
func (cc *clauseComp) materialize(t term.Term) (r kcmisa.Reg, owned bool, err error) {
	switch x := t.(type) {
	case term.Var:
		r, err = cc.readReg(x)
		return r, false, err
	case term.Atom, term.Int, term.Float:
		k, _ := cc.c.constWord(x)
		r, err = cc.allocTemp()
		if err != nil {
			return 0, false, err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.LoadConst, R1: r, K: k})
		return r, true, nil
	case *term.Compound:
		r, err = cc.emitBuild(x)
		return r, true, err
	}
	return 0, false, cc.errf("cannot materialize %v", t)
}

// arithOps maps arithmetic functors to instruction opcodes. "/" is
// integer division on KCM when both operands are integers; the
// benchmark suite is compiled with integer arithmetic (section 4).
var arithOps = map[term.Indicator]kcmisa.Op{
	term.Ind("+", 2):   kcmisa.Add,
	term.Ind("-", 2):   kcmisa.Sub,
	term.Ind("*", 2):   kcmisa.Mul,
	term.Ind("//", 2):  kcmisa.Div,
	term.Ind("/", 2):   kcmisa.Div,
	term.Ind("mod", 2): kcmisa.Mod,
	term.Ind("rem", 2): kcmisa.Rem,
	term.Ind("/\\", 2): kcmisa.Band,
	term.Ind("\\/", 2): kcmisa.Bor,
	term.Ind("xor", 2): kcmisa.Bxor,
	term.Ind("<<", 2):  kcmisa.Shl,
	term.Ind(">>", 2):  kcmisa.Shr,
	term.Ind("min", 2): kcmisa.MinOp,
	term.Ind("max", 2): kcmisa.MaxOp,
}

// evalExpr compiles the evaluation of an arithmetic expression and
// returns the register receiving the result.
func (cc *clauseComp) evalExpr(t term.Term) (r kcmisa.Reg, owned bool, err error) {
	switch x := t.(type) {
	case term.Var:
		r, err = cc.readReg(x)
		return r, false, err
	case term.Int, term.Float:
		k, _ := cc.c.constWord(x)
		r, err = cc.allocTemp()
		if err != nil {
			return 0, false, err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.LoadConst, R1: r, K: k})
		return r, true, nil
	case *term.Compound:
		pi, _ := term.TermIndicator(x)
		if op, ok := arithOps[pi]; ok {
			r1, o1, err := cc.evalExpr(x.Args[0])
			if err != nil {
				return 0, false, err
			}
			r2, o2, err := cc.evalExpr(x.Args[1])
			if err != nil {
				return 0, false, err
			}
			rd, err := cc.allocTemp()
			if err != nil {
				return 0, false, err
			}
			cc.emit(kcmisa.Instr{Op: op, R1: r1, R2: r2, R3: rd})
			if o1 {
				cc.freeTemp(r1)
			}
			if o2 {
				cc.freeTemp(r2)
			}
			return rd, true, nil
		}
		if pi == term.Ind("-", 1) { // unary minus
			r1, o1, err := cc.evalExpr(x.Args[0])
			if err != nil {
				return 0, false, err
			}
			rz, err := cc.allocTemp()
			if err != nil {
				return 0, false, err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.LoadConst, R1: rz, K: word.FromInt(0)})
			rd, err := cc.allocTemp()
			if err != nil {
				return 0, false, err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.Sub, R1: rz, R2: r1, R3: rd})
			cc.freeTemp(rz)
			if o1 {
				cc.freeTemp(r1)
			}
			return rd, true, nil
		}
		if pi == term.Ind("+", 1) {
			return cc.evalExpr(x.Args[0])
		}
		if pi == term.Ind("abs", 1) {
			r1, o1, err := cc.evalExpr(x.Args[0])
			if err != nil {
				return 0, false, err
			}
			rd, err := cc.allocTemp()
			if err != nil {
				return 0, false, err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.Abs, R1: r1, R3: rd})
			if o1 {
				cc.freeTemp(r1)
			}
			return rd, true, nil
		}
	}
	return 0, false, cc.errf("non-arithmetic expression %v", t)
}

// emitInline compiles one inline goal.
func (cc *clauseComp) emitInline(g term.Term) error {
	pi, _ := term.TermIndicator(g)
	args := goalArgs(g)
	switch pi {
	case term.Ind("is", 2):
		r, owned, err := cc.evalExpr(args[1])
		if err != nil {
			return err
		}
		return cc.bindResult(args[0], r, owned)
	case term.Ind("<", 2), term.Ind(">", 2), term.Ind("=<", 2),
		term.Ind(">=", 2), term.Ind("=:=", 2), term.Ind("=\\=", 2):
		r1, o1, err := cc.evalExpr(args[0])
		if err != nil {
			return err
		}
		r2, o2, err := cc.evalExpr(args[1])
		if err != nil {
			return err
		}
		op := map[term.Indicator]kcmisa.Op{
			term.Ind("<", 2): kcmisa.CmpLt, term.Ind(">", 2): kcmisa.CmpGt,
			term.Ind("=<", 2): kcmisa.CmpLe, term.Ind(">=", 2): kcmisa.CmpGe,
			term.Ind("=:=", 2): kcmisa.CmpEq, term.Ind("=\\=", 2): kcmisa.CmpNe,
		}[pi]
		cc.emit(kcmisa.Instr{Op: op, R1: r1, R2: r2})
		if o1 {
			cc.freeTemp(r1)
		}
		if o2 {
			cc.freeTemp(r2)
		}
		return nil
	case term.Ind("var", 1), term.Ind("nonvar", 1), term.Ind("atom", 1),
		term.Ind("integer", 1), term.Ind("atomic", 1):
		r, owned, err := cc.materialize(args[0])
		if err != nil {
			return err
		}
		op := map[term.Indicator]kcmisa.Op{
			term.Ind("var", 1): kcmisa.TestVar, term.Ind("nonvar", 1): kcmisa.TestNonvar,
			term.Ind("atom", 1): kcmisa.TestAtom, term.Ind("integer", 1): kcmisa.TestInteger,
			term.Ind("atomic", 1): kcmisa.TestAtomic,
		}[pi]
		cc.emit(kcmisa.Instr{Op: op, R1: r})
		if owned {
			cc.freeTemp(r)
		}
		return nil
	case term.Ind("==", 2), term.Ind("\\==", 2):
		r1, o1, err := cc.materialize(args[0])
		if err != nil {
			return err
		}
		r2, o2, err := cc.materialize(args[1])
		if err != nil {
			return err
		}
		op := kcmisa.IdentEq
		if pi.Name == "\\==" {
			op = kcmisa.IdentNe
		}
		cc.emit(kcmisa.Instr{Op: op, R1: r1, R2: r2})
		if o1 {
			cc.freeTemp(r1)
		}
		if o2 {
			cc.freeTemp(r2)
		}
		return nil
	case term.Ind("=", 2):
		r1, o1, err := cc.materialize(args[0])
		if err != nil {
			return err
		}
		r2, o2, err := cc.materialize(args[1])
		if err != nil {
			return err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyRegs, R1: r1, R2: r2})
		if o1 {
			cc.freeTemp(r1)
		}
		if o2 {
			cc.freeTemp(r2)
		}
		return nil
	}
	return cc.errf("unhandled inline goal %v", g)
}

// bindResult stores an is/2 result into the target variable.
func (cc *clauseComp) bindResult(t term.Term, r kcmisa.Reg, owned bool) error {
	v, isVar := t.(term.Var)
	if !isVar {
		// e.g. 0 is X mod Y: unify the result with a constant.
		rc, oc, err := cc.materialize(t)
		if err != nil {
			return err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyRegs, R1: rc, R2: r})
		if oc {
			cc.freeTemp(rc)
		}
		if owned {
			cc.freeTemp(r)
		}
		return nil
	}
	vi := cc.info(v)
	if !vi.init {
		vi.x = int(r)
		vi.init = true
		vi.fresh = true
		vi.owned = owned
		if vi.perm {
			if cc.allocated {
				cc.emit(kcmisa.Instr{Op: kcmisa.MoveXY, R1: r, N: vi.y})
			} else {
				cc.pending = append(cc.pending, pendMove{x: int(r), y: vi.y})
			}
		}
		return nil
	}
	rv, err := cc.readReg(v)
	if err != nil {
		return err
	}
	cc.emit(kcmisa.Instr{Op: kcmisa.UnifyRegs, R1: rv, R2: r})
	if owned {
		cc.freeTemp(r)
	}
	return nil
}
