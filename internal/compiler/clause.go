package compiler

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

// goalKind classifies a body goal for code generation.
type goalKind int

const (
	gCall    goalKind = iota // user predicate: call/execute
	gBuiltin                 // escape built-in (write, nl, ...)
	gInline                  // inline arithmetic, tests, unification
	gCut
	gTrue
	gFail
)

// inlinePIs are the goals compiled to inline instruction sequences.
// They are exactly the state-preserving goals that may form a clause
// guard in the shallow-backtracking sense of the paper.
var inlinePIs = map[term.Indicator]bool{
	term.Ind("is", 2): true,
	term.Ind("<", 2):  true, term.Ind(">", 2): true,
	term.Ind("=<", 2): true, term.Ind(">=", 2): true,
	term.Ind("=:=", 2): true, term.Ind("=\\=", 2): true,
	term.Ind("var", 1): true, term.Ind("nonvar", 1): true,
	term.Ind("atom", 1): true, term.Ind("integer", 1): true,
	term.Ind("atomic", 1): true,
	term.Ind("==", 2):     true, term.Ind("\\==", 2): true,
	term.Ind("=", 2): true,
}

func classifyGoal(t term.Term) (goalKind, error) {
	switch x := t.(type) {
	case term.Var:
		return 0, fmt.Errorf("compiler: meta-call of variable goal is not supported")
	case term.Int, term.Float:
		return 0, fmt.Errorf("compiler: %v is not a callable goal", x)
	}
	pi, _ := term.TermIndicator(t)
	switch {
	case pi == term.Ind("!", 0):
		return gCut, nil
	case pi == term.Ind("true", 0):
		return gTrue, nil
	case pi == term.Ind("fail", 0) || pi == term.Ind("false", 0):
		return gFail, nil
	case inlinePIs[pi]:
		return gInline, nil
	default:
		if _, ok := kcmisa.BuiltinByName[pi]; ok {
			return gBuiltin, nil
		}
		return gCall, nil
	}
}

// vinfo is the per-variable compilation state.
type vinfo struct {
	occ       int  // total occurrences in the clause
	perm      bool // permanent: lives in an environment slot
	y         int  // environment slot (when perm)
	x         int  // register currently holding it, -1 if none
	owned     bool // the register in x is a clause temp (not an A reg)
	init      bool // storage exists (Y written, or X holds the value)
	unsafeRef bool // storage is a local-stack cell (PutVarY): needs put_unsafe
	fresh     bool // register holds a self-contained or heap value:
	// safe for unify_value in write mode without globalisation
	chunks map[int]bool
}

type pendMove struct{ x, y int }

// clauseComp compiles one normalised clause to straight-line code.
type clauseComp struct {
	c     *Compiler
	pi    term.Indicator
	multi bool
	query map[term.Var]int // non-nil when compiling $query

	goals []term.Term
	kinds []goalKind

	vars  map[term.Var]*vinfo
	order []term.Var

	code      []kcmisa.Instr
	safeBase  int
	tempNext  int
	freeList  []int
	nY        int
	cutSlot   int
	firstCall int // index of first gCall goal, len(goals) if none
	guardEnd  int // goals[:guardEnd] form the guard
	needEnv   bool
	allocated bool
	pending   []pendMove
}

func (cc *clauseComp) emit(in kcmisa.Instr) { cc.code = append(cc.code, in) }

func (cc *clauseComp) errf(format string, args ...any) error {
	return fmt.Errorf("compiler: %v: %s", cc.pi, fmt.Sprintf(format, args...))
}

func (cc *clauseComp) allocTemp() (kcmisa.Reg, error) {
	if n := len(cc.freeList); n > 0 {
		r := cc.freeList[n-1]
		cc.freeList = cc.freeList[:n-1]
		return kcmisa.Reg(r), nil
	}
	if cc.tempNext >= kcmisa.NumRegs {
		return 0, cc.errf("out of temporary registers")
	}
	r := cc.tempNext
	cc.tempNext++
	return kcmisa.Reg(r), nil
}

func (cc *clauseComp) freeTemp(r kcmisa.Reg) {
	if int(r) >= cc.safeBase {
		cc.freeList = append(cc.freeList, int(r))
	}
}

// resetTemps is called at each chunk boundary: every register is dead.
func (cc *clauseComp) resetTemps() {
	cc.tempNext = cc.safeBase
	cc.freeList = cc.freeList[:0]
	for _, v := range cc.order {
		vi := cc.vars[v]
		vi.x = -1
		vi.owned = false
	}
}

func (cc *clauseComp) info(v term.Var) *vinfo {
	vi, ok := cc.vars[v]
	if !ok {
		vi = &vinfo{x: -1, chunks: map[int]bool{}}
		cc.vars[v] = vi
		cc.order = append(cc.order, v)
	}
	return vi
}

// analyze performs occurrence counting, chunk assignment, permanence
// classification and environment-slot allocation.
func (cc *clauseComp) analyze(head term.Term) error {
	chunk := 0
	var scan func(t term.Term)
	scan = func(t term.Term) {
		switch x := t.(type) {
		case term.Var:
			vi := cc.info(x)
			vi.occ++
			vi.chunks[chunk] = true
		case *term.Compound:
			for _, a := range x.Args {
				scan(a)
			}
		}
	}
	scan(head)
	cc.firstCall = len(cc.goals)
	for i, g := range cc.goals {
		k, err := classifyGoal(g)
		if err != nil {
			return err
		}
		cc.kinds = append(cc.kinds, k)
		if k == gCall && i < cc.firstCall {
			cc.firstCall = i
		}
		scan(g)
		if k == gCall || k == gBuiltin {
			chunk++
		}
	}
	// Permanence.
	for _, v := range cc.order {
		vi := cc.vars[v]
		vi.perm = len(vi.chunks) > 1
		if cc.query != nil && v[0] != '_' {
			vi.perm = true // keep query bindings readable at halt
		}
	}
	// Guard: maximal inline prefix of the body.
	cc.guardEnd = len(cc.goals)
	for i, k := range cc.kinds {
		if k == gCall || k == gBuiltin {
			cc.guardEnd = i
			break
		}
	}
	// Environment slots.
	for _, v := range cc.order {
		vi := cc.vars[v]
		if vi.perm {
			vi.y = cc.nY
			if cc.query != nil && v[0] != '_' {
				cc.query[v] = cc.nY
			}
			cc.nY++
		}
	}
	cc.cutSlot = -1
	for i, k := range cc.kinds {
		if k == gCut && i > cc.firstCall {
			cc.cutSlot = cc.nY
			cc.nY++
			break
		}
	}
	// Environment requirement. The call/1 escape transfers control
	// like a call and overwrites the continuation register, so it
	// needs the environment to restore CP afterwards.
	numCalls := 0
	lastIsCall := false
	for i, k := range cc.kinds {
		if k == gCall {
			numCalls++
			lastIsCall = i == cc.lastRealGoal()
		}
		if k == gBuiltin {
			if pi, _ := term.TermIndicator(cc.goals[i]); pi == term.Ind("call", 1) {
				numCalls++
				lastIsCall = false
			}
		}
	}
	cc.needEnv = cc.nY > 0 || numCalls > 1 || (numCalls == 1 && !lastIsCall)
	if cc.query != nil {
		cc.needEnv = true
	}
	if cc.nY > 250 {
		return cc.errf("too many permanent variables (%d)", cc.nY)
	}
	// Safe temporary zone: above every argument register in use.
	max := cc.pi.Arity
	for _, g := range cc.goals {
		if pi, ok := term.TermIndicator(g); ok && pi.Arity > max {
			k, _ := classifyGoal(g)
			if k == gCall || k == gBuiltin {
				max = pi.Arity
			}
		}
	}
	cc.safeBase = max + 1
	cc.tempNext = cc.safeBase
	return nil
}

func (cc *clauseComp) lastRealGoal() int {
	last := -1
	for i, k := range cc.kinds {
		if k != gTrue {
			last = i
		}
	}
	return last
}

// compileClause generates the code of one clause. The predicate-level
// compiler wraps it with try/retry/trust chains and switches.
func (c *Compiler) compileClause(pi term.Indicator, cl clause, multi bool, query map[term.Var]int) ([]kcmisa.Instr, error) {
	cc := &clauseComp{
		c: c, pi: pi, multi: multi, query: query,
		goals: cl.goals, vars: map[term.Var]*vinfo{},
	}
	if err := cc.analyze(cl.head); err != nil {
		return nil, err
	}

	// Head.
	if cmp, ok := cl.head.(*term.Compound); ok {
		if err := cc.emitGets(cmp.Args); err != nil {
			return nil, err
		}
	}
	// Guard.
	last := cc.lastRealGoal()
	for i := 0; i < cc.guardEnd; i++ {
		stop, err := cc.emitGoal(i, i == last)
		if err != nil {
			return nil, err
		}
		if stop {
			return cc.code, nil
		}
	}
	// Neck: materialise the delayed choice point if alternatives remain.
	if cc.multi {
		cc.emit(kcmisa.Instr{Op: kcmisa.Neck, N: pi.Arity})
	}
	// Environment.
	if cc.needEnv {
		cc.emit(kcmisa.Instr{Op: kcmisa.Allocate, N: cc.nY})
		cc.allocated = true
		if cc.cutSlot >= 0 {
			cc.emit(kcmisa.Instr{Op: kcmisa.SaveB0, N: cc.cutSlot})
		}
		for _, pm := range cc.pending {
			cc.emit(kcmisa.Instr{Op: kcmisa.MoveXY, R1: kcmisa.Reg(pm.x), N: pm.y})
		}
		cc.pending = nil
	}
	// Body.
	done := false
	for i := cc.guardEnd; i < len(cc.goals); i++ {
		stop, err := cc.emitGoal(i, i == last)
		if err != nil {
			return nil, err
		}
		if stop {
			done = true
			break
		}
	}
	if !done {
		if cc.query != nil {
			cc.emit(kcmisa.Instr{Op: kcmisa.Halt})
		} else {
			if cc.needEnv {
				cc.emit(kcmisa.Instr{Op: kcmisa.Deallocate})
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.Proceed})
		}
	}
	return cc.code, nil
}

// emitGoal compiles one goal; stop=true when the goal transfers
// control unconditionally (Execute, Fail), ending the clause.
func (cc *clauseComp) emitGoal(i int, isLast bool) (stop bool, err error) {
	g := cc.goals[i]
	switch cc.kinds[i] {
	case gTrue:
		return false, nil
	case gFail:
		cc.emit(kcmisa.Instr{Op: kcmisa.Fail, Mark: true})
		return true, nil
	case gCut:
		if i > cc.firstCall {
			cc.emit(kcmisa.Instr{Op: kcmisa.CutY, N: cc.cutSlot})
		} else {
			cc.emit(kcmisa.Instr{Op: kcmisa.Cut})
		}
		return false, nil
	case gInline:
		// The final instruction of the inline sequence carries the
		// inference mark: each source-level goal counts one logical
		// inference under the paper's Klips definition.
		before := len(cc.code)
		if err := cc.emitInline(g); err != nil {
			return false, err
		}
		if len(cc.code) == before {
			cc.emit(kcmisa.Instr{Op: kcmisa.Noop, Mark: true})
		} else {
			cc.code[len(cc.code)-1].Mark = true
		}
		return false, nil
	case gBuiltin:
		pi, _ := term.TermIndicator(g)
		if err := cc.emitPuts(goalArgs(g), false); err != nil {
			return false, err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.Builtin, N: kcmisa.BuiltinByName[pi]})
		cc.resetTemps()
		return false, nil
	case gCall:
		pi, _ := term.TermIndicator(g)
		lastCall := isLast && cc.query == nil
		if err := cc.emitPuts(goalArgs(g), lastCall); err != nil {
			return false, err
		}
		if lastCall {
			if cc.needEnv {
				cc.emit(kcmisa.Instr{Op: kcmisa.Deallocate})
			}
			// N carries the arity so linked code (where Proc is gone)
			// still knows which argument registers the call consumes.
			cc.emit(kcmisa.Instr{Op: kcmisa.Execute, Proc: pi, N: pi.Arity, L: kcmisa.FailLabel})
			return true, nil
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.Call, Proc: pi, N: pi.Arity, L: kcmisa.FailLabel})
		cc.resetTemps()
		return false, nil
	}
	return false, cc.errf("unhandled goal %v", g)
}

func goalArgs(g term.Term) []term.Term {
	if c, ok := g.(*term.Compound); ok {
		return c.Args
	}
	return nil
}
