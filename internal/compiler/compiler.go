// Package compiler translates Prolog clauses into KCM instructions.
//
// The translation follows the WAM with the KCM specialisations
// described in the paper:
//
//   - argument registers stay intact through head and guard, so the
//     delayed choice-point scheme (shallow backtracking) can restore a
//     clause's entry state from three shadow registers;
//   - every clause of a multi-clause predicate carries a Neck
//     instruction at the end of its guard, where the real choice point
//     is materialised if alternatives remain;
//   - environments are allocated after the neck, which keeps the head
//     and guard free of local-stack writes;
//   - first-argument indexing uses switch_on_term plus hashed
//     constant/structure switches, dispatched by the MWAC.
package compiler

import (
	"fmt"
	"math"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// Pred is the compiled code of one predicate. Labels inside Code are
// instruction indices local to the predicate; the assembler rebases
// them to absolute code-space addresses.
type Pred struct {
	PI      term.Indicator
	Code    []kcmisa.Instr
	Clauses int
}

// Module is a compiled compilation unit.
type Module struct {
	Preds map[term.Indicator]*Pred
	Order []term.Indicator
	Syms  *term.SymTab
	// QueryVars maps each named variable of the compiled query to the
	// environment slot holding it when the machine halts.
	QueryVars map[term.Var]int
	// Warnings holds non-fatal findings: predicates unreachable from
	// any entry point (see reach.go). Refreshed by CompileProgram and
	// again by CompileQuery.
	Warnings []string
}

// QueryPI is the entry predicate created by CompileQuery.
var QueryPI = term.Ind("$query", 0)

// Compiler holds compilation state shared across clauses.
type Compiler struct {
	syms *term.SymTab
	auxN int
}

// New creates a compiler interning into syms.
func New(syms *term.SymTab) *Compiler {
	if syms == nil {
		syms = term.NewSymTab()
	}
	return &Compiler{syms: syms}
}

// Syms returns the compiler's symbol table.
func (c *Compiler) Syms() *term.SymTab { return c.syms }

// clause is a normalised clause: a head and a flat list of goals.
type clause struct {
	head  term.Term
	goals []term.Term
}

// CompileProgram compiles a list of source clauses (facts and rules)
// into a module. Directives (:- G) and queries (?- G) are rejected
// here; use CompileQuery for the query.
func (c *Compiler) CompileProgram(clauses []term.Term) (*Module, error) {
	m := &Module{Preds: map[term.Indicator]*Pred{}, Syms: c.syms}
	grouped := map[term.Indicator][]clause{}
	var order []term.Indicator
	add := func(cl clause) error {
		pi, ok := term.TermIndicator(cl.head)
		if !ok {
			return fmt.Errorf("compiler: clause head %v is not callable", cl.head)
		}
		if _, seen := grouped[pi]; !seen {
			order = append(order, pi)
		}
		grouped[pi] = append(grouped[pi], cl)
		return nil
	}
	for _, t := range clauses {
		head, body := splitClause(t)
		if head == nil {
			return nil, fmt.Errorf("compiler: %v is a directive, not a clause", t)
		}
		cls, aux, err := c.normalize(head, body)
		if err != nil {
			return nil, err
		}
		if err := add(cls); err != nil {
			return nil, err
		}
		for _, a := range aux {
			if err := add(a); err != nil {
				return nil, err
			}
		}
	}
	for _, pi := range order {
		p, err := c.compilePred(pi, grouped[pi], nil)
		if err != nil {
			return nil, err
		}
		m.Preds[pi] = p
		m.Order = append(m.Order, pi)
	}
	warnUnreachable(m)
	return m, nil
}

// CompileQuery compiles ?- Goal into the $query/0 entry predicate and
// adds it (plus any control auxiliaries) to the module. Named query
// variables are forced into the environment so their bindings can be
// read back when the machine halts.
func (c *Compiler) CompileQuery(m *Module, goal term.Term) error {
	cls, aux, err := c.normalize(term.Atom("$query"), goal)
	if err != nil {
		return err
	}
	grouped := map[term.Indicator][]clause{}
	var order []term.Indicator
	for _, a := range aux {
		pi, _ := term.TermIndicator(a.head)
		if _, seen := grouped[pi]; !seen {
			order = append(order, pi)
		}
		grouped[pi] = append(grouped[pi], a)
	}
	for _, pi := range order {
		p, err := c.compilePred(pi, grouped[pi], nil)
		if err != nil {
			return err
		}
		if _, dup := m.Preds[pi]; dup {
			return fmt.Errorf("compiler: duplicate auxiliary %v", pi)
		}
		m.Preds[pi] = p
		m.Order = append(m.Order, pi)
	}
	qv := map[term.Var]int{}
	p, err := c.compilePred(QueryPI, []clause{cls}, qv)
	if err != nil {
		return err
	}
	m.Preds[QueryPI] = p
	m.Order = append(m.Order, QueryPI)
	m.QueryVars = qv
	m.Warnings = nil
	warnUnreachable(m)
	return nil
}

// splitClause separates H :- B from facts. A nil head means the term
// was a directive (:- G or ?- G).
func splitClause(t term.Term) (head, body term.Term) {
	if c, ok := t.(*term.Compound); ok {
		if c.Functor == ":-" && len(c.Args) == 2 {
			return c.Args[0], c.Args[1]
		}
		if (c.Functor == ":-" || c.Functor == "?-") && len(c.Args) == 1 {
			return nil, c.Args[0]
		}
	}
	return t, term.Atom("true")
}

// normalize flattens the body into a goal list, rewriting control
// constructs (;/2, ->/2, \+/1) into auxiliary predicates, which are
// returned for separate compilation.
func (c *Compiler) normalize(head, body term.Term) (clause, []clause, error) {
	var aux []clause
	var goals []term.Term
	var walk func(t term.Term) error
	walk = func(t term.Term) error {
		cmp, ok := t.(*term.Compound)
		if !ok {
			goals = append(goals, t)
			return nil
		}
		switch {
		case cmp.Functor == "," && len(cmp.Args) == 2:
			if err := walk(cmp.Args[0]); err != nil {
				return err
			}
			return walk(cmp.Args[1])
		case cmp.Functor == ";" && len(cmp.Args) == 2:
			left, right := cmp.Args[0], cmp.Args[1]
			if ite, ok := left.(*term.Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
				g, as, err := c.makeAux(t,
					[]term.Term{ite.Args[0], term.Atom("!"), ite.Args[1]},
					[]term.Term{right})
				if err != nil {
					return err
				}
				aux = append(aux, as...)
				goals = append(goals, g)
				return nil
			}
			g, as, err := c.makeAux(t, []term.Term{left}, []term.Term{right})
			if err != nil {
				return err
			}
			aux = append(aux, as...)
			goals = append(goals, g)
			return nil
		case cmp.Functor == "->" && len(cmp.Args) == 2:
			g, as, err := c.makeAux(t,
				[]term.Term{cmp.Args[0], term.Atom("!"), cmp.Args[1]}, nil)
			if err != nil {
				return err
			}
			aux = append(aux, as...)
			goals = append(goals, g)
			return nil
		case (cmp.Functor == "\\+" || cmp.Functor == "not") && len(cmp.Args) == 1:
			g, as, err := c.makeAux(t,
				[]term.Term{cmp.Args[0], term.Atom("!"), term.Atom("fail")},
				[]term.Term{term.Atom("true")})
			if err != nil {
				return err
			}
			aux = append(aux, as...)
			goals = append(goals, g)
			return nil
		default:
			goals = append(goals, t)
			return nil
		}
	}
	if err := walk(body); err != nil {
		return clause{}, nil, err
	}
	return clause{head: head, goals: goals}, aux, nil
}

// makeAux creates a fresh auxiliary predicate whose clauses are the
// given alternative bodies, closed over the variables of src. It
// returns the goal that calls it.
func (c *Compiler) makeAux(src term.Term, alt1, alt2 []term.Term) (term.Term, []clause, error) {
	vars := term.Vars(src, nil)
	if len(vars) > 16 {
		return nil, nil, fmt.Errorf("compiler: control construct closes over %d variables (max 16)", len(vars))
	}
	c.auxN++
	name := term.Atom(fmt.Sprintf("$aux%d", c.auxN))
	args := make([]term.Term, len(vars))
	for i, v := range vars {
		args[i] = v
	}
	head := term.New(name, args...)
	var out []clause
	mk := func(goals []term.Term) error {
		cl, aux, err := c.normalize(head, conj(goals))
		if err != nil {
			return err
		}
		out = append(out, cl)
		out = append(out, aux...)
		return nil
	}
	if err := mk(alt1); err != nil {
		return nil, nil, err
	}
	if alt2 != nil {
		if err := mk(alt2); err != nil {
			return nil, nil, err
		}
	}
	return head, out, nil
}

func conj(goals []term.Term) term.Term {
	if len(goals) == 0 {
		return term.Atom("true")
	}
	t := goals[len(goals)-1]
	for i := len(goals) - 2; i >= 0; i-- {
		t = term.New(",", goals[i], t)
	}
	return t
}

// constWord converts an atomic source term into its tagged word.
func (c *Compiler) constWord(t term.Term) (word.Word, bool) {
	switch x := t.(type) {
	case term.Atom:
		if x == term.NilAtom {
			return word.Nil(), true
		}
		return word.FromAtom(c.syms.Intern(x)), true
	case term.Int:
		return word.FromInt(int32(x)), true
	case term.Float:
		return word.FromFloat(math.Float32bits(float32(x))), true
	}
	return 0, false
}

// functorWord builds the functor word for a compound term.
func (c *Compiler) functorWord(f term.Atom, arity int) word.Word {
	return word.Functor(c.syms.Intern(f), arity)
}
