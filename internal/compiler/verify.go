package compiler

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kcmisa"
	"repro/internal/term"
)

// Verify enables the post-compile verification pass: every predicate
// leaving compilePred is run through the static analyzer
// (internal/analysis), and the peephole rewrite is differentially
// checked to preserve the clause's upward-exposed register set.
// Compilation fails with a *VerifyError on any finding.
//
// The pass is on by default under `go test` — every instruction
// stream the test suite compiles is verified — and off in production
// binaries, where validation happens at load time or via kcmvet.
var Verify = testing.Testing()

// SetVerify switches the verification pass and returns the previous
// setting.
func SetVerify(on bool) bool {
	prev := Verify
	Verify = on
	return prev
}

// VerifyError reports analyzer findings on freshly compiled code.
type VerifyError struct {
	PI    term.Indicator
	Diags []analysis.Diag
}

func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiler: verification of %v failed (%d findings)", e.PI, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

// verifyPred runs the analyzer over a compiled predicate.
func verifyPred(p *Pred) error {
	if ds := analysis.AnalyzePred(p.PI, p.Code); len(ds) > 0 {
		return &VerifyError{PI: p.PI, Diags: ds}
	}
	return nil
}

// peepholeVerified applies peepholeLastAlt; under Verify it also
// asserts the rewrite preserved the upward-exposed register set of
// the clause (in the last-alternative effect model), the differential
// guarantee that no caller-provided value was lost and no new
// register demand introduced.
func peepholeVerified(pi term.Indicator, code []kcmisa.Instr) ([]kcmisa.Instr, error) {
	if !Verify {
		return peepholeLastAlt(code), nil
	}
	orig := append([]kcmisa.Instr(nil), code...)
	out := peepholeLastAlt(code)
	if got, want := analysis.UpwardExposedLastAlt(out), analysis.UpwardExposedLastAlt(orig); got != want {
		return nil, fmt.Errorf("compiler: %v: peephole changed upward-exposed registers from %v to %v",
			pi, want, got)
	}
	return out, nil
}
