package compiler

import (
	"strings"
	"testing"

	"repro/internal/reader"
)

func TestWarnUnreachableOrphanCycle(t *testing.T) {
	// a/0 and b/0 only call each other; main/0 and helper/0 form a
	// live chain rooted at the uncalled main/0.
	m := compileSrc(t, `
main :- helper.
helper.
a :- b.
b :- a.
`)
	if len(m.Warnings) != 2 {
		t.Fatalf("warnings = %v, want two", m.Warnings)
	}
	joined := strings.Join(m.Warnings, "\n")
	for _, pred := range []string{"a/0", "b/0"} {
		if !strings.Contains(joined, pred) {
			t.Errorf("missing warning for %s: %v", pred, m.Warnings)
		}
	}
	if strings.Contains(joined, "helper/0") {
		t.Errorf("helper/0 wrongly flagged: %v", m.Warnings)
	}
}

func TestWarnUnreachableInterfacePreds(t *testing.T) {
	// Library mode: predicates without callers are interface roots, so
	// a module of independent predicates warns about nothing.
	m := compileSrc(t, `
p(1).
q(2).
r(X) :- p(X).
`)
	if len(m.Warnings) != 0 {
		t.Fatalf("warnings = %v, want none", m.Warnings)
	}
}

func TestWarnUnreachableSelfRecursion(t *testing.T) {
	// append/3 is its own only caller; self-recursion must not demote
	// it from interface root to orphan cycle.
	m := compileSrc(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
len([], z).
len([_|T], s(N)) :- len(T, N).
`)
	if len(m.Warnings) != 0 {
		t.Fatalf("warnings = %v, want none for self-recursive library predicates", m.Warnings)
	}
}

func TestWarnUnreachableMetaCallSuppresses(t *testing.T) {
	// call/1 can reach anything: no warnings, even for the orphan
	// cycle.
	m := compileSrc(t, `
main(G) :- call(G).
a :- b.
b :- a.
`)
	if len(m.Warnings) != 0 {
		t.Fatalf("warnings = %v, want none under meta-call", m.Warnings)
	}
}

func TestWarnUnreachableRefreshedByQuery(t *testing.T) {
	m := compileSrc(t, `
a :- b.
b :- a.
p(1).
`)
	if len(m.Warnings) != 2 {
		t.Fatalf("program warnings = %v, want two", m.Warnings)
	}
	goal, err := reader.ParseTerm("p(X).")
	if err != nil {
		t.Fatal(err)
	}
	c := New(m.Syms)
	if err := c.CompileQuery(m, goal); err != nil {
		t.Fatal(err)
	}
	if len(m.Warnings) != 2 {
		t.Fatalf("post-query warnings = %v, want the orphan cycle still flagged", m.Warnings)
	}
}
