package compiler

import (
	"strings"
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/reader"
	"repro/internal/term"
)

func compileSrc(t *testing.T, src string) *Module {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func ops(code []kcmisa.Instr) []kcmisa.Op {
	out := make([]kcmisa.Op, len(code))
	for i, in := range code {
		out[i] = in.Op
	}
	return out
}

func hasOp(code []kcmisa.Instr, op kcmisa.Op) bool {
	for _, in := range code {
		if in.Op == op {
			return true
		}
	}
	return false
}

func countOp(code []kcmisa.Instr, op kcmisa.Op) int {
	n := 0
	for _, in := range code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestFactCompilation(t *testing.T) {
	m := compileSrc(t, "p(a, 42).\n")
	code := m.Preds[term.Ind("p", 2)].Code
	want := []kcmisa.Op{kcmisa.GetConst, kcmisa.GetConst, kcmisa.Proceed}
	got := ops(code)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSingleClauseHasNoNeckOrChain(t *testing.T) {
	m := compileSrc(t, "q(X) :- p(X).\np(_).\n")
	code := m.Preds[term.Ind("q", 1)].Code
	for _, op := range []kcmisa.Op{kcmisa.Neck, kcmisa.TryMeElse, kcmisa.Allocate} {
		if hasOp(code, op) {
			t.Errorf("single chain clause contains %v: %v", op, ops(code))
		}
	}
	// Tail call through Execute (last-call optimisation).
	if code[len(code)-1].Op != kcmisa.Execute {
		t.Fatalf("expected execute, got %v", ops(code))
	}
}

func TestMultiClauseNeckAndChain(t *testing.T) {
	m := compileSrc(t, "p(_, a).\np(_, b).\n")
	code := m.Preds[term.Ind("p", 2)].Code
	if countOp(code, kcmisa.Neck) != 2 {
		t.Fatalf("want a neck per clause: %v", ops(code))
	}
	if !hasOp(code, kcmisa.TryMeElse) || !hasOp(code, kcmisa.TrustMe) {
		t.Fatalf("missing chain: %v", ops(code))
	}
	// Both clauses have a var first argument: no switch.
	if hasOp(code, kcmisa.SwitchOnTerm) {
		t.Fatalf("var-headed predicate must not switch: %v", ops(code))
	}
	// Chain instructions carry the arity for choice-point creation.
	for _, in := range code {
		if in.Op == kcmisa.TryMeElse && in.N != 2 {
			t.Errorf("try_me_else arity %d", in.N)
		}
	}
}

func TestFirstArgIndexing(t *testing.T) {
	m := compileSrc(t, `
f(a, 1).
f(b, 2).
f([], 3).
f([_|_], 4).
f(g(_), 5).
`)
	code := m.Preds[term.Ind("f", 1+1)].Code
	if code[0].Op != kcmisa.SwitchOnTerm {
		t.Fatalf("expected switch_on_term first: %v", ops(code))
	}
	if !hasOp(code, kcmisa.SwitchOnConst) {
		t.Fatalf("expected constant switch (a, b, []): %v", ops(code))
	}
	// One structure functor: direct dispatch, no struct table.
	if hasOp(code, kcmisa.SwitchOnStruct) {
		t.Fatalf("single functor should dispatch directly: %v", ops(code))
	}
}

func TestVarClausesMergeIntoBuckets(t *testing.T) {
	m := compileSrc(t, `
d(x, 1).
d(_, 0).
`)
	code := m.Preds[term.Ind("d", 2)].Code
	if code[0].Op != kcmisa.SwitchOnTerm {
		t.Fatalf("mixed predicate should still switch: %v", ops(code))
	}
	// The const bucket must include the var clause: a try block.
	if !hasOp(code, kcmisa.Try) || !hasOp(code, kcmisa.Trust) {
		t.Fatalf("expected out-of-line try block: %v", ops(code))
	}
}

func TestGuardBeforeNeck(t *testing.T) {
	m := compileSrc(t, `
p(0, zero).
p(N, pos) :- N > 0, q(N).
q(_).
`)
	code := m.Preds[term.Ind("p", 2)].Code
	// In the second clause, the comparison (guard) must appear before
	// the neck, which must precede the call.
	var cmpIdx, callIdx int
	neckIdx := -1
	for i, in := range code {
		switch in.Op {
		case kcmisa.CmpGt:
			cmpIdx = i
		case kcmisa.Neck:
			neckIdx = i // the last neck is clause 2's
		case kcmisa.Execute:
			callIdx = i
		}
	}
	if !(cmpIdx < neckIdx && neckIdx < callIdx) {
		t.Fatalf("guard/neck/call order wrong: cmp=%d neck=%d call=%d\n%v",
			cmpIdx, neckIdx, callIdx, ops(code))
	}
}

func TestCutVariants(t *testing.T) {
	// Guard cut uses the plain Cut instruction.
	m := compileSrc(t, "p(X) :- X > 0, !, q.\np(_).\nq.\n")
	code := m.Preds[term.Ind("p", 1)].Code
	if !hasOp(code, kcmisa.Cut) || hasOp(code, kcmisa.CutY) {
		t.Fatalf("guard cut must compile to Cut: %v", ops(code))
	}
	// A cut after a call needs the saved barrier.
	m = compileSrc(t, "r(X) :- q(X), !, s.\nq(_).\ns.\n")
	code = m.Preds[term.Ind("r", 1)].Code
	if !hasOp(code, kcmisa.SaveB0) || !hasOp(code, kcmisa.CutY) {
		t.Fatalf("deep cut must compile to SaveB0/CutY: %v", ops(code))
	}
}

func TestInferenceMarks(t *testing.T) {
	m := compileSrc(t, "p(X, Y) :- Y is X + 1, Y > 0, X == X.\n")
	code := m.Preds[term.Ind("p", 2)].Code
	marks := 0
	for _, in := range code {
		if in.Mark {
			marks++
		}
	}
	if marks != 3 { // is/2, >/2, ==/2
		t.Fatalf("want 3 inference marks, got %d in %v", marks, ops(code))
	}
}

func TestStaticListUsesUnifyList(t *testing.T) {
	m := compileSrc(t, "l([1,2,3]).\n")
	code := m.Preds[term.Ind("l", 1)].Code
	if countOp(code, kcmisa.UnifyList) != 2 {
		t.Fatalf("3-element list should chain 2 unify_list: %v", ops(code))
	}
	if countOp(code, kcmisa.GetList) != 1 {
		t.Fatalf("spine should need a single get_list: %v", ops(code))
	}
	// Two instructions per cell plus get_list and the terminator.
	if n := len(code); n != 1+3*2+1 { // get_list + (const+list|nil)*3 + proceed
		t.Fatalf("list encoding has %d instrs: %v", n, ops(code))
	}
}

func TestLastAltPeephole(t *testing.T) {
	m := compileSrc(t, "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n")
	code := m.Preds[term.Ind("app", 3)].Code
	// The recursive clause must unify T and R straight into A1/A3:
	// no put_value moves left before execute.
	if hasOp(code, kcmisa.PutValX) {
		t.Fatalf("append should need no register moves: %v", ops(code))
	}
	var unifiesIntoArgs int
	for _, in := range code {
		if in.Op == kcmisa.UnifyVarX && (in.R1 == 1 || in.R1 == 3) {
			unifiesIntoArgs++
		}
	}
	if unifiesIntoArgs != 2 {
		t.Fatalf("want T->A1 and R->A3 unifications, got %d: %v", unifiesIntoArgs, ops(code))
	}
}

func TestControlConstructs(t *testing.T) {
	m := compileSrc(t, "p(X) :- ( X > 0 -> q ; r ).\nq.\nr.\n")
	found := false
	for _, pi := range m.Order {
		if strings.HasPrefix(string(pi.Name), "$aux") {
			found = true
			if m.Preds[pi].Clauses != 2 {
				t.Fatalf("if-then-else aux has %d clauses", m.Preds[pi].Clauses)
			}
		}
	}
	if !found {
		t.Fatal("no auxiliary predicate generated for ->/;")
	}
}

func TestQueryCompilation(t *testing.T) {
	clauses, _ := reader.ParseAll("p(1).\n")
	c := New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	goal, _ := reader.ParseTerm("p(X), Y is X + 1.")
	if err := c.CompileQuery(m, goal); err != nil {
		t.Fatal(err)
	}
	if len(m.QueryVars) != 2 {
		t.Fatalf("query vars %v", m.QueryVars)
	}
	code := m.Preds[QueryPI].Code
	if code[len(code)-1].Op != kcmisa.Halt {
		t.Fatalf("query must end in halt: %v", ops(code))
	}
	if hasOp(code, kcmisa.Deallocate) {
		t.Fatalf("query must keep its environment for read-back: %v", ops(code))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"p :- X.\n",       // variable goal
		"p :- 42.\n",      // integer goal
		":- directive.\n", // directive where a clause is expected
	}
	for _, src := range bad {
		clauses, err := reader.ParseAll(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := New(nil).CompileProgram(clauses); err == nil {
			t.Errorf("%q: expected compile error", src)
		}
	}
}

func TestDeepStructureNesting(t *testing.T) {
	m := compileSrc(t, "t(f(g(h(1)), [a, g(2)])).\n")
	code := m.Preds[term.Ind("t", 1)].Code
	if countOp(code, kcmisa.GetStruct) != 4 { // f/2, g/1, h/1, g/1
		t.Fatalf("four get_structure expected: %v", ops(code))
	}
	// Nested structures unify via temporaries and a breadth-first queue.
	if countOp(code, kcmisa.UnifyVarX) < 2 {
		t.Fatalf("expected temporaries for nested terms: %v", ops(code))
	}
}

func TestTempRecyclingLongList(t *testing.T) {
	// A 40-element ground list in a goal argument must not exhaust the
	// 64-register file (build temps are recycled).
	var sb strings.Builder
	sb.WriteString("p(_).\nmain :- p([")
	for i := 0; i < 40; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("x")
	}
	sb.WriteString("]).\n")
	compileSrc(t, sb.String()) // must not fail
}
