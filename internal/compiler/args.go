package compiler

import (
	"repro/internal/kcmisa"
	"repro/internal/term"
)

// ---------- head unification (read context) ----------

type getTask struct {
	reg kcmisa.Reg
	t   *term.Compound
}

// emitGets compiles the head arguments. It only writes safe-zone
// temporaries: argument registers A1..An stay intact through the head
// so a shallow fail can retry the next clause without restoring them.
func (cc *clauseComp) emitGets(args []term.Term) error {
	var queue []getTask
	for i, a := range args {
		ai := kcmisa.Reg(i + 1)
		switch x := a.(type) {
		case term.Var:
			vi := cc.info(x)
			if !vi.init {
				vi.x = int(ai)
				vi.init = true
				if vi.perm {
					cc.pending = append(cc.pending, pendMove{x: int(ai), y: vi.y})
				}
			} else {
				cc.emit(kcmisa.Instr{Op: kcmisa.GetValX, R1: kcmisa.Reg(vi.x), R2: ai})
			}
		case term.Atom:
			if x == term.NilAtom {
				cc.emit(kcmisa.Instr{Op: kcmisa.GetNil, R2: ai})
			} else {
				k, _ := cc.c.constWord(x)
				cc.emit(kcmisa.Instr{Op: kcmisa.GetConst, K: k, R2: ai})
			}
		case term.Int, term.Float:
			k, _ := cc.c.constWord(x)
			cc.emit(kcmisa.Instr{Op: kcmisa.GetConst, K: k, R2: ai})
		case *term.Compound:
			if err := cc.emitGetCompound(ai, x, &queue); err != nil {
				return err
			}
		}
	}
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		if err := cc.emitGetCompound(task.reg, task.t, &queue); err != nil {
			return err
		}
		cc.freeTemp(task.reg)
	}
	return nil
}

func (cc *clauseComp) emitGetCompound(r kcmisa.Reg, t *term.Compound, queue *[]getTask) error {
	if t.Functor == term.DotAtom && len(t.Args) == 2 {
		cc.emit(kcmisa.Instr{Op: kcmisa.GetList, R2: r})
		return cc.emitListSpine(t, queue)
	}
	cc.emit(kcmisa.Instr{Op: kcmisa.GetStruct, K: cc.c.functorWord(t.Functor, len(t.Args)), R2: r})
	return cc.emitUnifySeq(t.Args, queue)
}

// emitListSpine compiles the cells of a list pattern in place with
// unify_list continuing from one cell to the next, so a static list
// costs two instructions per cell (the encoding the paper compares
// against PLM's one-instruction cdr-coding).
func (cc *clauseComp) emitListSpine(t *term.Compound, queue *[]getTask) error {
	for {
		head, tail, _ := term.IsCons(t)
		if err := cc.emitUnifySeq([]term.Term{head}, queue); err != nil {
			return err
		}
		if next, ok := tail.(*term.Compound); ok && next.Functor == term.DotAtom && len(next.Args) == 2 {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyList})
			t = next
			continue
		}
		return cc.emitUnifySeq([]term.Term{tail}, queue)
	}
}

// emitUnifySeq compiles the argument sequence of a get_list or
// get_structure (read or write mode at run time). Nested compounds
// are bound to fresh temporaries and processed breadth-first, exactly
// like WAM compilers do for head terms.
func (cc *clauseComp) emitUnifySeq(args []term.Term, queue *[]getTask) error {
	voids := 0
	flushVoids := func() {
		if voids > 0 {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVoid, N: voids})
			voids = 0
		}
	}
	for _, a := range args {
		switch x := a.(type) {
		case term.Var:
			vi := cc.info(x)
			if vi.occ == 1 && !vi.perm {
				voids++
				continue
			}
			flushVoids()
			if !vi.init {
				if vi.perm && cc.allocated {
					cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarY, N: vi.y})
					vi.init = true
					vi.fresh = true
					continue
				}
				r, err := cc.allocTemp()
				if err != nil {
					return err
				}
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarX, R1: r})
				vi.x = int(r)
				vi.init = true
				vi.fresh = true
				vi.owned = true
				if vi.perm {
					cc.pending = append(cc.pending, pendMove{x: int(r), y: vi.y})
				}
			} else {
				cc.emitUnifyValue(vi)
			}
		case term.Atom:
			flushVoids()
			if x == term.NilAtom {
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyNil})
			} else {
				k, _ := cc.c.constWord(x)
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
			}
		case term.Int, term.Float:
			flushVoids()
			k, _ := cc.c.constWord(x)
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
		case *term.Compound:
			flushVoids()
			r, err := cc.allocTemp()
			if err != nil {
				return err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarX, R1: r})
			*queue = append(*queue, getTask{reg: r, t: x})
		}
	}
	flushVoids()
	return nil
}

// emitUnifyValue emits the value form of unify for an initialised
// variable: the local variant whenever the register might hold a
// reference into the local stack (head-bound arguments, permanent
// variables), so that write mode never stores a heap-to-local
// reference.
func (cc *clauseComp) emitUnifyValue(vi *vinfo) {
	if vi.x >= 0 {
		if vi.fresh {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyValX, R1: kcmisa.Reg(vi.x)})
		} else {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyLocX, R1: kcmisa.Reg(vi.x)})
		}
		return
	}
	// Permanent variable not cached in a register.
	if vi.fresh && !vi.unsafeRef {
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyValY, N: vi.y})
	} else {
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyLocY, N: vi.y})
	}
}

// ---------- goal arguments (put context) ----------

// emitPuts loads A1..Am for a call or built-in. lastCall marks the
// final body goal, where unsafe permanent variables are globalised
// with put_unsafe_value before the environment is deallocated.
func (cc *clauseComp) emitPuts(args []term.Term, lastCall bool) error {
	m := len(args)
	// Phase A: evacuate variables living in argument registers that
	// are about to be overwritten. KCM's one-cycle register moves make
	// this cheap.
	for _, v := range cc.order {
		vi := cc.vars[v]
		if vi.x < 1 || vi.x > m {
			continue
		}
		occs := occPositions(args, v)
		if len(occs) == 0 {
			continue // dead here: chunk analysis guarantees no later use
		}
		if len(occs) == 1 && occs[0] == vi.x-1 && term.Equal(args[occs[0]], v) {
			continue // the whole argument, already in its target register
		}
		r, err := cc.allocTemp()
		if err != nil {
			return err
		}
		cc.emit(kcmisa.Instr{Op: kcmisa.GetVarX, R1: r, R2: kcmisa.Reg(vi.x)})
		vi.x = int(r)
		vi.owned = true
	}
	// Phase B: fill the argument registers.
	for j, a := range args {
		target := kcmisa.Reg(j + 1)
		if err := cc.emitPutArg(a, target, lastCall); err != nil {
			return err
		}
	}
	return nil
}

func occPositions(args []term.Term, v term.Var) []int {
	var out []int
	for i, a := range args {
		if term.Equal(a, v) {
			out = append(out, i)
		} else if hasVar(a, v) {
			out = append(out, i)
		}
	}
	return out
}

func hasVar(t term.Term, v term.Var) bool {
	switch x := t.(type) {
	case term.Var:
		return x == v
	case *term.Compound:
		for _, a := range x.Args {
			if hasVar(a, v) {
				return true
			}
		}
	}
	return false
}

func (cc *clauseComp) emitPutArg(a term.Term, target kcmisa.Reg, lastCall bool) error {
	switch x := a.(type) {
	case term.Var:
		vi := cc.info(x)
		switch {
		case vi.occ == 1 && !vi.perm:
			cc.emit(kcmisa.Instr{Op: kcmisa.PutVarX, R1: target, R2: target})
		case vi.perm && !vi.init:
			cc.emit(kcmisa.Instr{Op: kcmisa.PutVarY, N: vi.y, R2: target})
			vi.init = true
			vi.unsafeRef = true
		case vi.perm && lastCall && vi.unsafeRef:
			// Globalise before the environment disappears, even if a
			// (possibly local) copy is cached in a register.
			cc.emit(kcmisa.Instr{Op: kcmisa.PutUnsafeY, N: vi.y, R2: target})
			vi.x = -1
		case vi.perm && vi.x < 0:
			cc.emit(kcmisa.Instr{Op: kcmisa.PutValY, N: vi.y, R2: target})
		case !vi.init:
			// First occurrence of a temporary as a goal argument.
			r, err := cc.allocTemp()
			if err != nil {
				return err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.PutVarX, R1: r, R2: target})
			vi.x = int(r)
			vi.init = true
			vi.fresh = true
			vi.owned = true
		case vi.x == int(target):
			// already in place
		default:
			cc.emit(kcmisa.Instr{Op: kcmisa.PutValX, R1: kcmisa.Reg(vi.x), R2: target})
		}
		return nil
	case term.Atom:
		if x == term.NilAtom {
			cc.emit(kcmisa.Instr{Op: kcmisa.PutNil, R2: target})
			return nil
		}
		k, _ := cc.c.constWord(x)
		cc.emit(kcmisa.Instr{Op: kcmisa.PutConst, K: k, R2: target})
		return nil
	case term.Int, term.Float:
		k, _ := cc.c.constWord(x)
		cc.emit(kcmisa.Instr{Op: kcmisa.PutConst, K: k, R2: target})
		return nil
	case *term.Compound:
		return cc.emitBuildInto(x, target)
	}
	return cc.errf("cannot put %v", a)
}

// emitBuild constructs a compound term bottom-up in write mode and
// returns the register holding it. Child compounds are built first so
// every unify instruction refers to a finished value.
func (cc *clauseComp) emitBuild(t *term.Compound) (kcmisa.Reg, error) {
	r, err := cc.allocTemp()
	if err != nil {
		return 0, err
	}
	return r, cc.emitBuildAt(t, r)
}

func (cc *clauseComp) emitBuildInto(t *term.Compound, target kcmisa.Reg) error {
	return cc.emitBuildAt(t, target)
}

func (cc *clauseComp) emitBuildAt(t *term.Compound, target kcmisa.Reg) error {
	if t.Functor == term.DotAtom && len(t.Args) == 2 {
		return cc.emitBuildList(t, target)
	}
	// Build nested compounds first.
	children := make(map[int]kcmisa.Reg)
	for i, a := range t.Args {
		if sub, ok := a.(*term.Compound); ok {
			r, err := cc.emitBuild(sub)
			if err != nil {
				return err
			}
			children[i] = r
		}
	}
	cc.emit(kcmisa.Instr{Op: kcmisa.PutStruct, K: cc.c.functorWord(t.Functor, len(t.Args)), R2: target})
	voids := 0
	flushVoids := func() {
		if voids > 0 {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVoid, N: voids})
			voids = 0
		}
	}
	for i, a := range t.Args {
		switch x := a.(type) {
		case term.Var:
			vi := cc.info(x)
			if vi.occ == 1 && !vi.perm {
				voids++
				continue
			}
			flushVoids()
			if !vi.init {
				if vi.perm && cc.allocated {
					cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarY, N: vi.y})
					vi.init = true
					vi.fresh = true
					continue
				}
				r, err := cc.allocTemp()
				if err != nil {
					return err
				}
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarX, R1: r})
				vi.x = int(r)
				vi.init = true
				vi.fresh = true
				vi.owned = true
				if vi.perm {
					cc.pending = append(cc.pending, pendMove{x: int(r), y: vi.y})
				}
			} else {
				cc.emitUnifyValue(vi)
			}
		case term.Atom:
			flushVoids()
			if x == term.NilAtom {
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyNil})
			} else {
				k, _ := cc.c.constWord(x)
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
			}
		case term.Int, term.Float:
			flushVoids()
			k, _ := cc.c.constWord(x)
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
		case *term.Compound:
			flushVoids()
			r := children[i]
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyValX, R1: r})
			cc.freeTemp(r)
		}
	}
	flushVoids()
	return nil
}

// emitBuildList constructs a list bottom-up only for non-spine
// children: the spine itself is written as one sequential run of
// cells chained with unify_list, matching the heap layout the cells
// will occupy.
func (cc *clauseComp) emitBuildList(t *term.Compound, target kcmisa.Reg) error {
	// Collect the spine.
	var cars []term.Term
	var tail term.Term
	cur := t
	for {
		head, tl, _ := term.IsCons(cur)
		cars = append(cars, head)
		if next, ok := tl.(*term.Compound); ok && next.Functor == term.DotAtom && len(next.Args) == 2 {
			cur = next
			continue
		}
		tail = tl
		break
	}
	// Prebuild compound cars and a compound (non-list) tail.
	carReg := make(map[int]kcmisa.Reg)
	for i, car := range cars {
		if sub, ok := car.(*term.Compound); ok {
			r, err := cc.emitBuild(sub)
			if err != nil {
				return err
			}
			carReg[i] = r
		}
	}
	var tailReg kcmisa.Reg
	tailComp, tailIsComp := tail.(*term.Compound)
	if tailIsComp {
		r, err := cc.emitBuild(tailComp)
		if err != nil {
			return err
		}
		tailReg = r
	}
	cc.emit(kcmisa.Instr{Op: kcmisa.PutList, R2: target})
	for i, car := range cars {
		if r, ok := carReg[i]; ok {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyValX, R1: r})
			cc.freeTemp(r)
		} else if err := cc.emitWriteArg(car); err != nil {
			return err
		}
		if i < len(cars)-1 {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyList})
		}
	}
	if tailIsComp {
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyValX, R1: tailReg})
		cc.freeTemp(tailReg)
		return nil
	}
	return cc.emitWriteArg(tail)
}

// emitWriteArg emits one unify instruction for a non-compound subterm
// in write mode (constants and variables).
func (cc *clauseComp) emitWriteArg(a term.Term) error {
	switch x := a.(type) {
	case term.Var:
		vi := cc.info(x)
		if vi.occ == 1 && !vi.perm {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVoid, N: 1})
			return nil
		}
		if !vi.init {
			if vi.perm && cc.allocated {
				cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarY, N: vi.y})
				vi.init = true
				vi.fresh = true
				return nil
			}
			r, err := cc.allocTemp()
			if err != nil {
				return err
			}
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyVarX, R1: r})
			vi.x = int(r)
			vi.init = true
			vi.fresh = true
			vi.owned = true
			if vi.perm {
				cc.pending = append(cc.pending, pendMove{x: int(r), y: vi.y})
			}
			return nil
		}
		cc.emitUnifyValue(vi)
		return nil
	case term.Atom:
		if x == term.NilAtom {
			cc.emit(kcmisa.Instr{Op: kcmisa.UnifyNil})
			return nil
		}
		k, _ := cc.c.constWord(x)
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
		return nil
	case term.Int, term.Float:
		k, _ := cc.c.constWord(x)
		cc.emit(kcmisa.Instr{Op: kcmisa.UnifyConst, K: k})
		return nil
	}
	return cc.errf("cannot write %v", a)
}
