package dyndb_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/term"
)

// Edge behaviour of the clause store: auxiliary predicates from
// control constructs, call sites living inside the tail, retract on
// never-declared predicates, and the Materialize frontier contract.

// TestAuxPredicatesReplacedAcrossRebuilds asserts a clause whose body
// compiles through auxiliary predicates (a disjunction) and then
// mutates the chain again: the old rebuild's aux entries must be
// dropped from the entry table and the new ones used, or the linker
// would resolve stale names.
func TestAuxPredicatesReplacedAcrossRebuilds(t *testing.T) {
	st := mustStore(t, ":- dynamic(d/1).\n")
	if err := st.Assertz(pt(t, "d(X) :- ( X = a ; X = b )")); err != nil {
		t.Fatalf("assert with disjunction: %v", err)
	}
	wantSols(t, solve(t, st, "d(X)", 0), "X=a", "X=b")
	if err := st.Assertz(pt(t, "d(c)")); err != nil {
		t.Fatalf("second assert: %v", err)
	}
	wantSols(t, solve(t, st, "d(X)", 0), "X=a", "X=b", "X=c")
	if err := st.Assertz(pt(t, "d(Y) :- ( Y = e ; Y = f )")); err != nil {
		t.Fatalf("third assert: %v", err)
	}
	wantSols(t, solve(t, st, "d(X)", 0), "X=a", "X=b", "X=c", "X=e", "X=f")
}

// TestTailCallSiteRetargeted exercises the in-place patch branch of
// retargeting: r/1's call to s/1 lives in the tail (r was itself
// asserted), so when s moves the call site is rewritten directly
// rather than through the base-overlay patch map.
func TestTailCallSiteRetargeted(t *testing.T) {
	st := mustStore(t, ":- dynamic(r/1).\n:- dynamic(s/1).\n")
	if err := st.Assertz(pt(t, "s(one)")); err != nil {
		t.Fatal(err)
	}
	if err := st.Assertz(pt(t, "r(X) :- s(X)")); err != nil {
		t.Fatal(err)
	}
	wantSols(t, solve(t, st, "r(X)", 0), "X=one")
	// Each assert moves s/1 to a fresh block; r's tail-resident call
	// site must follow every time.
	for _, atom := range []string{"two", "three", "four"} {
		if err := st.Assertz(pt(t, "s("+atom+")")); err != nil {
			t.Fatal(err)
		}
	}
	wantSols(t, solve(t, st, "r(X)", 0), "X=one", "X=two", "X=three", "X=four")
}

// TestRetractUnknownPredicate: retracting from a predicate the
// database never saw is a clean "no", not an error or a declaration.
func TestRetractUnknownPredicate(t *testing.T) {
	db := mustDB(t, colorSrc)
	v0 := db.Version()
	ok, v, err := db.Retract(pt(t, "never_seen(x)"))
	if err != nil || ok {
		t.Fatalf("retract unknown: ok=%v err=%v", ok, err)
	}
	if v != v0 {
		t.Fatalf("no-op retract bumped version %d -> %d", v0, v)
	}
	if db.Dynamic(term.Ind("never_seen", 1)) {
		t.Fatal("retract declared the predicate")
	}
}

// TestAccessorEdges covers the small accessor contracts: Clauses of an
// unknown predicate is nil, New rejects a dynamic predicate without a
// stub, Reload of a fresh predicate that fails compilation leaves no
// half-declared residue.
func TestAccessorEdges(t *testing.T) {
	db := mustDB(t, colorSrc)
	if cls := db.Clauses(term.Ind("nope", 3)); cls != nil {
		t.Fatalf("Clauses of unknown pred = %v, want nil", cls)
	}

	im, _, err := core.MustLoad(colorSrc).BaseImage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyndb.New(im, []term.Indicator{term.Ind("no_stub", 9)}); err == nil ||
		!strings.Contains(err.Error(), "no stub") {
		t.Fatalf("New without stub: %v", err)
	}

	// A failing Reload on a brand-new predicate must not leave a
	// phantom declaration behind.
	fresh := term.Ind("fresh", 1)
	if _, err := db.Reload(fresh, []term.Term{pt(t, "fresh(X) :- no_such_body(X)")}); !errors.Is(err, dyndb.ErrBadClause) {
		t.Fatalf("bad reload: %v", err)
	}
	if db.Dynamic(fresh) {
		t.Fatal("failed reload left the predicate declared")
	}
	// And a good Reload of the same name works from scratch.
	if _, err := db.Reload(fresh, []term.Term{pt(t, "fresh(ok)")}); err != nil {
		t.Fatalf("reload after failure: %v", err)
	}
	if !db.Dynamic(fresh) {
		t.Fatal("reload did not declare the predicate")
	}
}

// TestStoreReloadAndBoundedSolve covers the Store's Reload front and
// Solve's max-solutions cut.
func TestStoreReloadAndBoundedSolve(t *testing.T) {
	st := mustStore(t, colorSrc)
	pi := term.Ind("color", 1)
	if err := st.Reload(pi, []term.Term{pt(t, "color(cyan)"), pt(t, "color(teal)")}); err != nil {
		t.Fatalf("store reload: %v", err)
	}
	wantSols(t, solve(t, st, "color(X)", 0), "X=cyan", "X=teal")
	wantSols(t, solve(t, st, "color(X)", 1), "X=cyan")
	if err := st.Reload(pi, []term.Term{pt(t, ":- broken")}); !errors.Is(err, dyndb.ErrBadClause) {
		t.Fatalf("bad store reload: %v", err)
	}
	// The failed reload changed nothing.
	wantSols(t, solve(t, st, "color(X)", 0), "X=cyan", "X=teal")
}

// TestMaterializeRejectsForeignFrontier: a machine whose code frontier
// is outside [baseTop, baseTop+len(tail)] — one booted from some other
// image — cannot take this database's delta.
func TestMaterializeRejectsForeignFrontier(t *testing.T) {
	db := mustDB(t, colorSrc)
	if _, err := db.Assertz(pt(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	foreign := `
f1(a). f2(b). f3(c). f4(d). f5(e).
g(X) :- f1(X), f2(X), f3(X), f4(X), f5(X).
`
	im, _, err := core.MustLoad(foreign).BaseImage()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(im, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(m); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("foreign frontier: %v", err)
	}
}
