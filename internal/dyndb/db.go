// Package dyndb is the dynamic clause database: assert(a|z)/retract
// over per-predicate clause chains compiled through the regular
// compiler, with first-argument indexing regenerated on every
// mutation, layered copy-on-write above an immutable base image.
//
// A DB owns one tenant's view of a program: the shared base code
// space (never written), a private code tail holding every rebuilt
// predicate block, and a sparse overlay of patched base words — the
// Call/Execute sites retargeted when a mutated predicate's entry
// moved. Machines materialise the view on demand (install.go): the
// whole pool shares one boot image while each tenant's asserted
// clauses stay private to its delta.
//
// Every block enters a code space only through the analyzer's
// loader-grade validation (analysis.CheckEncoded): a malformed
// runtime clause is rejected with a typed *machine.CodeError before
// it can reach any machine, and the database state is unchanged.
package dyndb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/machine"
	"repro/internal/term"
	"repro/internal/word"
)

// Typed rejections of the mutation API.
var (
	// ErrStaticPred: the predicate is compiled statically in the base
	// image and cannot be mutated at runtime.
	ErrStaticPred = errors.New("dyndb: predicate is not dynamic")
	// ErrBadClause: the clause term is not compilable (non-callable
	// head, malformed control construct, unknown body goal...).
	ErrBadClause = errors.New("dyndb: malformed clause")
)

// pred is one dynamic predicate's clause chain and its current
// compiled block.
type pred struct {
	clauses []term.Term      // source clauses, chain order
	addr    uint32           // current entry address
	lo, hi  uint32           // current block extent (aux included)
	aux     []term.Indicator // auxiliary entries of the current block
}

// DB is one tenant's dynamic database over a shared base image.
type DB struct {
	mu   sync.Mutex
	syms *term.SymTab
	im   *asm.Image // the shared boot image; machines boot from it

	base        []word.Word // im.Code: shared, read-only
	baseTop     uint32
	baseEntries map[term.Indicator]uint32

	tail    []word.Word               // private delta code, loaded at baseTop
	patches map[uint32]word.Word      // private rewrites of loaded words (base and tail)
	entries map[term.Indicator]uint32 // full current entry table
	preds   map[term.Indicator]*pred
	version uint64
	auxSeq  int
}

// New builds a database over a linked base image. The dynamic
// predicates must be present in the image as stubs or compiled
// chains (core.Program.BaseImage emits fail stubs); asserting to any
// other predicate of the image is rejected with ErrStaticPred, and
// asserting to a predicate the image does not know declares it on
// the fly.
func New(im *asm.Image, dynamic []term.Indicator) (*DB, error) {
	db := &DB{
		syms:        im.Syms,
		im:          im,
		base:        im.Code,
		baseTop:     uint32(len(im.Code)),
		baseEntries: make(map[term.Indicator]uint32, len(im.Entries)),
		patches:     map[uint32]word.Word{},
		entries:     make(map[term.Indicator]uint32, len(im.Entries)),
		preds:       map[term.Indicator]*pred{},
	}
	for pi, a := range im.Entries {
		db.baseEntries[pi] = a
		db.entries[pi] = a
	}
	for _, pi := range dynamic {
		a, ok := im.Entries[pi]
		if !ok {
			return nil, fmt.Errorf("dyndb: dynamic predicate %v has no stub in the base image", pi)
		}
		db.preds[pi] = &pred{addr: a, lo: a, hi: a + 1}
	}
	return db, nil
}

// Image returns the shared boot image machines materialising this
// database must have booted from.
func (db *DB) Image() *asm.Image { return db.im }

// Syms returns the symbol table shared by the base image and every
// block the database compiles.
func (db *DB) Syms() *term.SymTab { return db.syms }

// Version is a monotone mutation counter; it advances on every
// successful assert or retract, and installs compare it to decide
// whether a machine's materialised view is current.
func (db *DB) Version() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// Dynamic reports whether pi is a dynamic predicate of this database.
func (db *DB) Dynamic(pi term.Indicator) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.preds[pi]
	return ok
}

// Clauses returns a copy of the predicate's current chain.
func (db *DB) Clauses(pi term.Indicator) []term.Term {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.preds[pi]
	if !ok {
		return nil
	}
	return append([]term.Term(nil), p.clauses...)
}

// Clone makes an independent database sharing the immutable base:
// the seed of a fresh tenant. Clause terms are shared (the reader
// never mutates a parsed term); the tail, overlay, entry table and
// chains are copied.
func (db *DB) Clone() *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	c := &DB{
		syms:        db.syms,
		im:          db.im,
		base:        db.base,
		baseTop:     db.baseTop,
		baseEntries: db.baseEntries,
		tail:        append([]word.Word(nil), db.tail...),
		patches:     make(map[uint32]word.Word, len(db.patches)),
		entries:     make(map[term.Indicator]uint32, len(db.entries)),
		preds:       make(map[term.Indicator]*pred, len(db.preds)),
		version:     db.version,
		auxSeq:      db.auxSeq,
	}
	for a, w := range db.patches {
		c.patches[a] = w
	}
	for pi, a := range db.entries {
		c.entries[pi] = a
	}
	for pi, p := range db.preds {
		cp := *p
		cp.clauses = append([]term.Term(nil), p.clauses...)
		cp.aux = append([]term.Indicator(nil), p.aux...)
		c.preds[pi] = &cp
	}
	return c
}

// clauseHead returns the head of a clause term (the term itself for
// a fact), or nil for a directive.
func clauseHead(t term.Term) term.Term {
	if c, ok := t.(*term.Compound); ok {
		if c.Functor == ":-" && len(c.Args) == 2 {
			return c.Args[0]
		}
		if (c.Functor == ":-" || c.Functor == "?-") && len(c.Args) == 1 {
			return nil
		}
	}
	return t
}

// Assertz appends a clause to its predicate's chain; Asserta
// prepends. Both return the database version the mutation produced.
// A predicate unknown to the base image is declared dynamic on the
// fly; a static predicate of the base image is rejected with
// ErrStaticPred; an uncompilable clause is rejected with ErrBadClause
// (and a block failing loader-grade validation with a
// *machine.CodeError) — in every rejection case the database is
// unchanged.
func (db *DB) Assertz(cl term.Term) (uint64, error) { return db.assert(cl, false) }

// Asserta prepends a clause to its predicate's chain. See Assertz.
func (db *DB) Asserta(cl term.Term) (uint64, error) { return db.assert(cl, true) }

func (db *DB) assert(cl term.Term, front bool) (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pi, p, err := db.chainFor(cl, true)
	if err != nil {
		return 0, err
	}
	next := make([]term.Term, 0, len(p.clauses)+1)
	if front {
		next = append(next, cl)
		next = append(next, p.clauses...)
	} else {
		next = append(next, p.clauses...)
		next = append(next, cl)
	}
	if _, err := db.rebuild(pi, p, next); err != nil {
		return 0, err
	}
	return db.version, nil
}

// Retract removes the first clause of the chain that is a variant of
// cl (equal up to variable renaming) and reports whether one was
// found. The predicate's dispatch is rebuilt without it; retracting
// the last clause leaves a fail stub, exactly like a freshly
// declared predicate.
func (db *DB) Retract(cl term.Term) (bool, uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pi, p, err := db.chainFor(cl, false)
	if err != nil {
		return false, 0, err
	}
	if p == nil {
		return false, db.version, nil
	}
	at := -1
	for i, have := range p.clauses {
		if term.Variant(have, cl) {
			at = i
			break
		}
	}
	if at < 0 {
		return false, db.version, nil
	}
	next := make([]term.Term, 0, len(p.clauses)-1)
	next = append(next, p.clauses[:at]...)
	next = append(next, p.clauses[at+1:]...)
	if _, err := db.rebuild(pi, p, next); err != nil {
		return false, 0, err
	}
	return true, db.version, nil
}

// Reload replaces a predicate's whole chain in one rebuild — the
// seeding path for initial clauses, and the bulk form of assert.
func (db *DB) Reload(pi term.Indicator, clauses []term.Term) (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.preds[pi]
	if !ok {
		if _, static := db.baseEntries[pi]; static {
			return 0, fmt.Errorf("%w: %v", ErrStaticPred, pi)
		}
		p = &pred{}
		db.preds[pi] = p
	}
	if _, err := db.rebuild(pi, p, append([]term.Term(nil), clauses...)); err != nil {
		if len(p.clauses) == 0 && p.hi == 0 {
			delete(db.preds, pi) // fresh declaration never materialised
		}
		return 0, err
	}
	return db.version, nil
}

// chainFor validates a clause term and resolves (declaring when
// asked) its predicate's chain.
func (db *DB) chainFor(cl term.Term, declare bool) (term.Indicator, *pred, error) {
	head := clauseHead(cl)
	if head == nil {
		return term.Indicator{}, nil, fmt.Errorf("%w: %v is a directive", ErrBadClause, cl)
	}
	pi, ok := term.TermIndicator(head)
	if !ok {
		return term.Indicator{}, nil, fmt.Errorf("%w: head %v is not callable", ErrBadClause, head)
	}
	p, known := db.preds[pi]
	if !known {
		if _, static := db.baseEntries[pi]; static {
			return term.Indicator{}, nil, fmt.Errorf("%w: %v", ErrStaticPred, pi)
		}
		if !declare {
			return pi, nil, nil
		}
		p = &pred{}
		db.preds[pi] = p
	}
	return pi, p, nil
}

// rebuild compiles a predicate's new chain, links it at the top of
// the delta, validates it, and — only then — commits: the block is
// appended to the tail, the entry table is updated, and every call
// site of the old entry is retargeted to the new block. Callers hold
// db.mu.
func (db *DB) rebuild(pi term.Indicator, p *pred, clauses []term.Term) (*change, error) {
	c := compiler.New(db.syms)
	c.SetAuxBase(db.auxSeq)
	mod, err := c.CompileClauses(pi, clauses)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadClause, err)
	}
	top := db.baseTop + uint32(len(db.tail))
	im, err := asm.LinkAt(mod, top, db.entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadClause, err)
	}
	if ds := analysis.CheckEncodedCached(im.Code, top, top); len(ds) > 0 {
		return nil, &machine.CodeError{Base: top, Diags: ds}
	}
	newAddr, ok := im.Entries[pi]
	if !ok {
		return nil, fmt.Errorf("dyndb: linked block lost entry %v", pi)
	}

	// Commit. The old entry address (0 means a fresh declaration with
	// no callers yet) is retargeted across the whole image.
	oldAddr := p.addr
	ch := &change{
		pi:        pi,
		addr:      newAddr,
		blockBase: top,
		block:     im.Code,
		version:   db.version + 1,
	}
	db.tail = append(db.tail, im.Code...)
	for _, api := range p.aux {
		delete(db.entries, api)
		ch.dropEntries = append(ch.dropEntries, api)
	}
	p.aux = p.aux[:0]
	for _, mpi := range im.Order {
		if mpi != pi {
			p.aux = append(p.aux, mpi)
		}
		db.entries[mpi] = im.Entries[mpi]
		ch.addEntries = append(ch.addEntries, entryOp{pi: mpi, addr: im.Entries[mpi]})
	}
	p.clauses = clauses
	p.addr = newAddr
	p.lo, p.hi = top, top+uint32(len(im.Code))
	if oldAddr != 0 {
		ch.patches = db.retarget(oldAddr, newAddr)
	}
	db.auxSeq = c.AuxBase()
	db.version++
	return ch, nil
}

// codeAt reads the database's current view of the code space: base
// words under their overlay, then the private tail.
func (db *DB) codeAt(a uint32) word.Word {
	if a < db.baseTop {
		if w, ok := db.patches[a]; ok {
			return w
		}
		return db.base[a]
	}
	if i := int(a - db.baseTop); i < len(db.tail) {
		return db.tail[i]
	}
	return 0
}

// retarget rewrites every Call/Execute site whose target is old to
// point at new, walking the image instruction by instruction (switch
// tables are skipped atomically, so a key word can never be mistaken
// for a call). The value part of the instruction word is rewritten
// in place; the opcode half is untouched. Tail words are additionally
// updated in place (the tail is private, and a fresh machine loads it
// wholesale), but every rewrite goes to the overlay, which is how
// incremental Materialize repairs call sites below an already-synced
// machine's frontier. Returns the applied patches in address order.
func (db *DB) retarget(old, new uint32) []patchOp {
	var out []patchOp
	top := db.baseTop + uint32(len(db.tail))
	var in kcmisa.Instr
	for a := uint32(0); a < top; {
		n := kcmisa.DecodeInto(db.codeAt, a, &in)
		if n <= 0 {
			n = 1
		}
		if (in.Op == kcmisa.Call || in.Op == kcmisa.Execute) && in.L == int(old) {
			w := db.codeAt(a)&^word.Word(0xFFFFFFFF) | word.Word(new)
			if a >= db.baseTop {
				db.tail[a-db.baseTop] = w
			}
			// Every rewrite also lands in the overlay — including tail
			// words — because Materialize onto an already-synced machine
			// loads only the tail beyond its frontier; the overlay sweep
			// is what reaches call sites below it.
			db.patches[a] = w
			out = append(out, patchOp{addr: a, w: w})
		}
		a += uint32(n)
	}
	return out
}

// entriesSnapshot copies the current entry table; callers hold db.mu.
func (db *DB) entriesSnapshot() map[term.Indicator]uint32 {
	out := make(map[term.Indicator]uint32, len(db.entries))
	for pi, a := range db.entries {
		out[pi] = a
	}
	return out
}

// sortedPatches returns the overlay in address order; callers hold
// db.mu.
func (db *DB) sortedPatches() []patchOp {
	out := make([]patchOp, 0, len(db.patches))
	for a, w := range db.patches {
		out = append(out, patchOp{addr: a, w: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}
