package dyndb_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/reader"
	"repro/internal/term"
)

// The copy-on-write benchmark pair: what does the K-th tenant cost?
//
// BenchmarkTenantCOW measures the intended design — one shared base
// image, each new tenant a Clone (O(preds) map copy, zero code words)
// plus one private assert. BenchmarkTenantFullCopy measures the
// N-full-copies strawman it replaces: every tenant re-parses and
// re-compiles the whole program into its own image. ns/op is
// per-tenant setup latency; B/op is per-tenant allocation.
// scripts/cowbench.sh records both in BENCH_9.json.

// benchTenantSrc is the shared base program: the demo list library
// plus enough static ballast that "recompile everything per tenant"
// has a realistic price, and one dynamic predicate for tenant deltas.
const benchTenantSrc = `
:- dynamic(owns/2).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
last([X], X).
last([_|T], X) :- last(T, X).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
perm([], []).
perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
color(red). color(green). color(blue). color(white). color(black).
shade(C) :- color(C).
pair(X, Y) :- color(X), color(Y).
`

func benchBaseDB(tb testing.TB) *dyndb.DB {
	tb.Helper()
	p, err := core.Load(benchTenantSrc)
	if err != nil {
		tb.Fatal(err)
	}
	im, ds, err := p.BaseImage()
	if err != nil {
		tb.Fatal(err)
	}
	db, err := dyndb.New(im, ds.Order)
	if err != nil {
		tb.Fatal(err)
	}
	for _, pi := range ds.Order {
		if cls := ds.Clauses[pi]; len(cls) > 0 {
			if _, err := db.Reload(pi, cls); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return db
}

func tenantFact(tb testing.TB, i int) term.Term {
	tb.Helper()
	cl, err := reader.ParseTerm(fmt.Sprintf("owns(t%d, key%d) .", i, i))
	if err != nil {
		tb.Fatal(err)
	}
	return cl
}

func BenchmarkTenantCOW(b *testing.B) {
	base := benchBaseDB(b)
	fact := tenantFact(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenant := base.Clone()
		if _, err := tenant.Assertz(fact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTenantFullCopy(b *testing.B) {
	fact := tenantFact(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenant := benchBaseDB(b)
		if _, err := tenant.Assertz(fact); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTenantRetainedMemory complements the benchmarks' allocation
// rates with *retained* heap — what K live tenants actually hold after
// GC, the number that stands in for per-tenant RSS. Gated behind
// KCM_COWBENCH=1 because it forces collections; scripts/cowbench.sh
// runs it and parses the key=value lines.
func TestTenantRetainedMemory(t *testing.T) {
	if os.Getenv("KCM_COWBENCH") != "1" {
		t.Skip("set KCM_COWBENCH=1 to run the retained-memory measurement")
	}
	const K = 200

	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	measure := func(mk func(i int) *dyndb.DB) uint64 {
		tenants := make([]*dyndb.DB, 0, K)
		before := heapNow()
		for i := 0; i < K; i++ {
			tenants = append(tenants, mk(i))
		}
		after := heapNow()
		// Spot-check isolation so the measurement can't silently
		// measure K handles to one shared mutable database.
		if cls := tenants[3].Clauses(term.Ind("owns", 2)); len(cls) != 1 {
			t.Fatalf("tenant 3 clause chain: %v", cls)
		}
		if v0, vK := tenants[0].Version(), tenants[K-1].Version(); v0 == 0 || vK == 0 {
			t.Fatalf("unmutated tenants: versions %d, %d", v0, vK)
		}
		runtime.KeepAlive(tenants)
		if after <= before {
			return 0
		}
		return (after - before) / K
	}

	base := benchBaseDB(t)
	cow := measure(func(i int) *dyndb.DB {
		tenant := base.Clone()
		if _, err := tenant.Assertz(tenantFact(t, i)); err != nil {
			t.Fatal(err)
		}
		return tenant
	})
	full := measure(func(i int) *dyndb.DB {
		tenant := benchBaseDB(t)
		if _, err := tenant.Assertz(tenantFact(t, i)); err != nil {
			t.Fatal(err)
		}
		return tenant
	})

	fmt.Printf("cowbench: tenants=%d\n", K)
	fmt.Printf("cowbench: cow_retained_bytes_per_tenant=%d\n", cow)
	fmt.Printf("cowbench: fullcopy_retained_bytes_per_tenant=%d\n", full)
	if full <= cow {
		t.Fatalf("COW tenants retain %d B each, full copies %d B: sharing buys nothing", cow, full)
	}
}
