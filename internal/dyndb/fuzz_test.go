package dyndb_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/reader"
)

// Property layer for the mutation path. FuzzAssertRetract checks the
// database against a trivially-correct model: a Go slice of clause
// texts per predicate, mutated by the same ordered assertz / asserta /
// retract rules. Whatever interleaving the fuzzer invents, the
// compiled, indexed, machine-executed chain must enumerate exactly
// the model's clauses in the model's order. FuzzMalformedClause feeds
// arbitrary terms through assert and pins the rejection contract:
// failures are typed (ErrStaticPred, ErrBadClause or a *CodeError),
// never a panic, and the machine still answers a control query after
// every rejection.

const fuzzSrc = `
:- dynamic(p/1).
:- dynamic(q/1).
peek(X) :- p(X).
`

// fuzzAtoms is the constant alphabet mutations draw from.
var fuzzAtoms = [8]string{"a", "b", "c", "d", "e", "f", "g", "h"}

// FuzzAssertRetract drives a random interleaving of assertz, asserta
// and retract over two predicates and checks, after every mutation,
// that enumeration matches the model database.
func FuzzAssertRetract(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x04, 0x05})             // assertz then retract on p
	f.Add([]byte{0x02, 0x0a, 0x12, 0x06, 0x04})       // asserta stack on p, retracts
	f.Add([]byte{0x01, 0x09, 0x11, 0x19, 0x05, 0x0d}) // q traffic
	f.Add([]byte{0x38, 0x30, 0x28, 0x20, 0x3c, 0x34})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48] // every op re-verifies a growing chain; cap the walk
		}
		st := mustStore(t, fuzzSrc)
		model := map[string][]string{"p": nil, "q": nil}
		for i, op := range ops {
			pred := "p"
			if op&1 != 0 {
				pred = "q"
			}
			atom := fuzzAtoms[(op>>3)&7]
			clause := fmt.Sprintf("%s(%s)", pred, atom)
			switch (op >> 1) & 3 {
			case 0, 3: // assertz (3 keeps the op space dense)
				if err := st.Assertz(pt(t, clause)); err != nil {
					t.Fatalf("op %d: assertz %s: %v", i, clause, err)
				}
				model[pred] = append(model[pred], atom)
			case 1: // asserta
				if err := st.Asserta(pt(t, clause)); err != nil {
					t.Fatalf("op %d: asserta %s: %v", i, clause, err)
				}
				model[pred] = append([]string{atom}, model[pred]...)
			case 2: // retract first occurrence
				got, err := st.Retract(pt(t, clause))
				if err != nil {
					t.Fatalf("op %d: retract %s: %v", i, clause, err)
				}
				want := false
				for j, a := range model[pred] {
					if a == atom {
						model[pred] = append(model[pred][:j:j], model[pred][j+1:]...)
						want = true
						break
					}
				}
				if got != want {
					t.Fatalf("op %d: retract %s = %v, model says %v", i, clause, got, want)
				}
			}
			for _, p := range []string{"p", "q"} {
				want := make([]string, len(model[p]))
				for j, a := range model[p] {
					want[j] = "X=" + a
				}
				wantSols(t, solve(t, st, p+"(X)", 0), want...)
			}
		}
		// The rule over p/1 tracks too (indexing through a caller).
		want := make([]string, len(model["p"]))
		for j, a := range model["p"] {
			want[j] = "X=" + a
		}
		wantSols(t, solve(t, st, "peek(X)", 0), want...)
	})
}

// FuzzMalformedClause asserts arbitrary fuzz-built terms into a
// database whose named predicates are all static, so every known-head
// clause is rejected and unknown heads exercise on-the-fly
// declaration. The invariants: no panic, every rejection is typed,
// and the store still answers a static control query afterwards.
func FuzzMalformedClause(f *testing.F) {
	f.Add("color(red)")
	f.Add(":- dynamic(z/1)")
	f.Add("42")
	f.Add("X")
	f.Add("zzz(X) :- no_such_pred(X)")
	f.Add("zzz(X) :- app(X, X, X)")
	f.Add("app(a, b)")
	f.Add("foo(") // parse failure
	f.Fuzz(func(t *testing.T, text string) {
		const src = `
color(white).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`
		db := mustDB(t, src)
		st, err := dyndb.NewStore(db, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(strings.TrimSpace(text), ".") {
			text += " ."
		}
		cl, err := reader.ParseTerm(text)
		if err == nil {
			if err := st.Assertz(cl); err != nil {
				var ce *machine.CodeError
				if !errors.Is(err, dyndb.ErrStaticPred) &&
					!errors.Is(err, dyndb.ErrBadClause) &&
					!errors.As(err, &ce) {
					t.Fatalf("untyped rejection for %q: %v", text, err)
				}
			}
		}
		// Whatever happened, the machine still answers.
		wantSols(t, solve(t, st, "app([a], [b], R)", 0), "R=[a,b]")
	})
}

// TestFuzzSeedsAsUnitTests replays the seed corpus deterministically
// so the property layer runs on every plain `go test`, not only under
// -fuzz.
func TestFuzzSeedsAsUnitTests(t *testing.T) {
	st := mustStore(t, fuzzSrc)
	for _, op := range []string{"p(a)", "p(b)", "q(c)"} {
		if err := st.Assertz(pt(t, op)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := st.Retract(pt(t, "p(a)")); err != nil || !ok {
		t.Fatalf("retract: %v %v", ok, err)
	}
	wantSols(t, solve(t, st, "p(X)", 0), "X=b")
	wantSols(t, solve(t, st, "q(X)", 0), "X=c")
	wantSols(t, solve(t, st, "peek(X)", 0), "X=b")
}
