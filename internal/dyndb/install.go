package dyndb

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/term"
	"repro/internal/word"
)

// change describes one committed mutation as machine operations: the
// rebuilt block to load, the call sites to patch, and the entry-table
// edits. A Store applies changes incrementally to its live machine;
// pooled machines ignore them and resynchronise wholesale through
// Materialize on version mismatch.
type change struct {
	pi          term.Indicator
	addr        uint32 // new entry address of the rebuilt predicate
	blockBase   uint32
	block       []word.Word
	patches     []patchOp
	dropEntries []term.Indicator
	addEntries  []entryOp
	version     uint64
}

type patchOp struct {
	addr uint32
	w    word.Word
}

type entryOp struct {
	pi   term.Indicator
	addr uint32
}

// View is a consistent snapshot of a materialised database: the code
// frontier goal blocks load above, the entry table goals link
// against, and the version the machine now carries.
type View struct {
	Top     uint32
	Entries map[term.Indicator]uint32
	Version uint64
}

// Materialize installs the database's delta onto a machine sitting at
// the shared boot frontier: the private tail is loaded above the base
// (diff-aware — identical words already present from a previous visit
// of the same tenant cost nothing), the copy-on-write overlay is
// patched over the base, and the entry table is brought up to date.
// The returned View is consistent: it reflects exactly the version
// installed, even if the database mutates concurrently afterwards.
func (db *DB) Materialize(m *machine.Machine) (View, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	top := m.CodeTop()
	if top < db.baseTop || uint64(top) > uint64(db.baseTop)+uint64(len(db.tail)) {
		return View{}, fmt.Errorf("dyndb: machine frontier %d outside [%d,%d], roll back or truncate first",
			top, db.baseTop, db.baseTop+uint32(len(db.tail)))
	}
	if _, err := m.LoadDyn(db.tail[top-db.baseTop:]); err != nil {
		return View{}, err
	}
	for _, p := range db.sortedPatches() {
		if m.CodeWordAt(p.addr) == p.w {
			continue
		}
		if err := m.PatchDyn(p.addr, []word.Word{p.w}); err != nil {
			return View{}, err
		}
	}
	for pi, a := range db.entries {
		// Entries the boot image already carries at the same address
		// (the common case: untouched predicates) need no registration.
		if db.baseEntries[pi] != a {
			m.RegisterPred(pi, a)
		}
	}
	return View{
		Top:     db.baseTop + uint32(len(db.tail)),
		Entries: db.entriesSnapshot(),
		Version: db.version,
	}, nil
}
