package dyndb_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
)

// mustDB compiles src through core.BaseImage and seeds a database
// with the declared dynamic predicates' initial clauses.
func mustDB(t *testing.T, src string) *dyndb.DB {
	t.Helper()
	p := core.MustLoad(src)
	im, ds, err := p.BaseImage()
	if err != nil {
		t.Fatalf("BaseImage: %v", err)
	}
	db, err := dyndb.New(im, ds.Order)
	if err != nil {
		t.Fatalf("dyndb.New: %v", err)
	}
	for _, pi := range ds.Order {
		if cls := ds.Clauses[pi]; len(cls) > 0 {
			if _, err := db.Reload(pi, cls); err != nil {
				t.Fatalf("seed %v: %v", pi, err)
			}
		}
	}
	return db
}

func mustStore(t *testing.T, src string) *dyndb.Store {
	t.Helper()
	s, err := dyndb.NewStore(mustDB(t, src), machine.Config{})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func pt(t *testing.T, src string) term.Term {
	t.Helper()
	if !strings.HasSuffix(src, ".") {
		src += " ."
	}
	tm, err := reader.ParseTerm(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return tm
}

// solve runs a goal and renders each solution's bindings in a stable
// "X=v,Y=w" form.
func solve(t *testing.T, s *dyndb.Store, goal string, max int) []string {
	t.Helper()
	sols, _, err := s.Solve(pt(t, goal), max)
	if err != nil {
		t.Fatalf("solve %q: %v", goal, err)
	}
	out := make([]string, 0, len(sols))
	for _, b := range sols {
		names := make([]string, 0, len(b))
		for v := range b {
			names = append(names, string(v))
		}
		sort.Strings(names)
		var parts []string
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%v", n, b[term.Var(n)]))
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func wantSols(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("solutions: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solution %d: got %v, want %v", i, got, want)
		}
	}
}

const colorSrc = `
:- dynamic(color/1).
likes(X) :- color(X).
`

func TestAssertQueryRetract(t *testing.T) {
	s := mustStore(t, colorSrc)

	// Empty chain: the fail stub backtracks like any exhausted pred.
	wantSols(t, solve(t, s, "likes(X).", 0))

	for _, c := range []string{"color(red)", "color(green)"} {
		if err := s.Assertz(pt(t, c)); err != nil {
			t.Fatalf("assertz %s: %v", c, err)
		}
	}
	wantSols(t, solve(t, s, "likes(X).", 0), "X=red", "X=green")

	// Asserta prepends.
	if err := s.Asserta(pt(t, "color(blue)")); err != nil {
		t.Fatalf("asserta: %v", err)
	}
	wantSols(t, solve(t, s, "likes(X).", 0), "X=blue", "X=red", "X=green")

	// Retract removes the first variant match.
	ok, err := s.Retract(pt(t, "color(red)"))
	if err != nil || !ok {
		t.Fatalf("retract: ok=%v err=%v", ok, err)
	}
	wantSols(t, solve(t, s, "likes(X).", 0), "X=blue", "X=green")

	// Retracting a clause that is not there reports false.
	ok, err = s.Retract(pt(t, "color(red)"))
	if err != nil || ok {
		t.Fatalf("retract missing: ok=%v err=%v", ok, err)
	}

	// Down to empty again: back to the stub semantics.
	for _, c := range []string{"color(blue)", "color(green)"} {
		if ok, err := s.Retract(pt(t, c)); err != nil || !ok {
			t.Fatalf("retract %s: ok=%v err=%v", c, ok, err)
		}
	}
	wantSols(t, solve(t, s, "likes(X).", 0))
	if cls := s.DB().Clauses(term.Ind("color", 1)); len(cls) != 0 {
		t.Fatalf("chain not empty: %v", cls)
	}
}

func TestFirstArgIndexingRegenerated(t *testing.T) {
	s := mustStore(t, ":- dynamic(p/2).\n")
	for _, c := range []string{"p(a,1)", "p(b,2)", "p(a,3)", "p(c,4)"} {
		if err := s.Assertz(pt(t, c)); err != nil {
			t.Fatalf("assertz %s: %v", c, err)
		}
	}
	// Bound first argument goes through the regenerated
	// switch_on_const dispatch; only the matching bucket enumerates.
	wantSols(t, solve(t, s, "p(a,X).", 0), "X=1", "X=3")
	wantSols(t, solve(t, s, "p(b,X).", 0), "X=2")
	wantSols(t, solve(t, s, "p(q,X).", 0))
	// Unbound first argument still tries every clause in chain order.
	wantSols(t, solve(t, s, "p(X,Y).", 0), "X=a,Y=1", "X=b,Y=2", "X=a,Y=3", "X=c,Y=4")
}

func TestRecursiveDynamicPredicate(t *testing.T) {
	s := mustStore(t, ":- dynamic(count/1).\n")
	if err := s.Assertz(pt(t, "count(z)")); err != nil {
		t.Fatal(err)
	}
	if err := s.Assertz(pt(t, "count(s(X)) :- count(X)")); err != nil {
		t.Fatal(err)
	}
	// The recursive self-call must target the rebuilt block, not a
	// stale one.
	wantSols(t, solve(t, s, "count(s(s(s(z)))).", 0), "")
	wantSols(t, solve(t, s, "count(X).", 2), "X=z", "X=s(z)")
}

func TestInitialClausesSeeded(t *testing.T) {
	s := mustStore(t, `
:- dynamic(fact/2).
fact(one, 1).
fact(two, 2).
sum(X) :- fact(_, X).
`)
	wantSols(t, solve(t, s, "sum(X).", 0), "X=1", "X=2")
	if err := s.Assertz(pt(t, "fact(three, 3)")); err != nil {
		t.Fatal(err)
	}
	wantSols(t, solve(t, s, "sum(X).", 0), "X=1", "X=2", "X=3")
}

func TestOnTheFlyDeclaration(t *testing.T) {
	s := mustStore(t, "p(1).\n")
	// q/1 is unknown to the base image: asserting declares it.
	if err := s.Assertz(pt(t, "q(7)")); err != nil {
		t.Fatalf("assert to fresh predicate: %v", err)
	}
	wantSols(t, solve(t, s, "q(X).", 0), "X=7")
	if !s.DB().Dynamic(term.Ind("q", 1)) {
		t.Fatal("q/1 not marked dynamic")
	}
}

func TestStaticPredicateRejected(t *testing.T) {
	s := mustStore(t, "p(1).\n")
	if err := s.Assertz(pt(t, "p(2)")); !errors.Is(err, dyndb.ErrStaticPred) {
		t.Fatalf("assert to static pred: err=%v, want ErrStaticPred", err)
	}
	if _, _, err := s.DB().Retract(pt(t, "p(1)")); !errors.Is(err, dyndb.ErrStaticPred) {
		t.Fatalf("retract from static pred: err=%v, want ErrStaticPred", err)
	}
	if _, err := s.DB().Reload(term.Ind("p", 1), nil); !errors.Is(err, dyndb.ErrStaticPred) {
		t.Fatalf("reload static pred: err=%v, want ErrStaticPred", err)
	}
	// The machine still answers after every rejection.
	wantSols(t, solve(t, s, "p(X).", 0), "X=1")
}

func TestMalformedClausesRejected(t *testing.T) {
	s := mustStore(t, colorSrc)
	if err := s.Assertz(pt(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		":- dynamic(q/1)",               // a directive is not a clause
		"color(X) :- undefined_goal(X)", // unknown body goal fails the link
	} {
		if err := s.Assertz(pt(t, bad)); !errors.Is(err, dyndb.ErrBadClause) {
			t.Fatalf("assert %q: err=%v, want ErrBadClause", bad, err)
		}
	}
	// Non-callable heads never parse from source; build the terms
	// directly.
	for _, bad := range []term.Term{
		term.Int(42),
		term.Var("X"),
		&term.Compound{Functor: ":-", Args: []term.Term{term.Int(1), term.Atom("true")}},
	} {
		if err := s.Assertz(bad); !errors.Is(err, dyndb.ErrBadClause) {
			t.Fatalf("assert %v: err=%v, want ErrBadClause", bad, err)
		}
	}
	// Database and machine state survived every rejection unchanged.
	wantSols(t, solve(t, s, "likes(X).", 0), "X=red")
	if got := len(s.DB().Clauses(term.Ind("color", 1))); got != 1 {
		t.Fatalf("chain length after rejections: %d", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	db := mustDB(t, colorSrc)
	if _, err := db.Assertz(pt(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	c := db.Clone()
	if _, err := c.Assertz(pt(t, "color(green)")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Retract(pt(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Clauses(term.Ind("color", 1))); got != 0 {
		t.Fatalf("original chain: %d clauses, want 0", got)
	}
	cls := c.Clauses(term.Ind("color", 1))
	if len(cls) != 2 || cls[0].String() != "color(red)" || cls[1].String() != "color(green)" {
		t.Fatalf("clone chain: %v", cls)
	}

	// Both views run correctly on their own stores.
	so, err := dyndb.NewStore(db, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := dyndb.NewStore(c, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantSols(t, solve(t, so, "likes(X).", 0))
	wantSols(t, solve(t, sc, "likes(X).", 0), "X=red", "X=green")
}

func TestStoreTracksConcurrentlyMutatedDB(t *testing.T) {
	// Two stores over one database: a mutation through either is
	// visible to both (the laggard resynchronises on its next goal).
	db := mustDB(t, colorSrc)
	a, err := dyndb.NewStore(db, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dyndb.NewStore(db, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Assertz(pt(t, "color(red)")); err != nil {
		t.Fatal(err)
	}
	wantSols(t, solve(t, b, "likes(X).", 0), "X=red")
	if err := b.Assertz(pt(t, "color(green)")); err != nil {
		t.Fatal(err)
	}
	wantSols(t, solve(t, a, "likes(X).", 0), "X=red", "X=green")
}

func TestVersionAdvancesPerMutation(t *testing.T) {
	db := mustDB(t, colorSrc)
	v0 := db.Version()
	v1, err := db.Assertz(pt(t, "color(red)"))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0+1 {
		t.Fatalf("version after assert: %d, want %d", v1, v0+1)
	}
	// A failed mutation leaves the version alone.
	if _, err := db.Assertz(term.Int(3)); err == nil {
		t.Fatal("want error")
	}
	if got := db.Version(); got != v1 {
		t.Fatalf("version after rejected assert: %d, want %d", got, v1)
	}
	ok, v2, err := db.Retract(pt(t, "color(red)"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Fatalf("version after retract: %d, want %d", v2, v1+1)
	}
	// A no-op retract leaves the version alone.
	if _, v3, _ := db.Retract(pt(t, "color(red)")); v3 != v2 {
		t.Fatalf("version after no-op retract: %d, want %d", v3, v2)
	}
}

func TestStaticCallerRetargeted(t *testing.T) {
	// likes/1 is compiled statically against the color/1 stub. As the
	// chain is rebuilt again and again, the static call site must keep
	// following the moving entry (via the copy-on-write overlay).
	s := mustStore(t, colorSrc)
	for i := 0; i < 10; i++ {
		if err := s.Assertz(pt(t, fmt.Sprintf("color(c%d)", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := solve(t, s, "likes(X).", 0)
	want := make([]string, 10)
	for i := range want {
		want[i] = fmt.Sprintf("X=c%d", i)
	}
	wantSols(t, got, want...)
}
