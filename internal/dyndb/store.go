package dyndb

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/term"
)

// Store binds one database to one machine: the single-session view of
// the dynamic database, used by the CLI, the differential tests and
// anything else that does not need a pooled fleet. Mutations go
// through the database and are synchronised onto the machine
// immediately; goals compile into a transient block above the delta
// and are truncated away before the next mutation or goal.
//
// A Store is not safe for concurrent use; the multi-tenant engine
// pool (internal/engine) is the concurrent front end.
type Store struct {
	db   *DB
	m    *machine.Machine
	view View
}

// NewStore boots a machine from the database's base image and
// materialises the current delta onto it.
func NewStore(db *DB, cfg machine.Config) (*Store, error) {
	m, err := machine.New(db.Image(), cfg)
	if err != nil {
		return nil, err
	}
	s := &Store{db: db, m: m, view: View{Top: m.CodeTop()}}
	if err := s.sync(); err != nil {
		return nil, err
	}
	return s, nil
}

// DB returns the underlying database.
func (s *Store) DB() *DB { return s.db }

// Machine returns the live machine, for counter inspection
// (ResetStats before a timed run, Result after). Mutating its code
// space behind the store's back voids the warranty.
func (s *Store) Machine() *machine.Machine { return s.m }

// sync brings the machine up to the database's current version: the
// transient goal block is truncated away, new delta blocks are
// loaded, call-site patches applied, and entries of replaced blocks
// unregistered. All writes are diff-aware, so a no-op sync touches
// nothing.
func (s *Store) sync() error {
	if s.m.CodeTop() > s.view.Top {
		s.m.TruncateCode(s.view.Top)
	}
	v, err := s.db.Materialize(s.m)
	if err != nil {
		return err
	}
	for pi := range s.view.Entries {
		if _, live := v.Entries[pi]; !live {
			s.m.UnregisterPred(pi)
		}
	}
	s.view = v
	return nil
}

// Assertz appends a clause and installs the rebuilt predicate.
func (s *Store) Assertz(cl term.Term) error {
	if _, err := s.db.Assertz(cl); err != nil {
		return err
	}
	return s.sync()
}

// Asserta prepends a clause and installs the rebuilt predicate.
func (s *Store) Asserta(cl term.Term) error {
	if _, err := s.db.Asserta(cl); err != nil {
		return err
	}
	return s.sync()
}

// Retract removes the first variant-equal clause and installs the
// rebuilt predicate; it reports whether a clause was removed.
func (s *Store) Retract(cl term.Term) (bool, error) {
	ok, _, err := s.db.Retract(cl)
	if err != nil || !ok {
		return ok, err
	}
	return true, s.sync()
}

// Reload replaces a predicate's whole chain in one rebuild.
func (s *Store) Reload(pi term.Indicator, clauses []term.Term) error {
	if _, err := s.db.Reload(pi, clauses); err != nil {
		return err
	}
	return s.sync()
}

// LoadGoal compiles ?- goal, links it against the current entry
// table, and loads it as the transient block above the delta. It
// returns the entry address to Begin at and the named-variable slots
// for QueryBindings. The block is dropped by the next mutation,
// LoadGoal or Sync.
func (s *Store) LoadGoal(goal term.Term) (uint32, map[term.Var]int, error) {
	if err := s.sync(); err != nil {
		return 0, nil, err
	}
	c := compiler.New(s.db.Syms())
	mod, err := c.CompileGoal(goal)
	if err != nil {
		return 0, nil, err
	}
	im, err := asm.LinkAt(mod, s.view.Top, s.view.Entries)
	if err != nil {
		return 0, nil, err
	}
	if _, err := s.m.LoadDyn(im.Code); err != nil {
		return 0, nil, err
	}
	entry, ok := im.Entries[compiler.QueryPI]
	if !ok {
		return 0, nil, fmt.Errorf("dyndb: goal block lost its entry point")
	}
	return entry, im.QueryVars, nil
}

// solveBudget is the per-slice instruction bound Solve runs under —
// the same hard bound one-shot core queries default to.
const solveBudget = 1_000_000_000

// Solve runs a goal to completion and collects up to max solutions
// (0 = all), each as its named-variable bindings. The final machine
// Result (of the last run slice — counters cover the whole
// enumeration since the previous ResetStats) is returned alongside.
func (s *Store) Solve(goal term.Term, max int) ([]map[term.Var]term.Term, machine.Result, error) {
	entry, vars, err := s.LoadGoal(goal)
	if err != nil {
		return nil, machine.Result{}, err
	}
	var out []map[term.Var]term.Term
	s.m.Begin(entry)
	for {
		st, err := s.m.RunFor(context.Background(), solveBudget)
		if err != nil {
			return out, machine.Result{}, err
		}
		if st == machine.Suspended {
			return out, machine.Result{}, fmt.Errorf("dyndb: %w: %d steps", machine.ErrStepBudget, uint64(solveBudget))
		}
		res := s.m.Result()
		if !res.Success {
			return out, res, nil
		}
		out = append(out, s.m.QueryBindings(vars))
		if max > 0 && len(out) >= max {
			return out, res, nil
		}
		if err := s.m.Redo(); err != nil {
			return out, res, err
		}
	}
}
