package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/term"
)

// Dynamic-database front end: a program may declare predicates
// dynamic with the standard directive
//
//	:- dynamic(p/2).
//	:- dynamic((q/1, r/3)).
//
// The static compilation path (Query/Solutions) simply compiles the
// declared predicates' initial clauses like any others — a purely
// static program with the same clauses behaves identically. BaseImage
// instead compiles every dynamic predicate as an empty stub and
// returns the initial clauses separately, to seed a clause store
// (internal/dyndb) layered above the shared boot image.

// DynamicSet lists the predicates a program declares dynamic, in
// declaration order, with the initial clauses the source gives them.
type DynamicSet struct {
	Order   []term.Indicator
	Clauses map[term.Indicator][]term.Term
}

// directiveGoal returns G for :- G and ?- G directives.
func directiveGoal(t term.Term) (term.Term, bool) {
	c, ok := t.(*term.Compound)
	if ok && (c.Functor == ":-" || c.Functor == "?-") && len(c.Args) == 1 {
		return c.Args[0], true
	}
	return nil, false
}

// clauseHead returns the head of a clause term (the term itself for a
// fact).
func clauseHead(t term.Term) term.Term {
	if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0]
	}
	return t
}

// dynamicSpec flattens a dynamic/1 argument — pi, (pi, pi, ...) —
// into indicators.
func dynamicSpec(t term.Term, out *[]term.Indicator) error {
	if c, ok := t.(*term.Compound); ok {
		switch {
		case c.Functor == "," && len(c.Args) == 2:
			if err := dynamicSpec(c.Args[0], out); err != nil {
				return err
			}
			return dynamicSpec(c.Args[1], out)
		case c.Functor == "/" && len(c.Args) == 2:
			name, okN := c.Args[0].(term.Atom)
			ar, okA := c.Args[1].(term.Int)
			if okN && okA && ar >= 0 && ar <= 255 {
				*out = append(*out, term.Ind(name, int(ar)))
				return nil
			}
		}
	}
	return fmt.Errorf("core: malformed dynamic spec %v (want name/arity)", t)
}

// partition splits the consulted clauses into static clauses and the
// dynamic set. A dynamic declaration governs the whole program
// wherever it appears; directives other than dynamic/1 are rejected.
func (p *Program) partition() ([]term.Term, *DynamicSet, error) {
	ds := &DynamicSet{Clauses: map[term.Indicator][]term.Term{}}
	dyn := map[term.Indicator]bool{}
	for _, t := range p.clauses {
		g, ok := directiveGoal(t)
		if !ok {
			continue
		}
		c, isC := g.(*term.Compound)
		if !isC || c.Functor != "dynamic" || len(c.Args) != 1 {
			return nil, nil, fmt.Errorf("core: unsupported directive %v", t)
		}
		var pis []term.Indicator
		if err := dynamicSpec(c.Args[0], &pis); err != nil {
			return nil, nil, err
		}
		for _, pi := range pis {
			if !dyn[pi] {
				dyn[pi] = true
				ds.Order = append(ds.Order, pi)
			}
		}
	}
	var static []term.Term
	for _, t := range p.clauses {
		if _, ok := directiveGoal(t); ok {
			continue
		}
		if pi, ok := term.TermIndicator(clauseHead(t)); ok && dyn[pi] {
			ds.Clauses[pi] = append(ds.Clauses[pi], t)
			continue
		}
		static = append(static, t)
	}
	return static, ds, nil
}

// runnableClauses is the static compilation view: directives are
// validated and dropped, and dynamic predicates' initial clauses are
// kept in place — the reference semantics the differential tests
// compare the clause store against. The dynamic set rides along so
// the caller can stub out declared predicates left clauseless.
func (p *Program) runnableClauses() ([]term.Term, *DynamicSet, error) {
	_, ds, err := p.partition()
	if err != nil {
		return nil, nil, err
	}
	out := make([]term.Term, 0, len(p.clauses))
	for _, t := range p.clauses {
		if _, ok := directiveGoal(t); ok {
			continue
		}
		out = append(out, t)
	}
	return out, ds, nil
}

// BaseImage compiles the program's static predicates into a linked
// boot image in which every dynamic predicate is an empty fail stub,
// and returns the dynamic set whose initial clauses seed a clause
// store. The image is immutable and shared: every pool machine boots
// from it, and per-tenant deltas layer above it copy-on-write.
func (p *Program) BaseImage() (*asm.Image, *DynamicSet, error) {
	static, ds, err := p.partition()
	if err != nil {
		return nil, nil, err
	}
	c := compiler.New(p.syms)
	mod, err := c.CompileProgram(static)
	if err != nil {
		return nil, nil, err
	}
	for _, pi := range ds.Order {
		if _, dup := mod.Preds[pi]; dup {
			return nil, nil, fmt.Errorf("core: dynamic predicate %v collides with a static auxiliary", pi)
		}
		mod.Preds[pi] = compiler.StubPred(pi)
		mod.Order = append(mod.Order, pi)
	}
	im, err := asm.Link(mod)
	if err != nil {
		return nil, nil, err
	}
	return im, ds, nil
}
