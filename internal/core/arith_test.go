package core

import "testing"

// TestExtendedArithmetic covers the SEPIA-level arithmetic repertoire
// beyond the benchmark suite's needs: bit operations, rem vs mod,
// abs, min and max.
func TestExtendedArithmetic(t *testing.T) {
	cases := []struct{ q, v, want string }{
		{"X is 12 /\\ 10.", "X", "8"},
		{"X is 12 \\/ 10.", "X", "14"},
		{"X is 12 xor 10.", "X", "6"},
		{"X is 1 << 10.", "X", "1024"},
		{"X is 1024 >> 3.", "X", "128"},
		{"X is -7 mod 3.", "X", "2"},  // ISO: sign of the divisor
		{"X is -7 rem 3.", "X", "-1"}, // rem: sign of the dividend
		{"X is 7 mod -3.", "X", "-2"},
		{"X is abs(-42).", "X", "42"},
		{"X is abs(42).", "X", "42"},
		{"X is min(3, 9).", "X", "3"},
		{"X is max(3, 9).", "X", "9"},
		{"X is min(-2, -8) + max(1, 0).", "X", "-7"},
		{"X is abs(min(-3, 2)) << 2.", "X", "12"},
	}
	for _, c := range cases {
		expectBinding(t, "ok.\n", c.q, c.v, c.want)
	}
}
