package core

import (
	"testing"

	"repro/internal/machine"
)

const zebraSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
next_to(A, B, L) :- right_of(A, B, L).
next_to(A, B, L) :- right_of(B, A, L).
right_of(R, L, [L, R | _]).
right_of(R, L, [_ | T]) :- right_of(R, L, T).
first(X, [X | _]).
middle(X, [_, _, X, _, _]).
zebra(Owner) :-
    Houses = [_, _, _, _, _],
    member(house(red, english, _, _, _), Houses),
    right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
    first(house(_, norwegian, _, _, _), Houses),
    middle(house(_, _, milk, _, _), Houses),
    member(house(_, spanish, _, _, dog), Houses),
    member(house(green, _, coffee, _, _), Houses),
    member(house(_, ukrainian, tea, _, _), Houses),
    member(house(_, _, _, oldgold, snails), Houses),
    member(house(yellow, _, _, kools, _), Houses),
    next_to(house(_, _, _, chesterfield, _), house(_, _, _, _, fox), Houses),
    next_to(house(_, _, _, kools, _), house(_, _, _, _, horse), Houses),
    member(house(_, _, orangejuice, luckystrike, _), Houses),
    member(house(_, japanese, _, parliament, _), Houses),
    next_to(house(blue, _, _, _, _), house(_, norwegian, _, _, _), Houses),
    member(house(_, _, water, _, _), Houses),
    member(house(_, Owner, _, _, zebra), Houses).
`

// TestZebraPuzzle is the "real-size program" check: a deep
// backtracking search with heavy structure unification must find the
// unique canonical solution in every machine configuration.
func TestZebraPuzzle(t *testing.T) {
	prog := MustLoad(zebraSrc)
	configs := map[string]machine.Config{
		"default":       {},
		"eager":         {Shallow: machine.Off},
		"software":      {HWDeref: machine.Off, HWTrail: machine.Off},
		"unified-cache": {SplitDataCache: machine.Off},
		"gc":            {GCThresholdWords: 4096},
	}
	for name, cfg := range configs {
		sol, err := prog.Query("zebra(Owner).", WithConfig(cfg))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sol.Success {
			t.Fatalf("%s: no solution", name)
		}
		owner, _ := sol.Binding("Owner")
		if owner.String() != "japanese" {
			t.Fatalf("%s: zebra owner = %v, want japanese", name, owner)
		}
	}
}

// TestZebraShallowWins verifies that the shallow machinery is doing
// real work on a search of this shape.
func TestZebraShallowWins(t *testing.T) {
	prog := MustLoad(zebraSrc)
	shal, err := prog.Query("zebra(Owner).")
	if err != nil {
		t.Fatal(err)
	}
	eag, err := prog.Query("zebra(Owner).", WithConfig(machine.Config{Shallow: machine.Off}))
	if err != nil {
		t.Fatal(err)
	}
	if shal.Result.Stats.ChoicePoints >= eag.Result.Stats.ChoicePoints {
		t.Errorf("shallow CPs %d >= eager %d",
			shal.Result.Stats.ChoicePoints, eag.Result.Stats.ChoicePoints)
	}
	if shal.Result.Stats.Cycles >= eag.Result.Stats.Cycles {
		t.Errorf("shallow cycles %d >= eager %d",
			shal.Result.Stats.Cycles, eag.Result.Stats.Cycles)
	}
	if shal.Result.Stats.Inferences != eag.Result.Stats.Inferences {
		t.Errorf("inference counts differ: %d vs %d",
			shal.Result.Stats.Inferences, eag.Result.Stats.Inferences)
	}
}
