package core

import "testing"

// TestMetaCall exercises the call/1 escape: goals constructed at run
// time dispatch through the runtime predicate table.
func TestMetaCall(t *testing.T) {
	src := `
p(1). p(2). p(3).
double(X, Y) :- Y is X * 2.
apply1(G, X) :- G =.. [F], H =.. [F, X], call(H).
maplike([], _).
maplike([X|Xs], G) :- H =.. [G, X], call(H), maplike(Xs, G).
pos(X) :- X > 0.
callgoal(G) :- call(G).
`
	expectBinding(t, src, "G = p(X), call(G).", "X", "1")
	expectBinding(t, src, "call(p(2)).", "", "")
	expectFail(t, src, "call(p(9)).")
	expectBinding(t, src, "G = double(21, Y), call(G), Y == 42.", "Y", "42")
	expectBinding(t, src, "maplike([1,2,3], pos).", "", "")
	expectFail(t, src, "maplike([1,-2], pos).")
	// Backtracking through a meta-called goal.
	expectBinding(t, src, "call(p(X)), X > 2.", "X", "3")
	// A clause whose only goal is the escape must preserve its
	// continuation (the environment-requirement regression).
	expectBinding(t, src, "callgoal(p(X)), X == 1.", "X", "1")
}
