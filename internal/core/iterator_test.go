package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

const iterSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
spin :- spin.
`

// collect drains an iterator into the String() forms of its solutions.
func collect(t *testing.T, it *Solutions) []string {
	t.Helper()
	var got []string
	for it.Next() {
		got = append(got, it.Solution().String())
	}
	if it.Err() != nil {
		t.Fatalf("iterate: %v", it.Err())
	}
	return got
}

// TestSolutionsEnumeration: the iterator yields every solution in
// clause order, then reports exhaustion with the final failed outcome
// still carrying the machine counters.
func TestSolutionsEnumeration(t *testing.T) {
	p := MustLoad(iterSrc)
	it, err := p.Solutions("member(X, [1,2,3]).")
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	want := []string{"X = 1", "X = 2", "X = 3"}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Fatalf("solutions %v, want %v", got, want)
	}
	if it.Suspended() {
		t.Fatal("exhausted iterator reports Suspended")
	}
	fin := it.Solution()
	if fin == nil || fin.Success {
		t.Fatalf("final outcome %+v, want failure", fin)
	}
	if fin.Result.Stats.Cycles == 0 {
		t.Fatal("final outcome lost the machine counters")
	}
	// Next after exhaustion stays false and error-free.
	if it.Next() || it.Err() != nil {
		t.Fatalf("Next after exhaustion: %v, %v", it.Next(), it.Err())
	}
}

// TestSolutionsMaxSolutions: WithMaxSolutions stops the enumeration
// after k solutions without an error.
func TestSolutionsMaxSolutions(t *testing.T) {
	p := MustLoad(iterSrc)
	it, err := p.Solutions("member(X, [1,2,3,4,5]).", WithMaxSolutions(2))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 2 || got[0] != "X = 1" || got[1] != "X = 2" {
		t.Fatalf("solutions %v, want [X = 1, X = 2]", got)
	}
}

// TestSolutionsBudgetResume: with WithBudget, a tiny per-Next budget
// suspends the search instead of erroring, and the next Next resumes
// it to the very same solutions an unbounded run yields.
func TestSolutionsBudgetResume(t *testing.T) {
	p := MustLoad(iterSrc)
	it, err := p.Solutions("nrev([1,2,3,4,5,6,7,8], R), member(X, [a,b]).",
		WithBudget(50))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	suspensions := 0
	for {
		if it.Next() {
			got = append(got, it.Solution().String())
			continue
		}
		if it.Suspended() {
			suspensions++
			if suspensions > 1_000_000 {
				t.Fatal("never completed")
			}
			continue
		}
		break
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if suspensions == 0 {
		t.Fatal("budget of 50 never suspended; test is vacuous")
	}
	want := "R = [8,7,6,5,4,3,2,1], X = a; R = [8,7,6,5,4,3,2,1], X = b"
	if s := strings.Join(got, "; "); s != want {
		t.Fatalf("resumed solutions:\n got %s\nwant %s", s, want)
	}
}

// TestQueryLegacyBudgetError: without WithBudget, running out of the
// configured MaxSteps is a hard ErrStepBudget error (legacy Run
// semantics), not a silent suspension.
func TestQueryLegacyBudgetError(t *testing.T) {
	p := MustLoad(iterSrc)
	_, err := p.Query("spin.", WithConfig(machine.Config{MaxSteps: 2000}))
	if !errors.Is(err, machine.ErrStepBudget) {
		t.Fatalf("got %v, want ErrStepBudget", err)
	}
}

// TestQueryCancellation: a cancelled context surfaces through Query as
// machine.ErrCancelled and keeps the context cause in the chain.
func TestQueryCancellation(t *testing.T) {
	p := MustLoad(iterSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Query("spin.", WithContext(ctx))
	if !errors.Is(err, machine.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause chain lost: %v", err)
	}
}

// TestQueryDeadline: a context deadline stops a divergent query with
// machine.ErrDeadline.
func TestQueryDeadline(t *testing.T) {
	p := MustLoad(iterSrc)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Query("spin.", WithContext(ctx))
	if !errors.Is(err, machine.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause chain lost: %v", err)
	}
}

// TestQueryOptionWriter: WithWriter captures write/1 output, and order
// relative to WithConfig follows application order.
func TestQueryOptionWriter(t *testing.T) {
	p := MustLoad(iterSrc)
	var out strings.Builder
	sol, err := p.Query("member(X, [hello]), write(X), nl.",
		WithConfig(machine.Config{}), WithWriter(&out))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Success || out.String() != "hello\n" {
		t.Fatalf("success=%v out=%q", sol.Success, out.String())
	}
}

// TestSolutionViews pins Bindings() and String() on success, no-vars
// and failure outcomes.
func TestSolutionViews(t *testing.T) {
	p := MustLoad(iterSrc)

	sol, err := p.Query("app(Xs, [c], [a,b,c]), nrev([a,b], Ys).")
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.String(); got != "Xs = [a,b], Ys = [b,a]" {
		t.Fatalf("String() = %q", got)
	}
	b := sol.Bindings()
	if len(b) != 2 || b["Xs"].String() != "[a,b]" || b["Ys"].String() != "[b,a]" {
		t.Fatalf("Bindings() = %v", b)
	}

	sol, err = p.Query("member(b, [a,b]).")
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.String(); got != "yes" {
		t.Fatalf("no-vars String() = %q", got)
	}

	sol, err = p.Query("member(z, [a,b]).")
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.String(); got != "no" {
		t.Fatalf("failure String() = %q", got)
	}
	if len(sol.Bindings()) != 0 {
		t.Fatalf("failure Bindings() = %v", sol.Bindings())
	}
}
