package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/term"
)

// Property-based tests: randomly generated inputs are pushed through
// compiled Prolog on the simulated machine and the answers checked
// against Go-side oracles.

const listLib = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
qsort([X | L], R, R0) :- partition(L, X, L1, L2),
    qsort(L2, R1, R0), qsort(L1, R, [X | R1]).
qsort([], R, R).
partition([X | L], Y, [X | L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X | L], Y, L1, [X | L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`

func listLiteral(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func randList(rng *rand.Rand, maxLen int) []int {
	n := rng.Intn(maxLen)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = rng.Intn(200) - 100
	}
	return xs
}

func parseIntList(t *testing.T, tm term.Term) []int {
	t.Helper()
	var out []int
	for {
		if a, ok := tm.(term.Atom); ok && a == term.NilAtom {
			return out
		}
		h, tl, ok := term.IsCons(tm)
		if !ok {
			t.Fatalf("not a proper list: %v", tm)
		}
		i, ok := h.(term.Int)
		if !ok {
			t.Fatalf("non-integer element: %v", h)
		}
		out = append(out, int(i))
		tm = tl
	}
}

func TestPropertyNrevInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prog := MustLoad(listLib)
	for i := 0; i < 25; i++ {
		xs := randList(rng, 25)
		q := fmt.Sprintf("nrev(%s, R), nrev(R, RR).", listLiteral(xs))
		sol, err := prog.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Success {
			t.Fatalf("nrev failed on %v", xs)
		}
		rr, _ := sol.Binding("RR")
		if got := parseIntList(t, rr); !equalInts(got, xs) {
			t.Fatalf("nrev(nrev(%v)) = %v", xs, got)
		}
		r, _ := sol.Binding("R")
		rev := parseIntList(t, r)
		for j := range xs {
			if rev[j] != xs[len(xs)-1-j] {
				t.Fatalf("nrev(%v) = %v", xs, rev)
			}
		}
	}
}

func TestPropertyQsortSortsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prog := MustLoad(listLib)
	for i := 0; i < 25; i++ {
		xs := randList(rng, 30)
		q := fmt.Sprintf("qsort(%s, S, []).", listLiteral(xs))
		sol, err := prog.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Success {
			t.Fatalf("qsort failed on %v", xs)
		}
		s, _ := sol.Binding("S")
		got := parseIntList(t, s)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("qsort(%v) = %v, want %v", xs, got, want)
		}
	}
}

func TestPropertyAppendLengthLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prog := MustLoad(listLib)
	for i := 0; i < 25; i++ {
		a, b := randList(rng, 15), randList(rng, 15)
		q := fmt.Sprintf("app(%s, %s, C), len(C, N).", listLiteral(a), listLiteral(b))
		sol, err := prog.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := sol.Binding("N")
		if int(n.(term.Int)) != len(a)+len(b) {
			t.Fatalf("len(app(%v,%v)) = %v", a, b, n)
		}
	}
}

func TestPropertyAppendSplitEnumeration(t *testing.T) {
	// app(X, Y, L) enumerates len(L)+1 splits; with a length guard it
	// selects exactly one. Checks backtracking depth correctness.
	rng := rand.New(rand.NewSource(4))
	prog := MustLoad(listLib)
	for i := 0; i < 15; i++ {
		xs := randList(rng, 12)
		for _, k := range []int{0, len(xs) / 2, len(xs)} {
			q := fmt.Sprintf("app(X, Y, %s), len(X, %d).", listLiteral(xs), k)
			sol, err := prog.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Success {
				t.Fatalf("split %d of %v failed", k, xs)
			}
			x, _ := sol.Binding("X")
			if got := parseIntList(t, x); !equalInts(got, xs[:k]) {
				t.Fatalf("split %d of %v = %v", k, xs, got)
			}
		}
	}
}

func TestPropertyArithmeticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog := MustLoad("ok.\n")
	for i := 0; i < 50; i++ {
		a := rng.Intn(2000) - 1000
		b := rng.Intn(999) + 1
		q := fmt.Sprintf("X is (%d + %d) * %d - %d // %d, Y is %d mod %d.",
			a, b, a, a, b, a, b)
		sol, err := prog.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		wantX := (a+b)*a - a/b
		wantY := a % b // ISO mod: result takes the divisor's sign
		if wantY != 0 && (wantY < 0) != (b < 0) {
			wantY += b
		}
		x, _ := sol.Binding("X")
		y, _ := sol.Binding("Y")
		if int(x.(term.Int)) != wantX || int(y.(term.Int)) != wantY {
			t.Fatalf("arith oracle: got X=%v Y=%v, want %d %d (a=%d b=%d)", x, y, wantX, wantY, a, b)
		}
	}
}

func TestPropertyShallowEagerAgree(t *testing.T) {
	// The two backtracking policies must be observationally identical:
	// same success, same bindings, same inference count.
	rng := rand.New(rand.NewSource(6))
	prog := MustLoad(listLib)
	for i := 0; i < 20; i++ {
		xs := randList(rng, 10)
		needle := rng.Intn(200) - 100
		q := fmt.Sprintf("member(%d, %s).", needle, listLiteral(xs))
		s1, err := prog.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := prog.Query(q, WithConfig(machine.Config{Shallow: machine.Off}))
		if err != nil {
			t.Fatal(err)
		}
		if s1.Success != s2.Success {
			t.Fatalf("%q: shallow=%v eager=%v", q, s1.Success, s2.Success)
		}
		if s1.Result.Stats.Inferences != s2.Result.Stats.Inferences {
			t.Fatalf("%q: inference counts differ: %d vs %d", q,
				s1.Result.Stats.Inferences, s2.Result.Stats.Inferences)
		}
		want := false
		for _, x := range xs {
			if x == needle {
				want = true
			}
		}
		if s1.Success != want {
			t.Fatalf("member(%d, %v) = %v, want %v", needle, xs, s1.Success, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
