// Package core is the public face of the KCM reproduction: it wires
// the reader, compiler, assembler and machine together into the
// "complete language sub-system running on KCM" of the paper. A
// Program holds consulted source clauses; Query compiles a goal
// against them, links an image, boots a machine and runs it.
package core

import (
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
)

// Program is a consulted Prolog program ready to be queried.
type Program struct {
	clauses []term.Term
	syms    *term.SymTab
}

// Load parses Prolog source text into a Program.
func Load(src string) (*Program, error) {
	clauses, err := reader.ParseAll(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{clauses: clauses, syms: term.NewSymTab()}, nil
}

// MustLoad is Load for tests and examples with known-good sources.
func MustLoad(src string) *Program {
	p, err := Load(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Consult appends more source text to the program.
func (p *Program) Consult(src string) error {
	clauses, err := reader.ParseAll(src)
	if err != nil {
		return err
	}
	p.clauses = append(p.clauses, clauses...)
	return nil
}

// Clauses returns the consulted clauses (reader output).
func (p *Program) Clauses() []term.Term { return p.clauses }

// Syms exposes the symbol table shared by compilation runs.
func (p *Program) Syms() *term.SymTab { return p.syms }

// CompileQuery compiles the program together with a query goal and
// links the result into a loadable image.
func (p *Program) CompileQuery(query string) (*asm.Image, error) {
	goal, err := reader.ParseTerm(query)
	if err != nil {
		return nil, fmt.Errorf("core: query: %w", err)
	}
	c := compiler.New(p.syms)
	mod, err := c.CompileProgram(p.clauses)
	if err != nil {
		return nil, err
	}
	if err := c.CompileQuery(mod, goal); err != nil {
		return nil, err
	}
	return asm.Link(mod)
}

// Solution is the outcome of running a query on the machine.
type Solution struct {
	Success  bool
	Bindings map[term.Var]term.Term
	Result   machine.Result
}

// Binding returns the value of a named query variable.
func (s *Solution) Binding(name string) (term.Term, bool) {
	t, ok := s.Bindings[term.Var(name)]
	return t, ok
}

// Query runs a goal against the program on a default-configuration
// KCM and returns the first solution.
func (p *Program) Query(query string) (*Solution, error) {
	return p.QueryConfig(query, machine.Config{})
}

// QueryWriter runs a goal sending write/1 output to w.
func (p *Program) QueryWriter(query string, w io.Writer) (*Solution, error) {
	return p.QueryConfig(query, machine.Config{Out: w})
}

// QueryConfig runs a goal with an explicit machine configuration.
func (p *Program) QueryConfig(query string, cfg machine.Config) (*Solution, error) {
	im, err := p.CompileQuery(query)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(im, cfg)
	if err != nil {
		return nil, err
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return nil, fmt.Errorf("core: no query entry point")
	}
	res, err := m.Run(entry)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Success: res.Success, Result: res}
	if res.Success {
		sol.Bindings = m.QueryBindings(im.QueryVars)
	}
	return sol, nil
}
