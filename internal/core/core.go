// Package core is the public face of the KCM reproduction: it wires
// the reader, compiler, assembler and machine together into the
// "complete language sub-system running on KCM" of the paper. A
// Program holds consulted source clauses; Query compiles a goal
// against them, links an image, boots a machine and runs it.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/trace"
)

// Program is a consulted Prolog program ready to be queried.
type Program struct {
	clauses []term.Term
	syms    *term.SymTab
}

// Load parses Prolog source text into a Program.
func Load(src string) (*Program, error) {
	clauses, err := reader.ParseAll(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{clauses: clauses, syms: term.NewSymTab()}, nil
}

// MustLoad is Load for tests and examples with known-good sources.
func MustLoad(src string) *Program {
	p, err := Load(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Consult appends more source text to the program.
func (p *Program) Consult(src string) error {
	clauses, err := reader.ParseAll(src)
	if err != nil {
		return err
	}
	p.clauses = append(p.clauses, clauses...)
	return nil
}

// Clauses returns the consulted clauses (reader output).
func (p *Program) Clauses() []term.Term { return p.clauses }

// Syms exposes the symbol table shared by compilation runs.
func (p *Program) Syms() *term.SymTab { return p.syms }

// CompileQuery compiles the program together with a query goal and
// links the result into a loadable image.
func (p *Program) CompileQuery(query string) (*asm.Image, error) {
	goal, err := reader.ParseTerm(query)
	if err != nil {
		return nil, fmt.Errorf("core: query: %w", err)
	}
	clauses, ds, err := p.runnableClauses()
	if err != nil {
		return nil, err
	}
	c := compiler.New(p.syms)
	mod, err := c.CompileProgram(clauses)
	if err != nil {
		return nil, err
	}
	// A dynamic predicate with no clauses still exists (it fails);
	// give it the same stub the clause-store base image would.
	for _, pi := range ds.Order {
		if _, ok := mod.Preds[pi]; !ok {
			mod.Preds[pi] = compiler.StubPred(pi)
			mod.Order = append(mod.Order, pi)
		}
	}
	if err := c.CompileQuery(mod, goal); err != nil {
		return nil, err
	}
	return asm.Link(mod)
}

// Solution is the outcome of running a query on the machine.
type Solution struct {
	Success bool
	Vars    map[term.Var]term.Term // named query variables (reader names)
	Result  machine.Result
}

// Binding returns the value of a named query variable.
func (s *Solution) Binding(name string) (term.Term, bool) {
	t, ok := s.Vars[term.Var(name)]
	return t, ok
}

// Bindings returns the named query variables keyed by their source
// spelling, the host-friendly view of Vars.
func (s *Solution) Bindings() map[string]term.Term {
	out := make(map[string]term.Term, len(s.Vars))
	for v, t := range s.Vars {
		out[string(v)] = t
	}
	return out
}

// String renders the solution in a stable form: "no" for failure,
// "yes" for a solution without named variables, otherwise the
// bindings sorted by variable name ("X = 1, Ys = [a,b]").
func (s *Solution) String() string {
	if !s.Success {
		return "no"
	}
	if len(s.Vars) == 0 {
		return "yes"
	}
	names := make([]string, 0, len(s.Vars))
	for v := range s.Vars {
		names = append(names, string(v))
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n)
		b.WriteString(" = ")
		b.WriteString(s.Vars[term.Var(n)].String())
	}
	return b.String()
}

// QueryOption configures one Query or Solutions run. Options are
// applied in order, so WithWriter after WithConfig overrides the
// configuration's writer (and vice versa).
type QueryOption func(*queryOpts)

type queryOpts struct {
	cfg       machine.Config
	ctx       context.Context
	budget    uint64
	budgetSet bool
	maxSols   int
	hooks     []trace.Hook
}

// WithConfig replaces the whole machine configuration.
func WithConfig(cfg machine.Config) QueryOption {
	return func(o *queryOpts) { o.cfg = cfg }
}

// WithWriter directs write/1 and nl/0 output to w.
func WithWriter(w io.Writer) QueryOption {
	return func(o *queryOpts) { o.cfg.Out = w }
}

// WithHeapWatermark sets the free-space watermark (in words) an
// overflow-triggered garbage collection must leave for the faulting
// instruction to be retried; a collection freeing less surfaces
// machine.ErrHeapOverflow instead of thrashing. 0 keeps the machine
// default (GlobalSize/16, floored at 64 words).
func WithHeapWatermark(words uint32) QueryOption {
	return func(o *queryOpts) { o.cfg.HeapWatermarkWords = words }
}

// WithContext attaches a cancellation context: the run is polled
// every machine.CheckStride instructions, and a cancellation or
// deadline surfaces as machine.ErrCancelled / machine.ErrDeadline.
func WithContext(ctx context.Context) QueryOption {
	return func(o *queryOpts) { o.ctx = ctx }
}

// WithBudget bounds execution to n instructions per run slice. On a
// one-shot Query, exhausting the budget fails with
// machine.ErrStepBudget. On a Solutions iterator the budget applies
// per Next call and exhaustion is resumable: Next reports no solution
// with Suspended() true, and the next Next call continues the
// suspended search with a fresh budget.
func WithBudget(n uint64) QueryOption {
	return func(o *queryOpts) { o.budget = n; o.budgetSet = n > 0 }
}

// WithMaxSolutions stops a Solutions iterator after k solutions
// (0 = enumerate all). One-shot Query always stops at the first.
func WithMaxSolutions(k int) QueryOption {
	return func(o *queryOpts) { o.maxSols = k }
}

// WithTrace attaches a trace hook to the query's machine. Several
// hooks (and a hook already present in the configuration) compose:
// each receives the full event stream. Tracing never changes the
// simulated counters; see internal/trace.
func WithTrace(h trace.Hook) QueryOption {
	return func(o *queryOpts) {
		if h != nil {
			o.hooks = append(o.hooks, h)
		}
	}
}

// WithFusion toggles the superinstruction fusion tier for this
// query's machine (machine.Config.Fusion; on by default). Fusion is
// host-side translation only: solutions, cycle counts and cache
// statistics are identical either way, so Off is the A/B control.
func WithFusion(on bool) QueryOption {
	return func(o *queryOpts) {
		if on {
			o.cfg.Fusion = machine.On
		} else {
			o.cfg.Fusion = machine.Off
		}
	}
}

// WithProfile attaches a per-predicate cycle profiler; after the
// query, read pr.Rows(), pr.Total() and pr.FoldedMap(). Equivalent to
// WithTrace(pr).
func WithProfile(pr *trace.Profiler) QueryOption {
	return func(o *queryOpts) {
		if pr != nil {
			o.hooks = append(o.hooks, pr)
		}
	}
}

// Query runs a goal against the program and returns its first
// solution. With no options it uses a default-configuration KCM and
// runs to completion; functional options select writer, machine
// configuration, cancellation context and step budget.
func (p *Program) Query(query string, opts ...QueryOption) (*Solution, error) {
	it, err := p.Solutions(query, opts...)
	if err != nil {
		return nil, err
	}
	if it.Next() {
		return it.Solution(), nil
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	if it.Suspended() {
		return nil, fmt.Errorf("core: %w: query suspended after %d-step budget",
			machine.ErrStepBudget, it.budget)
	}
	return it.Solution(), nil // the failed outcome, with its Result
}

// Solutions compiles a goal and returns an iterator over its
// solutions, driven by redo-based enumeration on one machine: after
// each solution the iterator forces a failure into the topmost choice
// point and resumes the search. The usual loop is
//
//	it, err := prog.Solutions("member(X, [1,2,3]).")
//	for it.Next() {
//	    use(it.Solution())
//	}
//	if it.Err() != nil { ... }
type Solutions struct {
	m         *machine.Machine
	im        *asm.Image
	ctx       context.Context
	budget    uint64
	budgetSet bool
	maxSols   int

	cur       *Solution // last outcome (success or the final failure)
	err       error
	suspended bool
	delivered int
	state     int
}

const (
	iterRun  = iota // next step: RunFor (fresh goal or resumed slice)
	iterRedo        // a solution is out; Redo before the next RunFor
	iterDone        // exhausted, failed, errored, or maxSols reached
)

// Solutions starts a solution iterator for the goal. No instruction
// runs until the first Next call.
func (p *Program) Solutions(query string, opts ...QueryOption) (*Solutions, error) {
	var o queryOpts
	for _, opt := range opts {
		opt(&o)
	}
	im, err := p.CompileQuery(query)
	if err != nil {
		return nil, err
	}
	if len(o.hooks) > 0 {
		o.cfg.Hook = trace.Tee(append([]trace.Hook{o.cfg.Hook}, o.hooks...)...)
	}
	m, err := machine.New(im, o.cfg)
	if err != nil {
		return nil, err
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		return nil, fmt.Errorf("core: no query entry point")
	}
	budget := o.budget
	if !o.budgetSet {
		// Legacy semantics: the configuration's hard step bound (the
		// machine default when unset), raised as an error, not a
		// resumable suspension.
		budget = o.cfg.MaxSteps
		if budget == 0 {
			budget = 1_000_000_000
		}
	}
	m.Begin(entry)
	return &Solutions{
		m: m, im: im, ctx: o.ctx,
		budget: budget, budgetSet: o.budgetSet, maxSols: o.maxSols,
	}, nil
}

// Next advances to the next solution. It returns false when the
// search is exhausted, errored, suspended on its step budget, or hit
// the WithMaxSolutions bound; check Err and Suspended to tell the
// cases apart. After a budget suspension, calling Next again resumes
// the search with a fresh budget.
func (it *Solutions) Next() bool {
	it.suspended = false
	if it.err != nil || it.state == iterDone {
		return false
	}
	if it.state == iterRedo {
		if err := it.m.Redo(); err != nil {
			it.err = err
			it.state = iterDone
			return false
		}
		it.state = iterRun
	}
	st, err := it.m.RunFor(it.ctx, it.budget)
	if err != nil {
		it.err = err
		it.state = iterDone
		return false
	}
	if st == machine.Suspended {
		if !it.budgetSet {
			it.err = fmt.Errorf("core: %w: %d steps", machine.ErrStepBudget, it.budget)
			it.state = iterDone
			return false
		}
		it.suspended = true // state stays iterRun: Next resumes
		return false
	}
	res := it.m.Result()
	if !res.Success {
		it.cur = &Solution{Success: false, Result: res}
		it.state = iterDone
		return false
	}
	it.cur = &Solution{
		Success: true,
		Vars:    it.m.QueryBindings(it.im.QueryVars),
		Result:  res,
	}
	it.delivered++
	if it.maxSols > 0 && it.delivered >= it.maxSols {
		it.state = iterDone
	} else {
		it.state = iterRedo
	}
	return true
}

// Solution returns the outcome of the last Next call that produced
// one: the current solution after Next reported true, or the final
// failed outcome (Success=false, machine counters populated) once the
// search is exhausted.
func (it *Solutions) Solution() *Solution { return it.cur }

// Suspended reports whether the last Next call stopped on its step
// budget rather than an outcome; the search resumes on the next Next.
func (it *Solutions) Suspended() bool { return it.suspended }

// Err returns the first error the iteration hit, if any.
func (it *Solutions) Err() error { return it.err }
