package core

import (
	"strings"
	"testing"
)

// expectBinding runs a query and checks one variable's binding.
func expectBinding(t *testing.T, src, query, v, want string) {
	t.Helper()
	p := MustLoad(src)
	sol, err := p.Query(query)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	if !sol.Success {
		t.Fatalf("query %q failed", query)
	}
	if v == "" {
		return // success-only check
	}
	got, ok := sol.Binding(v)
	if !ok {
		t.Fatalf("query %q: no binding for %s", query, v)
	}
	if got.String() != want {
		t.Fatalf("query %q: %s = %s, want %s", query, v, got, want)
	}
}

func expectFail(t *testing.T, src, query string) {
	t.Helper()
	p := MustLoad(src)
	sol, err := p.Query(query)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	if sol.Success {
		t.Fatalf("query %q succeeded, want failure", query)
	}
}

const appendSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

func TestAppend(t *testing.T) {
	expectBinding(t, appendSrc, "app([1,2,3], [4,5], X).", "X", "[1,2,3,4,5]")
	expectBinding(t, appendSrc, "app([], [], X).", "X", "[]")
	expectBinding(t, appendSrc, "app([a], Y, [a,b,c]).", "Y", "[b,c]")
	expectFail(t, appendSrc, "app([1], [2], [3]).")
}

func TestAppendBacktracking(t *testing.T) {
	// app(X, Y, [1,2]) has three solutions; first is X=[].
	expectBinding(t, appendSrc, "app(X, Y, [1,2]).", "X", "[]")
	expectBinding(t, appendSrc, "app(X, Y, [1,2]).", "Y", "[1,2]")
	// Force backtracking past the first two solutions.
	expectBinding(t, appendSrc, "app(X, Y, [1,2]), X = [1|_].", "Y", "[2]")
	expectBinding(t, appendSrc, "app(X, [], [1,2]).", "X", "[1,2]")
}

func TestNaiveReverse(t *testing.T) {
	src := appendSrc + `
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`
	expectBinding(t, src, "nrev([1,2,3,4,5], X).", "X", "[5,4,3,2,1]")
	expectBinding(t, src, "nrev([], X).", "X", "[]")
}

func TestArithmetic(t *testing.T) {
	src := `
double(X, Y) :- Y is X * 2.
sumsq(A, B, C) :- C is A*A + B*B.
fact(0, 1).
fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
`
	expectBinding(t, src, "double(21, X).", "X", "42")
	expectBinding(t, src, "sumsq(3, 4, X).", "X", "25")
	expectBinding(t, src, "fact(10, X).", "X", "3628800")
	expectBinding(t, src, "X is 7 // 2.", "X", "3")
	expectBinding(t, src, "X is 7 mod 2.", "X", "1")
	expectBinding(t, src, "X is -3 + 10.", "X", "7")
	expectFail(t, src, "1 > 2.")
	expectFail(t, src, "3 =:= 4.")
	expectBinding(t, src, "X = 5, X < 6, Y is X + 1.", "Y", "6")
}

func TestCut(t *testing.T) {
	src := `
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).

classify(N, neg) :- N < 0, !.
classify(0, zero) :- !.
classify(_, pos).

once_member(X, [X|_]) :- !.
once_member(X, [_|T]) :- once_member(X, T).
`
	expectBinding(t, src, "max(3, 7, X).", "X", "7")
	expectBinding(t, src, "max(9, 2, X).", "X", "9")
	expectBinding(t, src, "classify(-5, X).", "X", "neg")
	expectBinding(t, src, "classify(0, X).", "X", "zero")
	expectBinding(t, src, "classify(3, X).", "X", "pos")
	// Cut prevents the second clause from producing another solution.
	expectFail(t, src, "max(5, 3, X), X = 3.")
	expectBinding(t, src, "once_member(b, [a,b,c]).", "", "")
}

func TestDeepCut(t *testing.T) {
	src := `
p(1). p(2). p(3).
firstp(X) :- p(X), !.
q(X) :- p(X), X > 1, !.
`
	expectBinding(t, src, "firstp(X).", "X", "1")
	expectBinding(t, src, "q(X).", "X", "2")
	expectFail(t, src, "q(X), X = 3.")
}

func TestDisjunctionIfThenElse(t *testing.T) {
	src := `
sign(N, S) :- ( N > 0 -> S = pos ; N < 0 -> S = neg ; S = zero ).
either(X) :- ( X = a ; X = b ).
`
	expectBinding(t, src, "sign(5, S).", "S", "pos")
	expectBinding(t, src, "sign(-5, S).", "S", "neg")
	expectBinding(t, src, "sign(0, S).", "S", "zero")
	expectBinding(t, src, "either(X).", "X", "a")
	expectBinding(t, src, "either(X), X \\== a.", "X", "b")
}

func TestNegation(t *testing.T) {
	src := `
p(1). p(2).
notp(X) :- \+ p(X).
`
	expectBinding(t, src, "notp(3).", "", "")
	expectFail(t, src, "notp(1).")
}

func TestStructures(t *testing.T) {
	src := `
d(U+V, X, DU+DV) :- d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V + U*DV) :- d(U, X, DU), d(V, X, DV).
d(X, X, 1).
d(C, X, 0) :- atomic(C), C \== X.
`
	expectBinding(t, src, "d(x + 3, x, D).", "D", "1+0")
	expectBinding(t, src, "d(x * x, x, D).", "D", "1*x+x*1")
}

func TestTypeTests(t *testing.T) {
	src := "ok.\n"
	expectBinding(t, src, "var(X), X = 1.", "X", "1")
	expectFail(t, src, "X = 1, var(X).")
	expectBinding(t, src, "atom(foo), integer(42), atomic([]).", "", "")
	expectFail(t, src, "atom(42).")
	expectFail(t, src, "integer(foo).")
	expectBinding(t, src, "X = f(1), nonvar(X).", "X", "f(1)")
}

func TestIdentity(t *testing.T) {
	src := "ok.\n"
	expectBinding(t, src, "X = f(A, B), Y = f(A, B), X == Y.", "", "")
	expectFail(t, src, "f(A) == f(B).")
	expectBinding(t, src, "f(A) \\== f(B).", "", "")
	expectFail(t, src, "X == Y.")
}

func TestUnifyGoal(t *testing.T) {
	src := "ok.\n"
	expectBinding(t, src, "X = point(1, 2).", "X", "point(1,2)")
	expectBinding(t, src, "f(X, 2) = f(1, Y).", "X", "1")
	expectBinding(t, src, "f(X, 2) = f(1, Y).", "Y", "2")
	expectFail(t, src, "f(1) = g(1).")
	expectFail(t, src, "f(1) = f(1, 2).")
}

func TestWriteOutput(t *testing.T) {
	src := appendSrc
	p := MustLoad(src)
	var buf strings.Builder
	sol, err := p.Query("app([1,2], [3], X), write(X), nl.", WithWriter(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Success {
		t.Fatal("query failed")
	}
	if got := buf.String(); got != "[1,2,3]\n" {
		t.Fatalf("output = %q, want %q", got, "[1,2,3]\n")
	}
}

func TestLastCallOptimisationDepth(t *testing.T) {
	// A deterministic loop must run in constant local/choice space:
	// 100k iterations would overflow the stacks without LCO.
	src := `
loop(0).
loop(N) :- N > 0, M is N - 1, loop(M).
`
	expectBinding(t, src, "loop(100000).", "", "")
}

func TestDeepRecursionEnvironments(t *testing.T) {
	src := appendSrc + `
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
`
	expectBinding(t, src, "len([a,b,c,d,e,f,g], N).", "N", "7")
}

func TestPermanentVariables(t *testing.T) {
	src := `
p(X, Z) :- q(X, Y), r(Y, Z2), s(Z2, Z).
q(1, 2).
r(2, 3).
s(3, 4).
`
	expectBinding(t, src, "p(1, Z).", "Z", "4")
}

func TestBacktrackingSearch(t *testing.T) {
	src := `
edge(a, b). edge(b, c). edge(c, d). edge(a, x).
path(X, X, [X]).
path(X, Z, [X|P]) :- edge(X, Y), path(Y, Z, P).
`
	expectBinding(t, src, "path(a, d, P).", "P", "[a,b,c,d]")
	expectFail(t, src, "path(d, a, P).")
}

func TestFunctorArgUniv(t *testing.T) {
	src := "ok.\n"
	expectBinding(t, src, "functor(f(a,b,c), N, A).", "N", "f")
	expectBinding(t, src, "functor(f(a,b,c), N, A).", "A", "3")
	expectBinding(t, src, "functor(T, point, 2).", "T", "point(_G65537,_G65538)")
	expectBinding(t, src, "arg(2, f(a,b,c), X).", "X", "b")
	expectBinding(t, src, "f(1,2) =.. L.", "L", "[f,1,2]")
	expectBinding(t, src, "T =.. [g, 7].", "T", "g(7)")
}

func TestQueryVariableSharing(t *testing.T) {
	expectBinding(t, appendSrc, "X = Y, Y = 3.", "X", "3")
	expectBinding(t, appendSrc, "app([X], [Y], [1, 2]), X = 1.", "Y", "2")
}
