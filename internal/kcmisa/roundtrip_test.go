package kcmisa

import (
	"testing"

	"repro/internal/word"
)

// sampleInstr builds a representative instruction for an opcode with
// every operand the op consumes populated (non-zero where possible so
// a dropped field shows up in the printed form).
func sampleInstr(op Op) Instr {
	in := Instr{Op: op}
	switch op {
	case Call, Execute:
		// Proc stays empty: Decode cannot recover symbols, and String
		// falls back to the "@addr" form both sides share.
		in.L, in.N = 9, 2
	case TryMeElse, RetryMeElse, Try, Retry, Trust:
		in.L, in.N = 9, 2
	case TrustMe:
		in.N = 2
	case Jump:
		in.L = 9
	case Allocate, Neck, UnifyVoid, SaveB0, CutY,
		UnifyVarY, UnifyValY, UnifyLocY:
		in.N = 3
	case Builtin:
		in.N = 1
	case GetVarX, GetValX, PutVarX, PutValX:
		in.R1, in.R2 = 5, 2
	case MoveXY, MoveYX:
		in.R1, in.N = 5, 3
	case GetConst, PutConst, UnifyConst:
		in.K, in.R2 = word.FromInt(-7), 2
	case LoadConst:
		in.R1, in.K = 4, word.FromInt(-7)
	case GetStruct, PutStruct:
		in.K, in.R2 = word.Functor(9, 2), 2
	case GetNil, GetList, PutNil, PutList:
		in.R2 = 2
	case UnifyVarX, UnifyValX, UnifyLocX:
		in.R1 = 5
	case Add, Sub, Mul, Div, Mod, Rem, Band, Bor, Bxor, Shl, Shr, MinOp, MaxOp:
		in.R1, in.R2, in.R3 = 1, 2, 3
	case Abs:
		in.R1, in.R3 = 1, 3
	case CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe, IdentEq, IdentNe, UnifyRegs:
		in.R1, in.R2 = 1, 2
	case TestVar, TestNonvar, TestAtom, TestInteger, TestAtomic:
		in.R1 = 1
	case SwitchOnTerm:
		in.SwT = &TermSwitch{Var: 1, Const: FailLabel, List: 3, Struct: 4}
	case SwitchOnConst:
		in.L = FailLabel
		in.Sw = []SwEntry{{Key: word.FromInt(1), L: 5}, {Key: word.FromAtom(2), L: 6}}
	case SwitchOnStruct:
		in.L = 7
		in.Sw = []SwEntry{{Key: word.Functor(3, 2), L: 5}}
	}
	return in
}

// TestRoundTripEveryOpcode encodes and decodes a sample of every
// opcode and requires the printed forms to agree exactly: any operand
// the encoder drops or the decoder misplaces changes the string.
func TestRoundTripEveryOpcode(t *testing.T) {
	for op := Noop; op < NumOps; op++ {
		in := sampleInstr(op)
		ws, err := Encode(in)
		if err != nil {
			t.Errorf("%v: encode: %v", op, err)
			continue
		}
		if len(ws) != in.Words() {
			t.Errorf("%v: encoded %d words, Words()=%d", op, len(ws), in.Words())
			continue
		}
		out, n := Decode(fetchSlice(ws), 0)
		if n != len(ws) {
			t.Errorf("%v: decode consumed %d words, want %d", op, n, len(ws))
			continue
		}
		if got, want := out.String(), in.String(); got != want {
			t.Errorf("%v: round-trip changed printed form:\n  encoded %q\n  decoded %q", op, want, got)
		}
	}
}
