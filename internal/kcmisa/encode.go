package kcmisa

import (
	"fmt"

	"repro/internal/word"
)

// Instruction-word field layout (figure 3). The opcode sits at the
// top of the tag part; register addresses always occupy the same
// fields ("a fixed instruction length saves a lot of decoding
// hardware"); the 32-bit value part carries the constant value, the
// absolute branch target or the offset.
//
//	[63:56] opcode
//	[55:52] constant type (K tag) for constant-carrying instructions
//	[51:46] r1
//	[45:40] r2
//	[39:33] r3 / small immediate N
//	[32]    inference marker (section 4.2 Klips accounting)
//	[31:0]  value: K value, code address, or immediate
const (
	opShift    = 56
	ktypeShift = 52
	r1Shift    = 46
	r2Shift    = 40
	nShift     = 33
	markBit    = 1 << 32
	failValue  = 0xFFFFFFFF // encoded form of FailLabel
)

// EncodeErr describes an instruction that cannot be represented in
// the fixed-width format.
type EncodeErr struct {
	In  Instr
	Why string
}

func (e *EncodeErr) Error() string {
	return fmt.Sprintf("kcmisa: cannot encode %v: %s", e.In, e.Why)
}

func encLabel(l int) uint32 {
	if l == FailLabel {
		return failValue
	}
	return uint32(l)
}

func decLabel(v uint32) int {
	if v == failValue {
		return FailLabel
	}
	return int(v)
}

// Encode translates one symbolic instruction (with resolved labels:
// every L must be an absolute code address or FailLabel) into its
// code words.
func Encode(in Instr) ([]word.Word, error) {
	if in.N < 0 || in.N > 127 {
		return nil, &EncodeErr{in, "immediate out of range"}
	}
	w := word.Word(uint64(in.Op)<<opShift |
		uint64(in.K.Type())<<ktypeShift |
		uint64(in.R1&0x3F)<<r1Shift |
		uint64(in.R2&0x3F)<<r2Shift |
		uint64(in.N&0x7F)<<nShift)
	if in.Mark {
		w |= markBit
	}
	switch in.Op {
	case Add, Sub, Mul, Div, Mod, Rem, Band, Bor, Bxor, Shl, Shr, Abs, MinOp, MaxOp:
		// R3 travels in the N field (never used together with N).
		w = w&^(0x7F<<nShift) | word.Word(uint64(in.R3&0x3F)<<nShift)
		return []word.Word{w}, nil
	case Call, Execute, TryMeElse, RetryMeElse, Try, Retry, Trust, Jump:
		return []word.Word{w | word.Word(encLabel(in.L))}, nil
	case GetConst, GetStruct, PutConst, PutStruct, UnifyConst, LoadConst:
		return []word.Word{w | word.Word(in.K.Value())}, nil
	case SwitchOnTerm:
		if in.SwT == nil {
			return nil, &EncodeErr{in, "missing term-switch targets"}
		}
		return []word.Word{
			w | word.Word(encLabel(in.SwT.Var)),
			word.CodePtr(encLabel(in.SwT.Const)),
			word.CodePtr(encLabel(in.SwT.List)),
			word.CodePtr(encLabel(in.SwT.Struct)),
		}, nil
	case SwitchOnConst, SwitchOnStruct:
		if len(in.Sw) > 127 {
			return nil, &EncodeErr{in, "switch table too large"}
		}
		out := make([]word.Word, 0, 1+2*len(in.Sw))
		w = w&^(0x7F<<nShift) | word.Word(len(in.Sw))<<nShift
		w |= word.Word(encLabel(in.L)) // default target (missed key)
		out = append(out, w)
		for _, e := range in.Sw {
			out = append(out, e.Key, word.CodePtr(encLabel(e.L)))
		}
		return out, nil
	default:
		return []word.Word{w}, nil
	}
}

// Fetcher reads one code word at a word address; the machine passes
// its code-cache access path here so decoding generates the same
// code-space traffic the hardware prefetch unit would.
type Fetcher func(addr uint32) word.Word

// Decode reads the instruction at addr and returns it together with
// its size in words.
func Decode(fetch Fetcher, addr uint32) (Instr, int) {
	var in Instr
	n := DecodeInto(fetch, addr, &in)
	return in, n
}

// MaxInstrWords is the widest encodable instruction: a switch table
// with the full 127 entries behind its opcode word.
const MaxInstrWords = 1 + 2*127

// DecodeInto decodes the instruction at addr into *in and returns its
// size in words. It is the allocation-free twin of Decode for hot
// loops and predecode caches: every field of *in is overwritten, and
// the switch-table storage (in.Sw backing array, in.SwT pointee) of
// the previous occupant is reused when it is large enough, so a
// steady-state decode of already-seen shapes allocates nothing.
// Callers therefore must not retain in.Sw or in.SwT across calls.
func DecodeInto(fetch Fetcher, addr uint32, in *Instr) int {
	w := fetch(addr)
	op := Op(w >> opShift)
	sw := in.Sw[:0]
	swt := in.SwT
	*in = Instr{Op: op, Mark: w&markBit != 0}
	val := w.Value()
	r1 := Reg(w >> r1Shift & 0x3F)
	r2 := Reg(w >> r2Shift & 0x3F)
	n := int(w >> nShift & 0x7F)
	ktype := word.Type(w >> ktypeShift & 0xF)
	switch op {
	case Add, Sub, Mul, Div, Mod, Rem, Band, Bor, Bxor, Shl, Shr, Abs, MinOp, MaxOp:
		in.R1, in.R2, in.R3 = r1, r2, Reg(n)
		return 1
	case Call, Execute, TryMeElse, RetryMeElse, Try, Retry, Trust, Jump:
		in.L = decLabel(val)
		in.N = n // predicate arity on the alternative instructions
		return 1
	case GetConst, GetStruct, PutConst, PutStruct, UnifyConst, LoadConst:
		in.R1, in.R2, in.N = r1, r2, n
		in.K = word.Make(ktype, word.ZNone, val)
		return 1
	case SwitchOnTerm:
		if swt == nil {
			swt = new(TermSwitch)
		}
		*swt = TermSwitch{
			Var:    decLabel(val),
			Const:  decLabel(fetch(addr + 1).Value()),
			List:   decLabel(fetch(addr + 2).Value()),
			Struct: decLabel(fetch(addr + 3).Value()),
		}
		in.SwT = swt
		return 4
	case SwitchOnConst, SwitchOnStruct:
		in.L = decLabel(val)
		for i := 0; i < n; i++ {
			sw = append(sw, SwEntry{
				Key: fetch(addr + 1 + uint32(2*i)),
				L:   decLabel(fetch(addr + 2 + uint32(2*i)).Value()),
			})
		}
		in.Sw = sw
		return 1 + 2*n
	default:
		in.R1, in.R2, in.N = r1, r2, n
		return 1
	}
}
