package kcmisa_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/kcmisa"
	"repro/internal/word"
)

// wordsToBytes flattens encoded code words into the byte form the
// fuzzer mutates.
func wordsToBytes(ws []word.Word) []byte {
	b := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.BigEndian.PutUint64(b[8*i:], uint64(w))
	}
	return b
}

// FuzzDecode throws arbitrary code words at the decoder, the
// instruction printer, and the encoded-stream checker. None of them
// may panic, whatever the bytes: the loader runs them on untrusted
// blocks before anything executes. Seeds are the linked images of the
// benchmark suite, so mutations start from realistic code.
func FuzzDecode(f *testing.F) {
	for _, p := range bench.Suite {
		prog, err := core.Load(p.Source)
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		mod, err := compiler.New(prog.Syms()).CompileProgram(prog.Clauses())
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		im, err := asm.Link(mod)
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		f.Add(wordsToBytes(im.Code))
	}
	// A few degenerate shapes the mutator would take longer to reach.
	f.Add([]byte{})
	f.Add(wordsToBytes([]word.Word{word.Word(250) << 56}))
	f.Add(wordsToBytes([]word.Word{^word.Word(0)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		code := make([]word.Word, len(data)/8)
		for i := range code {
			code[i] = word.Word(binary.BigEndian.Uint64(data[8*i:]))
		}
		fetch := func(a uint32) word.Word {
			if int(a) >= len(code) {
				return 0
			}
			return code[a]
		}
		for pc := 0; pc < len(code); {
			in, n := kcmisa.Decode(fetch, uint32(pc))
			_ = in.String()
			_ = in.Words()
			_ = in.Transfer()
			if n < 1 {
				t.Fatalf("Decode consumed %d words at %d", n, pc)
			}
			pc += n
		}
		_ = analysis.CheckEncoded(code, 0, 0)
		_ = analysis.VetEncoded(code, 0, nil)
	})
}
