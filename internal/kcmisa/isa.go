// Package kcmisa defines the KCM instruction set: the WAM-derived
// operation repertoire produced by the compiler, its operand
// conventions, and the fixed-width 64-bit encoding described in the
// paper (figure 3). Switch instructions are the only multi-word
// instructions, exactly as on the hardware.
//
// # Operand conventions
//
// Registers R1..R3 index the 64 x 64-bit register file. Argument
// registers A1..An are registers 1..n (register 0 is a scratch
// register reserved for the microcode). Permanent variables Yn live
// in environments on the local stack and are referenced through the
// small immediate N, as are arities, environment sizes, void counts
// and built-in numbers. K is a tagged constant operand and L a code
// label: an instruction index before linking, an absolute code-space
// word address afterwards. L = -1 denotes the failure continuation.
package kcmisa

import (
	"fmt"

	"repro/internal/term"
	"repro/internal/word"
)

// Reg is a register-file index (0..63).
type Reg uint8

// NumRegs is the size of the KCM register file.
const NumRegs = 64

// Op is a KCM opcode.
type Op uint8

// The instruction repertoire. Get/Put/Unify ops follow the WAM;
// Try/Retry/Trust and Neck implement KCM's delayed choice-point
// creation (shallow backtracking); the arithmetic, test and identity
// ops are the inline guard instructions whose conditional-branch
// semantics cost 1 cycle untaken / 4 cycles taken.
const (
	Noop Op = iota

	// Control.
	Call     // L/Proc: call predicate; sets continuation and cut barrier
	Execute  // L/Proc: tail call
	Proceed  // return through the continuation register
	Allocate // N: push environment with N permanent variables
	Deallocate
	TryMeElse      // L: first alternative; save shadow registers, shallow mode
	RetryMeElse    // L: middle alternative
	TrustMe        // last alternative
	Try            // L: out-of-line alternative block: first
	Retry          // L: middle
	Trust          // L: last
	Neck           // N=arity: end of guard; materialise choice point if needed
	Jump           // L: unconditional intra-predicate jump
	Fail           // explicit failure
	SwitchOnTerm   // SwT: 4-way dispatch on type of A1
	SwitchOnConst  // Sw: hashed dispatch on constant value
	SwitchOnStruct // Sw: hashed dispatch on functor
	Cut            // cut to the barrier captured at call time
	SaveB0         // N=Yn: save cut barrier into a permanent variable
	CutY           // N=Yn: cut to a saved barrier
	Halt           // query success: stop the machine
	HaltFail       // query failure: stop the machine

	// Head unification (get).
	GetVarX   // R1=Xn R2=Ai: Xn := Ai
	GetValX   // R1=Xn R2=Ai: unify(Xn, Ai)
	GetConst  // K R2=Ai: unify Ai with constant
	GetNil    // R2=Ai
	GetList   // R2=Ai: read or write mode
	GetStruct // K=functor R2=Ai

	// Subterm unification (unify), driven by the read/write mode flag.
	UnifyVarX  // R1=Xn
	UnifyValX  // R1=Xn
	UnifyLocX  // R1=Xn: unify_local_value
	UnifyVarY  // N=Yn
	UnifyValY  // N=Yn
	UnifyLocY  // N=Yn
	UnifyConst // K
	UnifyNil
	UnifyList // the tail of the current cell is the next list cell
	UnifyVoid // N=count

	// Goal-argument construction (put).
	PutVarX    // R1=Xn R2=Ai: fresh heap variable into both
	PutVarY    // N=Yn R2=Ai: fresh permanent variable
	PutValX    // R1=Xn R2=Ai: Ai := Xn
	PutValY    // N=Yn R2=Ai: Ai := Yn
	PutUnsafeY // N=Yn R2=Ai: globalising put
	PutConst   // K R2=Ai
	PutNil     // R2=Ai
	PutList    // R2=Ai: write-mode list cell
	PutStruct  // K=functor R2=Ai
	MoveXY     // R1=Xn N=Yn: Yn := Xn (after allocate)
	MoveYX     // R1=Xn N=Yn: Xn := Yn

	// Inline arithmetic (guard or body). Operands deref'd; R3 := R1 op R2.
	LoadConst // R1 K: R1 := K
	Add
	Sub
	Mul
	Div
	Mod
	Rem
	Band // bitwise and (/\)
	Bor  // bitwise or (\/)
	Bxor // bitwise xor
	Shl  // <<
	Shr  // >>
	Abs  // unary: R3 := |R1|
	MinOp
	MaxOp

	// Inline comparisons: fail if the relation does not hold.
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpEq // =:=
	CmpNe // =\=

	// Inline type tests: fail if the test does not hold.
	TestVar
	TestNonvar
	TestAtom
	TestInteger
	TestAtomic

	// Identity comparison (==, \==): structural, no binding.
	IdentEq
	IdentNe

	// General unification of two registers (=/2, is/2 result).
	UnifyRegs

	// Escape to the built-in layer; N = built-in number, args in A1..An.
	Builtin

	NumOps // sentinel
)

var opNames = [...]string{
	Noop: "noop", Call: "call", Execute: "execute", Proceed: "proceed",
	Allocate: "allocate", Deallocate: "deallocate",
	TryMeElse: "try_me_else", RetryMeElse: "retry_me_else", TrustMe: "trust_me",
	Try: "try", Retry: "retry", Trust: "trust",
	Neck: "neck", Jump: "jump", Fail: "fail",
	SwitchOnTerm: "switch_on_term", SwitchOnConst: "switch_on_constant",
	SwitchOnStruct: "switch_on_structure",
	Cut:            "cut", SaveB0: "save_b0", CutY: "cut_y", Halt: "halt", HaltFail: "halt_fail",
	GetVarX: "get_variable", GetValX: "get_value", GetConst: "get_constant",
	GetNil: "get_nil", GetList: "get_list", GetStruct: "get_structure",
	UnifyVarX: "unify_variable", UnifyValX: "unify_value", UnifyLocX: "unify_local_value",
	UnifyVarY: "unify_variable_y", UnifyValY: "unify_value_y", UnifyLocY: "unify_local_value_y",
	UnifyConst: "unify_constant", UnifyNil: "unify_nil", UnifyList: "unify_list",
	UnifyVoid: "unify_void",
	PutVarX:   "put_variable", PutVarY: "put_variable_y", PutValX: "put_value",
	PutValY: "put_value_y", PutUnsafeY: "put_unsafe_value", PutConst: "put_constant",
	PutNil: "put_nil", PutList: "put_list", PutStruct: "put_structure",
	MoveXY: "move_xy", MoveYX: "move_yx",
	LoadConst: "load_constant", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Rem: "rem", Band: "and", Bor: "or", Bxor: "xor", Shl: "shl", Shr: "shr",
	Abs: "abs", MinOp: "min", MaxOp: "max",
	CmpLt: "cmp_lt", CmpLe: "cmp_le", CmpGt: "cmp_gt", CmpGe: "cmp_ge",
	CmpEq: "cmp_eq", CmpNe: "cmp_ne",
	TestVar: "test_var", TestNonvar: "test_nonvar", TestAtom: "test_atom",
	TestInteger: "test_integer", TestAtomic: "test_atomic",
	IdentEq: "ident_eq", IdentNe: "ident_ne",
	UnifyRegs: "unify_regs", Builtin: "builtin",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// FailLabel is the label value denoting failure.
const FailLabel = -1

// SwEntry is one switch-table entry: a constant (or functor word) and
// its target label.
type SwEntry struct {
	Key word.Word
	L   int
}

// TermSwitch holds the four switch_on_term targets, dispatching on
// the dereferenced type of argument register A1.
type TermSwitch struct {
	Var, Const, List, Struct int
}

// Instr is one symbolic KCM instruction.
type Instr struct {
	Op         Op
	R1, R2, R3 Reg
	N          int
	K          word.Word
	L          int
	Proc       term.Indicator // symbolic call target (pre-link)
	Sw         []SwEntry
	SwT        *TermSwitch
	// Mark tags the final instruction of an inline source goal
	// (is/2, comparisons, type tests, =/2, ==/2): executing it counts
	// one logical inference under the paper's definition. Calls and
	// built-in escapes count through their own opcodes; cut is not
	// counted (footnote in section 4.2).
	Mark bool
}

// Words returns the size of the instruction in 64-bit code words:
// 1 for everything except the switch instructions.
func (in Instr) Words() int {
	switch in.Op {
	case SwitchOnTerm:
		return 4 // opcode word + const/list/struct target words
	case SwitchOnConst, SwitchOnStruct:
		return 1 + 2*len(in.Sw) // opcode word + (key, target) pairs
	}
	return 1
}

func (in Instr) String() string {
	s := in.Op.String()
	switch in.Op {
	case Call, Execute:
		if in.Proc.Name != "" {
			return fmt.Sprintf("%s %v", s, in.Proc)
		}
		return fmt.Sprintf("%s @%d", s, in.L)
	case TryMeElse, RetryMeElse, Try, Retry, Trust, Jump:
		return fmt.Sprintf("%s L%d", s, in.L)
	case Allocate, Neck, UnifyVoid, SaveB0, CutY, Builtin,
		UnifyVarY, UnifyValY, UnifyLocY:
		return fmt.Sprintf("%s %d", s, in.N)
	case GetVarX, GetValX, PutVarX, PutValX:
		return fmt.Sprintf("%s X%d, A%d", s, in.R1, in.R2)
	case MoveXY:
		return fmt.Sprintf("%s X%d, Y%d", s, in.R1, in.N)
	case MoveYX:
		return fmt.Sprintf("%s Y%d, X%d", s, in.N, in.R1)
	case PutVarY, PutValY, PutUnsafeY:
		return fmt.Sprintf("%s Y%d, A%d", s, in.N, in.R2)
	case GetConst, GetStruct, PutConst, PutStruct:
		return fmt.Sprintf("%s %v, A%d", s, in.K, in.R2)
	case GetNil, GetList, PutNil, PutList:
		return fmt.Sprintf("%s A%d", s, in.R2)
	case UnifyVarX, UnifyValX, UnifyLocX:
		return fmt.Sprintf("%s X%d", s, in.R1)
	case UnifyConst, LoadConst:
		return fmt.Sprintf("%s %v", s, in.K)
	case Add, Sub, Mul, Div, Mod, Rem, Band, Bor, Bxor, Shl, Shr, MinOp, MaxOp:
		return fmt.Sprintf("%s X%d, X%d, X%d", s, in.R1, in.R2, in.R3)
	case Abs:
		return fmt.Sprintf("%s X%d, X%d", s, in.R1, in.R3)
	case CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe, IdentEq, IdentNe, UnifyRegs:
		return fmt.Sprintf("%s X%d, X%d", s, in.R1, in.R2)
	case TestVar, TestNonvar, TestAtom, TestInteger, TestAtomic:
		return fmt.Sprintf("%s X%d", s, in.R1)
	case SwitchOnTerm:
		return fmt.Sprintf("%s var:L%d const:L%d list:L%d struct:L%d",
			s, in.SwT.Var, in.SwT.Const, in.SwT.List, in.SwT.Struct)
	case SwitchOnConst, SwitchOnStruct:
		return fmt.Sprintf("%s (%d entries)", s, len(in.Sw))
	}
	return s
}

// Transfer reports whether the instruction unconditionally leaves the
// current straight-line code path (used by the assembler to validate
// block structure).
func (in Instr) Transfer() bool {
	switch in.Op {
	case Execute, Proceed, Jump, Fail, SwitchOnTerm, SwitchOnConst,
		SwitchOnStruct, Try, Retry, Trust, Halt, HaltFail:
		return true
	}
	return false
}
