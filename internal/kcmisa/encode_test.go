package kcmisa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
	"repro/internal/word"
)

// fetchSlice makes a Fetcher over encoded words.
func fetchSlice(ws []word.Word) Fetcher {
	return func(a uint32) word.Word { return ws[a] }
}

// roundtrip encodes and decodes one instruction and compares the
// operands the op actually uses.
func roundtrip(t *testing.T, in Instr) {
	t.Helper()
	ws, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	if len(ws) != in.Words() {
		t.Fatalf("%v: encoded %d words, Words()=%d", in, len(ws), in.Words())
	}
	out, n := Decode(fetchSlice(ws), 0)
	if n != len(ws) {
		t.Fatalf("%v: decode consumed %d words, want %d", in, n, len(ws))
	}
	if out.Op != in.Op || out.Mark != in.Mark {
		t.Fatalf("roundtrip: got %v (mark=%v), want %v (mark=%v)", out, out.Mark, in, in.Mark)
	}
	switch in.Op {
	case Add, Sub, Mul, Div, Mod:
		if out.R1 != in.R1 || out.R2 != in.R2 || out.R3 != in.R3 {
			t.Fatalf("arith roundtrip: %v vs %v", out, in)
		}
	case Call, Execute, TryMeElse, RetryMeElse, Try, Retry, Trust, Jump:
		if out.L != in.L || out.N != in.N {
			t.Fatalf("control roundtrip: got L=%d N=%d, want L=%d N=%d", out.L, out.N, in.L, in.N)
		}
	case GetConst, GetStruct, PutConst, PutStruct, UnifyConst, LoadConst:
		if out.K.Type() != in.K.Type() || out.K.Value() != in.K.Value() {
			t.Fatalf("const roundtrip: got %v, want %v", out.K, in.K)
		}
		if out.R1 != in.R1 || out.R2 != in.R2 {
			t.Fatalf("const regs roundtrip: %v vs %v", out, in)
		}
	case SwitchOnTerm:
		if *out.SwT != *in.SwT {
			t.Fatalf("term switch roundtrip: %v vs %v", *out.SwT, *in.SwT)
		}
	case SwitchOnConst, SwitchOnStruct:
		if out.L != in.L || len(out.Sw) != len(in.Sw) {
			t.Fatalf("switch roundtrip size")
		}
		for i := range in.Sw {
			if out.Sw[i] != in.Sw[i] {
				t.Fatalf("switch entry %d: %v vs %v", i, out.Sw[i], in.Sw[i])
			}
		}
	default:
		if out.R1 != in.R1 || out.R2 != in.R2 || out.N != in.N {
			t.Fatalf("roundtrip: got %v, want %v", out, in)
		}
	}
}

func TestEncodeDecodeAllOps(t *testing.T) {
	k := word.FromInt(-42)
	fn := word.Functor(123, 3)
	cases := []Instr{
		{Op: Noop, Mark: true},
		{Op: Call, L: 0x0FFFFFF, N: 5},
		{Op: Execute, L: 7, N: 2},
		{Op: Proceed},
		{Op: Allocate, N: 17},
		{Op: Deallocate},
		{Op: TryMeElse, L: 99, N: 3},
		{Op: RetryMeElse, L: 12, N: 3},
		{Op: TrustMe, N: 3},
		{Op: Try, L: 5, N: 1},
		{Op: Retry, L: 6, N: 1},
		{Op: Trust, L: 7, N: 1},
		{Op: Neck, N: 9},
		{Op: Jump, L: FailLabel},
		{Op: Fail, Mark: true},
		{Op: Cut}, {Op: SaveB0, N: 4}, {Op: CutY, N: 4},
		{Op: Halt}, {Op: HaltFail},
		{Op: GetVarX, R1: 63, R2: 1},
		{Op: GetValX, R1: 2, R2: 3},
		{Op: GetConst, K: k, R2: 2},
		{Op: GetNil, R2: 1},
		{Op: GetList, R2: 2},
		{Op: GetStruct, K: fn, R2: 3},
		{Op: UnifyVarX, R1: 10}, {Op: UnifyValX, R1: 11}, {Op: UnifyLocX, R1: 12},
		{Op: UnifyVarY, N: 6}, {Op: UnifyValY, N: 7}, {Op: UnifyLocY, N: 8},
		{Op: UnifyConst, K: word.FromAtom(55)},
		{Op: UnifyNil}, {Op: UnifyList}, {Op: UnifyVoid, N: 3},
		{Op: PutVarX, R1: 5, R2: 6}, {Op: PutVarY, N: 2, R2: 3},
		{Op: PutValX, R1: 8, R2: 9}, {Op: PutValY, N: 1, R2: 2},
		{Op: PutUnsafeY, N: 3, R2: 4},
		{Op: PutConst, K: word.Nil(), R2: 1},
		{Op: PutNil, R2: 2}, {Op: PutList, R2: 3}, {Op: PutStruct, K: fn, R2: 4},
		{Op: MoveXY, R1: 7, N: 3}, {Op: MoveYX, R1: 7, N: 3},
		{Op: LoadConst, R1: 9, K: word.FromFloat(0x40490FDB), Mark: true},
		{Op: Add, R1: 1, R2: 2, R3: 3, Mark: true},
		{Op: Mod, R1: 61, R2: 62, R3: 63},
		{Op: CmpLt, R1: 1, R2: 2, Mark: true},
		{Op: TestInteger, R1: 4, Mark: true},
		{Op: IdentEq, R1: 5, R2: 6},
		{Op: UnifyRegs, R1: 7, R2: 8, Mark: true},
		{Op: Builtin, N: 2},
		{Op: SwitchOnTerm, SwT: &TermSwitch{Var: 1, Const: FailLabel, List: 3, Struct: 4}},
		{Op: SwitchOnConst, L: 44, Sw: []SwEntry{{Key: word.FromInt(1), L: 10}, {Key: word.FromAtom(2), L: 20}}},
		{Op: SwitchOnStruct, L: FailLabel, Sw: []SwEntry{{Key: fn, L: 30}}},
	}
	for _, in := range cases {
		roundtrip(t, in)
	}
}

func TestEncodeRejectsBigImmediates(t *testing.T) {
	if _, err := Encode(Instr{Op: Allocate, N: 128}); err == nil {
		t.Fatal("N=128 must not encode (7-bit field)")
	}
	if _, err := Encode(Instr{Op: Allocate, N: -1}); err == nil {
		t.Fatal("negative N must not encode")
	}
	big := Instr{Op: SwitchOnConst, L: FailLabel}
	for i := 0; i < 128; i++ {
		big.Sw = append(big.Sw, SwEntry{Key: word.FromInt(int32(i)), L: i})
	}
	if _, err := Encode(big); err == nil {
		t.Fatal("oversized switch table must not encode")
	}
}

func TestEncodeQuickRandomArith(t *testing.T) {
	f := func(r1, r2, r3 uint8, mark bool) bool {
		in := Instr{Op: Add, R1: Reg(r1 & 63), R2: Reg(r2 & 63), R3: Reg(r3 & 63), Mark: mark}
		ws, err := Encode(in)
		if err != nil {
			return false
		}
		out, _ := Decode(fetchSlice(ws), 0)
		return out.R1 == in.R1 && out.R2 == in.R2 && out.R3 == in.R3 && out.Mark == mark
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeQuickRandomConsts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var k word.Word
		switch rng.Intn(4) {
		case 0:
			k = word.FromInt(rng.Int31() - 1<<30)
		case 1:
			k = word.FromAtom(rng.Uint32() & 0xFFFFFF)
		case 2:
			k = word.Nil()
		case 3:
			k = word.Functor(rng.Uint32()&0xFFFFFF, rng.Intn(256))
		}
		in := Instr{Op: UnifyConst, K: k, Mark: rng.Intn(2) == 0}
		ws, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := Decode(fetchSlice(ws), 0)
		if out.K.Type() != k.Type() || out.K.Value() != k.Value() || out.Mark != in.Mark {
			t.Fatalf("roundtrip %v: got %v", k, out.K)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	// Every op must render without panicking and non-emptily.
	for op := Noop; op < NumOps; op++ {
		in := Instr{Op: op, SwT: &TermSwitch{}, Proc: term.Ind("p", 2)}
		if in.String() == "" {
			t.Errorf("op %d renders empty", op)
		}
	}
}
