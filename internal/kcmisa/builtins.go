package kcmisa

import "repro/internal/term"

// Built-in predicate numbers used by the Builtin escape instruction.
// On the real machine these escape to the host through the message
// system; here they escape to the Go built-in layer. The Table 2
// measurement protocol of the paper compiles write/1 and nl/0 as unit
// clauses costing 5 cycles (the minimum call/return sequence), which
// the cost model reproduces.
const (
	BIWrite   = iota + 1 // write/1
	BINl                 // nl/0
	BITab                // tab/1: N spaces
	BIWriteln            // writeln/1 (write + nl, convenience)
	BIHalt               // halt/0: stop with success
	BIFunctor            // functor/3
	BIArg                // arg/3
	BIUniv               // =../2
	BICall               // call/1: meta-call of a constructed goal
	NumBuiltins
)

// BuiltinByName maps a source-level predicate indicator to its
// built-in number.
var BuiltinByName = map[term.Indicator]int{
	term.Ind("write", 1):   BIWrite,
	term.Ind("nl", 0):      BINl,
	term.Ind("tab", 1):     BITab,
	term.Ind("writeln", 1): BIWriteln,
	term.Ind("halt", 0):    BIHalt,
	term.Ind("functor", 3): BIFunctor,
	term.Ind("arg", 3):     BIArg,
	term.Ind("=..", 2):     BIUniv,
	term.Ind("call", 1):    BICall,
}

// BuiltinName returns the display name of a built-in number.
func BuiltinName(id int) string {
	for pi, n := range BuiltinByName {
		if n == id {
			return pi.String()
		}
	}
	return "builtin?"
}

// BuiltinArity returns the number of argument registers a built-in
// consumes.
func BuiltinArity(id int) int {
	for pi, n := range BuiltinByName {
		if n == id {
			return pi.Arity
		}
	}
	return 0
}
