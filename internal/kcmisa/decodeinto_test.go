package kcmisa_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/kcmisa"
	"repro/internal/word"
)

// instrEqual compares two decoded instructions, treating a nil and an
// empty switch table as the same (DecodeInto reuses the previous
// occupant's backing array, so an empty table may be a non-nil
// zero-length slice where Decode would leave nil).
func instrEqual(a, b kcmisa.Instr) bool {
	if a.Op != b.Op || a.Mark != b.Mark ||
		a.R1 != b.R1 || a.R2 != b.R2 || a.R3 != b.R3 ||
		a.N != b.N || a.L != b.L || a.K != b.K || a.Proc != b.Proc {
		return false
	}
	if (a.SwT == nil) != (b.SwT == nil) {
		return false
	}
	if a.SwT != nil && *a.SwT != *b.SwT {
		return false
	}
	if len(a.Sw) != len(b.Sw) {
		return false
	}
	for i := range a.Sw {
		if a.Sw[i] != b.Sw[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeInto differentially tests the allocation-free decoder
// against the allocating one: over any code stream, DecodeInto into a
// dirty, continuously reused Instr must produce exactly what a fresh
// Decode produces — same fields, same width. A reuse bug (a stale
// switch entry, a leaked SwT target) shows up as a mismatch. Seeds
// are the linked benchmark-suite images, as in FuzzDecode.
func FuzzDecodeInto(f *testing.F) {
	for _, p := range bench.Suite {
		prog, err := core.Load(p.Source)
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		mod, err := compiler.New(prog.Syms()).CompileProgram(prog.Clauses())
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		im, err := asm.Link(mod)
		if err != nil {
			f.Fatalf("%s: %v", p.Name, err)
		}
		f.Add(wordsToBytes(im.Code))
	}
	f.Add([]byte{})
	f.Add(wordsToBytes([]word.Word{word.Word(250) << 56}))
	f.Add(wordsToBytes([]word.Word{^word.Word(0)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		code := make([]word.Word, len(data)/8)
		for i := range code {
			code[i] = word.Word(binary.BigEndian.Uint64(data[8*i:]))
		}
		fetch := func(a uint32) word.Word {
			if int(a) >= len(code) {
				return 0
			}
			return code[a]
		}
		// in is deliberately carried dirty from instruction to
		// instruction, the way the predecode scratch slot is.
		var in kcmisa.Instr
		for pc := 0; pc < len(code); {
			want, wn := kcmisa.Decode(fetch, uint32(pc))
			gn := kcmisa.DecodeInto(fetch, uint32(pc), &in)
			if gn != wn {
				t.Fatalf("width mismatch at %d: DecodeInto %d, Decode %d", pc, gn, wn)
			}
			if !instrEqual(in, want) {
				t.Fatalf("decode mismatch at %d:\nDecodeInto %v\nDecode     %v", pc, in, want)
			}
			if wn < 1 {
				t.Fatalf("Decode consumed %d words at %d", wn, pc)
			}
			pc += wn
		}
	})
}

// TestDecodeIntoReusesStorage pins the allocation contract: decoding
// a switch-bearing stream into the same Instr repeatedly must not
// allocate once the backing storage has grown to the largest shape.
func TestDecodeIntoReusesStorage(t *testing.T) {
	tbl := kcmisa.Instr{
		Op: kcmisa.SwitchOnConst,
		L:  40,
		Sw: []kcmisa.SwEntry{
			{Key: word.FromInt(1), L: 41}, {Key: word.FromInt(2), L: 42}, {Key: word.FromInt(3), L: 43},
		},
	}
	st := kcmisa.Instr{Op: kcmisa.SwitchOnTerm, SwT: &kcmisa.TermSwitch{Var: 50, Const: 51, List: 52, Struct: 53}}
	var code []word.Word
	for _, in := range []kcmisa.Instr{tbl, st, {Op: kcmisa.Proceed}} {
		ws, err := kcmisa.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		code = append(code, ws...)
	}
	fetch := func(a uint32) word.Word { return code[a] }
	// One slot per code address, the predecode-table pattern: each
	// slot always re-decodes the same instruction, so its switch
	// storage is grown once and reused on every later decode.
	slots := make([]kcmisa.Instr, len(code))
	for pc := 0; pc < len(code); {
		pc += kcmisa.DecodeInto(fetch, uint32(pc), &slots[pc])
	}
	allocs := testing.AllocsPerRun(100, func() {
		for pc := 0; pc < len(code); {
			pc += kcmisa.DecodeInto(fetch, uint32(pc), &slots[pc])
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocated %.1f times per warm re-decode pass, want 0", allocs)
	}
}
