package cache

import (
	"testing"

	"repro/internal/word"
)

// fakeBack is a Backing over a map with fixed costs.
type fakeBack struct {
	data   map[uint32]word.Word
	rc, wc int
	reads  int
	writes int
}

func newBack() *fakeBack {
	return &fakeBack{data: map[uint32]word.Word{}, rc: 4, wc: 4}
}

func (b *fakeBack) Read(va uint32) (word.Word, int, error) {
	b.reads++
	return b.data[va], b.rc, nil
}

func (b *fakeBack) Write(va uint32, w word.Word) (int, error) {
	b.writes++
	b.data[va] = w
	return b.wc, nil
}

func TestDataReadMissThenHit(t *testing.T) {
	b := newBack()
	b.data[100] = word.FromInt(7)
	c := NewData(b, true)
	w, cost, err := c.Read(100, word.ZGlobal)
	if err != nil || w.Int() != 7 {
		t.Fatalf("read: %v %v", w, err)
	}
	if cost != 4 {
		t.Fatalf("miss cost %d", cost)
	}
	_, cost, _ = c.Read(100, word.ZGlobal)
	if cost != 0 {
		t.Fatalf("hit cost %d", cost)
	}
	s := c.Stats()
	if s.Reads != 2 || s.ReadMiss != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDataCopyBack(t *testing.T) {
	b := newBack()
	c := NewData(b, true)
	// A write stays in the cache until evicted.
	c.Write(5, word.ZGlobal, word.FromInt(1))
	if b.writes != 0 {
		t.Fatal("write-through behaviour in a copy-back cache")
	}
	// Evict by touching the conflicting index (same section, +8K).
	c.Write(5+8*1024, word.ZGlobal, word.FromInt(2))
	if b.writes != 1 {
		t.Fatalf("dirty eviction did not reach memory (%d writes)", b.writes)
	}
	if got := b.data[5]; got.Int() != 1 {
		t.Fatalf("memory got %v", got)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("writebacks %d", c.Stats().WriteBacks)
	}
}

func TestDataFlush(t *testing.T) {
	b := newBack()
	c := NewData(b, true)
	for i := uint32(0); i < 10; i++ {
		c.Write(i, word.ZGlobal, word.FromInt(int32(i)))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 10; i++ {
		if b.data[i].Int() != int32(i) {
			t.Fatalf("flush lost word %d", i)
		}
	}
	// Flushing twice writes nothing new.
	w := b.writes
	c.Flush()
	if b.writes != w {
		t.Fatal("second flush wrote")
	}
}

func TestSplitPreventsZoneCollisions(t *testing.T) {
	b := newBack()
	split := NewData(b, true)
	// Same index in two zones: both stay resident in a split cache.
	split.Write(0x100, word.ZGlobal, word.FromInt(1))
	split.Write(0x100, word.ZLocal, word.FromInt(2))
	if w, _, _ := split.Read(0x100, word.ZGlobal); w.Int() != 1 {
		t.Fatal("global line evicted in split cache")
	}
	if split.Stats().ReadMiss != 0 {
		t.Fatalf("split cache missed: %+v", split.Stats())
	}

	uni := NewData(newBack(), false)
	uni.Write(0x100, word.ZGlobal, word.FromInt(1))
	uni.Write(0x100, word.ZLocal, word.FromInt(2)) // same index: evicts
	uni.Read(0x100, word.ZGlobal)
	if uni.Stats().ReadMiss != 1 {
		t.Fatalf("unified cache should collide: %+v", uni.Stats())
	}
}

func TestDataPeek(t *testing.T) {
	c := NewData(newBack(), true)
	if _, ok := c.Peek(9, word.ZGlobal); ok {
		t.Fatal("peek hit on empty cache")
	}
	c.Write(9, word.ZGlobal, word.FromInt(3))
	w, ok := c.Peek(9, word.ZGlobal)
	if !ok || w.Int() != 3 {
		t.Fatalf("peek %v %v", w, ok)
	}
	if c.Stats().Reads != 0 {
		t.Fatal("peek counted as a read")
	}
}

func TestInvalidate(t *testing.T) {
	b := newBack()
	c := NewData(b, true)
	c.Write(1, word.ZGlobal, word.FromInt(1))
	c.Invalidate()
	if _, ok := c.Peek(1, word.ZGlobal); ok {
		t.Fatal("line survived invalidate")
	}
}

func TestCodePrefetch(t *testing.T) {
	b := newBack()
	for i := uint32(0); i < 64; i++ {
		b.data[i] = word.Word(i)
	}
	c := NewCode(b, 3)
	c.Read(0) // miss: fetches 0 and prefetches 1..3
	for i := uint32(1); i <= 3; i++ {
		if _, cost, _ := c.Read(i); cost != 0 {
			t.Fatalf("word %d not prefetched", i)
		}
	}
	if s := c.Stats(); s.ReadMiss != 1 {
		t.Fatalf("misses %d, want 1 (prefetch covers the rest)", s.ReadMiss)
	}
	nop := NewCode(newBackFrom(b.data), 0)
	nop.Read(0)
	if _, cost, _ := nop.Read(1); cost == 0 {
		t.Fatal("prefetch disabled but word 1 cached")
	}
}

func newBackFrom(data map[uint32]word.Word) *fakeBack {
	b := newBack()
	for k, v := range data {
		b.data[k] = v
	}
	return b
}

func TestCodeWriteThrough(t *testing.T) {
	b := newBack()
	c := NewCode(b, 0)
	c.Write(10, word.FromInt(5))
	if b.data[10].Int() != 5 {
		t.Fatal("write did not reach memory (write-through!)")
	}
	if w, cost, _ := c.Read(10); w.Int() != 5 || cost != 0 {
		t.Fatal("written word not cached")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 1 {
		t.Fatal("empty stats should report ratio 1")
	}
	s = Stats{Reads: 8, Writes: 2, ReadMiss: 1, WriteMiss: 1}
	if got := s.HitRatio(); got != 0.8 {
		t.Fatalf("ratio %v", got)
	}
	if s.Hits() != 8 {
		t.Fatalf("hits %d", s.Hits())
	}
}
