// Package cache implements KCM's logical (virtually-addressed)
// caches: the copy-back data cache, direct-mapped but split into 8
// sections of 1K words selected by the zone field of the address so
// that different stacks can never collide, and the write-through code
// cache with page-mode prefetch. Both have a line size of one word
// and an 80 ns (single-cycle) hit time.
package cache

import "repro/internal/word"

// Backing is the refill/writeback path behind a cache: the MMU in
// front of physical memory. Costs are returned in cycles.
type Backing interface {
	Read(va uint32) (word.Word, int, error)
	Write(va uint32, w word.Word) (int, error)
}

// Stats counts cache activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadMiss   uint64
	WriteMiss  uint64
	WriteBacks uint64
}

// Hits returns total hits.
func (s Stats) Hits() uint64 { return s.Reads + s.Writes - s.ReadMiss - s.WriteMiss }

// HitRatio returns the fraction of accesses served by the cache.
func (s Stats) HitRatio() float64 {
	t := s.Reads + s.Writes
	if t == 0 {
		return 1
	}
	return float64(s.Hits()) / float64(t)
}

type line struct {
	valid bool
	dirty bool
	va    uint32
	zone  word.Zone
	data  word.Word
}

// Data is the KCM data cache: 8K words total. With Split enabled
// (the KCM configuration) the three zone bits select one of 8
// sections of 1K; with Split disabled it degrades to a plain 8K
// direct-mapped cache, the configuration used for the stack-collision
// study in section 3.2.4.
type Data struct {
	// lines is a fixed-size array, not a slice: the hit path indexes
	// it with a value already reduced mod DataWords, so the compiler
	// drops both the bounds check and the slice-header indirection —
	// this path runs once per simulated data access.
	lines [DataWords]line
	split bool
	stats Stats
	back  Backing

	// OnMiss, when non-nil, observes every miss (read and write) after
	// the statistics are counted. Observation only: it must not touch
	// the cache. nil costs one never-taken branch per miss.
	OnMiss func(write bool, va uint32, z word.Zone)
}

// DataWords is the data cache capacity.
const DataWords = 8 * 1024

const sectionWords = 1024

// NewData creates the data cache.
func NewData(back Backing, split bool) *Data {
	return &Data{split: split, back: back}
}

func (c *Data) index(va uint32, z word.Zone) uint32 {
	if c.split {
		return uint32(z&7)*sectionWords + va%sectionWords
	}
	return va % DataWords
}

// ReadFast is the inlinable hit path of Read: on a tag match it
// counts the read and returns the word at zero cost, exactly as Read
// would. On a miss it counts nothing and returns false — the caller
// takes the full Read, which recounts the access and runs the fill
// machinery. Statistics are therefore identical whichever path a
// caller composes.
func (c *Data) ReadFast(va uint32, z word.Zone) (word.Word, bool) {
	ln := &c.lines[c.index(va, z)]
	if ln.valid && ln.va == va && ln.zone == z {
		c.stats.Reads++
		return ln.data, true
	}
	return 0, false
}

// WriteFast is the inlinable hit path of Write: tag match, count,
// store, mark dirty, zero cost. A miss counts nothing; the caller's
// full Write recounts and allocates the line.
func (c *Data) WriteFast(va uint32, z word.Zone, w word.Word) bool {
	ln := &c.lines[c.index(va, z)]
	if ln.valid && ln.va == va && ln.zone == z {
		c.stats.Writes++
		ln.data = w
		ln.dirty = true
		return true
	}
	return false
}

// Read returns the word at virtual address va (zone z), the cost in
// cycles beyond the single-cycle hit, and any translation error.
func (c *Data) Read(va uint32, z word.Zone) (word.Word, int, error) {
	c.stats.Reads++
	ln := &c.lines[c.index(va, z)]
	if ln.valid && ln.va == va && ln.zone == z {
		return ln.data, 0, nil
	}
	c.stats.ReadMiss++
	if c.OnMiss != nil {
		c.OnMiss(false, va, z)
	}
	cost, err := c.fill(ln, va, z)
	if err != nil {
		return 0, cost, err
	}
	return ln.data, cost, nil
}

// Write stores w at va. The cache is copy-back: data reaches memory
// only when the line is evicted.
func (c *Data) Write(va uint32, z word.Zone, w word.Word) (int, error) {
	c.stats.Writes++
	ln := &c.lines[c.index(va, z)]
	cost := 0
	if !(ln.valid && ln.va == va && ln.zone == z) {
		c.stats.WriteMiss++
		if c.OnMiss != nil {
			c.OnMiss(true, va, z)
		}
		// Allocate on write; no fetch needed for a full-word write
		// with line size one, but a dirty victim must go to memory.
		ev, err := c.evict(ln)
		cost += ev
		if err != nil {
			return cost, err
		}
		ln.valid = true
		ln.va = va
		ln.zone = z
	}
	ln.data = w
	ln.dirty = true
	return cost, nil
}

func (c *Data) fill(ln *line, va uint32, z word.Zone) (int, error) {
	cost, err := c.evict(ln)
	if err != nil {
		return cost, err
	}
	w, rc, err := c.back.Read(va)
	cost += rc
	if err != nil {
		return cost, err
	}
	*ln = line{valid: true, va: va, zone: z, data: w}
	return cost, nil
}

// WritebackCycles is the cycle cost charged for evicting a dirty
// line. The store-in design drains evictions through a write buffer
// in memory page mode, so the processor only stalls one cycle to hand
// the word over; the DRAM traffic itself is overlapped.
const WritebackCycles = 1

func (c *Data) evict(ln *line) (int, error) {
	if ln.valid && ln.dirty {
		c.stats.WriteBacks++
		if _, err := c.back.Write(ln.va, ln.data); err != nil {
			return WritebackCycles, err
		}
		ln.dirty = false
		return WritebackCycles, nil
	}
	return 0, nil
}

// Flush writes every dirty line back to memory (used when handing
// pages to the code space and at end of run for verification).
func (c *Data) Flush() (int, error) {
	total := 0
	for i := range c.lines {
		cost, err := c.evict(&c.lines[i])
		total += cost
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Invalidate drops every line (context switches would need this; the
// single-task design never does, but the memory-management tests do).
func (c *Data) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Stats returns a copy of the counters.
func (c *Data) Stats() Stats { return c.stats }

// Peek returns the cached word at va without statistics or refill;
// ok=false when the line is absent (read memory instead).
func (c *Data) Peek(va uint32, z word.Zone) (word.Word, bool) {
	ln := &c.lines[c.index(va, z)]
	if ln.valid && ln.va == va && ln.zone == z {
		return ln.data, true
	}
	return 0, false
}

// Code is the 8K-word write-through instruction cache. On a miss the
// fill uses the memory page mode to prefetch the next sequential
// words, which favours straight-line code.
type Code struct {
	// Fixed-size array for the same bounds-check-free hit path as
	// Data.lines; Touch runs it once per fetched code word.
	lines    [CodeWords]line
	back     Backing
	prefetch int
	stats    Stats

	// OnMiss, when non-nil, observes every read miss after the
	// statistics are counted (Touch misses route through Read and are
	// covered; NoteReads counts guaranteed hits, so it never misses).
	// Observation only: it must not touch the cache.
	OnMiss func(va uint32)
}

// CodeWords is the code cache capacity.
const CodeWords = 8 * 1024

// NewCode creates the code cache; prefetch is the number of
// sequential words fetched ahead on a miss (0 disables).
func NewCode(back Backing, prefetch int) *Code {
	return &Code{back: back, prefetch: prefetch}
}

// Read fetches a code word.
func (c *Code) Read(va uint32) (word.Word, int, error) {
	c.stats.Reads++
	ln := &c.lines[va%CodeWords]
	if ln.valid && ln.va == va {
		return ln.data, 0, nil
	}
	c.stats.ReadMiss++
	if c.OnMiss != nil {
		c.OnMiss(va)
	}
	w, cost, err := c.back.Read(va)
	if err != nil {
		return 0, cost, err
	}
	*ln = line{valid: true, va: va, data: w}
	// Page-mode prefetch of the following words.
	for i := 1; i <= c.prefetch; i++ {
		pv := va + uint32(i)
		pl := &c.lines[pv%CodeWords]
		if pl.valid && pl.va == pv {
			continue
		}
		pw, pc, err := c.back.Read(pv)
		if err != nil {
			break // prefetch beyond the image is harmless
		}
		cost += pc
		*pl = line{valid: true, va: pv, data: pw}
	}
	return w, cost, nil
}

// Touch performs n sequential reads starting at va and returns the
// summed cost. It is the fetch-replay path of the predecoded
// instruction cache: accounting is identical to n successive Read
// calls (hits count a read at zero cost; a miss takes the full
// fill-and-prefetch path), only the per-word call overhead is gone.
// allHit reports whether every word was already resident — callers
// with a residency guarantee (code image no larger than the cache, so
// no conflict can ever evict a filled line) may then replace future
// replays with NoteReads.
func (c *Code) Touch(va uint32, n int) (cost int, allHit bool, err error) {
	allHit = true
	for i := 0; i < n; i++ {
		a := va + uint32(i)
		ln := &c.lines[a%CodeWords]
		if ln.valid && ln.va == a {
			c.stats.Reads++
			continue
		}
		allHit = false
		_, rc, err := c.Read(a)
		cost += rc
		if err != nil {
			return cost, false, err
		}
	}
	return cost, allHit, nil
}

// NoteReads counts n reads that are guaranteed hits: the statistics
// effect of a hit is Reads++ at zero cost with no line-state change,
// so this is exactly Touch over n resident words minus the per-word
// tag checks.
func (c *Code) NoteReads(n int) { c.stats.Reads += uint64(n) }

// Write stores through to memory and updates the cache (incremental
// compilation writes directly into code space).
func (c *Code) Write(va uint32, w word.Word) (int, error) {
	c.stats.Writes++
	cost, err := c.back.Write(va, w)
	if err != nil {
		return cost, err
	}
	ln := &c.lines[va%CodeWords]
	*ln = line{valid: true, va: va, data: w}
	return cost, nil
}

// Stats returns a copy of the counters.
func (c *Code) Stats() Stats { return c.stats }

// ResetStats clears the counters of the data cache (contents stay).
func (c *Data) ResetStats() { c.stats = Stats{} }

// ResetStats clears the counters of the code cache (contents stay).
func (c *Code) ResetStats() { c.stats = Stats{} }

// InvalidateRange drops every code-cache line whose address falls in
// [start, end). The untimed dynamic-database load path writes physical
// memory directly instead of storing through the cache, so the lines
// it bypassed must be refetched; everything outside the range keeps
// its residency.
func (c *Code) InvalidateRange(start, end uint32) {
	if end <= start {
		return
	}
	if end-start < CodeWords {
		for a := start; a < end; a++ {
			ln := &c.lines[a%CodeWords]
			if ln.valid && ln.va == a {
				*ln = line{}
			}
		}
		return
	}
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.va >= start && ln.va < end {
			*ln = line{}
		}
	}
}

// InvalidateRange drops every data-cache line whose address falls in
// [start, end) of the given zone, discarding dirty contents: used when
// a data page is handed over to the code space (the staged copy has
// already been flushed).
func (c *Data) InvalidateRange(z word.Zone, start, end uint32) {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.zone == z && ln.va >= start && ln.va < end {
			*ln = line{}
		}
	}
}

// LineState is one valid cache line, for serialization. Residency is
// machine-visible state: which lines are valid (and, for the copy-back
// data cache, which are dirty) decides the miss and writeback pattern
// of every subsequent access, so a byte-identical continuation must
// carry it across.
type LineState struct {
	VA    uint32
	Zone  word.Zone // data cache only; zero for code lines
	Data  word.Word
	Dirty bool // data cache only; the code cache is write-through
}

// ExportLines returns the valid lines of the data cache in index
// order.
func (c *Data) ExportLines() []LineState {
	var ls []LineState
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid {
			ls = append(ls, LineState{VA: ln.va, Zone: ln.zone, Data: ln.data, Dirty: ln.dirty})
		}
	}
	return ls
}

// ImportLines replaces the data cache contents wholesale: every line
// not listed becomes invalid, each listed line lands at the index its
// address maps to (later duplicates overwrite earlier ones, matching
// what live traffic would have left).
func (c *Data) ImportLines(ls []LineState) {
	clear(c.lines[:]) // memclr; the per-index loop costs ~20x more
	for _, s := range ls {
		c.lines[c.index(s.VA, s.Zone)] = line{valid: true, dirty: s.Dirty, va: s.VA, zone: s.Zone, data: s.Data}
	}
}

// SetStats replaces the data-cache counters wholesale (snapshot
// restore).
func (c *Data) SetStats(s Stats) { c.stats = s }

// ExportLines returns the valid lines of the code cache in index
// order.
func (c *Code) ExportLines() []LineState {
	var ls []LineState
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid {
			ls = append(ls, LineState{VA: ln.va, Data: ln.data})
		}
	}
	return ls
}

// ImportLines replaces the code cache contents wholesale.
func (c *Code) ImportLines(ls []LineState) {
	clear(c.lines[:]) // memclr; the per-index loop costs ~20x more
	for _, s := range ls {
		c.lines[s.VA%CodeWords] = line{valid: true, va: s.VA, data: s.Data}
	}
}

// SetStats replaces the code-cache counters wholesale (snapshot
// restore).
func (c *Code) SetStats(s Stats) { c.stats = s }
