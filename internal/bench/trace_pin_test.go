package bench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// TestCyclePinTraced is the cycle-conservation property test of the
// observability layer, over every program in the benchmark suite:
//
//  1. Enabling tracing perturbs nothing — a fully-hooked warm run
//     produces exactly the pinned fingerprint of the untraced run
//     (cycles, inferences, cache statistics byte-identical).
//  2. Attribution is conservative — the profiler's per-predicate
//     cycles (including the boot/redo/fault buckets) sum *exactly*
//     to the machine's total cycle counter, with no cycle lost or
//     double-counted.
func TestCyclePinTraced(t *testing.T) {
	for _, p := range Suite {
		prof := trace.NewProfiler()
		// A ring sink rides along so the event stream itself is also
		// exercised (fan-out through Tee, every kind constructed).
		ring := trace.NewRing(256)
		r, err := RunKCMWarm(p, false, machine.Config{Hook: trace.Tee(prof, ring)})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := fingerprint(r)
		want, ok := pinnedWarm[p.Name]
		if !ok {
			t.Errorf("%s: no pinned fingerprint (got %q)", p.Name, got)
			continue
		}
		if got != want {
			t.Errorf("%s: tracing perturbed the simulation:\n got  %s\n want %s", p.Name, got, want)
		}
		if total := prof.Total(); total != r.Stats.Cycles {
			t.Errorf("%s: profiler total %d != machine cycles %d (leak of %d)",
				p.Name, total, r.Stats.Cycles, int64(r.Stats.Cycles)-int64(total))
		}
		if ring.Seen() == 0 {
			t.Errorf("%s: no events reached the ring sink", p.Name)
		}
		// The folded stacks must account for every instruction cycle:
		// total minus the non-instruction buckets (boot; redo and fault
		// never fire in a straight benchmark run) and system-owned
		// instructions.
		var rowsSelf, foldedSum uint64
		for _, row := range prof.Rows() {
			if row.Name != trace.BootName && row.Name != trace.RedoName &&
				row.Name != trace.FaultName && row.Name != trace.GCName {
				rowsSelf += row.Self
			}
		}
		for _, c := range prof.FoldedMap() {
			foldedSum += c
		}
		if rowsSelf != foldedSum {
			t.Errorf("%s: folded stacks sum %d != instruction cycles %d", p.Name, foldedSum, rowsSelf)
		}
	}
}

// TestTracedColdParity pins the cold path too: the same machine run
// cold with and without a hook must agree on every counter (the warm
// pin above only covers the post-ResetStats run).
func TestTracedColdParity(t *testing.T) {
	for _, name := range []string{"nrev1", "queens"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("%s: unknown program", name)
		}
		plain, err := RunKCM(p, false, machine.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prof := trace.NewProfiler()
		traced, err := RunKCM(p, false, machine.Config{Hook: prof})
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if a, b := fingerprint(plain), fingerprint(traced); a != b {
			t.Errorf("%s: cold traced run diverged:\n plain  %s\n traced %s", name, a, b)
		}
		if prof.Total() != traced.Stats.Cycles {
			t.Errorf("%s: cold profiler total %d != cycles %d", name, prof.Total(), traced.Stats.Cycles)
		}
	}
}
