package bench

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestSuiteRuns executes every benchmark in both variants and checks
// success plus basic sanity of the counters.
func TestSuiteRuns(t *testing.T) {
	for _, p := range Suite {
		for _, pure := range []bool{false, true} {
			name := p.Name
			if pure {
				name += "*"
			}
			t.Run(name, func(t *testing.T) {
				r, err := RunKCM(p, pure, machine.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if !r.Success {
					t.Fatalf("%s failed", name)
				}
				if r.Stats.Inferences == 0 {
					t.Fatal("no inferences counted")
				}
				if r.Stats.Cycles == 0 {
					t.Fatal("no cycles counted")
				}
				t.Logf("%-10s inf=%6d paper=%6d cycles=%8d ms=%.3f Klips=%.0f",
					name, r.Stats.Inferences, paperInf(p, pure),
					r.Stats.Cycles, r.Millis(), r.Klips())
			})
		}
	}
}

func paperInf(p Program, pure bool) int {
	if pure {
		return p.PaperInferencesPure
	}
	return p.PaperInferences
}

// TestKnownOutputs checks programs whose printed output is known.
func TestKnownOutputs(t *testing.T) {
	cases := map[string]string{
		"nrev1": "[30,29,28,27,26,25,24,23,22,21,20,19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1]\n",
		"pri2":  "[2,3,5,7,11,13,17,19,23,29,31,37,41,43,47,53,59,61,67,71,73,79,83,89,97]\n",
		"con1":  "[a,b,c|_G",
	}
	for name, want := range cases {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("no benchmark %s", name)
		}
		r, err := RunKCM(p, false, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(r.Output, want) {
			t.Errorf("%s output = %q, want prefix %q", name, r.Output, want)
		}
	}
}

// TestQueensSolution verifies the queens benchmark finds a valid
// placement.
func TestQueensSolution(t *testing.T) {
	p, _ := ByName("queens")
	r, err := RunKCM(p, false, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("queens failed")
	}
	if !strings.Contains(r.Output, "[") {
		t.Fatalf("no solution printed: %q", r.Output)
	}
	t.Logf("queens(5) = %s", strings.TrimSpace(r.Output))
}
