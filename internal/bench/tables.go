package bench

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/plm"
	"repro/internal/quintus"
	"repro/internal/spur"
)

// ---------------- Table 1: static code size ----------------

// Table1Row compares static code size across PLM, SPUR and KCM for
// one benchmark program (runtime library excluded, as in the paper).
type Table1Row struct {
	Program   string
	PLMInstr  int
	PLMBytes  int
	SPURInstr int
	SPURBytes int
	KCMInstr  int
	KCMWords  int
	KCMBytes  int
}

// KCMvsPLMInstr is the KCM/PLM instruction ratio.
func (r Table1Row) KCMvsPLMInstr() float64 { return float64(r.KCMInstr) / float64(r.PLMInstr) }

// KCMvsPLMBytes is the KCM/PLM byte ratio.
func (r Table1Row) KCMvsPLMBytes() float64 { return float64(r.KCMBytes) / float64(r.PLMBytes) }

// SPURvsKCMInstr is the SPUR/KCM instruction ratio.
func (r Table1Row) SPURvsKCMInstr() float64 { return float64(r.SPURInstr) / float64(r.KCMInstr) }

// SPURvsKCMBytes is the SPUR/KCM byte ratio.
func (r Table1Row) SPURvsKCMBytes() float64 { return float64(r.SPURBytes) / float64(r.KCMBytes) }

// Table1 compiles every benchmark and measures its static size under
// the three encodings.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range Suite {
		prog, err := core.Load(p.Source)
		if err != nil {
			return nil, err
		}
		c := compiler.New(prog.Syms())
		mod, err := c.CompileProgram(prog.Clauses())
		if err != nil {
			return nil, err
		}
		im, err := asm.Link(mod)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Program: p.Name}
		for _, pi := range mod.Order {
			st := im.Stats[pi]
			row.KCMInstr += st.Instrs
			row.KCMWords += st.Words
			ps := plm.PredSize(mod.Preds[pi].Code)
			row.PLMInstr += ps.Instrs
			row.PLMBytes += ps.Bytes
			ss := spur.PredSize(mod.Preds[pi].Code)
			row.SPURInstr += ss.Instrs
			row.SPURBytes += ss.Bytes
		}
		row.KCMBytes = row.KCMWords * 8
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------- Tables 2 and 3: execution time ----------------

// TimeRow compares KCM against one baseline on one program.
type TimeRow struct {
	Program       string
	Inferences    uint64
	BaseMs        float64 // baseline (PLM or QUINTUS)
	BaseKlips     float64
	KCMMs         float64
	KCMKlips      float64
	PaperRatio    float64 // the paper's reported ms ratio (0 if absent)
	PaperKCMKlips float64
}

// Ratio is baseline ms / KCM ms.
func (r TimeRow) Ratio() float64 { return r.BaseMs / r.KCMMs }

// Table2 runs the suite on KCM and on the PLM cost model (Table 2
// protocol: I/O compiled as cheap unit clauses, integer arithmetic,
// warm caches / best-of-several-runs).
func Table2() ([]TimeRow, error) {
	var rows []TimeRow
	for _, p := range Suite {
		k, err := RunKCMWarm(p, false, machine.Config{})
		if err != nil {
			return nil, err
		}
		b, err := RunKCMWarm(p, false, plm.Config())
		if err != nil {
			return nil, err
		}
		paperRatio := 0.0
		if p.PaperKCMms > 0 {
			paperRatio = p.PaperPLMms / p.PaperKCMms
		}
		rows = append(rows, TimeRow{
			Program:    p.Name,
			Inferences: k.Stats.Inferences,
			BaseMs:     b.Stats.Millis(),
			BaseKlips:  b.Stats.Klips(),
			KCMMs:      k.Stats.Millis(),
			KCMKlips:   k.Stats.Klips(),
			PaperRatio: paperRatio,
		})
	}
	return rows, nil
}

// Table3 runs the I/O-stripped suite on KCM and on the QUINTUS/SUN3
// cost model. Programs the paper judged too small for a meaningful
// QUINTUS timing carry PaperRatio 0 but are still measured.
func Table3() ([]TimeRow, error) {
	var rows []TimeRow
	for _, p := range Suite {
		k, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			return nil, err
		}
		b, err := RunKCMWarm(p, true, quintus.Config())
		if err != nil {
			return nil, err
		}
		paperRatio := 0.0
		if p.PaperQms > 0 && p.PaperKCMmsPure > 0 {
			paperRatio = p.PaperQms / p.PaperKCMmsPure
		}
		rows = append(rows, TimeRow{
			Program:    p.Name,
			Inferences: k.Stats.Inferences,
			BaseMs:     b.Stats.Millis(),
			BaseKlips:  b.Stats.Klips(),
			KCMMs:      k.Stats.Millis(),
			KCMKlips:   k.Stats.Klips(),
			PaperRatio: paperRatio,
		})
	}
	return rows, nil
}

// ---------------- Table 4: peak performance ----------------

// Table4Row is one machine in the peak-Klips comparison. Literature
// machines carry the figures quoted by the paper; the KCM row is
// measured on the simulator.
type Table4Row struct {
	Machine  string
	By       string
	ConKlips float64 // con1-like: one concatenation step
	RevKlips float64 // nrev1-like
	WordBits int
	Comment  string
	Measured bool
}

// Table4 measures KCM peak rates and lists the dedicated-machine
// figures the paper compares against.
func Table4() ([]Table4Row, error) {
	conKlips, err := peakConcatKlips()
	if err != nil {
		return nil, err
	}
	nrevKlips, err := peakNrevKlips()
	if err != nil {
		return nil, err
	}
	return []Table4Row{
		{Machine: "CHI-II", By: "NEC C&C", ConKlips: 490, RevKlips: 0, WordBits: 40, Comment: "Back-end - multi-processing"},
		{Machine: "DLM-1", By: "BAe", ConKlips: 800, RevKlips: 0, WordBits: 38, Comment: "Back-end - physical memory"},
		{Machine: "IPP", By: "Hitachi", ConKlips: 1360, RevKlips: 1197, WordBits: 32, Comment: "Integrated in super-mini (ECL)"},
		{Machine: "AIP", By: "Toshiba", ConKlips: 0, RevKlips: 620, WordBits: 32, Comment: "Back-end"},
		{Machine: "KCM", By: "ECRC", ConKlips: conKlips, RevKlips: nrevKlips, WordBits: 64, Comment: "Back-end", Measured: true},
		{Machine: "PSI-II", By: "ICOT", ConKlips: 400, RevKlips: 320, WordBits: 40, Comment: "Stand-alone - multi-processing"},
		{Machine: "X-1", By: "Xenologic", ConKlips: 400, RevKlips: 0, WordBits: 32, Comment: "SUN co-processor"},
	}, nil
}

// peakConcatKlips measures the steady-state concatenation rate: the
// marginal cost of one more concat step with warm, capacity-fitting
// caches (the paper's "one concatenation step is 15 cycles" method).
func peakConcatKlips() (float64, error) {
	const n = 100
	src := appendLib + "\nmklist(0, []).\nmklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n"
	run := func(apps string) (uint64, error) {
		p := Program{Name: "concat", Source: src,
			PureQuery: "mklist(100, L)" + apps + "."}
		r, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			return 0, err
		}
		return r.Stats.Cycles, nil
	}
	one, err := run(", app(L, [x], _)")
	if err != nil {
		return 0, err
	}
	three, err := run(", app(L, [x], _), app(L, [x], _), app(L, [x], _)")
	if err != nil {
		return 0, err
	}
	cyc := float64(three-one) / float64(2*(n+1))
	return 1e6 / (cyc * 0.080) / 1000, nil // steps/s in K at 80 ns
}

// peakNrevKlips measures the nrev1-like rate: marginal Klips of naive
// reversal at a cache-friendly size.
func peakNrevKlips() (float64, error) {
	run := func(reps int) (uint64, uint64, error) {
		goal := "list20(L)"
		for i := 0; i < reps; i++ {
			goal += ", nrev(L, _)"
		}
		p := Program{Name: "nrevpeak", Source: nrevLib +
			"\nlist20([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]).\n",
			PureQuery: goal + "."}
		r, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			return 0, 0, err
		}
		return r.Stats.Cycles, r.Stats.Inferences, nil
	}
	c1, i1, err := run(1)
	if err != nil {
		return 0, err
	}
	c3, i3, err := run(3)
	if err != nil {
		return 0, err
	}
	sec := float64(c3-c1) * 80e-9
	return float64(i3-i1) / sec / 1000, nil
}

// ---------------- rendering ----------------

// RenderTable1 formats Table 1 like the paper.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %7s %7s %6s %6s %6s %8s %8s %9s %9s\n",
		"Program", "PLM.I", "PLM.B", "SPUR.I", "SPUR.B", "KCM.I", "KCM.W", "KCM.B",
		"K/P.I", "K/P.B", "S/K.I", "S/K.B")
	var sI, sB, kI, kB float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %6d %7d %7d %6d %6d %6d %8.2f %8.2f %9.2f %9.2f\n",
			r.Program, r.PLMInstr, r.PLMBytes, r.SPURInstr, r.SPURBytes,
			r.KCMInstr, r.KCMWords, r.KCMBytes,
			r.KCMvsPLMInstr(), r.KCMvsPLMBytes(), r.SPURvsKCMInstr(), r.SPURvsKCMBytes())
		kI += r.KCMvsPLMInstr()
		kB += r.KCMvsPLMBytes()
		sI += r.SPURvsKCMInstr()
		sB += r.SPURvsKCMBytes()
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-10s %6s %6s %7s %7s %6s %6s %6s %8.2f %8.2f %9.2f %9.2f\n",
		"average", "", "", "", "", "", "", "", kI/n, kB/n, sI/n, sB/n)
	return b.String()
}

// RenderTimeTable formats Tables 2 and 3.
func RenderTimeTable(rows []TimeRow, baseName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %9s %7s %9s %7s %8s %8s\n",
		"Program", "Inferences", baseName+".ms", "Klips", "KCM.ms", "Klips", "ratio", "paper")
	var sum, psum float64
	var np int
	for _, r := range rows {
		paper := ""
		if r.PaperRatio > 0 {
			paper = fmt.Sprintf("%8.2f", r.PaperRatio)
			psum += r.PaperRatio
			np++
		}
		fmt.Fprintf(&b, "%-10s %10d %9.3f %7.0f %9.3f %7.0f %8.2f %s\n",
			r.Program, r.Inferences, r.BaseMs, r.BaseKlips, r.KCMMs, r.KCMKlips,
			r.Ratio(), paper)
		sum += r.Ratio()
	}
	fmt.Fprintf(&b, "%-10s %10s %9s %7s %9s %7s %8.2f",
		"average", "", "", "", "", "", sum/float64(len(rows)))
	if np > 0 {
		fmt.Fprintf(&b, " %8.2f", psum/float64(np))
	}
	b.WriteString("\n")
	return b.String()
}

// RenderTable4 formats the peak comparison.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %12s %6s  %s\n", "Machine", "By", "Klips", "Word", "Comment")
	for _, r := range rows {
		con := "?"
		if r.ConKlips > 0 {
			con = fmt.Sprintf("%.0f", r.ConKlips)
		}
		rev := "?"
		if r.RevKlips > 0 {
			rev = fmt.Sprintf("%.0f", r.RevKlips)
		}
		tag := ""
		if r.Measured {
			tag = " (measured)"
		}
		fmt.Fprintf(&b, "%-8s %-10s %5s - %5s %5d  %s%s\n",
			r.Machine, r.By, con, rev, r.WordBits, r.Comment, tag)
	}
	return b.String()
}
