package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/machine"
)

var updateFacts = flag.Bool("update", false, "rewrite the golden facts tables")

// suiteFacts compiles one benchmark (Table 2 variant) and runs the
// whole-image analyzer over its linked image.
func suiteFacts(t *testing.T, p Program) *analysis.ImageFacts {
	t.Helper()
	im, err := Compile(p, false)
	if err != nil {
		t.Fatal(err)
	}
	f := analysis.AnalyzeImage(im.Code, 0, im.Entries, nil)
	if len(f.Diags) != 0 {
		t.Fatalf("%s: partition diags: %v", p.Name, f.Diags)
	}
	return f
}

// TestFactsGolden pins the analyzer's whole output for every suite
// program: entry modes, determinism classes, dead-code reports and
// fusion licenses. Run with -update to rewrite the tables after an
// intentional analyzer change.
func TestFactsGolden(t *testing.T) {
	for _, p := range Suite {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			flat := suiteFacts(t, p).Flat()
			golden := filepath.Join("testdata", p.Name+".facts.golden")
			if *updateFacts {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(flat), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(want) != flat {
				t.Errorf("facts drifted from %s:\n--- got\n%s--- want\n%s",
					golden, flat, want)
			}
		})
	}
}

// TestFactsCoverage asserts the tentpole acceptance property directly:
// every reachable predicate of every suite image carries an entry mode
// vector of its full arity and a definite determinism class.
func TestFactsCoverage(t *testing.T) {
	for _, p := range Suite {
		f := suiteFacts(t, p)
		for _, pf := range f.Preds {
			if !pf.Reachable {
				continue
			}
			if len(pf.Mode) != pf.PI().Arity {
				t.Errorf("%s: %s mode arity %d, want %d",
					p.Name, pf.Name, len(pf.Mode), pf.PI().Arity)
			}
			if pf.Det == analysis.DetUnknown {
				t.Errorf("%s: %s has no determinism class", p.Name, pf.Name)
			}
		}
	}
}

// TestFactsLicenses re-derives every fusion license of every suite
// image from the code words alone.
func TestFactsLicenses(t *testing.T) {
	total := 0
	for _, p := range Suite {
		im, err := Compile(p, false)
		if err != nil {
			t.Fatal(err)
		}
		f := analysis.AnalyzeImage(im.Code, 0, im.Entries, nil)
		if ds := analysis.CheckLicenses(f, im.Code, 0); len(ds) != 0 {
			t.Errorf("%s: %v", p.Name, ds)
		}
		for _, pf := range f.Preds {
			total += len(pf.Licenses)
		}
	}
	if total == 0 {
		t.Fatal("no fusion licenses across the whole suite: collector is dead")
	}
	t.Logf("%d licenses across the suite, all machine-checked", total)
}

// TestDetOracle holds the analyzer to its determinism claims on real
// executions: every suite program runs under a trace hook asserting
// that no choice-point restore ever resumes inside a predicate
// classified Det. A run that saw zero restores proves nothing, so the
// suite-wide restore count must be positive.
func TestDetOracle(t *testing.T) {
	var restores uint64
	for _, p := range Suite {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, err := Compile(p, false)
			if err != nil {
				t.Fatal(err)
			}
			f := analysis.AnalyzeImage(im.Code, 0, im.Entries, nil)
			oracle := analysis.NewOracle(f)
			m, err := machine.New(im, machine.Config{Hook: oracle})
			if err != nil {
				t.Fatal(err)
			}
			entry, ok := im.Entry(compiler.QueryPI)
			if !ok {
				t.Fatal("no query entry")
			}
			if _, err := m.Run(entry); err != nil {
				t.Fatal(err)
			}
			for _, v := range oracle.Violations() {
				t.Errorf("%s: %v", p.Name, v)
			}
			restores += oracle.Restores()
		})
	}
	if restores == 0 {
		t.Fatal("suite produced no cp_restore events: the oracle observed nothing")
	}
	t.Logf("oracle examined %d restores, no Det claim contradicted", restores)
}
