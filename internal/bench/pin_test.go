package bench

import (
	"fmt"
	"testing"

	"repro/internal/machine"
)

// fingerprint condenses the counters the kcmbench tables are built
// from: warm-run cycles, inferences, and both caches' read/miss
// counts. Any drift in the simulated cost model shows up here.
func fingerprint(r RunResult) string {
	return fmt.Sprintf("cycles=%d inf=%d dc=%d/%d+%d/%d cc=%d/%d",
		r.Stats.Cycles, r.Stats.Inferences,
		r.Result.DCache.Reads, r.Result.DCache.ReadMiss,
		r.Result.DCache.Writes, r.Result.DCache.WriteMiss,
		r.Result.CCache.Reads, r.Result.CCache.ReadMiss)
}

// pinnedWarm is the expected warm-run fingerprint of every suite
// program on the default configuration, captured from the current
// tree. The session-engine refactor (resumable RunFor, machine
// pooling) must keep these byte-identical. If a change legitimately
// alters the cost model, rerun the test: the failure message prints
// each program's new fingerprint to paste here.
var pinnedWarm = map[string]string{
	"con1":     "cycles=94 inf=6 dc=12/0+30/0 cc=59/0",
	"con6":     "cycles=743 inf=43 dc=123/0+213/0 cc=581/0",
	"divide10": "cycles=856 inf=21 dc=184/0+303/0 cc=621/0",
	"hanoi":    "cycles=28388 inf=1787 dc=3827/1+6145/4872 cc=12259/0",
	"log10":    "cycles=336 inf=13 dc=64/0+85/0 cc=358/0",
	"mutest":   "cycles=42108 inf=1214 dc=13587/0+8283/0 cc=17006/0",
	"nrev1":    "cycles=7775 inf=499 dc=1579/0+1651/0 cc=6140/0",
	"ops8":     "cycles=501 inf=19 dc=108/0+142/0 cc=397/0",
	"palin25":  "cycles=5556 inf=355 dc=1155/0+1117/0 cc=4373/0",
	"pri2":     "cycles=47278 inf=1163 dc=3218/0+1996/0 cc=8833/0",
	"qs4":      "cycles=11114 inf=604 dc=2317/0+2204/0 cc=6928/0",
	"queens":   "cycles=17145 inf=944 dc=3762/0+3624/0 cc=6375/0",
	"query":    "cycles=142826 inf=2884 dc=18667/0+9409/0 cc=53113/0",
	"times10":  "cycles=730 inf=21 dc=166/0+231/0 cc=567/0",
}

// TestCyclePin asserts that every suite program's warm-run cycle
// count and cache statistics match the pinned values.
func TestCyclePin(t *testing.T) {
	for _, p := range Suite {
		r, err := RunKCMWarm(p, false, machine.Config{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := fingerprint(r)
		want, ok := pinnedWarm[p.Name]
		if !ok {
			t.Errorf("%s: no pinned fingerprint (got %q)", p.Name, got)
			continue
		}
		if got != want {
			t.Errorf("%s: counters drifted:\n got  %s\n want %s", p.Name, got, want)
		}
	}
}
