package bench

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// ---------------- cache-collision study (section 3.2.4) ----------------

// CacheRow is one configuration of the direct-mapped-cache study: the
// paper ran small programs with stack tops initialised to distinct
// cache locations and then to the same cache cell, observing the hit
// ratio collapse; KCM's zone-split cache makes collisions impossible.
type CacheRow struct {
	Config   string
	HitRatio float64
	Reads    uint64
	Writes   uint64
	Misses   uint64
}

// CacheStudy reproduces the experiment on a workload that keeps all
// four stacks active (queens: environments, choice points, trail and
// heap all grow and shrink).
func CacheStudy() ([]CacheRow, error) {
	p, _ := ByName("queens")
	run := func(name string, cfg machine.Config) (CacheRow, error) {
		r, err := RunKCM(p, true, cfg)
		if err != nil {
			return CacheRow{}, err
		}
		d := r.Result.DCache
		return CacheRow{
			Config:   name,
			HitRatio: d.HitRatio(),
			Reads:    d.Reads,
			Writes:   d.Writes,
			Misses:   d.ReadMiss + d.WriteMiss,
		}, nil
	}
	var rows []CacheRow
	// (a) plain direct-mapped cache, stack bases on distinct cache
	// indices (the paper's first initialisation).
	apart, err := run("unified, stacks apart", machine.Config{
		SplitDataCache: machine.Off,
		GlobalBase:     0x0010000, GlobalSize: 0x0200000,
		LocalBase: 0x0400800, LocalSize: 0x0100000,
		ChoiceBase: 0x0801000, ChoiceSize: 0x0080000,
		TrailBase: 0x0C01800, TrailSize: 0x0080000,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, apart)
	// (b) plain direct-mapped cache, every stack base on the same
	// cache index (the paper's second initialisation).
	collide, err := run("unified, stacks colliding", machine.Config{
		SplitDataCache: machine.Off,
		GlobalBase:     0x0010000, GlobalSize: 0x0200000,
		LocalBase: 0x0400000, LocalSize: 0x0100000,
		ChoiceBase: 0x0800000, ChoiceSize: 0x0080000,
		TrailBase: 0x0C00000, TrailSize: 0x0080000,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, collide)
	// (c) the KCM answer: 8 zone-selected sections, collisions
	// impossible even with identical base offsets.
	split, err := run("KCM 8-section split", machine.Config{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, split)
	return rows, nil
}

// RenderCacheStudy formats the study.
func RenderCacheStudy(rows []CacheRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %9s %9s %9s %9s\n", "Configuration", "hit-ratio", "reads", "writes", "misses")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8.2f%% %9d %9d %9d\n",
			r.Config, r.HitRatio*100, r.Reads, r.Writes, r.Misses)
	}
	return b.String()
}

// ---------------- shallow-backtracking ablation ----------------

// ShallowRow compares one benchmark with delayed choice-point
// creation (KCM) against eager standard-WAM choice points.
type ShallowRow struct {
	Program        string
	ShallowCycles  uint64
	EagerCycles    uint64
	ShallowCPs     uint64 // choice points actually materialised
	EagerCPs       uint64
	ShallowCPWords uint64
	EagerCPWords   uint64
	EagerDataRefs  uint64 // total data-cache accesses in eager mode
}

// Speedup is eager/shallow cycle ratio.
func (r ShallowRow) Speedup() float64 { return float64(r.EagerCycles) / float64(r.ShallowCycles) }

// CPTrafficShare is the fraction of data references spent saving and
// restoring choice points in eager mode (the paper cites ~50% for the
// standard WAM, after Tick).
func (r ShallowRow) CPTrafficShare() float64 {
	if r.EagerDataRefs == 0 {
		return 0
	}
	return float64(2*r.EagerCPWords) / float64(r.EagerDataRefs)
}

// AblationShallow runs the suite with and without shallow
// backtracking.
func AblationShallow() ([]ShallowRow, error) {
	var rows []ShallowRow
	for _, p := range Suite {
		s, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			return nil, err
		}
		e, err := RunKCMWarm(p, true, machine.Config{Shallow: machine.Off})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ShallowRow{
			Program:        p.Name,
			ShallowCycles:  s.Stats.Cycles,
			EagerCycles:    e.Stats.Cycles,
			ShallowCPs:     s.Stats.ChoicePoints,
			EagerCPs:       e.Stats.ChoicePoints,
			ShallowCPWords: s.Stats.CPWords,
			EagerCPWords:   e.Stats.CPWords,
			EagerDataRefs:  e.Result.DCache.Reads + e.Result.DCache.Writes,
		})
	}
	return rows, nil
}

// RenderShallow formats the ablation.
func RenderShallow(rows []ShallowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %8s %8s %10s\n",
		"Program", "shal.cyc", "eager.cyc", "speedup", "shal.CP", "eager.CP", "CPtraffic")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %8.2f %8d %8d %9.1f%%\n",
			r.Program, r.ShallowCycles, r.EagerCycles, r.Speedup(),
			r.ShallowCPs, r.EagerCPs, r.CPTrafficShare()*100)
		sum += r.Speedup()
	}
	fmt.Fprintf(&b, "%-10s %10s %10s %8.2f\n", "average", "", "", sum/float64(len(rows)))
	return b.String()
}

// ---------------- hardware-unit ablations (section 5) ----------------

// UnitRow compares cycles with a hardware unit enabled vs disabled.
type UnitRow struct {
	Program  string
	Base     uint64
	Disabled uint64
}

// Slowdown is disabled/base.
func (r UnitRow) Slowdown() float64 { return float64(r.Disabled) / float64(r.Base) }

// AblationUnit measures the contribution of one hardware unit
// ("deref" or "trail") over the suite, the per-unit evaluation the
// paper schedules as future work (section 5).
func AblationUnit(unit string) ([]UnitRow, error) {
	var rows []UnitRow
	for _, p := range Suite {
		base, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			return nil, err
		}
		cfg := machine.Config{}
		switch unit {
		case "deref":
			cfg.HWDeref = machine.Off
		case "trail":
			cfg.HWTrail = machine.Off
		default:
			return nil, fmt.Errorf("unknown unit %q", unit)
		}
		dis, err := RunKCMWarm(p, true, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, UnitRow{Program: p.Name, Base: base.Stats.Cycles, Disabled: dis.Stats.Cycles})
	}
	return rows, nil
}

// RenderUnit formats a unit ablation.
func RenderUnit(rows []UnitRow, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %9s\n", "Program", "base.cyc", "no-"+unit, "slowdown")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %12d %9.3f\n", r.Program, r.Base, r.Disabled, r.Slowdown())
		sum += r.Slowdown()
	}
	fmt.Fprintf(&b, "%-10s %10s %12s %9.3f\n", "average", "", "", sum/float64(len(rows)))
	return b.String()
}
