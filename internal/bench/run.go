package bench

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
)

// RunResult is one benchmark execution on the KCM simulator.
type RunResult struct {
	Program string
	Pure    bool
	Success bool
	Stats   machine.Stats
	Result  machine.Result
	Output  string
}

// Millis is the simulated execution time in milliseconds.
func (r RunResult) Millis() float64 { return r.Stats.Millis() }

// Klips is the simulated inferencing rate.
func (r RunResult) Klips() float64 { return r.Stats.Klips() }

// Compile builds the linked image for one benchmark variant.
func Compile(p Program, pure bool) (*asm.Image, error) {
	prog, err := core.Load(p.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", p.Name, err)
	}
	q := p.Query
	if pure {
		q = p.PureQuery
	}
	return prog.CompileQuery(q)
}

// Fusion, when non-nil, overrides machine.Config.Fusion for every
// bench run that does not set the field itself. cmd/kcmbench -fuse=false
// points it at machine.Off for the A/B control: fusion is host-side
// translation only, so every simulated table must come out
// byte-identical either way (scripts/verify.sh holds the gate).
var Fusion *bool

func applyFusion(cfg machine.Config) machine.Config {
	if cfg.Fusion == nil {
		cfg.Fusion = Fusion
	}
	return cfg
}

// RunKCMWarm reproduces the paper's measurement protocol ("the best
// figure obtained on 4 successive runs"): one run warms the logical
// caches and the page tables, then the counters are reset and a
// second, warm run is timed.
func RunKCMWarm(p Program, pure bool, cfg machine.Config) (RunResult, error) {
	cfg = applyFusion(cfg)
	im, err := Compile(p, pure)
	if err != nil {
		return RunResult{}, err
	}
	var out strings.Builder
	if cfg.Out == nil {
		cfg.Out = &out
	}
	m, err := machine.New(im, cfg)
	if err != nil {
		return RunResult{}, err
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		return RunResult{}, fmt.Errorf("bench %s (warm-up): %w", p.Name, err)
	}
	out.Reset()
	m.ResetStats()
	res, err := m.Run(entry)
	if err != nil {
		return RunResult{}, fmt.Errorf("bench %s: %w", p.Name, err)
	}
	return RunResult{
		Program: p.Name,
		Pure:    pure,
		Success: res.Success,
		Stats:   res.Stats,
		Result:  res,
		Output:  out.String(),
	}, nil
}

// RunKCM executes one benchmark variant cold on a machine with the
// given configuration.
func RunKCM(p Program, pure bool, cfg machine.Config) (RunResult, error) {
	cfg = applyFusion(cfg)
	im, err := Compile(p, pure)
	if err != nil {
		return RunResult{}, err
	}
	var out strings.Builder
	if cfg.Out == nil {
		cfg.Out = &out
	}
	m, err := machine.New(im, cfg)
	if err != nil {
		return RunResult{}, err
	}
	entry, _ := im.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	if err != nil {
		return RunResult{}, fmt.Errorf("bench %s: %w", p.Name, err)
	}
	return RunResult{
		Program: p.Name,
		Pure:    pure,
		Success: res.Success,
		Stats:   res.Stats,
		Result:  res,
		Output:  out.String(),
	}, nil
}
