package bench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// kindCounter tallies trace events by kind.
type kindCounter struct{ counts map[trace.Kind]int }

func newKindCounter() *kindCounter         { return &kindCounter{counts: map[trace.Kind]int{}} }
func (c *kindCounter) Emit(ev trace.Event) { c.counts[ev.Kind]++ }

// TestGCStress runs real benchmarks in heaps far below their no-GC
// requirements and pins the collector's end-to-end guarantees: the
// answer (program output and inference count) is exactly that of a
// roomy-heap run, several collections actually happen, and — with the
// profiler attached — cycle conservation holds with the collection
// cost attributed to the <gc> pseudo-predicate. scripts/verify.sh
// runs this test under -race.
func TestGCStress(t *testing.T) {
	nrev, ok := ByName("nrev1")
	if !ok {
		t.Fatal("nrev1 missing from suite")
	}
	queens, ok := ByName("queens")
	if !ok {
		t.Fatal("queens missing from suite")
	}

	reference := func(p Program) RunResult {
		r, err := RunKCM(p, false, machine.Config{})
		if err != nil || !r.Success {
			t.Fatalf("reference %s: %v", p.Name, err)
		}
		return r
	}

	check := func(t *testing.T, p Program, cfg machine.Config, minColl uint64) RunResult {
		ref := reference(p)
		r, err := RunKCM(p, false, cfg)
		if err != nil || !r.Success {
			t.Fatalf("%s in small heap: %v success=%v", p.Name, err, r.Success)
		}
		if got := r.Result.GC.Collections; got < minColl {
			t.Fatalf("%s: %d collections, want >= %d", p.Name, got, minColl)
		}
		if r.Output != ref.Output {
			t.Errorf("%s: output %q != reference %q", p.Name, r.Output, ref.Output)
		}
		if r.Stats.Inferences != ref.Stats.Inferences {
			t.Errorf("%s: inferences %d != reference %d",
				p.Name, r.Stats.Inferences, ref.Stats.Inferences)
		}
		return r
	}

	// nrev makes garbage fast; a quarter-kiloword heap forces several
	// overflow-triggered collections (no-GC runs need > 0x300 words).
	t.Run("nrev-overflow", func(t *testing.T) {
		check(t, nrev, machine.Config{GlobalBase: 0x10000, GlobalSize: 0x100}, 3)
	})

	// queens reclaims heap by backtracking, so nearly everything is
	// live at any instant; the threshold trigger exercises collection
	// at call boundaries under heavy choice-point state instead.
	t.Run("queens-threshold", func(t *testing.T) {
		check(t, queens, machine.Config{
			GlobalBase: 0x10000, GlobalSize: 0x30,
			GCThresholdWords: 0x20, HeapWatermarkWords: 4,
		}, 3)
	})

	// Conservation with the profiler attached: every simulated cycle
	// is attributed, the collection cost lands in the <gc> bucket, and
	// the gc_start/gc_end events pair up with the collection count.
	t.Run("conservation", func(t *testing.T) {
		pr := trace.NewProfiler()
		kc := newKindCounter()
		cfg := machine.Config{
			GlobalBase: 0x10000, GlobalSize: 0x100,
			Hook: trace.Tee(pr, kc),
		}
		r, err := RunKCM(nrev, false, cfg)
		if err != nil || !r.Success {
			t.Fatalf("nrev1 traced: %v", err)
		}
		gc := r.Result.GC
		if gc.Collections < 3 {
			t.Fatalf("collections %d, want >= 3", gc.Collections)
		}
		if got := pr.Total(); got != r.Stats.Cycles {
			t.Errorf("profiler total %d != machine cycles %d", got, r.Stats.Cycles)
		}
		var gcSelf uint64
		for _, row := range pr.Rows() {
			if row.Name == trace.GCName {
				gcSelf = row.Self
			}
		}
		if gcSelf != gc.Cycles {
			t.Errorf("<gc> bucket %d != GCStats.Cycles %d", gcSelf, gc.Cycles)
		}
		if s, e := kc.counts[trace.KGCStart], kc.counts[trace.KGCEnd]; uint64(s) != gc.Collections || uint64(e) != gc.Collections {
			t.Errorf("gc events start=%d end=%d, want %d each", s, e, gc.Collections)
		}
	})
}
