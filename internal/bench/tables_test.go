package bench

import (
	"testing"
)

// TestTable1Shape checks the static-size acceptance criteria: KCM/PLM
// instruction ratio near 1, byte ratio near 3, SPUR/KCM instruction
// ratio well into the tens.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable1(rows))
	var kpI, kpB, skI, skB float64
	for _, r := range rows {
		kpI += r.KCMvsPLMInstr()
		kpB += r.KCMvsPLMBytes()
		skI += r.SPURvsKCMInstr()
		skB += r.SPURvsKCMBytes()
		if ri := r.KCMvsPLMInstr(); ri < 0.8 || ri > 1.8 {
			t.Errorf("%s: KCM/PLM instr ratio %.2f outside [0.8, 1.8]", r.Program, ri)
		}
		if ri := r.SPURvsKCMInstr(); ri < 4 || ri > 25 {
			t.Errorf("%s: SPUR/KCM instr ratio %.2f outside [4, 25]", r.Program, ri)
		}
	}
	n := float64(len(rows))
	if avg := kpI / n; avg < 0.95 || avg > 1.5 {
		t.Errorf("avg KCM/PLM instr ratio %.2f, paper 1.10", avg)
	}
	if avg := kpB / n; avg < 2.2 || avg > 4.0 {
		t.Errorf("avg KCM/PLM byte ratio %.2f, paper 2.96", avg)
	}
	if avg := skI / n; avg < 8 || avg > 20 {
		t.Errorf("avg SPUR/KCM instr ratio %.2f, paper 13.61", avg)
	}
	if avg := skB / n; avg < 4 || avg > 10 {
		t.Errorf("avg SPUR/KCM byte ratio %.2f, paper 6.43", avg)
	}
}

// TestTable2Shape: KCM must beat the PLM model on every benchmark,
// with the average ratio in the paper's 2-4x band.
func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTimeTable(rows, "PLM"))
	var sum float64
	for _, r := range rows {
		if r.Ratio() < 1.0 {
			t.Errorf("%s: PLM/KCM ratio %.2f < 1 (KCM must win)", r.Program, r.Ratio())
		}
		sum += r.Ratio()
	}
	if avg := sum / float64(len(rows)); avg < 2.0 || avg > 4.5 {
		t.Errorf("avg PLM/KCM ratio %.2f, paper 3.05 (want 2.0-4.5)", avg)
	}
}

// TestTable3Shape: KCM vs the QUINTUS model, paper average 7.85x,
// range 5-10x; backtracking programs must show the larger ratios.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTimeTable(rows, "QUINTUS"))
	var sum float64
	n := 0
	for _, r := range rows {
		if r.PaperRatio == 0 {
			continue // too small for the paper to time
		}
		n++
		if r.Ratio() < 3 || r.Ratio() > 16 {
			t.Errorf("%s: Q/KCM ratio %.2f outside [3, 16]", r.Program, r.Ratio())
		}
		sum += r.Ratio()
	}
	if avg := sum / float64(n); avg < 5.5 || avg > 11 {
		t.Errorf("avg Q/KCM ratio %.2f, paper 7.85 (want 5.5-11)", avg)
	}
}

// TestTable4Shape: the measured KCM peaks must reproduce the paper's
// 833/760 Klips within a few percent.
func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable4(rows))
	for _, r := range rows {
		if r.Machine != "KCM" {
			continue
		}
		if r.ConKlips < 780 || r.ConKlips > 890 {
			t.Errorf("KCM concat peak %.0f Klips, paper 833", r.ConKlips)
		}
		if r.RevKlips < 700 || r.RevKlips > 830 {
			t.Errorf("KCM nrev peak %.0f Klips, paper 760", r.RevKlips)
		}
	}
}

// TestCacheStudyShape: hit ratio must be high with separated stacks,
// collapse when the stack tops collide, and be restored by the
// zone-split cache.
func TestCacheStudyShape(t *testing.T) {
	rows, err := CacheStudy()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderCacheStudy(rows))
	if len(rows) != 3 {
		t.Fatal("want 3 configurations")
	}
	apart, collide, split := rows[0], rows[1], rows[2]
	if apart.HitRatio < 0.90 {
		t.Errorf("separated stacks hit ratio %.3f, want > 0.90", apart.HitRatio)
	}
	if collide.HitRatio > apart.HitRatio-0.05 {
		t.Errorf("colliding stacks hit ratio %.3f did not drop vs %.3f",
			collide.HitRatio, apart.HitRatio)
	}
	if split.HitRatio < apart.HitRatio-0.02 {
		t.Errorf("split cache hit ratio %.3f should match separated case %.3f",
			split.HitRatio, apart.HitRatio)
	}
}

// TestAblationShallowShape: shallow backtracking must never lose, and
// must create strictly fewer choice points overall.
func TestAblationShallowShape(t *testing.T) {
	rows, err := AblationShallow()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderShallow(rows))
	var sCP, eCP uint64
	for _, r := range rows {
		if r.Speedup() < 0.97 {
			t.Errorf("%s: shallow backtracking slowdown %.2f", r.Program, r.Speedup())
		}
		if r.ShallowCPs > r.EagerCPs {
			t.Errorf("%s: shallow created more CPs (%d > %d)", r.Program, r.ShallowCPs, r.EagerCPs)
		}
		sCP += r.ShallowCPs
		eCP += r.EagerCPs
	}
	if sCP >= eCP {
		t.Errorf("shallow total CPs %d not below eager %d", sCP, eCP)
	}
}

// TestAblationUnits: disabling the dereference or trail hardware must
// cost cycles on every benchmark that dereferences or trails.
func TestAblationUnits(t *testing.T) {
	for _, unit := range []string{"deref", "trail"} {
		rows, err := AblationUnit(unit)
		if err != nil {
			t.Fatal(err)
		}
		t.Log("\n" + RenderUnit(rows, unit))
		for _, r := range rows {
			if r.Slowdown() < 1.0 {
				t.Errorf("%s/%s: slowdown %.3f < 1", unit, r.Program, r.Slowdown())
			}
		}
	}
}
