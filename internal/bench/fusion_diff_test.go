package bench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// The fusion differential harness: superinstruction fusion is a
// host-side translation tier, so for every suite program a fused run
// and an unfused run must be indistinguishable in everything
// simulated — solutions and output, instruction/cycle counters, cache
// and MMU statistics, GC activity, and the structured trace stream.
// Only the Fusion block of the result (the tier's own counters) may
// differ.

// runPair executes one suite program warm with fusion on and off.
func runPair(t *testing.T, p Program) (on, off RunResult) {
	t.Helper()
	on, err := RunKCMWarm(p, true, machine.Config{Fusion: machine.On})
	if err != nil {
		t.Fatalf("%s fused: %v", p.Name, err)
	}
	off, err = RunKCMWarm(p, true, machine.Config{Fusion: machine.Off})
	if err != nil {
		t.Fatalf("%s unfused: %v", p.Name, err)
	}
	return on, off
}

func TestFusionDifferentialSuite(t *testing.T) {
	for _, p := range Suite {
		t.Run(p.Name, func(t *testing.T) {
			on, off := runPair(t, p)
			if on.Success != off.Success || on.Output != off.Output {
				t.Fatalf("solution diverged: fused (%v, %q) vs unfused (%v, %q)",
					on.Success, on.Output, off.Success, off.Output)
			}
			if on.Stats != off.Stats {
				t.Errorf("machine counters diverged:\nfused   %+v\nunfused %+v", on.Stats, off.Stats)
			}
			if a, b := on.Result.DCache, off.Result.DCache; a != b {
				t.Errorf("data cache stats diverged:\nfused   %+v\nunfused %+v", a, b)
			}
			if a, b := on.Result.CCache, off.Result.CCache; a != b {
				t.Errorf("code cache stats diverged:\nfused   %+v\nunfused %+v", a, b)
			}
			if a, b := on.Result.Mem, off.Result.Mem; a != b {
				t.Errorf("memory stats diverged:\nfused   %+v\nunfused %+v", a, b)
			}
			if a, b := on.Result.DataMMU, off.Result.DataMMU; a != b {
				t.Errorf("mmu stats diverged:\nfused   %+v\nunfused %+v", a, b)
			}
			if a, b := on.Result.GC, off.Result.GC; a != b {
				t.Errorf("gc stats diverged:\nfused   %+v\nunfused %+v", a, b)
			}
			if on.Result.Fusion.Runs == 0 {
				t.Logf("%s: no fused handlers installed (licenses empty) — pair still compared", p.Name)
			}
		})
	}
}

// TestFusionDifferentialTrace drives the traced twin: the structured
// event stream of a fused run must be event-for-event identical to an
// unfused run's, cycles included (runFusedTraced mirrors the traced
// dispatch loop exactly).
func TestFusionDifferentialTrace(t *testing.T) {
	const limit = 200_000
	for _, p := range Suite {
		t.Run(p.Name, func(t *testing.T) {
			recOn := trace.NewRecorder(limit)
			recOff := trace.NewRecorder(limit)
			on, err := RunKCMWarm(p, true, machine.Config{Fusion: machine.On, Hook: recOn})
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			if _, err := RunKCMWarm(p, true, machine.Config{Fusion: machine.Off, Hook: recOff}); err != nil {
				t.Fatalf("unfused: %v", err)
			}
			a, b := recOn.Events(), recOff.Events()
			if len(a) != len(b) {
				t.Fatalf("event count diverged: fused %d vs unfused %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("event %d diverged:\nfused   %s\nunfused %s",
						i, trace.FormatEvent(a[i], nil), trace.FormatEvent(b[i], nil))
				}
			}
			if on.Result.Fusion.Runs > 0 && on.Result.Fusion.Dispatches == 0 {
				// The traced twin must actually dispatch through the
				// handlers for this comparison to mean anything.
				t.Errorf("%s: handlers installed but never dispatched under trace", p.Name)
			}
		})
	}
}
