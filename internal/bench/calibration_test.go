package bench

import (
	"testing"

	"repro/internal/machine"
)

// TestCalibration prints simulated vs paper cycles-per-inference for
// the pure suite. It asserts only the coarse acceptance band (each
// benchmark within 2x of the paper's Klips); the detailed comparison
// goes to EXPERIMENTS.md.
func TestCalibration(t *testing.T) {
	// con6 and palin25 are excluded from the assertion: the paper's
	// exact program variants for these two are not recoverable (its
	// own con6/con6* rows imply different programs per table), and the
	// reconstructed ones are intrinsically lighter per inference. The
	// deviation is recorded in EXPERIMENTS.md.
	noAssert := map[string]bool{"con6": true, "palin25": true}
	for _, p := range Suite {
		if p.PaperKCMmsPure == 0 {
			continue
		}
		r, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		paperCPI := p.PaperKCMmsPure * 1e6 / 80 / float64(p.PaperInferencesPure)
		gotCPI := float64(r.Stats.Cycles) / float64(r.Stats.Inferences)
		ratio := gotCPI / paperCPI
		t.Logf("%-10s cyc/inf=%6.1f paper=%6.1f ratio=%.2f  instrs=%d cyc=%d dMiss=%d cMiss=%d",
			p.Name, gotCPI, paperCPI, ratio, r.Stats.Instrs, r.Stats.Cycles,
			r.Result.DCache.ReadMiss+r.Result.DCache.WriteMiss, r.Result.CCache.ReadMiss)
		if !noAssert[p.Name] && (ratio > 2.2 || ratio < 0.45) {
			t.Errorf("%s: cycles/inference %.1f vs paper %.1f (ratio %.2f) outside 2.2x band",
				p.Name, gotCPI, paperCPI, ratio)
		}
	}
}

// TestPeakConcat measures the steady-state cost of one concatenation
// step, the paper's peak-Klips anchor: 15 cycles = 833 Klips.
func TestPeakConcat(t *testing.T) {
	c := ConcatStepCycles(t)
	t.Logf("concat step = %.1f cycles (%0.f Klips peak); paper: 15 cycles, 833 Klips", c, 12500/c*1.0)
	if c < 13 || c > 17 {
		t.Errorf("concat step %.1f cycles, want 15 +/- 2", c)
	}
}

// ConcatStepCycles runs list concatenation at two lengths and returns
// the marginal cycles per step, isolating the steady-state loop from
// query setup.
func ConcatStepCycles(t testing.TB) float64 {
	t.Helper()
	// Both lists must fit the 1K-word global cache section: peak
	// Klips is a microcode-cycle figure, free of capacity misses.
	const n = 100
	src := appendLib + "\nmklist(0, []).\nmklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).\n"
	run := func(apps string) uint64 {
		p := Program{Name: "concat", Source: src,
			PureQuery: "mklist(" + itoa(n) + ", L)" + apps + "."}
		r, err := RunKCMWarm(p, true, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Success {
			t.Fatal("concat failed")
		}
		return r.Stats.Cycles
	}
	one := run(", app(L, [x], _)")
	three := run(", app(L, [x], _), app(L, [x], _), app(L, [x], _)")
	// The difference is exactly two extra traversals of n+1 steps.
	return float64(three-one) / float64(2*(n+1))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
