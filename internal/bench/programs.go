// Package bench holds the PLM benchmark suite (section 4 of the
// paper: the U.C. Berkeley extension of Warren's benchmark set) and
// the harness that regenerates every table of the evaluation section.
//
// Each program comes in two variants, exactly as in the paper: the
// Table 2 version, where I/O predicates are compiled as unit clauses
// costing the 5-cycle minimum call/return sequence, and the Table 3
// "starred" version with all I/O removed to measure pure inferencing.
// The assert/retract-based program of the original suite could not be
// run on the prototype either (no assert in the runtime library) and
// is likewise absent here.
package bench

// Program is one benchmark of the suite.
type Program struct {
	Name      string
	Source    string // Prolog program text
	Query     string // Table 2 goal (with I/O)
	PureQuery string // Table 3 goal (I/O stripped)
	// Paper-reported inference counts (Table 2 / Table 3 columns),
	// recorded for EXPERIMENTS.md comparison; our own counting uses
	// the same definition but reconstructed benchmark sources, so
	// small deviations are expected.
	PaperInferences     int
	PaperInferencesPure int
	// Paper-reported timings.
	PaperKCMms     float64 // Table 2 KCM column
	PaperPLMms     float64 // Table 2 PLM column
	PaperQms       float64 // Table 3 QUINTUS column (0 = too small)
	PaperKCMmsPure float64 // Table 3 KCM column
}

const appendLib = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

const nrevLib = appendLib + `
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`

const derivLib = `
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU*V + U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU*V - U*DV) / (V^2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU*N*U^N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
`

// Suite is the PLM benchmark suite in the order of the paper's
// tables.
var Suite = []Program{
	{
		Name:            "con1",
		Source:          appendLib,
		Query:           "app([a,b,c], _L, R), write(R), nl.",
		PureQuery:       "app([a,b,c], _L, _R).",
		PaperInferences: 6, PaperInferencesPure: 4,
		PaperKCMms: 0.007, PaperPLMms: 0.023, PaperKCMmsPure: 0.006,
	},
	{
		Name: "con6",
		Source: appendLib + `
con6 :- app([a,b,c,d,e,f], _, _), app([b,c,d,e,f,g], _, _),
        app([c,d,e,f,g,h], _, _), app([d,e,f,g,h,i], _, _),
        app([e,f,g,h,i,j], _, _), app([f,g,h,i,j,k], _, _).
`,
		Query:           "con6.",
		PureQuery:       "app([a,b,c,d,e,f,g,h,i,j,k], _L, _R).",
		PaperInferences: 42, PaperInferencesPure: 12,
		PaperKCMms: 0.059, PaperPLMms: 0.137, PaperKCMmsPure: 0.046,
	},
	{
		Name:            "divide10",
		Source:          derivLib,
		Query:           "d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, E), write(E), nl.",
		PureQuery:       "d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, _E).",
		PaperInferences: 22, PaperInferencesPure: 20,
		PaperKCMms: 0.091, PaperPLMms: 0.380, PaperKCMmsPure: 0.090,
	},
	{
		Name: "hanoi",
		Source: `
hanoi(N) :- han(N, a, b, c).
han(0, _, _, _).
han(N, A, B, C) :- N1 is N - 1, han(N1, A, C, B), mv(A, B), han(N1, C, B, A).
mv(A, B) :- write(A), write(B), nl.

hanoipure(N) :- hanp(N, a, b, c).
hanp(0, _, _, _).
hanp(N, A, B, C) :- N1 is N - 1, hanp(N1, A, C, B), hanp(N1, C, B, A).
`,
		Query:           "hanoi(8).",
		PureQuery:       "hanoipure(8).",
		PaperInferences: 1787, PaperInferencesPure: 767,
		PaperKCMms: 2.795, PaperPLMms: 7.323, PaperQms: 11.6, PaperKCMmsPure: 1.264,
	},
	{
		Name:            "log10",
		Source:          derivLib,
		Query:           "d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, E), write(E), nl.",
		PureQuery:       "d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _E).",
		PaperInferences: 14, PaperInferencesPure: 12,
		PaperKCMms: 0.039, PaperPLMms: 0.109, PaperKCMmsPure: 0.039,
	},
	{
		Name: "mutest",
		Source: appendLib + `
theorem(_, [m, i]).
theorem(Depth, R) :- Depth > 0, D is Depth - 1, theorem(D, S), rules(S, R).
rules(S, R) :- rule1(S, R).
rules(S, R) :- rule2(S, R).
rules(S, R) :- rule3(S, R).
rules(S, R) :- rule4(S, R).
rule1(S, R) :- app(X, [i], S), app(X, [i, u], R).
rule2([m | T], [m | R]) :- app(T, T, R).
rule3(S, R) :- app(X, [i, i, i | T], S), app(X, [u | T], R).
rule4(S, R) :- app(X, [u, u | T], S), app(X, T, R).
`,
		Query:           "theorem(5, [m, u, i, i, u]).",
		PureQuery:       "theorem(5, [m, u, i, i, u]).",
		PaperInferences: 1365, PaperInferencesPure: 1365,
		PaperKCMms: 4.644, PaperPLMms: 12.407, PaperQms: 41.5, PaperKCMmsPure: 4.644,
	},
	{
		Name: "nrev1",
		Source: nrevLib + `
list30([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
        16,17,18,19,20,21,22,23,24,25,26,27,28,29,30]).
`,
		Query:           "list30(L), nrev(L, R), write(R), nl.",
		PureQuery:       "list30(L), nrev(L, _R).",
		PaperInferences: 499, PaperInferencesPure: 497,
		PaperKCMms: 0.650, PaperPLMms: 2.660, PaperQms: 3.3, PaperKCMmsPure: 0.649,
	},
	{
		Name:            "ops8",
		Source:          derivLib,
		Query:           "d((x + 1) * ((x^2 + 2) * (x^3 + 3)), x, E), write(E), nl.",
		PureQuery:       "d((x + 1) * ((x^2 + 2) * (x^3 + 3)), x, _E).",
		PaperInferences: 20, PaperInferencesPure: 18,
		PaperKCMms: 0.059, PaperPLMms: 0.214, PaperKCMmsPure: 0.058,
	},
	{
		Name: "palin25",
		Source: nrevLib + `
pal25([a,b,c,d,e,f,g,h,i,j,k,l,m,l,k,j,i,h,g,f,e,d,c,b,a]).
palin(L) :- nrev(L, L).
`,
		Query:           "pal25(L), palin(L), write(yes), nl.",
		PureQuery:       "pal25(L), palin(L).",
		PaperInferences: 325, PaperInferencesPure: 323,
		PaperKCMms: 1.221, PaperPLMms: 3.152, PaperQms: 9.33, PaperKCMmsPure: 1.220,
	},
	{
		Name: "pri2",
		Source: `
primes(Limit, Ps) :- integers(2, Limit, Is), sift(Is, Ps).
integers(Low, High, [Low | Rest]) :- Low =< High, !, M is Low + 1, integers(M, High, Rest).
integers(_, _, []).
sift([], []).
sift([I | Is], [I | Ps]) :- remove(I, Is, New), sift(New, Ps).
remove(_, [], []).
remove(P, [I | Is], Nis) :- 0 is I mod P, !, remove(P, Is, Nis).
remove(P, [I | Is], [I | Nis]) :- remove(P, Is, Nis).
`,
		Query:           "primes(98, Ps), write(Ps), nl.",
		PureQuery:       "primes(98, _Ps).",
		PaperInferences: 1235, PaperInferencesPure: 1233,
		PaperKCMms: 5.240, PaperPLMms: 10.0, PaperQms: 30.5, PaperKCMmsPure: 5.239,
	},
	{
		Name: "qs4",
		Source: `
list50([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
        55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
        11,28,61,74,18,92,40,53,59,8]).
qsort([X | L], R, R0) :- partition(L, X, L1, L2),
    qsort(L2, R1, R0), qsort(L1, R, [X | R1]).
qsort([], R, R).
partition([X | L], Y, [X | L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X | L], Y, L1, [X | L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
`,
		Query:           "list50(L), qsort(L, S, []), write(S), nl.",
		PureQuery:       "list50(L), qsort(L, _S, []).",
		PaperInferences: 612, PaperInferencesPure: 610,
		PaperKCMms: 1.316, PaperPLMms: 4.854, PaperQms: 11.0, PaperKCMmsPure: 1.315,
	},
	{
		Name: "queens",
		Source: `
queens(N, Qs) :- range(1, N, Ns), solve(Ns, [], Qs).
solve([], Qs, Qs).
solve(Unplaced, Safe, Qs) :-
    sel(Unplaced, Q, Rest),
    \+ attack(Q, Safe),
    solve(Rest, [Q | Safe], Qs).
attack(X, Xs) :- att(X, 1, Xs).
att(X, N, [Y | _]) :- X is Y + N.
att(X, N, [Y | _]) :- X is Y - N.
att(X, N, [_ | Ys]) :- N1 is N + 1, att(X, N1, Ys).
sel([X | Xs], X, Xs).
sel([Y | Ys], X, [Y | Zs]) :- sel(Ys, X, Zs).
range(N, N, [N]) :- !.
range(M, N, [M | Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
`,
		Query:           "queens(6, Qs), write(Qs), nl.",
		PureQuery:       "queens(6, _Qs).",
		PaperInferences: 687, PaperInferencesPure: 657,
		PaperKCMms: 1.205, PaperPLMms: 4.222, PaperQms: 9.01, PaperKCMmsPure: 1.182,
	},
	{
		Name:            "query",
		Source:          queryDB,
		Query:           "doquery.",
		PureQuery:       "doquery.",
		PaperInferences: 2893, PaperInferencesPure: 2888,
		PaperKCMms: 12.610, PaperPLMms: 17.342, PaperQms: 128.17, PaperKCMmsPure: 12.605,
	},
	{
		Name:            "times10",
		Source:          derivLib,
		Query:           "d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, E), write(E), nl.",
		PureQuery:       "d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, _E).",
		PaperInferences: 22, PaperInferencesPure: 20,
		PaperKCMms: 0.082, PaperPLMms: 0.330, PaperKCMmsPure: 0.081,
	},
}

// queryDB is D.H.D. Warren's database query benchmark: find pairs of
// countries with approximately equal population density, by
// exhaustive search over a 25-country database.
const queryDB = `
doquery :- query0, fail.
doquery.
query0 :-
    density(C1, D1), density(C2, D2),
    D1 > D2, T1 is 20 * D1, T2 is 21 * D2, T1 < T2.

density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.

% populations in 100000s, areas in 1000s of square miles
pop(china,      8250).
pop(india,      5863).
pop(ussr,       2521).
pop(usa,        2119).
pop(indonesia,  1276).
pop(japan,      1097).
pop(brazil,     1042).
pop(bangladesh,  750).
pop(pakistan,    682).
pop(w_germany,   620).
pop(nigeria,     613).
pop(mexico,      581).
pop(uk,          559).
pop(italy,       554).
pop(france,      525).
pop(philippines, 415).
pop(thailand,    410).
pop(turkey,      383).
pop(egypt,       364).
pop(spain,       352).
pop(poland,      337).
pop(s_korea,     335).
pop(iran,        320).
pop(ethiopia,    272).
pop(argentina,   251).

area(china,     3380).
area(india,     1139).
area(ussr,      8708).
area(usa,       3609).
area(indonesia,  570).
area(japan,      148).
area(brazil,    3288).
area(bangladesh,  55).
area(pakistan,   311).
area(w_germany,   96).
area(nigeria,    373).
area(mexico,     764).
area(uk,          86).
area(italy,      116).
area(france,     213).
area(philippines, 90).
area(thailand,   200).
area(turkey,     296).
area(egypt,      386).
area(spain,      190).
area(poland,     121).
area(s_korea,     37).
area(iran,       628).
area(ethiopia,   350).
area(argentina, 1080).
`

// ByName returns a benchmark by name.
func ByName(name string) (Program, bool) {
	for _, p := range Suite {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}
