package client

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// The load generator drives a kcmd daemon the way the paper's host
// drives the KCM: N concurrent clients, each issuing a scripted mix
// of single-shot queries, session-driven enumerations and NDJSON
// streams, with per-request latencies folded into a histogram. Its
// report is the BENCH_8 artifact.

// OpKind selects how one mix element talks to the daemon.
type OpKind string

const (
	// OpQuery is a single-shot query: one request, first solution.
	OpQuery OpKind = "query"
	// OpEnumerate creates a session and drives it with next-solution
	// requests until the search exhausts.
	OpEnumerate OpKind = "enumerate"
	// OpStream consumes the whole enumeration as one NDJSON stream.
	OpStream OpKind = "stream"
)

// LoadOp is one element of the query mix.
type LoadOp struct {
	Name string
	Kind OpKind
	Req  wire.QueryRequest
	// MinSolutions fails the op when the enumeration yields fewer
	// (guards against a server quietly answering "no" to everything).
	MinSolutions int
}

// LoadConfig describes one load-generation run.
type LoadConfig struct {
	Clients          int     // concurrent clients
	QueriesPerClient int     // ops issued per client (round-robin over Mix)
	RatePerClient    float64 // target ops/s per client; 0 = open throttle
	Mix              []LoadOp
}

// latBuckets are the histogram bucket upper bounds in microseconds.
var latBuckets = []float64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}

// OpReport aggregates one mix element across all clients.
type OpReport struct {
	Count     int     `json:"count"`
	Failed    int     `json:"failed"`
	Solutions int     `json:"solutions"`
	Requests  int     `json:"requests"` // HTTP round-trips (enumerations issue several)
	P50us     float64 `json:"p50_us"`
	P90us     float64 `json:"p90_us"`
	P99us     float64 `json:"p99_us"`
	Maxus     float64 `json:"max_us"`
	// HistogramUS counts op latencies per bucket; the last slot is
	// the overflow bucket.
	HistogramUS map[string]int `json:"histogram_us"`
}

// LoadReport is the whole run.
type LoadReport struct {
	Clients          int                  `json:"clients"`
	QueriesPerClient int                  `json:"queries_per_client"`
	RatePerClient    float64              `json:"rate_per_client"`
	DurationMS       float64              `json:"duration_ms"`
	TotalOps         int                  `json:"total_ops"`
	TotalRequests    int                  `json:"total_requests"`
	TotalSolutions   int                  `json:"total_solutions"`
	Failed           int                  `json:"failed"`
	ThroughputOps    float64              `json:"throughput_ops_per_s"`
	Ops              map[string]*OpReport `json:"ops"`
	Errors           []string             `json:"errors,omitempty"`
}

// opSample is one finished op from one client.
type opSample struct {
	name      string
	us        float64
	requests  int
	solutions int
	err       error
}

// RunLoad drives the daemon at base with cfg and aggregates the
// samples. It only returns a transport-level error for a broken
// configuration; individual op failures are counted in the report.
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 || cfg.QueriesPerClient <= 0 || len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("loadgen: need clients, queries and a mix")
	}
	samples := make(chan opSample, cfg.Clients*cfg.QueriesPerClient)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			var tick *time.Ticker
			if cfg.RatePerClient > 0 {
				tick = time.NewTicker(time.Duration(float64(time.Second) / cfg.RatePerClient))
				defer tick.Stop()
			}
			for i := 0; i < cfg.QueriesPerClient; i++ {
				if tick != nil {
					select {
					case <-tick.C:
					case <-ctx.Done():
						return
					}
				}
				// Offset the mix per client so the pool serves every
				// image concurrently from the first round.
				op := cfg.Mix[(cl+i)%len(cfg.Mix)]
				samples <- runOp(ctx, c, op)
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(samples)

	rep := &LoadReport{
		Clients:          cfg.Clients,
		QueriesPerClient: cfg.QueriesPerClient,
		RatePerClient:    cfg.RatePerClient,
		DurationMS:       float64(elapsed.Microseconds()) / 1000,
		Ops:              make(map[string]*OpReport),
	}
	lats := make(map[string][]float64)
	for s := range samples {
		or := rep.Ops[s.name]
		if or == nil {
			or = &OpReport{HistogramUS: make(map[string]int)}
			rep.Ops[s.name] = or
		}
		or.Count++
		or.Requests += s.requests
		or.Solutions += s.solutions
		rep.TotalOps++
		rep.TotalRequests += s.requests
		rep.TotalSolutions += s.solutions
		if s.err != nil {
			or.Failed++
			rep.Failed++
			if len(rep.Errors) < 10 {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", s.name, s.err))
			}
			continue
		}
		lats[s.name] = append(lats[s.name], s.us)
		or.HistogramUS[bucketLabel(s.us)]++
	}
	for name, ls := range lats {
		sort.Float64s(ls)
		or := rep.Ops[name]
		or.P50us = percentile(ls, 50)
		or.P90us = percentile(ls, 90)
		or.P99us = percentile(ls, 99)
		or.Maxus = ls[len(ls)-1]
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.ThroughputOps = float64(rep.TotalOps) / sec
	}
	return rep, nil
}

// runOp executes one mix element and times it end to end.
func runOp(ctx context.Context, c *Client, op LoadOp) opSample {
	t0 := time.Now()
	requests, solutions, err := doOp(ctx, c, op)
	s := opSample{
		name:      op.Name,
		us:        float64(time.Since(t0).Nanoseconds()) / 1000,
		requests:  requests,
		solutions: solutions,
		err:       err,
	}
	if err == nil && solutions < op.MinSolutions {
		s.err = fmt.Errorf("%d solutions, want >= %d", solutions, op.MinSolutions)
	}
	return s
}

func doOp(ctx context.Context, c *Client, op LoadOp) (requests, solutions int, err error) {
	switch op.Kind {
	case OpQuery:
		rep, err := c.Query(ctx, op.Req)
		requests = 1
		if err != nil {
			return requests, 0, err
		}
		switch rep.Status {
		case wire.StatusYes:
			return requests, 1, nil
		case wire.StatusNo:
			return requests, 0, nil
		case wire.StatusSuspended:
			// Single-shot op does not resume; clean up the session.
			if _, cerr := c.Cancel(ctx, rep.Session); cerr != nil {
				return requests + 1, 0, cerr
			}
			return requests + 1, 0, fmt.Errorf("suspended (budget too small for mix)")
		default:
			return requests, 0, fmt.Errorf("status %q: %s", rep.Status, rep.Error)
		}
	case OpEnumerate:
		req := op.Req
		req.Enumerate = true
		rep, err := c.Query(ctx, req)
		requests = 1
		for {
			if err != nil {
				return requests, solutions, err
			}
			switch rep.Status {
			case wire.StatusYes:
				solutions++
				if rep.Session == "" {
					// Parking failed (table full): delivered but not
					// resumable; treat as a finished enumeration.
					return requests, solutions, fmt.Errorf("session not parked: %s", rep.Error)
				}
			case wire.StatusSuspended:
				// Keep driving the suspended search.
			case wire.StatusNo:
				return requests, solutions, nil
			default:
				return requests, solutions, fmt.Errorf("status %q: %s", rep.Status, rep.Error)
			}
			rep, err = c.Next(ctx, rep.Session, 0)
			requests++
		}
	case OpStream:
		fin, err := c.Stream(ctx, op.Req, func(wire.Reply) bool {
			solutions++
			return true
		})
		requests = 1
		if err != nil {
			return requests, solutions, err
		}
		if fin.Status != wire.StatusDone {
			return requests, solutions, fmt.Errorf("stream ended with %q: %s", fin.Status, fin.Error)
		}
		return requests, solutions, nil
	default:
		return 0, 0, fmt.Errorf("unknown op kind %q", op.Kind)
	}
}

// bucketLabel names the histogram bucket for a latency in µs.
func bucketLabel(us float64) string {
	for _, ub := range latBuckets {
		if us <= ub {
			return fmt.Sprintf("<=%dus", int(ub))
		}
	}
	return ">1s"
}

// percentile reads the p-th percentile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1) * p / 100)
	return sorted[idx]
}
