// Package client is the Go client for the kcmd query protocol
// (internal/wire): single-shot queries, session-driven enumeration
// (next/cancel), NDJSON solution streaming, and the stats endpoint.
// The load generator (loadgen.go) and the kcmd smoke gate are built
// on it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/wire"
)

// Client talks to one kcmd daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:7071".
func New(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Base is the daemon URL this client talks to.
func (c *Client) Base() string { return c.base }

// post sends one JSON body and decodes one JSON reply.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s: decode (http %d): %w", path, resp.StatusCode, err)
	}
	return nil
}

// Query runs one query request (non-streaming). The reply's Status
// tells the outcome; StatusError replies are returned as values, not
// Go errors, so callers can treat protocol and transport failures
// differently.
func (c *Client) Query(ctx context.Context, req wire.QueryRequest) (wire.Reply, error) {
	req.Stream = false
	var rep wire.Reply
	err := c.post(ctx, "/v1/query", req, &rep)
	return rep, err
}

// Next resumes a parked session by one slice. budget 0 keeps the
// session's budget.
func (c *Client) Next(ctx context.Context, session string, budget uint64) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/next", wire.NextRequest{Session: session, Budget: budget}, &rep)
	return rep, err
}

// Cancel discards a parked session.
func (c *Client) Cancel(ctx context.Context, session string) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/cancel", wire.CancelRequest{Session: session}, &rep)
	return rep, err
}

// Suspend serializes a parked session to the daemon's state
// directory. The reply's Handle (status "parked") resumes it later —
// against this daemon or a restarted one serving the same programs.
func (c *Client) Suspend(ctx context.Context, session string) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/suspend", wire.SuspendRequest{Session: session}, &rep)
	return rep, err
}

// Resume rebuilds a suspended session from its handle. The reply
// (status "suspended") carries the new session id; drive it with Next
// exactly as before the suspension.
func (c *Client) Resume(ctx context.Context, req wire.ResumeRequest) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/resume", req, &rep)
	return rep, err
}

// Assert adds a clause to a tenant's dynamic database (front selects
// asserta over assertz). The reply's Version is the tenant database
// version the mutation produced.
func (c *Client) Assert(ctx context.Context, req wire.AssertRequest) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/assert", req, &rep)
	return rep, err
}

// Retract removes the first variant-equal clause from a tenant's
// dynamic database; the reply Status is "yes" when a clause was
// removed and "no" when none matched.
func (c *Client) Retract(ctx context.Context, req wire.RetractRequest) (wire.Reply, error) {
	var rep wire.Reply
	err := c.post(ctx, "/v1/retract", req, &rep)
	return rep, err
}

// Stats fetches the daemon's /v1/stats snapshot.
func (c *Client) Stats(ctx context.Context) (wire.StatsReply, error) {
	var rep wire.StatsReply
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return rep, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("client: stats: http %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	return rep, err
}

// Stream runs a streaming query, invoking yield for every solution
// line as it arrives. It returns the terminal summary line (Status
// "done", or "error" with the server's message). yield returning
// false stops consuming; the connection closes, which releases the
// server-side session.
func (c *Client) Stream(ctx context.Context, req wire.QueryRequest, yield func(wire.Reply) bool) (wire.Reply, error) {
	req.Stream = true
	buf, err := json.Marshal(req)
	if err != nil {
		return wire.Reply{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(buf))
	if err != nil {
		return wire.Reply{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return wire.Reply{}, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var last wire.Reply
	for sc.Scan() {
		var rep wire.Reply
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			return last, fmt.Errorf("client: stream line: %w", err)
		}
		last = rep
		if rep.Status != wire.StatusYes {
			return rep, nil // terminal: done or error
		}
		if yield != nil && !yield(rep) {
			return rep, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, fmt.Errorf("client: stream ended without a terminal line (http %d)", resp.StatusCode)
}
