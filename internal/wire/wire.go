// Package wire defines the kcmd query protocol: the JSON request and
// response bodies exchanged between the daemon (internal/server) and
// its clients (internal/client). It is deliberately dependency-free —
// the wire format is the system's stable public face, the part that
// must outlive the runtime underneath it (the SICStus lesson: a
// stable external query API is what lets the engine keep changing).
//
// The protocol is one endpoint per verb:
//
//	POST /v1/query    QueryRequest   -> Reply (or an NDJSON stream)
//	POST /v1/next     NextRequest    -> Reply
//	POST /v1/cancel   CancelRequest  -> Reply
//	POST /v1/suspend  SuspendRequest -> Reply (status "parked" + handle)
//	POST /v1/resume   ResumeRequest  -> Reply (status "suspended" + session)
//	POST /v1/assert   AssertRequest  -> Reply
//	POST /v1/retract  RetractRequest -> Reply
//	GET  /v1/stats                   -> StatsReply
//
// Queries carrying a Tenant name run against that tenant's dynamic
// database: a private copy-on-write delta (the clauses the tenant has
// asserted) over the program's shared base image. Assert and retract
// mutate the delta; the empty tenant name is the shared static
// program, which assert/retract cannot touch.
//
// A query either completes within the request (status "yes"/"no"), or
// parks a budget-suspended session server-side (status "suspended"
// plus a session id) which the client drives with next/cancel. With
// "stream" set, the response is chunked application/x-ndjson: one
// Reply line per solution, then a terminal line whose Status is
// "done" (with the final counters) or "error".
//
// Suspend serializes a parked session's full machine state to the
// daemon's state directory and returns a durable handle (status
// "parked"); resume rebuilds it — in the same daemon or a restarted
// one — as a fresh parked session driven with next/cancel as usual.
// When the daemon has a state directory, a SIGTERM drain parks every
// live session the same way instead of running it to completion, each
// under its session id as the handle, so clients resume exactly where
// they left off after the restart.
package wire

// Status values carried by Reply.Status.
const (
	StatusYes       = "yes"       // a solution; bindings populated
	StatusNo        = "no"        // search exhausted without (more) solutions
	StatusSuspended = "suspended" // step budget or request deadline hit; resume with next
	StatusDone      = "done"      // terminal stream summary line
	StatusCancelled = "cancelled" // session closed by cancel
	StatusParked    = "parked"    // session serialized to disk; Handle resumes it
	StatusError     = "error"     // Error holds the message
)

// QueryRequest starts a query against a loaded program.
type QueryRequest struct {
	// Program names one of the daemon's loaded programs. It may be
	// empty when the daemon serves exactly one program.
	Program string `json:"program,omitempty"`
	// Goal is the query text, e.g. "nrev([1,2,3], R).".
	Goal string `json:"goal"`
	// Tenant selects a per-tenant dynamic database layered over the
	// program (created on first use). Empty runs the shared static
	// program.
	Tenant string `json:"tenant,omitempty"`
	// Enumerate keeps the session open after the first solution so
	// the client can drive it with next-solution requests.
	Enumerate bool `json:"enumerate,omitempty"`
	// Stream switches the response to NDJSON: every solution as its
	// own line within this one request.
	Stream bool `json:"stream,omitempty"`
	// Limit bounds a streamed enumeration (0 = all solutions).
	Limit int `json:"limit,omitempty"`
	// Budget bounds each execution slice to n simulated instructions
	// (0 = server default). Exhausting it suspends the session rather
	// than failing the query.
	Budget uint64 `json:"budget,omitempty"`
	// TimeoutMS bounds the request's execution wall-clock time (0 =
	// server default). Hitting it suspends the session.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// NextRequest resumes an enumeration: the next solution of a parked
// session, or the continuation of a suspended slice.
type NextRequest struct {
	Session string `json:"session"`
	// Budget optionally replaces the session's per-slice budget.
	Budget    uint64 `json:"budget,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// CancelRequest discards a parked session.
type CancelRequest struct {
	Session string `json:"session"`
}

// SuspendRequest serializes a parked session — machine state, solution
// count, step budget — into the daemon's state directory. The session
// leaves the table (its machine returns to the pool) and the reply's
// Handle names the on-disk snapshot for a later resume, possibly by a
// different daemon process serving the same programs.
type SuspendRequest struct {
	Session string `json:"session"`
}

// ResumeRequest rebuilds a suspended session from its handle. The
// enumeration continues exactly where it was parked: same remaining
// solutions, same simulated counters. Resuming a tenant session
// requires the tenant database to be at the version the snapshot was
// taken from; any mutation since fails the resume.
type ResumeRequest struct {
	Handle string `json:"handle"`
	// Budget optionally replaces the parked per-slice budget.
	Budget    uint64 `json:"budget,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// AssertRequest adds a clause to a tenant's dynamic database. The
// clause must belong to a predicate the program declares dynamic (or
// one unknown to the program, declared on first assert); asserting
// into a static predicate is rejected.
type AssertRequest struct {
	Program string `json:"program,omitempty"`
	Tenant  string `json:"tenant"`
	// Clause is Prolog text: a fact "color(red)" or a rule
	// "likes(X) :- color(X)". The terminating period is optional.
	Clause string `json:"clause"`
	// Front prepends (asserta) instead of appending (assertz).
	Front bool `json:"front,omitempty"`
}

// RetractRequest removes the first clause of the tenant's database
// that is a variant of Clause (equal up to variable renaming). The
// reply Status is "yes" when a clause was removed, "no" when none
// matched.
type RetractRequest struct {
	Program string `json:"program,omitempty"`
	Tenant  string `json:"tenant"`
	Clause  string `json:"clause"`
}

// Counters is the per-query slice of the machine's simulated
// statistics, cumulative across an enumeration.
type Counters struct {
	Cycles        uint64  `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	Inferences    uint64  `json:"inferences"`
	Millis        float64 `json:"millis"` // simulated, at 80 ns/cycle
	GCCollections uint64  `json:"gc_collections,omitempty"`
	GCCycles      uint64  `json:"gc_cycles,omitempty"`
	FusedSteps    uint64  `json:"fused_steps,omitempty"`
}

// Reply is the response body of query, next and cancel — and, in a
// stream, every NDJSON line.
type Reply struct {
	Status string `json:"status"`
	// Session identifies a parked enumeration (present when the
	// server kept the query alive for next/cancel).
	Session string `json:"session,omitempty"`
	// Handle names an on-disk session snapshot (status "parked");
	// pass it to resume, in this daemon or its successor.
	Handle string `json:"handle,omitempty"`
	// Bindings maps query variable names to rendered terms.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Solutions counts solutions delivered so far (stream summary and
	// suspended replies).
	Solutions int       `json:"solutions,omitempty"`
	Stats     *Counters `json:"stats,omitempty"`
	Error     string    `json:"error,omitempty"`
	// Version is the tenant database version after an assert or
	// retract (monotone per tenant; 0 on non-mutating replies).
	Version uint64 `json:"version,omitempty"`
}

// PoolStats mirrors engine.PoolStats on the wire.
type PoolStats struct {
	Size   int `json:"size"`
	Images int `json:"images"`
	Built  int `json:"built"`
	Idle   int `json:"idle"`
	InUse  int `json:"in_use"`
}

// SessionStats counts the server's session-table activity.
type SessionStats struct {
	Active  int    `json:"active"`
	Created uint64 `json:"created"`
	Evicted uint64 `json:"evicted"` // idle sessions reaped by the janitor
	Drained uint64 `json:"drained"` // suspended sessions completed at shutdown
	Parked  uint64 `json:"parked"`  // sessions serialized to the state directory
}

// Totals aggregates the simulated work the daemon has served.
type Totals struct {
	Queries         uint64 `json:"queries"`
	Solutions       uint64 `json:"solutions"`
	Failures        uint64 `json:"failures"` // goals that exhausted with no solution
	Errors          uint64 `json:"errors"`   // compile or machine faults
	Cycles          uint64 `json:"cycles"`
	Inferences      uint64 `json:"inferences"`
	GCCollections   uint64 `json:"gc_collections"`
	GCCycles        uint64 `json:"gc_cycles"`
	FusionDispatch  uint64 `json:"fusion_dispatches"`
	FusedSteps      uint64 `json:"fused_steps"`
	ProfiledPredCnt int    `json:"profiled_predicates,omitempty"`
}

// StatsReply is the /v1/stats body.
type StatsReply struct {
	Programs []string     `json:"programs"`
	Pool     PoolStats    `json:"pool"`
	Sessions SessionStats `json:"sessions"`
	Totals   Totals       `json:"totals"`
	// Tenants counts the live per-tenant databases across programs.
	Tenants  int  `json:"tenants,omitempty"`
	Draining bool `json:"draining"`
}
