// Package mem models the KCM main memory board: word-addressed
// physical storage with page-mode access timing. One board holds
// 32 MBytes (4M 64-bit words) of 1-Mbit DRAM; the data bus is 32 bits
// wide and a fast page mode pairs two 32-bit accesses into one KCM
// word, which is also used to prefetch ahead for the code cache.
package mem

import "repro/internal/word"

// Timing constants in CPU cycles (80 ns). A random 64-bit access
// costs First cycles; each further word in the same DRAM page costs
// Page cycles (two 120 ns page-mode column accesses per 64-bit word).
const (
	FirstAccessCycles = 4
	PageAccessCycles  = 1
	// DRAMPageWords is the size of a DRAM row in 64-bit words, the
	// window within which page mode applies.
	DRAMPageWords = 256
)

// BoardWords is the capacity of one 32-MByte memory board in words.
const BoardWords = 32 << 20 / 8

// Memory is the physical memory: one or two boards.
type Memory struct {
	words []word.Word
	stats Stats
}

// Stats counts physical memory traffic.
type Stats struct {
	Reads      uint64
	Writes     uint64
	PageHits   uint64 // accesses that fell in the open DRAM row
	lastRow    uint32
	hasLastRow bool
}

// New creates a memory of the given size in words (use BoardWords or
// 2*BoardWords for the real configurations; tests may use less).
func New(sizeWords uint32) *Memory {
	return &Memory{words: make([]word.Word, sizeWords)}
}

// Size returns the capacity in words.
func (m *Memory) Size() uint32 { return uint32(len(m.words)) }

// Read returns the word at physical address pa together with its
// access cost in cycles.
func (m *Memory) Read(pa uint32) (word.Word, int) {
	m.stats.Reads++
	return m.words[pa], m.access(pa)
}

// Write stores w at pa and returns the access cost in cycles.
func (m *Memory) Write(pa uint32, w word.Word) int {
	m.stats.Writes++
	m.words[pa] = w
	return m.access(pa)
}

// Peek reads without touching statistics or timing (for diagnostics).
func (m *Memory) Peek(pa uint32) word.Word { return m.words[pa] }

// Poke stores w at pa without statistics or timing. Snapshot restore
// uses it to reconstruct physical memory contents; the traffic that
// originally produced them was already charged when the snapshot was
// taken.
func (m *Memory) Poke(pa uint32, w word.Word) { m.words[pa] = w }

// SetStats replaces the traffic counters wholesale (snapshot restore).
// The open-row tracking is replaced too, via SetOpenRow.
func (m *Memory) SetStats(s Stats) {
	row, has := m.stats.lastRow, m.stats.hasLastRow
	m.stats = s
	m.stats.lastRow, m.stats.hasLastRow = row, has
}

// OpenRow returns the currently open DRAM row, if any.
func (m *Memory) OpenRow() (row uint32, open bool) {
	return m.stats.lastRow, m.stats.hasLastRow
}

// SetOpenRow forces the open-row tracker (snapshot restore). Page-mode
// timing of the first access after a restore depends on it, so it is
// part of the machine-visible state.
func (m *Memory) SetOpenRow(row uint32, open bool) {
	m.stats.lastRow, m.stats.hasLastRow = row, open
}

func (m *Memory) access(pa uint32) int {
	row := pa / DRAMPageWords
	if m.stats.hasLastRow && row == m.stats.lastRow {
		m.stats.PageHits++
		return PageAccessCycles
	}
	m.stats.lastRow = row
	m.stats.hasLastRow = true
	return FirstAccessCycles
}

// Stats returns a copy of the traffic counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats clears the traffic counters (contents and the open-row
// tracking stay).
func (m *Memory) ResetStats() {
	row, has := m.stats.lastRow, m.stats.hasLastRow
	m.stats = Stats{lastRow: row, hasLastRow: has}
}
