package mem

import (
	"testing"

	"repro/internal/word"
)

func TestReadWrite(t *testing.T) {
	m := New(1024)
	if m.Size() != 1024 {
		t.Fatalf("size %d", m.Size())
	}
	m.Write(7, word.FromInt(42))
	w, _ := m.Read(7)
	if w.Int() != 42 {
		t.Fatalf("read back %v", w)
	}
	if m.Peek(7) != w {
		t.Fatal("peek differs")
	}
}

func TestPageModeTiming(t *testing.T) {
	m := New(4 * DRAMPageWords)
	// First access to a row is slow; subsequent ones in the same row
	// fast.
	_, c1 := m.Read(0)
	_, c2 := m.Read(1)
	_, c3 := m.Read(DRAMPageWords) // new row
	_, c4 := m.Read(DRAMPageWords + 1)
	if c1 != FirstAccessCycles || c3 != FirstAccessCycles {
		t.Errorf("row-open accesses cost %d/%d, want %d", c1, c3, FirstAccessCycles)
	}
	if c2 != PageAccessCycles || c4 != PageAccessCycles {
		t.Errorf("page-mode accesses cost %d/%d, want %d", c2, c4, PageAccessCycles)
	}
}

func TestStatsAndReset(t *testing.T) {
	m := New(512)
	m.Write(1, 0)
	m.Read(1)
	m.Read(2)
	s := m.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.PageHits != 2 { // all in row 0 after the first write opened it
		t.Fatalf("page hits %d", s.PageHits)
	}
	m.ResetStats()
	s = m.Stats()
	if s.Reads != 0 || s.Writes != 0 || s.PageHits != 0 {
		t.Fatalf("reset left %+v", s)
	}
	// Row tracking survives reset: the next same-row access stays fast.
	if _, c := m.Read(3); c != PageAccessCycles {
		t.Errorf("post-reset same-row access cost %d", c)
	}
}

func TestBoardCapacity(t *testing.T) {
	if BoardWords != 4*1024*1024 {
		t.Fatalf("one 32-MB board should hold 4M words, got %d", BoardWords)
	}
}
