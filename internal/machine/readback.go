package machine

import (
	"math"

	"repro/internal/term"
	"repro/internal/word"
)

// peek reads a data word without touching caches, statistics or
// timing: the escape mechanism runs on the host side, so its traffic
// is not part of the measured machine state. Dirty cache lines hold
// the truth, so the cache is consulted first.
func (m *Machine) peek(z word.Zone, a uint32) word.Word {
	if w, ok := m.dcache.Peek(a, z); ok {
		return w
	}
	pa, ok := m.dmmu.Peek(a)
	if !ok {
		return word.Invalid()
	}
	return m.phys.Peek(pa)
}

// readTerm reconstructs the source-level term a word denotes.
// maxDepth bounds runaway structures (cyclic terms cannot be built by
// pure unification without occurs-check violations, but the reader of
// a broken machine state should not hang).
func (m *Machine) readTerm(w word.Word, depth int) term.Term {
	if depth <= 0 {
		return term.Atom("...")
	}
	w = m.peekDeref(w)
	switch w.Type() {
	case word.TRef:
		return term.Var(varName(w))
	case word.TInt:
		return term.Int(w.Int())
	case word.TFloat:
		return term.Float(float64(math.Float32frombits(w.Value())))
	case word.TAtom:
		return m.syms.Name(w.Value())
	case word.TNil:
		return term.NilAtom
	case word.TList:
		// Cells come from the machine's slab builder: solution
		// readback is the warm-pool hot path, and per-cell heap
		// allocation dominated the per-query cost (the builder's
		// write-once slabs keep earlier solutions valid).
		h := m.readTerm(m.peek(word.ZGlobal, w.Addr()), depth-1)
		t := m.readTerm(m.peek(word.ZGlobal, w.Addr()+1), depth-1)
		return m.tb.Cons(h, t)
	case word.TStruct:
		f := m.peek(word.ZGlobal, w.Addr())
		if f.Type() != word.TFunc {
			return term.Atom("<corrupt-structure>")
		}
		name := m.syms.Name(f.FunctorAtom())
		t, args := m.tb.Compound(name, int(f.FunctorArity()))
		for i := range args {
			args[i] = m.readTerm(m.peek(word.ZGlobal, w.Addr()+1+uint32(i)), depth-1)
		}
		return t
	default:
		return term.Atom("<" + w.String() + ">")
	}
}

func varName(w word.Word) string {
	return "_G" + itoa(uint64(w.Addr()))
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// peekDeref is deref without timing.
func (m *Machine) peekDeref(w word.Word) word.Word {
	for i := 0; w.IsRef() && i < 1_000_000; i++ {
		v := m.peek(w.Zone(), w.Addr())
		if v == w || !v.IsRef() {
			if v.IsRef() {
				return v
			}
			return v
		}
		w = v
	}
	return w
}

// QueryBindings reads the bindings of the named query variables from
// the query's environment after a successful halt.
func (m *Machine) QueryBindings(slots map[term.Var]int) map[term.Var]term.Term {
	out := make(map[term.Var]term.Term, len(slots))
	for v, y := range slots {
		w := m.peek(word.ZLocal, m.e+envHeader+uint32(y))
		out[v] = m.readTerm(w, 1_000_000)
	}
	return out
}

// DebugPeek exposes the untimed read path for tests and diagnostics.
func (m *Machine) DebugPeek(z word.Zone, a uint32) word.Word { return m.peek(z, a) }
