package machine

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/mmu"
	"repro/internal/trace"
	"repro/internal/word"
)

// This file is the traced twin of the fetch-execute loop. The design
// rule, inherited from the paper's hardware monitors, is that
// observation must not perturb the measurement:
//
//   - disabled (no hook installed), the hot loop in exec.go runs
//     untouched — steps() pays one nil-check per chunk, the inner
//     emission sites in runtime.go one never-taken branch each, and
//     nothing allocates (the nrev 0-allocs/op pin holds);
//   - enabled, every simulated counter — cycles, cache statistics,
//     MMU statistics — is byte-identical to an untraced run, because
//     events only *attribute* cycles already charged, never charge
//     any. internal/bench's conservation test pins both properties
//     over the benchmark suite.
//
// stepsTraced therefore duplicates steps() line for line rather than
// sharing an abstracted loop: an abstraction boundary here would cost
// the untraced path its inlining. Any change to steps() must be
// mirrored; the pinned fingerprints catch a divergence immediately.

// emit stamps the per-machine sequence number and delivers one event.
// Callers guard on m.hook != nil.
func (m *Machine) emit(ev trace.Event) {
	m.evSeq++
	ev.Seq = m.evSeq
	m.hook.Emit(ev)
}

// installTraceHooks routes the memory system's miss/trap callbacks
// into the event stream. Called once at construction, after the batch
// code load (whose page allocations are untimed and untraced).
func (m *Machine) installTraceHooks() {
	m.dcache.OnMiss = func(write bool, va uint32, z word.Zone) {
		var wbit uint64
		if write {
			wbit = 1
		}
		m.emit(trace.Event{Kind: trace.KDCacheMiss, P: m.traceP, Addr: va, Arg: wbit | uint64(z)<<1})
	}
	m.icache.OnMiss = func(va uint32) {
		m.emit(trace.Event{Kind: trace.KCCacheMiss, P: m.traceP, Addr: va})
	}
	onTrap := func(t *mmu.Trap) {
		m.emit(trace.Event{Kind: trace.KMMUTrap, P: m.traceP, Addr: t.Addr.Value(), Arg: uint64(t.Kind)})
	}
	onPage := func(va uint32) {
		m.emit(trace.Event{Kind: trace.KMMUPage, P: m.traceP, Addr: va})
	}
	m.dmmu.OnTrap, m.dmmu.OnPageFault = onTrap, onPage
	m.cmmu.OnTrap, m.cmmu.OnPageFault = onTrap, onPage
}

// Hook returns the machine's trace hook (nil when tracing is off).
func (m *Machine) Hook() trace.Hook { return m.hook }

// stepsTraced is steps() with event emission: per-instruction KInstr
// events carrying the instruction's exact cycle delta (fetch + execute
// + data traffic, with any garbage-collection cost subtracted out —
// the collector attributes it to KGCEnd instead), control-boundary
// events derived from the opcode, and a KFault event covering cycles
// charged by a fetch that faulted before execution.
func (m *Machine) stepsTraced(limit uint64) uint64 {
	steps := uint64(0)
	instrumented := m.prof != nil || m.hostProf != nil
	fuseOK := m.fused != nil && m.cfg.Trace == nil
	for !m.halted && m.err == nil && steps < limit {
		addr := m.p
		m.traceP = addr
		before := m.stats.Cycles
		gcBefore := m.gcStats.Cycles
		var in *kcmisa.Instr
		var nw int
		if int64(addr) < int64(len(m.pwidth)) {
			w := m.pwidth[addr]
			if w&pwFusedHead != 0 && fuseOK {
				// Mirror of the fused dispatch in steps(): the traced
				// twin of the handler emits the identical event stream.
				if f := m.fused[addr]; f != nil && steps+uint64(len(f.instrs)) <= limit {
					ex, fa := m.runFusedTraced(f, instrumented)
					steps += ex
					if m.err != nil && m.recoverHeap(fa) {
						m.p = fa
					}
					continue
				}
			}
			steps++
			in = &m.pdec[addr]
			if w != 0 {
				nw = int(w & pwWidthMask)
				if w&pwResident != 0 {
					m.icache.NoteReads(nw)
				} else {
					cost, allHit, err := m.icache.Touch(addr, nw)
					m.stats.Cycles += uint64(cost)
					if err != nil && m.err == nil {
						m.err = classifyTrap(err)
					}
					if allHit && m.pdecResidentOK {
						m.pwidth[addr] = w | pwResident
					}
				}
			} else {
				nw = kcmisa.DecodeInto(m.fetch, addr, in)
				if m.err == nil {
					m.pwidth[addr] = uint16(nw)
				}
			}
		} else {
			steps++
			nw = kcmisa.DecodeInto(m.fetch, addr, &m.scratch)
			in = &m.scratch
		}
		if m.err != nil {
			m.emit(trace.Event{Kind: trace.KFault, P: addr, Cycles: m.stats.Cycles - before})
			break
		}
		if m.cfg.Trace != nil {
			fmt.Fprintf(m.cfg.Trace, "%6d  %-40v %s\n", m.p, *in, m.DumpState())
		}
		m.stats.Instrs++
		m.p += uint32(nw)
		op := in.Op
		tgt := uint32(in.L)
		if instrumented {
			m.execInstrumented(addr, in)
		} else {
			m.exec(in)
		}
		m.emit(trace.Event{Kind: trace.KInstr, Op: op, P: addr,
			Cycles: m.stats.Cycles - before - (m.gcStats.Cycles - gcBefore)})
		if m.err != nil {
			// Mirror of the overflow-retry path in steps(): a heap
			// overflow may be cleared by collection, in which case the
			// faulting instruction re-runs (and re-emits its events).
			m.pendingCallSet = false
			if m.recoverHeap(addr) {
				m.p = addr
			}
			continue // a standing fault ends the loop; no boundary happened
		}
		if m.pendingCallSet {
			// A meta-call escape resolved its goal during exec; the
			// boundary event follows the owning instruction's KInstr.
			m.pendingCallSet = false
			m.emit(trace.Event{Kind: trace.KCall, Op: op, P: addr, Addr: m.pendingCall})
			continue
		}
		switch op {
		case kcmisa.Call:
			m.emit(trace.Event{Kind: trace.KCall, Op: op, P: addr, Addr: tgt})
		case kcmisa.Execute:
			m.emit(trace.Event{Kind: trace.KExecute, Op: op, P: addr, Addr: tgt})
		case kcmisa.Proceed:
			m.emit(trace.Event{Kind: trace.KProceed, Op: op, P: addr, Addr: m.p})
		case kcmisa.Cut, kcmisa.CutY:
			m.emit(trace.Event{Kind: trace.KCut, P: addr, Addr: m.b})
		case kcmisa.Halt:
			m.emit(trace.Event{Kind: trace.KHalt, P: addr})
		case kcmisa.HaltFail:
			m.emit(trace.Event{Kind: trace.KHalt, P: addr, Arg: 1})
		}
	}
	return steps
}
