package machine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/mmu"
	"repro/internal/word"
)

// Exported error taxonomy. Machine faults wrap exactly one of these
// sentinels so hosts dispatch with errors.Is/As instead of parsing
// messages; the message text still carries the P-relative detail the
// diagnostics always had. Loader and verifier rejections keep their
// own typed CodeError (see loader.go) — these sentinels cover the
// run-time faults of an executing machine.
var (
	// ErrStepBudget: the run exceeded its instruction budget. The
	// legacy Run path raises it as a hard fault at Config.MaxSteps; a
	// resumable session (RunFor) instead reports Suspended and never
	// raises it.
	ErrStepBudget = errors.New("step limit exceeded")

	// ErrCancelled: the context passed to RunFor was cancelled.
	ErrCancelled = errors.New("query cancelled")

	// ErrDeadline: the context passed to RunFor hit its deadline.
	ErrDeadline = errors.New("query deadline exceeded")

	// Zone-exhaustion faults, one per stack of the data space.
	ErrHeapOverflow   = errors.New("global stack overflow")
	ErrLocalOverflow  = errors.New("local stack overflow")
	ErrChoiceOverflow = errors.New("choice-point stack overflow")
	ErrTrailOverflow  = errors.New("trail overflow")

	// ErrMemoryFault: any other memory-management trap (type
	// violation, unmapped zone, physical exhaustion, ...).
	ErrMemoryFault = errors.New("memory fault")

	// ErrIllegalOpcode: the decoder produced an opcode the execution
	// unit does not implement.
	ErrIllegalOpcode = errors.New("illegal opcode")

	// ErrArithmetic: an is/2 or comparison escape saw an unbound or
	// non-numeric operand, or divided by zero.
	ErrArithmetic = errors.New("arithmetic error")

	// ErrExhausted: Redo was called on a machine whose search space is
	// already exhausted (it halted with failure).
	ErrExhausted = errors.New("no more solutions")

	// ErrNotResumable: a session operation (Redo) was applied to a
	// machine that is not in a resumable state.
	ErrNotResumable = errors.New("machine is not resumable")
)

// classifyTrap wraps a memory-management trap with the taxonomy
// sentinel matching its kind and zone: a bounds trap on a stack zone
// is that stack's overflow error, anything else is a memory fault.
// Non-trap errors pass through untouched.
func classifyTrap(err error) error {
	var t *mmu.Trap
	if !errors.As(err, &t) {
		return err
	}
	sentinel := ErrMemoryFault
	if t.Kind == mmu.TrapBounds {
		switch t.Addr.Zone() {
		case word.ZGlobal:
			sentinel = ErrHeapOverflow
		case word.ZLocal:
			sentinel = ErrLocalOverflow
		case word.ZChoice:
			sentinel = ErrChoiceOverflow
		case word.ZTrail:
			sentinel = ErrTrailOverflow
		}
	}
	return fmt.Errorf("%w: %w", sentinel, err)
}

// ctxError converts a context cancellation cause into the taxonomy:
// deadline expiry maps to ErrDeadline, everything else to
// ErrCancelled. The original context error stays in the chain so
// errors.Is(err, context.Canceled) keeps working too.
func ctxError(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("machine: %w: %w", ErrDeadline, cause)
	}
	return fmt.Errorf("machine: %w: %w", ErrCancelled, cause)
}
