package machine

import (
	"fmt"
	"math"
	"time"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/trace"
	"repro/internal/word"
)

// Run boots the machine and executes from the given entry address
// until Halt, HaltFail, a trap, or the step bound. Exceeding
// Config.MaxSteps is a hard fault on this legacy path (wrapping
// ErrStepBudget); Begin/RunFor is the resumable alternative.
func (m *Machine) Run(entry uint32) (Result, error) {
	m.bootstrap(entry)
	if m.steps(m.cfg.MaxSteps) >= m.cfg.MaxSteps && !m.halted && m.err == nil {
		m.errw(ErrStepBudget, "%d steps", m.cfg.MaxSteps)
	}
	return m.result(), m.err
}

// steps is the fetch-execute loop: it executes at most limit
// instructions, stopping early on halt or machine fault, and returns
// the number executed. It is the hot path shared by Run and RunFor —
// no allocation, no clock reads, no context polls happen here.
//
// The loop dispatches through the predecoded code cache (see
// predecode.go): on a predecode hit it replays the instruction's
// code-cache reads word for word — keeping the simulated cycle and
// cache accounting identical to a decode — and executes the cached
// kcmisa.Instr in place, with zero host allocation per step.
func (m *Machine) steps(limit uint64) uint64 {
	if m.hook != nil {
		// One branch per chunk routes to the traced twin of this loop
		// (traced.go); the plain path below stays allocation-free and
		// emission-free.
		return m.stepsTraced(limit)
	}
	steps := uint64(0)
	instrumented := m.prof != nil || m.hostProf != nil
	fuseOK := m.fused != nil && m.cfg.Trace == nil
	for !m.halted && m.err == nil && steps < limit {
		addr := m.p
		var in *kcmisa.Instr
		var nw int
		if int64(addr) < int64(len(m.pwidth)) {
			w := m.pwidth[addr]
			if w&pwFusedHead != 0 && fuseOK {
				// Fused-handler dispatch (fuse.go): a licensed run
				// headed here replays whole, if it fits the remaining
				// budget — otherwise the head instruction dispatches
				// alone below and the suspend point matches an unfused
				// run's exactly. The pwidth flag keeps the probe off
				// the per-step path: the table itself is only touched
				// on marked heads.
				if f := m.fused[addr]; f != nil && steps+uint64(len(f.instrs)) <= limit {
					ex, fa := m.runFused(f, instrumented)
					steps += ex
					if m.err != nil && m.recoverHeap(fa) {
						m.p = fa
					}
					continue
				}
			}
			steps++
			in = &m.pdec[addr]
			if w != 0 {
				// Predecoded hit: touch the same code-cache words the
				// decoder would fetch, in the same order. Once every
				// word has been seen resident (and no conflict can
				// evict it), the replay collapses to a read count.
				nw = int(w & pwWidthMask)
				if w&pwResident != 0 {
					m.icache.NoteReads(nw)
				} else {
					cost, allHit, err := m.icache.Touch(addr, nw)
					m.stats.Cycles += uint64(cost)
					if err != nil && m.err == nil {
						m.err = classifyTrap(err)
					}
					if allHit && m.pdecResidentOK {
						m.pwidth[addr] = w | pwResident
					}
				}
			} else {
				nw = kcmisa.DecodeInto(m.fetch, addr, in)
				if m.err == nil {
					m.pwidth[addr] = uint16(nw)
				}
			}
		} else {
			// Beyond the predecoded range (executing past CodeTop):
			// decode into the scratch slot without caching.
			steps++
			nw = kcmisa.DecodeInto(m.fetch, addr, &m.scratch)
			in = &m.scratch
		}
		if m.err != nil {
			break
		}
		if m.cfg.Trace != nil {
			fmt.Fprintf(m.cfg.Trace, "%6d  %-40v %s\n", m.p, *in, m.DumpState())
		}
		m.stats.Instrs++
		m.p += uint32(nw)
		if instrumented {
			m.execInstrumented(addr, in)
		} else {
			m.exec(in)
		}
		if m.err != nil && m.recoverHeap(addr) {
			// A heap overflow cleared by collection: re-run the faulting
			// instruction against the compacted heap. Every
			// heap-allocating instruction rolls back to a restartable
			// state on a failed push, so the retry re-executes it whole.
			m.p = addr
		}
	}
	return steps
}

// result snapshots the run outcome: the counters the evaluation
// section reports plus the memory-system statistics.
func (m *Machine) result() Result {
	return Result{
		Success: m.halted && !m.failed,
		Stats:   m.stats,
		DCache:  m.dcache.Stats(),
		CCache:  m.icache.Stats(),
		Mem:     m.phys.Stats(),
		DataMMU: m.dmmu.Stats(),
		Profile: m.Profile(),
		GC:      m.gcStats,
		Fusion:  m.FusionStats(),
	}
}

func (m *Machine) bootstrap(entry uint32) {
	if m.fusionOn && m.fusedStale {
		// (Re)build the fused-handler table before execution starts:
		// untimed, host-side, and a no-op on every later boot of an
		// unchanged image (the stale flag is only raised by code-space
		// writes). See fuse.go.
		m.fuseInstall()
	}
	hooked := m.hook != nil
	var before uint64
	if hooked {
		m.traceP = entry
		m.pendingCallSet = false
		before = m.stats.Cycles
	}
	m.stats.NsPerCycle = m.cfg.CycleNs
	if m.stats.NsPerCycle == 0 {
		m.stats.NsPerCycle = 80
	}
	// Discard any execution state a previous query left behind, so a
	// reused machine boots exactly like a fresh one (the shallow flag
	// in particular must not leak: a stale SF would redirect the first
	// failure to a stale shadow alternative).
	m.halted, m.failed = false, false
	m.sf, m.cf = false, false
	m.mode = false
	m.s = 0
	// Argument registers are garbage-collection roots (gc.Roots takes
	// the whole file), so values a previous query left in them would
	// keep dead heap cells alive across Reset — a collection in the new
	// query would then free less, move H differently, and diverge from
	// a fresh machine's counters. Clear them, and the shallow-mode
	// shadow registers with them.
	for i := range m.regs {
		m.regs[i] = 0
	}
	m.shadowH, m.shadowTR, m.shadowNext = 0, 0, 0
	m.pendingCallSet = false
	m.h = m.cfg.GlobalBase
	m.tr = m.cfg.TrailBase
	m.e = 0
	m.b = 0
	m.b0 = 0
	m.cp = 0
	m.bLTOP = m.cfg.LocalBase
	m.hb = m.h
	// Bottom choice point: its alternative is the halt_fail word at
	// code address 0, so an exhausted search stops the machine.
	m.pushCP(0, 0, m.h, m.tr)
	m.b0 = m.b
	m.p = entry
	// Disarm the overflow-retry progress guard: Instrs can restart
	// from zero across sessions, and no instruction of this session
	// has been granted a retry yet.
	m.gcRetryAddr, m.gcRetryInstr = 0, ^uint64(0)
	if hooked {
		m.emit(trace.Event{Kind: trace.KBoot, P: entry, Addr: m.b, Cycles: m.stats.Cycles - before})
	}
}

// execInstrumented wraps exec with the optional monitors: the
// per-predicate cycle profiler and the per-opcode host-time profiler.
// It is kept out of the plain path so an unmonitored run pays one
// branch, not two time.Now calls, per step.
func (m *Machine) execInstrumented(addr uint32, in *kcmisa.Instr) {
	var t0 time.Time
	if m.hostProf != nil {
		t0 = time.Now()
	}
	before := m.stats.Cycles
	gcBefore := m.gcStats.Cycles
	op := in.Op
	m.exec(in)
	if m.prof != nil {
		// A collection triggered inside the instruction (the threshold
		// fires at call boundaries) is not the predicate's own work;
		// its cycles stay visible in GCStats.
		m.prof.account(addr, m.stats.Cycles-before-(m.gcStats.Cycles-gcBefore))
	}
	if m.hostProf != nil {
		m.hostProf.account(op, time.Since(t0))
	}
}

// unifyNilInstr is the canonical unify_nil expansion; exec never
// mutates its operand, so one shared instance serves every step.
var unifyNilInstr = kcmisa.Instr{Op: kcmisa.UnifyConst, K: word.Nil()}

// exec dispatches one decoded instruction. The pointer is into the
// predecoded code cache (or the scratch slot); exec must not mutate
// or retain it.
func (m *Machine) exec(in *kcmisa.Instr) {
	if in.Mark {
		m.stats.Inferences++
	}
	c := &m.costs
	switch in.Op {
	case kcmisa.Noop:
		m.cyc(1)

	// ---- control ----
	case kcmisa.Call:
		m.stats.Inferences++
		m.cyc(c.Call)
		m.cp = m.p
		m.b0 = m.b
		m.sf = false
		m.p = uint32(in.L)
		m.maybeGC()
	case kcmisa.Execute:
		m.stats.Inferences++
		m.cyc(c.Execute)
		m.b0 = m.b
		m.sf = false
		m.p = uint32(in.L)
		m.maybeGC()
	case kcmisa.Proceed:
		m.cyc(c.Proceed)
		m.p = m.cp
	case kcmisa.Jump:
		m.cyc(c.Execute)
		m.p = uint32(in.L)
	case kcmisa.Fail:
		m.fail()
	case kcmisa.Halt:
		m.cyc(c.Halt)
		m.halted = true
	case kcmisa.HaltFail:
		m.cyc(c.Halt)
		m.halted = true
		m.failed = true

	case kcmisa.Allocate:
		m.cyc(c.Allocate)
		m.stats.EnvAllocs++
		newE := m.envTop()
		ok := m.wr(word.ZLocal, newE, ptrOrZero(word.TEnvPtr, word.ZLocal, m.e)) &&
			m.wr(word.ZLocal, newE+1, word.CodePtr(m.cp)) &&
			m.wr(word.ZLocal, newE+2, word.Make(word.TImm, word.ZNone, uint32(in.N)))
		if !ok {
			return
		}
		m.e = newE
	case kcmisa.Deallocate:
		m.cyc(c.Deallocate)
		cpw, ok1 := m.rd(word.ZLocal, m.e+1)
		cew, ok2 := m.rd(word.ZLocal, m.e)
		if !(ok1 && ok2) {
			return
		}
		m.cp = cpw.Value()
		m.e = cew.Value()

	// ---- alternatives (shallow backtracking) ----
	case kcmisa.TryMeElse:
		m.enterTry(in.N, uint32(in.L), 0, true)
	case kcmisa.Try:
		m.enterTry(in.N, m.p, uint32(in.L), true)
	case kcmisa.RetryMeElse:
		m.enterTry(in.N, uint32(in.L), 0, false)
	case kcmisa.Retry:
		m.enterTry(in.N, m.p, uint32(in.L), false)
	case kcmisa.TrustMe:
		m.enterTrust(0)
	case kcmisa.Trust:
		m.enterTrust(uint32(in.L))

	case kcmisa.Neck:
		if !m.sf {
			m.stats.NeckDet++
			m.cyc(c.NeckDet)
			return
		}
		m.sf = false
		if m.cf {
			m.stats.NeckUpdates++
			m.cyc(2)
			m.wr(word.ZChoice, m.b+cpNext, word.CodePtr(uint32(m.shadowNext)))
			return
		}
		m.cyc(c.NeckCP)
		m.pushCP(in.N, uint32(m.shadowNext), m.shadowH, m.shadowTR)

	case kcmisa.Cut:
		m.cyc(c.Cut)
		m.b = m.b0
		m.reloadB()
		m.sf = false
		m.cf = false
		m.tidyTrailAfterCut()
	case kcmisa.SaveB0:
		m.cyc(c.Move)
		m.writeY(in.N, ptrOrZero(word.TChpPtr, word.ZChoice, m.b0))
	case kcmisa.CutY:
		m.cyc(c.Cut)
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		m.b = w.Value()
		m.reloadB()
		m.sf = false
		m.cf = false
		m.tidyTrailAfterCut()

	// ---- switches ----
	case kcmisa.SwitchOnTerm:
		m.cyc(c.SwitchTerm)
		v := m.deref(m.regs[1])
		if m.err != nil {
			return
		}
		var l int
		switch v.Type() {
		case word.TRef:
			l = in.SwT.Var
		case word.TList:
			l = in.SwT.List
		case word.TStruct:
			l = in.SwT.Struct
		default:
			l = in.SwT.Const
		}
		m.branch(l)
	case kcmisa.SwitchOnConst:
		m.cyc(c.SwitchTable)
		v := m.deref(m.regs[1])
		if m.err != nil {
			return
		}
		for _, e := range in.Sw {
			if sameConst(e.Key, v) {
				m.branch(e.L)
				return
			}
		}
		m.branch(in.L)
	case kcmisa.SwitchOnStruct:
		m.cyc(c.SwitchTable)
		v := m.deref(m.regs[1])
		if m.err != nil {
			return
		}
		if v.Type() != word.TStruct {
			m.fail()
			return
		}
		f, ok := m.rd(word.ZGlobal, v.Addr())
		if !ok {
			return
		}
		for _, e := range in.Sw {
			if sameConst(e.Key, f) {
				m.branch(e.L)
				return
			}
		}
		m.branch(in.L)

	// ---- get ----
	case kcmisa.GetVarX:
		m.cyc(c.Move)
		m.regs[in.R1] = m.regs[in.R2]
	case kcmisa.GetValX:
		u, ok := m.unify(m.regs[in.R1], m.regs[in.R2])
		if !ok {
			return
		}
		if !u {
			m.fail()
		}
	case kcmisa.GetConst:
		m.cyc(c.GetConst)
		m.getConstant(in.K, m.regs[in.R2])
	case kcmisa.GetNil:
		m.cyc(c.GetConst)
		m.getConstant(word.Nil(), m.regs[in.R2])
	case kcmisa.GetList:
		v := m.deref(m.regs[in.R2])
		if m.err != nil {
			return
		}
		switch v.Type() {
		case word.TList:
			m.cyc(c.GetListRead)
			m.s = v.Addr()
			m.mode = false
		case word.TRef:
			m.cyc(c.GetListWrite)
			if !m.bind(v, word.ListPtr(m.h)) {
				return
			}
			m.mode = true
		default:
			m.cyc(c.GetListRead)
			m.fail()
		}
	case kcmisa.GetStruct:
		v := m.deref(m.regs[in.R2])
		if m.err != nil {
			return
		}
		switch v.Type() {
		case word.TStruct:
			m.cyc(c.GetStructRead)
			f, ok := m.rd(word.ZGlobal, v.Addr())
			if !ok {
				return
			}
			if !sameConst(f, in.K) {
				m.fail()
				return
			}
			m.s = v.Addr() + 1
			m.mode = false
		case word.TRef:
			m.cyc(c.GetStructWrite)
			trBefore := m.tr
			if !m.bind(v, word.StructPtr(m.h)) {
				return
			}
			if !m.heapPush(in.K) {
				// The functor push overflowed after the variable was
				// already bound to the (unpushed) structure. Undo the
				// binding untimed so an overflow-retry re-executes the
				// instruction from a clean state — otherwise the retry
				// would take the read path into a garbage functor.
				m.poke(v.Zone(), v.Addr(), word.Ref(v.Zone(), v.Addr()))
				m.tr = trBefore
				return
			}
			m.mode = true
		default:
			m.cyc(c.GetStructRead)
			m.fail()
		}

	// ---- unify ----
	case kcmisa.UnifyVarX:
		if m.mode {
			m.cyc(c.UnifyWrite)
			r, ok := m.newHeapVar()
			if !ok {
				return
			}
			m.regs[in.R1] = r
		} else {
			m.cyc(c.UnifyRead)
			w, ok := m.rd(word.ZGlobal, m.s)
			if !ok {
				return
			}
			m.regs[in.R1] = m.canonCell(w, m.s)
			m.s++
		}
	case kcmisa.UnifyVarY:
		if m.mode {
			m.cyc(c.UnifyWrite)
			r, ok := m.newHeapVar()
			if !ok {
				return
			}
			m.writeY(in.N, r)
		} else {
			m.cyc(c.UnifyRead)
			w, ok := m.rd(word.ZGlobal, m.s)
			if !ok {
				return
			}
			m.writeY(in.N, m.canonCell(w, m.s))
			m.s++
		}
	case kcmisa.UnifyValX:
		m.unifyValue(m.regs[in.R1], false)
	case kcmisa.UnifyLocX:
		v := m.unifyValue(m.regs[in.R1], true)
		if v != 0 {
			m.regs[in.R1] = v
		}
	case kcmisa.UnifyValY:
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		m.unifyValue(w, false)
	case kcmisa.UnifyLocY:
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		m.unifyValue(w, true)
	case kcmisa.UnifyConst:
		if m.mode {
			m.cyc(c.UnifyWrite)
			m.heapPush(in.K)
		} else {
			m.cyc(c.UnifyRead)
			w, ok := m.rd(word.ZGlobal, m.s)
			if !ok {
				return
			}
			m.s++
			m.getConstant(in.K, m.canonCell(w, m.s-1))
		}
	case kcmisa.UnifyNil:
		m.exec(&unifyNilInstr)
	case kcmisa.UnifyList:
		// The current subterm slot holds the next cell of a list
		// spine: continue unification there without a temporary.
		if m.mode {
			m.cyc(c.UnifyWrite)
			m.heapPush(word.ListPtr(m.h + 1))
		} else {
			m.cyc(c.UnifyRead)
			w, ok := m.rd(word.ZGlobal, m.s)
			if !ok {
				return
			}
			m.s++
			v := m.deref(w)
			if m.err != nil {
				return
			}
			switch v.Type() {
			case word.TList:
				m.s = v.Addr()
			case word.TRef:
				if !m.bind(v, word.ListPtr(m.h)) {
					return
				}
				m.mode = true
			default:
				m.fail()
			}
		}
	case kcmisa.UnifyVoid:
		if m.mode {
			m.cyc(c.UnifyWrite * in.N)
			h0 := m.h
			for i := 0; i < in.N; i++ {
				if _, ok := m.newHeapVar(); !ok {
					// Roll back the cells already pushed: an
					// overflow-retry re-runs the whole instruction, and
					// keeping a partial prefix would shift the remaining
					// cells of the enclosing block out of position.
					m.h = h0
					return
				}
			}
		} else {
			m.cyc(c.UnifyRead)
			m.s += uint32(in.N)
		}

	// ---- put ----
	case kcmisa.PutVarX:
		m.cyc(c.PutVar)
		r, ok := m.newHeapVar()
		if !ok {
			return
		}
		m.regs[in.R1] = r
		m.regs[in.R2] = r
	case kcmisa.PutVarY:
		m.cyc(c.PutVar)
		a := m.yAddr(in.N)
		r := word.Ref(word.ZLocal, a.Value())
		if !m.writeData(a, r) {
			return
		}
		m.regs[in.R2] = r
	case kcmisa.PutValX:
		m.cyc(c.Move)
		m.regs[in.R2] = m.regs[in.R1]
	case kcmisa.PutValY:
		m.cyc(c.Move)
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		m.regs[in.R2] = w
	case kcmisa.PutUnsafeY:
		m.cyc(c.PutUnsafe)
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		v := m.deref(w)
		if m.err != nil {
			return
		}
		if v.IsRef() && v.Zone() == word.ZLocal {
			r, ok := m.newHeapVar()
			if !ok {
				return
			}
			if !m.bind(v, r) {
				return
			}
			v = r
		}
		m.regs[in.R2] = v
	case kcmisa.PutConst:
		m.cyc(c.Move)
		m.regs[in.R2] = in.K
	case kcmisa.PutNil:
		m.cyc(c.Move)
		m.regs[in.R2] = word.Nil()
	case kcmisa.PutList:
		m.cyc(c.Move)
		m.regs[in.R2] = word.ListPtr(m.h)
		m.mode = true
	case kcmisa.PutStruct:
		m.cyc(c.Move)
		if !m.heapPush(in.K) {
			return
		}
		m.regs[in.R2] = word.StructPtr(m.h - 1)
		m.mode = true
	case kcmisa.MoveXY:
		m.cyc(c.Move)
		m.writeY(in.N, m.regs[in.R1])
	case kcmisa.MoveYX:
		m.cyc(c.Move)
		w, ok := m.readY(in.N)
		if !ok {
			return
		}
		m.regs[in.R1] = w

	// ---- inline arithmetic and tests ----
	case kcmisa.LoadConst:
		m.cyc(c.Move)
		m.regs[in.R1] = in.K
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod,
		kcmisa.Rem, kcmisa.Band, kcmisa.Bor, kcmisa.Bxor, kcmisa.Shl,
		kcmisa.Shr, kcmisa.MinOp, kcmisa.MaxOp:
		m.arith(in)
	case kcmisa.Abs:
		a, ok := m.numArg(m.regs[in.R1])
		if !ok {
			return
		}
		m.cyc(c.ArithOp)
		if a.isFloat {
			f := a.f
			if f < 0 {
				f = -f
			}
			m.regs[in.R3] = word.FromFloat(math.Float32bits(f))
		} else {
			v := a.i
			if v < 0 {
				v = -v
			}
			m.regs[in.R3] = word.FromInt(v)
		}
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe, kcmisa.CmpEq, kcmisa.CmpNe:
		m.compare(in)
	case kcmisa.TestVar, kcmisa.TestNonvar, kcmisa.TestAtom, kcmisa.TestInteger, kcmisa.TestAtomic:
		m.typeTest(in)
	case kcmisa.IdentEq:
		eq, ok := m.identical(m.regs[in.R1], m.regs[in.R2])
		if ok && !eq {
			m.fail()
		}
	case kcmisa.IdentNe:
		eq, ok := m.identical(m.regs[in.R1], m.regs[in.R2])
		if ok && eq {
			m.fail()
		}
	case kcmisa.UnifyRegs:
		u, ok := m.unify(m.regs[in.R1], m.regs[in.R2])
		if ok && !u {
			m.fail()
		}

	case kcmisa.Builtin:
		m.stats.Builtins++
		m.stats.Inferences++
		m.cyc(c.BuiltinEsc)
		m.builtin(in.N)

	default:
		m.errw(ErrIllegalOpcode, "%v", in.Op)
	}
}

// canonCell turns a self-reference read from the heap into a
// reference word (it already is one; this keeps the invariant
// explicit for cells read through S).
func (m *Machine) canonCell(w word.Word, addr uint32) word.Word {
	_ = addr
	return w
}

// branch jumps to a resolved label or fails.
func (m *Machine) branch(l int) {
	if l == kcmisa.FailLabel {
		m.fail()
		return
	}
	m.p = uint32(l)
}

// enterTry implements try_me_else/try and retry_me_else/retry. next
// is the alternative address; jumpTo is non-zero for the out-of-line
// forms. first marks try (vs retry).
func (m *Machine) enterTry(arity int, next uint32, jumpTo uint32, first bool) {
	if m.shallow {
		m.stats.ShallowTries++
		m.cyc(m.costs.TryShallow)
		m.shadowH = m.h
		m.shadowTR = m.tr
		m.shadowNext = int(next)
		m.hb = m.h
		m.sf = true
		if first {
			m.cf = false
		}
	} else {
		// Standard WAM: materialise or retarget the choice point now.
		if first {
			m.cyc(m.costs.NeckCP)
			m.pushCP(arity, next, m.h, m.tr)
		} else {
			m.cyc(2)
			m.wr(word.ZChoice, m.b+cpNext, word.CodePtr(next))
		}
	}
	if jumpTo != 0 {
		m.p = jumpTo
	}
}

// enterTrust implements trust_me/trust.
func (m *Machine) enterTrust(jumpTo uint32) {
	m.cyc(m.costs.TrustOp)
	if m.shallow {
		if m.cf {
			m.popCP()
			m.cf = false
		} else {
			m.reloadB()
		}
		m.sf = false
	} else {
		m.popCP()
	}
	if jumpTo != 0 {
		m.p = jumpTo
	}
}

// getConstant unifies a register value with a constant.
func (m *Machine) getConstant(k, reg word.Word) {
	v := m.deref(reg)
	if m.err != nil {
		return
	}
	if v.IsRef() {
		m.bind(v, k)
		return
	}
	if !sameConst(v, k) {
		m.fail()
	}
}

// unifyValue implements unify_value / unify_local_value. In write
// mode the local variant dereferences and globalises an unbound local
// variable; the returned word (if non-zero) is the globalised value
// for updating the register cache.
func (m *Machine) unifyValue(w word.Word, local bool) word.Word {
	c := &m.costs
	if m.mode {
		m.cyc(c.UnifyWrite)
		if local {
			v := m.deref(w)
			if m.err != nil {
				return 0
			}
			if v.IsRef() && v.Zone() == word.ZLocal {
				// Globalise: the pushed heap cell becomes the variable.
				r, ok := m.newHeapVar()
				if !ok {
					return 0
				}
				if !m.bind(v, r) {
					return 0
				}
				return r
			}
			m.heapPush(v)
			return 0
		}
		m.heapPush(w)
		return 0
	}
	m.cyc(c.UnifyRead)
	sw, ok := m.rd(word.ZGlobal, m.s)
	if !ok {
		return 0
	}
	m.s++
	u, ok := m.unify(w, sw)
	if ok && !u {
		m.fail()
	}
	return 0
}

// ---- arithmetic ----

type number struct {
	isFloat bool
	i       int32
	f       float32
}

func (m *Machine) numArg(w word.Word) (number, bool) {
	v := m.deref(w)
	if m.err != nil {
		return number{}, false
	}
	switch v.Type() {
	case word.TInt:
		return number{i: v.Int()}, true
	case word.TFloat:
		return number{isFloat: true, f: math.Float32frombits(v.Value())}, true
	case word.TRef:
		m.errw(ErrArithmetic, "unbound operand")
		return number{}, false
	default:
		m.errw(ErrArithmetic, "non-numeric operand %v", v)
		return number{}, false
	}
}

func (m *Machine) arith(in *kcmisa.Instr) {
	a, ok := m.numArg(m.regs[in.R1])
	if !ok {
		return
	}
	b, ok := m.numArg(m.regs[in.R2])
	if !ok {
		return
	}
	c := &m.costs
	switch in.Op {
	case kcmisa.Mul:
		m.cyc(c.MulOp)
	case kcmisa.Div, kcmisa.Mod, kcmisa.Rem:
		m.cyc(c.DivOp)
	default:
		m.cyc(c.ArithOp)
	}
	if a.isFloat || b.isFloat {
		af, bf := a.f, b.f
		if !a.isFloat {
			af = float32(a.i)
		}
		if !b.isFloat {
			bf = float32(b.i)
		}
		var r float32
		switch in.Op {
		case kcmisa.Add:
			r = af + bf
		case kcmisa.Sub:
			r = af - bf
		case kcmisa.Mul:
			r = af * bf
		case kcmisa.Div:
			if bf == 0 {
				m.errw(ErrArithmetic, "float division by zero")
				return
			}
			r = af / bf
		case kcmisa.MinOp:
			r = af
			if bf < af {
				r = bf
			}
		case kcmisa.MaxOp:
			r = af
			if bf > af {
				r = bf
			}
		default:
			m.errw(ErrArithmetic, "%v on floats", in.Op)
			return
		}
		m.regs[in.R3] = word.FromFloat(math.Float32bits(r))
		return
	}
	ai, bi := a.i, b.i
	var r int32
	switch in.Op {
	case kcmisa.Add:
		r = ai + bi
	case kcmisa.Sub:
		r = ai - bi
	case kcmisa.Mul:
		r = ai * bi
	case kcmisa.Div:
		if bi == 0 {
			m.errw(ErrArithmetic, "integer division by zero")
			return
		}
		r = ai / bi
	case kcmisa.Mod:
		if bi == 0 {
			m.errw(ErrArithmetic, "mod by zero")
			return
		}
		r = ai % bi
		// Prolog mod takes the sign of the divisor.
		if r != 0 && (r < 0) != (bi < 0) {
			r += bi
		}
	case kcmisa.Rem:
		if bi == 0 {
			m.errw(ErrArithmetic, "rem by zero")
			return
		}
		r = ai % bi
	case kcmisa.Band:
		r = ai & bi
	case kcmisa.Bor:
		r = ai | bi
	case kcmisa.Bxor:
		r = ai ^ bi
	case kcmisa.Shl:
		r = ai << (uint32(bi) & 31)
	case kcmisa.Shr:
		r = ai >> (uint32(bi) & 31)
	case kcmisa.MinOp:
		r = ai
		if bi < ai {
			r = bi
		}
	case kcmisa.MaxOp:
		r = ai
		if bi > ai {
			r = bi
		}
	}
	m.regs[in.R3] = word.FromInt(r)
}

func (m *Machine) compare(in *kcmisa.Instr) {
	a, ok := m.numArg(m.regs[in.R1])
	if !ok {
		return
	}
	b, ok := m.numArg(m.regs[in.R2])
	if !ok {
		return
	}
	var cmp int
	if a.isFloat || b.isFloat {
		af, bf := a.f, b.f
		if !a.isFloat {
			af = float32(a.i)
		}
		if !b.isFloat {
			bf = float32(b.i)
		}
		switch {
		case af < bf:
			cmp = -1
		case af > bf:
			cmp = 1
		}
	} else {
		switch {
		case a.i < b.i:
			cmp = -1
		case a.i > b.i:
			cmp = 1
		}
	}
	var hold bool
	switch in.Op {
	case kcmisa.CmpLt:
		hold = cmp < 0
	case kcmisa.CmpLe:
		hold = cmp <= 0
	case kcmisa.CmpGt:
		hold = cmp > 0
	case kcmisa.CmpGe:
		hold = cmp >= 0
	case kcmisa.CmpEq:
		hold = cmp == 0
	case kcmisa.CmpNe:
		hold = cmp != 0
	}
	if hold {
		m.cyc(m.costs.Compare)
		return
	}
	m.cyc(m.costs.Compare + m.costs.CompareTaken)
	m.fail()
}

func (m *Machine) typeTest(in *kcmisa.Instr) {
	m.cyc(m.costs.TestOp)
	v := m.deref(m.regs[in.R1])
	if m.err != nil {
		return
	}
	var hold bool
	switch in.Op {
	case kcmisa.TestVar:
		hold = v.IsRef()
	case kcmisa.TestNonvar:
		hold = !v.IsRef()
	case kcmisa.TestAtom:
		hold = v.Type() == word.TAtom || v.Type() == word.TNil
	case kcmisa.TestInteger:
		hold = v.Type() == word.TInt
	case kcmisa.TestAtomic:
		switch v.Type() {
		case word.TAtom, word.TNil, word.TInt, word.TFloat:
			hold = true
		}
	}
	if !hold {
		m.cyc(m.costs.CompareTaken)
		m.fail()
	}
}

// RegWord exposes a register (diagnostics and tests).
func (m *Machine) RegWord(i int) word.Word { return m.regs[i] }

// DumpState formats the machine registers (debugging aid).
func (m *Machine) DumpState() string {
	return fmt.Sprintf("P=%d CP=%d E=%#x B=%#x H=%#x HB=%#x TR=%#x S=%#x mode=%v SF=%v CF=%v",
		m.p, m.cp, m.e, m.b, m.h, m.hb, m.tr, m.s, m.mode, m.sf, m.cf)
}

// Syms is defined in machine.go; term import is used by readback.go.
var _ = term.Var("")
