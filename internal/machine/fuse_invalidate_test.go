package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/term"
)

// TestFusedInvalidationOnPatch drives the write-through coherence rule
// of the fusion tier: PatchCode on a hot machine must drop every fused
// handler overlapping the written range (fuse.go invalidateFused), so
// a patched predicate can never execute through a handler compiled
// from the old code words. The next bootstrap re-verifies the image
// and re-installs handlers for the new code.
func TestFusedInvalidationOnPatch(t *testing.T) {
	const baseSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
k(X) :- app([a,b,c], [d], X).
pad1(p1). pad2(p2). pad3(p3). pad4(p4).
pad5(X) :- pad1(X). pad6(X) :- pad2(X).
pad7(X) :- pad5(X), pad6(X).
`
	const replSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
k(X) :- app([z], [w], X).
`
	c := compiler.New(nil)
	base := compileUnit(t, c, baseSrc, "k(X).")
	im, err := asm.Link(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	if err != nil || !res.Success {
		t.Fatalf("base run: %v %v", err, res.Success)
	}
	if got := m.QueryBindings(im.QueryVars)[term.Var("X")]; got.String() != "[a,b,c,d]" {
		t.Fatalf("base X = %v, want [a,b,c,d]", got)
	}
	runsBefore := m.FusedRuns()
	if runsBefore == 0 {
		t.Fatal("no fused handlers installed after the base run")
	}

	mod := compileUnit(t, c, replSrc, "k(X).")
	im2, err := asm.LinkAt(mod, 0, im.Entries)
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(len(im2.Code))
	if n > m.CodeTop() {
		t.Fatalf("replacement (%d words) larger than base image (%d)", n, m.CodeTop())
	}
	if err := m.PatchCode(0, im2.Code); err != nil {
		t.Fatal(err)
	}
	// Handlers overlapping the written prefix must be gone right away,
	// mid-session — before any re-verification has a chance to run.
	if runs := m.FusedRuns(); runs >= runsBefore {
		t.Fatalf("fused handlers not invalidated by PatchCode: %d before, %d after", runsBefore, runs)
	}

	entry2, ok := im2.Entry(compiler.QueryPI)
	if !ok {
		t.Fatal("no query entry in replacement unit")
	}
	m.ResetStats()
	res2, err := m.Run(entry2)
	if err != nil || !res2.Success {
		t.Fatalf("patched run: %v %v", err, res2.Success)
	}
	if got := m.QueryBindings(im2.QueryVars)[term.Var("X")]; got.String() != "[z,w]" {
		t.Fatalf("patched X = %v, want [z,w]", got)
	}
	// The patch marked the table stale; the patched run's bootstrap
	// re-verified the new image and re-installed handlers for it.
	if m.FusedRuns() == 0 {
		t.Fatal("no fused handlers re-installed after the patched run")
	}
}
