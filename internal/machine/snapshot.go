// Machine snapshot and restore: the producer and consumer of
// internal/snapshot blobs. Capture serializes everything the
// simulation can observe — registers, the live stack ranges, the
// entire memory system (cache residency and dirtiness, page tables,
// the frame-allocation frontier, the DRAM open row) and every
// statistics counter — so that a Restore onto a compatible machine
// continues byte-identically: same solutions, same cycle counts, same
// cache statistics.
//
// Compatibility is gated twice, before any mutation: a configuration
// fingerprint (zone geometry, cost model, cache/GC settings — anything
// that changes simulated behaviour) and a content hash of the code
// image up to the code frontier. The code itself is never serialized;
// the restoring side is expected to have reconstructed it (same
// program compile, same tenant delta) and the hash proves it did.
//
// Host-side derived state — predecode residency, fused-handler
// residency caches, analyzer facts, the pushdown list — is NOT
// serialized. Restore re-derives or invalidates it: predecode
// residency flags and fused-run residency caches are cleared (they
// are claims about the target's code cache, which Restore just
// replaced), the pdl is emptied (unify resets it on entry, so its
// content between instructions is dead), and facts stay as the
// target's own (identical code yields identical facts).
package machine

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/kcmisa"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/word"
)

// Snapshot sentinel errors.
var (
	// ErrNotCapturable reports a machine whose state cannot be
	// captured: it holds a pending fault, so its registers do not
	// describe a resumable point.
	ErrNotCapturable = errors.New("machine: state not capturable")
	// ErrImageMismatch reports a snapshot taken against a different
	// code image (or code frontier) than the restore target's.
	ErrImageMismatch = errors.New("machine: snapshot image mismatch")
	// ErrConfigMismatch reports a snapshot taken under a different
	// machine configuration (zone geometry, cost model, cache or GC
	// settings) — restoring it could not be cycle-accurate.
	ErrConfigMismatch = errors.New("machine: snapshot configuration mismatch")
	// ErrBadSnapshot reports a structurally valid blob whose state is
	// inconsistent with the machine it is being restored onto (ranges
	// outside zones, wrong register count, uncovered code pages).
	ErrBadSnapshot = errors.New("machine: snapshot state inconsistent")
)

// ImageHash is the content hash of the machine's code image up to the
// current code frontier; snapshots embed it and Restore requires it to
// match.
func (m *Machine) ImageHash() uint64 {
	top := int(m.codeTop)
	if top > len(m.codeShadow) {
		top = len(m.codeShadow)
	}
	return snapshot.HashWords(m.codeShadow[:top])
}

// configFingerprint hashes every configuration input that changes
// simulated behaviour: zone geometry, cache split and prefetch, the
// hardware-assist flags, the cost table, the clock, physical memory
// size, and the GC settings. Host-only knobs (fusion, profiling,
// tracing, step budgets, output writers) are deliberately excluded —
// they do not affect counters, so they need not match across a
// migration.
func (m *Machine) configFingerprint() uint64 {
	if m.fingerprinted {
		return m.fingerprint
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "g%x+%x l%x+%x c%x+%x t%x+%x",
		m.cfg.GlobalBase, m.cfg.GlobalSize,
		m.cfg.LocalBase, m.cfg.LocalSize,
		m.cfg.ChoiceBase, m.cfg.ChoiceSize,
		m.cfg.TrailBase, m.cfg.TrailSize)
	fmt.Fprintf(h, " split=%v shallow=%v hwderef=%v hwtrail=%v",
		boolDefault(m.cfg.SplitDataCache, true),
		m.shallow, m.hwDeref, m.hwTrail)
	fmt.Fprintf(h, " pf=%d mem=%d cyc=%g", m.icachePrefetch(), m.phys.Size(), m.cfg.CycleNs)
	fmt.Fprintf(h, " gct=%d gcov=%v wm=%d thw=%d",
		m.gcThreshold, m.gcOnOverflow, m.heapWatermark, m.trailHighWater)
	fmt.Fprintf(h, " costs=%+v", m.costs)
	m.fingerprint, m.fingerprinted = h.Sum64(), true
	return m.fingerprint
}

// icachePrefetch re-derives the resolved prefetch depth from the
// config the same way New did.
func (m *Machine) icachePrefetch() int {
	pf := m.cfg.CodePrefetch
	if pf < 0 {
		pf = 3
	}
	return pf
}

// captureLocalTop computes the first free local-stack word exactly as
// envTop does, but through the untimed peek path so capturing does not
// perturb cache statistics.
func (m *Machine) captureLocalTop() uint32 {
	lt := m.cfg.LocalBase
	if m.e != 0 {
		size := m.peek(word.ZLocal, m.e+2)
		if size != word.Invalid() {
			lt = m.e + envHeader + size.Value()
		}
	}
	if m.bLTOP > lt {
		lt = m.bLTOP
	}
	return lt
}

// captureChoiceTop computes the first free choice-stack word (the top
// of the youngest choice point's frame), untimed.
func (m *Machine) captureChoiceTop() uint32 {
	if m.b == 0 {
		return m.cfg.ChoiceBase
	}
	ar := m.peek(word.ZChoice, m.b+cpArity)
	if ar == word.Invalid() {
		return m.cfg.ChoiceBase
	}
	return m.b + cpHeader + ar.Value()
}

// peekRange reads [base, top) of a zone through the untimed path.
// Addresses that were never written (unmapped and uncached) read as
// word.Invalid(); Restore skips them when rewriting physical memory,
// which reproduces the source machine exactly — it had no defined
// value there either.
func (m *Machine) peekRange(z word.Zone, base, top uint32) []word.Word {
	if top <= base {
		return nil
	}
	ws := make([]word.Word, top-base)
	for i := range ws {
		ws[i] = m.peek(z, base+uint32(i))
	}
	return ws
}

// Capture serializes the machine's complete simulated state. The
// machine must be at an instruction boundary (freshly booted, budget-
// suspended, or halted — which is where every caller of the session
// API naturally sits) and must not hold a pending fault.
func (m *Machine) Capture() (*snapshot.State, error) {
	if m.err != nil {
		return nil, fmt.Errorf("%w: machine holds fault: %v", ErrNotCapturable, m.err)
	}
	s := &snapshot.State{
		ConfigHash: m.configFingerprint(),
		ImageHash:  m.ImageHash(),
		CodeTop:    m.codeTop,

		Regs: append([]word.Word(nil), m.regs[:]...),
		P:    m.p, CP: m.cp,
		E: m.e, B: m.b, B0: m.b0,
		H: m.h, HB: m.hb, TR: m.tr, S: m.s,
		Mode: m.mode, SF: m.sf, CF: m.cf,
		ShadowH: m.shadowH, ShadowTR: m.shadowTR,
		ShadowNext: int32(m.shadowNext),
		BLTOP:      m.bLTOP,
		Halted:     m.halted, Failed: m.failed,
		GCRetryAddr: m.gcRetryAddr, GCRetryInstr: m.gcRetryInstr,
	}

	s.LocalTop = m.captureLocalTop()
	s.ChoiceTop = m.captureChoiceTop()
	s.Heap = m.peekRange(word.ZGlobal, m.cfg.GlobalBase, m.h)
	s.Local = m.peekRange(word.ZLocal, m.cfg.LocalBase, s.LocalTop)
	s.Choice = m.peekRange(word.ZChoice, m.cfg.ChoiceBase, s.ChoiceTop)
	s.Trail = m.peekRange(word.ZTrail, m.cfg.TrailBase, m.tr)

	s.DataLines = m.dcache.ExportLines()
	s.CodeLines = m.icache.ExportLines()
	s.DataPages = m.dmmu.ExportTable()
	s.CodePages = m.cmmu.ExportTable()
	s.FrameNext = m.dmmu.Frames().Next()
	s.OpenRow, s.OpenRowOK = m.phys.OpenRow()

	s.Counters = statsToCounters(&m.stats, m.fuseDispatches, m.fuseSteps)
	s.GC = snapshot.GCCounters{
		Collections: m.gcStats.Collections,
		LiveWords:   m.gcStats.LiveWords,
		FreedWords:  m.gcStats.FreedWords,
		TrailDrops:  m.gcStats.TrailDrops,
		Cycles:      m.gcStats.Cycles,
	}
	s.DCache = m.dcache.Stats()
	s.CCache = m.icache.Stats()
	s.DataMMU = m.dmmu.Stats()
	s.CodeMMU = m.cmmu.Stats()
	ms := m.phys.Stats()
	s.MemReads, s.MemWrite, s.MemPageH = ms.Reads, ms.Writes, ms.PageHits
	return s, nil
}

// CaptureBlob is Capture followed by snapshot.Encode.
func (m *Machine) CaptureBlob() ([]byte, error) {
	s, err := m.Capture()
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(s), nil
}

// validateRestore checks a decoded snapshot against this machine
// before anything is mutated, so a rejected restore leaves the target
// untouched.
func (m *Machine) validateRestore(s *snapshot.State) error {
	if s.ConfigHash != m.configFingerprint() {
		return fmt.Errorf("%w: blob fingerprint %#x, machine %#x", ErrConfigMismatch, s.ConfigHash, m.configFingerprint())
	}
	if s.CodeTop != m.codeTop {
		return fmt.Errorf("%w: blob code frontier %d, machine %d", ErrImageMismatch, s.CodeTop, m.codeTop)
	}
	if s.ImageHash != m.ImageHash() {
		return fmt.Errorf("%w: blob image hash %#x, machine %#x", ErrImageMismatch, s.ImageHash, m.ImageHash())
	}
	if len(s.Regs) != kcmisa.NumRegs {
		return fmt.Errorf("%w: %d registers, machine has %d", ErrBadSnapshot, len(s.Regs), kcmisa.NumRegs)
	}
	type rng struct {
		name      string
		base, top uint32
		size      uint32
		have      int
	}
	for _, r := range []rng{
		{"heap", m.cfg.GlobalBase, s.H, m.cfg.GlobalSize, len(s.Heap)},
		{"local", m.cfg.LocalBase, s.LocalTop, m.cfg.LocalSize, len(s.Local)},
		{"choice", m.cfg.ChoiceBase, s.ChoiceTop, m.cfg.ChoiceSize, len(s.Choice)},
		{"trail", m.cfg.TrailBase, s.TR, m.cfg.TrailSize, len(s.Trail)},
	} {
		if r.top < r.base || r.top > r.base+r.size {
			return fmt.Errorf("%w: %s top %#x outside zone [%#x,%#x]", ErrBadSnapshot, r.name, r.top, r.base, r.base+r.size)
		}
		if uint32(r.have) != r.top-r.base {
			return fmt.Errorf("%w: %s carries %d words for a %d-word live range", ErrBadSnapshot, r.name, r.have, r.top-r.base)
		}
	}
	if s.HB < m.cfg.GlobalBase || s.HB > s.H {
		return fmt.Errorf("%w: HB %#x outside [heap base, H=%#x]", ErrBadSnapshot, s.HB, s.H)
	}
	if s.FrameNext > m.dmmu.Frames().Max() {
		return fmt.Errorf("%w: frame frontier %d exceeds this machine's %d frames", ErrBadSnapshot, s.FrameNext, m.dmmu.Frames().Max())
	}
	// Every code page up to the frontier must be mapped, or the code
	// rewrite below would silently drop words.
	mapped := make(map[uint32]bool, len(s.CodePages))
	for _, p := range s.CodePages {
		mapped[p.VPage] = true
	}
	for vp := uint32(0); vp*mmu.PageWords < m.codeTop; vp++ {
		if !mapped[vp] {
			return fmt.Errorf("%w: code page %d below frontier %d is unmapped", ErrBadSnapshot, vp, m.codeTop)
		}
	}
	return nil
}

// Restore replaces this machine's simulated state with the snapshot's.
// The machine must present the same configuration fingerprint and the
// same code image (content hash over the same frontier) — typically
// because it was built from the same program, or because the caller
// replayed the same dynamic-code installs. On any error the target is
// untouched.
//
// Host-side derived state is rebuilt, not restored: predecode
// residency and fused-run residency caches are cleared (Restore
// replaced the code cache contents they described), the pushdown list
// is emptied, and a KReset trace event tells any attached hook to
// clear its own shadow state.
func (m *Machine) Restore(s *snapshot.State) error {
	if err := m.validateRestore(s); err != nil {
		return err
	}

	// Memory system first: page tables and the frame frontier decide
	// physical placement, then physical contents are rewritten through
	// the new mapping, then cache residency lands on top.
	m.dmmu.ImportTable(s.DataPages)
	m.cmmu.ImportTable(s.CodePages)
	m.dmmu.Frames().SetNext(s.FrameNext)
	for a := uint32(0); a < m.codeTop; a++ {
		if pa, ok := m.cmmu.Peek(a); ok {
			m.phys.Poke(pa, m.codeShadow[a])
		}
	}
	m.pokeRange(m.cfg.GlobalBase, s.Heap)
	m.pokeRange(m.cfg.LocalBase, s.Local)
	m.pokeRange(m.cfg.ChoiceBase, s.Choice)
	m.pokeRange(m.cfg.TrailBase, s.Trail)
	m.dcache.ImportLines(s.DataLines)
	m.icache.ImportLines(s.CodeLines)

	// Statistics, wholesale.
	m.dcache.SetStats(s.DCache)
	m.icache.SetStats(s.CCache)
	m.dmmu.SetStats(s.DataMMU)
	m.cmmu.SetStats(s.CodeMMU)
	m.phys.SetStats(mem.Stats{Reads: s.MemReads, Writes: s.MemWrite, PageHits: s.MemPageH})
	m.phys.SetOpenRow(s.OpenRow, s.OpenRowOK)
	m.stats = countersToStats(&s.Counters)
	m.fuseDispatches, m.fuseSteps = s.Counters.FuseDispatches, s.Counters.FuseSteps
	m.gcStats = GCStats{
		Collections: s.GC.Collections,
		LiveWords:   s.GC.LiveWords,
		FreedWords:  s.GC.FreedWords,
		TrailDrops:  s.GC.TrailDrops,
		Cycles:      s.GC.Cycles,
	}

	// Machine registers.
	copy(m.regs[:], s.Regs)
	m.p, m.cp = s.P, s.CP
	m.e, m.b, m.b0 = s.E, s.B, s.B0
	m.h, m.hb, m.tr, m.s = s.H, s.HB, s.TR, s.S
	m.mode, m.sf, m.cf = s.Mode, s.SF, s.CF
	m.shadowH, m.shadowTR = s.ShadowH, s.ShadowTR
	m.shadowNext = int(s.ShadowNext)
	m.bLTOP = s.BLTOP
	m.halted, m.failed = s.Halted, s.Failed
	m.gcRetryAddr, m.gcRetryInstr = s.GCRetryAddr, s.GCRetryInstr
	m.err = nil

	// Derived host state: residency claims refer to the cache contents
	// Restore just replaced, so they are re-proven from scratch; the
	// widths in pwidth are code-derived and survive (the image hash
	// matched).
	for i := range m.pwidth {
		m.pwidth[i] &^= pwResident
	}
	for _, f := range m.fused {
		if f != nil {
			f.allRes = false
		}
	}
	m.pdl = m.pdl[:0]
	m.pendingCallSet = false
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KReset, P: m.p})
	}
	return nil
}

// RestoreBlob is snapshot.Decode followed by Restore.
func (m *Machine) RestoreBlob(b []byte) error {
	s, err := snapshot.Decode(b)
	if err != nil {
		return err
	}
	return m.Restore(s)
}

// pokeRange writes a live range into physical memory through the
// (already restored) data MMU, untimed. Unmapped pages are skipped:
// their words live only in the restored cache lines, exactly as on the
// source machine.
func (m *Machine) pokeRange(base uint32, ws []word.Word) {
	for i, w := range ws {
		if pa, ok := m.dmmu.Peek(base + uint32(i)); ok {
			m.phys.Poke(pa, w)
		}
	}
}

func statsToCounters(st *Stats, fd, fs uint64) snapshot.Counters {
	return snapshot.Counters{
		NsPerCycle:   st.NsPerCycle,
		Cycles:       st.Cycles,
		Instrs:       st.Instrs,
		Inferences:   st.Inferences,
		DerefSteps:   st.DerefSteps,
		UnifyNodes:   st.UnifyNodes,
		TrailChecks:  st.TrailChecks,
		TrailPushes:  st.TrailPushes,
		ShallowTries: st.ShallowTries,
		ShallowFails: st.ShallowFails,
		DeepFails:    st.DeepFails,
		ChoicePoints: st.ChoicePoints,
		NeckUpdates:  st.NeckUpdates,
		NeckDet:      st.NeckDet,
		EnvAllocs:    st.EnvAllocs,
		Builtins:     st.Builtins,
		CPWords:      st.CPWords,

		FuseDispatches: fd,
		FuseSteps:      fs,
	}
}

func countersToStats(c *snapshot.Counters) Stats {
	return Stats{
		NsPerCycle:   c.NsPerCycle,
		Cycles:       c.Cycles,
		Instrs:       c.Instrs,
		Inferences:   c.Inferences,
		DerefSteps:   c.DerefSteps,
		UnifyNodes:   c.UnifyNodes,
		TrailChecks:  c.TrailChecks,
		TrailPushes:  c.TrailPushes,
		ShallowTries: c.ShallowTries,
		ShallowFails: c.ShallowFails,
		DeepFails:    c.DeepFails,
		ChoicePoints: c.ChoicePoints,
		NeckUpdates:  c.NeckUpdates,
		NeckDet:      c.NeckDet,
		EnvAllocs:    c.EnvAllocs,
		Builtins:     c.Builtins,
		CPWords:      c.CPWords,
	}
}
