package machine

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/snapshot"
	"repro/internal/term"
)

// buildImageF is buildImage for fuzz targets (testing.TB).
func buildImageF(tb testing.TB, src, query string) *asm.Image {
	tb.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		tb.Fatal(err)
	}
	c := compiler.New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		tb.Fatal(err)
	}
	goal, err := reader.ParseTerm(query)
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.CompileQuery(m, goal); err != nil {
		tb.Fatal(err)
	}
	im, err := asm.Link(m)
	if err != nil {
		tb.Fatal(err)
	}
	return im
}

// compareResults asserts that two machines report byte-identical
// counters across every statistics block the Result carries.
func compareResults(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Success != b.Success {
		t.Fatalf("%s: success %v vs %v", label, a.Success, b.Success)
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ:\n a %+v\n b %+v", label, a.Stats, b.Stats)
	}
	if a.DCache != b.DCache || a.CCache != b.CCache {
		t.Fatalf("%s: cache stats differ:\n a %+v %+v\n b %+v %+v",
			label, a.DCache, a.CCache, b.DCache, b.CCache)
	}
	if a.Mem != b.Mem {
		t.Fatalf("%s: memory stats differ:\n a %+v\n b %+v", label, a.Mem, b.Mem)
	}
	if a.DataMMU != b.DataMMU {
		t.Fatalf("%s: mmu stats differ:\n a %+v\n b %+v", label, a.DataMMU, b.DataMMU)
	}
	if a.GC != b.GC {
		t.Fatalf("%s: gc stats differ:\n a %+v\n b %+v", label, a.GC, b.GC)
	}
}

// TestSnapshotContinuationIdentical is the tentpole correctness bar: a
// query suspended mid-run, captured, and restored onto a fresh pooled
// machine continues to byte-identical solutions, cycle counts and
// cache statistics vs the never-suspended run — across many different
// suspension points.
func TestSnapshotContinuationIdentical(t *testing.T) {
	src, query := nrevTestSrc, "nrev([a,b,c,d,e,f,g,h], R)."
	im := buildImage(t, src, query)
	entry, _ := im.Entry(compiler.QueryPI)

	ref, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(entry); err != nil {
		t.Fatal(err)
	}
	want := ref.Result()
	wantR := ref.QueryBindings(im.QueryVars)[term.Var("R")].String()

	for _, budget := range []uint64{1, 13, 200, 3000} {
		src1, err := New(im, Config{})
		if err != nil {
			t.Fatal(err)
		}
		src1.Begin(entry)
		st, err := src1.RunFor(nil, budget)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := src1.CaptureBlob()
		if err != nil {
			t.Fatalf("budget %d: capture: %v", budget, err)
		}
		dst, err := New(im, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Dirty the target first so the restore must actually replace
		// state, not ride on fresh-machine zeroes.
		if _, err := dst.Run(entry); err != nil {
			t.Fatal(err)
		}
		dst.Reset()
		if err := dst.RestoreBlob(blob); err != nil {
			t.Fatalf("budget %d: restore: %v", budget, err)
		}
		for st != Halted {
			st, err = dst.RunFor(nil, budget)
			if err != nil {
				t.Fatal(err)
			}
		}
		compareResults(t, "restored continuation", want, dst.Result())
		if got := dst.QueryBindings(im.QueryVars)[term.Var("R")].String(); got != wantR {
			t.Fatalf("budget %d: R = %s, want %s", budget, got, wantR)
		}
	}
}

// TestSnapshotRedoEnumeration suspends between solutions (after a
// Redo-driven solution is out) and checks the restored machine
// enumerates the identical remaining solutions.
func TestSnapshotRedoEnumeration(t *testing.T) {
	im := buildImage(t, memberSrc, "member(X, [1,2,3,4,5]).")
	entry, _ := im.Entry(compiler.QueryPI)

	enumerate := func(m *Machine, first bool) []string {
		t.Helper()
		var got []string
		for {
			if !first {
				if err := m.Redo(); err != nil {
					if errors.Is(err, ErrExhausted) {
						return got
					}
					t.Fatal(err)
				}
			}
			first = false
			st, err := m.RunFor(nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st != Halted {
				t.Fatalf("status %v", st)
			}
			if !m.Succeeded() {
				return got
			}
			got = append(got, m.QueryBindings(im.QueryVars)[term.Var("X")].String())
		}
	}

	// Source machine: take two solutions, then park.
	src, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	src.Begin(entry)
	for i := 0; i < 2; i++ {
		if i > 0 {
			if err := src.Redo(); err != nil {
				t.Fatal(err)
			}
		}
		if st, err := src.RunFor(nil, 0); err != nil || st != Halted || !src.Succeeded() {
			t.Fatalf("solution %d: %v %v", i, st, err)
		}
	}
	blob, err := src.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreBlob(blob); err != nil {
		t.Fatal(err)
	}
	// The restored machine sits where the source did: solution 2 just
	// delivered. Redo-driven enumeration must yield exactly 3, 4, 5 —
	// and the source machine, continued in this process, must agree.
	wantRest := enumerate(src, false)
	gotRest := enumerate(dst, false)
	if len(wantRest) != 3 || !reflect.DeepEqual(gotRest, wantRest) {
		t.Fatalf("restored enumeration %v, source continuation %v", gotRest, wantRest)
	}
	compareResults(t, "post-enumeration", src.Result(), dst.Result())
}

// TestSnapshotUnderTinyHeapGC asserts relocation-free soundness: a
// query that has already been through sliding compactions in a tiny
// heap is captured mid-run and restored, and the continuation — with
// more collections ahead of it — stays byte-identical to the
// uninterrupted run. The GC's order-preserving compaction is what
// makes the blob's absolute addresses sound.
func TestSnapshotUnderTinyHeapGC(t *testing.T) {
	src := nrevTestSrc
	query := "nrev([a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t,u,v,w,x,y,z], R)."
	im := buildImage(t, src, query)
	entry, _ := im.Entry(compiler.QueryPI)
	cfg := Config{GCThresholdWords: 256}

	ref, err := New(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(entry); err != nil {
		t.Fatal(err)
	}
	want := ref.Result()
	if want.GC.Collections == 0 {
		t.Fatal("test is vacuous: no collection ran")
	}
	wantR := ref.QueryBindings(im.QueryVars)[term.Var("R")].String()

	for _, budget := range []uint64{500, 2500, 10000} {
		m1, err := New(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m1.Begin(entry)
		st, err := m1.RunFor(nil, budget)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := m1.CaptureBlob()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := New(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.RestoreBlob(blob); err != nil {
			t.Fatal(err)
		}
		for st != Halted {
			st, err = m2.RunFor(nil, budget)
			if err != nil {
				t.Fatal(err)
			}
		}
		compareResults(t, "gc continuation", want, m2.Result())
		if got := m2.QueryBindings(im.QueryVars)[term.Var("R")].String(); got != wantR {
			t.Fatalf("budget %d: R = %s, want %s", budget, got, wantR)
		}
	}
}

// TestCaptureRestoreCaptureByteIdentical is the round-trip property:
// restoring a capture and capturing again reproduces the blob byte for
// byte, on the source machine itself and on a different machine.
func TestCaptureRestoreCaptureByteIdentical(t *testing.T) {
	im := buildImage(t, nrevTestSrc, "nrev([a,b,c,d,e], R).")
	entry, _ := im.Entry(compiler.QueryPI)
	src, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	src.Begin(entry)
	if _, err := src.RunFor(nil, 500); err != nil {
		t.Fatal(err)
	}
	blob1, err := src.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreBlob(blob1); err != nil {
		t.Fatal(err)
	}
	blob2, err := dst.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("capture→restore→capture not byte-identical: %d vs %d bytes", len(blob1), len(blob2))
	}

	// And the source can re-capture itself unchanged.
	blob3, err := src.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob3) {
		t.Fatal("re-capture of an untouched machine changed the blob")
	}
}

// TestRestoreRejectsMismatches: wrong image, wrong configuration, and
// a faulted source are refused with the typed sentinels, and a refused
// restore leaves the target fully usable.
func TestRestoreRejectsMismatches(t *testing.T) {
	im1 := buildImage(t, nrevTestSrc, "nrev([a,b,c], R).")
	im2 := buildImage(t, memberSrc, "member(X, [1,2,3]).")
	entry1, _ := im1.Entry(compiler.QueryPI)

	src, err := New(im1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	src.Begin(entry1)
	if _, err := src.RunFor(nil, 100); err != nil {
		t.Fatal(err)
	}
	blob, err := src.CaptureBlob()
	if err != nil {
		t.Fatal(err)
	}

	other, err := New(im2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreBlob(blob); !errors.Is(err, ErrImageMismatch) {
		t.Fatalf("cross-image restore: %v, want ErrImageMismatch", err)
	}

	diffCfg, err := New(im1, Config{GCThresholdWords: 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := diffCfg.RestoreBlob(blob); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("cross-config restore: %v, want ErrConfigMismatch", err)
	}

	// A refused target still runs.
	entry2, _ := im2.Entry(compiler.QueryPI)
	if _, err := other.Run(entry2); err != nil || !other.Succeeded() {
		t.Fatalf("target unusable after refused restore: %v", err)
	}

	// A faulted machine refuses capture.
	spin := buildImage(t, "spin :- spin.\n", "spin.")
	se, _ := spin.Entry(compiler.QueryPI)
	fm, err := New(spin, Config{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Run(se); err == nil {
		t.Fatal("spin did not fault")
	}
	if _, err := fm.Capture(); !errors.Is(err, ErrNotCapturable) {
		t.Fatalf("capture of faulted machine: %v, want ErrNotCapturable", err)
	}
}

// TestResetClearsRegisterRoots is the satellite-1 regression test: the
// argument registers are GC roots, so values a previous query leaves
// in them must not survive Reset — stale registers would keep dead
// heap cells live through the next query's collections, diverging its
// GC behaviour (and thus its counters) from a fresh machine's.
func TestResetClearsRegisterRoots(t *testing.T) {
	src := nrevTestSrc
	probe := "nrev([p,q,r,s,t,u,v,w,x,y,z], R)."
	cfg := Config{GCThresholdWords: 256}

	imProbe := buildImage(t, src, probe)

	// Reused machine: run the probe (dirtying the registers and heap),
	// Reset, run it again; the second run must match a fresh machine's.
	reused, err := New(imProbe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := imProbe.Entry(compiler.QueryPI)
	// Dirty it: run the probe once (leaves heap pointers in the arg
	// registers and a populated heap), then Reset and run it again.
	if _, err := reused.Run(entry); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	if _, err := reused.Run(entry); err != nil {
		t.Fatal(err)
	}
	second := reused.Result()

	fresh, err := New(imProbe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Run(entry); err != nil {
		t.Fatal(err)
	}
	first := fresh.Result()

	// Raw cycle/cache counters legitimately differ (the reused machine
	// has warm caches); the structural counters and everything the GC
	// did must not.
	if second.GC != first.GC {
		t.Fatalf("gc stats diverge on a reused machine:\nfresh  %+v\nreused %+v", first.GC, second.GC)
	}
	type structural struct {
		Inferences, DerefSteps, UnifyNodes, TrailPushes, ChoicePoints, EnvAllocs uint64
	}
	a := structural{first.Stats.Inferences, first.Stats.DerefSteps, first.Stats.UnifyNodes,
		first.Stats.TrailPushes, first.Stats.ChoicePoints, first.Stats.EnvAllocs}
	b := structural{second.Stats.Inferences, second.Stats.DerefSteps, second.Stats.UnifyNodes,
		second.Stats.TrailPushes, second.Stats.ChoicePoints, second.Stats.EnvAllocs}
	if a != b {
		t.Fatalf("structural counters diverge on a reused machine:\nfresh  %+v\nreused %+v", a, b)
	}
	wr := reused.QueryBindings(imProbe.QueryVars)[term.Var("R")].String()
	wf := fresh.QueryBindings(imProbe.QueryVars)[term.Var("R")].String()
	if wr != wf {
		t.Fatalf("solutions diverge: %s vs %s", wr, wf)
	}
}

// TestCountersMirrorsStats pins the serializer's exhaustive-inventory
// property: snapshot.Counters must mirror machine.Stats field for
// field (plus the two fusion counters kept outside Stats), so adding a
// Stats field without extending the snapshot breaks this test instead
// of silently dropping state.
func TestCountersMirrorsStats(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	ct := reflect.TypeOf(snapshot.Counters{})
	if ct.NumField() != st.NumField()+2 {
		t.Fatalf("snapshot.Counters has %d fields, machine.Stats %d (+2 fusion counters expected)",
			ct.NumField(), st.NumField())
	}
	for i := 0; i < st.NumField(); i++ {
		sf, cf := st.Field(i), ct.Field(i)
		if sf.Name != cf.Name || sf.Type != cf.Type {
			t.Fatalf("field %d: machine.Stats has %s %v, snapshot.Counters has %s %v",
				i, sf.Name, sf.Type, cf.Name, cf.Type)
		}
	}
	gt := reflect.TypeOf(GCStats{})
	gct := reflect.TypeOf(snapshot.GCCounters{})
	if gct.NumField() != gt.NumField() {
		t.Fatalf("snapshot.GCCounters has %d fields, machine.GCStats %d", gct.NumField(), gt.NumField())
	}
	for i := 0; i < gt.NumField(); i++ {
		if gt.Field(i).Name != gct.Field(i).Name {
			t.Fatalf("gc field %d: %s vs %s", i, gt.Field(i).Name, gct.Field(i).Name)
		}
	}
}

// FuzzRestoreBlob feeds truncated, bit-flipped and version-skewed
// blobs to RestoreBlob: every corruption must be rejected with a typed
// error — never a panic — and a rejected restore must leave the target
// machine fully functional.
func FuzzRestoreBlob(f *testing.F) {
	im := buildImageF(f, nrevTestSrc, "nrev([a,b,c,d], R).")
	entry, _ := im.Entry(compiler.QueryPI)
	src, err := New(im, Config{})
	if err != nil {
		f.Fatal(err)
	}
	src.Begin(entry)
	if _, err := src.RunFor(nil, 300); err != nil {
		f.Fatal(err)
	}
	blob, err := src.CaptureBlob()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("KCMSNAP1"))
	skew := append([]byte(nil), blob...)
	skew[8] ^= 0xFF // version field
	f.Add(skew)
	flip := append([]byte(nil), blob...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)

	ref, err := New(im, Config{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := ref.Run(entry); err != nil {
		f.Fatal(err)
	}
	want := ref.QueryBindings(im.QueryVars)[term.Var("R")].String()

	target, err := New(im, Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		err := target.RestoreBlob(data)
		if err != nil {
			for _, sentinel := range []error{
				snapshot.ErrTruncated, snapshot.ErrChecksum, snapshot.ErrVersion,
				snapshot.ErrMalformed, ErrImageMismatch, ErrConfigMismatch, ErrBadSnapshot,
			} {
				if errors.Is(err, sentinel) {
					goto typed
				}
			}
			t.Fatalf("untyped restore error: %v", err)
		}
	typed:
		// Success or typed rejection — either way the machine must
		// still run the query correctly from a clean boot.
		target.Reset()
		if _, err := target.Run(entry); err != nil {
			t.Fatalf("target corrupted (run): %v", err)
		}
		if got := target.QueryBindings(im.QueryVars)[term.Var("R")].String(); got != want {
			t.Fatalf("target corrupted: R = %s, want %s", got, want)
		}
	})
}
