package machine

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// nrev generates plenty of garbage: every intermediate reversal is
// dead as soon as the next level consumes it.
const nrevSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).
`

func TestGCCollectsGarbage(t *testing.T) {
	m, res, err := run(t, nrevSrc, "mklist(60, L), nrev(L, R), nrev(R, _RR).",
		Config{GCThresholdWords: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("query failed under GC")
	}
	gs := m.GCStats()
	if gs.Collections == 0 {
		t.Fatal("threshold never triggered a collection")
	}
	if gs.FreedWords == 0 {
		t.Fatal("collector freed nothing on a garbage-heavy workload")
	}
	t.Logf("collections=%d live=%d freed=%d", gs.Collections, gs.LiveWords, gs.FreedWords)
}

func TestGCPreservesAnswers(t *testing.T) {
	// The same queries with and without GC must produce identical
	// bindings (forwarding must not corrupt live terms).
	queries := []string{
		"mklist(40, L), nrev(L, R).",
		"mklist(25, L), nrev(L, R), nrev(R, RR), app(RR, R, Z), nrev(Z, W), app(W, [x], V), nrev(V, R2).",
		"app(A, B, [1,2,3,4,5,6]), nrev(A, AR), nrev(B, BR), app(AR, BR, R).",
	}
	for _, q := range queries {
		base, resBase, err := run(t, nrevSrc, q, Config{})
		if err != nil || !resBase.Success {
			t.Fatalf("%q without GC: %v %v", q, err, resBase.Success)
		}
		gcm, resGC, err := run(t, nrevSrc, q, Config{GCThresholdWords: 512})
		if err != nil || !resGC.Success {
			t.Fatalf("%q with GC: %v %v", q, err, resGC.Success)
		}
		// Compare the R binding (environment slot 1-ish: look it up by
		// compiling again — simpler: compare all shared query vars).
		slots := map[term.Var]int{}
		_ = slots
		bb := base.QueryBindings(queryVarsFor(t, nrevSrc, q))
		gb := gcm.QueryBindings(queryVarsFor(t, nrevSrc, q))
		for v, tb := range bb {
			if strings.Contains(tb.String(), "_G") {
				continue
			}
			if gb[v].String() != tb.String() {
				t.Fatalf("%q: %s differs under GC:\n  base: %v\n  gc:   %v", q, v, tb, gb[v])
			}
		}
	}
}

// queryVarsFor recompiles the query to recover its variable slots
// (both runs share the same compiler, so slots agree).
func queryVarsFor(t *testing.T, src, query string) map[term.Var]int {
	t.Helper()
	im := buildImage(t, src, query)
	return im.QueryVars
}

func TestGCAcrossBacktracking(t *testing.T) {
	// Backtracking after collections: the forwarded choice-point
	// watermarks and trail must still restore a consistent state.
	src := nrevSrc + `
pick(X, [X|_]).
pick(X, [_|T]) :- pick(X, T).
probe(N) :- mklist(N, L), pick(X, L), nrev(L, R), pick(X, R), X < 3, !.
`
	m, res, err := run(t, src, "probe(30).", Config{GCThresholdWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("probe failed under GC")
	}
	if m.GCStats().Collections == 0 {
		t.Skip("no collection triggered; enlarge the workload")
	}
}

func TestGCBoundsHeapGrowth(t *testing.T) {
	// A loop that makes garbage every iteration must run in a tiny
	// heap when GC is on, and trap when it is off.
	src := `
churn(0).
churn(N) :- mk(N, _), M is N - 1, churn(M).
mk(N, [N, N, N, N]).
`
	small := Config{GlobalBase: 0x10000, GlobalSize: 0x800, GCOnOverflow: Off}
	if _, _, err := run(t, src, "churn(2000).", small); err == nil {
		t.Fatal("expected heap overflow without GC")
	}
	smallGC := small
	smallGC.GCThresholdWords = 0x400
	m, res, err := run(t, src, "churn(2000).", smallGC)
	if err != nil || !res.Success {
		t.Fatalf("with GC: %v %v", err, res.Success)
	}
	if m.GCStats().Collections == 0 {
		t.Fatal("GC never ran")
	}
}

func TestGCSuiteEquivalence(t *testing.T) {
	// Aggressive collection over richer control flow: deep cuts,
	// if-then-else and negation all survive forwarding.
	src := nrevSrc + `
filter([], []).
filter([H|T], R) :- ( H mod 2 =:= 0 -> R = [H|R1] ; R = R1 ), filter(T, R1).
sum([], 0).
sum([H|T], S) :- sum(T, S1), S is S1 + H.
`
	q := "mklist(50, L), filter(L, E), nrev(E, R), sum(R, S)."
	base, r1, err := run(t, src, q, Config{})
	if err != nil || !r1.Success {
		t.Fatal(err)
	}
	gcm, r2, err := run(t, src, q, Config{GCThresholdWords: 384})
	if err != nil || !r2.Success {
		t.Fatal(err)
	}
	vars := queryVarsFor(t, src, q)
	sb := base.QueryBindings(vars)["S"]
	sg := gcm.QueryBindings(vars)["S"]
	if sb.String() != sg.String() {
		t.Fatalf("sum differs: %v vs %v", sb, sg)
	}
	if gcm.GCStats().Collections == 0 {
		t.Skip("workload too small to trigger GC")
	}
}
