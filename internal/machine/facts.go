package machine

import (
	"repro/internal/analysis"
	"repro/internal/term"
	"repro/internal/word"
)

// Whole-image facts (see internal/analysis). The machine keeps a
// host-side shadow of its code space so the analyzer can run without
// touching the simulated memory system: computing or refreshing facts
// is untimed and perturbs no cycle or cache counter. The shadow is
// maintained by every path that writes code — the boot image load,
// LoadIncremental, LoadBatch and PatchCode — and the facts artifact
// is computed lazily and invalidated range-wise, so a loader that
// never asks for facts pays nothing beyond the copy.

// shadowWrite mirrors a code-space write into the host-side shadow,
// growing it (zero-filled, which decodes as noop) across the
// page-alignment gaps of batch loads.
func (m *Machine) shadowWrite(base uint32, code []word.Word) {
	end := int(base) + len(code)
	for len(m.codeShadow) < end {
		m.codeShadow = append(m.codeShadow, 0)
	}
	copy(m.codeShadow[base:end], code)
}

// invalidateFacts marks the code range [lo, hi) dirty for the facts
// artifact.
func (m *Machine) invalidateFacts(lo, hi uint32) {
	if !m.factsDirty {
		m.factsDirty = true
		m.factsLo, m.factsHi = lo, hi
		return
	}
	if lo < m.factsLo {
		m.factsLo = lo
	}
	if hi > m.factsHi {
		m.factsHi = hi
	}
}

// bootEntries snapshots the machine's predicate entry table (the boot
// image's entries plus RegisterPred additions).
func (m *Machine) bootEntries() map[term.Indicator]uint32 {
	out := make(map[term.Indicator]uint32, len(m.entries))
	for pi, addr := range m.entries {
		out[pi] = addr
	}
	return out
}

// RegisterPred enters a predicate into the machine's entry table —
// making it callable through the meta-call escape and visible to the
// whole-image analyzer as an entry point. Incrementally loaded code
// belongs to no predicate until registered.
func (m *Machine) RegisterPred(pi term.Indicator, addr uint32) {
	m.entries[pi] = addr
	idx := m.syms.Intern(pi.Name)
	m.preds[uint64(idx)<<8|uint64(pi.Arity&0xff)] = addr
	m.invalidateFacts(addr, m.codeTop)
}

// Facts returns the whole-image analysis artifact for the machine's
// code space, rooted at the boot table (every registered predicate is
// externally callable, via boot or the call/1 escape). The artifact
// is cached; code-space writes invalidate the touched range, and the
// next call incrementally recomputes the affected strongly-connected
// components of the call graph. The computation is host-side only:
// simulated cycle and cache counters are untouched.
func (m *Machine) Facts() *analysis.ImageFacts {
	entries := m.bootEntries()
	roots := make([]term.Indicator, 0, len(entries))
	for pi := range entries {
		roots = append(roots, pi)
	}
	// The shadow may extend past the frontier after a Rollback (the
	// truncated words stay so an identical reload is free); the
	// analyzer only ever sees loaded code.
	code := m.codeShadow
	if int64(m.codeTop) < int64(len(code)) {
		code = code[:m.codeTop]
	}
	lo, hi := m.factsLo, m.factsHi
	if hi > m.codeTop {
		hi = m.codeTop
	}
	if lo > hi {
		lo = hi
	}
	switch {
	case m.facts == nil:
		m.facts = analysis.AnalyzeImage(code, 0, entries, roots)
	case m.factsDirty:
		m.facts = m.facts.Update(code, 0, entries, roots, lo, hi)
	}
	m.factsDirty = false
	return m.facts
}
