package machine

import (
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/word"
)

// TestGCSharedEnvironmentChains is the white-box regression test for
// the double-forwarding bug: the query environment is reachable both
// through the current E chain and through choice-point frames, and a
// collection must rewrite it exactly once.
func TestGCSharedEnvironmentChains(t *testing.T) {
	im := buildImage(t, nrevSrc, "mklist(5, L), nrev(L, R), nrev(R, _RR).")
	m, err := New(im, Config{GCThresholdWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Find R's slot.
	rSlot, ok := im.QueryVars["R"]
	if !ok {
		t.Fatal("no R slot")
	}
	entry, _ := im.Entry(compiler.QueryPI)

	// Instrument: wrap collect with dumps by running manually.
	m.bootstrap(entry)
	dumpR := func(when string) {
		if m.e == 0 {
			return
		}
		// Query env is the bottom of the E chain.
		e := m.e
		for {
			ce := m.peek(word.ZLocal, e).Value()
			if ce == 0 {
				break
			}
			e = ce
		}
		w := m.peek(word.ZLocal, e+envHeader+uint32(rSlot))
		fmt.Printf("%s: R cell=%v -> %v\n", when, w, m.readTerm(w, 50))
	}
	steps := 0
	for !m.halted && m.err == nil && steps < 100000 {
		steps++
		in, nw := kcmisa.Decode(m.fetchCode, m.p)
		m.p += uint32(nw)
		preGC := m.gcStats.Collections
		preH := m.h
		m.stats.Instrs++
		m.exec(&in)
		if m.gcStats.Collections != preGC && testing.Verbose() {
			dumpR(fmt.Sprintf("after GC #%d (preH=%#x h=%#x)", m.gcStats.Collections, preH, m.h))
		}
	}
	if m.err != nil {
		t.Fatal(m.err)
	}
	if m.gcStats.Collections == 0 {
		t.Fatal("no collection happened")
	}
	// R must still read back as the full reversed list.
	e := m.e
	for {
		ce := m.peek(word.ZLocal, e).Value()
		if ce == 0 {
			break
		}
		e = ce
	}
	w := m.peek(word.ZLocal, e+envHeader+uint32(rSlot))
	if got := m.readTerm(w, 50).String(); got != "[1,2,3,4,5]" {
		t.Fatalf("R corrupted by GC: %s", got)
	}
}
