package machine

import (
	"errors"
	"testing"

	"repro/internal/compiler"
)

// Sources for the per-zone overflow drivers.
const (
	// churnSrc makes four words of garbage per iteration; nothing is
	// retained, so collection recovers all of it.
	churnSrc = "churn(0).\nchurn(N) :- mk(N, _), M is N - 1, churn(M).\nmk(N, [N, N, N, N]).\n"
	// growLiveSrc builds one long list reachable from the query
	// variable, so nothing is garbage and collection cannot help.
	growLiveSrc = "grow(0, []).\ngrow(N, [N|T]) :- N > 0, M is N - 1, grow(M, T).\n"
	// deepEnvSrc keeps every environment live (the recursive call is
	// not last), growing the local stack without bound.
	deepEnvSrc = "deep(0).\ndeep(N) :- M is N - 1, deep(M), sink.\nsink.\n"
	// cpPileSrc leaves one untried alternative per iteration, growing
	// the choice-point stack without bound.
	cpPileSrc = "p(_) :- q.\np(_) :- q.\nq.\nr(0).\nr(N) :- p(N), M is N - 1, r(M).\n"
	// trailPileSrc binds, every iteration, a variable older than the
	// choice point q/1 leaves behind, pushing one trail entry that is
	// never popped.
	trailPileSrc = "mk(_).\nq(a).\nq(b).\nt(0).\nt(N) :- mk(X), q(_), X = a, M is N - 1, t(M).\n"
)

// TestOverflowSentinelTaxonomy pins, for each zone of the data space,
// the exact sentinel its overflow surfaces (via errors.Is, with the
// other stack sentinels excluded), and which overflows the collector
// can recover from: a heap overflow whose heap is mostly garbage is
// transparently collected and the run completes, while live-data heap
// exhaustion and the three other stacks stay terminal even with
// collection enabled.
func TestOverflowSentinelTaxonomy(t *testing.T) {
	stackErrs := []error{ErrHeapOverflow, ErrLocalOverflow, ErrChoiceOverflow, ErrTrailOverflow}
	cases := []struct {
		name     string
		src, qry string
		cfg      Config
		want     error
		recovers bool // completes when overflow-triggered collection is on
	}{
		{
			name: "heap-garbage", src: churnSrc, qry: "churn(2000).",
			cfg:      Config{GlobalBase: 0x10000, GlobalSize: 0x800},
			want:     ErrHeapOverflow,
			recovers: true,
		},
		{
			name: "heap-live", src: growLiveSrc, qry: "grow(100000, L).",
			cfg:  Config{GlobalBase: 0x10000, GlobalSize: 0x1000},
			want: ErrHeapOverflow,
		},
		{
			name: "local", src: deepEnvSrc, qry: "deep(100000).",
			cfg:  Config{LocalBase: 0x400000, LocalSize: 0x400},
			want: ErrLocalOverflow,
		},
		{
			name: "choice", src: cpPileSrc, qry: "r(100000).",
			cfg:  Config{ChoiceBase: 0x800000, ChoiceSize: 0x200},
			want: ErrChoiceOverflow,
		},
		{
			name: "trail", src: trailPileSrc, qry: "t(100000).",
			cfg:  Config{TrailBase: 0xC00000, TrailSize: 0x40},
			want: ErrTrailOverflow,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Collection off: every overflow is terminal and typed.
			off := tc.cfg
			off.GCOnOverflow = Off
			_, _, err := run(t, tc.src, tc.qry, off)
			if !errors.Is(err, tc.want) {
				t.Fatalf("GC off: got %v, want %v", err, tc.want)
			}
			for _, other := range stackErrs {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("GC off: error %v also matches %v", err, other)
				}
			}
			// Collection on (the default).
			_, res, err := run(t, tc.src, tc.qry, tc.cfg)
			if tc.recovers {
				if err != nil || !res.Success {
					t.Fatalf("GC on: want recovery, got err=%v success=%v", err, res.Success)
				}
			} else if !errors.Is(err, tc.want) {
				t.Fatalf("GC on: want terminal %v, got %v", tc.want, err)
			}
		})
	}
}

// TestCutTidiesTrail is the regression for trail growth under cut:
// each iteration binds a variable older than q/1's choice point (one
// trail entry) and then cuts the choice point away. The entries can
// never be unwound after the cut, and before trail tidying they
// accumulated until ErrTrailOverflow. With tidying, the run completes
// in a trail far smaller than the iteration count.
func TestCutTidiesTrail(t *testing.T) {
	src := "mk(_).\nq(a).\nq(b).\nt(0).\nt(N) :- mk(X), q(_), X = a, !, M is N - 1, t(M).\n"
	cfg := Config{TrailBase: 0xC00000, TrailSize: 0x40}
	m, res, err := run(t, src, "t(500).", cfg)
	if err != nil || !res.Success {
		t.Fatalf("tidied run: err=%v success=%v", err, res.Success)
	}
	if m.tr >= cfg.TrailBase+cfg.TrailSize {
		t.Fatalf("trail top 0x%x beyond the zone", m.tr)
	}
	// The same program without the cut must still overflow: tidying
	// only reclaims entries made unconditional by a cut.
	if _, _, err := run(t, trailPileSrc, "t(500).", cfg); !errors.Is(err, ErrTrailOverflow) {
		t.Fatalf("uncut control: got %v, want ErrTrailOverflow", err)
	}
}

// TestSessionSurvivesCollections runs the garbage-heavy query as a
// preemptible session in a tiny heap: collections triggered inside
// RunFor slices must not disturb suspend/resume, and the session must
// reach the same answer as a one-shot run.
func TestSessionSurvivesCollections(t *testing.T) {
	im := buildImage(t, churnSrc, "churn(2000).")
	m, err := New(im, Config{GlobalBase: 0x10000, GlobalSize: 0x800})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	m.Begin(entry)
	slices := 0
	for {
		st, err := m.RunFor(nil, 2000)
		if err != nil {
			t.Fatalf("slice %d: %v", slices, err)
		}
		slices++
		if st != Suspended {
			break
		}
		if slices > 10000 {
			t.Fatal("session never finished")
		}
	}
	res := m.Result()
	if !res.Success {
		t.Fatal("session failed")
	}
	if res.GC.Collections == 0 {
		t.Fatal("expected collections in a tiny heap")
	}
	if slices < 2 {
		t.Fatalf("want the run to span several slices, got %d", slices)
	}
}
