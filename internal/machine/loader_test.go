package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/term"
)

// compileModule compiles source text into a module sharing syms.
func compileModule(t *testing.T, c *compiler.Compiler, src string) *compiler.Module {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testIncrementalLoad consults a base program, boots a machine, then
// loads a second compilation unit (which calls into the first) at run
// time via the given loader, and finally runs a query against the new
// predicate.
func testIncrementalLoad(t *testing.T, batch bool) {
	c := compiler.New(nil)

	// Base program: the library.
	base := compileModule(t, c, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`)
	goal, err := reader.ParseTerm("true.")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(base, goal); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Link(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Incrementally compiled unit: calls the already loaded app/3 and
	// carries its own query entry.
	inc := compileModule(t, c, `
double(L, D) :- app(L, L, D).
`)
	q, err := reader.ParseTerm("double([a,b], D).")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(inc, q); err != nil {
		t.Fatal(err)
	}
	loadBase := m.CodeTop()
	if batch {
		// Page handover rounds up to a page boundary.
		loadBase = (loadBase + 0x3FFF) &^ uint32(0x3FFF)
	}
	im2, err := asm.LinkAt(inc, loadBase, im.Entries)
	if err != nil {
		t.Fatal(err)
	}
	var got uint32
	if batch {
		got, err = m.LoadBatch(im2.Code)
	} else {
		got, err = m.LoadIncremental(im2.Code)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != loadBase {
		t.Fatalf("loaded at %#x, linked for %#x", got, loadBase)
	}

	entry, ok := im2.Entry(compiler.QueryPI)
	if !ok {
		t.Fatal("no query entry in incremental unit")
	}
	res, err := m.Run(entry)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("incremental query failed")
	}
	b := m.QueryBindings(im2.QueryVars)
	if d := b[term.Var("D")]; d.String() != "[a,b,a,b]" {
		t.Fatalf("D = %v", d)
	}
}

// TestLoadIncremental exercises the write-through-the-code-cache path
// of section 3.2.1.
func TestLoadIncremental(t *testing.T) { testIncrementalLoad(t, false) }

// TestLoadBatch exercises the batch path: stage in the data space,
// flush, and attach the physical pages to the code space.
func TestLoadBatch(t *testing.T) { testIncrementalLoad(t, true) }

// TestLoadSequence loads several units one after another, each
// calling predicates from all earlier ones.
func TestLoadSequence(t *testing.T) {
	c := compiler.New(nil)
	base := compileModule(t, c, "inc(X, Y) :- Y is X + 1.\n")
	g, _ := reader.ParseTerm("true.")
	if err := c.CompileQuery(base, g); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Link(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entries := map[term.Indicator]uint32{}
	for k, v := range im.Entries {
		entries[k] = v
	}
	srcs := []string{
		"inc2(X, Y) :- inc(X, Z), inc(Z, Y).\n",
		"inc4(X, Y) :- inc2(X, Z), inc2(Z, Y).\n",
		"inc8(X, Y) :- inc4(X, Z), inc4(Z, Y).\n",
	}
	for _, src := range srcs {
		mod := compileModule(t, c, src)
		im2, err := asm.LinkAt(mod, m.CodeTop(), entries)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadIncremental(im2.Code); err != nil {
			t.Fatal(err)
		}
		for k, v := range im2.Entries {
			entries[k] = v
		}
	}
	// Final query against the last unit.
	qmod := compileModule(t, c, "")
	g2, _ := reader.ParseTerm("inc8(0, N).")
	if err := c.CompileQuery(qmod, g2); err != nil {
		t.Fatal(err)
	}
	im3, err := asm.LinkAt(qmod, m.CodeTop(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadIncremental(im3.Code); err != nil {
		t.Fatal(err)
	}
	entry, _ := im3.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	if err != nil || !res.Success {
		t.Fatalf("run: %v %v", err, res.Success)
	}
	if n := m.QueryBindings(im3.QueryVars)[term.Var("N")]; n.String() != "8" {
		t.Fatalf("N = %v", n)
	}
}
