package machine

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/mmu"
	"repro/internal/word"
)

// CodeError rejects a malformed code block at load time: undecodable
// or truncated instructions, or jump/branch/call targets outside the
// loaded code space. The machine never executes a word of a rejected
// block.
type CodeError struct {
	Base  uint32 // intended load address of the block
	Diags []analysis.Diag
}

func (e *CodeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: rejecting code block at %d (%d findings)", e.Base, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

// checkCode validates an encoded block before any word reaches the
// code space. Verification goes through the analyzer's verdict cache:
// the compile→load path checks every block twice, and a machine pool
// constructs each member from the same image, so a block already
// vetted at this placement is a hash lookup.
func checkCode(code []word.Word, base, codeTop uint32) error {
	if ds := analysis.CheckEncodedCached(code, base, codeTop); len(ds) > 0 {
		return &CodeError{Base: base, Diags: ds}
	}
	return nil
}

// Incremental compilation support (section 3.2.1). KCM keeps separate
// code and data address spaces; newly compiled code can reach the
// code space two ways:
//
//   - incrementally, writing each word directly through the
//     write-through code cache (cheap for a clause or two);
//   - in batch, writing a large block into the data space (where the
//     copy-back cache makes writes efficient), then asking the memory
//     management system to detach the staged pages from the data
//     space and attach the physical pages to the code space.

// CodeTop returns the first free code-space address, where the next
// incremental load will land.
func (m *Machine) CodeTop() uint32 { return m.codeTop }

// LoadIncremental writes a freshly linked code block at CodeTop
// through the code cache and returns its base address.
func (m *Machine) LoadIncremental(code []word.Word) (uint32, error) {
	base := m.codeTop
	if err := checkCode(code, base, m.codeTop); err != nil {
		return 0, err
	}
	for i, w := range code {
		cost, err := m.icache.Write(base+uint32(i), w)
		m.stats.Cycles += uint64(cost)
		if err != nil {
			return 0, fmt.Errorf("machine: incremental load: %w", err)
		}
	}
	m.codeTop += uint32(len(code))
	m.shadowWrite(base, code)
	m.invalidateFacts(base, m.codeTop)
	m.growPredecode(m.codeTop)
	m.invalidatePredecode(base, m.codeTop)
	m.invalidateFused(base, m.codeTop)
	return base, nil
}

// LoadBatch stages a code block in the data space and hands the
// underlying physical pages over to the code space. The block is
// placed at CodeTop rounded up to a page boundary (page handover works
// in whole pages). It returns the code-space base address of the
// block.
func (m *Machine) LoadBatch(code []word.Word) (uint32, error) {
	if len(code) == 0 {
		return m.codeTop, nil
	}
	// Round the load address to a page boundary.
	base := (m.codeTop + mmu.PageWords - 1) &^ (mmu.PageWords - 1)
	pages := (uint32(len(code)) + mmu.PageWords - 1) / mmu.PageWords
	if err := checkCode(code, base, m.codeTop); err != nil {
		return 0, err
	}

	// Stage in the data space: a scratch window in the static zone,
	// page-aligned so the frames can be detached wholesale.
	stageBase := uint32(0x0E00000)
	m.dmmu.SetZone(word.ZStatic, mmu.Zone{
		Start: stageBase, End: stageBase + pages*mmu.PageWords,
		AllowedTypes: mmu.TypeMask(word.TDataPtr),
	})
	for i, w := range code {
		cost, err := m.dcache.Write(stageBase+uint32(i), word.ZStatic, w)
		m.stats.Cycles += uint64(cost)
		if err != nil {
			return 0, fmt.Errorf("machine: batch stage: %w", err)
		}
	}
	// Flush the staged lines so physical memory holds the truth, then
	// drop them from the data cache: the virtual data page is about to
	// disappear.
	cost, err := m.dcache.Flush()
	m.stats.Cycles += uint64(cost)
	if err != nil {
		return 0, err
	}
	m.dcache.InvalidateRange(word.ZStatic, stageBase, stageBase+pages*mmu.PageWords)

	// Hand each physical page from the data space to the code space.
	for p := uint32(0); p < pages; p++ {
		frame, ok := m.dmmu.Unmap(stageBase + p*mmu.PageWords)
		if !ok {
			return 0, fmt.Errorf("machine: batch load: staged page %d unmapped", p)
		}
		m.cmmu.Map(base+p*mmu.PageWords, frame)
	}
	m.codeTop = base + uint32(len(code))
	m.shadowWrite(base, code)
	m.invalidateFacts(base, m.codeTop)
	m.growPredecode(m.codeTop)
	m.invalidatePredecode(base, m.codeTop)
	m.invalidateFused(base, m.codeTop)
	return base, nil
}

// PatchCode overwrites len(code) words of already-loaded code at
// addr, writing through the code cache exactly as incremental
// compilation does — the paper's coherence rule: a code-space store
// updates memory and the write-through code cache in the same access,
// so a later fetch can never see stale words. The predecoded entries
// covering the patched range are invalidated for the same reason
// (including instructions that begin before the range but extend into
// it, and re-partitioned multi-word boundaries).
//
// The block is validated before any word lands: it must decode
// cleanly, multi-word instructions must not be truncated, and control
// transfers must target loaded code (boundaries inside the patch,
// anywhere in [0, CodeTop) outside it).
func (m *Machine) PatchCode(addr uint32, code []word.Word) error {
	end := uint64(addr) + uint64(len(code))
	if end > uint64(m.codeTop) {
		return fmt.Errorf("machine: patch [%d,%d) outside loaded code [0,%d)",
			addr, end, m.codeTop)
	}
	if ds := analysis.CheckPatched(code, addr, m.codeTop); len(ds) > 0 {
		return &CodeError{Base: addr, Diags: ds}
	}
	for i, w := range code {
		cost, err := m.icache.Write(addr+uint32(i), w)
		m.stats.Cycles += uint64(cost)
		if err != nil {
			return fmt.Errorf("machine: patch: %w", err)
		}
	}
	m.shadowWrite(addr, code)
	m.invalidateFacts(addr, uint32(end))
	m.invalidatePredecode(addr, uint32(end))
	m.invalidateFused(addr, uint32(end))
	return nil
}
