package machine_test

// The differential gate for runtime code mutation: a program compiled
// statically and the same program built clause-by-clause through the
// dynamic database's assert path must be indistinguishable to a
// caller — identical solution sets in identical order, and, once both
// machines are warm, identical simulated cycle and cache counters.
// The second half is the strong claim: the assert-built image carries
// stub blocks and the dead remnants of every per-mutation rebuild,
// laid out at different addresses than the static image, so equal
// warm counters mean the dynamic compiler emits the same instruction
// streams and the memory system's behaviour is layout-independent
// once everything is cache-resident.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dyndb"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
)

// diffPrograms: three suite programs, seven dynamic predicates, two
// goals each. Every predicate is declared dynamic so the assert-built
// twin can construct the whole program at runtime.
var diffPrograms = []struct {
	name  string
	src   string
	goals []string
}{
	{
		name: "colors",
		src: `
:- dynamic(color/1).
:- dynamic(likes/1).
color(red).
color(green).
color(blue).
likes(X) :- color(X).
`,
		goals: []string{"likes(X).", "color(blue)."},
	},
	{
		name: "lists",
		src: `
:- dynamic(app/3).
:- dynamic(nrev/2).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`,
		goals: []string{"nrev([a,b,c,d,e,f], R).", "app(X, Y, [1,2,3])."},
	},
	{
		name: "family",
		src: `
:- dynamic(parent/2).
:- dynamic(anc/2).
:- dynamic(member/2).
parent(a, b).
parent(b, c).
parent(c, d).
anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`,
		goals: []string{"anc(a, X).", "member(X, [r,s,t])."},
	},
}

const diffBudget = 1_000_000_000

// enumerate drives one complete enumeration of the goal loaded at
// entry and renders every solution's bindings.
func enumerate(t *testing.T, m *machine.Machine, entry uint32, vars map[term.Var]int) ([]string, machine.Result) {
	t.Helper()
	var sols []string
	m.Begin(entry)
	for {
		st, err := m.RunFor(context.Background(), diffBudget)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if st == machine.Suspended {
			t.Fatalf("suspended on a %d-step budget", int64(diffBudget))
		}
		res := m.Result()
		if !res.Success {
			return sols, res
		}
		sols = append(sols, renderBindings(m.QueryBindings(vars)))
		if err := m.Redo(); err != nil {
			t.Fatalf("redo: %v", err)
		}
	}
}

func renderBindings(b map[term.Var]term.Term) string {
	parts := make([]string, 0, len(b))
	for v, val := range b {
		parts = append(parts, fmt.Sprintf("%s=%s", v, val))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// runStatic compiles the program the classic way and runs the goal
// twice on one machine: a cold pass to warm caches, predecode and
// fusion, then the measured pass after ResetStats.
func runStatic(t *testing.T, src, goal string) ([]string, machine.Result) {
	t.Helper()
	im, err := core.MustLoad(src).CompileQuery(goal)
	if err != nil {
		t.Fatalf("static compile: %v", err)
	}
	m, err := machine.New(im, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := im.Entry(compiler.QueryPI)
	if !ok {
		t.Fatal("static image lost its query entry")
	}
	enumerate(t, m, entry, im.QueryVars)
	m.ResetStats()
	return enumerate(t, m, entry, im.QueryVars)
}

// runAsserted builds the same program clause by clause through the
// dynamic database — every predicate chain grows one assertz at a
// time, with a full rebuild and re-admission per mutation — then runs
// the goal twice like runStatic.
func runAsserted(t *testing.T, src, goal string) ([]string, machine.Result) {
	t.Helper()
	im, ds, err := core.MustLoad(src).BaseImage()
	if err != nil {
		t.Fatalf("base image: %v", err)
	}
	db, err := dyndb.New(im, ds.Order)
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range ds.Order {
		for _, cl := range ds.Clauses[pi] {
			if _, err := db.Assertz(cl); err != nil {
				t.Fatalf("assertz %v: %v", pi, err)
			}
		}
	}
	st, err := dyndb.NewStore(db, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := reader.ParseTerm(goal)
	if err != nil {
		t.Fatalf("goal %q: %v", goal, err)
	}
	entry, vars, err := st.LoadGoal(g)
	if err != nil {
		t.Fatalf("load goal: %v", err)
	}
	m := st.Machine()
	enumerate(t, m, entry, vars)
	m.ResetStats()
	return enumerate(t, m, entry, vars)
}

func TestDynamicDifferential(t *testing.T) {
	for _, p := range diffPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, goal := range p.goals {
				sSols, sRes := runStatic(t, p.src, goal)
				dSols, dRes := runAsserted(t, p.src, goal)

				if len(sSols) == 0 {
					t.Fatalf("%s: static run found no solutions — the goal exercises nothing", goal)
				}
				if strings.Join(sSols, ";") != strings.Join(dSols, ";") {
					t.Errorf("%s: solution sets differ\n static: %v\n dynamic: %v", goal, sSols, dSols)
					continue
				}
				if sRes.Stats != dRes.Stats {
					t.Errorf("%s: warm machine counters differ\n static: %+v\n dynamic: %+v", goal, sRes.Stats, dRes.Stats)
				}
				if sRes.CCache != dRes.CCache {
					t.Errorf("%s: warm code-cache counters differ\n static: %+v\n dynamic: %+v", goal, sRes.CCache, dRes.CCache)
				}
				if sRes.DCache != dRes.DCache {
					t.Errorf("%s: warm data-cache counters differ\n static: %+v\n dynamic: %+v", goal, sRes.DCache, dRes.DCache)
				}
			}
		})
	}
}
