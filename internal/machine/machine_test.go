package machine

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/term"
)

func buildImage(t *testing.T, src, query string) *asm.Image {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	c := compiler.New(nil)
	m, err := c.CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	goal, err := reader.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(m, goal); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Link(m)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func run(t *testing.T, src, query string, cfg Config) (*Machine, Result, error) {
	t.Helper()
	im := buildImage(t, src, query)
	m, err := New(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	return m, res, err
}

const loopSrc = `
loop(0).
loop(N) :- N > 0, M is N - 1, loop(M).
`

func TestHeapOverflowTraps(t *testing.T) {
	// A tiny global zone must trap on overflow, not corrupt memory:
	// the hardware stack-overflow check of the paper.
	src := "grow(0, []).\ngrow(N, [N|T]) :- N > 0, M is N - 1, grow(M, T).\n"
	_, _, err := run(t, src, "grow(100000, _).", Config{
		GlobalBase: 0x10000, GlobalSize: 0x1000, GCOnOverflow: Off,
	})
	if err == nil || !strings.Contains(err.Error(), "zone") {
		t.Fatalf("want zone trap, got %v", err)
	}
}

func TestChoiceOverflowTraps(t *testing.T) {
	// Non-deterministic predicates pile up choice points.
	src := "p(_) :- q.\np(_) :- q.\nq.\nr(0).\nr(N) :- p(N), M is N - 1, r(M).\n"
	_, _, err := run(t, src, "r(100000).", Config{
		ChoiceBase: 0x800000, ChoiceSize: 0x200,
	})
	if err == nil || !strings.Contains(err.Error(), "zone") {
		t.Fatalf("want choice-zone trap, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	src := "spin :- spin.\n"
	_, _, err := run(t, src, "spin.", Config{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestArithmeticErrors(t *testing.T) {
	for _, q := range []string{
		"X is 1 // 0.",
		"X is 1 mod 0.",
		"p(Z), X is Z + 1.", // atom operand reaches the ALU
		"X is Y + 1.",       // unbound operand
	} {
		_, _, err := run(t, "p(foo).\n", q, Config{})
		if err == nil {
			t.Errorf("%q: expected machine error", q)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	m, res, err := run(t, "ok.\n", "X is 1.5 + 2.25, X < 4.0, Y is X * 2.0.", Config{})
	if err != nil || !res.Success {
		t.Fatalf("float query: %v %v", err, res.Success)
	}
	b := m.QueryBindings(map[term.Var]int{"X": 0, "Y": 1})
	if b["X"].String() != "3.75" || b["Y"].String() != "7.5" {
		t.Fatalf("bindings %v", b)
	}
}

func TestShallowCountersDeterministicLoop(t *testing.T) {
	// The loop predicate has a const and a var clause; every call with
	// N>0 dispatches through the switch default straight to clause 2
	// (determinate), and N=0 hits the const bucket's try block whose
	// guard keeps it shallow until the neck.
	_, res, err := run(t, loopSrc, "loop(1000).", Config{})
	if err != nil || !res.Success {
		t.Fatal(err)
	}
	s := res.Stats
	if s.ShallowFails != 0 {
		t.Errorf("unexpected shallow fails: %d", s.ShallowFails)
	}
	if s.DeepFails != 0 {
		t.Errorf("unexpected deep fails: %d", s.DeepFails)
	}
	// Only the final loop(0) materialises one choice point at its neck
	// (clause 1 succeeded with clause 2 still pending).
	if s.ChoicePoints > 2 {
		t.Errorf("determinate loop created %d choice points", s.ChoicePoints)
	}
}

func TestShallowAvoidsChoicePoints(t *testing.T) {
	// max/3-style guard selection: shallow mode never materialises a
	// choice point when the guard commits, eager mode always does.
	src := "m(X, Y, X) :- X >= Y.\nm(X, Y, Y) :- X < Y.\nrun(0).\nrun(N) :- m(1, 2, _), m(2, 1, _), M is N - 1, run(M).\n"
	_, shal, err := run(t, src, "run(500).", Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, eag, err := run(t, src, "run(500).", Config{Shallow: Off})
	if err != nil {
		t.Fatal(err)
	}
	if !shal.Success || !eag.Success {
		t.Fatal("runs failed")
	}
	// m(2,1,_) commits on clause 1's guard at the neck with an
	// alternative remaining, so shallow still creates those; but
	// m(1,2,_) fails clause 1 shallowly and enters the trust clause
	// with none. Eager mode pays a full choice point for every call.
	if shal.Stats.ChoicePoints >= eag.Stats.ChoicePoints {
		t.Errorf("shallow %d CPs >= eager %d", shal.Stats.ChoicePoints, eag.Stats.ChoicePoints)
	}
	if shal.Stats.Cycles >= eag.Stats.Cycles {
		t.Errorf("shallow %d cycles >= eager %d", shal.Stats.Cycles, eag.Stats.Cycles)
	}
}

func TestTraceOutput(t *testing.T) {
	var tr strings.Builder
	_, res, err := run(t, "ok.\n", "ok.", Config{Trace: &tr})
	if err != nil || !res.Success {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "proceed") || !strings.Contains(tr.String(), "halt") {
		t.Fatalf("trace incomplete:\n%s", tr.String())
	}
}

func TestResetStatsKeepsCachesWarm(t *testing.T) {
	im := buildImage(t, loopSrc, "loop(200).")
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	cold := m.Stats().Cycles
	m.ResetStats()
	res, err := m.Run(entry)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("warm run failed")
	}
	if res.Stats.Cycles >= cold {
		t.Errorf("warm run (%d cycles) not faster than cold (%d)", res.Stats.Cycles, cold)
	}
	if res.CCache.ReadMiss != 0 {
		t.Errorf("warm run still missed code cache %d times", res.CCache.ReadMiss)
	}
}

func TestKlipsArithmetic(t *testing.T) {
	s := Stats{Cycles: 1_250_000, Inferences: 1000, NsPerCycle: 80}
	if ms := s.Millis(); ms != 100 {
		t.Fatalf("ms = %v", ms)
	}
	if k := s.Klips(); k != 10 {
		t.Fatalf("Klips = %v", k)
	}
	s.NsPerCycle = 0 // defaults to 80
	if s.Seconds() != 0.1 {
		t.Fatalf("seconds %v", s.Seconds())
	}
}

func TestMemoryGrowthStaysBounded(t *testing.T) {
	// LCO + trail unwinding: a long deterministic loop must not leak
	// local or choice stack (the mapped page count stays small).
	m, res, err := run(t, loopSrc, "loop(200000).", Config{})
	if err != nil || !res.Success {
		t.Fatal(err)
	}
	if pages := m.dmmu.MappedPages(); pages > 8 {
		t.Errorf("loop touched %d data pages; stacks are leaking", pages)
	}
}
