package machine

import (
	"errors"

	"repro/internal/gc"
	"repro/internal/trace"
	"repro/internal/word"
)

// Garbage collection for the global stack.
//
// The KCM data word reserves two GC bits and the zone-check unit is
// explicitly designed to trigger collection when a stack crosses a
// soft limit (section 3.2.3); the collector itself runs as machine
// code. The algorithm lives in internal/gc: a pointer-reversal mark
// over the root set using the word's GC bits, a sliding compaction
// (cell order — and therefore the saved H watermarks — survives), and
// trail compression. This file binds it to the machine: the store
// adapter, the root set, the cost model, and the overflow-retry
// policy that turns ErrHeapOverflow from a fatal fault into a
// collection point.
//
// Collection runs either at a call boundary (the size-threshold
// trigger, where the machine state is minimal) or at an arbitrary
// instruction that overflowed the heap mid-execution. The second case
// is why the collector clamps half-built blocks at the heap top and
// forwards pointers AT H: every heap-allocating instruction is
// written to be restartable, and after a collection the faulting
// instruction re-runs against the compacted heap.

// GCStats counts collector activity.
type GCStats struct {
	Collections uint64
	LiveWords   uint64
	FreedWords  uint64
	TrailDrops  uint64 // trail entries dropped by compression
	Cycles      uint64
}

// gcCyclesPerWord is the modelled software cost of scanning and
// moving one word during collection (mark + update + slide).
const gcCyclesPerWord = 4

// gcLayout hands the machine's frame geometry to the collector.
var gcLayout = gc.Layout{
	EnvLink: 0, EnvSize: 2, EnvHeader: envHeader,
	CPPrev: cpPrev, CPE: cpE, CPH: cpH, CPTR: cpTR,
	CPArity: cpArity, CPHeader: cpHeader,
}

// machineStore adapts the machine's untimed, cache-coherent access
// path to the collector's Store interface.
type machineStore struct{ m *Machine }

func (s machineStore) Read(z word.Zone, a uint32) word.Word     { return s.m.peek(z, a) }
func (s machineStore) Write(z word.Zone, a uint32, w word.Word) { s.m.poke(z, a, w) }

// maybeGC runs a collection when the heap has grown past the
// configured threshold. Called at call/execute boundaries.
func (m *Machine) maybeGC() {
	if m.gcThreshold == 0 || m.h < m.cfg.GlobalBase+m.gcThreshold {
		return
	}
	m.collect()
}

// collect performs one collection of [GlobalBase, H), charging the
// simulated cost to the cycle counter and emitting gc_start/gc_end
// trace events when a hook is installed. The cost is tracked
// separately in GCStats.Cycles so the traced loop can attribute it to
// the <gc> pseudo-predicate instead of the interrupted instruction.
func (m *Machine) collect() {
	base := m.cfg.GlobalBase
	used := m.h - base
	if used == 0 {
		return
	}
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KGCStart, P: m.traceP, Addr: m.h})
	}
	roots := gc.Roots{
		Regs: m.regs[:], E: m.e, B: m.b,
		H: &m.h, HB: &m.hb, ShadowH: &m.shadowH, S: &m.s,
		TR: &m.tr, ShadowTR: &m.shadowTR,
		HeapBase: base, TrailBase: m.cfg.TrailBase,
	}
	res := gc.Collect(machineStore{m}, &roots, gcLayout)
	m.gcStats.Collections++
	m.gcStats.LiveWords += uint64(res.Live)
	m.gcStats.FreedWords += uint64(res.Freed)
	m.gcStats.TrailDrops += uint64(res.TrailDropped)
	cost := uint64(used) * gcCyclesPerWord
	m.gcStats.Cycles += cost
	m.stats.Cycles += cost
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KGCEnd, P: m.traceP, Addr: m.h,
			Arg: uint64(res.Freed), Cycles: cost})
	}
}

// recoverHeap decides whether a heap-overflow fault can be cleared by
// collecting. It returns true when the faulting instruction should be
// retried: overflow collection is enabled, the fault is
// ErrHeapOverflow, this is not an immediate repeat of the same
// instruction (an instruction that faults again with nothing executed
// in between cannot be satisfied by collection — typically a wild
// out-of-bounds read classified as overflow, or a heap genuinely too
// small), and the collection left at least the configured watermark
// of free space. On refusal the original fault stands.
func (m *Machine) recoverHeap(addr uint32) bool {
	if !m.gcOnOverflow || !errors.Is(m.err, ErrHeapOverflow) {
		return false
	}
	if addr == m.gcRetryAddr && m.stats.Instrs == m.gcRetryInstr+1 {
		return false
	}
	m.err = nil // collection writes through the fault-checking path
	m.collect()
	if m.err != nil {
		return false
	}
	free := m.cfg.GlobalBase + m.cfg.GlobalSize - m.h
	if free < m.heapWatermark {
		m.errw(ErrHeapOverflow, "collection left %d words free, watermark %d",
			free, m.heapWatermark)
		return false
	}
	m.gcRetryAddr, m.gcRetryInstr = addr, m.stats.Instrs
	return true
}

// poke writes a data word bypassing timing but staying coherent with
// the cache (the collector runs as privileged machine code; its
// traffic is charged in bulk by gcCyclesPerWord).
func (m *Machine) poke(z word.Zone, a uint32, w word.Word) {
	if _, err := m.dcache.Write(a, z, w); err != nil && m.err == nil {
		m.err = err
	}
}

// GCStats returns the collector counters.
func (m *Machine) GCStats() GCStats { return m.gcStats }
