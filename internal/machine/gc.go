package machine

import (
	"repro/internal/word"
)

// Garbage collection for the global stack.
//
// The KCM data word reserves two GC bits and the zone-check unit is
// explicitly designed to trigger collection when a stack crosses a
// soft limit (section 3.2.3); the collector itself runs as machine
// code. This implementation is the classic sliding mark-compact for
// WAM heaps: it preserves cell order (so the H watermarks saved in
// choice points and the trail remain meaningful after forwarding) and
// compacts in place.
//
// Collection happens at call boundaries, where the machine state is
// minimal: the S register is dead, the shallow flag is clear, and the
// live roots are exactly the argument registers, the environment
// chains, the choice-point frames and the trail.

// GCStats counts collector activity.
type GCStats struct {
	Collections uint64
	LiveWords   uint64
	FreedWords  uint64
	Cycles      uint64
}

// gcCyclesPerWord is the modelled software cost of scanning and
// moving one word during collection (mark + update + slide).
const gcCyclesPerWord = 4

// maybeGC runs a collection when the heap has grown past the
// configured threshold. Called at call/execute boundaries.
func (m *Machine) maybeGC() {
	if m.gcThreshold == 0 || m.h < m.cfg.GlobalBase+m.gcThreshold {
		return
	}
	m.collect()
}

// collect performs one sliding mark-compact collection of
// [GlobalBase, H).
func (m *Machine) collect() {
	base := m.cfg.GlobalBase
	used := m.h - base
	if used == 0 {
		return
	}
	live := make([]bool, used)

	inHeap := func(a uint32) bool { return a >= base && a < m.h }

	// markWord marks the object a data word points to, transitively.
	var stack []word.Word
	markWord := func(w word.Word) {
		stack = append(stack, w)
	}
	drain := func() {
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var blockStart, blockLen uint32
			switch w.Type() {
			case word.TRef, word.TDataPtr:
				if w.Zone() != word.ZGlobal || !inHeap(w.Addr()) {
					continue
				}
				blockStart, blockLen = w.Addr(), 1
			case word.TList:
				if !inHeap(w.Addr()) {
					continue
				}
				blockStart, blockLen = w.Addr(), 2
			case word.TStruct:
				if !inHeap(w.Addr()) {
					continue
				}
				f := m.peek(word.ZGlobal, w.Addr())
				if f.Type() != word.TFunc {
					continue
				}
				blockStart, blockLen = w.Addr(), uint32(f.FunctorArity())+1
			default:
				continue
			}
			if blockStart+blockLen > m.h {
				continue // stale pointer beyond the heap top
			}
			// No block-level early-out: a stale register may have
			// marked a prefix of this block as a smaller object, and
			// the remaining cells must still be traced. The per-cell
			// guard below keeps the walk terminating even on cyclic
			// terms.
			for i := uint32(0); i < blockLen; i++ {
				if !live[blockStart-base+i] {
					live[blockStart-base+i] = true
					c := m.peek(word.ZGlobal, blockStart+i)
					if c.Type().Pointer() {
						stack = append(stack, c)
					}
				}
			}
		}
	}

	// Roots: the register file.
	for _, w := range m.regs {
		markWord(w)
	}
	// Environment chains: the current one and every choice-point one.
	markEnvChain := func(e uint32) {
		for e != 0 {
			size := m.peek(word.ZLocal, e+2).Value()
			for i := uint32(0); i < size; i++ {
				markWord(m.peek(word.ZLocal, e+envHeader+i))
			}
			e = m.peek(word.ZLocal, e).Value()
		}
	}
	markEnvChain(m.e)
	// Choice points: saved argument registers and environments.
	for b := m.b; b != 0; {
		arity := m.peek(word.ZChoice, b+cpArity).Value()
		for i := uint32(0); i < arity; i++ {
			markWord(m.peek(word.ZChoice, b+cpHeader+i))
		}
		markEnvChain(m.peek(word.ZChoice, b+cpE).Value())
		b = m.peek(word.ZChoice, b+cpPrev).Value()
	}
	// Trail entries keep their cells alive (the reset on backtracking
	// must find them).
	for tr := m.cfg.TrailBase; tr < m.tr; tr++ {
		markWord(m.peek(word.ZTrail, tr))
	}
	drain()

	// Forwarding: the new address of heap word i is base + the number
	// of live words below it (prefix sums keep cell order, which the
	// watermarks rely on).
	forward := make([]uint32, used+1)
	n := uint32(0)
	for i := uint32(0); i < used; i++ {
		forward[i] = base + n
		if live[i] {
			n++
		}
	}
	forward[used] = base + n

	fwdAddr := func(a uint32) uint32 {
		if !inHeap(a) {
			return a
		}
		return forward[a-base]
	}
	fwdWord := func(w word.Word) word.Word {
		switch w.Type() {
		case word.TRef, word.TDataPtr:
			if w.Zone() == word.ZGlobal && inHeap(w.Addr()) {
				return w.WithValue(fwdAddr(w.Addr()))
			}
		case word.TList, word.TStruct:
			if inHeap(w.Addr()) {
				return w.WithValue(fwdAddr(w.Addr()))
			}
		}
		return w
	}

	// Update roots.
	for i, w := range m.regs {
		m.regs[i] = fwdWord(w)
	}
	// Environment frames are shared between the current E chain and
	// the chains hanging off choice points; each frame must be
	// rewritten exactly once or its pointers get forwarded twice.
	updated := make(map[uint32]bool)
	updEnvChain := func(e uint32) {
		for e != 0 && !updated[e] {
			updated[e] = true
			size := m.peek(word.ZLocal, e+2).Value()
			for i := uint32(0); i < size; i++ {
				a := e + envHeader + i
				m.poke(word.ZLocal, a, fwdWord(m.peek(word.ZLocal, a)))
			}
			e = m.peek(word.ZLocal, e).Value()
		}
	}
	updEnvChain(m.e)
	for b := m.b; b != 0; {
		arity := m.peek(word.ZChoice, b+cpArity).Value()
		for i := uint32(0); i < arity; i++ {
			a := b + cpHeader + i
			m.poke(word.ZChoice, a, fwdWord(m.peek(word.ZChoice, a)))
		}
		// Saved H watermarks move with the prefix map.
		hw := m.peek(word.ZChoice, b+cpH)
		m.poke(word.ZChoice, b+cpH, hw.WithValue(fwdAddr(hw.Value())))
		updEnvChain(m.peek(word.ZChoice, b+cpE).Value())
		b = m.peek(word.ZChoice, b+cpPrev).Value()
	}
	for tr := m.cfg.TrailBase; tr < m.tr; tr++ {
		m.poke(word.ZTrail, tr, fwdWord(m.peek(word.ZTrail, tr)))
	}
	m.hb = fwdAddr(m.hb)
	m.shadowH = fwdAddr(m.shadowH)
	// m.bLTOP is a local-stack address: the collector never moves the
	// local stack, so it stays put.

	// Slide the live cells down, rewriting their pointer contents.
	for i := uint32(0); i < used; i++ {
		if !live[i] {
			continue
		}
		w := m.peek(word.ZGlobal, base+i)
		m.poke(word.ZGlobal, forward[i], fwdWord(w))
	}
	newTop := forward[used]
	freed := m.h - newTop
	m.h = newTop

	m.gcStats.Collections++
	m.gcStats.LiveWords += uint64(n)
	m.gcStats.FreedWords += uint64(freed)
	cost := uint64(used) * gcCyclesPerWord
	m.gcStats.Cycles += cost
	m.stats.Cycles += cost
}

// poke writes a data word bypassing timing but staying coherent with
// the cache (the collector runs as privileged machine code; its
// traffic is charged in bulk by gcCyclesPerWord).
func (m *Machine) poke(z word.Zone, a uint32, w word.Word) {
	if _, err := m.dcache.Write(a, z, w); err != nil && m.err == nil {
		m.err = err
	}
}

// GCStats returns the collector counters.
func (m *Machine) GCStats() GCStats { return m.gcStats }
