package machine

// Costs is the microcycle cost table of the KCM engine. The anchors
// come straight from the paper: one cycle for data-manipulation
// instructions (the register file, ALUs and caches all run in the
// 80 ns cycle), two cycles for immediate jumps and calls (one
// prefetch pipeline break), one/four cycles for untaken/taken
// conditional branches, a five-cycle minimum call/return sequence,
// one reference per cycle when dereferencing, and trail checks free
// because the trail comparators work in parallel. Cache misses are
// accounted separately by the memory system.
type Costs struct {
	Move           int // register moves, loads of constants
	GetConst       int
	GetListRead    int
	GetListWrite   int
	GetStructRead  int
	GetStructWrite int
	UnifyRead      int // unify_* in read mode (one S access)
	UnifyWrite     int // unify_* in write mode (one H push)
	PutVar         int
	PutUnsafe      int
	Call           int // immediate branch + linkage
	Execute        int
	Proceed        int // return: pipeline break
	Allocate       int
	Deallocate     int
	TryShallow     int // shadow-register save (try/retry, shallow mode)
	TrustOp        int
	NeckDet        int // neck with no pending alternatives
	NeckCP         int // neck creating a choice point, plus per-word cost
	CPWord         int // per saved/restored word (RAC loop: 1/cycle)
	SwitchTerm     int // MWAC 16-way branch
	SwitchTable    int // constant/structure table dispatch
	Cut            int
	FailShallow    int // branch to the alternative
	FailDeep       int // branch + state restore setup
	TrailPush      int
	TrailCheckSW   int // per check when the parallel comparators are disabled
	DerefStep      int // per link with the dereference hardware
	DerefStepSW    int // per link without it
	ArithOp        int
	MulOp          int
	DivOp          int
	Compare        int // untaken conditional branch
	CompareTaken   int // additional cycles when the branch is taken
	TestOp         int
	IdentNode      int // per node of ==/\== comparison
	UnifyNode      int // per node of general unification
	BuiltinEsc     int // write/nl protocol cost (unit clause, 5 cycles)
	Halt           int
}

// Defaults is the calibrated KCM cost table. With it, one steady
// concat step (switch, get_list read, two unify reads, get_list
// write, unify write x2, execute) is 15 cycles = 833 Klips peak.
var Defaults = Costs{
	Move:           1,
	GetConst:       1,
	GetListRead:    2,
	GetListWrite:   3,
	GetStructRead:  2,
	GetStructWrite: 4,
	UnifyRead:      1,
	UnifyWrite:     1,
	PutVar:         2,
	PutUnsafe:      2,
	Call:           2,
	Execute:        2,
	Proceed:        3,
	Allocate:       4,
	Deallocate:     3,
	TryShallow:     3,
	TrustOp:        3,
	NeckDet:        1,
	NeckCP:         3,
	CPWord:         1,
	SwitchTerm:     2,
	SwitchTable:    4,
	Cut:            2,
	FailShallow:    5,
	FailDeep:       8,
	TrailPush:      1,
	TrailCheckSW:   2,
	DerefStep:      1,
	DerefStepSW:    3,
	ArithOp:        1,
	MulOp:          34,
	DivOp:          70,
	Compare:        1,
	CompareTaken:   3,
	TestOp:         1,
	IdentNode:      1,
	UnifyNode:      2,
	BuiltinEsc:     5,
	Halt:           1,
}

func (m *Machine) cyc(n int) { m.stats.Cycles += uint64(n) }
