package machine

import (
	"repro/internal/trace"
	"repro/internal/word"
)

// ---- dereferencing ----

// deref follows a reference chain to its end: an unbound cell
// (self-reference) or a non-reference value. The data cache's
// hardwired reference detection follows one link per cycle.
func (m *Machine) deref(w word.Word) word.Word {
	for w.IsRef() {
		v, ok := m.readData(w)
		if !ok {
			return w
		}
		m.stats.DerefSteps++
		if m.hwDeref {
			m.cyc(m.costs.DerefStep)
		} else {
			m.cyc(m.costs.DerefStepSW)
		}
		if v == w || !v.IsRef() {
			if v.IsRef() {
				return v // unbound
			}
			return v
		}
		w = v
	}
	return w
}

// ---- binding and trailing ----

// trailIf pushes the bound cell's address onto the trail when the
// cell is older than the current choice point. The three comparisons
// run in parallel with dereferencing on the real machine, so the
// check itself is free unless the trail hardware is disabled.
func (m *Machine) trailIf(ref word.Word) bool {
	m.stats.TrailChecks++
	if !m.hwTrail {
		m.cyc(m.costs.TrailCheckSW)
	}
	var need bool
	switch ref.Zone() {
	case word.ZGlobal:
		need = ref.Addr() < m.hb
	case word.ZLocal:
		// In shallow mode every bound local cell predates the clause
		// entry (no environment can be allocated before the neck), and
		// a shallow fail restores nothing but the trail, so the
		// binding must always be recorded.
		need = (m.sf && m.shallow) || ref.Addr() < m.bLTOP
	}
	if !need {
		return true
	}
	m.stats.TrailPushes++
	m.cyc(m.costs.TrailPush)
	if !m.wr(word.ZTrail, m.tr, ref) {
		return false
	}
	m.tr++
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KTrail, P: m.traceP, Addr: ref.Value(), Arg: uint64(ref.Zone())})
	}
	return true
}

// bind stores val into the unbound cell designated by ref and trails
// the binding if needed.
func (m *Machine) bind(ref, val word.Word) bool {
	if !m.writeData(ref, val) {
		return false
	}
	return m.trailIf(ref)
}

// bindVars binds one unbound variable to another, local cells to
// global ones and younger cells to older ones, so no reference ever
// points from the global stack into the local stack and resets free
// the younger cell first.
func (m *Machine) bindVars(a, b word.Word) bool {
	za, zb := a.Zone(), b.Zone()
	switch {
	case za == word.ZLocal && zb == word.ZGlobal:
		return m.bind(a, b)
	case za == word.ZGlobal && zb == word.ZLocal:
		return m.bind(b, a)
	default:
		if a.Addr() >= b.Addr() {
			return m.bind(a, b)
		}
		return m.bind(b, a)
	}
}

// unwindTrail resets every binding recorded above "to".
func (m *Machine) unwindTrail(to uint32) {
	for m.tr > to {
		m.tr--
		entry, ok := m.rd(word.ZTrail, m.tr)
		if !ok {
			return
		}
		m.cyc(2) // read entry + reset cell
		// Reset the cell to an unbound variable (self-reference).
		if !m.writeData(entry, word.Ref(entry.Zone(), entry.Addr())) {
			return
		}
	}
}

// tidyTrailAfterCut compacts the top trail segment after a cut has
// discarded choice points. Entries pushed above the surviving choice
// point's saved TR were recorded against barriers the cut removed;
// any entry whose cell is now younger than every remaining barrier
// (heap cell at or above HB, local cell at or above bLTOP) can never
// be unwound and would otherwise accumulate until ErrTrailOverflow in
// deep conjunctions under !. Tidying costs simulated time, so it is
// gated on trail pressure: programs that stay below the high-water
// mark keep byte-identical cycle counts.
func (m *Machine) tidyTrailAfterCut() {
	if m.tr < m.trailHighWater {
		return
	}
	from := m.cfg.TrailBase
	if m.b != 0 {
		w, ok := m.rd(word.ZChoice, m.b+cpTR)
		if !ok {
			return
		}
		from = w.Value()
	}
	out := from
	for t := from; t < m.tr; t++ {
		e, ok := m.rd(word.ZTrail, t)
		if !ok {
			return
		}
		m.cyc(1) // classify against HB / bLTOP
		keep := true
		switch e.Zone() {
		case word.ZGlobal:
			keep = e.Addr() < m.hb
		case word.ZLocal:
			keep = e.Addr() < m.bLTOP
		}
		if !keep {
			continue
		}
		if out != t {
			if !m.wr(word.ZTrail, out, e) {
				return
			}
		}
		out++
	}
	m.tr = out
}

// ---- heap ----

func (m *Machine) heapPush(w word.Word) bool {
	if !m.wr(word.ZGlobal, m.h, w) {
		return false
	}
	m.h++
	return true
}

// newHeapVar pushes an unbound cell and returns the reference to it.
func (m *Machine) newHeapVar() (word.Word, bool) {
	r := word.Ref(word.ZGlobal, m.h)
	if !m.heapPush(r) {
		return 0, false
	}
	return r, true
}

// ---- general unification ----

// sameConst compares two non-reference constants by type and value.
func sameConst(a, b word.Word) bool {
	return a.Type() == b.Type() && a.Value() == b.Value()
}

// unify performs full unification of two words using the push-down
// list, at the microcoded cost of UnifyNode cycles per visited pair.
// It returns (unified, machineOK).
func (m *Machine) unify(a, b word.Word) (bool, bool) {
	m.pdl = m.pdl[:0]
	m.pdl = append(m.pdl, a, b)
	for len(m.pdl) > 0 {
		n := len(m.pdl)
		a, b = m.pdl[n-2], m.pdl[n-1]
		m.pdl = m.pdl[:n-2]
		a, b = m.deref(a), m.deref(b)
		if m.err != nil {
			return false, false
		}
		m.stats.UnifyNodes++
		m.cyc(m.costs.UnifyNode)
		if a == b {
			continue
		}
		aRef, bRef := a.IsRef(), b.IsRef()
		switch {
		case aRef && bRef:
			if !m.bindVars(a, b) {
				return false, false
			}
		case aRef:
			if !m.bind(a, b) {
				return false, false
			}
		case bRef:
			if !m.bind(b, a) {
				return false, false
			}
		default:
			switch a.Type() {
			case word.TAtom, word.TInt, word.TFloat, word.TNil:
				if !sameConst(a, b) {
					return false, true
				}
			case word.TList:
				if b.Type() != word.TList {
					return false, true
				}
				ah, ok1 := m.rd(word.ZGlobal, a.Addr())
				at, ok2 := m.rd(word.ZGlobal, a.Addr()+1)
				bh, ok3 := m.rd(word.ZGlobal, b.Addr())
				bt, ok4 := m.rd(word.ZGlobal, b.Addr()+1)
				if !(ok1 && ok2 && ok3 && ok4) {
					return false, false
				}
				m.pdl = append(m.pdl, at, bt, ah, bh)
			case word.TStruct:
				if b.Type() != word.TStruct {
					return false, true
				}
				af, ok1 := m.rd(word.ZGlobal, a.Addr())
				bf, ok2 := m.rd(word.ZGlobal, b.Addr())
				if !(ok1 && ok2) {
					return false, false
				}
				if !sameConst(af, bf) {
					return false, true
				}
				for i := af.FunctorArity(); i >= 1; i-- {
					aa, ok1 := m.rd(word.ZGlobal, a.Addr()+uint32(i))
					ba, ok2 := m.rd(word.ZGlobal, b.Addr()+uint32(i))
					if !(ok1 && ok2) {
						return false, false
					}
					m.pdl = append(m.pdl, aa, ba)
				}
			default:
				m.errf("unify: bad word %v", a)
				return false, false
			}
		}
	}
	return true, true
}

// identical implements ==/2: structural equality without binding.
func (m *Machine) identical(a, b word.Word) (bool, bool) {
	a, b = m.deref(a), m.deref(b)
	if m.err != nil {
		return false, false
	}
	m.cyc(m.costs.IdentNode)
	if a == b {
		return true, true
	}
	if a.IsRef() || b.IsRef() {
		return false, true // distinct unbound variables
	}
	switch a.Type() {
	case word.TList:
		if b.Type() != word.TList {
			return false, true
		}
		for i := uint32(0); i < 2; i++ {
			aw, ok1 := m.rd(word.ZGlobal, a.Addr()+i)
			bw, ok2 := m.rd(word.ZGlobal, b.Addr()+i)
			if !(ok1 && ok2) {
				return false, false
			}
			eq, ok := m.identical(aw, bw)
			if !ok || !eq {
				return eq, ok
			}
		}
		return true, true
	case word.TStruct:
		if b.Type() != word.TStruct {
			return false, true
		}
		af, ok1 := m.rd(word.ZGlobal, a.Addr())
		bf, ok2 := m.rd(word.ZGlobal, b.Addr())
		if !(ok1 && ok2) {
			return false, false
		}
		if !sameConst(af, bf) {
			return false, true
		}
		for i := 1; i <= af.FunctorArity(); i++ {
			aw, ok1 := m.rd(word.ZGlobal, a.Addr()+uint32(i))
			bw, ok2 := m.rd(word.ZGlobal, b.Addr()+uint32(i))
			if !(ok1 && ok2) {
				return false, false
			}
			eq, ok := m.identical(aw, bw)
			if !ok || !eq {
				return eq, ok
			}
		}
		return true, true
	default:
		return sameConst(a, b), true
	}
}

// ---- environments ----

const envHeader = 3 // CE, CP, size

// envTop computes the first free local-stack word: above the current
// environment and above the local top protected by the current choice
// point.
func (m *Machine) envTop() uint32 {
	lt := m.cfg.LocalBase
	if m.e != 0 {
		size, ok := m.rd(word.ZLocal, m.e+2)
		if !ok {
			return lt
		}
		lt = m.e + envHeader + size.Value()
	}
	if m.bLTOP > lt {
		lt = m.bLTOP
	}
	return lt
}

func (m *Machine) yAddr(n int) word.Word {
	return word.DataPtr(word.ZLocal, m.e+envHeader+uint32(n))
}

func (m *Machine) readY(n int) (word.Word, bool) {
	return m.readData(m.yAddr(n))
}

func (m *Machine) writeY(n int, w word.Word) bool {
	return m.writeData(m.yAddr(n), w)
}

// ---- choice points ----

// Choice-point frame layout (about 10 words, as in the paper):
// prevB, nextAlt, E, CP, H, TR, B0, LTOP, arity, A1..An.
const (
	cpPrev = iota
	cpNext
	cpE
	cpCP
	cpH
	cpTR
	cpB0
	cpLTOP
	cpArity
	cpHeader // frame header size
)

func ptrOrZero(t word.Type, z word.Zone, v uint32) word.Word {
	if v == 0 {
		return word.Make(word.TImm, word.ZNone, 0)
	}
	return word.Make(t, z, v)
}

// pushCP materialises a choice point. savedH/savedTR are the values
// captured at clause entry (the shadow registers), so a later deep
// fail restores the entry state, not the state at the neck.
func (m *Machine) pushCP(arity int, nextAlt uint32, savedH, savedTR uint32) bool {
	top := m.cfg.ChoiceBase
	if m.b != 0 {
		ar, ok := m.rd(word.ZChoice, m.b+cpArity)
		if !ok {
			return false
		}
		top = m.b + cpHeader + ar.Value()
	}
	ltop := m.envTop()
	frame := []word.Word{
		ptrOrZero(word.TChpPtr, word.ZChoice, m.b),
		word.CodePtr(nextAlt),
		ptrOrZero(word.TEnvPtr, word.ZLocal, m.e),
		word.CodePtr(m.cp),
		word.DataPtr(word.ZGlobal, savedH),
		word.Make(word.TTrailPtr, word.ZTrail, savedTR),
		ptrOrZero(word.TChpPtr, word.ZChoice, m.b0),
		word.DataPtr(word.ZLocal, ltop),
		word.Make(word.TImm, word.ZNone, uint32(arity)),
	}
	for i, w := range frame {
		if !m.wr(word.ZChoice, top+uint32(i), w) {
			return false
		}
	}
	for i := 1; i <= arity; i++ {
		if !m.wr(word.ZChoice, top+cpHeader+uint32(i-1), m.regs[i]) {
			return false
		}
	}
	words := cpHeader + arity
	m.cyc(m.costs.CPWord * words)
	m.stats.CPWords += uint64(words)
	m.stats.ChoicePoints++
	m.b = top
	m.bLTOP = ltop
	m.hb = savedH
	m.cf = true
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KCPCreate, P: m.traceP, Addr: top, Arg: uint64(arity)})
	}
	return true
}

// reloadB refreshes the registers cached from the top choice point
// after B changes (cut, trust).
func (m *Machine) reloadB() bool {
	hw, ok1 := m.rd(word.ZChoice, m.b+cpH)
	lt, ok2 := m.rd(word.ZChoice, m.b+cpLTOP)
	if !(ok1 && ok2) {
		return false
	}
	m.hb = hw.Value()
	m.bLTOP = lt.Value()
	return true
}

// popCP discards the top choice point (trust).
func (m *Machine) popCP() bool {
	prev, ok := m.rd(word.ZChoice, m.b+cpPrev)
	if !ok {
		return false
	}
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KCPPop, P: m.traceP, Addr: m.b})
	}
	m.b = prev.Value()
	return m.reloadB()
}

// failDeep restores the machine state from the top choice point and
// branches to its next alternative.
func (m *Machine) failDeep() {
	m.stats.DeepFails++
	m.cyc(m.costs.FailDeep)
	b := m.b
	rd := func(off uint32) uint32 {
		w, ok := m.rd(word.ZChoice, b+off)
		if !ok {
			return 0
		}
		return w.Value()
	}
	next := rd(cpNext)
	m.e = rd(cpE)
	m.cp = rd(cpCP)
	savedH := rd(cpH)
	savedTR := rd(cpTR)
	m.b0 = rd(cpB0)
	m.bLTOP = rd(cpLTOP)
	arity := int(rd(cpArity))
	for i := 1; i <= arity; i++ {
		w, ok := m.rd(word.ZChoice, b+cpHeader+uint32(i-1))
		if !ok {
			return
		}
		m.regs[i] = w
	}
	m.cyc(m.costs.CPWord * (cpHeader + arity))
	m.unwindTrail(savedTR)
	m.h = savedH
	m.hb = savedH
	m.cf = true
	m.sf = false
	m.p = next
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KCPRestore, P: m.traceP, Addr: b, Arg: uint64(next)})
	}
}

// fail dispatches a unification or test failure: a shallow fail
// restores the three shadow registers and branches to the next
// alternative; a deep fail restores the full choice point.
func (m *Machine) fail() {
	if m.sf && m.shallow {
		m.stats.ShallowFails++
		m.cyc(m.costs.FailShallow)
		m.unwindTrail(m.shadowTR)
		m.h = m.shadowH
		m.p = uint32(m.shadowNext)
		if m.hook != nil {
			m.emit(trace.Event{Kind: trace.KFailShallow, P: m.traceP, Addr: m.p})
		}
		return
	}
	m.sf = false
	m.failDeep()
}
