package machine

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/word"
)

// bootImage compiles a minimal program so the malformed-load tests
// have a running machine to load into.
func bootImage(t *testing.T) *asm.Image {
	t.Helper()
	c := compiler.New(nil)
	mod := compileModule(t, c, `ok.`)
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func encode(t *testing.T, ins ...kcmisa.Instr) []word.Word {
	t.Helper()
	var out []word.Word
	for _, in := range ins {
		ws, err := kcmisa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out = append(out, ws...)
	}
	return out
}

// wantCodeError asserts the loader surfaced a *CodeError carrying at
// least one finding.
func wantCodeError(t *testing.T, err error) *CodeError {
	t.Helper()
	if err == nil {
		t.Fatal("malformed block loaded without error")
	}
	var ce *CodeError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CodeError", err, err)
	}
	if len(ce.Diags) == 0 {
		t.Fatal("CodeError with no findings")
	}
	return ce
}

func TestLoadIncrementalRejectsOutOfRangeTarget(t *testing.T) {
	m, err := New(bootImage(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	top := m.CodeTop()
	block := encode(t,
		kcmisa.Instr{Op: kcmisa.Jump, L: int(top) + 1000}, // past the block
	)
	_, err = m.LoadIncremental(block)
	ce := wantCodeError(t, err)
	if ce.Base != top {
		t.Errorf("CodeError.Base = %d, want %d", ce.Base, top)
	}
	if m.CodeTop() != top {
		t.Errorf("rejected load moved CodeTop: %d -> %d", top, m.CodeTop())
	}
}

func TestLoadIncrementalRejectsTruncatedInstruction(t *testing.T) {
	m, err := New(bootImage(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	full := encode(t, kcmisa.Instr{Op: kcmisa.SwitchOnTerm,
		SwT: &kcmisa.TermSwitch{Var: 0, Const: 0, List: 0, Struct: 0}})
	_, err = m.LoadIncremental(full[:2]) // cut mid-instruction
	wantCodeError(t, err)
}

func TestLoadIncrementalRejectsBadOpcode(t *testing.T) {
	m, err := New(bootImage(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.LoadIncremental([]word.Word{word.Word(250) << 56})
	wantCodeError(t, err)
}

func TestLoadBatchRejectsMalformedBlock(t *testing.T) {
	m, err := New(bootImage(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	top := m.CodeTop()
	block := encode(t, kcmisa.Instr{Op: kcmisa.Jump, L: 1 << 20})
	if _, err := m.LoadBatch(block); err == nil {
		t.Fatal("malformed batch block loaded without error")
	} else {
		wantCodeError(t, err)
	}
	if m.CodeTop() != top {
		t.Errorf("rejected batch load moved CodeTop: %d -> %d", top, m.CodeTop())
	}
}

func TestNewRejectsCorruptImage(t *testing.T) {
	im := bootImage(t)
	im.Code[len(im.Code)-1] = word.Word(250) << 56 // smash an opcode
	if _, err := New(im, Config{}); err == nil {
		t.Fatal("corrupt boot image accepted")
	} else {
		wantCodeError(t, err)
	}
}
