package machine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/term"
)

// The Prolog-level monitor of the paper's tool set: cycles and
// instructions attributed to the predicate whose code is executing,
// resolved statelessly by the instruction address (so backtracking
// and last-call optimisation need no shadow stack).

// profEntry is one predicate's code range and counters.
type profEntry struct {
	pi     term.Indicator
	start  uint32
	cycles uint64
	instrs uint64
}

// profiler maps instruction addresses to predicates.
type profiler struct {
	entries []profEntry // sorted by start address
}

// newProfiler builds the address map from a linked image.
func newProfiler(im *asm.Image) *profiler {
	p := &profiler{}
	for pi, a := range im.Entries {
		p.entries = append(p.entries, profEntry{pi: pi, start: a})
	}
	sort.Slice(p.entries, func(i, j int) bool { return p.entries[i].start < p.entries[j].start })
	return p
}

// locate returns the index of the predicate containing addr.
func (p *profiler) locate(addr uint32) int {
	i := sort.Search(len(p.entries), func(i int) bool { return p.entries[i].start > addr })
	return i - 1 // -1 for the bootstrap word at address 0
}

// account attributes one instruction's cycles.
func (p *profiler) account(addr uint32, cycles uint64) {
	if i := p.locate(addr); i >= 0 {
		p.entries[i].cycles += cycles
		p.entries[i].instrs++
	}
}

// ProfileRow is one line of the predicate profile.
type ProfileRow struct {
	Pred   term.Indicator
	Cycles uint64
	Instrs uint64
}

// Profile returns the per-predicate cycle attribution, heaviest
// first. The machine must have been created with Config.Profile on.
func (m *Machine) Profile() []ProfileRow {
	if m.prof == nil {
		return nil
	}
	var rows []ProfileRow
	for _, e := range m.prof.entries {
		if e.instrs == 0 {
			continue
		}
		rows = append(rows, ProfileRow{Pred: e.pi, Cycles: e.cycles, Instrs: e.instrs})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cycles > rows[j].Cycles })
	return rows
}

// RenderProfile formats a profile like the paper's monitors would.
func RenderProfile(rows []ProfileRow, totalCycles uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %12s\n", "predicate", "cycles", "%", "instructions")
	for _, r := range rows {
		pct := 0.0
		if totalCycles > 0 {
			pct = float64(r.Cycles) / float64(totalCycles) * 100
		}
		fmt.Fprintf(&b, "%-24v %12d %7.1f%% %12d\n", r.Pred, r.Cycles, pct, r.Instrs)
	}
	return b.String()
}
