package machine

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/term"
)

// bootImage compiles a small program+query into a bootable image.
func factsImage(t *testing.T, src, query string) (*asm.Image, *compiler.Compiler, *compiler.Module) {
	t.Helper()
	c := compiler.New(nil)
	mod := compileModule(t, c, src)
	goal, err := reader.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(mod, goal); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	return im, c, mod
}

func TestMachineFacts(t *testing.T) {
	im, _, _ := factsImage(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`, "app([a], [b], X).")
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Facts()
	if f == nil {
		t.Fatal("nil facts")
	}
	pf := f.Pred(term.Ind("app", 3))
	if pf == nil || !pf.Reachable {
		t.Fatalf("app/3 facts missing or dead: %+v", pf)
	}
	if len(pf.Mode) != 3 {
		t.Fatalf("app/3 mode = %v", pf.Mode)
	}
	// Clean cache: the same pointer comes back.
	if m.Facts() != f {
		t.Error("Facts recomputed without any code write")
	}
}

func TestMachineFactsIncrementalInvalidation(t *testing.T) {
	im, c, _ := factsImage(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`, "true.")
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f1 := m.Facts()
	if f1.Pred(term.Ind("double", 2)) != nil {
		t.Fatal("double/2 present before load")
	}

	inc := compileModule(t, c, `
double(L, D) :- app(L, L, D).
`)
	q, err := reader.ParseTerm("double([a], D).")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(inc, q); err != nil {
		t.Fatal(err)
	}
	im2, err := asm.LinkAt(inc, m.CodeTop(), im.Entries)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.LoadIncremental(im2.Code)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im2.Entry(term.Ind("double", 2))
	m.RegisterPred(term.Ind("double", 2), entry)

	f2 := m.Facts()
	if f2 == f1 {
		t.Fatal("facts not invalidated by incremental load")
	}
	df := f2.Pred(term.Ind("double", 2))
	if df == nil || !df.Reachable {
		t.Fatalf("double/2 missing after load: %+v", df)
	}
	if df.Start < base {
		t.Fatalf("double/2 start %d below load base %d", df.Start, base)
	}
	// app/3 predates the load and sits in a clean component: its facts
	// survive the incremental update by pointer.
	if f2.Pred(term.Ind("app", 3)) != f1.Pred(term.Ind("app", 3)) {
		t.Error("app/3 facts recomputed by an update that did not touch it")
	}
	// The machine still runs after all the analysis bookkeeping.
	res, err := m.Run(func() uint32 { e, _ := im2.Entry(compiler.QueryPI); return e }())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("query failed")
	}
}

// TestVerdictCachePoolPath asserts the loader goes through the verdict
// cache: constructing two machines from one image re-checks the same
// block and the second check must be a hit.
func TestVerdictCachePoolPath(t *testing.T) {
	im, _, _ := factsImage(t, `
p(1).
`, "p(X).")
	analysis.ResetVerdictCache()
	defer analysis.ResetVerdictCache()
	if _, err := New(im, Config{}); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := analysis.VerdictCacheStats()
	if _, err := New(im, Config{}); err != nil {
		t.Fatal(err)
	}
	hits, misses := analysis.VerdictCacheStats()
	if misses != missesBefore {
		t.Fatalf("second construction missed the cache (misses %d -> %d)", missesBefore, misses)
	}
	if hits == 0 {
		t.Fatal("second construction produced no cache hit")
	}
}
