package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/term"
)

const memberSrc = `
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`

const nrevTestSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`

// TestRunForParity is the tentpole guarantee: a query driven through
// the resumable session in tiny budget slices produces byte-identical
// counters — simulated cycles, every Stats field, both cache-stat
// blocks — to the same query on the legacy run-to-halt path.
func TestRunForParity(t *testing.T) {
	src, query := nrevTestSrc, "nrev([1,2,3,4,5,6,7,8,9,10], R)."
	im := buildImage(t, src, query)
	entry, _ := im.Entry(compiler.QueryPI)

	m1, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m1.Run(entry)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m2.Begin(entry)
	slices := 0
	for {
		st, err := m2.RunFor(context.Background(), 97) // deliberately odd slice
		if err != nil {
			t.Fatal(err)
		}
		slices++
		if st == Halted {
			break
		}
		if slices > 1_000_000 {
			t.Fatal("did not halt")
		}
	}
	if slices < 2 {
		t.Fatalf("query too small to exercise suspension (%d slices)", slices)
	}
	sliced := m2.Result()

	if direct.Success != sliced.Success {
		t.Fatalf("success: %v vs %v", direct.Success, sliced.Success)
	}
	if direct.Stats != sliced.Stats {
		t.Fatalf("stats differ:\ndirect %+v\nsliced %+v", direct.Stats, sliced.Stats)
	}
	if direct.DCache != sliced.DCache || direct.CCache != sliced.CCache {
		t.Fatalf("cache stats differ:\ndirect %+v %+v\nsliced %+v %+v",
			direct.DCache, direct.CCache, sliced.DCache, sliced.CCache)
	}
	b1 := m1.QueryBindings(im.QueryVars)
	b2 := m2.QueryBindings(im.QueryVars)
	if b1[term.Var("R")].String() != b2[term.Var("R")].String() {
		t.Fatalf("bindings differ: %v vs %v", b1, b2)
	}
}

// TestRedoEnumeration drives redo-based solution enumeration at the
// machine level: each Redo forces a failure into the topmost choice
// point, and the resumed run either finds the next solution or
// reaches the bottom choice point's halt_fail.
func TestRedoEnumeration(t *testing.T) {
	im := buildImage(t, memberSrc, "member(X, [1,2,3]).")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(entry)
	var got []string
	for {
		st, err := m.RunFor(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st != Halted {
			t.Fatalf("status %v", st)
		}
		if !m.Succeeded() {
			break
		}
		got = append(got, m.QueryBindings(im.QueryVars)[term.Var("X")].String())
		if err := m.Redo(); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"1", "2", "3"}
	if len(got) != len(want) {
		t.Fatalf("solutions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solutions %v, want %v", got, want)
		}
	}
	if err := m.Redo(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("redo after exhaustion: %v, want ErrExhausted", err)
	}
}

// TestRedoNotResumable: Redo on a machine that has not halted.
func TestRedoNotResumable(t *testing.T) {
	im := buildImage(t, memberSrc, "member(X, [1,2,3]).")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(entry)
	if err := m.Redo(); !errors.Is(err, ErrNotResumable) {
		t.Fatalf("redo before halt: %v, want ErrNotResumable", err)
	}
}

// TestRunForCancellation: an already-cancelled context stops the run
// within one stride and reports ErrCancelled without poisoning the
// machine (it stays reusable after a Reset).
func TestRunForCancellation(t *testing.T) {
	im := buildImage(t, "spin :- spin.\n", "spin.")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.Begin(entry)
	_, err = m.RunFor(ctx, 10*CheckStride)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause chain lost: %v", err)
	}
	// The machine is fault-free: a fresh session still works.
	m.Reset()
	m.Begin(entry)
	if st, err := m.RunFor(context.Background(), 100); err != nil || st != Suspended {
		t.Fatalf("after reset: %v %v", st, err)
	}
}

// TestRunForDeadline: a context deadline expiring mid-run surfaces as
// ErrDeadline (still within one stride of the expiry).
func TestRunForDeadline(t *testing.T) {
	im := buildImage(t, "spin :- spin.\n", "spin.")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	m.Begin(entry)
	_, err = m.RunFor(ctx, 0)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause chain lost: %v", err)
	}
}

// TestErrorTaxonomy pins the errors.Is classification of the typed
// machine faults.
func TestErrorTaxonomy(t *testing.T) {
	// Step budget on the legacy path.
	_, _, err := run(t, "spin :- spin.\n", "spin.", Config{MaxSteps: 1000})
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("step limit: %v, want ErrStepBudget", err)
	}
	// Heap overflow: a tiny global zone.
	src := "grow(0, []).\ngrow(N, [N|T]) :- N > 0, M is N - 1, grow(M, T).\n"
	_, _, err = run(t, src, "grow(100000, _).", Config{
		GlobalBase: 0x10000, GlobalSize: 0x1000, GCOnOverflow: Off,
	})
	if !errors.Is(err, ErrHeapOverflow) {
		t.Errorf("heap overflow: %v, want ErrHeapOverflow", err)
	}
	// Choice-point overflow.
	src = "p(_) :- q.\np(_) :- q.\nq.\nr(0).\nr(N) :- p(N), M is N - 1, r(M).\n"
	_, _, err = run(t, src, "r(100000).", Config{
		ChoiceBase: 0x800000, ChoiceSize: 0x200,
	})
	if !errors.Is(err, ErrChoiceOverflow) {
		t.Errorf("choice overflow: %v, want ErrChoiceOverflow", err)
	}
	// Arithmetic faults.
	for _, q := range []string{"X is 1 // 0.", "X is Y + 1."} {
		_, _, err := run(t, "p(foo).\n", q, Config{})
		if !errors.Is(err, ErrArithmetic) {
			t.Errorf("%q: %v, want ErrArithmetic", q, err)
		}
	}
}

// TestSuspendedResumeSameBindings is the acceptance check that a
// suspended query resumes to exactly the bindings it would have
// produced uninterrupted, across many different suspension points.
func TestSuspendedResumeSameBindings(t *testing.T) {
	src, query := nrevTestSrc, "nrev([a,b,c,d,e,f], R)."
	im := buildImage(t, src, query)
	entry, _ := im.Entry(compiler.QueryPI)

	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	want := m.QueryBindings(im.QueryVars)[term.Var("R")].String()

	for _, budget := range []uint64{1, 7, 64, 1000} {
		m, err := New(im, Config{})
		if err != nil {
			t.Fatal(err)
		}
		m.Begin(entry)
		for {
			st, err := m.RunFor(nil, budget)
			if err != nil {
				t.Fatal(err)
			}
			if st == Halted {
				break
			}
		}
		if got := m.QueryBindings(im.QueryVars)[term.Var("R")].String(); got != want {
			t.Fatalf("budget %d: R = %s, want %s", budget, got, want)
		}
	}
}

// TestRedoExhaustedIdempotent is the regression test for the
// exhaustion contract: once the enumeration is exhausted, every
// further Redo returns ErrExhausted without executing a single
// instruction or disturbing any counter (an earlier version fell
// through into the failure path and re-ran the query), and RunFor on
// the exhausted machine reports Halted immediately.
func TestRedoExhaustedIdempotent(t *testing.T) {
	im := buildImage(t, memberSrc, "member(X, [1,2,3]).")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(entry)
	sols := 0
	for {
		st, err := m.RunFor(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st != Halted {
			t.Fatalf("status %v", st)
		}
		if !m.Succeeded() {
			break
		}
		sols++
		if err := m.Redo(); err != nil {
			t.Fatal(err)
		}
	}
	if sols != 3 {
		t.Fatalf("enumerated %d solutions, want 3", sols)
	}

	before := m.Result()
	for i := 0; i < 3; i++ {
		if err := m.Redo(); !errors.Is(err, ErrExhausted) {
			t.Fatalf("redo %d after exhaustion: %v, want ErrExhausted", i+1, err)
		}
	}
	if st, err := m.RunFor(nil, 0); err != nil || st != Halted {
		t.Fatalf("RunFor after exhaustion: %v %v, want Halted", st, err)
	}
	after := m.Result()
	if before.Stats != after.Stats {
		t.Fatalf("exhausted machine executed work:\nbefore %+v\nafter  %+v",
			before.Stats, after.Stats)
	}
	if after.Success {
		t.Fatal("exhausted machine reports success")
	}
}

// TestRedoFaultedKeepsCause: Redo on a faulted machine refuses with
// ErrNotResumable while keeping the original fault in the error chain,
// and repeating the call changes nothing.
func TestRedoFaultedKeepsCause(t *testing.T) {
	im := buildImage(t, "spin :- spin.\n", "spin.")
	entry, _ := im.Entry(compiler.QueryPI)
	m, err := New(im, Config{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(entry); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("spin run: %v, want ErrStepBudget", err)
	}
	first := m.Redo()
	if !errors.Is(first, ErrNotResumable) {
		t.Fatalf("redo on faulted machine: %v, want ErrNotResumable", first)
	}
	if !errors.Is(first, ErrStepBudget) {
		t.Fatalf("fault cause dropped from the chain: %v", first)
	}
	second := m.Redo()
	if second == nil || second.Error() != first.Error() {
		t.Fatalf("second redo differs: %v vs %v", second, first)
	}
}
