package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/word"
)

// Invalidation scoping for the untimed dynamic-write paths (dyn.go):
// a mutation must drop exactly the fused handlers and predecoded
// entries that could overlap the written words — and nothing of the
// predicates around them — and every path that reverts words must
// flush them, or a later run executes stale decodes.

// patchPred compiles a replacement chain for pi, links it at the
// predicate's current address and patches it in place. The
// replacement must have the same shape (same encoded size) as the
// original, which the caller guarantees by swapping constants only.
func patchPred(t *testing.T, m *Machine, c *compiler.Compiler, im *asm.Image, pi term.Indicator, clauses ...string) (lo, hi uint32) {
	t.Helper()
	var parsed []term.Term
	for _, cl := range clauses {
		tm, err := reader.ParseTerm(cl)
		if err != nil {
			t.Fatalf("parse %q: %v", cl, err)
		}
		parsed = append(parsed, tm)
	}
	mod, err := c.CompileClauses(pi, parsed)
	if err != nil {
		t.Fatalf("compile %v: %v", pi, err)
	}
	start, ok := im.Entry(pi)
	if !ok {
		t.Fatalf("no entry for %v", pi)
	}
	im2, err := asm.LinkAt(mod, start, im.Entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PatchDyn(start, im2.Code); err != nil {
		t.Fatalf("patch %v: %v", pi, err)
	}
	return start, start + uint32(len(im2.Code))
}

// fusedIn counts installed fused handlers with heads in [lo, hi).
func fusedIn(m *Machine, lo, hi uint32) int {
	n := 0
	for a := lo; a < hi && int64(a) < int64(len(m.fused)); a++ {
		if m.fused[a] != nil {
			n++
		}
	}
	return n
}

// predRange reads a predicate's code range from the facts artifact.
func predRange(t *testing.T, m *Machine, pi term.Indicator) (uint32, uint32) {
	t.Helper()
	pf := m.Facts().Pred(pi)
	if pf == nil {
		t.Fatalf("no facts for %v", pi)
	}
	return pf.Start, pf.End
}

// TestDynPatchDropsOnlyOverlappingFusion mutates one predicate of a
// warm, fusion-installed machine and asserts the scoping rule: the
// mutated predicate's handlers are gone, the neighbouring
// predicate's handlers survive untouched.
func TestDynPatchDropsOnlyOverlappingFusion(t *testing.T) {
	const src = `
p(1, 2, 3).
q(4, 5, 6).
`
	c := compiler.New(nil)
	mod := compileUnit(t, c, src, "p(X, Y, Z), q(A, B, C).")
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.WarmFusion()

	pLo, pHi := predRange(t, m, term.Ind("p", 3))
	qLo, qHi := predRange(t, m, term.Ind("q", 3))
	pBefore, qBefore := fusedIn(m, pLo, pHi), fusedIn(m, qLo, qHi)
	if pBefore == 0 || qBefore == 0 {
		t.Fatalf("want handlers on both predicates, got p=%d q=%d", pBefore, qBefore)
	}

	patchPred(t, m, c, im, term.Ind("p", 3), "p(7, 2, 3) .")

	if got := fusedIn(m, pLo, pHi); got != 0 {
		t.Errorf("mutated predicate keeps %d fused handlers", got)
	}
	if got := fusedIn(m, qLo, qHi); got != qBefore {
		t.Errorf("untouched predicate lost handlers: %d -> %d", qBefore, got)
	}

	// The machine still answers, with the patched constant.
	entry, _ := im.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	if err != nil || !res.Success {
		t.Fatalf("post-patch run: %v %v", err, res.Success)
	}
	if got := m.QueryBindings(im.QueryVars)[term.Var("X")]; got.String() != "7" {
		t.Fatalf("post-patch X = %v, want 7", got)
	}
}

// TestDynPatchInvalidatesOnlyOverlappingPredecode checks the
// predecode side of the same rule, including its diff-awareness: a
// whole-predicate patch that changes one operand word invalidates
// only the span covering that word (plus the downward margin for
// instructions that could straddle into it) — decodes past the
// changed word, and the whole neighbouring predicate, survive.
func TestDynPatchInvalidatesOnlyOverlappingPredecode(t *testing.T) {
	const src = `
p(1, 2, 3).
q(4, 5, 6).
`
	c := compiler.New(nil)
	mod := compileUnit(t, c, src, "p(X, Y, Z), q(A, B, C).")
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if res, err := m.Run(entry); err != nil || !res.Success {
		t.Fatalf("warm run: %v %v", err, res.Success)
	}

	qLo, qHi := predRange(t, m, term.Ind("q", 3))
	before := predecodeWidths(m, m.CodeTop())
	warm := 0
	for _, w := range before[qLo:qHi] {
		if w > 0 {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("q was not predecoded by the warm run")
	}
	shadow := make([]word.Word, m.CodeTop())
	for a := range shadow {
		shadow[a] = m.CodeWordAt(uint32(a))
	}

	patchPred(t, m, c, im, term.Ind("p", 3), "p(7, 2, 3) .")

	// Exactly one word changed: the K operand holding the constant.
	changed := int64(-1)
	for a := range shadow {
		if m.CodeWordAt(uint32(a)) != shadow[a] {
			if changed >= 0 {
				t.Fatalf("more than one word changed (%d and %d)", changed, a)
			}
			changed = int64(a)
		}
	}
	if changed < 0 {
		t.Fatal("patch changed nothing")
	}
	// Cleared: [changed-(MaxInstrWords-1), changed+1). Everything above
	// the changed word keeps its decode.
	lo := changed - (kcmisa.MaxInstrWords - 1)
	if lo < 0 {
		lo = 0
	}
	for a := lo; a <= changed; a++ {
		if got := m.PredecodedWidth(uint32(a)); got != 0 {
			t.Errorf("predecoded entry at %d survived a patch of word %d", a, changed)
		}
	}
	for a := changed + 1; a < int64(m.CodeTop()); a++ {
		if got := m.PredecodedWidth(uint32(a)); got != before[a] {
			t.Errorf("predecode at %d beyond the changed word altered: %d -> %d", a, before[a], got)
		}
	}
}

// TestRollbackFlushesRevertedPredecode is the regression test for a
// missed flush: Rollback reverts patched words with writeDyn but used
// to leave the dirty span pending, so when no LoadDyn followed (an
// empty tenant delta) the next run executed the *patched* decode out
// of the stale predecode table.
func TestRollbackFlushesRevertedPredecode(t *testing.T) {
	const src = `
p(1).
`
	c := compiler.New(nil)
	mod := compileUnit(t, c, src, "p(X).")
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	mark := m.Snapshot()

	run := func(want string) {
		t.Helper()
		res, err := m.Run(entry)
		if err != nil || !res.Success {
			t.Fatalf("run: %v %v", err, res.Success)
		}
		if got := m.QueryBindings(im.QueryVars)[term.Var("X")]; got.String() != want {
			t.Fatalf("X = %v, want %s", got, want)
		}
	}

	run("1")
	patchPred(t, m, c, im, term.Ind("p", 1), "p(2) .")
	run("2") // warms the predecode over the patched words

	m.Rollback(mark)
	// No LoadDyn follows — exactly the empty-delta path. The reverted
	// words must already be flushed from predecode and caches.
	run("1")
}

// TestGrowPredecodeSweepsResidentFlags is the regression test for
// stale residency: once the code frontier outgrows the simulated code
// cache, conflict evictions become possible and every pwResident flag
// set so far is an unsound claim — they must be swept, not just
// stopped from spreading.
func TestGrowPredecodeSweepsResidentFlags(t *testing.T) {
	const src = `
p(1).
`
	c := compiler.New(nil)
	mod := compileUnit(t, c, src, "p(X).")
	im, err := asm.Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	// Two runs: the first fills the predecode table, the second
	// observes all-hit replays and sets resident flags.
	for i := 0; i < 2; i++ {
		if res, err := m.Run(entry); err != nil || !res.Success {
			t.Fatalf("run %d: %v %v", i, err, res.Success)
		}
	}
	resident := 0
	for _, w := range m.pwidth {
		if w&pwResident != 0 {
			resident++
		}
	}
	if resident == 0 {
		t.Fatal("no resident flags set after two warm runs")
	}

	m.growPredecode(cache.CodeWords + 1)

	if m.pdecResidentOK {
		t.Error("pdecResidentOK still set past the cache size")
	}
	for a, w := range m.pwidth {
		if w&pwResident != 0 {
			t.Errorf("resident flag at %d survived outgrowing the cache", a)
		}
	}
}
