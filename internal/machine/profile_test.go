package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/term"
)

func TestProfileAttributesCycles(t *testing.T) {
	src := `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).
`
	im := buildImage(t, src, "mklist(25, L), nrev(L, _R).")
	m, err := New(im, Config{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	res, err := m.Run(entry)
	if err != nil || !res.Success {
		t.Fatal(err)
	}
	rows := m.Profile()
	if len(rows) < 3 {
		t.Fatalf("profile too small: %v", rows)
	}
	// In naive reverse, append dominates (quadratic); it must rank
	// first and hold the majority of cycles.
	if rows[0].Pred != term.Ind("app", 3) {
		t.Fatalf("heaviest predicate is %v, want app/3\n%s",
			rows[0].Pred, RenderProfile(rows, res.Stats.Cycles))
	}
	var sum uint64
	for _, r := range rows {
		sum += r.Cycles
	}
	// Everything except fail-dispatch bookkeeping is attributed.
	if sum > res.Stats.Cycles || float64(sum) < 0.9*float64(res.Stats.Cycles) {
		t.Fatalf("attributed %d of %d cycles", sum, res.Stats.Cycles)
	}
	out := RenderProfile(rows, res.Stats.Cycles)
	if out == "" || len(rows) != len(m.Profile()) {
		t.Fatal("render/stability broken")
	}
	t.Logf("\n%s", out)
}

func TestProfileDisabled(t *testing.T) {
	im := buildImage(t, "ok.\n", "ok.")
	m, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := im.Entry(compiler.QueryPI)
	if _, err := m.Run(entry); err != nil {
		t.Fatal(err)
	}
	if m.Profile() != nil {
		t.Fatal("profile must be nil when disabled")
	}
}

func TestProfilerLocate(t *testing.T) {
	im := buildImage(t, "a.\nb :- a.\n", "b.")
	p := newProfiler(im)
	for pi, addr := range im.Entries {
		if i := p.locate(addr); i < 0 || p.entries[i].pi != pi {
			t.Errorf("locate(%d) missed %v", addr, pi)
		}
	}
	if p.locate(0) != -1 {
		t.Error("bootstrap word must attribute to no predicate")
	}
	_ = asm.Base
}
