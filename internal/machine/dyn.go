package machine

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/term"
	"repro/internal/word"
)

// Dynamic-database support. The clause store (internal/dyndb) mutates
// a machine's code space between queries: rebuilt predicate blocks are
// appended at CodeTop, call sites of moved predicates are patched in
// place, and a pooled machine is rolled back to its boot frontier
// before another tenant's delta is replayed onto it.
//
// All of these writes are untimed: a mutation happens between queries,
// so it must not charge simulated cycles to anyone's run. Words go
// straight through the code MMU to physical memory, bypassing the
// write-through code cache, and the cache lines they bypassed are
// invalidated — the next fetch through the affected range misses and
// refills, exactly as a cold line would.
//
// Every write path is diff-aware: a word already holding its target
// value is skipped entirely, and only the span that actually changed
// is invalidated (code cache, predecode, fused handlers, facts). This
// is what scopes invalidation to the mutated predicate — reinstalling
// an unchanged delta on a warm machine touches nothing — and what
// makes copy-on-write image sharing cheap: rolling a machine back and
// replaying the same tenant's delta is a comparison sweep, not a
// reload.

// CodeMark snapshots the loaded-code frontier and the predicate entry
// table, so a machine can later be rolled back to this point (dropping
// any code loaded and predicates registered since).
type CodeMark struct {
	top     uint32
	entries map[term.Indicator]uint32
	preds   map[uint64]uint32
}

// Top returns the code frontier the mark was taken at.
func (mk CodeMark) Top() uint32 { return mk.top }

// Snapshot captures the current code frontier and entry table.
func (m *Machine) Snapshot() CodeMark {
	mk := CodeMark{
		top:     m.codeTop,
		entries: make(map[term.Indicator]uint32, len(m.entries)),
		preds:   make(map[uint64]uint32, len(m.preds)),
	}
	for pi, a := range m.entries {
		mk.entries[pi] = a
	}
	for k, a := range m.preds {
		mk.preds[k] = a
	}
	return mk
}

// Rollback returns the machine to a snapshot: the code frontier drops
// back to the mark, the entry table is restored, and every PatchDyn
// below the mark is undone. Code above the mark stays in the host
// shadow and in physical memory, so reloading identical words later
// (the same tenant's delta) is free; only words that actually revert
// are invalidated.
func (m *Machine) Rollback(mk CodeMark) {
	if mk.top > m.codeTop {
		panic(fmt.Sprintf("machine: rollback above frontier: mark %d > top %d", mk.top, m.codeTop))
	}
	for a, orig := range m.dynOrig {
		if a < mk.top {
			m.writeDyn(a, orig)
		}
	}
	clear(m.dynOrig)
	// Flush the reverted words now: the next tenant may have an empty
	// delta, in which case no LoadDyn/PatchDyn follows to do it, and a
	// run would execute stale predecoded instructions.
	m.flushDyn()
	if mk.top < m.codeTop {
		// Content above the mark is untouched (it may be reloaded
		// verbatim), but the predicates rooted there are gone, so the
		// facts artifact must recompute the affected components with
		// the restored entry table.
		m.invalidateFacts(mk.top, m.codeTop)
	}
	m.codeTop = mk.top
	m.growPredecode(m.codeTop)
	m.entries = make(map[term.Indicator]uint32, len(mk.entries))
	for pi, a := range mk.entries {
		m.entries[pi] = a
	}
	m.preds = make(map[uint64]uint32, len(mk.preds))
	for k, a := range mk.preds {
		m.preds[k] = a
	}
}

// TruncateCode drops the code above top without touching the entry
// table or reverting patches: the per-query goal block is unloaded
// this way, leaving the tenant delta (and its call-site patches)
// installed below. The truncated words stay in the shadow and in
// physical memory, so reloading them verbatim later costs nothing.
func (m *Machine) TruncateCode(top uint32) {
	if top > m.codeTop {
		panic(fmt.Sprintf("machine: truncate above frontier: %d > %d", top, m.codeTop))
	}
	if top == m.codeTop {
		return
	}
	m.invalidateFacts(top, m.codeTop)
	m.codeTop = top
	m.growPredecode(top)
}

// UnregisterPred removes a predicate from the machine's entry table
// (the inverse of RegisterPred): the clause store drops a replaced
// block's auxiliary entries so the analyzer's partition tracks the
// live code.
func (m *Machine) UnregisterPred(pi term.Indicator) {
	addr, ok := m.entries[pi]
	if !ok {
		return
	}
	delete(m.entries, pi)
	if idx, ok := m.syms.Lookup(pi.Name); ok {
		delete(m.preds, uint64(idx)<<8|uint64(pi.Arity&0xff))
	}
	m.invalidateFacts(addr, m.codeTop)
}

// CodeWordAt reads a loaded code word from the host-side shadow
// (untimed; no simulated state is touched).
func (m *Machine) CodeWordAt(a uint32) word.Word { return m.shadowFetch(a) }

// writeDyn writes one word to code-space physical memory, mirrors it
// into the shadow and merges it into the pending dirty span. The
// caller flushes the span through flushDyn.
func (m *Machine) writeDyn(a uint32, w word.Word) {
	if _, err := m.cmmu.Write(a, w); err != nil {
		// Code-space writes below the frontier cannot fault: the pages
		// were mapped when the words were first loaded.
		panic(fmt.Sprintf("machine: dyn write at %d: %v", a, err))
	}
	m.shadowWrite(a, []word.Word{w})
	if !m.dynDirty {
		m.dynDirty = true
		m.dynLo, m.dynHi = a, a+1
		return
	}
	if a < m.dynLo {
		m.dynLo = a
	}
	if a+1 > m.dynHi {
		m.dynHi = a + 1
	}
}

// flushDyn invalidates everything covering the pending dirty span:
// simulated code-cache lines (the writes bypassed the cache), the
// facts artifact, predecoded entries and fused handlers.
func (m *Machine) flushDyn() {
	if !m.dynDirty {
		return
	}
	lo, hi := m.dynLo, m.dynHi
	m.dynDirty = false
	m.icache.InvalidateRange(lo, hi)
	m.invalidateFacts(lo, hi)
	m.invalidatePredecode(lo, hi)
	m.invalidateFused(lo, hi)
}

// LoadDyn loads a freshly linked code block at CodeTop, untimed, and
// returns its base address. The block is vetted exactly like
// LoadIncremental (a malformed block is rejected with a CodeError
// before any word lands); unlike LoadIncremental no simulated cycles
// are charged, and words that already hold their target value — a
// rolled-back machine reloading the same tenant's delta — are skipped,
// keeping their cache residency, predecode and fused handlers.
func (m *Machine) LoadDyn(code []word.Word) (uint32, error) {
	base := m.codeTop
	if len(code) == 0 {
		return base, nil
	}
	if err := checkCode(code, base, m.codeTop); err != nil {
		return 0, err
	}
	for i, w := range code {
		a := base + uint32(i)
		if int64(a) < int64(len(m.codeShadow)) && m.codeShadow[a] == w {
			continue
		}
		m.writeDyn(a, w)
	}
	m.codeTop = base + uint32(len(code))
	m.shadowWrite(base, code) // extends the shadow when nothing was dirty
	m.growPredecode(m.codeTop)
	m.flushDyn()
	return base, nil
}

// PatchDyn overwrites already-loaded code at addr, untimed, recording
// the original words so a later Rollback can restore them. The block
// is vetted like PatchCode (CheckPatched; a malformed patch is
// rejected with a CodeError before any word lands), and identical
// words are skipped like LoadDyn.
func (m *Machine) PatchDyn(addr uint32, code []word.Word) error {
	end := uint64(addr) + uint64(len(code))
	if end > uint64(m.codeTop) {
		return fmt.Errorf("machine: dyn patch [%d,%d) outside loaded code [0,%d)",
			addr, end, m.codeTop)
	}
	if ds := analysis.CheckPatched(code, addr, m.codeTop); len(ds) > 0 {
		return &CodeError{Base: addr, Diags: ds}
	}
	for i, w := range code {
		a := addr + uint32(i)
		if m.codeShadow[a] == w {
			continue
		}
		if m.dynOrig == nil {
			m.dynOrig = map[uint32]word.Word{}
		}
		if _, seen := m.dynOrig[a]; !seen {
			m.dynOrig[a] = m.codeShadow[a]
		}
		m.writeDyn(a, w)
	}
	m.flushDyn()
	return nil
}
