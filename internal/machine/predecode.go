package machine

import (
	"repro/internal/cache"
	"repro/internal/kcmisa"
)

// The predecoded code cache: a host-side shadow of the code space
// holding, for every code address, the decoded instruction and its
// width in words (0 = not yet decoded). It is filled lazily by the
// fetch-execute loop, so a warm run dispatches on an index instead of
// re-decoding every step.
//
// Coherence follows the paper's write-through code-cache rule: the
// hardware keeps the code cache consistent by writing code-space
// stores through to memory and into the cache in the same cycle, so a
// fetched instruction is never stale. Here every path that writes the
// code space — boot, LoadIncremental, LoadBatch, PatchCode —
// invalidates the predecoded entries covering the written range (plus
// the MaxInstrWords-1 words before it, because a multi-word
// instruction beginning earlier may extend into the written range and
// the patch may re-partition instruction boundaries).
//
// The predecode tables carry no simulated state: the fetch-execute
// loop still drives the simulated cache.Code model word for word (a
// predecoded hit replays the same icache reads the decoder would
// issue), so cycle counts and cache statistics are identical with and
// without the host-side cache.

// pwidth entries pack the instruction width (low bits; at most
// MaxInstrWords, 255) with a "resident" flag: once a fetch replay has
// observed every word of the instruction hit in the simulated code
// cache, and residency is monotone (the code image fits in the cache,
// so no conflict can evict a line), future replays are a bare
// NoteReads — same statistics, no per-word tag checks.
// A second flag marks the head of an installed fused run (fuse.go):
// the dispatch loop already loads pwidth every step, so testing a bit
// there costs nothing, where probing the sparse fused-handler table
// per step would add a dependent pointer load to every instruction.
// Width and flag travel together: installLicense predecodes the head
// when it sets the flag, and every invalidation path clears both.
const (
	pwResident  = 1 << 15
	pwFusedHead = 1 << 14
	pwWidthMask = pwFusedHead - 1
)

// growPredecode extends the predecode tables to cover [0, top),
// preserving existing entries. When the frontier grows past the
// simulated code cache, residency stops being monotone — new code can
// conflict-evict lines the pwResident flags claim are pinned — so the
// flags set so far are swept away; replays fall back to real tag
// checks until the image fits again.
func (m *Machine) growPredecode(top uint32) {
	ok := top <= cache.CodeWords
	if m.pdecResidentOK && !ok {
		for i, w := range m.pwidth {
			if w&pwResident != 0 {
				m.pwidth[i] = w &^ pwResident
			}
		}
	}
	m.pdecResidentOK = ok
	if int64(top) <= int64(len(m.pwidth)) {
		return
	}
	pdec := make([]kcmisa.Instr, top)
	copy(pdec, m.pdec)
	m.pdec = pdec
	pw := make([]uint16, top)
	copy(pw, m.pwidth)
	m.pwidth = pw
}

// invalidatePredecode drops every predecoded entry that could overlap
// the written code range [start, end): any instruction starting in
// the range, and any multi-word instruction starting up to
// MaxInstrWords-1 words before it.
func (m *Machine) invalidatePredecode(start, end uint32) {
	lo := int64(start) - (kcmisa.MaxInstrWords - 1)
	if lo < 0 {
		lo = 0
	}
	hi := int64(end)
	if hi > int64(len(m.pwidth)) {
		hi = int64(len(m.pwidth))
	}
	for a := lo; a < hi; a++ {
		m.pwidth[a] = 0
	}
}

// PredecodedWidth reports the cached width of the instruction at a
// code address (0 = not predecoded). Tests use it to observe
// invalidation; it carries no simulated meaning.
func (m *Machine) PredecodedWidth(addr uint32) int {
	if int64(addr) >= int64(len(m.pwidth)) {
		return 0
	}
	return int(m.pwidth[addr] & pwWidthMask)
}
