package machine

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// builtin executes one escape built-in. Arguments are in A1..An. The
// Table 2 protocol costs every escape a flat 5 cycles (the minimum
// call/return sequence); the host-side work is untimed.
func (m *Machine) builtin(id int) {
	switch id {
	case kcmisa.BIWrite:
		fmt.Fprint(m.out, term.Display(m.readTerm(m.regs[1], 1_000_000)))
	case kcmisa.BINl:
		fmt.Fprintln(m.out)
	case kcmisa.BITab:
		v := m.deref(m.regs[1])
		if v.Type() == word.TInt {
			for i := int32(0); i < v.Int(); i++ {
				fmt.Fprint(m.out, " ")
			}
		}
	case kcmisa.BIWriteln:
		fmt.Fprintln(m.out, term.Display(m.readTerm(m.regs[1], 1_000_000)))
	case kcmisa.BIHalt:
		m.halted = true
	case kcmisa.BIFunctor:
		m.biFunctor()
	case kcmisa.BIArg:
		m.biArg()
	case kcmisa.BIUniv:
		m.biUniv()
	case kcmisa.BICall:
		m.biCall()
	default:
		m.errf("unknown built-in %d", id)
	}
}

// biFunctor implements functor(Term, Name, Arity) in both directions.
func (m *Machine) biFunctor() {
	t := m.deref(m.regs[1])
	if m.err != nil {
		return
	}
	if !t.IsRef() {
		var name, arity word.Word
		switch t.Type() {
		case word.TList:
			name = word.FromAtom(m.syms.Intern(term.DotAtom))
			arity = word.FromInt(2)
		case word.TStruct:
			f, ok := m.rd(word.ZGlobal, t.Addr())
			if !ok {
				return
			}
			name = word.FromAtom(f.FunctorAtom())
			arity = word.FromInt(int32(f.FunctorArity()))
		default:
			name = t
			arity = word.FromInt(0)
		}
		if u, ok := m.unify(m.regs[2], name); !ok || !u {
			if ok {
				m.fail()
			}
			return
		}
		if u, ok := m.unify(m.regs[3], arity); !ok || !u {
			if ok {
				m.fail()
			}
		}
		return
	}
	// Construction direction.
	name := m.deref(m.regs[2])
	ar := m.deref(m.regs[3])
	if ar.Type() != word.TInt {
		m.errf("functor/3: arity not an integer")
		return
	}
	n := int(ar.Int())
	if n == 0 {
		if u, ok := m.unify(t, name); ok && !u {
			m.fail()
		}
		return
	}
	if name.Type() != word.TAtom {
		m.errf("functor/3: name not an atom")
		return
	}
	base := m.h
	m.heapPush(word.Functor(name.Value(), n))
	for i := 0; i < n; i++ {
		m.newHeapVar()
	}
	if u, ok := m.unify(t, word.StructPtr(base)); ok && !u {
		m.fail()
	}
}

// biArg implements arg(N, Term, Arg).
func (m *Machine) biArg() {
	n := m.deref(m.regs[1])
	t := m.deref(m.regs[2])
	if m.err != nil {
		return
	}
	if n.Type() != word.TInt {
		m.errf("arg/3: index not an integer")
		return
	}
	i := n.Int()
	var arg word.Word
	switch t.Type() {
	case word.TList:
		if i < 1 || i > 2 {
			m.fail()
			return
		}
		w, ok := m.rd(word.ZGlobal, t.Addr()+uint32(i-1))
		if !ok {
			return
		}
		arg = w
	case word.TStruct:
		f, ok := m.rd(word.ZGlobal, t.Addr())
		if !ok {
			return
		}
		if i < 1 || int(i) > f.FunctorArity() {
			m.fail()
			return
		}
		w, ok := m.rd(word.ZGlobal, t.Addr()+uint32(i))
		if !ok {
			return
		}
		arg = w
	default:
		m.fail()
		return
	}
	if u, ok := m.unify(m.regs[3], arg); ok && !u {
		m.fail()
	}
}

// biUniv implements Term =.. List for the decomposition direction and
// construction from a complete list of constants/bound terms.
func (m *Machine) biUniv() {
	t := m.deref(m.regs[1])
	if m.err != nil {
		return
	}
	if !t.IsRef() {
		// Decompose: build [Name|Args] on the heap.
		var elems []word.Word
		switch t.Type() {
		case word.TList:
			h, _ := m.rd(word.ZGlobal, t.Addr())
			tl, _ := m.rd(word.ZGlobal, t.Addr()+1)
			elems = []word.Word{word.FromAtom(m.syms.Intern(term.DotAtom)), h, tl}
		case word.TStruct:
			f, ok := m.rd(word.ZGlobal, t.Addr())
			if !ok {
				return
			}
			elems = []word.Word{word.FromAtom(f.FunctorAtom())}
			for i := 1; i <= f.FunctorArity(); i++ {
				w, ok := m.rd(word.ZGlobal, t.Addr()+uint32(i))
				if !ok {
					return
				}
				elems = append(elems, w)
			}
		default:
			elems = []word.Word{t}
		}
		lst := m.buildList(elems)
		if u, ok := m.unify(m.regs[2], lst); ok && !u {
			m.fail()
		}
		return
	}
	// Construct from list.
	var elems []word.Word
	l := m.deref(m.regs[2])
	for l.Type() == word.TList {
		h, ok := m.rd(word.ZGlobal, l.Addr())
		if !ok {
			return
		}
		elems = append(elems, m.deref(h))
		tl, ok := m.rd(word.ZGlobal, l.Addr()+1)
		if !ok {
			return
		}
		l = m.deref(tl)
	}
	if l.Type() != word.TNil || len(elems) == 0 {
		m.errf("=../2: bad list")
		return
	}
	name := elems[0]
	args := elems[1:]
	var result word.Word
	switch {
	case len(args) == 0:
		result = name
	case name.Type() == word.TAtom:
		base := m.h
		m.heapPush(word.Functor(name.Value(), len(args)))
		for _, a := range args {
			m.heapPush(a)
		}
		result = word.StructPtr(base)
	default:
		m.errf("=../2: name not an atom")
		return
	}
	if u, ok := m.unify(t, result); ok && !u {
		m.fail()
	}
}

// buildList pushes a proper list of the given words onto the heap.
func (m *Machine) buildList(elems []word.Word) word.Word {
	var tail word.Word = word.Nil()
	for i := len(elems) - 1; i >= 0; i-- {
		base := m.h
		m.heapPush(elems[i])
		m.heapPush(tail)
		tail = word.ListPtr(base)
	}
	return tail
}

// biCall implements call/1: the goal term in A1 is decomposed, its
// arguments moved to the argument registers, and control transfers to
// the predicate's entry as if a compiled call had been executed (the
// paper quotes 4 cycles for "fast indirect calls via memory").
func (m *Machine) biCall() {
	g := m.deref(m.regs[1])
	if m.err != nil {
		return
	}
	var atom uint32
	var arity int
	switch g.Type() {
	case word.TAtom:
		atom, arity = g.Value(), 0
	case word.TStruct:
		f, ok := m.rd(word.ZGlobal, g.Addr())
		if !ok {
			return
		}
		atom, arity = f.FunctorAtom(), f.FunctorArity()
		for i := 1; i <= arity; i++ {
			w, ok := m.rd(word.ZGlobal, g.Addr()+uint32(i))
			if !ok {
				return
			}
			m.regs[i] = w
		}
	case word.TList:
		m.errf("call/1: list is not a callable goal")
		return
	case word.TRef:
		m.errf("call/1: unbound goal")
		return
	default:
		m.errf("call/1: %v is not callable", g)
		return
	}
	entry, ok := m.preds[uint64(atom)<<8|uint64(arity)]
	if !ok {
		m.errf("call/1: undefined predicate %v/%d", m.syms.Name(atom), arity)
		return
	}
	// The escape already consumed its 5 cycles; the indirect transfer
	// costs the paper's 4.
	m.cyc(4)
	m.cp = m.p
	m.b0 = m.b
	m.sf = false
	m.p = entry
	if m.hook != nil {
		// The call-boundary event must follow the escape's own KInstr
		// event; park the target for the traced loop to emit.
		m.pendingCall = entry
		m.pendingCallSet = true
	}
}
