// Package machine implements the KCM processor simulator: a 64-bit
// tagged architecture executing encoded instruction words fetched
// through the logical code cache, with data traffic through the
// zone-split copy-back data cache and the RAM-page-table MMU. The
// simulator is cycle-accounted at the level the paper reports:
// per-instruction microcycle costs, dereference steps, branch and
// pipeline-break penalties, and cache-miss penalties.
package machine

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/kcmisa"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/term"
	"repro/internal/trace"
	"repro/internal/word"
)

// Default zone base addresses (word addresses in the data space).
// They are configurable so the cache-collision study can place stack
// tops on colliding or non-colliding cache indices.
const (
	DefGlobalBase = 0x0010000
	DefGlobalSize = 0x0200000
	DefLocalBase  = 0x0400000
	DefLocalSize  = 0x0100000
	DefChoiceBase = 0x0800000
	DefChoiceSize = 0x0080000
	DefTrailBase  = 0x0C00000
	DefTrailSize  = 0x0080000
)

// Config selects machine features; the zero value is completed to the
// paper configuration by New.
type Config struct {
	// Zone placement (words). Zero values select the defaults.
	GlobalBase, GlobalSize uint32
	LocalBase, LocalSize   uint32
	ChoiceBase, ChoiceSize uint32
	TrailBase, TrailSize   uint32

	// SplitDataCache selects the 8-section zone-indexed data cache
	// (the KCM design). When false the cache is a plain direct-mapped
	// 8K, the configuration of the stack-collision experiment.
	SplitDataCache *bool

	// Shallow enables delayed choice-point creation (shallow
	// backtracking). Disabling it makes every try/retry materialise a
	// full choice point immediately, the standard-WAM baseline of the
	// ablation study.
	Shallow *bool

	// HWDeref models the dereference hardware (one reference per
	// cycle). Disabled, each step costs the software-loop equivalent.
	HWDeref *bool

	// HWTrail models the parallel trail-check comparators. Disabled,
	// each trail check costs explicit compare cycles.
	HWTrail *bool

	// CodePrefetch is the number of words prefetched on a code-cache
	// miss (page mode); -1 selects the default.
	CodePrefetch int

	// MemWords is the physical memory size; 0 selects one board.
	MemWords uint32

	// Out receives the output of write/1 and nl/0.
	Out io.Writer

	// MaxSteps bounds execution (0: 1e9 instructions).
	MaxSteps uint64

	// CycleNs is the cycle time in nanoseconds (0: the KCM's 80 ns).
	// Baseline cost models reuse the engine with their own clock.
	CycleNs float64

	// Trace, when non-nil, receives one line per executed instruction
	// (the macrocode monitor of the paper's tool set).
	Trace io.Writer

	// Costs overrides the microcycle cost table (nil: Defaults).
	Costs *Costs

	// GCThresholdWords enables the sliding mark-compact collector on
	// the global stack: when the heap grows past this many words, the
	// next call boundary collects. 0 disables the threshold trigger
	// (overflow-triggered collection below still applies).
	GCThresholdWords uint32

	// GCOnOverflow controls overflow-triggered collection: when a heap
	// push (or any global-zone bounds trap) raises ErrHeapOverflow,
	// the step loop collects and retries the faulting instruction
	// instead of surfacing the fault. nil defaults to on; set Off to
	// restore the pre-collector behavior where heap exhaustion is
	// immediately fatal.
	GCOnOverflow *bool

	// HeapWatermarkWords is the minimum free global-stack space (in
	// words) an overflow-triggered collection must leave for the
	// faulting instruction to be retried; a collection that frees less
	// surfaces ErrHeapOverflow instead of thrashing. 0 selects
	// GlobalSize/16, floored at 64 words.
	HeapWatermarkWords uint32

	// Fusion enables the superinstruction fusion tier (fuse.go):
	// analyzer-licensed instruction runs are installed as fused host
	// handlers consulted before normal dispatch. Fusion is a pure
	// host-speed artifact — simulated cycle counts, cache statistics
	// and trace events are byte-identical either way — so it defaults
	// to on; set Off for A/B control runs.
	Fusion *bool

	// FuseThresholdCycles gates fusion on profiler heat: 0 installs
	// every licensed handler eagerly at bootstrap; a non-zero value
	// installs a predicate's handlers only once its profiled cycle
	// count (requires Profile) reaches the threshold, re-checked at
	// session chunk boundaries.
	FuseThresholdCycles uint64

	// Profile enables the per-predicate cycle monitor (see Profile).
	Profile bool

	// HostProfile enables the per-opcode host-time monitor (see
	// HostProfile): wall-clock nanoseconds the Go interpreter spends
	// executing each opcode. It is a tool for optimising the simulator
	// itself — it measures the host, not the simulated machine — and
	// adds two clock reads per instruction, so it is off by default.
	HostProfile bool

	// Hook receives the structured trace event stream
	// (internal/trace): instruction dispatch, control boundaries,
	// choice-point traffic, trail writes, cache misses, MMU traps,
	// session suspend/resume. nil disables tracing entirely — the hot
	// loop is untouched and no event is ever constructed. Tracing never
	// changes simulated counters; it only attributes them.
	Hook trace.Hook

	// HookFactory builds a fresh hook per machine; used instead of Hook
	// when one Config fans out to many machines (the engine pool), so
	// each machine owns an unshared hook and no cross-machine locking
	// is needed. Ignored when Hook is set.
	HookFactory func() trace.Hook
}

func boolDefault(p *bool, d bool) bool {
	if p == nil {
		return d
	}
	return *p
}

// On and Off are convenience pointers for Config flags.
var (
	onv  = true
	offv = false
	On   = &onv
	Off  = &offv
)

// Stats are the run-time counters the evaluation section reports.
type Stats struct {
	NsPerCycle   float64
	Cycles       uint64
	Instrs       uint64
	Inferences   uint64 // source-level goal invocations (Klips basis)
	DerefSteps   uint64
	UnifyNodes   uint64
	TrailChecks  uint64
	TrailPushes  uint64
	ShallowTries uint64 // clause entries in shallow mode
	ShallowFails uint64
	DeepFails    uint64
	ChoicePoints uint64 // materialised at necks
	NeckUpdates  uint64 // existing choice point retargeted at a neck
	NeckDet      uint64 // necks passed with no alternatives left
	EnvAllocs    uint64
	Builtins     uint64
	CPWords      uint64 // words written saving choice points
}

// Seconds converts the cycle count to seconds at the configured
// cycle time (80 ns for KCM).
func (s Stats) Seconds() float64 {
	ns := s.NsPerCycle
	if ns == 0 {
		ns = 80
	}
	return float64(s.Cycles) * ns * 1e-9
}

// Millis returns the run time in milliseconds, the unit of Tables
// 2 and 3.
func (s Stats) Millis() float64 { return s.Seconds() * 1e3 }

// Klips returns kilo logical inferences per second.
func (s Stats) Klips() float64 {
	sec := s.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Inferences) / sec / 1000
}

// Result is the outcome of a Run.
type Result struct {
	Success  bool
	Stats    Stats
	Bindings map[term.Var]term.Term
	DCache   cache.Stats
	CCache   cache.Stats
	Mem      mem.Stats
	DataMMU  mmu.Stats
	Profile  []ProfileRow // non-nil when Config.Profile is set
	GC       GCStats
	Fusion   FusionStats // fused-handler install and activity counters
}

// Machine is one KCM processor with its private memory.
type Machine struct {
	cfg   Config
	costs Costs
	syms  *term.SymTab
	// tb slab-allocates the terms QueryBindings materializes; its
	// cells are write-once, so it is never reset (readback.go).
	tb term.Builder

	phys   *mem.Memory
	dmmu   *mmu.MMU
	cmmu   *mmu.MMU
	dcache *cache.Data
	icache *cache.Code

	codeTop uint32

	// Register file and machine registers.
	regs [kcmisa.NumRegs]word.Word
	p    uint32 // program counter
	cp   uint32 // continuation pointer (code)
	e    uint32 // current environment (0 = none)
	b    uint32 // top choice point
	b0   uint32 // cut barrier
	h    uint32 // global stack top
	hb   uint32 // heap backtrack point
	tr   uint32 // trail top
	s    uint32 // structure pointer
	mode bool   // true = write mode

	// Shallow-backtracking state: the shadow registers and flags.
	sf         bool // shallow flag
	cf         bool // choice-point flag
	shadowH    uint32
	shadowTR   uint32
	shadowNext int

	bLTOP uint32 // cached local-stack top of the current choice point

	shallow bool
	hwDeref bool
	hwTrail bool

	halted bool
	failed bool
	err    error

	out   io.Writer
	stats Stats

	// pdl is the unification push-down list.
	pdl []word.Word

	gcThreshold    uint32
	gcOnOverflow   bool
	heapWatermark  uint32
	trailHighWater uint32 // cut tidies the trail only above this mark
	gcRetryAddr    uint32 // last instruction granted an overflow retry
	gcRetryInstr   uint64 // Instrs count when the retry was granted
	gcStats        GCStats
	prof           *profiler
	hostProf       *hostProfiler

	// fingerprint caches configFingerprint(): the configuration is
	// immutable after New, and the fmt-based hash is too slow to
	// recompute on every snapshot capture/restore.
	fingerprint   uint64
	fingerprinted bool

	// Trace state (nil hook = tracing off; see traced.go).
	hook           trace.Hook
	evSeq          uint64 // per-machine event sequence number
	traceP         uint32 // code address of the instruction being executed
	pendingCall    uint32 // meta-call target awaiting its boundary event
	pendingCallSet bool

	// fetch is the code-fetch path bound once at construction, so the
	// fetch-execute loop never materialises a method-value closure.
	fetch kcmisa.Fetcher

	// Predecoded code cache (host-side; see predecode.go): pdec[a]
	// holds the decoded instruction at code address a and pwidth[a]
	// its width in words (0 = not decoded). scratch is the decode
	// target for addresses beyond the predecoded range.
	pdec    []kcmisa.Instr
	pwidth  []uint16
	scratch kcmisa.Instr
	// pdecResidentOK: the code image fits in the simulated code cache,
	// so a line once filled can never be evicted and the pwResident
	// fast path is sound (see predecode.go).
	pdecResidentOK bool

	// Superinstruction fusion tier (fuse.go): fused[a] holds the
	// installed handler for the licensed run headed at code address a
	// (nil = none). The table is host-side only, like the predecode
	// tables; fusedStale triggers (re)installation at bootstrap.
	fused          []*fusedRun
	fusedPreds     map[uint32]bool // predicate starts already installed
	fusedStale     bool
	fusionOn       bool
	fuseThreshold  uint64
	fusedCount     int
	fusedMaxInstrs int
	fuseDispatches uint64
	fuseSteps      uint64

	// preds is the runtime predicate table for the meta-call escape:
	// (atom index, arity) -> code entry.
	preds map[uint64]uint32

	// Whole-image facts support (see facts.go): codeShadow is a
	// host-side copy of the code space so the analyzer never reads
	// through the simulated memory system; facts is the cached
	// artifact, invalidated range-wise by code-space writes.
	codeShadow []word.Word
	facts      *analysis.ImageFacts
	factsLo    uint32
	factsHi    uint32
	factsDirty bool
	// entries is the full predicate entry table (the boot image's,
	// plus RegisterPred additions). preds above only covers predicates
	// whose name atom is interned; the analyzer wants all of them.
	entries map[term.Indicator]uint32

	// Dynamic-database state (dyn.go): dynOrig remembers the original
	// words under every PatchDyn so Rollback can restore them; the
	// dirty span accumulates untimed code writes between flushes.
	dynOrig      map[uint32]word.Word
	dynDirty     bool
	dynLo, dynHi uint32
}

// New builds a machine and loads the linked image into its code
// space.
func New(im *asm.Image, cfg Config) (*Machine, error) {
	if cfg.GlobalBase == 0 {
		cfg.GlobalBase, cfg.GlobalSize = DefGlobalBase, DefGlobalSize
	}
	if cfg.LocalBase == 0 {
		cfg.LocalBase, cfg.LocalSize = DefLocalBase, DefLocalSize
	}
	if cfg.ChoiceBase == 0 {
		cfg.ChoiceBase, cfg.ChoiceSize = DefChoiceBase, DefChoiceSize
	}
	if cfg.TrailBase == 0 {
		cfg.TrailBase, cfg.TrailSize = DefTrailBase, DefTrailSize
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = mem.BoardWords
	}
	if cfg.CodePrefetch < 0 {
		cfg.CodePrefetch = 3
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1_000_000_000
	}
	costs := Defaults
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	m := &Machine{
		cfg:     cfg,
		costs:   costs,
		syms:    im.Syms,
		out:     cfg.Out,
		shallow: boolDefault(cfg.Shallow, true),
		hwDeref: boolDefault(cfg.HWDeref, true),
		hwTrail: boolDefault(cfg.HWTrail, true),
	}
	m.gcThreshold = cfg.GCThresholdWords
	m.gcOnOverflow = boolDefault(cfg.GCOnOverflow, true)
	m.trailHighWater = cfg.TrailBase + cfg.TrailSize - cfg.TrailSize/4
	m.heapWatermark = cfg.HeapWatermarkWords
	if m.heapWatermark == 0 {
		m.heapWatermark = cfg.GlobalSize / 16
		if m.heapWatermark < 64 {
			m.heapWatermark = 64
		}
	}
	if cfg.Profile {
		m.prof = newProfiler(im)
	}
	if cfg.HostProfile {
		m.hostProf = &hostProfiler{}
	}
	m.fetch = m.fetchCode
	m.fusionOn = boolDefault(cfg.Fusion, true)
	m.fuseThreshold = cfg.FuseThresholdCycles
	if m.fusionOn {
		m.fusedStale = true
		m.fusedPreds = map[uint32]bool{}
	}
	m.preds = map[uint64]uint32{}
	m.entries = make(map[term.Indicator]uint32, len(im.Entries))
	for pi, a := range im.Entries {
		m.entries[pi] = a
		if idx, ok := im.Syms.Lookup(pi.Name); ok {
			m.preds[uint64(idx)<<8|uint64(pi.Arity)] = a
		}
	}
	m.phys = mem.New(cfg.MemWords)
	// The two address spaces draw physical frames from one pool.
	frames := mmu.NewFrameAlloc(m.phys)
	m.cmmu = mmu.New(m.phys, frames)
	m.dmmu = mmu.New(m.phys, frames)
	m.dcache = cache.NewData(m.dmmu, boolDefault(cfg.SplitDataCache, true))
	m.icache = cache.NewCode(m.cmmu, cfg.CodePrefetch)
	m.installZones()
	if err := checkCode(im.Code, 0, 0); err != nil {
		return nil, err
	}
	// Load the image through the code MMU (batch mode, untimed).
	for a, w := range im.Code {
		if _, err := m.cmmu.Write(uint32(a), w); err != nil {
			return nil, fmt.Errorf("machine: loading code: %w", err)
		}
	}
	m.codeTop = uint32(len(im.Code))
	m.shadowWrite(0, im.Code)
	m.growPredecode(m.codeTop)
	if h := cfg.Hook; h != nil {
		m.hook = h
	} else if cfg.HookFactory != nil {
		m.hook = cfg.HookFactory()
	}
	if m.hook != nil {
		// Hand address-to-predicate resolution to hooks that want it,
		// then route the memory system's callbacks into the stream.
		// Installed after the batch code load so its untimed page
		// allocations stay out of the trace.
		if b, ok := m.hook.(trace.PredBinder); ok {
			preds := make([]trace.Pred, 0, len(im.Entries))
			for pi, a := range im.Entries {
				preds = append(preds, trace.Pred{Start: a, Name: pi.String()})
			}
			b.BindPreds(trace.NewPredTable(preds))
		}
		m.installTraceHooks()
	}
	return m, nil
}

func (m *Machine) installZones() {
	c := m.cfg
	refPtr := mmu.TypeMask(word.TRef, word.TDataPtr)
	m.dmmu.SetZone(word.ZGlobal, mmu.Zone{
		Start: c.GlobalBase, End: c.GlobalBase + c.GlobalSize,
		AllowedTypes: mmu.TypeMask(word.TRef, word.TDataPtr, word.TList, word.TStruct),
	})
	m.dmmu.SetZone(word.ZLocal, mmu.Zone{
		Start: c.LocalBase, End: c.LocalBase + c.LocalSize,
		AllowedTypes: refPtr | mmu.TypeMask(word.TEnvPtr),
	})
	m.dmmu.SetZone(word.ZChoice, mmu.Zone{
		Start: c.ChoiceBase, End: c.ChoiceBase + c.ChoiceSize,
		AllowedTypes: mmu.TypeMask(word.TDataPtr, word.TChpPtr),
	})
	m.dmmu.SetZone(word.ZTrail, mmu.Zone{
		Start: c.TrailBase, End: c.TrailBase + c.TrailSize,
		AllowedTypes: mmu.TypeMask(word.TDataPtr, word.TTrailPtr),
	})
	m.cmmu.SetZone(word.ZCode, mmu.Zone{
		Start: 0, End: 1 << 28,
		AllowedTypes: mmu.TypeMask(word.TCodePtr),
	})
}

// Syms exposes the symbol table (for output formatting in tools).
func (m *Machine) Syms() *term.SymTab { return m.syms }

// Stats returns the counters accumulated so far.
func (m *Machine) Stats() Stats { return m.stats }

// ---- data-space access paths ----

// readData reads through zone check and data cache using a tagged
// address word. The common case — legal address, cache hit — runs
// entirely through the inlinable fast paths (CheckFast + ReadFast:
// one counted check, one counted read, zero cycles), exactly the
// statistics Check + Read would produce; violations and misses fall
// back to the full routines, which do their own counting because the
// fast paths counted nothing.
func (m *Machine) readData(addr word.Word) (word.Word, bool) {
	if !m.dmmu.CheckFast(addr, false) {
		m.err = classifyTrap(m.dmmu.Check(addr, false))
		return 0, false
	}
	if w, ok := m.dcache.ReadFast(addr.Value(), addr.Zone()); ok {
		return w, true
	}
	return m.readDataMiss(addr)
}

func (m *Machine) readDataMiss(addr word.Word) (word.Word, bool) {
	w, cost, err := m.dcache.Read(addr.Value(), addr.Zone())
	m.stats.Cycles += uint64(cost)
	if err != nil {
		m.err = classifyTrap(err)
		return 0, false
	}
	return w, true
}

// writeData writes through zone check and data cache; fast/slow path
// split as readData.
func (m *Machine) writeData(addr word.Word, w word.Word) bool {
	if !m.dmmu.CheckFast(addr, true) {
		m.err = classifyTrap(m.dmmu.Check(addr, true))
		return false
	}
	if m.dcache.WriteFast(addr.Value(), addr.Zone(), w) {
		return true
	}
	return m.writeDataMiss(addr, w)
}

func (m *Machine) writeDataMiss(addr word.Word, w word.Word) bool {
	cost, err := m.dcache.Write(addr.Value(), addr.Zone(), w)
	m.stats.Cycles += uint64(cost)
	if err != nil {
		m.err = classifyTrap(err)
		return false
	}
	return true
}

// rd / wr are internal helpers addressing a zone directly.
func (m *Machine) rd(z word.Zone, a uint32) (word.Word, bool) {
	return m.readData(word.DataPtr(z, a))
}

func (m *Machine) wr(z word.Zone, a uint32, w word.Word) bool {
	return m.writeData(word.DataPtr(z, a), w)
}

// fetchCode reads a code word through the instruction cache.
func (m *Machine) fetchCode(a uint32) word.Word {
	w, cost, err := m.icache.Read(a)
	m.stats.Cycles += uint64(cost)
	if err != nil && m.err == nil {
		m.err = classifyTrap(err)
	}
	return w
}

func (m *Machine) errf(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("machine: P=%d: %s", m.p, fmt.Sprintf(format, args...))
	}
}

// errw records a machine fault wrapping one of the exported taxonomy
// sentinels (errors.go), so hosts can dispatch with errors.Is.
func (m *Machine) errw(sentinel error, format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("machine: P=%d: %w: %s", m.p, sentinel, fmt.Sprintf(format, args...))
	}
}

// ResetStats clears every run-time counter while keeping the memory
// system warm (cache and page-table contents survive). The benchmark
// harness uses it to reproduce the paper's best-of-several-runs
// protocol: time a second execution with warm caches.
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	m.fuseDispatches, m.fuseSteps = 0, 0
	m.dcache.ResetStats()
	m.icache.ResetStats()
	m.phys.ResetStats()
	m.dmmu.ResetStats()
	m.cmmu.ResetStats()
	m.halted = false
	m.failed = false
	if m.hook != nil {
		// Every counter the events attribute against was cleared, so
		// stateful consumers (the cycle profiler) clear with it.
		m.emit(trace.Event{Kind: trace.KReset, P: m.p})
	}
}

// Reset returns a warm machine to a fresh-query state: counters
// cleared (ResetStats semantics, so the memory system stays warm —
// cache lines, page tables and the predecoded code survive) plus any
// pending fault and GC history discarded. The engine pool calls it
// between queries; the next Begin/Run rebuilds the whole register
// state, so nothing else needs to be restored.
func (m *Machine) Reset() {
	m.ResetStats()
	m.err = nil
	m.gcStats = GCStats{}
}

// Err returns the machine's pending fault, or nil. A non-nil fault
// means the simulated state is mid-failure (stale zone registers,
// possibly a half-executed instruction); callers pooling machines
// should discard or Reset such a machine rather than reuse it as-is.
func (m *Machine) Err() error { return m.err }

// SetOut redirects write/1 and nl/0 output (nil selects io.Discard).
// Pooled machines are rebound to the writer of each query they serve.
func (m *Machine) SetOut(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	m.out = w
}
