package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/reader"
	"repro/internal/term"
)

// predecodeWidths snapshots PredecodedWidth over [0, n).
func predecodeWidths(m *Machine, n uint32) []int {
	ws := make([]int, n)
	for a := uint32(0); a < n; a++ {
		ws[a] = m.PredecodedWidth(a)
	}
	return ws
}

// compileUnit compiles a source module plus a query sharing syms with
// the base compilation, so atoms render identically across units.
func compileUnit(t *testing.T, c *compiler.Compiler, src, query string) *compiler.Module {
	t.Helper()
	mod := compileModule(t, c, src)
	q, err := reader.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileQuery(mod, q); err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestPredecodeInvalidation drives the coherence rule of the
// predecoded code cache (predecode.go): every path that writes the
// code space must drop the predecoded entries covering the written
// range, so the machine can never execute a stale decode. Each case
// runs a query against the base program, replaces code while the
// machine is hot, and asserts the *new* code's answer — a stale
// predecode would reproduce the old one.
func TestPredecodeInvalidation(t *testing.T) {
	// basePad keeps the base image comfortably longer than any
	// replacement unit, so whole-image patches stay inside CodeTop.
	const basePad = `
pad1(p1). pad2(p2). pad3(p3). pad4(p4).
pad5(X) :- pad1(X). pad6(X) :- pad2(X).
pad7(X) :- pad5(X), pad6(X).
`
	cases := []struct {
		name      string
		baseSrc   string
		baseQuery string
		wantBase  string // rendered binding of X after the base run
		replSrc   string
		replQuery string
		wantRepl  string // rendered binding of X after the replacement
		// patch=true overwrites the image in place with PatchCode;
		// patch=false hot-loads the replacement at CodeTop with
		// LoadIncremental (same predicate name, new clause set — the
		// new unit's query resolves to its own definition).
		patch bool
		// repartition asserts that the patch moved instruction
		// boundaries: some address that began a multi-word
		// instruction before must decode differently after.
		repartition bool
	}{
		{
			name:      "load-incremental-replacement",
			baseSrc:   "color(red).\n" + basePad,
			baseQuery: "color(X).",
			wantBase:  "red",
			replSrc:   "color(blue).\n",
			replQuery: "color(X).",
			wantRepl:  "blue",
		},
		{
			name:      "patch-in-place-constant",
			baseSrc:   "color(red).\n" + basePad,
			baseQuery: "color(X).",
			wantBase:  "red",
			replSrc:   "color(blue).\n",
			replQuery: "color(X).",
			wantRepl:  "blue",
			patch:     true,
		},
		{
			name: "patch-repartitions-boundaries",
			// Three constant-indexed clauses compile to switch
			// instructions (multi-word); the replacement is
			// straight-line single-word code over the same addresses.
			baseSrc:   "k(a, 1).\nk(b, 2).\nk(c, 3).\n" + basePad,
			baseQuery: "k(b, X).",
			wantBase:  "2",
			replSrc: `
k(b, 99).
r1(a). r2(b). r3(c). r4(d).
r5(X) :- r1(X). r6(X) :- r2(X).
`,
			replQuery:   "k(b, X).",
			wantRepl:    "99",
			patch:       true,
			repartition: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compiler.New(nil)
			base := compileUnit(t, c, tc.baseSrc, tc.baseQuery)
			im, err := asm.Link(base)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(im, Config{})
			if err != nil {
				t.Fatal(err)
			}
			entry, _ := im.Entry(compiler.QueryPI)
			res, err := m.Run(entry)
			if err != nil || !res.Success {
				t.Fatalf("base run: %v %v", err, res.Success)
			}
			if got := m.QueryBindings(im.QueryVars)[term.Var("X")]; got.String() != tc.wantBase {
				t.Fatalf("base X = %v, want %s", got, tc.wantBase)
			}
			if m.PredecodedWidth(entry) == 0 {
				t.Fatal("query entry not predecoded after a run")
			}
			pre := predecodeWidths(m, m.CodeTop())

			// Build and install the replacement.
			mod := compileUnit(t, c, tc.replSrc, tc.replQuery)
			var loadBase uint32
			if !tc.patch {
				loadBase = m.CodeTop()
			}
			im2, err := asm.LinkAt(mod, loadBase, im.Entries)
			if err != nil {
				t.Fatal(err)
			}
			n := uint32(len(im2.Code))
			if tc.patch {
				if n > m.CodeTop() {
					t.Fatalf("replacement (%d words) larger than base image (%d): grow basePad", n, m.CodeTop())
				}
				if err := m.PatchCode(0, im2.Code); err != nil {
					t.Fatal(err)
				}
			} else {
				got, err := m.LoadIncremental(im2.Code)
				if err != nil {
					t.Fatal(err)
				}
				if got != loadBase {
					t.Fatalf("loaded at %d, linked for %d", got, loadBase)
				}
			}
			// The written range must hold no predecoded entries.
			for a := loadBase; a < loadBase+n; a++ {
				if w := m.PredecodedWidth(a); w != 0 {
					t.Fatalf("stale predecoded width %d at %d after code write", w, a)
				}
			}

			entry2, ok := im2.Entry(compiler.QueryPI)
			if !ok {
				t.Fatal("no query entry in replacement unit")
			}
			m.ResetStats() // second run on the same machine
			res2, err := m.Run(entry2)
			if err != nil || !res2.Success {
				t.Fatalf("replacement run: %v %v", err, res2.Success)
			}
			if got := m.QueryBindings(im2.QueryVars)[term.Var("X")]; got.String() != tc.wantRepl {
				t.Fatalf("replacement X = %v, want %s (stale predecode?)", got, tc.wantRepl)
			}

			if tc.repartition {
				post := predecodeWidths(m, m.CodeTop())
				multi, moved := false, false
				for a := uint32(0); a < n; a++ {
					if pre[a] > 1 {
						multi = true
						if post[a] != pre[a] {
							moved = true
						}
					}
				}
				if !multi {
					t.Fatal("precondition: base image has no multi-word instruction inside the patched range")
				}
				if !moved {
					t.Fatal("patch did not re-partition any multi-word instruction boundary")
				}
			}
		})
	}
}
