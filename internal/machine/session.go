package machine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/trace"
)

// This file is the resumable session face of the machine: the KCM of
// the paper is a back-end processor driven by a host that dispatches
// goals and consumes streams of solutions, so execution must be a
// first-class, interruptible object rather than a run-to-halt loop.
// A session is
//
//	m.Begin(entry)                  // boot, no instruction executed
//	st, err := m.RunFor(ctx, n)     // a bounded slice of execution
//	...                             // Suspended: call RunFor again
//	m.Redo()                        // force backtracking for the next
//	                                // solution, then RunFor again
//
// The legacy Run(entry) keeps its semantics (run to halt, hard
// ErrStepBudget fault at Config.MaxSteps) and shares the same hot
// loop, so the two paths produce byte-identical cycle counts and
// cache statistics for a given query.

// Status reports how a RunFor slice ended.
type Status int

const (
	// Suspended: the step budget ran out before the machine halted.
	// The machine state is intact; call RunFor again to continue.
	Suspended Status = iota + 1
	// Halted: the machine executed halt or halt_fail. Succeeded
	// distinguishes the two.
	Halted
)

func (s Status) String() string {
	switch s {
	case Suspended:
		return "suspended"
	case Halted:
		return "halted"
	default:
		return "invalid"
	}
}

// CheckStride is how many instructions RunFor executes between
// context polls. The hot loop stays free of clock reads and channel
// operations; a cancellation or deadline is therefore detected within
// one stride (tens of microseconds of host time) rather than per
// instruction.
const CheckStride = 4096

// Begin boots the machine at entry without executing an instruction,
// arming a resumable session. Counters are NOT cleared — pair with
// Reset (or ResetStats) when a warm machine starts a fresh query.
func (m *Machine) Begin(entry uint32) {
	m.bootstrap(entry)
}

// RunFor executes up to budget instructions (0 = unbounded) of the
// current session, polling ctx every CheckStride steps. It returns
//
//   - (Halted, nil) when the machine executed halt or halt_fail;
//   - (Suspended, nil) when the budget ran out first — the session
//     is intact and RunFor may be called again to continue;
//   - (0, err) on a machine fault (err wraps the taxonomy sentinel)
//     or on context cancellation (err wraps ErrCancelled or
//     ErrDeadline; the machine itself is left fault-free, so a pooled
//     machine can be Reset and reused).
//
// Unlike the legacy Run, exhausting the budget is a resumable state,
// never an ErrStepBudget fault.
func (m *Machine) RunFor(ctx context.Context, budget uint64) (Status, error) {
	if budget == 0 {
		budget = math.MaxUint64
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if m.hook != nil && !m.halted && m.err == nil {
		m.emit(trace.Event{Kind: trace.KResume, P: m.p})
	}
	for !m.halted && m.err == nil && budget > 0 {
		if done != nil {
			select {
			case <-done:
				return 0, ctxError(ctx.Err())
			default:
			}
		}
		if m.fusionOn && m.fuseThreshold > 0 && m.prof != nil {
			// Threshold-gated fusion reacts to accumulating profile
			// heat at chunk boundaries (the hot loop itself stays free
			// of install checks); see fuse.go.
			m.fuseHot()
		}
		chunk := uint64(CheckStride)
		if chunk > budget {
			chunk = budget
		}
		budget -= m.steps(chunk)
	}
	if m.err != nil {
		return 0, m.err
	}
	if m.halted {
		return Halted, nil
	}
	if m.hook != nil {
		m.emit(trace.Event{Kind: trace.KSuspend, P: m.p})
	}
	return Suspended, nil
}

// Redo forces a failure into the topmost choice point of a machine
// that halted with success, so the next RunFor slice backtracks into
// the remaining alternatives and searches for the next solution. When
// no alternatives remain the resumed run reaches the bottom choice
// point, whose saved continuation is the halt_fail word at code
// address 0, and halts with failure — the enumeration is exhausted.
//
// It returns an error wrapping ErrNotResumable if the machine is
// still running or faulted (a faulted machine's error also stays in
// the chain, so both sentinels match with errors.Is), and ErrExhausted
// if it already halted with failure. Every non-nil return leaves the
// machine untouched: calling Redo again after ErrExhausted keeps
// returning ErrExhausted and never re-runs the query.
func (m *Machine) Redo() error {
	switch {
	case m.err != nil:
		return fmt.Errorf("%w: machine faulted: %w", ErrNotResumable, m.err)
	case !m.halted:
		return ErrNotResumable
	case m.failed:
		return ErrExhausted
	}
	m.halted = false
	if m.hook != nil {
		before := m.stats.Cycles
		// Dispatch through the normal failure path: a still-pending
		// shallow try resumes at its shadow alternative, anything else
		// restores the top choice point.
		m.fail()
		m.emit(trace.Event{Kind: trace.KRedo, P: m.p, Cycles: m.stats.Cycles - before})
		return m.err
	}
	m.fail()
	return m.err
}

// Halted reports whether the machine has executed halt or halt_fail.
func (m *Machine) Halted() bool { return m.halted }

// Succeeded reports whether the machine halted in success (halt, not
// halt_fail).
func (m *Machine) Succeeded() bool { return m.halted && !m.failed }

// Result snapshots the current counters and memory-system statistics
// without ending the session; for a halted machine it is exactly what
// Run would have returned.
func (m *Machine) Result() Result { return m.result() }
