package machine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/kcmisa"
)

// The host-time monitor: where does the *simulator* spend its
// wall-clock time, attributed per opcode. It is the complement of the
// predicate profiler in profile.go — that one answers questions about
// the simulated machine (cycles per predicate), this one answers
// questions about the Go interpreter loop (nanoseconds per opcode),
// which is what the predecode/allocation work optimises. Enabled by
// Config.HostProfile; pprof (cmd/kcmbench -cpuprofile) gives the
// function-level view, this gives the opcode-level one.

// hostProfiler accumulates per-opcode host time and counts.
type hostProfiler struct {
	total [kcmisa.NumOps]time.Duration
	count [kcmisa.NumOps]uint64
}

func (h *hostProfiler) account(op kcmisa.Op, d time.Duration) {
	if op < kcmisa.NumOps {
		h.total[op] += d
		h.count[op]++
	}
}

// HostProfileRow is one opcode's host-time attribution.
type HostProfileRow struct {
	Op    kcmisa.Op
	Count uint64
	Total time.Duration
}

// NsPerExec returns the mean host nanoseconds per execution.
func (r HostProfileRow) NsPerExec() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.Total.Nanoseconds()) / float64(r.Count)
}

// HostProfile returns the per-opcode host-time attribution, heaviest
// first. The machine must have been created with Config.HostProfile
// on; otherwise it returns nil.
func (m *Machine) HostProfile() []HostProfileRow {
	if m.hostProf == nil {
		return nil
	}
	var rows []HostProfileRow
	for op := kcmisa.Op(0); op < kcmisa.NumOps; op++ {
		if m.hostProf.count[op] == 0 {
			continue
		}
		rows = append(rows, HostProfileRow{
			Op:    op,
			Count: m.hostProf.count[op],
			Total: m.hostProf.total[op],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
	return rows
}

// RenderHostProfile formats the host-time profile.
func RenderHostProfile(rows []HostProfileRow) string {
	var total time.Duration
	for _, r := range rows {
		total += r.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %12s %10s\n",
		"opcode", "host-ns", "%", "executions", "ns/exec")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = float64(r.Total) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-24v %12d %7.1f%% %12d %10.1f\n",
			r.Op, r.Total.Nanoseconds(), pct, r.Count, r.NsPerExec())
	}
	return b.String()
}
