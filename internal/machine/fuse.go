package machine

import (
	"repro/internal/analysis"
	"repro/internal/kcmisa"
	"repro/internal/trace"
	"repro/internal/word"
)

// The superinstruction fusion tier: a translation layer above the
// predecoded code cache. Where predecode removes the per-step decode,
// fusion removes the per-step dispatch: an analyzer-licensed run of
// instructions (a head-unification get/unify run, or a goal-setup
// put run ending in its call/execute) is installed as one fused
// handler in a per-address table that steps()/stepsTraced() consult
// before normal dispatch. One handler invocation then replays the
// whole run — fetch accounting, execution, trace events — without
// re-entering the fetch-execute loop between components.
//
// The correctness contract mirrors predecode's: fusion is a host-side
// artifact carrying no simulated state. A fused replay must charge
// exactly the cycles, code-cache reads and data traffic the unfused
// loop would, instruction for instruction, so cycle pins, kcmbench
// tables and golden traces stay byte-identical with fusion on or off.
// The replay rules that make this hold:
//
//   - every run component is a single code word (switches are the
//     only multi-word instructions and are never in a run class), so
//     the per-component fetch replay is Touch(a,1) until every word
//     has been observed resident, then a batched NoteReads — the
//     same collapse predecode performs (predecode.go);
//   - each component executes through the same exec() the unfused
//     loop uses, with m.p pre-advanced to the fall-through address,
//     so binding, failure, trail and error semantics are identical
//     by construction;
//   - a component that transfers control (a mid-run failure, or the
//     terminal call/execute) ends the replay: the licenses prove no
//     branch target enters a run's interior, so resuming at m.p
//     through normal dispatch is exactly what the unfused loop does;
//   - a mid-run fault returns the faulting component's address, and
//     the caller applies the same overflow-retry (recoverHeap) the
//     unfused loop applies — re-entry lands on the interior address,
//     which has no fused entry, so the retried instruction re-runs
//     alone, re-charging its fetch like an unfused retry;
//   - a run is only entered when the whole run fits in the remaining
//     step budget; otherwise the head instruction dispatches alone.
//     Both machines then suspend at the same instruction boundary.
//
// Licenses come from the whole-image analyzer (m.Facts()), but are
// never trusted: installation re-verifies every license against the
// raw code words with analysis.CheckLicenses and re-checks each
// decoded component's op class per the lowering contract
// (analysis.GetRunOp/PutRunOp). Any diagnostic voids the whole
// install. Code-space writes (LoadIncremental, LoadBatch, PatchCode)
// invalidate fused entries range-wise, exactly like predecoded ones.

// fusedRun is one installed handler: the decoded components of a
// licensed run, keyed in m.fused by the address of its first
// instruction. Runs are disjoint (get and put classes do not
// intersect, and runs of one class are maximal or backward-closed),
// so one entry per head address suffices and interiors are never
// heads.
type fusedRun struct {
	start uint32
	kind  string // analysis.FuseGetRun or analysis.FusePutCall
	// det marks a put_call handler specialised on a callee the
	// analyzer classified deterministic: the simulated work is
	// identical (the cost model charges the same cycles either way),
	// but the specialisation is licensed here and reported in
	// FusionStats, and a hardware superinstruction could use it to
	// skip the dead choice-point bookkeeping.
	det bool
	// allRes: every component word has been observed resident in the
	// simulated code cache and residency is monotone (image fits the
	// cache), so the fetch replay collapses to one batched NoteReads.
	allRes bool
	instrs []kcmisa.Instr
}

// FusionStats describes the installed fusion tier and its activity.
type FusionStats struct {
	Runs     int // installed fused handlers
	GetRuns  int // get/unify head-unification handlers
	PutCalls int // put+call/execute goal-setup handlers
	DetCalls int // put_call handlers specialised on a det callee
	Covered  int // component instructions covered by handlers

	Dispatches uint64 // handler invocations since the last ResetStats
	FusedSteps uint64 // instructions executed through handlers
}

// FusedRuns returns the number of installed fused handlers.
func (m *Machine) FusedRuns() int { return m.fusedCount }

// FusionStats assembles the fusion tier's install and activity
// counters. The install fields are recomputed by scanning the table
// (cold path); the activity counters reset with ResetStats.
func (m *Machine) FusionStats() FusionStats {
	st := FusionStats{
		Dispatches: m.fuseDispatches,
		FusedSteps: m.fuseSteps,
	}
	for _, f := range m.fused {
		if f == nil {
			continue
		}
		st.Runs++
		st.Covered += len(f.instrs)
		switch f.kind {
		case analysis.FuseGetRun:
			st.GetRuns++
		case analysis.FusePutCall:
			st.PutCalls++
			if f.det {
				st.DetCalls++
			}
		}
	}
	return st
}

// WarmFusion verifies and installs every licensed fused handler
// eagerly, regardless of the hot threshold. The engine pool calls it
// once per built machine so the first query already dispatches fused;
// it is also the install path bootstrap takes in eager mode.
func (m *Machine) WarmFusion() {
	if !m.fusionOn {
		return
	}
	m.fusedStale = false
	m.fuseImage(nil)
}

// fuseInstall is the bootstrap hook: (re)build the fused-entry table
// when it is stale. In eager mode (threshold 0) every licensed run is
// installed; in threshold mode only predicates the profiler has
// already proven hot are, and RunFor re-checks at chunk boundaries as
// profile cycles accumulate.
func (m *Machine) fuseInstall() {
	m.fusedStale = false
	if m.fuseThreshold == 0 {
		m.fuseImage(nil)
	} else if m.prof != nil {
		m.fuseHot()
	}
}

// fuseHot installs handlers for predicates whose profiled cycle count
// has reached the configured threshold. Called at bootstrap and at
// RunFor chunk boundaries; the scan is a few dozen compares, and the
// install machinery only runs when a new predicate crossed the
// threshold.
func (m *Machine) fuseHot() {
	var want map[uint32]bool
	for i := range m.prof.entries {
		e := &m.prof.entries[i]
		if e.cycles >= m.fuseThreshold && !m.fusedPreds[e.start] {
			if want == nil {
				want = make(map[uint32]bool)
			}
			want[e.start] = true
		}
	}
	if want == nil {
		return
	}
	m.fuseImage(func(pf *analysis.PredFacts) bool { return want[pf.Start] })
}

// fuseImage computes (or refreshes) the whole-image facts, re-verifies
// every license against the raw code words, and installs handlers for
// the predicates the filter accepts (nil accepts all). A single
// verification diagnostic voids the install: a licenses artifact that
// fails its own re-derivation is not trusted for any run.
func (m *Machine) fuseImage(only func(*analysis.PredFacts) bool) {
	facts := m.Facts()
	if ds := analysis.CheckLicenses(facts, m.codeShadow[:m.codeTop], 0); len(ds) > 0 {
		return
	}
	m.growFused(m.codeTop)
	for _, pf := range facts.Preds {
		if only != nil && !only(pf) {
			continue
		}
		if m.fusedPreds[pf.Start] {
			continue
		}
		m.fusedPreds[pf.Start] = true
		for _, lic := range pf.Licenses {
			m.installLicense(lic)
		}
	}
}

// installLicense lowers one verified license into a fused handler:
// decode each component from the host-side code shadow (untimed) and
// re-check the lowering contract — single-word components of the
// licensed op class, a put_call terminal that is call/execute
// targeting the license's resolved callee. Any mismatch voids the
// license silently; execution falls back to normal dispatch, which is
// always correct.
func (m *Machine) installLicense(lic analysis.License) {
	if lic.Instrs < 1 || lic.Words != lic.Instrs ||
		int64(lic.Start)+int64(lic.Instrs) > int64(m.codeTop) {
		return
	}
	ins := make([]kcmisa.Instr, lic.Instrs)
	det := false
	for i := range ins {
		a := lic.Start + uint32(i)
		if kcmisa.DecodeInto(m.shadowFetch, a, &ins[i]) != 1 {
			return
		}
		op := ins[i].Op
		last := i == lic.Instrs-1
		switch lic.Kind {
		case analysis.FuseGetRun:
			if !analysis.GetRunOp(op) {
				return
			}
		case analysis.FusePutCall:
			if last {
				if op != kcmisa.Call && op != kcmisa.Execute {
					return
				}
				if ins[i].L != lic.CalleeTarget() {
					return
				}
				det = lic.CalleeDet
			} else if !analysis.PutRunOp(op) {
				return
			}
		default:
			return
		}
	}
	if m.fused[lic.Start] == nil {
		m.fusedCount++
	}
	m.fused[lic.Start] = &fusedRun{
		start: lic.Start, kind: lic.Kind, det: det, instrs: ins,
	}
	if lic.Instrs > m.fusedMaxInstrs {
		m.fusedMaxInstrs = lic.Instrs
	}
	// Mark the head in the predecode width table so the dispatch loop
	// finds the handler without probing the sparse fused table every
	// step (predecode.go). The flag never travels without a width: a
	// head not yet predecoded is predecoded here, from the same shadow
	// words, so the w != 0 fast path always holds where the flag is
	// set. Residency, if already observed, is preserved.
	if int64(lic.Start) < int64(len(m.pwidth)) {
		if m.pwidth[lic.Start]&pwWidthMask == 0 {
			m.pdec[lic.Start] = ins[0]
			m.pwidth[lic.Start] = 1 | pwFusedHead
		} else {
			m.pwidth[lic.Start] |= pwFusedHead
		}
	}
}

// shadowFetch reads a code word from the host-side shadow — the
// untimed decode source for handler installation. Out-of-range reads
// return zero, which fails DecodeInto's width check.
func (m *Machine) shadowFetch(a uint32) word.Word {
	if int64(a) < int64(len(m.codeShadow)) {
		return m.codeShadow[a]
	}
	return 0
}

// growFused extends the fused-entry table to cover [0, top),
// preserving entries. When the image has outgrown the simulated code
// cache, residency is no longer monotone and every handler's batched
// fetch replay must fall back to per-component Touch.
func (m *Machine) growFused(top uint32) {
	if int64(top) > int64(len(m.fused)) {
		fused := make([]*fusedRun, top)
		copy(fused, m.fused)
		m.fused = fused
	}
	if !m.pdecResidentOK {
		for _, f := range m.fused {
			if f != nil {
				f.allRes = false
			}
		}
	}
}

// invalidateFused drops every fused handler whose run could overlap
// the written code range [start, end) — any run starting in the
// range, plus runs beginning up to the longest installed run before
// it — and marks the table stale so the next bootstrap re-verifies
// and re-installs. The write-through coherence rule of the code cache
// (predecode.go) applies unchanged.
func (m *Machine) invalidateFused(start, end uint32) {
	if m.fused == nil {
		if m.fusionOn {
			m.fusedStale = true
		}
		return
	}
	lo := int64(start) - int64(m.fusedMaxInstrs-1)
	if lo < 0 {
		lo = 0
	}
	hi := int64(end)
	if hi > int64(len(m.fused)) {
		hi = int64(len(m.fused))
	}
	for a := lo; a < hi; a++ {
		if f := m.fused[a]; f != nil && int64(f.start)+int64(len(f.instrs)) > int64(start) {
			m.fused[a] = nil
			m.fusedCount--
			if a < int64(len(m.pwidth)) {
				// The head's dispatch flag goes with the handler; the
				// predecoded width stays, governed by its own
				// invalidation rule.
				m.pwidth[a] &^= pwFusedHead
			}
		}
	}
	m.fusedStale = true
	clear(m.fusedPreds)
}

// runFused replays one licensed run through its fused handler: the
// plain-path twin (no hook, no text trace). Counters that the
// components cannot observe mid-run — Instrs, and the resident-path
// read count — are accumulated locally and flushed on every exit, so
// the handler body costs one RMW per run instead of one per
// component; cycle charges go through the same exec/cyc paths as
// unfused execution. Returns the instructions executed and, when
// m.err is set on return, the faulting component's address for the
// caller's overflow-retry.
func (m *Machine) runFused(f *fusedRun, instrumented bool) (uint64, uint32) {
	n := len(f.instrs)
	allRes := f.allRes
	resAll := m.pdecResidentOK
	executed := uint64(0)
	fault := f.start
	for i := 0; i < n; i++ {
		a := f.start + uint32(i)
		if !allRes {
			// Fetch replay, one word per component (the run classes
			// admit only single-word instructions): identical
			// accounting to the decoder's fetch or predecode's replay.
			cost, allHit, err := m.icache.Touch(a, 1)
			m.stats.Cycles += uint64(cost)
			if err != nil {
				if m.err == nil {
					m.err = classifyTrap(err)
				}
				fault = a
				break
			}
			if !allHit {
				resAll = false
			}
		}
		executed++
		m.p = a + 1
		if instrumented {
			m.execInstrumented(a, &f.instrs[i])
		} else {
			m.exec(&f.instrs[i])
		}
		if m.err != nil {
			fault = a
			break
		}
		if m.p != a+1 {
			// Control left the straight line: a mid-run failure or the
			// terminal call/execute. Resume through normal dispatch.
			break
		}
	}
	m.stats.Instrs += executed
	if allRes {
		m.icache.NoteReads(int(executed))
	} else if executed == uint64(n) && resAll {
		f.allRes = true
	}
	m.fuseDispatches++
	m.fuseSteps += executed
	return executed, fault
}

// runFusedTraced is the traced twin of runFused (the stepsTraced
// duplication idiom, traced.go): per-component KInstr events with
// exact cycle deltas, a KFault for a faulting fetch, and the
// boundary event of a terminal call/execute — byte-identical to the
// stream the unfused loop emits for the same instructions. Run
// components are never Builtin, so no meta-call boundary
// (pendingCallSet) can arise inside a run.
func (m *Machine) runFusedTraced(f *fusedRun, instrumented bool) (uint64, uint32) {
	n := len(f.instrs)
	allRes := f.allRes
	resAll := m.pdecResidentOK
	executed := uint64(0)
	fault := f.start
	for i := 0; i < n; i++ {
		a := f.start + uint32(i)
		m.traceP = a
		before := m.stats.Cycles
		gcBefore := m.gcStats.Cycles
		if allRes {
			m.icache.NoteReads(1)
		} else {
			cost, allHit, err := m.icache.Touch(a, 1)
			m.stats.Cycles += uint64(cost)
			if err != nil {
				if m.err == nil {
					m.err = classifyTrap(err)
				}
				m.emit(trace.Event{Kind: trace.KFault, P: a, Cycles: m.stats.Cycles - before})
				fault = a
				break
			}
			if !allHit {
				resAll = false
			}
		}
		m.stats.Instrs++
		executed++
		m.p = a + 1
		in := &f.instrs[i]
		op := in.Op
		tgt := uint32(in.L)
		if instrumented {
			m.execInstrumented(a, in)
		} else {
			m.exec(in)
		}
		m.emit(trace.Event{Kind: trace.KInstr, Op: op, P: a,
			Cycles: m.stats.Cycles - before - (m.gcStats.Cycles - gcBefore)})
		if m.err != nil {
			m.pendingCallSet = false
			fault = a
			break
		}
		switch op {
		case kcmisa.Call:
			m.emit(trace.Event{Kind: trace.KCall, Op: op, P: a, Addr: tgt})
		case kcmisa.Execute:
			m.emit(trace.Event{Kind: trace.KExecute, Op: op, P: a, Addr: tgt})
		}
		if m.p != a+1 {
			break
		}
	}
	if !allRes && executed == uint64(n) && resAll {
		f.allRes = true
	}
	m.fuseDispatches++
	m.fuseSteps += executed
	return executed, fault
}
