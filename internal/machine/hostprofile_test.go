package machine

import (
	"strings"
	"testing"

	"repro/internal/kcmisa"
)

// TestHostProfileAttributesTime checks the per-opcode host-time
// monitor: with Config.HostProfile on, every executed instruction is
// attributed to its opcode, the rows come out heaviest-first, and the
// renderer produces one line per opcode.
func TestHostProfileAttributesTime(t *testing.T) {
	m, res, err := run(t, loopSrc, "loop(200).", Config{HostProfile: true})
	if err != nil || !res.Success {
		t.Fatalf("run: %v %v", err, res.Success)
	}
	rows := m.HostProfile()
	if len(rows) == 0 {
		t.Fatal("HostProfile returned no rows")
	}
	var execs uint64
	for i, r := range rows {
		execs += r.Count
		if r.Count == 0 {
			t.Fatalf("row %v has zero executions", r.Op)
		}
		if i > 0 && rows[i-1].Total < r.Total {
			t.Fatalf("rows not sorted by host time: %v(%v) before %v(%v)",
				rows[i-1].Op, rows[i-1].Total, r.Op, r.Total)
		}
	}
	// Every executed instruction is accounted exactly once.
	if execs != res.Stats.Instrs {
		t.Fatalf("profiled %d executions, machine ran %d instructions", execs, res.Stats.Instrs)
	}
	// The loop body is call/arith heavy; its opcodes must appear.
	seen := map[kcmisa.Op]bool{}
	for _, r := range rows {
		seen[r.Op] = true
	}
	if !seen[kcmisa.Call] {
		t.Fatal("call missing from host profile of a recursive predicate")
	}
	out := RenderHostProfile(rows)
	if !strings.Contains(out, "ns/exec") || !strings.Contains(out, "call") {
		t.Fatalf("rendered profile missing expected content:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != len(rows)+1 {
		t.Fatalf("rendered %d lines, want %d rows + header", got, len(rows))
	}
}

// TestHostProfileDisabled: without the flag the monitor must stay out
// of the hot loop entirely and report nothing.
func TestHostProfileDisabled(t *testing.T) {
	m, res, err := run(t, loopSrc, "loop(5).", Config{})
	if err != nil || !res.Success {
		t.Fatalf("run: %v %v", err, res.Success)
	}
	if rows := m.HostProfile(); rows != nil {
		t.Fatalf("HostProfile without Config.HostProfile = %v, want nil", rows)
	}
}
