// Package snapshot defines the portable serialized form of a KCM
// machine: a versioned, checksummed binary blob carrying the complete
// simulated state — heap, stacks, trail, registers, the memory system
// (cache lines, page tables, DRAM open row) and every statistics
// counter — plus the identity (content hash) of the code image it was
// taken against. A blob restored onto a machine with the same image
// and configuration continues execution byte-identically: same
// solutions, same cycle counts, same cache statistics.
//
// What the blob deliberately does NOT carry is host-side derived
// state: predecode residency, fused-handler tables, analyzer facts,
// profiler shadow stacks. Those are caches over the code image and are
// rebuilt (or lazily refilled) by the restoring machine; serializing
// them would bloat the blob and tie it to one host build. The split
// rule is: anything that affects a simulated counter is serialized,
// anything that only affects host wall-clock is derived.
//
// The package is dependency-light (word, cache, mmu) so both the
// machine (producer/consumer) and out-of-process tools can use it
// without importing the interpreter.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"math"

	"repro/internal/cache"
	"repro/internal/mmu"
	"repro/internal/word"
)

// Magic begins every blob; Version is the current format version.
// Decode rejects other magics as malformed and other versions with
// ErrVersion, so format evolution is explicit, never silent.
const (
	Magic   = "KCMSNAP1"
	Version = 1
)

// Typed decode failures. Decode never panics and never partially
// succeeds: a blob either round-trips into a fully validated State or
// is rejected with one of these (wrapped with detail).
var (
	ErrTruncated = errors.New("snapshot: truncated blob")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrMalformed = errors.New("snapshot: malformed blob")
)

// Counters mirrors machine.Stats field for field (plus the fusion
// dispatch counters that live beside it). The mirror exists so this
// package need not import the machine; the machine's capture code
// converts both ways and a reflection test there pins the two structs
// to the same shape, which is what makes the serializer an exhaustive
// inventory of per-query state.
type Counters struct {
	NsPerCycle   float64
	Cycles       uint64
	Instrs       uint64
	Inferences   uint64
	DerefSteps   uint64
	UnifyNodes   uint64
	TrailChecks  uint64
	TrailPushes  uint64
	ShallowTries uint64
	ShallowFails uint64
	DeepFails    uint64
	ChoicePoints uint64
	NeckUpdates  uint64
	NeckDet      uint64
	EnvAllocs    uint64
	Builtins     uint64
	CPWords      uint64

	FuseDispatches uint64
	FuseSteps      uint64
}

// GCCounters mirrors machine.GCStats.
type GCCounters struct {
	Collections uint64
	LiveWords   uint64
	FreedWords  uint64
	TrailDrops  uint64
	Cycles      uint64
}

// State is the complete decoded form of a snapshot blob.
type State struct {
	// Compatibility gates: a restore target must present the same
	// configuration fingerprint and the same code image content hash
	// over the same CodeTop. The code itself is NOT serialized — the
	// receiving side reconstructs it (same program compile, same
	// tenant delta) and the hash proves equivalence.
	ConfigHash uint64
	ImageHash  uint64
	CodeTop    uint32

	// Dynamic-database delta mark: the tenant database version and
	// code frontier this snapshot's image was materialized from. Zero
	// for purely static images. The engine layer uses it to refuse
	// resuming against a tenant that has been rolled back or mutated
	// since (the blob would otherwise run stale code that hashes
	// clean only by accident).
	DeltaVersion uint64
	DeltaTop     uint32

	// Machine registers.
	Regs         []word.Word
	P            uint32
	CP           uint32
	E, B, B0     uint32
	H, HB        uint32
	TR           uint32
	S            uint32
	Mode, SF, CF bool
	ShadowH      uint32
	ShadowTR     uint32
	ShadowNext   int32
	BLTOP        uint32
	Halted       bool
	Failed       bool
	GCRetryAddr  uint32
	GCRetryInstr uint64

	// Live data-memory ranges. Bases are implied by the (fingerprinted)
	// configuration; tops are explicit. Heap covers [GlobalBase, H),
	// Local [LocalBase, LocalTop), Choice [ChoiceBase, ChoiceTop),
	// Trail [TrailBase, TR).
	LocalTop  uint32
	ChoiceTop uint32
	Heap      []word.Word
	Local     []word.Word
	Choice    []word.Word
	Trail     []word.Word

	// Simulated memory system. Residency and dirtiness decide every
	// subsequent hit/miss/writeback, page tables decide physical
	// addresses and so DRAM row behaviour, the frame frontier decides
	// future demand allocations, and the open row decides the very
	// next access's page-mode timing.
	DataLines []cache.LineState
	CodeLines []cache.LineState
	DataPages []mmu.PageEntry
	CodePages []mmu.PageEntry
	FrameNext uint32
	OpenRow   uint32
	OpenRowOK bool

	// Statistics, all of them: the counters are observable output of
	// the simulation, so a continuation must resume from the exact
	// values the suspended run had reached.
	Counters Counters
	GC       GCCounters
	DCache   cache.Stats
	CCache   cache.Stats
	DataMMU  mmu.Stats
	CodeMMU  mmu.Stats
	MemReads uint64
	MemWrite uint64
	MemPageH uint64

	// Session block, used by the engine layer to park a suspended
	// enumeration; zero for a bare machine capture. Goal is the query
	// text (recompiled on resume; the image hash gate proves the
	// recompile reproduced the code the blob ran against).
	Goal          string
	SessState     uint8
	SessDelivered uint64
	SessBudget    uint64
}

// HashWords is the content hash used for image identity: FNV-1a over
// the little-endian bytes of each word. Deterministic across processes
// and builds.
func HashWords(ws []word.Word) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, w := range ws {
		v := uint64(w)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// maxSection caps every length-prefixed section against absurd counts
// before allocation: no legal blob exceeds it (the largest sections
// are the live stacks, bounded by zone sizes far below this), and a
// fuzzed length field must not drive a huge allocation.
const maxSection = 64 << 20

// Encode serializes the state into a self-describing blob:
//
//	magic[8] | version u32 | payloadLen u64 | crc64(payload) u64 | payload
//
// The checksum covers the payload only; magic and version are
// validated structurally.
func Encode(s *State) []byte {
	var w writer
	w.words(s.Regs)
	w.u32(s.P)
	w.u32(s.CP)
	w.u32(s.E)
	w.u32(s.B)
	w.u32(s.B0)
	w.u32(s.H)
	w.u32(s.HB)
	w.u32(s.TR)
	w.u32(s.S)
	w.bool(s.Mode)
	w.bool(s.SF)
	w.bool(s.CF)
	w.u32(s.ShadowH)
	w.u32(s.ShadowTR)
	w.u32(uint32(s.ShadowNext))
	w.u32(s.BLTOP)
	w.bool(s.Halted)
	w.bool(s.Failed)
	w.u32(s.GCRetryAddr)
	w.u64(s.GCRetryInstr)

	w.u64(s.ConfigHash)
	w.u64(s.ImageHash)
	w.u32(s.CodeTop)
	w.u64(s.DeltaVersion)
	w.u32(s.DeltaTop)

	w.u32(s.LocalTop)
	w.u32(s.ChoiceTop)
	w.words(s.Heap)
	w.words(s.Local)
	w.words(s.Choice)
	w.words(s.Trail)

	w.dataLines(s.DataLines)
	w.codeLines(s.CodeLines)
	w.pages(s.DataPages)
	w.pages(s.CodePages)
	w.u32(s.FrameNext)
	w.u32(s.OpenRow)
	w.bool(s.OpenRowOK)

	w.counters(&s.Counters)
	w.gc(&s.GC)
	w.cacheStats(&s.DCache)
	w.cacheStats(&s.CCache)
	w.mmuStats(&s.DataMMU)
	w.mmuStats(&s.CodeMMU)
	w.u64(s.MemReads)
	w.u64(s.MemWrite)
	w.u64(s.MemPageH)

	w.str(s.Goal)
	w.u8(s.SessState)
	w.u64(s.SessDelivered)
	w.u64(s.SessBudget)

	payload := w.buf
	out := make([]byte, 0, len(Magic)+4+8+8+len(payload))
	out = append(out, Magic...)
	var hdr writer
	hdr.u32(Version)
	hdr.u64(uint64(len(payload)))
	hdr.u64(crc64.Checksum(payload, crcTable))
	out = append(out, hdr.buf...)
	out = append(out, payload...)
	return out
}

// Decode parses and validates a blob. Structural validation (magic,
// version, length, checksum, per-section bounds) all happens here;
// semantic validation against a concrete machine configuration is the
// restore side's job. On any failure the returned error wraps one of
// the typed sentinels above.
func Decode(b []byte) (*State, error) {
	if len(b) < len(Magic)+4+8+8 {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d for the header", ErrTruncated, len(b), len(Magic)+4+8+8)
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, b[:len(Magic)])
	}
	hdr := reader{buf: b[len(Magic):]}
	ver := hdr.u32()
	plen := hdr.u64()
	sum := hdr.u64()
	if ver != Version {
		return nil, fmt.Errorf("%w: blob version %d, this build reads %d", ErrVersion, ver, Version)
	}
	payload := hdr.buf[hdr.off:]
	if uint64(len(payload)) < plen {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrTruncated, len(payload), plen)
	}
	if uint64(len(payload)) > plen {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrMalformed, uint64(len(payload))-plen)
	}
	if crc64.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: crc64 over %d payload bytes", ErrChecksum, len(payload))
	}

	r := reader{buf: payload}
	s := &State{}
	s.Regs = r.words()
	s.P = r.u32()
	s.CP = r.u32()
	s.E = r.u32()
	s.B = r.u32()
	s.B0 = r.u32()
	s.H = r.u32()
	s.HB = r.u32()
	s.TR = r.u32()
	s.S = r.u32()
	s.Mode = r.bool()
	s.SF = r.bool()
	s.CF = r.bool()
	s.ShadowH = r.u32()
	s.ShadowTR = r.u32()
	s.ShadowNext = int32(r.u32())
	s.BLTOP = r.u32()
	s.Halted = r.bool()
	s.Failed = r.bool()
	s.GCRetryAddr = r.u32()
	s.GCRetryInstr = r.u64()

	s.ConfigHash = r.u64()
	s.ImageHash = r.u64()
	s.CodeTop = r.u32()
	s.DeltaVersion = r.u64()
	s.DeltaTop = r.u32()

	s.LocalTop = r.u32()
	s.ChoiceTop = r.u32()
	s.Heap = r.words()
	s.Local = r.words()
	s.Choice = r.words()
	s.Trail = r.words()

	s.DataLines = r.dataLines()
	s.CodeLines = r.codeLines()
	s.DataPages = r.pages()
	s.CodePages = r.pages()
	s.FrameNext = r.u32()
	s.OpenRow = r.u32()
	s.OpenRowOK = r.bool()

	r.counters(&s.Counters)
	r.gc(&s.GC)
	r.cacheStats(&s.DCache)
	r.cacheStats(&s.CCache)
	r.mmuStats(&s.DataMMU)
	r.mmuStats(&s.CodeMMU)
	s.MemReads = r.u64()
	s.MemWrite = r.u64()
	s.MemPageH = r.u64()

	s.Goal = r.str()
	s.SessState = r.u8()
	s.SessDelivered = r.u64()
	s.SessBudget = r.u64()

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("%w: %d unread payload bytes", ErrMalformed, len(r.buf)-r.off)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate enforces the structural invariants any real capture
// satisfies, so the restore side can rely on them.
func (s *State) validate() error {
	if len(s.DataLines) > cache.DataWords {
		return fmt.Errorf("%w: %d data-cache lines, capacity %d", ErrMalformed, len(s.DataLines), cache.DataWords)
	}
	if len(s.CodeLines) > cache.CodeWords {
		return fmt.Errorf("%w: %d code-cache lines, capacity %d", ErrMalformed, len(s.CodeLines), cache.CodeWords)
	}
	for _, p := range s.DataPages {
		if p.VPage >= mmu.NumPages {
			return fmt.Errorf("%w: data page table maps virtual page %d beyond %d", ErrMalformed, p.VPage, mmu.NumPages)
		}
	}
	for _, p := range s.CodePages {
		if p.VPage >= mmu.NumPages {
			return fmt.Errorf("%w: code page table maps virtual page %d beyond %d", ErrMalformed, p.VPage, mmu.NumPages)
		}
	}
	for _, p := range append(append([]mmu.PageEntry{}, s.DataPages...), s.CodePages...) {
		if p.Frame >= s.FrameNext {
			return fmt.Errorf("%w: page table references frame %d at or above the allocation frontier %d", ErrMalformed, p.Frame, s.FrameNext)
		}
	}
	if s.SessState > 2 {
		return fmt.Errorf("%w: session state %d", ErrMalformed, s.SessState)
	}
	return nil
}

// --- little-endian encoding primitives ---

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (w *writer) u64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) words(ws []word.Word) {
	w.u32(uint32(len(ws)))
	for _, x := range ws {
		w.u64(uint64(x))
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) dataLines(ls []cache.LineState) {
	w.u32(uint32(len(ls)))
	for _, l := range ls {
		w.u32(l.VA)
		w.u8(uint8(l.Zone))
		w.u64(uint64(l.Data))
		w.bool(l.Dirty)
	}
}

func (w *writer) codeLines(ls []cache.LineState) {
	w.u32(uint32(len(ls)))
	for _, l := range ls {
		w.u32(l.VA)
		w.u64(uint64(l.Data))
	}
}

func (w *writer) pages(ps []mmu.PageEntry) {
	w.u32(uint32(len(ps)))
	for _, p := range ps {
		w.u32(p.VPage)
		w.u32(p.Frame)
	}
}

func (w *writer) counters(c *Counters) {
	w.f64(c.NsPerCycle)
	for _, v := range []uint64{
		c.Cycles, c.Instrs, c.Inferences, c.DerefSteps, c.UnifyNodes,
		c.TrailChecks, c.TrailPushes, c.ShallowTries, c.ShallowFails,
		c.DeepFails, c.ChoicePoints, c.NeckUpdates, c.NeckDet,
		c.EnvAllocs, c.Builtins, c.CPWords, c.FuseDispatches, c.FuseSteps,
	} {
		w.u64(v)
	}
}

func (w *writer) gc(g *GCCounters) {
	w.u64(g.Collections)
	w.u64(g.LiveWords)
	w.u64(g.FreedWords)
	w.u64(g.TrailDrops)
	w.u64(g.Cycles)
}

func (w *writer) cacheStats(s *cache.Stats) {
	w.u64(s.Reads)
	w.u64(s.Writes)
	w.u64(s.ReadMiss)
	w.u64(s.WriteMiss)
	w.u64(s.WriteBacks)
}

func (w *writer) mmuStats(s *mmu.Stats) {
	w.u64(s.Translations)
	w.u64(s.PageFaults)
	w.u64(s.ZoneChecks)
	w.u64(s.ZoneTraps)
}

// --- decoding primitives; first failure latches err and every later
// read returns zero, so call sites stay linear ---

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf))
		return true
	}
	return false
}

func (r *reader) u8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: boolean byte not 0/1 at offset %d", ErrMalformed, r.off-1)
		}
		return false
	}
}

func (r *reader) u32() uint32 {
	if r.fail(4) {
		return 0
	}
	b := r.buf[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) u64() uint64 {
	if r.fail(8) {
		return 0
	}
	b := r.buf[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a section length and rejects values the remaining bytes
// cannot possibly satisfy (elemSize is the minimum encoded size of one
// element), so a corrupted length cannot drive a giant allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > maxSection || n*elemSize > len(r.buf)-r.off {
		r.err = fmt.Errorf("%w: section count %d exceeds remaining %d bytes", ErrMalformed, n, len(r.buf)-r.off)
		return 0
	}
	return n
}

func (r *reader) words() []word.Word {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	ws := make([]word.Word, n)
	for i := range ws {
		ws[i] = word.Word(r.u64())
	}
	return ws
}

func (r *reader) str() string {
	n := r.count(1)
	if n == 0 {
		return ""
	}
	if r.fail(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) dataLines() []cache.LineState {
	n := r.count(4 + 1 + 8 + 1)
	if n == 0 {
		return nil
	}
	ls := make([]cache.LineState, n)
	for i := range ls {
		ls[i].VA = r.u32()
		ls[i].Zone = word.Zone(r.u8())
		ls[i].Data = word.Word(r.u64())
		ls[i].Dirty = r.bool()
	}
	return ls
}

func (r *reader) codeLines() []cache.LineState {
	n := r.count(4 + 8)
	if n == 0 {
		return nil
	}
	ls := make([]cache.LineState, n)
	for i := range ls {
		ls[i].VA = r.u32()
		ls[i].Data = word.Word(r.u64())
	}
	return ls
}

func (r *reader) pages() []mmu.PageEntry {
	n := r.count(4 + 4)
	if n == 0 {
		return nil
	}
	ps := make([]mmu.PageEntry, n)
	for i := range ps {
		ps[i].VPage = r.u32()
		ps[i].Frame = r.u32()
	}
	return ps
}

func (r *reader) counters(c *Counters) {
	c.NsPerCycle = r.f64()
	for _, p := range []*uint64{
		&c.Cycles, &c.Instrs, &c.Inferences, &c.DerefSteps, &c.UnifyNodes,
		&c.TrailChecks, &c.TrailPushes, &c.ShallowTries, &c.ShallowFails,
		&c.DeepFails, &c.ChoicePoints, &c.NeckUpdates, &c.NeckDet,
		&c.EnvAllocs, &c.Builtins, &c.CPWords, &c.FuseDispatches, &c.FuseSteps,
	} {
		*p = r.u64()
	}
}

func (r *reader) gc(g *GCCounters) {
	g.Collections = r.u64()
	g.LiveWords = r.u64()
	g.FreedWords = r.u64()
	g.TrailDrops = r.u64()
	g.Cycles = r.u64()
}

func (r *reader) cacheStats(s *cache.Stats) {
	s.Reads = r.u64()
	s.Writes = r.u64()
	s.ReadMiss = r.u64()
	s.WriteMiss = r.u64()
	s.WriteBacks = r.u64()
}

func (r *reader) mmuStats(s *mmu.Stats) {
	s.Translations = r.u64()
	s.PageFaults = r.u64()
	s.ZoneChecks = r.u64()
	s.ZoneTraps = r.u64()
}
