package snapshot

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/mmu"
	"repro/internal/word"
)

// sample builds a State with every section populated, so the
// round-trip test exercises each encoder branch.
func sample() *State {
	return &State{
		ConfigHash: 0xdeadbeefcafe, ImageHash: 0x1234567890ab, CodeTop: 300,
		DeltaVersion: 7, DeltaTop: 280,
		Regs: []word.Word{1, 2, 3, word.Invalid()},
		P:    42, CP: 7, E: 0x400010, B: 0x800000, B0: 0x800000,
		H: 0x10020, HB: 0x10010, TR: 0xC00004, S: 0x10011,
		Mode: true, SF: false, CF: true,
		ShadowH: 0x10008, ShadowTR: 0xC00002, ShadowNext: -1,
		BLTOP:  0x400020,
		Halted: false, Failed: false,
		GCRetryAddr: 5, GCRetryInstr: ^uint64(0),
		LocalTop: 0x400020, ChoiceTop: 0x80000d,
		Heap:   []word.Word{10, 11, 12},
		Local:  []word.Word{20, 21},
		Choice: []word.Word{30, 31, 32, 33},
		Trail:  []word.Word{40},
		DataLines: []cache.LineState{
			{VA: 0x10020, Zone: word.ZGlobal, Data: 99, Dirty: true},
			{VA: 0x400010, Zone: word.ZLocal, Data: 98},
		},
		CodeLines: []cache.LineState{{VA: 12, Data: 77}},
		DataPages: []mmu.PageEntry{{VPage: 4, Frame: 1}},
		CodePages: []mmu.PageEntry{{VPage: 0, Frame: 0}},
		FrameNext: 2, OpenRow: 9, OpenRowOK: true,
		Counters: Counters{NsPerCycle: 80, Cycles: 1000, Instrs: 200, FuseSteps: 3},
		GC:       GCCounters{Collections: 2, LiveWords: 50, FreedWords: 70, TrailDrops: 1, Cycles: 480},
		DCache:   cache.Stats{Reads: 500, Writes: 300, ReadMiss: 20, WriteMiss: 10, WriteBacks: 5},
		CCache:   cache.Stats{Reads: 800, ReadMiss: 30},
		DataMMU:  mmu.Stats{Translations: 35, PageFaults: 2, ZoneChecks: 700, ZoneTraps: 1},
		CodeMMU:  mmu.Stats{Translations: 31, PageFaults: 1},
		MemReads: 52, MemWrite: 15, MemPageH: 40,
		Goal:      "nrev([1,2,3], R).",
		SessState: 2, SessDelivered: 4, SessBudget: 100000,
	}
}

// TestRoundTrip: Decode(Encode(s)) reproduces every field, and
// re-encoding the decoded state reproduces the bytes.
func TestRoundTrip(t *testing.T) {
	s := sample()
	blob := Encode(s)
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip differs:\n in  %+v\n out %+v", s, got)
	}
	blob2 := Encode(got)
	if string(blob) != string(blob2) {
		t.Fatal("re-encode not byte-identical")
	}
}

// TestTruncationSweep: every strict prefix of a valid blob is rejected
// with a typed error, never a panic.
func TestTruncationSweep(t *testing.T) {
	blob := Encode(sample())
	for n := 0; n < len(blob); n++ {
		_, err := Decode(blob[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(blob))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrMalformed) &&
			!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrVersion) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
	}
}

// TestBitFlips: flipping any single byte is detected — payload flips
// by the checksum, header flips structurally.
func TestBitFlips(t *testing.T) {
	blob := Encode(sample())
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
}

// TestVersionSkew: a future format version is rejected with ErrVersion
// specifically.
func TestVersionSkew(t *testing.T) {
	blob := Encode(sample())
	mut := append([]byte(nil), blob...)
	mut[len(Magic)] = Version + 1
	if _, err := Decode(mut); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: %v, want ErrVersion", err)
	}
}

// TestBadMagic and trailing garbage are malformed, not truncated.
func TestMalformed(t *testing.T) {
	if _, err := Decode([]byte("NOTASNAPxxxxxxxxxxxxxxxxxxxx")); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad magic: %v, want ErrMalformed", err)
	}
	blob := append(Encode(sample()), 0xEE)
	if _, err := Decode(blob); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing byte: %v, want ErrMalformed", err)
	}
}

// TestValidateRejectsInsaneSections: oversized section counts and
// out-of-range page entries are rejected before any big allocation.
func TestValidateRejectsInsaneSections(t *testing.T) {
	s := sample()
	s.DataPages = []mmu.PageEntry{{VPage: mmu.NumPages, Frame: 0}}
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("out-of-range vpage: %v, want ErrMalformed", err)
	}
	s = sample()
	s.CodePages = []mmu.PageEntry{{VPage: 1, Frame: 99}} // >= FrameNext
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("frame beyond frontier: %v, want ErrMalformed", err)
	}
	s = sample()
	s.SessState = 3
	if _, err := Decode(Encode(s)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad session state: %v, want ErrMalformed", err)
	}
}

// TestHashWordsDeterministic pins the image-hash function: stable
// values, order-sensitive, length-sensitive.
func TestHashWordsDeterministic(t *testing.T) {
	a := HashWords([]word.Word{1, 2, 3})
	if a != HashWords([]word.Word{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if a == HashWords([]word.Word{3, 2, 1}) {
		t.Fatal("hash not order-sensitive")
	}
	if a == HashWords([]word.Word{1, 2}) {
		t.Fatal("hash not length-sensitive")
	}
}
