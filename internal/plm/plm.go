// Package plm models the Berkeley PLM (Programmed Logic Machine),
// the baseline of Tables 1 and 2: a microcoded, byte-coded WAM
// processor at 100 ns cycle time, without KCM's delayed choice-point
// creation, and with cdr-coding of static list cells.
//
// The paper's own PLM numbers were produced by simulation [4], so the
// faithful substitute is a cost model over the same WAM instruction
// stream: the engine (unification, indexing, backtracking) is shared
// with the KCM simulator; only the per-operation microcycle costs,
// the clock and the choice-point policy differ. The static code-size
// model reproduces PLM's byte encoding and cdr-coding.
package plm

import (
	"repro/internal/kcmisa"
	"repro/internal/machine"
)

// CycleNs is the PLM clock (10 MHz).
const CycleNs = 100

// Costs is the PLM microcycle cost table. Anchors: the PLM executes
// byte-coded instructions through a microcoded interpreter, making
// simple data moves ~2-3x the KCM's single cycle; integer multiply
// and divide, by contrast, were comparatively fast, which is why
// query shows the smallest KCM advantage in Table 2 (and why the
// KCM authors note generic/floating arithmetic would speed query up).
var Costs = machine.Costs{
	Move:           3,
	GetConst:       4,
	GetListRead:    6,
	GetListWrite:   8,
	GetStructRead:  7,
	GetStructWrite: 10,
	UnifyRead:      3,
	UnifyWrite:     3,
	PutVar:         5,
	PutUnsafe:      6,
	Call:           6,
	Execute:        5,
	Proceed:        6,
	Allocate:       10,
	Deallocate:     8,
	TryShallow:     0, // unused: the PLM creates choice points eagerly
	TrustOp:        8,
	NeckDet:        1,
	NeckCP:         8,
	CPWord:         2,
	SwitchTerm:     6,
	SwitchTable:    10,
	Cut:            6,
	FailShallow:    0, // unused
	FailDeep:       16,
	TrailPush:      2,
	TrailCheckSW:   0,
	DerefStep:      2,
	DerefStepSW:    2,
	ArithOp:        4,
	MulOp:          22,
	DivOp:          42,
	Compare:        4,
	CompareTaken:   6,
	TestOp:         3,
	IdentNode:      3,
	UnifyNode:      6,
	BuiltinEsc:     3, // the paper: escapes were allocated 3 cycles flat
	Halt:           1,
}

// Config returns the machine configuration modelling the PLM: eager
// choice points (no shallow backtracking), hardware deref and trail
// (the PLM had both), PLM costs and clock.
func Config() machine.Config {
	return machine.Config{
		Shallow: machine.Off,
		Costs:   &Costs,
		CycleNs: CycleNs,
	}
}

// ---- static code size (Table 1) ----

// instrBytes is the byte-encoded PLM instruction length per WAM
// operation: one opcode byte plus register bytes, two-byte code
// offsets and four-byte constants, averaging ~3.3 bytes/instruction
// over the suite exactly as the paper reports.
func instrBytes(in kcmisa.Instr) int {
	switch in.Op {
	case kcmisa.Noop:
		return 0
	case kcmisa.GetVarX, kcmisa.GetValX, kcmisa.PutValX, kcmisa.PutVarX:
		return 3 // op + 2 regs
	case kcmisa.MoveXY, kcmisa.MoveYX, kcmisa.PutValY, kcmisa.PutVarY,
		kcmisa.PutUnsafeY, kcmisa.UnifyVarY, kcmisa.UnifyValY, kcmisa.UnifyLocY:
		return 3
	case kcmisa.GetNil, kcmisa.GetList, kcmisa.PutNil, kcmisa.PutList:
		return 2
	case kcmisa.UnifyVarX, kcmisa.UnifyValX, kcmisa.UnifyLocX:
		return 2
	case kcmisa.UnifyNil, kcmisa.UnifyList, kcmisa.UnifyVoid:
		return 2
	case kcmisa.GetConst, kcmisa.PutConst, kcmisa.UnifyConst, kcmisa.LoadConst:
		return 5 // op + 4-byte constant (+reg folded in opcode nibble)
	case kcmisa.GetStruct, kcmisa.PutStruct:
		return 6 // op + reg + 4-byte functor
	case kcmisa.Call, kcmisa.Execute:
		return 4 // op + 2-byte address + arity byte
	case kcmisa.Proceed, kcmisa.Deallocate, kcmisa.Fail, kcmisa.Halt,
		kcmisa.HaltFail, kcmisa.Cut, kcmisa.Neck:
		return 1
	case kcmisa.Allocate, kcmisa.SaveB0, kcmisa.CutY, kcmisa.Builtin:
		return 2
	case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try, kcmisa.Retry, kcmisa.Jump:
		return 4 // op + arity + 2-byte address
	case kcmisa.TrustMe, kcmisa.Trust:
		return 2
	case kcmisa.SwitchOnTerm:
		return 9 // op + 4 x 2-byte targets
	case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
		return 3 + 6*len(in.Sw) // op + size + default + (key, target) pairs
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod:
		return 4 // escape arithmetic: op + 3 regs
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe,
		kcmisa.CmpEq, kcmisa.CmpNe, kcmisa.IdentEq, kcmisa.IdentNe,
		kcmisa.UnifyRegs:
		return 3
	case kcmisa.TestVar, kcmisa.TestNonvar, kcmisa.TestAtom,
		kcmisa.TestInteger, kcmisa.TestAtomic:
		return 2
	default:
		return 2
	}
}

// Size is the static code size of one predicate under the PLM
// encoding.
type Size struct {
	Instrs int
	Bytes  int
}

// PredSize computes PLM instructions and bytes for a compiled
// predicate. Static list cells compile into single cdr-coded
// instructions: a [get/put_list, unify_constant, unify_variable|nil]
// triple becomes one PLM instruction, the optimisation the paper
// credits for PLM's smaller nrev1 and qs4 code.
func PredSize(code []kcmisa.Instr) Size {
	var s Size
	for i := 0; i < len(code); i++ {
		in := code[i]
		switch in.Op {
		case kcmisa.Noop:
			continue
		case kcmisa.UnifyConst:
			// cdr-coded static list cell: constant + continuation (or
			// nil terminator) in one byte-coded instruction.
			if i+1 < len(code) &&
				(code[i+1].Op == kcmisa.UnifyList || code[i+1].Op == kcmisa.UnifyNil) {
				s.Instrs++
				s.Bytes += 6 // op + 4-byte constant + cdr/nil tag byte
				i++
				continue
			}
		case kcmisa.UnifyList:
			// Bare spine continuation folds into the preceding cell.
			s.Instrs++
			s.Bytes += 2
			continue
		}
		s.Instrs++
		s.Bytes += instrBytes(in)
	}
	return s
}
