package plm

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/kcmisa"
	"repro/internal/machine"
	"repro/internal/reader"
	"repro/internal/term"
	"repro/internal/word"
)

func compilePred(t *testing.T, src string, pi term.Indicator) []kcmisa.Instr {
	t.Helper()
	clauses, err := reader.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := compiler.New(nil).CompileProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	return m.Preds[pi].Code
}

func TestCdrCodingShrinksStaticLists(t *testing.T) {
	list := compilePred(t, "l([1,2,3,4,5,6,7,8]).\n", term.Ind("l", 1))
	s := PredSize(list)
	// KCM needs get_list + 2/cell; cdr-coded PLM needs ~1/cell.
	kcmInstrs := len(list)
	if s.Instrs >= kcmInstrs {
		t.Fatalf("cdr coding did not shrink: PLM %d vs KCM %d", s.Instrs, kcmInstrs)
	}
	// 8 cells: expect ~10 PLM instructions vs ~18 KCM.
	if s.Instrs > 12 {
		t.Fatalf("PLM list encoding too large: %d instrs", s.Instrs)
	}
}

func TestAverageBytesPerInstr(t *testing.T) {
	// Across a representative program, PLM instructions must average
	// ~3.3 bytes (the paper's figure), certainly within [2.5, 4.5].
	code := compilePred(t, `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`, term.Ind("app", 3))
	s := PredSize(code)
	avg := float64(s.Bytes) / float64(s.Instrs)
	if avg < 2.0 || avg > 4.5 {
		t.Fatalf("avg bytes/instr = %.2f", avg)
	}
}

func TestSizesArePositive(t *testing.T) {
	for op := kcmisa.Noop + 1; op < kcmisa.NumOps; op++ {
		in := kcmisa.Instr{Op: op}
		if b := instrBytes(in); b < 0 {
			t.Errorf("op %v: negative byte size", op)
		}
	}
	if instrBytes(kcmisa.Instr{Op: kcmisa.Noop}) != 0 {
		t.Error("noop must be free")
	}
	sw := kcmisa.Instr{Op: kcmisa.SwitchOnConst,
		Sw: []kcmisa.SwEntry{{Key: word.FromInt(1)}, {Key: word.FromInt(2)}}}
	if instrBytes(sw) <= instrBytes(kcmisa.Instr{Op: kcmisa.SwitchOnConst}) {
		t.Error("switch size must grow with its table")
	}
}

func TestConfigModelsPLM(t *testing.T) {
	cfg := Config()
	if cfg.CycleNs != 100 {
		t.Errorf("PLM clock %v ns", cfg.CycleNs)
	}
	if cfg.Shallow == nil || *cfg.Shallow {
		t.Error("the PLM must use eager choice points")
	}
	if cfg.Costs == nil {
		t.Fatal("no cost table")
	}
	// The PLM is microcoded byte-code: everything costs at least the
	// KCM's cycle count except arithmetic (the paper's query row).
	k := machine.Defaults
	if cfg.Costs.Move < k.Move || cfg.Costs.Call < k.Call {
		t.Error("PLM basic ops should not undercut KCM")
	}
	if cfg.Costs.DivOp >= k.DivOp {
		t.Error("PLM integer division must be cheaper than KCM's (query row)")
	}
}
