package analysis

import (
	"repro/internal/kcmisa"
	"repro/internal/term"
)

// AnalyzePred runs every flow check over one predicate's pre-link
// code (labels are instruction indices) and returns the findings.
func AnalyzePred(pi term.Indicator, code []kcmisa.Instr) []Diag {
	u := &Unit{PI: pi, Arity: pi.Arity, Code: code}
	return u.Analyze()
}

// Analyze runs the full pass pipeline: structural checks and label
// validity, CFG construction, reachability, X-register must-init
// dataflow, permanent-variable environment dataflow, and choice-point
// chain discipline. Diagnostics from later passes are only meaningful
// when the earlier ones are clean, so analysis stops after the first
// stage that reports.
func (u *Unit) Analyze() []Diag {
	if len(u.Code) == 0 {
		return []Diag{u.diag(0, FallsOff, "empty code unit")}
	}
	ds := u.checkStructure()
	ds = append(ds, u.checkTargets()...)
	if len(ds) > 0 {
		return ds
	}
	g := u.buildCFG()
	ds = g.connect()
	if len(ds) > 0 {
		return ds
	}
	live := g.reachable()
	for bi, b := range g.blocks {
		if !live[bi] {
			ds = append(ds, u.diag(b.start, Unreachable,
				"block at +%d is unreachable", b.start))
		}
	}
	ds = append(ds, g.checkChain(live)...)
	ds = append(ds, g.checkRegs(live)...)
	ds = append(ds, g.checkEnv(live)...)
	return ds
}

// checkStructure validates per-instruction operand ranges that do not
// need flow information.
func (u *Unit) checkStructure() []Diag {
	var ds []Diag
	for i, in := range u.Code {
		if in.Op >= kcmisa.NumOps {
			ds = append(ds, u.diag(i, BadOpcode, "undefined opcode %d", uint8(in.Op)))
			continue
		}
		if in.Op == kcmisa.Builtin && (in.N < 1 || in.N >= kcmisa.NumBuiltins) {
			ds = append(ds, u.diag(i, BadBuiltin, "undefined built-in number %d", in.N))
		}
	}
	return ds
}

// ---- X-register must-init dataflow ----

// entrySet is the registers guaranteed to hold values at clause entry:
// the argument registers plus the microcode scratch register X0.
func (u *Unit) entrySet() RegSet {
	return RegsThrough(u.Arity) | 1
}

// xTransfer advances the must-initialised set across one instruction,
// reporting any use of an unwritten register to report (nil during
// fixpoint iteration).
func (u *Unit) xTransfer(i int, set RegSet, report *[]Diag) RegSet {
	e := InstrEffects(u.Code[i])
	if bad := e.Uses &^ set; bad != 0 && report != nil {
		*report = append(*report, u.diag(i, UseBeforeDef,
			"%v reads %v before any definition", u.Code[i].Op, bad))
	}
	if e.KillsAll {
		// Call boundary: the continuation may not assume register
		// contents (the compiler's resetTemps point).
		set = 0
	}
	return set | e.Defs
}

// checkRegs is a forward must-init analysis over the X register file:
// meet is intersection, an alternative edge supplies exactly the
// argument registers the choice point restores on backtracking.
func (g *cfg) checkRegs(live []bool) []Diag {
	u := g.u
	in := make([]RegSet, len(g.blocks))
	for bi := range in {
		in[bi] = AllRegs
	}
	in[0] = u.entrySet()
	out := make([]RegSet, len(g.blocks))
	for bi := range g.blocks {
		s := in[bi]
		for i := g.blocks[bi].start; i < g.blocks[bi].end; i++ {
			s = u.xTransfer(i, s, nil)
		}
		out[bi] = s
	}
	changed := true
	for changed {
		changed = false
		for bi := range g.blocks {
			if !live[bi] {
				continue
			}
			s := AllRegs
			if bi == 0 {
				s = u.entrySet()
			}
			for _, e := range g.blocks[bi].preds {
				if e.kind == edgeAlt {
					s &= RegsThrough(e.arity) | 1
				} else {
					s &= out[e.to]
				}
			}
			if s != in[bi] {
				in[bi] = s
				changed = true
			}
			for i := g.blocks[bi].start; i < g.blocks[bi].end; i++ {
				s = u.xTransfer(i, s, nil)
			}
			if s != out[bi] {
				out[bi] = s
				changed = true
			}
		}
	}
	var ds []Diag
	for bi := range g.blocks {
		if !live[bi] {
			continue
		}
		s := in[bi]
		for i := g.blocks[bi].start; i < g.blocks[bi].end; i++ {
			s = u.xTransfer(i, s, &ds)
		}
	}
	return ds
}

// ---- permanent-variable environment dataflow ----

type envMode int

const (
	envTop   envMode = iota // unvisited
	envNone                 // no environment allocated
	envAlloc                // environment of known size
	envClash                // conflicting states met at a join
)

// ySlots tracks initialised permanent variables; environments beyond
// maxY slots are bounds-checked only.
const maxY = 256

type ySlots [maxY / 64]uint64

func (s ySlots) has(n int) bool { return n < maxY && s[n/64]&(1<<uint(n%64)) != 0 }

func (s *ySlots) add(n int) {
	if n >= 0 && n < maxY {
		s[n/64] |= 1 << uint(n%64)
	}
}

func (s ySlots) and(t ySlots) ySlots {
	var r ySlots
	for i := range r {
		r[i] = s[i] & t[i]
	}
	return r
}

type envState struct {
	mode envMode
	size int
	init ySlots
}

func meetEnv(a, b envState) envState {
	switch {
	case a.mode == envTop:
		return b
	case b.mode == envTop:
		return a
	case a.mode == envClash || b.mode == envClash:
		return envState{mode: envClash}
	case a.mode != b.mode || (a.mode == envAlloc && a.size != b.size):
		return envState{mode: envClash}
	case a.mode == envAlloc:
		return envState{mode: envAlloc, size: a.size, init: a.init.and(b.init)}
	default:
		return a
	}
}

// envTransfer advances the environment state across one instruction.
func (u *Unit) envTransfer(i int, s envState, report *[]Diag) envState {
	in := u.Code[i]
	emit := func(c Check, format string, args ...any) {
		if report != nil {
			*report = append(*report, u.diag(i, c, format, args...))
		}
	}
	if s.mode == envClash {
		// State is unknown after a conflicting join; only a fresh
		// allocate re-establishes tracking.
		if in.Op == kcmisa.Allocate {
			return envState{mode: envAlloc, size: in.N}
		}
		return s
	}
	switch in.Op {
	case kcmisa.Allocate:
		if s.mode == envAlloc {
			emit(EnvMisuse, "allocate inside an active environment")
		}
		return envState{mode: envAlloc, size: in.N}
	case kcmisa.Deallocate:
		if s.mode != envAlloc {
			emit(EnvMisuse, "deallocate without an environment")
			return s
		}
		return envState{mode: envNone}
	case kcmisa.Proceed, kcmisa.Execute:
		// Halt and Fail are exempt: a query clause stops the machine
		// with its environment intact, and failure discards it.
		if s.mode == envAlloc {
			emit(EnvMisuse, "%v with environment still allocated", in.Op)
		}
		return s
	}
	switch eff, slot := yAccess(in); eff {
	case yWrite:
		if s.mode != envAlloc {
			emit(EnvMisuse, "%v without an environment", in.Op)
			return s
		}
		if slot < 0 || slot >= s.size {
			emit(EnvMisuse, "%v writes Y%d outside environment of size %d",
				in.Op, slot, s.size)
			return s
		}
		s.init.add(slot)
	case yRead:
		if s.mode != envAlloc {
			emit(EnvMisuse, "%v without an environment", in.Op)
			return s
		}
		if slot < 0 || slot >= s.size {
			emit(UninitY, "%v reads Y%d outside environment of size %d",
				in.Op, slot, s.size)
			return s
		}
		if slot < maxY && !s.init.has(slot) {
			emit(UninitY, "%v reads Y%d before it is initialised", in.Op, slot)
		}
	}
	return s
}

// checkEnv is a forward dataflow over the environment state: allocate
// opens, deallocate closes, every Y access needs an open environment
// with an initialised in-range slot, and an alternative edge re-enters
// with the clause-entry state (the machine restores E from the choice
// point, discarding any environment the failed attempt allocated).
func (g *cfg) checkEnv(live []bool) []Diag {
	u := g.u
	in := make([]envState, len(g.blocks))
	out := make([]envState, len(g.blocks))
	in[0] = envState{mode: envNone}
	changed := true
	for changed {
		changed = false
		for bi := range g.blocks {
			if !live[bi] {
				continue
			}
			var s envState
			if bi == 0 {
				s = envState{mode: envNone}
			}
			for _, e := range g.blocks[bi].preds {
				if e.kind == edgeAlt {
					s = meetEnv(s, envState{mode: envNone})
				} else {
					s = meetEnv(s, out[e.to])
				}
			}
			if s != in[bi] {
				in[bi] = s
				changed = true
			}
			for i := g.blocks[bi].start; i < g.blocks[bi].end; i++ {
				s = u.envTransfer(i, s, nil)
			}
			if s != out[bi] {
				out[bi] = s
				changed = true
			}
		}
	}
	var ds []Diag
	for bi := range g.blocks {
		if !live[bi] {
			continue
		}
		s := in[bi]
		if s.mode == envClash {
			ds = append(ds, u.diag(g.blocks[bi].start, EnvMisuse,
				"conflicting environment states meet at +%d", g.blocks[bi].start))
		}
		for i := g.blocks[bi].start; i < g.blocks[bi].end; i++ {
			s = u.envTransfer(i, s, &ds)
		}
	}
	return ds
}

// ---- choice-point chain discipline ----

// altHead reports whether an instruction may only be entered through
// an alternative (backtracking) edge.
func altHead(op kcmisa.Op) bool {
	switch op {
	case kcmisa.RetryMeElse, kcmisa.TrustMe, kcmisa.Retry, kcmisa.Trust:
		return true
	}
	return false
}

// checkChain enforces the structural discipline of alternative chains:
// a retry/trust instruction heads a block, is reached only through
// alternative edges, and agrees with each choice point's saved arity.
// Numeric choice-point counting is unsound here — a single-member
// switch bucket enters a clause body with no choice point while a
// try chain enters the same body with one — so the analyzer checks
// the chain shape instead.
func (g *cfg) checkChain(live []bool) []Diag {
	u := g.u
	var ds []Diag
	for bi, b := range g.blocks {
		if !live[bi] {
			continue
		}
		for i := b.start + 1; i < b.end; i++ {
			if altHead(u.Code[i].Op) {
				ds = append(ds, u.diag(i, ChoiceChain,
					"%v can be reached by fallthrough from +%d", u.Code[i].Op, i-1))
			}
		}
		head := u.Code[b.start]
		if altHead(head.Op) {
			if bi == 0 {
				ds = append(ds, u.diag(b.start, ChoiceChain,
					"unit entry is the alternative instruction %v", head.Op))
			}
			for _, e := range b.preds {
				from := g.blocks[e.to].end - 1
				if e.kind != edgeAlt {
					ds = append(ds, u.diag(b.start, ChoiceChain,
						"%v entered by normal control flow from +%d", head.Op, from))
				} else if e.arity != head.N {
					ds = append(ds, u.diag(b.start, ChoiceChain,
						"%v arity %d does not match choice point arity %d saved at +%d",
						head.Op, head.N, e.arity, from))
				}
			}
		}
		for _, e := range b.succs {
			if e.kind == edgeAlt && !altHead(u.Code[g.blocks[e.to].start].Op) {
				ds = append(ds, u.diag(b.end-1, ChoiceChain,
					"alternative continuation +%d is %v, not a retry/trust",
					g.blocks[e.to].start, u.Code[g.blocks[e.to].start].Op))
			}
		}
	}
	return ds
}
