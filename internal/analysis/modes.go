package analysis

import (
	"repro/internal/kcmisa"
)

// absState is the abstract register file at one program point: the X
// registers, and the permanent variables of the current environment
// when one is allocated.
type absState struct {
	x   [kcmisa.NumRegs]AbsVal
	y   []AbsVal
	env bool
}

func (s *absState) clone() absState {
	c := *s
	if s.y != nil {
		c.y = append([]AbsVal(nil), s.y...)
	}
	return c
}

func (s *absState) equal(o *absState) bool {
	if s.x != o.x || s.env != o.env || len(s.y) != len(o.y) {
		return false
	}
	for i := range s.y {
		if s.y[i] != o.y[i] {
			return false
		}
	}
	return true
}

// join merges o into s elementwise. Mismatched environment shapes
// (only possible in code the verifier already rejects) collapse to
// "no environment", whose reads conservatively return AbsAny.
func (s *absState) join(o *absState) {
	for i := range s.x {
		s.x[i] |= o.x[i]
	}
	if !s.env || !o.env || len(s.y) != len(o.y) {
		s.env = false
		s.y = nil
		return
	}
	for i := range s.y {
		s.y[i] |= o.y[i]
	}
}

// getX/setX access the X registers with bounds protection: encoded
// words straight off a fuzzed or corrupted image can carry register
// numbers beyond the file (the verifier reports them, but the image
// analyzer must stay robust without it). An out-of-range read is
// AbsAny; an out-of-range write is dropped.
func (s *absState) getX(r kcmisa.Reg) AbsVal {
	if int(r) < len(s.x) {
		return s.x[r]
	}
	return AbsAny
}

func (s *absState) setX(r kcmisa.Reg, v AbsVal) {
	if int(r) < len(s.x) {
		s.x[r] = v
	}
}

func (s *absState) getY(n int) AbsVal {
	if s.env && n >= 0 && n < len(s.y) {
		return s.y[n]
	}
	return AbsAny
}

func (s *absState) setY(n int, v AbsVal) {
	if s.env && n >= 0 && n < len(s.y) {
		s.y[n] = v
	}
}

// widenUnify applies the aliasing rule: a unification can bind any
// variable reachable through the heap, so every possibly-unbound
// value in the register file and the environment degrades to AbsAny.
func (s *absState) widenUnify() {
	for i, v := range s.x {
		if v.MayUnbound() {
			s.x[i] = AbsAny
		}
	}
	for i, v := range s.y {
		if v.MayUnbound() {
			s.y[i] = AbsAny
		}
	}
}

// killCall is the register state after a call or escape returns: no X
// register survives, and the callee may have bound any variable held
// in a permanent slot.
func (s *absState) killCall() {
	for i := range s.x {
		s.x[i] = AbsAny
	}
	for i, v := range s.y {
		if v.MayUnbound() {
			s.y[i] = AbsAny
		}
	}
}

// unifiesHeap reports whether executing the instruction can bind
// existing variables through unification (the widening trigger).
func unifiesHeap(op kcmisa.Op) bool {
	switch op {
	case kcmisa.GetValX, kcmisa.GetConst, kcmisa.GetNil, kcmisa.GetList,
		kcmisa.GetStruct, kcmisa.UnifyValX, kcmisa.UnifyLocX,
		kcmisa.UnifyValY, kcmisa.UnifyLocY, kcmisa.UnifyConst,
		kcmisa.UnifyNil, kcmisa.UnifyList, kcmisa.UnifyRegs, kcmisa.Builtin:
		return true
	}
	return false
}

// callSite is one call or execute instruction with the abstract
// argument vector flowing into it.
type callSite struct {
	index  int // instruction index within the unit
	target int // absolute code-space address (linked L operand)
	arity  int
	args   []AbsVal
	tail   bool
}

// modeInfo is the result of the intra-predicate abstract
// interpretation: the stable per-block entry states, the state at
// every switch and call instruction, and the outgoing call sites.
type modeInfo struct {
	g       *cfg
	in      []absState // per block, at block entry
	seen    []bool     // block visited by the fixpoint
	atInstr map[int]absState
	calls   []callSite
	work    []int
	queued  []bool
}

// stepAbs applies one instruction's abstract transfer function.
func stepAbs(s *absState, in kcmisa.Instr) {
	if unifiesHeap(in.Op) {
		s.widenUnify()
	}
	switch in.Op {
	case kcmisa.GetVarX:
		s.setX(in.R1, s.getX(in.R2))
	case kcmisa.GetConst, kcmisa.GetNil:
		s.setX(in.R2, AbsAtomic)
	case kcmisa.GetList, kcmisa.GetStruct:
		s.setX(in.R2, AbsStruct)
	case kcmisa.GetValX:
		v := unifyAbs(s.getX(in.R1), s.getX(in.R2))
		s.setX(in.R1, v)
		s.setX(in.R2, v)
	case kcmisa.UnifyVarX:
		// Read mode grabs an arbitrary subterm, write mode a fresh
		// variable: nothing is known either way.
		s.setX(in.R1, AbsAny)
	case kcmisa.UnifyVarY:
		s.setY(in.N, AbsAny)
	case kcmisa.PutVarX:
		// The only trusted producer of a definitely-unbound value.
		s.setX(in.R1, AbsUnbound)
		s.setX(in.R2, AbsUnbound)
	case kcmisa.PutVarY:
		s.setY(in.N, AbsUnbound)
		s.setX(in.R2, AbsUnbound)
	case kcmisa.PutValX:
		s.setX(in.R2, s.getX(in.R1))
	case kcmisa.PutValY, kcmisa.PutUnsafeY:
		s.setX(in.R2, s.getY(in.N))
	case kcmisa.PutConst, kcmisa.PutNil:
		s.setX(in.R2, AbsAtomic)
	case kcmisa.PutList, kcmisa.PutStruct:
		s.setX(in.R2, AbsStruct)
	case kcmisa.MoveXY:
		s.setY(in.N, s.getX(in.R1))
	case kcmisa.MoveYX:
		s.setX(in.R1, s.getY(in.N))
	case kcmisa.LoadConst:
		s.setX(in.R1, AbsAtomic)
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod,
		kcmisa.Rem, kcmisa.Band, kcmisa.Bor, kcmisa.Bxor, kcmisa.Shl,
		kcmisa.Shr, kcmisa.MinOp, kcmisa.MaxOp:
		// The operands dereferenced to integers or the instruction
		// failed: the fall-through path may narrow them.
		s.setX(in.R1, AbsAtomic)
		s.setX(in.R2, AbsAtomic)
		s.setX(in.R3, AbsAtomic)
	case kcmisa.Abs:
		s.setX(in.R1, AbsAtomic)
		s.setX(in.R3, AbsAtomic)
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe,
		kcmisa.CmpEq, kcmisa.CmpNe:
		s.setX(in.R1, AbsAtomic)
		s.setX(in.R2, AbsAtomic)
	case kcmisa.TestVar:
		// Dereferences to a variable right now; an alias may bind it
		// later, which the widening rule accounts for.
		s.setX(in.R1, AbsUnbound)
	case kcmisa.TestNonvar:
		if v := s.getX(in.R1) &^ absUnboundBit; v != AbsBottom {
			s.setX(in.R1, v)
		} else {
			s.setX(in.R1, AbsBound)
		}
	case kcmisa.TestAtom, kcmisa.TestInteger, kcmisa.TestAtomic:
		s.setX(in.R1, AbsAtomic)
	case kcmisa.UnifyRegs:
		v := unifyAbs(s.getX(in.R1), s.getX(in.R2))
		s.setX(in.R1, v)
		s.setX(in.R2, v)
	case kcmisa.Allocate:
		s.env = true
		s.y = make([]AbsVal, in.N)
		for i := range s.y {
			s.y[i] = AbsAny // uninitialised slots: the verifier's problem
		}
	case kcmisa.Deallocate:
		s.env = false
		s.y = nil
	case kcmisa.Builtin:
		s.killCall()
	case kcmisa.Call, kcmisa.Execute:
		s.killCall()
	}
}

// entryState builds the abstract state at predicate entry for the
// given entry mode; registers beyond the arity hold garbage.
func entryState(arity int, entry []AbsVal) absState {
	var s absState
	for i := range s.x {
		s.x[i] = AbsAny
	}
	for i := 0; i < arity && i+1 < kcmisa.NumRegs; i++ {
		v := AbsAny
		if i < len(entry) && entry[i] != AbsBottom {
			v = entry[i]
		}
		s.x[i+1] = v
	}
	return s
}

// altState is the abstract state delivered along a backtracking edge:
// the choice point (or shadow registers) restores the argument
// registers saved when the alternative was armed and the environment
// current at that time. The saved argument values are approximated as
// AbsAny — sound for hand-written code that scribbles on argument
// registers before the neck — while the environment is taken from the
// arming site, which the machine restores exactly.
func altState(arming *absState) absState {
	s := arming.clone()
	for i := range s.x {
		s.x[i] = AbsAny
	}
	return s
}

// analyzeModes runs the abstract interpretation over one unit with
// the given entry mode. The unit must have valid intra-unit labels
// (ui.bad clear). maxModeSteps bounds the block fixpoint defensively;
// the lattice is finite so the bound is unreachable in practice, but
// fuzzed images get a guaranteed exit with every state widened.
const maxModeSteps = 1 << 16

func analyzeModes(u *Unit, entry []AbsVal) *modeInfo {
	g := u.buildCFG()
	g.connect()
	mi := &modeInfo{
		g:       g,
		in:      make([]absState, len(g.blocks)),
		seen:    make([]bool, len(g.blocks)),
		atInstr: map[int]absState{},
	}
	if len(g.blocks) == 0 {
		return mi
	}
	mi.in[0] = entryState(u.Arity, entry)
	mi.seen[0] = true

	// propagate joins a state into a block's entry, returning whether
	// it changed.
	propagate := func(bi int, s *absState) bool {
		if !mi.seen[bi] {
			mi.in[bi] = s.clone()
			mi.seen[bi] = true
			return true
		}
		before := mi.in[bi].clone()
		mi.in[bi].join(s)
		return !mi.in[bi].equal(&before)
	}

	// walk executes one block from its entry state; emit, when
	// non-nil, receives the state before each instruction.
	walk := func(bi int, emit func(idx int, s *absState)) {
		b := &g.blocks[bi]
		s := mi.in[bi].clone()
		for idx := b.start; idx < b.end; idx++ {
			if emit != nil {
				emit(idx, &s)
			}
			stepAbs(&s, u.Code[idx])
		}
		// Deliver to successors. The alternative edge restores the
		// state saved at the arming instruction, not the fall-out
		// state.
		for _, e := range b.succs {
			out := s
			if e.kind == edgeAlt {
				out = altState(&s)
			}
			if propagate(e.to, &out) {
				mi.dirty(e.to)
			}
		}
	}

	// Worklist fixpoint.
	mi.work = []int{0}
	mi.queued = make([]bool, len(g.blocks))
	mi.queued[0] = true
	steps := 0
	for len(mi.work) > 0 {
		bi := mi.work[len(mi.work)-1]
		mi.work = mi.work[:len(mi.work)-1]
		mi.queued[bi] = false
		walk(bi, nil)
		if steps++; steps > maxModeSteps {
			// Defensive exit: widen everything and stop.
			for i := range mi.in {
				for r := range mi.in[i].x {
					mi.in[i].x[r] = AbsAny
				}
				mi.in[i].env = false
				mi.in[i].y = nil
			}
			break
		}
	}

	// One stable pass collecting per-instruction states and call
	// sites.
	for bi := range g.blocks {
		if !mi.seen[bi] {
			continue
		}
		walk(bi, func(idx int, s *absState) {
			in := u.Code[idx]
			switch in.Op {
			case kcmisa.SwitchOnTerm, kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
				mi.atInstr[idx] = s.clone()
			case kcmisa.Call, kcmisa.Execute:
				arity := CallArity(in)
				args := make([]AbsVal, 0, arity)
				for a := 1; a <= arity && a < kcmisa.NumRegs; a++ {
					args = append(args, s.x[a])
				}
				mi.calls = append(mi.calls, callSite{
					index: idx, target: in.L, arity: arity, args: args,
					tail: in.Op == kcmisa.Execute,
				})
			}
		})
	}
	return mi
}

// dirty re-queues a block on the fixpoint worklist.
func (mi *modeInfo) dirty(bi int) {
	if mi.queued == nil || mi.queued[bi] {
		return
	}
	mi.queued[bi] = true
	mi.work = append(mi.work, bi)
}
