package analysis

import (
	"sort"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// encInstr is one decoded instruction with its code-space address.
type encInstr struct {
	in    kcmisa.Instr
	addr  uint32
	words int
}

// decodeAll walks an encoded code block, decoding instruction by
// instruction. An undefined opcode resynchronises one word later; a
// multi-word instruction whose operand words run past the block ends
// the walk (decoding the tail would read out of bounds).
func decodeAll(code []word.Word, base uint32) ([]encInstr, []Diag) {
	fetch := func(a uint32) word.Word {
		i := int(a) - int(base)
		if i < 0 || i >= len(code) {
			return 0
		}
		return code[i]
	}
	var (
		out []encInstr
		ds  []Diag
	)
	end := base + uint32(len(code))
	diag := func(a uint32, c Check, format string, args ...any) {
		u := Unit{Addr: func(int) uint32 { return a }}
		ds = append(ds, u.diag(len(out), c, format, args...))
	}
	for a := base; a < end; {
		op := kcmisa.Op(fetch(a) >> 56)
		if op >= kcmisa.NumOps {
			diag(a, BadOpcode, "undefined opcode %d at %d", uint8(op), a)
			a++
			continue
		}
		in, n := kcmisa.Decode(fetch, a)
		if a+uint32(n) > end {
			diag(a, Truncated,
				"%v at %d needs %d words but only %d remain", in.Op, a, n, end-a)
			return out, ds
		}
		out = append(out, encInstr{in: in, addr: a, words: n})
		a += uint32(n)
	}
	return out, ds
}

// encTargets returns every code-address operand of a linked
// instruction, including call targets (which are absolute addresses
// after linking).
func encTargets(in kcmisa.Instr) []int {
	ts := targets(in)
	if in.Op == kcmisa.Call || in.Op == kcmisa.Execute {
		ts = append(ts, in.L)
	}
	return ts
}

// CheckEncoded is the loader-grade validation of an encoded code
// block about to be placed at base: every instruction decodes, no
// multi-word instruction is truncated, and every branch or call
// target lands either in already loaded code (below codeTop) or on an
// instruction boundary of the new block. The gap [codeTop, base) of a
// page-rounded batch load is unmapped and therefore invalid.
func CheckEncoded(code []word.Word, base, codeTop uint32) []Diag {
	ins, ds := decodeAll(code, base)
	boundary := make(map[uint32]bool, len(ins))
	for _, ei := range ins {
		boundary[ei.addr] = true
	}
	end := base + uint32(len(code))
	u := Unit{}
	for idx, ei := range ins {
		u.Addr = func(int) uint32 { return ei.addr }
		for _, t := range encTargets(ei.in) {
			if t == kcmisa.FailLabel {
				continue
			}
			a := uint32(t)
			switch {
			case t < 0 || a >= end:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, outside loaded code [0,%d)",
					ei.in.Op, ei.addr, t, end))
			case a < codeTop:
				// Existing code: trusted (validated when it was loaded).
			case a < base:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d in the unmapped gap [%d,%d)",
					ei.in.Op, ei.addr, t, codeTop, base))
			case !boundary[a]:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, not an instruction boundary",
					ei.in.Op, ei.addr, t))
			}
		}
	}
	return ds
}

// CheckPatched validates a code block about to overwrite part of the
// already-loaded code space at base (an in-place hot patch). The
// rules differ from CheckEncoded's append-only load: a target inside
// the patched range [base, base+len) must be an instruction boundary
// of the new block, while a target anywhere else in the loaded space
// [0, codeTop) is trusted — the patch may legitimately branch into,
// or be branched into from, surrounding code.
func CheckPatched(code []word.Word, base, codeTop uint32) []Diag {
	ins, ds := decodeAll(code, base)
	boundary := make(map[uint32]bool, len(ins))
	for _, ei := range ins {
		boundary[ei.addr] = true
	}
	end := base + uint32(len(code))
	u := Unit{}
	for idx, ei := range ins {
		u.Addr = func(int) uint32 { return ei.addr }
		for _, t := range encTargets(ei.in) {
			if t == kcmisa.FailLabel {
				continue
			}
			a := uint32(t)
			switch {
			case t < 0 || a >= codeTop:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, outside loaded code [0,%d)",
					ei.in.Op, ei.addr, t, codeTop))
			case a >= base && a < end && !boundary[a]:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, not an instruction boundary of the patch",
					ei.in.Op, ei.addr, t))
			}
		}
	}
	return ds
}

// VetEncoded runs the full flow analysis over a linked image: the
// code block is partitioned into predicates by the entry table, each
// predicate's labels are remapped back to instruction indices, and
// every predicate is analyzed as a Unit. Words before the first entry
// (the bootstrap preamble) get structural checks only. Call and
// execute targets must name an entry or land below base (code linked
// earlier against an external entry table).
func VetEncoded(code []word.Word, base uint32, entries map[term.Indicator]uint32) []Diag {
	ins, ds := decodeAll(code, base)
	if len(ds) > 0 {
		return ds
	}
	byAddr := make(map[uint32]int, len(ins))
	for i, ei := range ins {
		byAddr[ei.addr] = i
	}
	callOK := func(t int) bool {
		if t >= 0 && uint32(t) < base {
			return true
		}
		for _, a := range entries {
			if uint32(t) == a {
				return true
			}
		}
		return false
	}

	// Partition [base, end) by sorted entry addresses.
	type pred struct {
		pi         term.Indicator
		start, end uint32
	}
	var preds []pred
	for pi, a := range entries {
		preds = append(preds, pred{pi: pi, start: a})
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].start < preds[j].start })
	end := base + uint32(len(code))
	for i := range preds {
		if i+1 < len(preds) {
			preds[i].end = preds[i+1].start
		} else {
			preds[i].end = end
		}
	}

	for _, p := range preds {
		i0, ok := byAddr[p.start]
		if !ok {
			u := Unit{PI: p.pi, Addr: func(int) uint32 { return p.start }}
			ds = append(ds, u.diag(0, BadTarget,
				"entry %v at %d is not an instruction boundary", p.pi, p.start))
			continue
		}
		// Collect the predicate's instructions and the local index of
		// each address.
		var local []kcmisa.Instr
		addrs := make([]uint32, 0, 8)
		localAt := map[uint32]int{}
		for i := i0; i < len(ins) && ins[i].addr < p.end; i++ {
			localAt[ins[i].addr] = len(local)
			local = append(local, ins[i].in)
			addrs = append(addrs, ins[i].addr)
		}
		u := &Unit{PI: p.pi, Arity: p.pi.Arity, Code: local,
			Addr: func(i int) uint32 {
				if i < len(addrs) {
					return addrs[i]
				}
				return p.start
			}}
		// Remap absolute label addresses back to local instruction
		// indices; a label leaving the predicate is malformed.
		bad := false
		remap := func(idx int, l *int) {
			if *l == kcmisa.FailLabel {
				return
			}
			li, ok := localAt[uint32(*l)]
			if !ok {
				ds = append(ds, u.diag(idx, BadTarget,
					"%v targets %d outside predicate %v [%d,%d)",
					local[idx].Op, *l, p.pi, p.start, p.end))
				bad = true
				return
			}
			*l = li
		}
		for idx := range local {
			in := &local[idx]
			switch in.Op {
			case kcmisa.Call, kcmisa.Execute:
				if !callOK(in.L) {
					ds = append(ds, u.diag(idx, BadTarget,
						"%v targets %d, which is no entry point", in.Op, in.L))
					bad = true
				}
				in.L = 0 // out of scope for intra-unit analysis
			case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.Try,
				kcmisa.Retry, kcmisa.Trust, kcmisa.Jump:
				remap(idx, &in.L)
			case kcmisa.SwitchOnTerm:
				t := *in.SwT
				remap(idx, &t.Var)
				remap(idx, &t.Const)
				remap(idx, &t.List)
				remap(idx, &t.Struct)
				in.SwT = &t
			case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
				remap(idx, &in.L)
				tbl := append([]kcmisa.SwEntry(nil), in.Sw...)
				for i := range tbl {
					remap(idx, &tbl[i].L)
				}
				in.Sw = tbl
			}
		}
		if bad {
			continue
		}
		ds = append(ds, u.Analyze()...)
	}
	return ds
}
