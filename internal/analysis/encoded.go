package analysis

import (
	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// encInstr is one decoded instruction with its code-space address.
type encInstr struct {
	in    kcmisa.Instr
	addr  uint32
	words int
}

// decodeAll walks an encoded code block, decoding instruction by
// instruction. An undefined opcode resynchronises one word later; a
// multi-word instruction whose operand words run past the block ends
// the walk (decoding the tail would read out of bounds).
func decodeAll(code []word.Word, base uint32) ([]encInstr, []Diag) {
	fetch := func(a uint32) word.Word {
		i := int(a) - int(base)
		if i < 0 || i >= len(code) {
			return 0
		}
		return code[i]
	}
	var (
		out []encInstr
		ds  []Diag
	)
	end := base + uint32(len(code))
	diag := func(a uint32, c Check, format string, args ...any) {
		u := Unit{Addr: func(int) uint32 { return a }}
		ds = append(ds, u.diag(len(out), c, format, args...))
	}
	for a := base; a < end; {
		op := kcmisa.Op(fetch(a) >> 56)
		if op >= kcmisa.NumOps {
			diag(a, BadOpcode, "undefined opcode %d at %d", uint8(op), a)
			a++
			continue
		}
		in, n := kcmisa.Decode(fetch, a)
		if a+uint32(n) > end {
			diag(a, Truncated,
				"%v at %d needs %d words but only %d remain", in.Op, a, n, end-a)
			return out, ds
		}
		out = append(out, encInstr{in: in, addr: a, words: n})
		a += uint32(n)
	}
	return out, ds
}

// encTargets returns every code-address operand of a linked
// instruction, including call targets (which are absolute addresses
// after linking).
func encTargets(in kcmisa.Instr) []int {
	ts := targets(in)
	if in.Op == kcmisa.Call || in.Op == kcmisa.Execute {
		ts = append(ts, in.L)
	}
	return ts
}

// CheckEncoded is the loader-grade validation of an encoded code
// block about to be placed at base: every instruction decodes, no
// multi-word instruction is truncated, and every branch or call
// target lands either in already loaded code (below codeTop) or on an
// instruction boundary of the new block. The gap [codeTop, base) of a
// page-rounded batch load is unmapped and therefore invalid.
func CheckEncoded(code []word.Word, base, codeTop uint32) []Diag {
	ins, ds := decodeAll(code, base)
	boundary := make(map[uint32]bool, len(ins))
	for _, ei := range ins {
		boundary[ei.addr] = true
	}
	end := base + uint32(len(code))
	u := Unit{}
	for idx, ei := range ins {
		u.Addr = func(int) uint32 { return ei.addr }
		for _, t := range encTargets(ei.in) {
			if t == kcmisa.FailLabel {
				continue
			}
			a := uint32(t)
			switch {
			case t < 0 || a >= end:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, outside loaded code [0,%d)",
					ei.in.Op, ei.addr, t, end))
			case a < codeTop:
				// Existing code: trusted (validated when it was loaded).
			case a < base:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d in the unmapped gap [%d,%d)",
					ei.in.Op, ei.addr, t, codeTop, base))
			case !boundary[a]:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, not an instruction boundary",
					ei.in.Op, ei.addr, t))
			}
		}
	}
	return ds
}

// CheckPatched validates a code block about to overwrite part of the
// already-loaded code space at base (an in-place hot patch). The
// rules differ from CheckEncoded's append-only load: a target inside
// the patched range [base, base+len) must be an instruction boundary
// of the new block, while a target anywhere else in the loaded space
// [0, codeTop) is trusted — the patch may legitimately branch into,
// or be branched into from, surrounding code.
func CheckPatched(code []word.Word, base, codeTop uint32) []Diag {
	ins, ds := decodeAll(code, base)
	boundary := make(map[uint32]bool, len(ins))
	for _, ei := range ins {
		boundary[ei.addr] = true
	}
	end := base + uint32(len(code))
	u := Unit{}
	for idx, ei := range ins {
		u.Addr = func(int) uint32 { return ei.addr }
		for _, t := range encTargets(ei.in) {
			if t == kcmisa.FailLabel {
				continue
			}
			a := uint32(t)
			switch {
			case t < 0 || a >= codeTop:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, outside loaded code [0,%d)",
					ei.in.Op, ei.addr, t, codeTop))
			case a >= base && a < end && !boundary[a]:
				ds = append(ds, u.diag(idx, BadTarget,
					"%v at %d targets %d, not an instruction boundary of the patch",
					ei.in.Op, ei.addr, t))
			}
		}
	}
	return ds
}

// VetEncoded runs the full flow analysis over a linked image: the
// code block is partitioned into predicates by the entry table, each
// predicate's labels are remapped back to instruction indices, and
// every predicate is analyzed as a Unit. Words before the first entry
// (the bootstrap preamble) get structural checks only. Call and
// execute targets must name an entry or land below base (code linked
// earlier against an external entry table).
func VetEncoded(code []word.Word, base uint32, entries map[term.Indicator]uint32) []Diag {
	if _, ds := decodeAll(code, base); len(ds) > 0 {
		return ds
	}
	units, ds := partitionEncoded(code, base, entries)
	callOK := func(t int) bool {
		if t >= 0 && uint32(t) < base {
			return true
		}
		for _, a := range entries {
			if uint32(t) == a {
				return true
			}
		}
		return false
	}
	for i := range units {
		ui := &units[i]
		u := ui.unit()
		bad := ui.bad
		for idx := range ui.instrs {
			in := &ui.instrs[idx]
			if in.Op != kcmisa.Call && in.Op != kcmisa.Execute {
				continue
			}
			if !callOK(in.L) {
				ds = append(ds, u.diag(idx, BadTarget,
					"%v targets %d, which is no entry point", in.Op, in.L))
				bad = true
			}
			in.L = 0 // out of scope for intra-unit analysis
		}
		if bad {
			continue
		}
		ds = append(ds, u.Analyze()...)
	}
	return ds
}
