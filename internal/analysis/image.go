package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

// PredFacts is everything the whole-image analyzer knows about one
// predicate of a linked image.
type PredFacts struct {
	Name   string `json:"pred"`
	Start  uint32 `json:"start"`
	End    uint32 `json:"end"`
	Instrs int    `json:"instrs"`
	// Reachable marks predicates reachable from the analysis roots
	// through call/execute edges (with a meta-call escape making every
	// entry reachable, since call/1 can construct any goal).
	Reachable bool `json:"reachable"`
	// Mode is the join of every abstract argument vector observed at
	// the predicate's call sites (roots start at AbsAny). Nil for
	// unreachable predicates, which are classified under AbsAny.
	Mode []AbsVal `json:"mode,omitempty"`
	// Det is the determinism classification; the trace oracle holds
	// the analyzer to the Det claims.
	Det DetClass `json:"det"`
	// Calls lists the callee predicates, sorted and deduplicated;
	// External lists call targets outside the analyzed image.
	Calls    []string `json:"calls,omitempty"`
	External []uint32 `json:"external,omitempty"`
	// Builtins lists escape numbers used; MetaCall marks use of the
	// call/1 escape.
	Builtins []string `json:"builtins,omitempty"`
	MetaCall bool     `json:"metacall,omitempty"`
	// DeadNecks are reachable neck instructions that can never
	// materialise a choice point; DeadArms are switch arms the mode
	// analysis proved dead.
	DeadNecks []uint32  `json:"dead_necks,omitempty"`
	DeadArms  []DeadArm `json:"dead_arms,omitempty"`
	Licenses  []License `json:"licenses,omitempty"`

	pi   term.Indicator
	hash uint64 // FNV-1a over the predicate's code words
}

// PI returns the predicate's indicator.
func (pf *PredFacts) PI() term.Indicator { return pf.pi }

// ImageFacts is the serializable whole-image analysis artifact: one
// PredFacts per predicate (sorted by entry address), the analysis
// roots, and the call-graph SCCs in reverse topological order.
type ImageFacts struct {
	Base  uint32       `json:"base"`
	Top   uint32       `json:"top"`
	Roots []string     `json:"roots"`
	Preds []*PredFacts `json:"preds"`
	SCCs  [][]string   `json:"sccs,omitempty"`
	// Diags records structural problems found while partitioning;
	// predicates involved are classified conservatively (DetUnknown).
	Diags []Diag `json:"-"`

	byPI map[term.Indicator]*PredFacts
}

// Pred returns the facts for one predicate, or nil.
func (f *ImageFacts) Pred(pi term.Indicator) *PredFacts { return f.byPI[pi] }

// PredAt returns the predicate owning a code-space address, using the
// partition ranges. The bootstrap preamble belongs to no predicate.
func (f *ImageFacts) PredAt(addr uint32) (*PredFacts, bool) {
	i := sort.Search(len(f.Preds), func(i int) bool { return f.Preds[i].Start > addr })
	if i == 0 {
		return nil, false
	}
	pf := f.Preds[i-1]
	if addr >= pf.End {
		return nil, false
	}
	return pf, true
}

// WriteJSON serializes the artifact with a stable field order.
func (f *ImageFacts) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Flat renders the artifact as the stable text form golden tests and
// kcmvet's flag output share: one block per predicate in address
// order.
func (f *ImageFacts) Flat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "image [%d,%d) roots=%s\n", f.Base, f.Top, strings.Join(f.Roots, ","))
	for _, pf := range f.Preds {
		reach := "dead"
		if pf.Reachable {
			reach = "reachable"
		}
		fmt.Fprintf(&b, "pred %s @%d..%d %s det=%s", pf.Name, pf.Start, pf.End, reach, pf.Det)
		if pf.Mode != nil {
			parts := make([]string, len(pf.Mode))
			for i, m := range pf.Mode {
				parts[i] = m.String()
			}
			fmt.Fprintf(&b, " mode=(%s)", strings.Join(parts, ","))
		}
		b.WriteString("\n")
		if len(pf.Calls) > 0 {
			fmt.Fprintf(&b, "  calls %s\n", strings.Join(pf.Calls, " "))
		}
		if len(pf.Builtins) > 0 {
			fmt.Fprintf(&b, "  builtins %s\n", strings.Join(pf.Builtins, " "))
		}
		for _, a := range pf.DeadNecks {
			fmt.Fprintf(&b, "  dead_neck @%d\n", a)
		}
		for _, da := range pf.DeadArms {
			fmt.Fprintf(&b, "  dead_arm @%d %s\n", da.Addr, da.Arm)
		}
		for _, lic := range pf.Licenses {
			fmt.Fprintf(&b, "  license %s @%d instrs=%d words=%d", lic.Kind, lic.Start, lic.Instrs, lic.Words)
			if lic.Callee != "" {
				fmt.Fprintf(&b, " callee=%s callee_det=%v", lic.Callee, lic.CalleeDet)
			}
			b.WriteString("\n")
		}
	}
	if len(f.SCCs) > 0 {
		for i, scc := range f.SCCs {
			if len(scc) > 1 {
				fmt.Fprintf(&b, "scc %d: %s\n", i, strings.Join(scc, " "))
			}
		}
	}
	return b.String()
}

// CallGraphDot renders the predicate call graph in Graphviz form.
func (f *ImageFacts) CallGraphDot() string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	for _, pf := range f.Preds {
		attrs := ""
		if !pf.Reachable {
			attrs = " [style=dotted]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", pf.Name, attrs)
		for _, c := range pf.Calls {
			fmt.Fprintf(&b, "  %q -> %q;\n", pf.Name, c)
		}
		if pf.MetaCall {
			fmt.Fprintf(&b, "  %q -> \"call/1\" [style=dashed];\n", pf.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DeadPreds returns the names of predicates unreachable from the
// roots, sorted.
func (f *ImageFacts) DeadPreds() []string {
	var out []string
	for _, pf := range f.Preds {
		if !pf.Reachable {
			out = append(out, pf.Name)
		}
	}
	sort.Strings(out)
	return out
}

func hashWords(ws []word.Word) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range ws {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(w) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// imageState carries the working data of one analysis run.
type imageState struct {
	code    []word.Word
	base    uint32
	units   []unitInfo
	facts   *ImageFacts
	byStart map[uint32]*unitInfo
	byPI    map[term.Indicator]*unitInfo
	// syntactic per-pred call facts
	callees  map[term.Indicator][]term.Indicator
	external map[term.Indicator][]uint32
	builtins map[term.Indicator][]int
	metaCall map[term.Indicator]bool
}

func newImageState(code []word.Word, base uint32, entries map[term.Indicator]uint32) *imageState {
	units, ds := partitionEncoded(code, base, entries)
	st := &imageState{
		code: code, base: base, units: units,
		byStart:  map[uint32]*unitInfo{},
		byPI:     map[term.Indicator]*unitInfo{},
		callees:  map[term.Indicator][]term.Indicator{},
		external: map[term.Indicator][]uint32{},
		builtins: map[term.Indicator][]int{},
		metaCall: map[term.Indicator]bool{},
	}
	st.facts = &ImageFacts{
		Base: base, Top: base + uint32(len(code)),
		Diags: ds,
		byPI:  map[term.Indicator]*PredFacts{},
	}
	entryPI := map[uint32]term.Indicator{}
	for i := range units {
		ui := &units[i]
		st.byStart[ui.start] = ui
		st.byPI[ui.pi] = ui
		entryPI[ui.start] = ui.pi
	}
	for i := range units {
		ui := &units[i]
		seenCallee := map[term.Indicator]bool{}
		for _, in := range ui.instrs {
			switch in.Op {
			case kcmisa.Call, kcmisa.Execute:
				if in.L < 0 {
					continue
				}
				if callee, ok := entryPI[uint32(in.L)]; ok {
					if !seenCallee[callee] {
						seenCallee[callee] = true
						st.callees[ui.pi] = append(st.callees[ui.pi], callee)
					}
				} else {
					st.external[ui.pi] = append(st.external[ui.pi], uint32(in.L))
				}
			case kcmisa.Builtin:
				st.builtins[ui.pi] = append(st.builtins[ui.pi], in.N)
				if in.N == kcmisa.BICall {
					st.metaCall[ui.pi] = true
				}
			}
		}
		sort.Slice(st.callees[ui.pi], func(a, b int) bool {
			return st.callees[ui.pi][a].String() < st.callees[ui.pi][b].String()
		})
	}
	return st
}

// reachableFrom computes call-graph reachability. A reachable
// meta-call escape makes every predicate reachable: call/1 can
// construct any goal in the boot table.
func (st *imageState) reachableFrom(roots []term.Indicator) (map[term.Indicator]bool, bool) {
	reach := map[term.Indicator]bool{}
	var stack []term.Indicator
	push := func(pi term.Indicator) {
		if st.byPI[pi] == nil {
			return
		}
		if !reach[pi] {
			reach[pi] = true
			stack = append(stack, pi)
		}
	}
	for _, pi := range roots {
		push(pi)
	}
	meta := false
	for len(stack) > 0 {
		pi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if st.metaCall[pi] {
			meta = true
		}
		for _, c := range st.callees[pi] {
			push(c)
		}
	}
	if meta {
		for i := range st.units {
			reach[st.units[i].pi] = true
		}
	}
	return reach, meta
}

// sccs runs Tarjan's algorithm over the call graph, predicates in
// address order, returning components in reverse topological order.
func (st *imageState) sccs() [][]term.Indicator {
	index := map[term.Indicator]int{}
	low := map[term.Indicator]int{}
	onStack := map[term.Indicator]bool{}
	var stack []term.Indicator
	var out [][]term.Indicator
	next := 0
	var strong func(pi term.Indicator)
	strong = func(pi term.Indicator) {
		index[pi] = next
		low[pi] = next
		next++
		stack = append(stack, pi)
		onStack[pi] = true
		for _, c := range st.callees[pi] {
			if _, seen := index[c]; !seen {
				strong(c)
				if low[c] < low[pi] {
					low[pi] = low[c]
				}
			} else if onStack[c] && index[c] < low[pi] {
				low[pi] = index[c]
			}
		}
		if low[pi] == index[pi] {
			var comp []term.Indicator
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == pi {
					break
				}
			}
			sort.Slice(comp, func(a, b int) bool { return comp[a].String() < comp[b].String() })
			out = append(out, comp)
		}
	}
	for i := range st.units {
		if _, seen := index[st.units[i].pi]; !seen {
			strong(st.units[i].pi)
		}
	}
	return out
}

// sccOf maps every predicate to its component index.
func sccIndex(comps [][]term.Indicator) map[term.Indicator]int {
	out := map[term.Indicator]int{}
	for i, comp := range comps {
		for _, pi := range comp {
			out[pi] = i
		}
	}
	return out
}

// anyMode returns the AbsAny entry vector for a predicate's arity.
func anyMode(arity int) []AbsVal {
	m := make([]AbsVal, arity)
	for i := range m {
		m[i] = AbsAny
	}
	return m
}

func joinModes(dst, src []AbsVal) (out []AbsVal, grew bool) {
	if dst == nil {
		return append([]AbsVal(nil), src...), true
	}
	for i := range dst {
		if i < len(src) && dst[i]|src[i] != dst[i] {
			dst[i] |= src[i]
			grew = true
		}
	}
	return dst, grew
}

// AnalyzeImage runs the whole-image interprocedural analysis over a
// linked image: predicate partition, call graph, the entry-mode
// fixpoint, determinism classification, dead-code reports and fusion
// licenses. roots names the externally callable predicates — the boot
// table for a machine image, the query for a closed program; nil
// defaults to every predicate without an in-image caller (library
// mode), which leaves exactly the members of orphaned call-graph
// cycles dead.
func AnalyzeImage(code []word.Word, base uint32, entries map[term.Indicator]uint32, roots []term.Indicator) *ImageFacts {
	st := newImageState(code, base, entries)
	if roots == nil {
		roots = defaultRoots(st)
	}
	runAnalysis(st, roots, nil, nil)
	return st.facts
}

// defaultRoots returns every predicate no other predicate calls.
// Self-recursion does not count: append/3 calling only itself is an
// interface predicate, not an orphan cycle.
func defaultRoots(st *imageState) []term.Indicator {
	called := map[term.Indicator]bool{}
	for from, cs := range st.callees {
		for _, c := range cs {
			if c != from {
				called[c] = true
			}
		}
	}
	var roots []term.Indicator
	for i := range st.units {
		if !called[st.units[i].pi] {
			roots = append(roots, st.units[i].pi)
		}
	}
	return roots
}

// runAnalysis fills st.facts. seed, when non-nil, provides starting
// entry modes (the incremental path); reuse, when non-nil, maps
// predicates whose facts may be carried over unchanged — a predicate
// is recomputed when it is enqueued by the fixpoint, and reused
// otherwise.
func runAnalysis(st *imageState, roots []term.Indicator, seed map[term.Indicator][]AbsVal, reuse map[term.Indicator]*PredFacts) {
	f := st.facts
	reach, meta := st.reachableFrom(roots)
	comps := st.sccs()

	// Entry-mode fixpoint over the reachable predicates.
	modes := map[term.Indicator][]AbsVal{}
	for pi, m := range seed {
		modes[pi] = append([]AbsVal(nil), m...)
	}
	processed := map[term.Indicator]bool{}
	queued := map[term.Indicator]bool{}
	var work []term.Indicator
	enqueue := func(pi term.Indicator) {
		if !queued[pi] {
			queued[pi] = true
			work = append(work, pi)
		}
	}
	rootSet := map[term.Indicator]bool{}
	for _, pi := range roots {
		rootSet[pi] = true
	}
	for i := range st.units {
		pi := st.units[i].pi
		// Roots are callable with anything; with a reachable call/1
		// escape every predicate is, since the constructed goal's
		// arguments are beyond static view.
		if rootSet[pi] || (meta && reach[pi]) {
			modes[pi], _ = joinModes(modes[pi], anyMode(pi.Arity))
		}
		if reach[pi] && reuse == nil {
			enqueue(pi)
		}
	}
	if reuse != nil {
		// Incremental: only dirty predicates (those without a reusable
		// fact) start on the worklist; mode growth pulls in the rest.
		for i := range st.units {
			pi := st.units[i].pi
			if reach[pi] && reuse[pi] == nil {
				enqueue(pi)
			}
		}
	}

	modeInfos := map[term.Indicator]*modeInfo{}
	rounds := 0
	maxRounds := 64*len(st.units) + 1024
	for len(work) > 0 {
		pi := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pi] = false
		ui := st.byPI[pi]
		if ui == nil || ui.bad || len(ui.instrs) == 0 {
			processed[pi] = true
			continue
		}
		if rounds++; rounds > maxRounds {
			// Defensive bound for fuzzed images: widen everything
			// still queued to AbsAny and finish without re-queueing.
			modes[pi], _ = joinModes(modes[pi], anyMode(pi.Arity))
		}
		processed[pi] = true
		mi := analyzeModes(ui.unit(), modes[pi])
		modeInfos[pi] = mi
		for _, cs := range mi.calls {
			callee, ok := st.byStart[uint32(cs.target)]
			if !ok || cs.target < 0 {
				continue
			}
			m, grew := joinModes(modes[callee.pi], cs.args)
			modes[callee.pi] = m
			if grew && reach[callee.pi] && rounds <= maxRounds {
				enqueue(callee.pi)
			}
		}
	}

	// Assemble per-predicate facts.
	for i := range st.units {
		ui := &st.units[i]
		pi := ui.pi
		if reuse != nil && reuse[pi] != nil && !processed[pi] {
			pf := reuse[pi]
			pf.Reachable = reach[pi]
			f.Preds = append(f.Preds, pf)
			f.byPI[pi] = pf
			continue
		}
		pf := &PredFacts{
			Name: pi.String(), Start: ui.start, End: ui.end,
			Instrs: len(ui.instrs), Reachable: reach[pi],
			MetaCall: st.metaCall[pi],
			pi:       pi, hash: hashRange(st, ui),
		}
		for _, c := range st.callees[pi] {
			pf.Calls = append(pf.Calls, c.String())
		}
		if ext := st.external[pi]; len(ext) > 0 {
			seen := map[uint32]bool{}
			for _, a := range ext {
				if !seen[a] {
					seen[a] = true
					pf.External = append(pf.External, a)
				}
			}
			sort.Slice(pf.External, func(a, b int) bool { return pf.External[a] < pf.External[b] })
		}
		if bs := st.builtins[pi]; len(bs) > 0 {
			seen := map[int]bool{}
			for _, n := range bs {
				if !seen[n] {
					seen[n] = true
					pf.Builtins = append(pf.Builtins, kcmisa.BuiltinName(n))
				}
			}
			sort.Strings(pf.Builtins)
		}
		if ui.bad || len(ui.instrs) == 0 {
			pf.Det = DetUnknown
			f.Preds = append(f.Preds, pf)
			f.byPI[pi] = pf
			continue
		}
		if reach[pi] {
			pf.Mode = modes[pi]
			if pf.Mode == nil {
				pf.Mode = anyMode(pi.Arity)
			}
		}
		mi := modeInfos[pi]
		if mi == nil {
			// Unreachable (or reused-path dirty): classify under the
			// weakest assumption so the claim holds for any caller.
			entry := modes[pi]
			if entry == nil {
				entry = anyMode(pi.Arity)
			}
			mi = analyzeModes(ui.unit(), entry)
		}
		dr := analyzeDet(ui.unit(), mi)
		pf.Det = dr.class
		u := ui.unit()
		for _, idx := range dr.deadNecks {
			pf.DeadNecks = append(pf.DeadNecks, u.Addr(idx))
		}
		pf.DeadArms = dr.deadArms
		pf.Licenses = collectLicenses(u, mi, dr.reach)
		f.Preds = append(f.Preds, pf)
		f.byPI[pi] = pf
	}

	// Resolve license callee names and determinism now that every
	// predicate is classified.
	for _, pf := range f.Preds {
		for i := range pf.Licenses {
			lic := &pf.Licenses[i]
			if lic.Kind != FusePutCall {
				continue
			}
			if ui, ok := st.byStart[uint32(lic.calleeAt)]; ok && lic.calleeAt >= 0 {
				lic.Callee = ui.pi.String()
				if cpf := f.byPI[ui.pi]; cpf != nil {
					lic.CalleeDet = cpf.Det == Det
				}
			} else {
				lic.Callee = fmt.Sprintf("@%d", lic.calleeAt)
				lic.CalleeDet = false
			}
		}
	}

	for _, pi := range roots {
		if _, ok := f.byPI[pi]; ok {
			f.Roots = append(f.Roots, pi.String())
		}
	}
	sort.Strings(f.Roots)
	for _, comp := range comps {
		names := make([]string, len(comp))
		for i, pi := range comp {
			names[i] = pi.String()
		}
		f.SCCs = append(f.SCCs, names)
	}
}

func hashRange(st *imageState, ui *unitInfo) uint64 {
	lo := int(ui.start - st.base)
	hi := int(ui.end - st.base)
	if lo < 0 || hi > len(st.code) || lo > hi {
		return 0
	}
	return hashWords(st.code[lo:hi])
}

// Update incrementally recomputes the facts after the code range
// [lo, hi) changed (an incremental load or hot patch). The partition
// and call graph are rebuilt, predicates overlapping the range — and
// their whole strongly-connected components — are re-analyzed, and
// entry modes are seeded from the previous run, so the fixpoint only
// revisits predicates whose modes actually grow. The seeding makes
// the update a monotone over-approximation: a patch that narrows a
// call site keeps the wider old mode (still sound); a full
// AnalyzeImage restores precision.
func (f *ImageFacts) Update(code []word.Word, base uint32, entries map[term.Indicator]uint32, roots []term.Indicator, lo, hi uint32) *ImageFacts {
	st := newImageState(code, base, entries)
	if roots == nil {
		roots = defaultRoots(st)
	}
	comps := st.sccs()
	compOf := sccIndex(comps)

	dirtyComp := map[int]bool{}
	seed := map[term.Indicator][]AbsVal{}
	reuse := map[term.Indicator]*PredFacts{}
	for i := range st.units {
		ui := &st.units[i]
		old := f.byPI[ui.pi]
		dirty := old == nil ||
			old.Start != ui.start || old.End != ui.end ||
			old.hash != hashRange(st, ui) ||
			(ui.start < hi && ui.end > lo)
		if dirty {
			dirtyComp[compOf[ui.pi]] = true
		}
		if old != nil && old.Mode != nil {
			seed[ui.pi] = old.Mode
		}
	}
	for i := range st.units {
		ui := &st.units[i]
		old := f.byPI[ui.pi]
		if old != nil && !dirtyComp[compOf[ui.pi]] {
			reuse[ui.pi] = old
		}
	}
	runAnalysis(st, roots, seed, reuse)
	return st.facts
}
