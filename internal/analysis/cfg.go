package analysis

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

// Check names one class of invariant the analyzer enforces.
type Check string

// The check classes. BadOpcode, BadBuiltin and Truncated are
// structural (encoded-stream) checks; the rest are flow checks.
const (
	BadOpcode    Check = "opcode"
	BadBuiltin   Check = "builtin"
	Truncated    Check = "truncated"
	BadTarget    Check = "target"
	UseBeforeDef Check = "use-before-def"
	UninitY      Check = "uninit-y"
	EnvMisuse    Check = "environment"
	ChoiceChain  Check = "choice-chain"
	Unreachable  Check = "unreachable"
	FallsOff     Check = "falls-off-end"
)

// NoAddr marks a diagnostic without a code-space address (pre-link
// analysis, where provenance is the instruction index).
const NoAddr = ^uint32(0)

// Diag is one analyzer finding, with clause/offset provenance.
type Diag struct {
	Unit  term.Indicator // enclosing predicate ("" when unknown)
	Index int            // instruction index within the unit
	Addr  uint32         // code-space word address, NoAddr pre-link
	Check Check
	Msg   string
}

func (d Diag) String() string {
	where := fmt.Sprintf("%v+%d", d.Unit, d.Index)
	if d.Unit.Name == "" {
		where = fmt.Sprintf("+%d", d.Index)
	}
	if d.Addr != NoAddr {
		where += fmt.Sprintf("@%d", d.Addr)
	}
	return fmt.Sprintf("%s: [%s] %s", where, d.Check, d.Msg)
}

// Unit is one analyzable code unit — a predicate's instruction
// sequence with labels resolved to instruction indices (the compiler's
// pre-link form; VetEncoded converts linked code back to it).
type Unit struct {
	PI    term.Indicator
	Arity int
	Code  []kcmisa.Instr
	// Addr maps an instruction index to its code-space address for
	// diagnostics; nil pre-link.
	Addr func(i int) uint32
}

func (u *Unit) diag(i int, c Check, format string, args ...any) Diag {
	a := NoAddr
	if u.Addr != nil {
		a = u.Addr(i)
	}
	return Diag{Unit: u.PI, Index: i, Addr: a, Check: c, Msg: fmt.Sprintf(format, args...)}
}

// edgeKind distinguishes the normal control flow from the backtracking
// continuation into an alternative.
type edgeKind int

const (
	edgeNormal edgeKind = iota
	// edgeAlt is taken on failure: the machine restores A1..An (and
	// the clause-entry environment) from the choice point, then enters
	// the next retry/trust instruction.
	edgeAlt
)

type edge struct {
	to    int // target block index
	kind  edgeKind
	arity int // registers restored along an alt edge
}

type block struct {
	start, end int // instruction index range [start, end)
	succs      []edge
	preds      []edge // kind/arity as seen by the target
}

// cfg is the per-unit control-flow graph.
type cfg struct {
	u      *Unit
	blocks []block
	// blockAt maps an instruction index to the block starting there.
	blockAt map[int]int
}

// targets returns every label of an instruction, excluding call
// targets (checked separately: they leave the unit).
func targets(in kcmisa.Instr) []int {
	switch in.Op {
	case kcmisa.Jump, kcmisa.TryMeElse, kcmisa.RetryMeElse,
		kcmisa.Try, kcmisa.Retry, kcmisa.Trust:
		return []int{in.L}
	case kcmisa.SwitchOnTerm:
		if in.SwT == nil {
			return nil
		}
		return []int{in.SwT.Var, in.SwT.Const, in.SwT.List, in.SwT.Struct}
	case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
		ts := []int{in.L}
		for _, e := range in.Sw {
			ts = append(ts, e.L)
		}
		return ts
	}
	return nil
}

// checkTargets validates every intra-unit label. Flow analysis is
// meaningless over dangling labels, so the caller stops on findings.
func (u *Unit) checkTargets() []Diag {
	var ds []Diag
	for i, in := range u.Code {
		if in.Op == kcmisa.SwitchOnTerm && in.SwT == nil {
			ds = append(ds, u.diag(i, BadTarget, "switch_on_term without a target table"))
			continue
		}
		for _, l := range targets(in) {
			if l == kcmisa.FailLabel {
				continue
			}
			if l < 0 || l >= len(u.Code) {
				ds = append(ds, u.diag(i, BadTarget,
					"%v: target %d outside unit (%d instructions)", in.Op, l, len(u.Code)))
			}
		}
	}
	return ds
}

// buildCFG splits the unit into basic blocks. Call: it assumes
// checkTargets found nothing.
func (u *Unit) buildCFG() *cfg {
	n := len(u.Code)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, in := range u.Code {
		for _, l := range targets(in) {
			if l != kcmisa.FailLabel {
				leader[l] = true
			}
		}
		switch {
		case in.Transfer():
			leader[i+1] = true
		case in.Op == kcmisa.TryMeElse || in.Op == kcmisa.RetryMeElse:
			// Two successors: the alternative edge must be explicit.
			leader[i+1] = true
		}
	}
	g := &cfg{u: u, blockAt: map[int]int{}}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.blockAt[i] = len(g.blocks)
			g.blocks = append(g.blocks, block{start: i})
		}
	}
	for bi := range g.blocks {
		if bi+1 < len(g.blocks) {
			g.blocks[bi].end = g.blocks[bi+1].start
		} else {
			g.blocks[bi].end = n
		}
	}
	return g
}

// connect adds the successor edges. A fallthrough or alternative
// continuation past the end of the unit is reported as FallsOff.
func (g *cfg) connect() []Diag {
	var ds []Diag
	u := g.u
	addEdge := func(bi int, to int, k edgeKind, arity int) {
		tb := g.blockAt[to]
		g.blocks[bi].succs = append(g.blocks[bi].succs, edge{to: tb, kind: k, arity: arity})
		g.blocks[tb].preds = append(g.blocks[tb].preds, edge{to: bi, kind: k, arity: arity})
	}
	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := b.end - 1
		in := u.Code[last]
		fallsTo := func(k edgeKind, arity int) {
			if last+1 >= len(u.Code) {
				ds = append(ds, u.diag(last, FallsOff,
					"%v continues past the end of the unit", in.Op))
				return
			}
			addEdge(bi, last+1, k, arity)
		}
		jumpTo := func(l int, k edgeKind, arity int) {
			if l != kcmisa.FailLabel {
				addEdge(bi, l, k, arity)
			}
		}
		switch in.Op {
		case kcmisa.Jump:
			jumpTo(in.L, edgeNormal, 0)
		case kcmisa.Try, kcmisa.Retry:
			jumpTo(in.L, edgeNormal, 0)
			fallsTo(edgeAlt, in.N)
		case kcmisa.Trust:
			jumpTo(in.L, edgeNormal, 0)
		case kcmisa.TryMeElse, kcmisa.RetryMeElse:
			fallsTo(edgeNormal, 0)
			jumpTo(in.L, edgeAlt, in.N)
		case kcmisa.SwitchOnTerm:
			for _, l := range []int{in.SwT.Var, in.SwT.Const, in.SwT.List, in.SwT.Struct} {
				jumpTo(l, edgeNormal, 0)
			}
		case kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
			jumpTo(in.L, edgeNormal, 0)
			for _, e := range in.Sw {
				jumpTo(e.L, edgeNormal, 0)
			}
		case kcmisa.Execute, kcmisa.Proceed, kcmisa.Fail, kcmisa.Halt, kcmisa.HaltFail:
			// terminal
		default:
			fallsTo(edgeNormal, 0)
		}
	}
	return ds
}

// reachable marks blocks reachable from the unit entry.
func (g *cfg) reachable() []bool {
	seen := make([]bool, len(g.blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.blocks[bi].succs {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}
