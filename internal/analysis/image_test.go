package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/trace"
	"repro/internal/word"
)

// buildImage encodes a list of (predicate, instruction list) pairs
// laid out back to back from base, returning the words and the entry
// table.
type testPred struct {
	pi   term.Indicator
	code []kcmisa.Instr
}

func buildImage(t *testing.T, base uint32, preds []testPred) ([]word.Word, map[term.Indicator]uint32) {
	t.Helper()
	var code []word.Word
	entries := map[term.Indicator]uint32{}
	for _, p := range preds {
		entries[p.pi] = base + uint32(len(code))
		code = append(code, enc(t, p.code...)...)
	}
	return code, entries
}

func k7() word.Word { return word.FromInt(7) }

// mainHelper is the simplest two-predicate image: main/0 calls
// helper/1 with an atomic argument.
func mainHelper(t *testing.T) ([]word.Word, map[term.Indicator]uint32) {
	t.Helper()
	return buildImage(t, 0, []testPred{
		{term.Ind("main", 0), []kcmisa.Instr{
			{Op: kcmisa.PutConst, R2: 1, K: k7()},
			{Op: kcmisa.Call, L: 3, N: 1},
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("helper", 1), []kcmisa.Instr{
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Proceed},
		}},
	})
}

func TestAnalyzeImageBasic(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	if len(f.Diags) != 0 {
		t.Fatalf("diags: %s", diagString(f.Diags))
	}
	// Default roots: main/0 is the only predicate without a caller.
	if len(f.Roots) != 1 || f.Roots[0] != "main/0" {
		t.Fatalf("roots = %v, want [main/0]", f.Roots)
	}
	mf := f.Pred(term.Ind("main", 0))
	hf := f.Pred(term.Ind("helper", 1))
	if mf == nil || hf == nil {
		t.Fatal("missing pred facts")
	}
	if !mf.Reachable || !hf.Reachable {
		t.Errorf("reachability: main=%v helper=%v, want both", mf.Reachable, hf.Reachable)
	}
	if mf.Det != Det || hf.Det != Det {
		t.Errorf("det: main=%v helper=%v, want det", mf.Det, hf.Det)
	}
	if len(hf.Mode) != 1 || hf.Mode[0] != AbsAtomic {
		t.Errorf("helper mode = %v, want [atomic]", hf.Mode)
	}
	if len(mf.Calls) != 1 || mf.Calls[0] != "helper/1" {
		t.Errorf("main calls = %v, want [helper/1]", mf.Calls)
	}
	if dead := f.DeadPreds(); len(dead) != 0 {
		t.Errorf("dead preds = %v, want none", dead)
	}
}

func TestAnalyzeImagePredAt(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	pf, ok := f.PredAt(4)
	if !ok || pf.Name != "helper/1" {
		t.Fatalf("PredAt(4) = %v,%v, want helper/1", pf, ok)
	}
	pf, ok = f.PredAt(0)
	if !ok || pf.Name != "main/0" {
		t.Fatalf("PredAt(0) = %v,%v, want main/0", pf, ok)
	}
	if _, ok := f.PredAt(100); ok {
		t.Fatal("PredAt(100) should miss")
	}
}

func TestAnalyzeImagePutCallLicense(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	mf := f.Pred(term.Ind("main", 0))
	var lic *License
	for i := range mf.Licenses {
		if mf.Licenses[i].Kind == FusePutCall {
			lic = &mf.Licenses[i]
		}
	}
	if lic == nil {
		t.Fatalf("main/0 has no put_call license: %+v", mf.Licenses)
	}
	if lic.Start != 0 || lic.Instrs != 2 || lic.Callee != "helper/1" || !lic.CalleeDet {
		t.Errorf("license = %+v, want start=0 instrs=2 callee=helper/1 det", lic)
	}
	if ds := CheckLicenses(f, code, 0); len(ds) != 0 {
		t.Errorf("CheckLicenses: %s", diagString(ds))
	}
	// Corrupt a claim: the checker must notice.
	lic.Words++
	if ds := CheckLicenses(f, code, 0); len(ds) == 0 {
		t.Error("CheckLicenses accepted a wrong word count")
	}
	lic.Words--
}

func TestAnalyzeImageGetRunLicense(t *testing.T) {
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("pair", 2), []kcmisa.Instr{
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.GetConst, R2: 2, K: k7()},
			{Op: kcmisa.Proceed},
		}},
	})
	f := AnalyzeImage(code, 0, entries, nil)
	pf := f.Pred(term.Ind("pair", 2))
	found := false
	for _, lic := range pf.Licenses {
		if lic.Kind == FuseGetRun && lic.Start == 0 && lic.Instrs == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing get_run license: %+v", pf.Licenses)
	}
	if ds := CheckLicenses(f, code, 0); len(ds) != 0 {
		t.Errorf("CheckLicenses: %s", diagString(ds))
	}
}

func TestAnalyzeImageDetClasses(t *testing.T) {
	// nd/1: two clauses, no cut — the choice point survives.
	// sd/1: same shape with a cut in the first clause body.
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("nd", 1), []kcmisa.Instr{
			{Op: kcmisa.TryMeElse, L: 4, N: 1},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Proceed},
			{Op: kcmisa.TrustMe},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetNil, R2: 1},
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("sd", 1), []kcmisa.Instr{
			{Op: kcmisa.TryMeElse, L: 13, N: 1},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Cut},
			{Op: kcmisa.Proceed},
			{Op: kcmisa.TrustMe},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetNil, R2: 1},
			{Op: kcmisa.Proceed},
		}},
	})
	f := AnalyzeImage(code, 0, entries, nil)
	if got := f.Pred(term.Ind("nd", 1)).Det; got != NonDet {
		t.Errorf("nd/1 det = %v, want nondet", got)
	}
	if got := f.Pred(term.Ind("sd", 1)).Det; got != SemiDet {
		t.Errorf("sd/1 det = %v, want semidet", got)
	}
}

func TestAnalyzeImageDeadArms(t *testing.T) {
	// sw/1 is only ever called with an atomic argument: the var, list
	// and struct arms of its switch are dead.
	swStart := 3
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("main", 0), []kcmisa.Instr{
			{Op: kcmisa.PutConst, R2: 1, K: k7()},
			{Op: kcmisa.Call, L: swStart, N: 1},
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("sw", 1), []kcmisa.Instr{
			{Op: kcmisa.SwitchOnTerm, SwT: &kcmisa.TermSwitch{
				Var: swStart + 4, Const: swStart + 5, List: swStart + 4, Struct: swStart + 4}},
			{Op: kcmisa.Fail},
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Proceed},
		}},
	})
	f := AnalyzeImage(code, 0, entries, nil)
	pf := f.Pred(term.Ind("sw", 1))
	if len(pf.Mode) != 1 || pf.Mode[0] != AbsAtomic {
		t.Fatalf("sw/1 mode = %v, want [atomic]", pf.Mode)
	}
	arms := map[string]bool{}
	for _, da := range pf.DeadArms {
		arms[da.Arm] = true
	}
	for _, want := range []string{"var", "list", "struct"} {
		if !arms[want] {
			t.Errorf("missing dead arm %q: %+v", want, pf.DeadArms)
		}
	}
	if arms["const"] {
		t.Errorf("const arm wrongly dead: %+v", pf.DeadArms)
	}
}

func TestAnalyzeImageDeadCycle(t *testing.T) {
	// a/0 and b/0 call each other but nothing reaches them.
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("main", 0), []kcmisa.Instr{
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("a", 0), []kcmisa.Instr{
			{Op: kcmisa.Execute, L: 2},
		}},
		{term.Ind("b", 0), []kcmisa.Instr{
			{Op: kcmisa.Execute, L: 1},
		}},
	})
	f := AnalyzeImage(code, 0, entries, nil)
	dead := f.DeadPreds()
	if len(dead) != 2 || dead[0] != "a/0" || dead[1] != "b/0" {
		t.Fatalf("dead = %v, want [a/0 b/0]", dead)
	}
	// Unreachable predicates are still classified (under AbsAny).
	if f.Pred(term.Ind("a", 0)).Det == DetUnknown {
		t.Error("dead pred left unclassified")
	}
	// The cycle is one SCC.
	found := false
	for _, scc := range f.SCCs {
		if len(scc) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing 2-element SCC: %v", f.SCCs)
	}
}

func TestAnalyzeImageMetaCall(t *testing.T) {
	// main uses the call/1 escape: everything becomes reachable and
	// every mode widens to any.
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("main", 0), []kcmisa.Instr{
			{Op: kcmisa.Builtin, N: kcmisa.BICall},
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("orphan", 1), []kcmisa.Instr{
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Proceed},
		}},
	})
	f := AnalyzeImage(code, 0, entries, []term.Indicator{term.Ind("main", 0)})
	of := f.Pred(term.Ind("orphan", 1))
	if !of.Reachable {
		t.Fatal("meta-call must make orphan/1 reachable")
	}
	if len(of.Mode) != 1 || of.Mode[0] != AbsAny {
		t.Errorf("orphan mode = %v, want [any]", of.Mode)
	}
	if !f.Pred(term.Ind("main", 0)).MetaCall {
		t.Error("MetaCall flag not set")
	}
}

func TestImageFactsJSONRoundTrip(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ImageFacts
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Base != f.Base || back.Top != f.Top || len(back.Preds) != len(f.Preds) {
		t.Fatalf("round trip lost shape: %+v vs %+v", back, *f)
	}
	for i := range back.Preds {
		if back.Preds[i].Det != f.Preds[i].Det || back.Preds[i].Name != f.Preds[i].Name {
			t.Errorf("pred %d: %+v vs %+v", i, back.Preds[i], f.Preds[i])
		}
	}
}

func TestImageFactsFlat(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	flat := f.Flat()
	for _, want := range []string{
		"image [0,5) roots=main/0",
		"pred main/0 @0..3 reachable det=det",
		"pred helper/1 @3..5 reachable det=det mode=(atomic)",
		"calls helper/1",
		"license put_call @0 instrs=2 words=2 callee=helper/1 callee_det=true",
	} {
		if !strings.Contains(flat, want) {
			t.Errorf("Flat() missing %q:\n%s", want, flat)
		}
	}
}

func TestImageFactsUpdate(t *testing.T) {
	code, entries := mainHelper(t)
	f := AnalyzeImage(code, 0, entries, nil)
	oldHelper := f.Pred(term.Ind("helper", 1))

	// Append a new predicate that calls helper with a structured
	// argument; main/0 and helper/1 words are untouched.
	extra := enc(t,
		kcmisa.Instr{Op: kcmisa.PutList, R2: 1},
		kcmisa.Instr{Op: kcmisa.UnifyConst, K: k7()},
		kcmisa.Instr{Op: kcmisa.UnifyNil},
		kcmisa.Instr{Op: kcmisa.Execute, L: 3, N: 1},
	)
	lo := uint32(len(code))
	code2 := append(append([]word.Word(nil), code...), extra...)
	entries2 := map[term.Indicator]uint32{}
	for pi, a := range entries {
		entries2[pi] = a
	}
	entries2[term.Ind("extra", 1)] = lo

	f2 := f.Update(code2, 0, entries2, nil, lo, uint32(len(code2)))
	ef := f2.Pred(term.Ind("extra", 1))
	if ef == nil || !ef.Reachable {
		t.Fatal("extra/1 missing or unreachable after update")
	}
	// helper/1 gained a caller with a structured argument: its mode
	// must have widened to cover both call sites.
	hf := f2.Pred(term.Ind("helper", 1))
	if len(hf.Mode) != 1 || hf.Mode[0] != (AbsAtomic|AbsStruct) {
		t.Errorf("helper mode after update = %v, want [atomic|struct]", hf.Mode)
	}
	// main/0 was untouched and in a clean component: its facts object
	// must be carried over, not recomputed.
	if f2.Pred(term.Ind("main", 0)) != f.Pred(term.Ind("main", 0)) {
		t.Error("main/0 facts recomputed despite clean component")
	}
	// helper/1 was re-analyzed (its mode grew), so the pointer differs.
	if f2.Pred(term.Ind("helper", 1)) == oldHelper {
		t.Error("helper/1 facts reused despite mode growth")
	}

	// A full re-analysis agrees with the incremental result.
	full := AnalyzeImage(code2, 0, entries2, nil)
	if full.Flat() != f2.Flat() {
		t.Errorf("incremental and full analyses disagree:\n--- incremental\n%s--- full\n%s",
			f2.Flat(), full.Flat())
	}
}

func TestOracle(t *testing.T) {
	code, entries := buildImage(t, 0, []testPred{
		{term.Ind("det", 0), []kcmisa.Instr{
			{Op: kcmisa.Proceed},
		}},
		{term.Ind("nd", 1), []kcmisa.Instr{
			{Op: kcmisa.TryMeElse, L: 5, N: 1},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetConst, R2: 1, K: k7()},
			{Op: kcmisa.Proceed},
			{Op: kcmisa.TrustMe},
			{Op: kcmisa.Neck, N: 1},
			{Op: kcmisa.GetNil, R2: 1},
			{Op: kcmisa.Proceed},
		}},
	})
	f := AnalyzeImage(code, 0, entries, nil)
	o := NewOracle(f)
	// A restore resuming inside nd/1 (classified nondet) is fine.
	o.Emit(trace.Event{Kind: trace.KCPRestore, Arg: 5, Seq: 1})
	if len(o.Violations()) != 0 {
		t.Fatalf("restore in nondet pred flagged: %v", o.Violations())
	}
	// A restore resuming inside det/0 contradicts the Det claim.
	o.Emit(trace.Event{Kind: trace.KCPRestore, Arg: 0, Seq: 2})
	if len(o.Violations()) != 1 {
		t.Fatalf("violations = %v, want one", o.Violations())
	}
	if o.Restores() != 2 {
		t.Errorf("restores = %d, want 2", o.Restores())
	}
	// Unrelated events are ignored.
	o.Emit(trace.Event{Kind: trace.KInstr})
	if o.Restores() != 2 {
		t.Error("KInstr counted as a restore")
	}
}

func TestVerdictCache(t *testing.T) {
	ResetVerdictCache()
	defer ResetVerdictCache()
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.Jump, L: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if ds := CheckEncodedCached(code, 0, 0); len(ds) != 0 {
		t.Fatalf("diags: %s", diagString(ds))
	}
	if ds := CheckEncodedCached(code, 0, 0); len(ds) != 0 {
		t.Fatalf("diags: %s", diagString(ds))
	}
	hits, misses := VerdictCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	// The same words at a different placement are a different verdict.
	if ds := CheckEncodedCached(code, 100, 100); len(ds) != 0 {
		t.Fatalf("diags: %s", diagString(ds))
	}
	hits, misses = VerdictCacheStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats after rebase = %d hits, %d misses; want 1, 2", hits, misses)
	}
	// Cached findings replay too.
	bad := []word.Word{word.Word(250) << 56}
	d1 := CheckEncodedCached(bad, 0, 0)
	d2 := CheckEncodedCached(bad, 0, 0)
	if len(d1) == 0 || len(d2) != len(d1) {
		t.Fatalf("bad block verdicts: %d then %d findings", len(d1), len(d2))
	}
}
