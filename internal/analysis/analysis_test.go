package analysis

import (
	"strings"
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/term"
)

func findCheck(ds []Diag, c Check) bool {
	for _, d := range ds {
		if d.Check == c {
			return true
		}
	}
	return false
}

func diagString(ds []Diag) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteString("; ")
	}
	return b.String()
}

// analyze runs the analyzer over a hand-built unit of the given arity.
func analyze(arity int, code ...kcmisa.Instr) []Diag {
	return AnalyzePred(term.Ind("t", arity), code)
}

func TestCleanUnit(t *testing.T) {
	// t(X) :- p(X).  — single clause, no environment.
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.GetVarX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Execute, N: 1, L: kcmisa.FailLabel},
	)
	if len(ds) != 0 {
		t.Fatalf("clean unit reported: %s", diagString(ds))
	}
}

func TestUseBeforeDefX(t *testing.T) {
	// X5 is read without ever being written (arity 1: only A1 is live).
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, UseBeforeDef) {
		t.Fatalf("want use-before-def, got: %s", diagString(ds))
	}
}

func TestUseAfterCallBoundary(t *testing.T) {
	// X5 is defined, but a call kills every register before the read.
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.GetVarX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Call, N: 1, L: kcmisa.FailLabel},
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Execute, N: 1, L: kcmisa.FailLabel},
	)
	if !findCheck(ds, UseBeforeDef) {
		t.Fatalf("want use-before-def after call, got: %s", diagString(ds))
	}
}

func TestUninitYRead(t *testing.T) {
	// Y1 is read before anything was stored into it.
	ds := analyze(0,
		kcmisa.Instr{Op: kcmisa.Allocate, N: 2},
		kcmisa.Instr{Op: kcmisa.PutValY, N: 1, R2: 1},
		kcmisa.Instr{Op: kcmisa.Call, N: 1, L: kcmisa.FailLabel},
		kcmisa.Instr{Op: kcmisa.Deallocate},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, UninitY) {
		t.Fatalf("want uninit-y, got: %s", diagString(ds))
	}
}

func TestYReadOutsideTrimmedEnv(t *testing.T) {
	// Y3 lies beyond the 2-slot environment: reading it walks into
	// stack memory the allocation never covered.
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.Allocate, N: 2},
		kcmisa.Instr{Op: kcmisa.MoveXY, R1: 1, N: 0},
		kcmisa.Instr{Op: kcmisa.PutValY, N: 3, R2: 1},
		kcmisa.Instr{Op: kcmisa.Call, N: 1, L: kcmisa.FailLabel},
		kcmisa.Instr{Op: kcmisa.Deallocate},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, UninitY) {
		t.Fatalf("want uninit-y for out-of-range slot, got: %s", diagString(ds))
	}
}

func TestYAccessAfterDeallocate(t *testing.T) {
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.Allocate, N: 1},
		kcmisa.Instr{Op: kcmisa.MoveXY, R1: 1, N: 0},
		kcmisa.Instr{Op: kcmisa.Deallocate},
		kcmisa.Instr{Op: kcmisa.PutValY, N: 0, R2: 1},
		kcmisa.Instr{Op: kcmisa.Execute, N: 1, L: kcmisa.FailLabel},
	)
	if !findCheck(ds, EnvMisuse) {
		t.Fatalf("want environment misuse, got: %s", diagString(ds))
	}
}

func TestLeavingWithEnvironment(t *testing.T) {
	ds := analyze(0,
		kcmisa.Instr{Op: kcmisa.Allocate, N: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, EnvMisuse) {
		t.Fatalf("want environment misuse at proceed, got: %s", diagString(ds))
	}
}

func TestQueryHaltWithEnvironmentIsClean(t *testing.T) {
	// A query clause legitimately halts with its environment live so
	// bindings stay readable.
	ds := analyze(0,
		kcmisa.Instr{Op: kcmisa.Allocate, N: 1},
		kcmisa.Instr{Op: kcmisa.PutVarX, R1: 1, R2: 1},
		kcmisa.Instr{Op: kcmisa.MoveXY, R1: 1, N: 0},
		kcmisa.Instr{Op: kcmisa.Halt},
	)
	if len(ds) != 0 {
		t.Fatalf("query halt flagged: %s", diagString(ds))
	}
}

func TestUnbalancedChoiceChain(t *testing.T) {
	// try_me_else whose alternative lands on plain clause code: on
	// backtracking the machine would execute it with a choice point it
	// never pops.
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.TryMeElse, N: 1, L: 2},
		kcmisa.Instr{Op: kcmisa.Proceed},
		kcmisa.Instr{Op: kcmisa.GetNil, R2: 1}, // should be retry/trust
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, ChoiceChain) {
		t.Fatalf("want choice-chain, got: %s", diagString(ds))
	}
}

func TestChoiceChainArityMismatch(t *testing.T) {
	ds := analyze(2,
		kcmisa.Instr{Op: kcmisa.TryMeElse, N: 2, L: 2},
		kcmisa.Instr{Op: kcmisa.Proceed},
		kcmisa.Instr{Op: kcmisa.TrustMe, N: 1}, // choice point saved 2 args
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, ChoiceChain) {
		t.Fatalf("want choice-chain arity mismatch, got: %s", diagString(ds))
	}
}

func TestFallthroughIntoAlternative(t *testing.T) {
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.TryMeElse, N: 1, L: 3},
		kcmisa.Instr{Op: kcmisa.GetNil, R2: 1},
		kcmisa.Instr{Op: kcmisa.TrustMe, N: 1}, // fallthrough from +1
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, ChoiceChain) {
		t.Fatalf("want choice-chain for fallthrough, got: %s", diagString(ds))
	}
}

func TestInvalidJumpTarget(t *testing.T) {
	ds := analyze(0,
		kcmisa.Instr{Op: kcmisa.Jump, L: 99},
	)
	if !findCheck(ds, BadTarget) {
		t.Fatalf("want bad target, got: %s", diagString(ds))
	}
}

func TestUnreachableBlock(t *testing.T) {
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.Proceed},
		kcmisa.Instr{Op: kcmisa.GetNil, R2: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, Unreachable) {
		t.Fatalf("want unreachable, got: %s", diagString(ds))
	}
}

func TestFallsOffEnd(t *testing.T) {
	ds := analyze(1,
		kcmisa.Instr{Op: kcmisa.GetNil, R2: 1},
	)
	if !findCheck(ds, FallsOff) {
		t.Fatalf("want falls-off-end, got: %s", diagString(ds))
	}
}

func TestBadBuiltinNumber(t *testing.T) {
	ds := analyze(0,
		kcmisa.Instr{Op: kcmisa.Builtin, N: kcmisa.NumBuiltins + 3},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if !findCheck(ds, BadBuiltin) {
		t.Fatalf("want bad builtin, got: %s", diagString(ds))
	}
}

func TestAltEdgeRestoresArgRegisters(t *testing.T) {
	// The second alternative reads A1 and A2: legal, because the
	// choice point restores them on backtracking.
	ds := analyze(2,
		kcmisa.Instr{Op: kcmisa.TryMeElse, N: 2, L: 3},
		kcmisa.Instr{Op: kcmisa.GetNil, R2: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
		kcmisa.Instr{Op: kcmisa.TrustMe, N: 2},
		kcmisa.Instr{Op: kcmisa.GetValX, R1: 1, R2: 2},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if len(ds) != 0 {
		t.Fatalf("alternative flagged: %s", diagString(ds))
	}
}

func TestRegSet(t *testing.T) {
	s := RegsThrough(3)
	for r := 1; r <= 3; r++ {
		if !s.Has(kcmisa.Reg(r)) {
			t.Errorf("A%d missing from %v", r, s)
		}
	}
	if s.Has(0) || s.Has(4) {
		t.Errorf("unexpected members in %v", s)
	}
	if got := s.Add(7); !got.Has(7) {
		t.Errorf("Add(7) lost the bit: %v", got)
	}
	if RegsThrough(0) != 0 || RegsThrough(-1) != 0 {
		t.Error("RegsThrough of non-positive arity must be empty")
	}
	if RegsThrough(200) == 0 {
		t.Error("RegsThrough must clamp, not overflow to empty")
	}
}

func TestUpwardExposed(t *testing.T) {
	code := []kcmisa.Instr{
		{Op: kcmisa.GetVarX, R1: 5, R2: 1}, // uses A1, defines X5
		{Op: kcmisa.PutValX, R1: 5, R2: 2}, // uses X5 (defined)
		{Op: kcmisa.Call, N: 2, L: kcmisa.FailLabel},
		{Op: kcmisa.PutValX, R1: 6, R2: 1}, // X6 read after call: not exposed
	}
	got := UpwardExposed(code)
	// A1 is read before any definition; A2 is defined by the put
	// before the call reads it, and X6 is read only after the call
	// boundary, so neither is upward-exposed.
	want := RegSet(0).Add(1)
	if got != want {
		t.Fatalf("UpwardExposed = %v, want %v", got, want)
	}
}
