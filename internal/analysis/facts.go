// Package analysis is a static analyzer over KCM instruction streams.
// It builds a control-flow graph per predicate (basic blocks split on
// transfer instructions, with try/retry/trust alternative edges and
// switch multi-way edges), runs dataflow passes over it — argument and
// temporary register init-before-use, permanent-variable (Y-register)
// lifetime across allocate/deallocate, choice-point chain discipline,
// jump-target validity, unreachable-code detection — and reports
// structured diagnostics with instruction provenance.
//
// The analyzer runs in three places: as the compiler's opt-in
// post-compile verification pass (on by default under `go test`), as
// the loader's structural validator for encoded code words, and as the
// engine of the kcmvet command. The compiler's peephole optimiser
// consumes the same per-instruction def/use facts (InstrEffects), so
// the rewriter and its checker can never drift apart.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/kcmisa"
)

// RegSet is a bitset over the 64-register file.
type RegSet uint64

// AllRegs has every register set.
const AllRegs = ^RegSet(0)

// Has reports whether register r is in the set.
func (s RegSet) Has(r kcmisa.Reg) bool { return s&(1<<uint(r&63)) != 0 }

// Add returns the set with register r added.
func (s RegSet) Add(r kcmisa.Reg) RegSet { return s | 1<<uint(r&63) }

// RegsThrough returns the set {A1..An}, the argument registers of an
// arity-n predicate.
func RegsThrough(n int) RegSet {
	if n <= 0 {
		return 0
	}
	if n >= kcmisa.NumRegs-1 {
		n = kcmisa.NumRegs - 1
	}
	return (RegSet(1)<<uint(n+1) - 1) &^ 1 // bits 1..n
}

func (s RegSet) String() string {
	var b strings.Builder
	for r := 0; r < kcmisa.NumRegs; r++ {
		if s.Has(kcmisa.Reg(r)) {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "X%d", r)
		}
	}
	if b.Len() == 0 {
		return "{}"
	}
	return b.String()
}

// Effects are the register-file facts of one instruction: which X
// registers it reads and writes, whether it invalidates linear
// register tracking (peephole barrier), and whether it is a call
// boundary after which no register content survives.
type Effects struct {
	Uses RegSet
	Defs RegSet
	// KillsAll marks call/escape boundaries: the continuation may not
	// assume any register content (the compiler's resetTemps point).
	KillsAll bool
	// Barrier marks instructions that invalidate straight-line
	// register tracking for the peephole rewriter: calls, escapes,
	// control transfers and alternative-chain instructions.
	Barrier bool
}

// CallArity returns the number of argument registers consumed by a
// call, execute, neck or alternative instruction. Pre-link code
// carries it in the symbolic Proc; linked code in the N field.
func CallArity(in kcmisa.Instr) int {
	if in.Proc.Name != "" {
		return in.Proc.Arity
	}
	return in.N
}

// InstrEffects returns the register facts of one instruction. The
// alternative instructions (try/retry/trust and neck) read A1..An
// because they save or restore the argument registers when a choice
// point is involved; a rewriter that knows no choice point can exist
// (a textually last alternative) may ignore the Neck uses.
func InstrEffects(in kcmisa.Instr) Effects {
	var e Effects
	switch in.Op {
	case kcmisa.Call, kcmisa.Execute:
		e.Uses = RegsThrough(CallArity(in))
		e.KillsAll = true
		e.Barrier = true
	case kcmisa.Builtin:
		e.Uses = RegsThrough(kcmisa.BuiltinArity(in.N))
		e.KillsAll = true
		e.Barrier = true
	case kcmisa.Proceed, kcmisa.Jump, kcmisa.Fail, kcmisa.Halt, kcmisa.HaltFail:
		e.Barrier = true
	case kcmisa.TryMeElse, kcmisa.RetryMeElse, kcmisa.TrustMe,
		kcmisa.Try, kcmisa.Retry, kcmisa.Trust:
		e.Uses = RegsThrough(in.N)
		e.Barrier = true
	case kcmisa.Neck:
		// Materialising the delayed choice point stores A1..An.
		e.Uses = RegsThrough(in.N)
	case kcmisa.SwitchOnTerm, kcmisa.SwitchOnConst, kcmisa.SwitchOnStruct:
		e.Uses = RegSet(0).Add(1) // dispatch on A1
		e.Barrier = true
	case kcmisa.GetVarX:
		e.Uses = RegSet(0).Add(in.R2)
		e.Defs = RegSet(0).Add(in.R1)
	case kcmisa.GetValX:
		e.Uses = RegSet(0).Add(in.R1).Add(in.R2)
	case kcmisa.GetConst, kcmisa.GetNil, kcmisa.GetList, kcmisa.GetStruct:
		e.Uses = RegSet(0).Add(in.R2)
	case kcmisa.UnifyVarX:
		e.Defs = RegSet(0).Add(in.R1)
	case kcmisa.UnifyValX:
		e.Uses = RegSet(0).Add(in.R1)
	case kcmisa.UnifyLocX:
		// Reads the register; write mode may rewrite it with the
		// globalised value.
		e.Uses = RegSet(0).Add(in.R1)
		e.Defs = RegSet(0).Add(in.R1)
	case kcmisa.PutVarX:
		e.Defs = RegSet(0).Add(in.R1).Add(in.R2)
	case kcmisa.PutValX:
		e.Uses = RegSet(0).Add(in.R1)
		e.Defs = RegSet(0).Add(in.R2)
	case kcmisa.PutVarY, kcmisa.PutValY, kcmisa.PutUnsafeY,
		kcmisa.PutConst, kcmisa.PutNil, kcmisa.PutList, kcmisa.PutStruct:
		e.Defs = RegSet(0).Add(in.R2)
	case kcmisa.MoveXY:
		e.Uses = RegSet(0).Add(in.R1)
	case kcmisa.MoveYX:
		e.Defs = RegSet(0).Add(in.R1)
	case kcmisa.LoadConst:
		e.Defs = RegSet(0).Add(in.R1)
	case kcmisa.Add, kcmisa.Sub, kcmisa.Mul, kcmisa.Div, kcmisa.Mod,
		kcmisa.Rem, kcmisa.Band, kcmisa.Bor, kcmisa.Bxor, kcmisa.Shl,
		kcmisa.Shr, kcmisa.MinOp, kcmisa.MaxOp:
		e.Uses = RegSet(0).Add(in.R1).Add(in.R2)
		e.Defs = RegSet(0).Add(in.R3)
	case kcmisa.Abs:
		e.Uses = RegSet(0).Add(in.R1)
		e.Defs = RegSet(0).Add(in.R3)
	case kcmisa.CmpLt, kcmisa.CmpLe, kcmisa.CmpGt, kcmisa.CmpGe,
		kcmisa.CmpEq, kcmisa.CmpNe, kcmisa.IdentEq, kcmisa.IdentNe,
		kcmisa.UnifyRegs:
		e.Uses = RegSet(0).Add(in.R1).Add(in.R2)
	case kcmisa.TestVar, kcmisa.TestNonvar, kcmisa.TestAtom,
		kcmisa.TestInteger, kcmisa.TestAtomic:
		e.Uses = RegSet(0).Add(in.R1)
	}
	return e
}

// yEffect classifies an instruction's permanent-variable access.
type yEffect int

const (
	yNone yEffect = iota
	yRead
	yWrite
)

// yAccess returns the Y-slot access of an instruction, if any.
// put_unsafe_value both reads the slot and may rebind it; it is
// classified as a read because the slot must be initialised first.
func yAccess(in kcmisa.Instr) (yEffect, int) {
	switch in.Op {
	case kcmisa.MoveXY, kcmisa.PutVarY, kcmisa.UnifyVarY, kcmisa.SaveB0:
		return yWrite, in.N
	case kcmisa.MoveYX, kcmisa.PutValY, kcmisa.PutUnsafeY,
		kcmisa.UnifyValY, kcmisa.UnifyLocY, kcmisa.CutY:
		return yRead, in.N
	}
	return yNone, 0
}

// LastAltEffects is InstrEffects specialised to code that can never
// be shallowly retried (a textually last alternative or a single
// clause): there the shallow flag is always clear when Neck executes,
// so it never materialises a choice point and never stores A1..An.
// The peephole rewriter and its differential check both use this
// model, which is what makes moving an argument-register definition
// across a Neck legal in the first place.
func LastAltEffects(in kcmisa.Instr) Effects {
	e := InstrEffects(in)
	if in.Op == kcmisa.Neck {
		e.Uses = 0
	}
	return e
}

// UpwardExposed returns the registers a straight-line clause body may
// read before writing: the values it demands from its caller (the
// argument registers, for compiler-emitted clause code). Call and
// escape boundaries end the window — nothing read after a call can be
// an entry value.
func UpwardExposed(code []kcmisa.Instr) RegSet {
	return exposure(code, InstrEffects)
}

// UpwardExposedLastAlt is UpwardExposed under the last-alternative
// effect model. The compiler's differential check asserts this set is
// preserved by the peephole rewrite.
func UpwardExposedLastAlt(code []kcmisa.Instr) RegSet {
	return exposure(code, LastAltEffects)
}

func exposure(code []kcmisa.Instr, effects func(kcmisa.Instr) Effects) RegSet {
	var defined, exposed RegSet
	for _, in := range code {
		e := effects(in)
		exposed |= e.Uses &^ defined
		if e.KillsAll {
			defined = AllRegs
		}
		defined |= e.Defs
	}
	return exposed
}
