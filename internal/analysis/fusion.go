package analysis

import (
	"fmt"

	"repro/internal/kcmisa"
	"repro/internal/word"
)

// License kinds. A get_run is a maximal straight-line run of head
// unification instructions; a put_call is a run of goal-argument
// construction instructions ending in the call or execute they feed.
const (
	FuseGetRun  = "get_run"
	FusePutCall = "put_call"
)

// License is one machine-checkable fusion record: a future
// translation tier may collapse the named instruction run into a
// superinstruction because the analyzer proved no control transfer
// enters or leaves its interior. CheckLicenses re-derives the claim
// from the code words alone.
type License struct {
	Kind   string `json:"kind"`
	Start  uint32 `json:"start"`  // code-space address of the first instruction
	Instrs int    `json:"instrs"` // run length in instructions
	Words  int    `json:"words"`  // run length in code words
	// Callee names the called predicate of a put_call run; CalleeDet
	// records whether that predicate was classified deterministic, the
	// fact a fused call+proceed chain needs.
	Callee    string `json:"callee,omitempty"`
	CalleeDet bool   `json:"callee_det,omitempty"`
	calleeAt  int    // absolute target address, -1 when external
}

// The lowering contract between licenses and a host-side translation
// tier (internal/machine's fusion tier): a fused handler may be
// installed for a get_run only if every decoded component satisfies
// GetRunOp, and for a put_call only if every component but the last
// satisfies PutRunOp and the last is call or execute — exactly the
// class predicates CheckLicenses re-derives. An installer that
// re-checks the classes against its own decode of the code words
// trusts only the decoder, never the analyzer; a component that fails
// its class check voids the license.

// GetRunOp reports membership in the head-unification run class
// (the component class of a get_run license).
func GetRunOp(op kcmisa.Op) bool { return getRunOp(op) }

// PutRunOp reports membership in the goal-construction run class
// (the non-terminal component class of a put_call license).
func PutRunOp(op kcmisa.Op) bool { return putRunOp(op) }

// CalleeTarget returns the resolved code address of a put_call
// license's callee, or -1 when the callee is external or the license
// is a get_run. An installer specialising on CalleeDet should check
// that the terminal instruction's target equals this address.
func (l License) CalleeTarget() int { return l.calleeAt }

// getRunOp reports membership in the head-unification run class.
func getRunOp(op kcmisa.Op) bool {
	switch op {
	case kcmisa.GetVarX, kcmisa.GetValX, kcmisa.GetConst, kcmisa.GetNil,
		kcmisa.GetList, kcmisa.GetStruct,
		kcmisa.UnifyVarX, kcmisa.UnifyValX, kcmisa.UnifyLocX,
		kcmisa.UnifyVarY, kcmisa.UnifyValY, kcmisa.UnifyLocY,
		kcmisa.UnifyConst, kcmisa.UnifyNil, kcmisa.UnifyList, kcmisa.UnifyVoid:
		return true
	}
	return false
}

// putRunOp reports membership in the goal-construction run class.
func putRunOp(op kcmisa.Op) bool {
	switch op {
	case kcmisa.PutVarX, kcmisa.PutVarY, kcmisa.PutValX, kcmisa.PutValY,
		kcmisa.PutUnsafeY, kcmisa.PutConst, kcmisa.PutNil, kcmisa.PutList,
		kcmisa.PutStruct, kcmisa.MoveXY, kcmisa.MoveYX, kcmisa.LoadConst:
		return true
	}
	return false
}

// collectLicenses walks the reachable blocks of a unit and emits the
// fusion licenses. Block boundaries are the fusion barriers: a leader
// is a branch target, so a run confined to one block can only be
// entered at its first instruction.
func collectLicenses(u *Unit, mi *modeInfo, reach []bool) []License {
	var out []License
	g := mi.g
	addr := func(i int) uint32 {
		if u.Addr != nil {
			return u.Addr(i)
		}
		return uint32(i)
	}
	words := func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			n += u.Code[i].Words()
		}
		return n
	}
	for bi := range g.blocks {
		if bi < len(reach) && !reach[bi] {
			continue
		}
		b := &g.blocks[bi]
		// Maximal get/unify runs.
		for i := b.start; i < b.end; {
			if !getRunOp(u.Code[i].Op) {
				i++
				continue
			}
			j := i
			for j < b.end && getRunOp(u.Code[j].Op) {
				j++
			}
			if j-i >= 2 {
				out = append(out, License{
					Kind: FuseGetRun, Start: addr(i),
					Instrs: j - i, Words: words(i, j), calleeAt: -1,
				})
			}
			i = j
		}
		// Put runs feeding a call or execute. A call does not end a
		// basic block (control returns to the next instruction), so any
		// call inside the block may terminate a fusible chain; the
		// block-confinement argument covers every prefix of the block.
		for c := b.start; c < b.end; c++ {
			if op := u.Code[c].Op; op != kcmisa.Call && op != kcmisa.Execute {
				continue
			}
			i := c
			for i > b.start && putRunOp(u.Code[i-1].Op) {
				i--
			}
			if i < c {
				out = append(out, License{
					Kind: FusePutCall, Start: addr(i),
					Instrs: c - i + 1, Words: words(i, c+1),
					calleeAt: u.Code[c].L,
				})
			}
		}
	}
	return out
}

// CheckLicenses re-derives every license of the facts artifact from
// the image words alone, making the fusion claims machine-checkable:
// each run must decode at the recorded address with the recorded
// instruction and word counts, every interior instruction must belong
// to the claimed class, no control transfer may occur before the end
// of the run, and no branch target anywhere in the image may land
// inside it. A consumer that validates a license this way may fuse
// the run without trusting the analyzer.
func CheckLicenses(f *ImageFacts, code []word.Word, base uint32) []Diag {
	ins, ds := decodeAll(code, base)
	if len(ds) > 0 {
		return ds
	}
	at := make(map[uint32]int, len(ins))
	inside := map[uint32]bool{} // interior (non-head) addresses of all runs
	for i, ei := range ins {
		at[ei.addr] = i
	}
	badge := func(pi string, lic License, format string, args ...any) Diag {
		return Diag{Index: -1, Addr: lic.Start, Check: BadTarget,
			Msg: fmt.Sprintf("license %s@%d (%s): %s", lic.Kind, lic.Start, pi,
				fmt.Sprintf(format, args...))}
	}
	var out []Diag
	for _, pf := range f.Preds {
		for _, lic := range pf.Licenses {
			i, ok := at[lic.Start]
			if !ok {
				out = append(out, badge(pf.Name, lic, "start is not an instruction boundary"))
				continue
			}
			if i+lic.Instrs > len(ins) {
				out = append(out, badge(pf.Name, lic, "run of %d instructions leaves the image", lic.Instrs))
				continue
			}
			w := 0
			okRun := true
			for k := 0; k < lic.Instrs; k++ {
				ei := ins[i+k]
				w += ei.words
				if k > 0 {
					inside[ei.addr] = true
				}
				lastOfRun := k == lic.Instrs-1
				switch lic.Kind {
				case FuseGetRun:
					if !getRunOp(ei.in.Op) {
						out = append(out, badge(pf.Name, lic, "%v at %d is not a get/unify op", ei.in.Op, ei.addr))
						okRun = false
					}
				case FusePutCall:
					if lastOfRun {
						if ei.in.Op != kcmisa.Call && ei.in.Op != kcmisa.Execute {
							out = append(out, badge(pf.Name, lic, "run does not end in call/execute"))
							okRun = false
						}
					} else if !putRunOp(ei.in.Op) {
						out = append(out, badge(pf.Name, lic, "%v at %d is not a put/move op", ei.in.Op, ei.addr))
						okRun = false
					}
				default:
					out = append(out, badge(pf.Name, lic, "unknown kind"))
					okRun = false
				}
				if !lastOfRun && (ei.in.Transfer() || ei.in.Op == kcmisa.Call) {
					out = append(out, badge(pf.Name, lic, "control transfer inside the run at %d", ei.addr))
					okRun = false
				}
				if !okRun {
					break
				}
			}
			if okRun && w != lic.Words {
				out = append(out, badge(pf.Name, lic, "word count %d, license says %d", w, lic.Words))
			}
		}
	}
	// No branch target may enter the interior of any run.
	for _, ei := range ins {
		for _, t := range encTargets(ei.in) {
			if t != kcmisa.FailLabel && inside[uint32(t)] {
				out = append(out, Diag{Index: -1, Addr: ei.addr, Check: BadTarget,
					Msg: fmt.Sprintf("%v at %d targets %d inside a fusion run",
						ei.in.Op, ei.addr, t)})
			}
		}
	}
	return out
}
