package analysis

import (
	"testing"

	"repro/internal/kcmisa"
	"repro/internal/term"
	"repro/internal/word"
)

func enc(t *testing.T, ins ...kcmisa.Instr) []word.Word {
	t.Helper()
	var out []word.Word
	for _, in := range ins {
		ws, err := kcmisa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out = append(out, ws...)
	}
	return out
}

func TestCheckEncodedClean(t *testing.T) {
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.Jump, L: 101},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	if ds := CheckEncoded(code, 100, 100); len(ds) != 0 {
		t.Fatalf("clean block reported: %s", diagString(ds))
	}
}

func TestCheckEncodedBadOpcode(t *testing.T) {
	code := []word.Word{word.Word(250) << 56}
	ds := CheckEncoded(code, 0, 0)
	if !findCheck(ds, BadOpcode) {
		t.Fatalf("want bad opcode, got: %s", diagString(ds))
	}
}

func TestCheckEncodedTruncated(t *testing.T) {
	full := enc(t, kcmisa.Instr{Op: kcmisa.SwitchOnTerm,
		SwT: &kcmisa.TermSwitch{Var: 0, Const: 0, List: 0, Struct: 0}})
	if len(full) != 4 {
		t.Fatalf("switch_on_term should be 4 words, got %d", len(full))
	}
	ds := CheckEncoded(full[:2], 0, 0)
	if !findCheck(ds, Truncated) {
		t.Fatalf("want truncated, got: %s", diagString(ds))
	}
}

func TestCheckEncodedOutOfRangeTarget(t *testing.T) {
	code := enc(t, kcmisa.Instr{Op: kcmisa.Jump, L: 500})
	ds := CheckEncoded(code, 100, 100)
	if !findCheck(ds, BadTarget) {
		t.Fatalf("want bad target, got: %s", diagString(ds))
	}
}

func TestCheckEncodedGapTarget(t *testing.T) {
	// A page-rounded batch load leaves [codeTop, base) unmapped.
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.Jump, L: 75},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	ds := CheckEncoded(code, 100, 50)
	if !findCheck(ds, BadTarget) {
		t.Fatalf("want bad target into gap, got: %s", diagString(ds))
	}
}

func TestCheckEncodedMidInstructionTarget(t *testing.T) {
	// Jump into the operand words of a switch table.
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.SwitchOnTerm,
			SwT: &kcmisa.TermSwitch{Var: 104, Const: 104, List: 104, Struct: 104}},
		kcmisa.Instr{Op: kcmisa.Jump, L: 102}, // 102 is a switch operand word
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	ds := CheckEncoded(code, 100, 100)
	if !findCheck(ds, BadTarget) {
		t.Fatalf("want bad target at non-boundary, got: %s", diagString(ds))
	}
}

func TestCheckEncodedAcceptsPriorCodeTargets(t *testing.T) {
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.Execute, N: 1, L: 7}, // 7 < codeTop: trusted
	)
	if ds := CheckEncoded(code, 100, 100); len(ds) != 0 {
		t.Fatalf("prior-code target flagged: %s", diagString(ds))
	}
}

func TestVetEncodedFindsFlowError(t *testing.T) {
	// A linked predicate whose body reads X5 before defining it: the
	// structural loader check accepts it, the flow vet must not.
	base := uint32(1)
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Proceed},
	)
	pi := term.Ind("t", 1)
	ds := VetEncoded(code, base, map[term.Indicator]uint32{pi: base})
	if !findCheck(ds, UseBeforeDef) {
		t.Fatalf("want use-before-def, got: %s", diagString(ds))
	}
	for _, d := range ds {
		if d.Check == UseBeforeDef {
			if d.Unit != pi {
				t.Errorf("diag unit = %v, want %v", d.Unit, pi)
			}
			if d.Addr != base {
				t.Errorf("diag addr = %d, want %d", d.Addr, base)
			}
		}
	}
}

func TestVetEncodedCleanPredicate(t *testing.T) {
	base := uint32(1)
	pi := term.Ind("t", 1)
	code := enc(t,
		kcmisa.Instr{Op: kcmisa.GetVarX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.PutValX, R1: 5, R2: 1},
		kcmisa.Instr{Op: kcmisa.Execute, N: 1, L: int(base)}, // self-call
	)
	ds := VetEncoded(code, base, map[term.Indicator]uint32{pi: base})
	if len(ds) != 0 {
		t.Fatalf("clean predicate reported: %s", diagString(ds))
	}
}
